// Command tracegen records synthetic workload traces to files and
// inspects existing recordings.
//
// Usage:
//
//	tracegen -workload OLTP -n 1000000 -o oltp.trc [-core 0 -thread 0 -seed 1]
//	tracegen -inspect oltp.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"twodcache/internal/trace"
	"twodcache/internal/workload"
)

func main() {
	wlName := flag.String("workload", "OLTP", "workload profile to record")
	n := flag.Int("n", 1_000_000, "instructions to record")
	out := flag.String("o", "", "output trace file")
	core := flag.Int("core", 0, "core id (address-space placement)")
	thread := flag.Int("thread", 0, "thread id")
	seed := flag.Int64("seed", 1, "generator seed")
	inspect := flag.String("inspect", "", "summarise an existing trace and exit")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		s, err := trace.Summarize(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("instructions: %d\n", s.Instructions)
		fmt.Printf("loads:        %d\n", s.Loads)
		fmt.Printf("stores:       %d\n", s.Stores)
		fmt.Printf("mem fraction: %.3f\n", s.MemFrac())
		fmt.Printf("store frac:   %.3f\n", s.WriteFrac())
		fmt.Printf("unique lines: %d (%.1f kB footprint)\n",
			s.UniqueLines, float64(s.UniqueLines)*64/1024)
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("need -o output file (or -inspect)"))
	}
	prof, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	src, err := workload.NewStream(prof, *core, *thread, *seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	count, err := trace.Record(f, src, *n)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fi, _ := os.Stat(*out)
	fmt.Printf("recorded %d instructions of %s to %s (%.1f MB, %.2f B/instr)\n",
		count, *wlName, *out, float64(fi.Size())/1e6, float64(fi.Size())/float64(count))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
