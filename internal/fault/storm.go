package fault

import (
	"math"
	"math/rand"
	"time"
)

// StormConfig parameterises a continuous Poisson fault storm — the
// online analogue of an injection campaign: events arrive with
// exponential inter-arrival times and multi-bit footprints drawn from
// an event-size distribution, for as long as the storm runs.
type StormConfig struct {
	// Seed makes the storm reproducible.
	Seed int64
	// MeanInterval is the mean time between fault events (the inverse
	// of the Poisson rate). Must be positive.
	MeanInterval time.Duration
	// Dist is the event footprint distribution; a zero value selects
	// ModernDist.
	Dist EventSizeDist
}

// Storm generates a continuous stream of fault events. It is NOT safe
// for concurrent use: one driver goroutine owns a storm.
type Storm struct {
	rng    *rand.Rand
	mean   time.Duration
	dist   EventSizeDist
	events uint64
}

// NewStorm builds a storm from the configuration.
func NewStorm(cfg StormConfig) *Storm {
	dist := cfg.Dist
	if len(dist.Sizes) == 0 {
		dist = ModernDist()
	}
	mean := cfg.MeanInterval
	if mean <= 0 {
		mean = time.Millisecond
	}
	return &Storm{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		mean: mean,
		dist: dist,
	}
}

// NextDelay samples the exponential inter-arrival time to the next
// fault event.
func (s *Storm) NextDelay() time.Duration {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return time.Duration(-float64(s.mean) * math.Log(u))
}

// NextEvent samples the next event's footprint against an array of the
// given geometry.
func (s *Storm) NextEvent(rows, cols int) Pattern {
	s.events++
	return SoftEvent(s.rng, rows, cols, s.dist)
}

// Events returns how many events the storm has generated.
func (s *Storm) Events() uint64 { return s.events }
