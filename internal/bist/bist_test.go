package bist

import (
	"math/rand"
	"testing"

	"twodcache/internal/redundancy"
)

func TestCleanArrayPassesAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{MATSPlus(), MarchX(), MarchCMinus()} {
		a := MustFaultyArray(16, 32)
		res := Run(a, alg)
		if !res.Passed() {
			t.Fatalf("%s failed on a clean array: %d fails", alg.Name, len(res.Fails))
		}
	}
}

func TestOperationCounts(t *testing.T) {
	// MATS+ is 5N, March X 6N, March C- 10N.
	n := 16 * 32
	for _, tc := range []struct {
		alg  Algorithm
		perN int
	}{
		{MATSPlus(), 5}, {MarchX(), 6}, {MarchCMinus(), 10},
	} {
		a := MustFaultyArray(16, 32)
		res := Run(a, tc.alg)
		if res.Operations != tc.perN*n {
			t.Fatalf("%s: %d ops, want %d", tc.alg.Name, res.Operations, tc.perN*n)
		}
	}
}

func TestDetectsStuckAtFaults(t *testing.T) {
	for _, kind := range []FaultKind{StuckAt0, StuckAt1} {
		a := MustFaultyArray(16, 32)
		if err := a.Inject(CellFault{Row: 5, Col: 17, Kind: kind}); err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{MATSPlus(), MarchX(), MarchCMinus()} {
			b := MustFaultyArray(16, 32)
			_ = b.Inject(CellFault{Row: 5, Col: 17, Kind: kind})
			res := Run(b, alg)
			cells := res.FailingCells()
			if len(cells) != 1 || cells[0] != [2]int{5, 17} {
				t.Fatalf("%s/%v: detected %v", alg.Name, kind, cells)
			}
		}
	}
}

func TestDetectsTransitionFaults(t *testing.T) {
	// MATS+ misses some transition faults; March X and C- catch both
	// polarities.
	for _, kind := range []FaultKind{TransitionUp, TransitionDown} {
		for _, alg := range []Algorithm{MarchX(), MarchCMinus()} {
			a := MustFaultyArray(8, 8)
			_ = a.Inject(CellFault{Row: 3, Col: 4, Kind: kind})
			res := Run(a, alg)
			if res.Passed() {
				t.Fatalf("%s missed a %v fault", alg.Name, kind)
			}
		}
	}
}

func TestFaultInjectionBounds(t *testing.T) {
	a := MustFaultyArray(4, 4)
	if err := a.Inject(CellFault{Row: 4, Col: 0}); err == nil {
		t.Fatal("out-of-bounds fault accepted")
	}
	if a.FaultCount() != 0 {
		t.Fatal("count after rejected injection")
	}
	if _, err := NewFaultyArray(0, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestFaultKindStrings(t *testing.T) {
	names := map[FaultKind]string{
		StuckAt0: "stuck-at-0", StuckAt1: "stuck-at-1",
		TransitionUp: "transition-up", TransitionDown: "transition-down",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestMarchDetectsManyRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MustFaultyArray(64, 128)
	want := map[[2]int]bool{}
	for i := 0; i < 40; i++ {
		r, c := rng.Intn(64), rng.Intn(128)
		kind := FaultKind(rng.Intn(4))
		_ = a.Inject(CellFault{Row: r, Col: c, Kind: kind})
		want[[2]int{r, c}] = true
	}
	res := Run(a, MarchCMinus())
	got := map[[2]int]bool{}
	for _, c := range res.FailingCells() {
		got[c] = true
	}
	for cell := range got {
		if !want[cell] {
			t.Fatalf("false positive at %v", cell)
		}
	}
	// March C- detects all stuck-at and transition faults.
	for cell := range want {
		if !got[cell] {
			t.Fatalf("missed fault at %v", cell)
		}
	}
}

func TestSelfRepairSimple(t *testing.T) {
	a := MustFaultyArray(64, 256)
	_ = a.Inject(CellFault{Row: 3, Col: 10, Kind: StuckAt1})
	_ = a.Inject(CellFault{Row: 40, Col: 200, Kind: StuckAt0})
	cfg := redundancy.Config{Rows: 64, Cols: 256, SpareRows: 2, SpareCols: 2, WordBits: 64}
	out, err := SelfRepair(a, cfg, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Detected) != 2 {
		t.Fatalf("detected %v", out.Detected)
	}
	if !out.Plan.Repairable || !out.Repaired {
		t.Fatalf("outcome %+v", out)
	}
}

func TestSelfRepairRowFailure(t *testing.T) {
	a := MustFaultyArray(64, 256)
	for c := 0; c < 256; c += 3 {
		_ = a.Inject(CellFault{Row: 20, Col: c, Kind: StuckAt1})
	}
	cfg := redundancy.Config{Rows: 64, Cols: 256, SpareRows: 1, SpareCols: 2, WordBits: 64}
	out, err := SelfRepair(a, cfg, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired || len(out.Plan.RepairRows) != 1 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestSelfRepairUnrepairable(t *testing.T) {
	a := MustFaultyArray(32, 128)
	// Three damaged rows, one spare row, no columns.
	for _, r := range []int{5, 10, 15} {
		for c := 0; c < 20; c++ {
			_ = a.Inject(CellFault{Row: r, Col: c * 6, Kind: StuckAt1})
		}
	}
	cfg := redundancy.Config{Rows: 32, Cols: 128, SpareRows: 1, SpareCols: 0, WordBits: 64}
	out, err := SelfRepair(a, cfg, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.Repairable || out.Repaired {
		t.Fatalf("should be unrepairable: %+v", out)
	}
}

func TestSelfRepairWithECC(t *testing.T) {
	// Scattered singles absorbed by ECC; one heavy row takes the spare.
	a := MustFaultyArray(64, 256)
	_ = a.Inject(CellFault{Row: 1, Col: 5, Kind: StuckAt1})
	_ = a.Inject(CellFault{Row: 9, Col: 100, Kind: StuckAt0})
	for c := 0; c < 30; c++ {
		_ = a.Inject(CellFault{Row: 30, Col: c * 8, Kind: StuckAt1})
	}
	cfg := redundancy.Config{
		Rows: 64, Cols: 256, SpareRows: 1, SpareCols: 0,
		WordBits: 64, ECCSingleBit: true,
	}
	out, err := SelfRepair(a, cfg, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Plan.Repairable || !out.Repaired {
		t.Fatalf("outcome %+v", out)
	}
	if out.Plan.ECCAbsorbed != 2 {
		t.Fatalf("ECC absorbed %d, want 2", out.Plan.ECCAbsorbed)
	}
}
