package pcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestBatchMatchesSerial drives the same randomized op sequence
// through a batched cache and a serial twin and demands identical
// bytes, identical per-op outcomes, identical stats, and identical
// final backing contents.
func TestBatchMatchesSerial(t *testing.T) {
	cfg := Config{Sets: 16, Ways: 2, LineBytes: 64, Banks: 4}
	bb, sb := NewMapBacking(64), NewMapBacking(64)
	batched, serial := MustNew(cfg, bb), MustNew(cfg, sb)
	rng := rand.New(rand.NewSource(7))
	span := uint64(cfg.Sets * cfg.Ways * cfg.LineBytes * 2)

	for round := 0; round < 50; round++ {
		k := 1 + rng.Intn(24)
		if rng.Intn(2) == 0 {
			wops := make([]WriteOp, k)
			sops := make([]WriteOp, k)
			for i := range wops {
				addr := rng.Uint64() % span
				n := 1 + rng.Intn(16)
				if off := int(addr) % cfg.LineBytes; off+n > cfg.LineBytes {
					n = cfg.LineBytes - off
				}
				data := make([]byte, n)
				rng.Read(data)
				wops[i] = WriteOp{Addr: addr, Data: data}
				sops[i] = WriteOp{Addr: addr, Data: data}
			}
			if failed := batched.WriteBatch(wops); failed != 0 {
				t.Fatalf("round %d: WriteBatch failed %d ops", round, failed)
			}
			for i := range sops {
				if err := serial.Write(sops[i].Addr, sops[i].Data); err != nil {
					t.Fatalf("round %d: serial write: %v", round, err)
				}
			}
		} else {
			rops := make([]ReadOp, k)
			for i := range rops {
				addr := rng.Uint64() % span
				n := 1 + rng.Intn(16)
				if off := int(addr) % cfg.LineBytes; off+n > cfg.LineBytes {
					n = cfg.LineBytes - off
				}
				rops[i] = ReadOp{Addr: addr, Dst: make([]byte, n)}
			}
			if failed := batched.ReadBatch(rops); failed != 0 {
				t.Fatalf("round %d: ReadBatch failed %d ops", round, failed)
			}
			for i := range rops {
				want := make([]byte, len(rops[i].Dst))
				if err := serial.ReadInto(rops[i].Addr, want); err != nil {
					t.Fatalf("round %d: serial read: %v", round, err)
				}
				if !bytes.Equal(rops[i].Dst, want) {
					t.Fatalf("round %d op %d: batch read %x, serial %x at %#x",
						round, i, rops[i].Dst, want, rops[i].Addr)
				}
			}
		}
	}

	// Batching reorders ops across lines, so replacement decisions (and
	// with them the hit/miss split) may differ from serial issue — but
	// traffic accounting and the coherence invariants must agree.
	bst, sst := batched.Stats(), serial.Stats()
	if bst.Accesses != sst.Accesses {
		t.Fatalf("accesses diverged: batch %d, serial %d", bst.Accesses, sst.Accesses)
	}
	if bst.Hits+bst.Misses > bst.Accesses {
		t.Fatalf("incoherent batch stats %+v", bst)
	}
	if bst.Uncorrectable != 0 || bst.Bypassed != 0 {
		t.Fatalf("unexpected slow-path events %+v", bst)
	}
	if err := batched.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := serial.Flush(); err != nil {
		t.Fatal(err)
	}
	for line := uint64(0); line < span/uint64(cfg.LineBytes); line++ {
		b1 := bb.ReadLine(line * uint64(cfg.LineBytes))
		b2 := sb.ReadLine(line * uint64(cfg.LineBytes))
		if !bytes.Equal(b1, b2) {
			t.Fatalf("backing diverged at line %d: %x vs %x", line, b1, b2)
		}
	}
}

// TestBatchSameLineWriteOrder checks that overlapping writes to one
// line apply in batch order (the stable-sort guarantee).
func TestBatchSameLineWriteOrder(t *testing.T) {
	c, _ := smallCache(t, false)
	ops := []WriteOp{
		{Addr: 0x100, Data: []byte{1, 1, 1, 1}},
		{Addr: 0x101, Data: []byte{2, 2}},
		{Addr: 0x102, Data: []byte{3}},
	}
	if failed := c.WriteBatch(ops); failed != 0 {
		t.Fatalf("failed %d", failed)
	}
	got, err := c.Read(0x100, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Serial order: {1,1,1,1}, then {2,2} at +1, then {3} at +2.
	if want := []byte{1, 2, 3, 1}; !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestBatchPerOpErrors: invalid spans fail their own op without
// poisoning the rest of the batch.
func TestBatchPerOpErrors(t *testing.T) {
	c, _ := smallCache(t, false)
	if err := c.Write(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	ops := []ReadOp{
		{Addr: 60, Dst: make([]byte, 8)}, // crosses a line boundary
		{Addr: 0, Dst: make([]byte, 1)},
		{Addr: 0, Dst: nil}, // zero-size
	}
	if failed := c.ReadBatch(ops); failed != 2 {
		t.Fatalf("failed = %d, want 2", failed)
	}
	if ops[0].Err == nil || ops[2].Err == nil {
		t.Fatalf("bad spans not flagged: %v %v", ops[0].Err, ops[2].Err)
	}
	if ops[1].Err != nil || ops[1].Dst[0] != 0xAB {
		t.Fatalf("good op failed: err=%v dst=%v", ops[1].Err, ops[1].Dst)
	}

	wops := []WriteOp{
		{Addr: 60, Data: make([]byte, 8)},
		{Addr: 8, Data: []byte{0xCD}},
	}
	if failed := c.WriteBatch(wops); failed != 1 {
		t.Fatalf("write failed = %d, want 1", failed)
	}
	got, err := c.Read(8, 1)
	if err != nil || got[0] != 0xCD {
		t.Fatalf("good write lost: %v %v", got, err)
	}
}

// TestBatchBypassesDecommissionedSet: a fully decommissioned set is
// served through the backing, whole group at once.
func TestBatchBypassesDecommissionedSet(t *testing.T) {
	c, _ := smallCache(t, false)
	if err := c.Write(0, []byte{0x11, 0x22}); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	c.Decommission(0, 0)
	c.Decommission(0, 1)
	wops := []WriteOp{
		{Addr: 0, Data: []byte{0x33}},
		{Addr: 1, Data: []byte{0x44}},
	}
	if failed := c.WriteBatch(wops); failed != 0 {
		t.Fatalf("write failed %d", failed)
	}
	rops := []ReadOp{
		{Addr: 0, Dst: make([]byte, 1)},
		{Addr: 1, Dst: make([]byte, 1)},
	}
	if failed := c.ReadBatch(rops); failed != 0 {
		t.Fatalf("read failed %d", failed)
	}
	if rops[0].Dst[0] != 0x33 || rops[1].Dst[0] != 0x44 {
		t.Fatalf("bypass reads %x %x", rops[0].Dst, rops[1].Dst)
	}
	if st := c.Stats(); st.Bypassed < 4 {
		t.Fatalf("bypassed = %d, want >= 4", st.Bypassed)
	}
}

// TestBatchAmortizesArrayWork proves the point of the batch path: k
// ops against one line must cost far fewer protected-array word reads
// than k serial ops (one tag probe + one line read-out per line, not
// per op).
func TestBatchAmortizesArrayWork(t *testing.T) {
	const k = 32
	mk := func() *Cache {
		c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64, Banks: 1}, NewMapBacking(64))
		if err := c.Write(0x40, []byte{1}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	arrayReads := func(c *Cache) uint64 {
		da, ta := c.BankArrays(0)
		return da.Stats().Reads + ta.Stats().Reads
	}

	serial := mk()
	base := arrayReads(serial)
	var buf [8]byte
	for i := 0; i < k; i++ {
		if err := serial.ReadInto(0x40+uint64(i%56), buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	serialCost := arrayReads(serial) - base

	batched := mk()
	base = arrayReads(batched)
	ops := make([]ReadOp, k)
	for i := range ops {
		ops[i] = ReadOp{Addr: 0x40 + uint64(i%56), Dst: make([]byte, 8)}
	}
	if failed := batched.ReadBatch(ops); failed != 0 {
		t.Fatalf("failed %d", failed)
	}
	batchCost := arrayReads(batched) - base

	if batchCost*2 >= serialCost {
		t.Fatalf("batch read-out not amortized: batch %d array reads vs serial %d", batchCost, serialCost)
	}
}

// TestBatchStatsAccounting pins the hit/miss bookkeeping of a
// miss-then-group-hit batch.
func TestBatchStatsAccounting(t *testing.T) {
	c, _ := smallCache(t, false)
	ops := make([]ReadOp, 4)
	for i := range ops {
		ops[i] = ReadOp{Addr: uint64(i * 8), Dst: make([]byte, 8)}
	}
	if failed := c.ReadBatch(ops); failed != 0 {
		t.Fatalf("failed %d", failed)
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("stats %+v, want accesses=4 misses=1 hits=3", st)
	}
}

func ExampleCache_ReadBatch() {
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64}, NewMapBacking(64))
	_ = c.Write(0x00, []byte("alpha"))
	_ = c.Write(0x40, []byte("bravo"))
	ops := []ReadOp{
		{Addr: 0x00, Dst: make([]byte, 5)},
		{Addr: 0x40, Dst: make([]byte, 5)},
	}
	failed := c.ReadBatch(ops)
	fmt.Println(failed, string(ops[0].Dst), string(ops[1].Dst))
	// Output: 0 alpha bravo
}
