// Soak runs the online resilience engine under fire: N client
// goroutines read and write through a ResilientCache while a
// continuous Poisson fault storm upsets the protected arrays and the
// traffic-aware background scrubber sweeps them, for a bounded
// duration. Every client checks its reads against a private shadow
// model using the loss-epoch protocol: a mismatch is legitimate only
// if the set's loss epoch advanced (a reported DUE led to a repair or
// decommission) since the value was written — otherwise it is SILENT
// corruption and the run fails. On success the health report is
// printed and the process exits 0.
//
// The storm flips at most one bit per currently-clean word per event —
// within the horizontal code's guaranteed detection — so every
// corruption is detectable; whether it is *correctable* is up to the
// 2D code, and the escalation ladder absorbs the remainder. This keeps
// "zero silent corruptions" a hard invariant rather than a statistical
// hope.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twodcache"
	"twodcache/internal/fault"
	"twodcache/internal/replay"
	"twodcache/internal/twod"
)

// replayMain deterministically re-executes a recorded (or shrunk)
// trace single-threaded and applies the soak's pass/fail rules to the
// replayed taxonomy. Traces declaring "expect silent" are harness
// self-validation traces and must go silent; every other trace must
// not.
func replayMain(path string) int {
	tr, err := replay.ParseFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}
	res, err := replay.Run(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak: replay:", err)
		return 2
	}
	for _, d := range res.SilentDetails {
		fmt.Fprintln(os.Stderr, "soak: "+d)
	}
	fmt.Printf("soak: replayed %d events (%d client ops, %d flips applied, %d gated)\n",
		len(tr.Events), res.Ops, res.FlipsApplied, res.FlipsSkipped)
	fmt.Print(res.Report.String())
	fmt.Printf("  accounting:  %d accounted losses, %d ladder-exhausted DUEs, %d SILENT corruptions\n",
		res.Accounted, res.Reported, res.Silent)
	fmt.Printf("  state hash:  %016x\n", res.StateHash)
	if tr.ExpectSilent {
		if res.Silent == 0 {
			fmt.Println("soak: FAIL — self-validation trace did not go silent")
			return 1
		}
		fmt.Println("soak: PASS — self-validation trace classified silent, as declared")
		return 0
	}
	if res.Silent > 0 {
		fmt.Println("soak: FAIL — silent corruption detected")
		return 1
	}
	fmt.Println("soak: PASS — every mismatch accounted for by a reported DUE/decommission")
	return 0
}

func main() {
	var (
		duration      = flag.Duration("duration", 2*time.Second, "soak duration")
		clients       = flag.Int("clients", 4, "concurrent reader/writer goroutines")
		sets          = flag.Int("sets", 64, "cache sets")
		ways          = flag.Int("ways", 4, "cache ways")
		banks         = flag.Int("banks", 8, "independently locked banks")
		lineBytes     = flag.Int("line", 64, "line size in bytes")
		secded        = flag.Bool("secded", false, "SECDED horizontal code instead of EDC8")
		spares        = flag.Int("spares", 8, "spare-row budget for remapping")
		faultInterval = flag.Duration("fault-interval", 500*time.Microsecond, "mean time between fault events")
		scrubInterval = flag.Duration("scrub-interval", 2*time.Millisecond, "pause between scrub sweeps")
		highRate      = flag.Float64("scrub-high-rate", 200_000, "accesses/sec above which the scrubber backs off")
		seed          = flag.Int64("seed", 1, "random seed")
		statsEvery    = flag.Duration("stats-interval", 500*time.Millisecond, "period of the live stats line (0 disables)")
		httpAddr      = flag.String("http", "", "serve expvar (/debug/vars) and Prometheus text (/metrics) on this address")
		recordPath    = flag.String("record", "", "record the run's event trace to this file (order is exact with -banks 1, best-effort otherwise)")
		replayPath    = flag.String("replay", "", "deterministically replay a recorded or shrunk trace instead of running live (load/fault flags are ignored)")
		selftestPoke  = flag.Bool("selftest-corrupt-backing", false, "harness self-validation: continuously corrupt the backing store behind the cache's back; the run MUST then FAIL with silent corruption (run with the storm slowed so no loss epoch moves)")
		p99Budget     = flag.Duration("p99-budget", 0, "SLO mode: every read carries this deadline, and the run FAILS (exit 3) unless 99% of reads complete within it")
		repairBudget  = flag.Duration("repair-budget", 50*time.Millisecond, "recovery watchdog force-escalates repairs older than this (watchdog runs in SLO/chaos modes)")
		chaosStall    = flag.Duration("chaos-stall-recovery", 0, "chaos: wedge every full-2D recovery rung for this long — the watchdog must force-escalate instead of hanging")
	)
	flag.Parse()
	if *replayPath != "" {
		os.Exit(replayMain(*replayPath))
	}
	if *clients < 1 {
		fmt.Fprintln(os.Stderr, "soak: need at least one client")
		os.Exit(2)
	}

	// Chaos mode: arm a stall point inside the full-2D rung. Every
	// recovery that reaches it wedges for the armed duration, and only
	// the watchdog's force-escalation keeps the run from hanging.
	var stall *fault.Stall
	if *chaosStall > 0 {
		stall = new(fault.Stall)
		stall.Arm(*chaosStall)
	}

	backing := twodcache.NewMemoryBacking(*lineBytes)
	reg := twodcache.NewMetricsRegistry()
	eng, err := twodcache.NewResilientCache(twodcache.ProtectedCacheConfig{
		Sets: *sets, Ways: *ways, LineBytes: *lineBytes,
		SECDEDHorizontal: *secded, Banks: *banks,
	}, backing, twodcache.ResilienceConfig{
		SpareRows: *spares, Metrics: reg, RecoveryStall: stall,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(2)
	}
	cache := eng.Cache()
	scrubber := eng.NewScrubber(twodcache.ScrubberConfig{
		Interval: *scrubInterval,
		HighRate: *highRate,
	})

	// SLO mode records every read's end-to-end latency into a histogram
	// whose bucket bounds include the budget itself, so the pass/fail
	// count (CountLE) is EXACT — never interpolated.
	var readLat *twodcache.LatencyHistogram
	if *p99Budget > 0 {
		readLat = reg.Histogram("soak_read_seconds",
			"end-to-end client read latency (SLO mode)", sloBounds(*p99Budget)...)
	}

	// Bounded-latency modes run the recovery watchdog: a repair that
	// outlives -repair-budget is force-escalated to degradation instead
	// of wedging its bank (and every coalesced waiter) indefinitely.
	if *p99Budget > 0 || *chaosStall > 0 {
		wd := eng.NewWatchdog(twodcache.RecoveryWatchdogConfig{Budget: *repairBudget})
		wd.Start()
		defer wd.Stop()
	}

	// Optional trace recording for offline deterministic replay
	// (-replay) and shrinking (cmd/tracehunt). Events are appended in
	// completion order: with a single bank that matches the bank-lock
	// commit order, so the replayed run walks the same state sequence;
	// with several banks the recorded interleaving is best-effort.
	// Geometry defaults (VerticalGroups, MaxRetries) mirror the engine's.
	var rec *replay.Recorder
	if *recordPath != "" {
		rec = replay.NewRecorder(replay.Config{
			Sets: *sets, Ways: *ways, LineBytes: *lineBytes, Banks: *banks,
			VerticalGroups: 32, SECDED: *secded, SpareRows: *spares, MaxRetries: 1,
		})
	}

	// Serve the registry over expvar (/debug/vars) and Prometheus text
	// (/metrics) when asked. The registry snapshots on demand, so both
	// endpoints always return coherent, clamped values.
	if *httpAddr != "" {
		reg.PublishExpvar("twodcache")
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "soak: http:", err)
			}
		}()
		fmt.Printf("soak: serving /debug/vars and /metrics on %s\n", *httpAddr)
	}

	// The run ends at the deadline OR on SIGINT/SIGTERM: either way the
	// context is cancelled, the workers drain, and the final obs-backed
	// report below always prints.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var (
		silent     atomic.Uint64 // UNACCOUNTED mismatches: must stay zero
		accounted  atomic.Uint64 // mismatches explained by a loss-epoch advance
		reported   atomic.Uint64 // DUEs surfaced to clients even after the ladder
		sloAborts  atomic.Uint64 // reads abandoned at their deadline (SLO mode)
		clientOps  atomic.Uint64
		wg         sync.WaitGroup
		scrubDone  = make(chan struct{})
		stormDone  = make(chan struct{})
		stormCount atomic.Uint64
	)

	// Background scrubber. When recording, drive the sweeps bank by bank
	// so each one lands in the trace (traffic-aware backoff is skipped —
	// a recorded run favours reproducibility over load shaping).
	go func() {
		defer close(scrubDone)
		if rec == nil {
			_ = scrubber.Run(ctx)
			return
		}
		ticker := time.NewTicker(*scrubInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for i := 0; i < cache.NumBanks(); i++ {
				rec.Scrub(i)
				scrubber.SweepBank(i)
			}
		}
	}()

	// Continuous Poisson fault storm. Each event lands under the bank
	// lock so it races traffic at event granularity, never mid-word,
	// and only strikes currently-clean words (see package comment).
	go func() {
		defer close(stormDone)
		storm := fault.NewStorm(fault.StormConfig{Seed: *seed, MeanInterval: *faultInterval})
		rng := rand.New(rand.NewSource(*seed + 7))
		oneEvent := func() {
			bi := rng.Intn(cache.NumBanks())
			hitTags := rng.Intn(4) == 0
			cache.WithBankLock(bi, func(data, tags *twod.Array) {
				a := data
				if hitTags {
					a = tags
				}
				p := storm.NextEvent(a.Rows(), a.RowBits())
				for _, fl := range p.Flips {
					if rec != nil {
						// Record the attempt; replay re-applies the same
						// clean-word gate below, so gating stays sound
						// even after the shrinker removes other events.
						rec.Flip(bi, hitTags, fl.Row, fl.Col)
					}
					w, _ := a.Layout().Locate(fl.Col)
					if _, ok := a.TryRead(fl.Row, w); ok {
						a.FlipBit(fl.Row, fl.Col)
					}
				}
				stormCount.Add(1)
			})
		}
		// Sub-millisecond inter-arrival times are far below Go timer
		// granularity, so drive the Poisson process from a 1ms ticker
		// and drain every arrival that fell due within the tick.
		const tick = time.Millisecond
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		pending := storm.NextDelay()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for pending -= tick; pending <= 0; pending += storm.NextDelay() {
				oneEvent()
			}
		}
	}()

	// Live stats line, straight off coherent registry snapshots.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		if *statsEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		start := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			s := reg.Snapshot()
			lat := s.Histogram("resilience_ladder_seconds")
			fmt.Printf("soak: t=%5.1fs acc=%d hits=%d dues=%d mttr=%v scrubs=%d victims=%d disabled=%d faults=%d\n",
				time.Since(start).Seconds(),
				s.Counter("pcache_accesses_total"),
				s.Counter("pcache_hits_total"),
				s.Counter("resilience_dues_total"),
				lat.Mean().Round(time.Microsecond),
				s.Counter("scrub_passes_total"),
				s.Counter("scrub_victims_total"),
				s.Gauge("pcache_disabled_ways"),
				stormCount.Load())
		}
	}()

	// Clients: disjoint line ownership (line % clients == id), private
	// shadow model, loss-epoch accounting.
	lines := uint64(4 * *sets) // 4x the sets: plenty of conflict misses

	// Self-validation of the oracle and the exit path: corrupt the
	// backing store behind the cache's back, which no reported DUE or
	// decommission can ever account for. Clean-evicted lines refill with
	// the corrupted bytes, so the run must detect SILENT corruption and
	// exit non-zero — if it does not, the oracle itself is broken.
	if *selftestPoke {
		go func() {
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				for l := uint64(0); l < lines; l++ {
					la := l * uint64(*lineBytes)
					b := backing.ReadLine(la)
					for i := range b {
						b[i] ^= 0xFF
					}
					backing.WriteLine(la, b)
				}
			}
		}()
	}
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(100+id)))
			shadow := map[uint64]byte{}
			wep := map[uint64]uint64{}
			var owned []uint64
			for l := uint64(id); l < lines; l += uint64(*clients) {
				owned = append(owned, l)
			}
			setOf := func(addr uint64) int {
				return int((addr / uint64(*lineBytes)) % uint64(*sets))
			}
			for ctx.Err() == nil {
				clientOps.Add(1)
				l := owned[rng.Intn(len(owned))]
				addr := l*uint64(*lineBytes) + uint64(rng.Intn(*lineBytes))
				set := setOf(addr)
				if rng.Intn(5) < 2 { // 40% writes
					val := byte(rng.Intn(256))
					if rec != nil {
						rec.Write(id, addr, val)
					}
					// Capture the epoch BEFORE the write: a degrade racing
					// the write then shows an advance, never a stale record.
					e0 := cache.LossEpoch(set)
					if err := eng.Write(addr, []byte{val}); err != nil {
						reported.Add(1)
						cache.Repair(addr)
						delete(shadow, addr)
						continue
					}
					shadow[addr] = val
					wep[addr] = e0
					continue
				}
				want, tracked := shadow[addr]
				if rec != nil {
					rec.Read(id, addr)
				}
				var got []byte
				var err error
				if *p99Budget > 0 {
					// SLO mode: the read carries its own deadline and gives
					// up on an in-flight repair rather than riding it past
					// budget. Deliberately parented on Background, not the
					// run context, so shutdown does not masquerade as abort.
					rctx, rcancel := context.WithTimeout(context.Background(), *p99Budget)
					t0 := time.Now()
					got, err = eng.ReadCtx(rctx, addr, 1)
					readLat.Observe(time.Since(t0))
					rcancel()
					if errors.Is(err, twodcache.ErrRecoveryInProgress) {
						sloAborts.Add(1)
					}
				} else {
					got, err = eng.Read(addr, 1)
				}
				if err != nil {
					// The ladder itself gave up (or the deadline abandoned
					// it) — still a *reported* event, never silent. Repair
					// and drop the stale expectation.
					reported.Add(1)
					cache.Repair(addr)
					delete(shadow, addr)
					continue
				}
				if tracked && got[0] != want {
					if cache.LossEpoch(set) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x: got %d want %d (loss epoch unmoved)\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
					// Either way the cache's view is now authoritative.
					e0 := cache.LossEpoch(set)
					shadow[addr] = got[0]
					wep[addr] = e0
				}
			}

			// Final sweep: after the storm stops, every tracked byte must
			// still be explained.
			<-stormDone
			for addr, want := range shadow {
				got, err := eng.Read(addr, 1)
				if err != nil {
					reported.Add(1)
					cache.Repair(addr)
					continue
				}
				if got[0] != want {
					if cache.LossEpoch(setOf(addr)) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x on final sweep: got %d want %d\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
				}
			}
		}(id)
	}

	wg.Wait()
	interrupted := ctx.Err() != nil && context.Cause(ctx) != context.DeadlineExceeded
	cancel()
	<-scrubDone
	<-stormDone
	<-statsDone
	if err := eng.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "soak: final flush:", err)
	}
	if rec != nil {
		// The replayer performs its own final shadow sweep, so the trace
		// ends with the last recorded event.
		if err := rec.SaveFile(*recordPath); err != nil {
			fmt.Fprintln(os.Stderr, "soak: record:", err)
		} else {
			fmt.Printf("soak: recorded %d events to %s\n", len(rec.Trace().Events), *recordPath)
		}
	}

	if interrupted {
		fmt.Println("soak: interrupted — drained workers, printing final report")
	}
	rep := eng.Report()
	fmt.Printf("soak: %v, %d clients, %d client ops, %d fault events\n",
		*duration, *clients, clientOps.Load(), stormCount.Load())
	fmt.Print(rep.String())
	fmt.Printf("  accounting:  %d accounted losses, %d ladder-exhausted DUEs, %d SILENT corruptions\n",
		accounted.Load(), reported.Load(), silent.Load())
	if stall != nil {
		fmt.Printf("  chaos:       full-2D stall armed at %v, engaged %d times, %d watchdog force-escalations\n",
			*chaosStall, stall.Fired(), rep.WatchdogFires)
	}

	// Corruption dominates every other verdict: a run that lies about
	// data MUST exit 1 even if it also blew its latency budget.
	if silent.Load() > 0 {
		fmt.Println("soak: FAIL — silent corruption detected")
		os.Exit(1)
	}
	if *p99Budget > 0 {
		h := reg.Snapshot().Histogram("soak_read_seconds")
		within, exact := h.CountLE(*p99Budget)
		mark := "="
		if !exact {
			mark = "<=" // cannot happen: the budget is a bucket bound
		}
		fmt.Printf("soak: slo: %d/%d reads (p99%s%v) within budget %v, %d deadline aborts\n",
			within, h.Count, mark, h.Quantile(0.99).Round(time.Microsecond), *p99Budget, sloAborts.Load())
		if h.Count > 0 && float64(within) < 0.99*float64(h.Count) {
			fmt.Println("soak: FAIL — p99 read latency over budget")
			os.Exit(3)
		}
	}
	fmt.Println("soak: PASS — every mismatch accounted for by a reported DUE/decommission")
}

// sloBounds builds latency histogram bounds bracketing the budget, with
// the budget itself as an exact bound so CountLE(budget) never has to
// interpolate across a bucket.
func sloBounds(budget time.Duration) []time.Duration {
	var bs []time.Duration
	add := func(d time.Duration) {
		if d <= 0 {
			return
		}
		for _, x := range bs {
			if x == d {
				return
			}
		}
		bs = append(bs, d)
	}
	for _, div := range []int64{16, 8, 4, 2} {
		add(budget / time.Duration(div))
	}
	add(budget)
	for _, mul := range []int64{2, 4, 8, 16, 64} {
		add(budget * time.Duration(mul))
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return bs
}
