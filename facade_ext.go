package twodcache

// Façade over the manufacturing-test, repair, scrubbing, and trace
// subsystems.

import (
	"io"

	"twodcache/internal/bist"
	"twodcache/internal/cluster"
	"twodcache/internal/fault"
	"twodcache/internal/netsrv"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/redundancy"
	"twodcache/internal/resilience"
	"twodcache/internal/scrub"
	"twodcache/internal/store"
	"twodcache/internal/trace"
	"twodcache/internal/workload"
)

// --- BIST / march testing -----------------------------------------------

// TestMemory is the bit-addressable array interface the march engine
// drives.
type TestMemory = bist.Memory

// MarchAlgorithm is a named march test.
type MarchAlgorithm = bist.Algorithm

// MarchResult summarises one march run.
type MarchResult = bist.Result

// FaultyArray is a bit array with injectable manufacturing defects
// (stuck-at and transition faults).
type FaultyArray = bist.FaultyArray

// CellFault is one injected defect.
type CellFault = bist.CellFault

// Manufacturing defect kinds.
const (
	StuckAt0       = bist.StuckAt0
	StuckAt1       = bist.StuckAt1
	TransitionUp   = bist.TransitionUp
	TransitionDown = bist.TransitionDown
)

// NewFaultyArray builds a defect-injectable array for BIST studies.
func NewFaultyArray(rows, cols int) (*FaultyArray, error) {
	return bist.NewFaultyArray(rows, cols)
}

// MarchCMinus returns the 10N March C- test (stuck-at + transition +
// unlinked coupling coverage) — the complexity class the paper equates
// 2D recovery latency to (§4).
func MarchCMinus() MarchAlgorithm { return bist.MarchCMinus() }

// MarchX returns the 6N March X test.
func MarchX() MarchAlgorithm { return bist.MarchX() }

// MATSPlus returns the 5N MATS+ test.
func MATSPlus() MarchAlgorithm { return bist.MATSPlus() }

// RunMarch executes a march test over a memory.
func RunMarch(mem TestMemory, alg MarchAlgorithm) MarchResult { return bist.Run(mem, alg) }

// --- redundancy / BISR ----------------------------------------------------

// RepairConfig describes spare rows/columns and optional in-line ECC.
type RepairConfig = redundancy.Config

// RepairPlan is a spare allocation.
type RepairPlan = redundancy.Plan

// RepairOutcome is the result of a full BISR pass.
type RepairOutcome = bist.RepairOutcome

// AllocateRepairs plans spare usage for a set of defective cells using
// must-repair reduction plus greedy cover, optionally absorbing
// single-bit faults into ECC (the paper's §5.2 synergy).
func AllocateRepairs(cfg RepairConfig, faults []redundancy.Fault) (RepairPlan, error) {
	return redundancy.Allocate(cfg, faults)
}

// SelfRepair runs the full BISR flow: march test, allocation,
// re-verification through the repaired address map.
func SelfRepair(arr *FaultyArray, cfg RepairConfig, alg MarchAlgorithm) (RepairOutcome, error) {
	return bist.SelfRepair(arr, cfg, alg)
}

// --- scrubbing -------------------------------------------------------------

// ScrubModel parameterises the scrub-interval accumulation study
// (§2.1).
type ScrubModel = scrub.Model

// DefaultScrubModel returns the paper-configuration bank under a modern
// multi-bit upset mix.
func DefaultScrubModel() ScrubModel { return scrub.DefaultModel() }

// --- trace record / replay --------------------------------------------------

// TraceSummary reports aggregate statistics of a recorded trace.
type TraceSummary = trace.Summary

// RecordTrace captures n instructions of the named workload (core,
// thread, seed select the stream) into w in the compact binary format.
func RecordTrace(w io.Writer, workloadName string, core, thread int, seed int64, n int) (uint64, error) {
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return 0, err
	}
	src, err := workload.NewStream(prof, core, thread, seed)
	if err != nil {
		return 0, err
	}
	return trace.Record(w, src, n)
}

// ReplayTrace loads a recorded trace as a looping workload source that
// can drive the simulated cores.
func ReplayTrace(r io.Reader) (workload.Source, error) {
	return trace.NewReplayer(r)
}

// SummarizeTrace scans a recorded trace and reports its statistics.
func SummarizeTrace(r io.Reader) (TraceSummary, error) { return trace.Summarize(r) }

// --- protected functional cache ---------------------------------------------

// ProtectedCacheConfig sizes a complete 2D-protected set-associative
// cache (data and tag sub-arrays both protected).
type ProtectedCacheConfig = pcache.Config

// ProtectedCache is a functional write-back cache whose data AND tag
// stores live in 2D-coded arrays: reads and writes transparently
// detect and repair injected bit errors. Latency-sensitive callers
// should prefer ReadInto over Read: a clean hit served through
// ReadInto (or Write) performs zero heap allocations end to end.
type ProtectedCache = pcache.Cache

// CacheBacking is the next memory level behind a ProtectedCache.
type CacheBacking = pcache.Backing

// NewMemoryBacking returns a simple in-memory backing store.
func NewMemoryBacking(lineBytes int) *pcache.MapBacking {
	return pcache.NewMapBacking(lineBytes)
}

// NewProtectedCache builds the cache over a backing store.
func NewProtectedCache(cfg ProtectedCacheConfig, backing CacheBacking) (*ProtectedCache, error) {
	return pcache.New(cfg, backing)
}

// ErrCacheUncorrectable is the ProtectedCache's machine-check
// equivalent: an error footprint beyond the 2D coverage was detected.
// Recover with ProtectedCache.Repair, or let a ResilientCache's
// escalation ladder handle it. Match with errors.Is; the concrete
// error is always a *CacheUncorrectableError carrying the location.
var ErrCacheUncorrectable = pcache.ErrUncorrectable

// CacheUncorrectableError is the located machine-check: which array
// (data or tags), set, and way tripped beyond 2D coverage. It wraps
// ErrCacheUncorrectable.
type CacheUncorrectableError = pcache.UncorrectableError

// --- online resilience engine ------------------------------------------------

// ResilienceConfig tunes the recovery escalation ladder (retry → word
// recovery → full 2D recovery → decommission/remap).
type ResilienceConfig = resilience.Config

// ResilientCache wraps a ProtectedCache with the online escalation
// ladder: its Read/Write/Flush never surface a DUE that graceful
// degradation could absorb, and its Report exposes the health API.
type ResilientCache = resilience.Engine

// HealthReport is the resilience health snapshot: DUE rate, MTTR,
// per-rung escalation counts, scrub activity, and capacity lost to
// decommissioning.
type HealthReport = resilience.Report

// ScrubberConfig tunes the background scrubber (sweep interval,
// traffic-awareness threshold, catch-up bound).
type ScrubberConfig = resilience.ScrubberConfig

// CacheScrubber is the traffic-aware background sweeper; start it with
// Run(ctx) and stop it by cancelling the context.
type CacheScrubber = resilience.Scrubber

// --- bounded-latency operation -----------------------------------------------

// RecoveryBreakerConfig tunes the per-bank circuit breakers that sit in
// front of the recovery rungs (closed → open → half-open with probe
// repairs). Set via ResilienceConfig.Breaker.
type RecoveryBreakerConfig = resilience.BreakerConfig

// RecoveryWatchdogConfig tunes the stuck-repair watchdog (repair
// budget, scan cadence).
type RecoveryWatchdogConfig = resilience.WatchdogConfig

// RecoveryWatchdog force-escalates in-flight repairs that outlive their
// budget; build one with ResilientCache.NewWatchdog and run it with
// Start/Stop.
type RecoveryWatchdog = resilience.Watchdog

// ErrRecoveryInProgress matches (via errors.Is) errors returned by
// ReadCtx/WriteCtx/FlushCtx when a bounded request abandoned an
// in-flight repair at its deadline instead of riding it to the end.
// The concrete error is a *RecoveryInProgressError with the repair's
// progress; the triggering context error is also in the chain.
var ErrRecoveryInProgress = resilience.ErrRecoveryInProgress

// RecoveryInProgressError carries the abandoned repair's progress
// (bank, fault location, rung reached, elapsed time).
type RecoveryInProgressError = resilience.RecoveryInProgressError

// RecoveryStall is a chaos-injectable stall point; arm one and pass it
// via ResilienceConfig.RecoveryStall to wedge the full-2D rung and
// prove the watchdog unsticks it.
type RecoveryStall = fault.Stall

// NewResilientCache builds a protected cache over the backing store
// and wraps it with the recovery escalation ladder. Attach a
// background scrubber with ResilientCache.NewScrubber.
func NewResilientCache(cfg ProtectedCacheConfig, backing CacheBacking, rcfg ResilienceConfig) (*ResilientCache, error) {
	c, err := pcache.New(cfg, backing)
	if err != nil {
		return nil, err
	}
	return resilience.New(c, rcfg), nil
}

// --- sharded storage engine ----------------------------------------------------

// CacheStore is the storage-engine interface both a ResilientCache and
// a ShardedCache satisfy: protected reads/writes (plus Ctx variants),
// batch-amortised ReadBatch/WriteBatch, Flush, coherent Stats, and
// metrics/event wiring. Program against it to swap shard counts
// without touching call sites.
type CacheStore = store.Store

// ShardedCacheConfig assembles a sharded store: the shard count, the
// PER-SHARD cache geometry, the per-shard resilience template, and
// optional per-shard scrubbers and watchdogs (run with Start/Stop).
type ShardedCacheConfig = store.Config

// ShardedCache stripes line addresses across N fully independent
// ResilientCache instances: separate bank locks, breakers, scrubbers,
// and watchdogs per shard, so a storm or open breaker on one shard is
// invisible to the others. Per-shard metrics appear under "shard<i>_"
// prefixes in the root registry, cross-shard aggregates under
// "store_".
type ShardedCache = store.Sharded

// BatchReadOp is one read of a batch: a line-local span and, after the
// call, its outcome in Err.
type BatchReadOp = pcache.ReadOp

// BatchWriteOp is one write of a batch.
type BatchWriteOp = pcache.WriteOp

// NewShardedCache builds a sharded resilient store over one backing.
// Every shard sees the global address space — the backing observes
// exactly the addresses callers used, so a 1-shard and an N-shard
// store are interchangeable over the same data.
func NewShardedCache(cfg ShardedCacheConfig, backing CacheBacking) (*ShardedCache, error) {
	return store.New(cfg, backing)
}

// --- network serving layer ----------------------------------------------------

// NetServerConfig assembles a NetServer: the CacheStore to serve, the
// pipelined-single accumulation threshold, per-connection response
// queue bound, connection cap, metrics registry, and the optional loss
// epoch oracle behind the EPOCH opcode.
type NetServerConfig = netsrv.Config

// NetServer serves a CacheStore over TCP with the pipelined
// length-prefixed binary protocol: per-connection request accumulation
// onto the bank-amortised batch path, bounded response queues for
// backpressure, and graceful drain via Shutdown.
type NetServer = netsrv.Server

// NetClient is the pipelined protocol client — safe for concurrent
// callers, mirroring the CacheStore read/write/batch/flush surface
// over one connection. Remote failures unwrap to the same sentinels
// local calls return.
type NetClient = netsrv.Client

// Protocol-level failures surfaced by a NetClient.
var (
	ErrNetDraining    = netsrv.ErrDraining
	ErrNetBadRequest  = netsrv.ErrBadRequest
	ErrNetUnsupported = netsrv.ErrUnsupported
	ErrNetClosed      = netsrv.ErrClosed
)

// NewNetServer builds a protocol server over cfg.Store.
func NewNetServer(cfg NetServerConfig) (*NetServer, error) { return netsrv.NewServer(cfg) }

// DialNet connects a NetClient to a serving NetServer.
func DialNet(addr string) (*NetClient, error) { return netsrv.Dial(addr) }

// --- replicated cluster client -------------------------------------------------

// ClusterConfig assembles a ClusterClient: replica endpoints, the
// per-endpoint health breaker, hedging and retry policy, and the
// idempotent-writes declaration that gates retrying past ambiguity.
type ClusterConfig = cluster.Config

// ClusterClient is the replicated client over N NetServer endpoints:
// hedged reads, bounded failover retries, write fan-out with
// read-repair, and the freshness invariant that a replica which missed
// a write never serves a read for it.
type ClusterClient = cluster.Client

// ClusterConn is the per-endpoint transport a ClusterClient drives —
// NetClient satisfies it; tests may substitute fakes via
// ClusterConfig.Dial.
type ClusterConn = cluster.Conn

// ClusterEndpointStatus is one endpoint's health summary
// (ClusterClient.Endpoints).
type ClusterEndpointStatus = cluster.EndpointStatus

// Failures surfaced by a ClusterClient.
var (
	// ErrClusterAmbiguousWrite: the write failed on every replica and at
	// least one failure left the outcome unknown; the client will not
	// retry unless ClusterConfig.IdempotentWrites is set.
	ErrClusterAmbiguousWrite = cluster.ErrAmbiguousWrite
	// ErrClusterNoReplicas: no fresh, healthy replica could serve the
	// request.
	ErrClusterNoReplicas = cluster.ErrNoReplicas
	// ErrClusterClosed: the client has been closed.
	ErrClusterClosed = cluster.ErrClosed
)

// DialCluster builds a ClusterClient and dials every endpoint
// (endpoints that refuse start down and are redialled in the
// background).
func DialCluster(cfg ClusterConfig) (*ClusterClient, error) { return cluster.New(cfg) }

// --- network chaos proxy -------------------------------------------------------

// ChaosProxyConfig parameterises a ChaosProxy: per-chunk probabilities
// for resets, torn frames, black-hole drops, and delays, all drawn from
// seed-derived streams for reproducible runs.
type ChaosProxyConfig = fault.ChaosProxyConfig

// ChaosProxy is a seed-deterministic TCP fault injector to put in front
// of a NetServer — the network analogue of the in-memory fault Storm.
type ChaosProxy = fault.ChaosProxy

// NewChaosProxy binds the proxy's listener and starts accepting.
func NewChaosProxy(cfg ChaosProxyConfig) (*ChaosProxy, error) { return fault.NewChaosProxy(cfg) }

// --- observability -----------------------------------------------------------

// MetricsRegistry is the coherent metrics registry every subsystem
// registers into: snapshot it (coherent, clamped, monotonic), publish
// it over expvar, or mount its Prometheus text handler. Pass one via
// ResilienceConfig.Metrics to share a registry with the engine.
type MetricsRegistry = obs.Registry

// MetricsSnapshot is one coherent point-in-time view of a registry.
type MetricsSnapshot = obs.Snapshot

// LatencyHistogram is a registry-managed latency histogram; snapshot it
// for exact-bound SLO accounting (HistogramSnapshot.CountLE) and
// interpolated quantiles.
type LatencyHistogram = obs.Histogram

// EventSink receives structured resilience events (recovery start/end,
// scrub passes, degrade epochs, uncorrectable detections). Install one
// via ResilienceConfig.Sink.
type EventSink = obs.Sink

// NopEventSink is the do-nothing EventSink (the default).
type NopEventSink = obs.NopSink

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }
