package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrRecoveryInProgress is the sentinel matched by errors.Is when a
// bounded request gave up on a repair rather than riding it to the end:
// a coalesced waiter whose deadline expired, or a repair leader whose
// caller cancelled mid-ladder. The concrete error in the chain is
// always a *RecoveryInProgressError carrying the repair's progress.
var ErrRecoveryInProgress = errors.New("resilience: recovery in progress")

// RecoveryInProgressError reports that a request abandoned an in-flight
// repair on its bank. It wraps both ErrRecoveryInProgress (so callers
// can classify) and the triggering cause — typically
// context.DeadlineExceeded or context.Canceled — so standard deadline
// handling (errors.Is(err, context.DeadlineExceeded)) works unchanged.
//
// The data at the reported location is NOT lost: the repair it
// abandoned keeps running (or the next access restarts the ladder), and
// the loss-epoch protocol still accounts any eventual degradation.
type RecoveryInProgressError struct {
	// Bank is the bank whose repair the request abandoned; Array, Set
	// and Way locate the fault that started that repair.
	Bank     int
	Array    string
	Set, Way int
	// Rung names the ladder rung the repair had reached ("retry",
	// "word", "full-2d", "degrade") when the request gave up.
	Rung string
	// Elapsed is how long the repair had been running at that point.
	Elapsed time.Duration
	// Err is the triggering cause (context.DeadlineExceeded, ...).
	Err error
}

// Error implements error.
func (e *RecoveryInProgressError) Error() string {
	return fmt.Sprintf("resilience: bank %d repair in progress (rung %s, %s fault at set %d way %d, running %v): %v",
		e.Bank, e.Rung, e.Array, e.Set, e.Way, e.Elapsed, e.Err)
}

// Unwrap exposes both the classification sentinel and the cause.
func (e *RecoveryInProgressError) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrRecoveryInProgress}
	}
	return []error{ErrRecoveryInProgress, e.Err}
}
