package pcache

import (
	"errors"
	"testing"

	"twodcache/internal/obs"
)

// FuzzCacheVsBacking drives the protected cache with a fuzz-chosen
// interleaving of reads, writes, flushes, and bit flips, checking it
// against a shadow model. The injector flips at most one bit per
// currently-clean word — within the horizontal code's guaranteed
// detection — so the cache may lose data (recovery of an ambiguous
// multi-row pattern legitimately fails) but must never lie: any
// divergence from the shadow must be announced by a DUE whose Repair
// advanced the set's loss epoch. A mismatch with no epoch advance is
// silent corruption and fails the fuzz run.
//
// The geometry (64 data rows over 32 vertical groups) pairs rows in
// each group so fuzz-found flip patterns can genuinely exceed 2D
// coverage and exercise the DUE path, not just clean recovery.
func FuzzCacheVsBacking(f *testing.F) {
	f.Add([]byte{0, 1, 0, 42, 1, 1, 0, 0})
	f.Add([]byte{3, 0, 0, 0, 5, 3, 0, 1, 2, 70, 1, 0, 0, 0, 3})
	f.Add([]byte{0, 2, 3, 9, 3, 0, 2, 0, 8, 3, 0, 34, 0, 9, 1, 2, 3, 9, 2})
	// Recovery-heavy seed: write, then pile flips on the same set before
	// reading it back — forcing the repair path with obs hooks installed.
	f.Add([]byte{
		0, 5, 3, 77, 0,
		3, 1, 2, 0, 4, 3, 1, 2, 1, 5, 3, 1, 3, 0, 6, 3, 1, 3, 1, 7,
		1, 5, 3, 0, 0,
		2, 0, 0, 0, 0,
	})
	f.Fuzz(func(t *testing.T, program []byte) {
		const (
			lineBytes = 64
			sets      = 32
			lines     = 128 // 4 lines per set vs 2 ways: evictions happen
		)
		back := NewMapBacking(lineBytes)
		c := MustNew(Config{Sets: sets, Ways: 2, LineBytes: lineBytes, Banks: 1}, back)

		// Every fuzz execution runs with the observability hooks live so
		// fuzz-found recovery interleavings also exercise the metrics and
		// event paths; the registry must stay coherent throughout.
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		c.SetEventSink(obs.NopSink{})

		shadow := map[uint64]byte{} // by byte address
		wep := map[uint64]uint64{}  // loss epoch at last shadow update

		repair := func(addr uint64) {
			c.Repair(addr)
		}
		setOf := func(addr uint64) int { return int((addr / lineBytes) % sets) }

		for i := 0; i+4 < len(program); i += 5 {
			op, b1, b2, b3, b4 := program[i], program[i+1], program[i+2], program[i+3], program[i+4]
			switch op % 4 {
			case 0: // write one byte
				line := uint64(b1) % lines
				addr := line*lineBytes + uint64(b2)%lineBytes
				var err error
				for attempt := 0; attempt < 4; attempt++ {
					if err = c.Write(addr, []byte{b3}); err == nil {
						break
					}
					if !errors.Is(err, ErrUncorrectable) {
						t.Fatalf("write error %v", err)
					}
					repair(addr)
				}
				if err != nil {
					t.Fatalf("write never succeeded: %v", err)
				}
				shadow[addr] = b3
				wep[addr] = c.LossEpoch(setOf(addr))
			case 1: // read one byte, check against the shadow
				line := uint64(b1) % lines
				addr := line*lineBytes + uint64(b2)%lineBytes
				got, err := c.Read(addr, 1)
				if err != nil {
					if !errors.Is(err, ErrUncorrectable) {
						t.Fatalf("read error %v", err)
					}
					// Announced DUE: repair reverts the set to backing.
					repair(addr)
					got, err = c.Read(addr, 1)
					if err != nil {
						t.Fatalf("read after repair: %v", err)
					}
					shadow[addr] = got[0]
					wep[addr] = c.LossEpoch(setOf(addr))
					continue
				}
				if got[0] != shadow[addr] {
					if c.LossEpoch(setOf(addr)) == wep[addr] {
						t.Fatalf("SILENT divergence at %#x: got %d want %d (epoch unmoved)",
							addr, got[0], shadow[addr])
					}
					// Accounted loss: the set reverted to backing at some
					// point after this address was last modelled. Resync.
					shadow[addr] = got[0]
					wep[addr] = c.LossEpoch(setOf(addr))
				}
			case 2: // flush
				if err := c.Flush(); err != nil {
					if !errors.Is(err, ErrUncorrectable) {
						t.Fatalf("flush error %v", err)
					}
					var ue *UncorrectableError
					if !errors.As(err, &ue) {
						t.Fatalf("flush DUE not located: %v", err)
					}
					repair(uint64(ue.Set) * lineBytes)
				}
			case 3: // flip one bit in a currently-clean word
				data, tags := c.BankArrays(0)
				a := data
				if b1%4 == 0 {
					a = tags
				}
				r := int(b2) % a.Rows()
				wpr := a.Config().WordsPerRow
				w := int(b3) % wpr
				if _, ok := a.TryRead(r, w); ok {
					bit := int(b4) % (a.RowBits() / wpr)
					a.FlipBit(r, a.Layout().PhysColumn(w, bit))
				}
			}
		}

		// The registry snapshot must stay coherent no matter what the
		// program did: hits can never exceed accesses.
		if s := reg.Snapshot(); s.Counter(MetricHits)+s.Counter(MetricMisses) > s.Counter(MetricAccesses) {
			t.Fatalf("incoherent snapshot: hits %d + misses %d > accesses %d",
				s.Counter(MetricHits), s.Counter(MetricMisses), s.Counter(MetricAccesses))
		}

		// Final sweep: every modelled byte must still be explained.
		for addr, want := range shadow {
			got, err := c.Read(addr, 1)
			if err != nil {
				if !errors.Is(err, ErrUncorrectable) {
					t.Fatalf("final read error %v", err)
				}
				repair(addr)
				continue
			}
			if got[0] != want && c.LossEpoch(setOf(addr)) == wep[addr] {
				t.Fatalf("SILENT divergence at %#x on final sweep: got %d want %d",
					addr, got[0], want)
			}
		}
	})
}
