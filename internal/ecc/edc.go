package ecc

import (
	"fmt"
	"math/bits"

	"twodcache/internal/bitvec"
)

// EDC is the paper's interleaved-parity error detection code EDCn:
// n check bits per word where check bit i stores the parity of every
// n-th data bit starting at i (parity_bit[i] = xor(data[i], data[i+n],
// data[i+2n], ...)). EDCn detects all contiguous errors of up to n bits
// (each flipped bit falls in a distinct parity group). It corrects
// nothing by itself — in the 2D scheme correction is the vertical
// code's job.
//
// The kernel path computes all n group parities word-parallel: when n
// is a power of two (so n divides 64) a log-fold of the XOR-accumulated
// data words yields every group parity at once; otherwise precomputed
// per-group bit masks reduce each group to one OnesCount64 per data
// word.
type EDC struct {
	k int // data bits
	n int // interleave factor = check bits
	// foldable is true when n is a power of two: group(i) = i%n depends
	// only on i%64, so the XOR of all data words folds to the checks.
	foldable bool
	// groupMasks[wi*n+g] masks the bits of data word wi belonging to
	// parity group g (only built when !foldable).
	groupMasks []uint64
}

// NewEDC returns an EDCn code for k data bits. n must be positive, not
// exceed k, and fit the packed-syndrome kernels (n <= 64).
func NewEDC(k, n int) (*EDC, error) {
	if k <= 0 || n <= 0 || n > k {
		return nil, fmt.Errorf("ecc: invalid EDC parameters k=%d n=%d", k, n)
	}
	if n > 64 {
		return nil, fmt.Errorf("ecc: EDC n=%d exceeds the 64-bit packed syndrome", n)
	}
	e := &EDC{k: k, n: n, foldable: n&(n-1) == 0}
	if !e.foldable {
		dw := bitvec.WordsFor(k)
		e.groupMasks = make([]uint64, dw*n)
		for i := 0; i < k; i++ {
			e.groupMasks[(i/64)*n+i%n] |= 1 << uint(i%64)
		}
	}
	return e, nil
}

// MustEDC is NewEDC panicking on error.
func MustEDC(k, n int) *EDC {
	e, err := NewEDC(k, n)
	if err != nil {
		panic(err)
	}
	return e
}

// Name returns "EDC<n>".
func (e *EDC) Name() string { return fmt.Sprintf("EDC%d", e.n) }

// DataBits returns the number of data bits per codeword.
func (e *EDC) DataBits() int { return e.k }

// CheckBits returns n, the number of interleaved parity bits.
func (e *EDC) CheckBits() int { return e.n }

// CorrectCapability is 0: EDC is detection-only.
func (e *EDC) CorrectCapability() int { return 0 }

// DetectCapability is n for contiguous bursts.
func (e *EDC) DetectCapability() int { return e.n }

// dataChecks computes the n interleaved parity bits of the low k bits
// of w, packed into a uint64 (bit g = group g's parity). Bits beyond k
// in the straddling word are masked out, so w may be a full codeword's
// backing (check bits ignored).
func (e *EDC) dataChecks(w []uint64) uint64 {
	full := e.k >> 6
	rem := uint(e.k & 63)
	if e.foldable {
		var acc uint64
		for _, x := range w[:full] {
			acc ^= x
		}
		if rem != 0 {
			acc ^= w[full] & (1<<rem - 1)
		}
		for s := uint(32); s >= uint(e.n); s >>= 1 {
			acc ^= acc >> s
		}
		if e.n < 64 {
			acc &= 1<<uint(e.n) - 1
		}
		return acc
	}
	dw := bitvec.WordsFor(e.k)
	var syn uint64
	for g := 0; g < e.n; g++ {
		var acc uint64
		for wi := 0; wi < dw; wi++ {
			x := w[wi]
			if wi == full && rem != 0 {
				x &= 1<<rem - 1
			}
			acc ^= x & e.groupMasks[wi*e.n+g]
		}
		syn |= uint64(bits.OnesCount64(acc)&1) << uint(g)
	}
	return syn
}

// EncodeInto writes the codeword for data into cw without allocating.
func (e *EDC) EncodeInto(cw, data bitvec.Codeword) {
	if data.Len() != e.k || cw.Len() != e.k+e.n {
		panic(fmt.Sprintf("ecc: EDC EncodeInto lengths cw=%d data=%d want %d/%d",
			cw.Len(), data.Len(), e.k+e.n, e.k))
	}
	cw.Zero()
	copy(cw.Words(), data.Words())
	cw.StoreBits(e.k, e.n, e.dataChecks(cw.Words()))
}

// DecodeInPlace verifies the interleaved parity on a word view without
// allocating. EDC never corrects; any parity mismatch yields Detected.
func (e *EDC) DecodeInPlace(cw bitvec.Codeword) (Result, int) {
	if cw.Len() != e.k+e.n {
		panic(fmt.Sprintf("ecc: EDC codeword length %d != %d", cw.Len(), e.k+e.n))
	}
	if e.SyndromeWords(cw) == 0 {
		return Clean, 0
	}
	return Detected, 0
}

// SyndromeWords returns the packed n-bit parity mismatch of a codeword
// view (bit g set when parity group g is inconsistent), allocation-free.
func (e *EDC) SyndromeWords(cw bitvec.Codeword) uint64 {
	return e.dataChecks(cw.Words()) ^ cw.Uint64At(e.k)
}

// checks computes the n interleaved parity bits of data.
func (e *EDC) checks(data *bitvec.Vector) *bitvec.Vector {
	c := bitvec.New(e.n)
	c.AsCodeword().StoreBits(0, e.n, e.dataChecks(data.Words()))
	return c
}

// Encode appends the n parity bits to data.
func (e *EDC) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != e.k {
		panic(fmt.Sprintf("ecc: EDC encode length %d != k %d", data.Len(), e.k))
	}
	cw := bitvec.New(e.k + e.n)
	e.EncodeInto(cw.AsCodeword(), data.AsCodeword())
	return cw
}

// Decode verifies the interleaved parity. EDC never corrects; any parity
// mismatch yields Detected.
func (e *EDC) Decode(cw *bitvec.Vector) (Result, int) {
	if cw.Len() != e.k+e.n {
		panic(fmt.Sprintf("ecc: EDC codeword length %d != %d", cw.Len(), e.k+e.n))
	}
	return e.DecodeInPlace(cw.AsCodeword())
}

// Syndrome returns the n-bit parity mismatch vector: bit g is set when
// parity group g is inconsistent. The 2D recovery process uses it to
// identify faulty column groups.
func (e *EDC) Syndrome(cw *bitvec.Vector) *bitvec.Vector {
	s := bitvec.New(e.n)
	s.AsCodeword().StoreBits(0, e.n, e.SyndromeWords(cw.AsCodeword()))
	return s
}

// Data extracts the data bits.
func (e *EDC) Data(cw *bitvec.Vector) *bitvec.Vector { return cw.Slice(0, e.k) }

var _ Code = (*EDC)(nil)
