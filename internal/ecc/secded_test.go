package ecc

import (
	"math/rand"
	"testing"
)

func TestSECDEDClassicSizes(t *testing.T) {
	s64 := MustSECDED(64)
	if s64.CheckBits() != 8 {
		t.Fatalf("(72,64): r = %d", s64.CheckBits())
	}
	s256 := MustSECDED(256)
	if s256.CheckBits() != 10 {
		t.Fatalf("(266,256): r = %d", s256.CheckBits())
	}
	if _, err := NewSECDED(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSECDEDCleanAndData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{8, 64, 256} {
		s := MustSECDED(k)
		for i := 0; i < 20; i++ {
			d := randVec(rng, k)
			cw := s.Encode(d)
			if res, n := s.Decode(cw); res != Clean || n != 0 {
				t.Fatalf("k=%d: clean decode %v/%d", k, res, n)
			}
			if !s.Data(cw).Equal(d) {
				t.Fatalf("k=%d: data mismatch", k)
			}
		}
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	// Exhaustive: every single-bit flip (data or check) must be corrected.
	for _, k := range []int{16, 64} {
		s := MustSECDED(k)
		rng := rand.New(rand.NewSource(int64(k)))
		d := randVec(rng, k)
		clean := s.Encode(d)
		for pos := 0; pos < clean.Len(); pos++ {
			cw := clean.Clone()
			cw.Flip(pos)
			res, n := s.Decode(cw)
			if res != Corrected || n != 1 {
				t.Fatalf("k=%d pos=%d: %v/%d", k, pos, res, n)
			}
			if !cw.Equal(clean) {
				t.Fatalf("k=%d pos=%d: codeword not restored", k, pos)
			}
		}
	}
}

func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	s := MustSECDED(32)
	rng := rand.New(rand.NewSource(3))
	clean := s.Encode(randVec(rng, 32))
	n := clean.Len()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cw := clean.Clone()
			cw.Flip(a)
			cw.Flip(b)
			res, _ := s.Decode(cw)
			if res != Detected {
				t.Fatalf("double error (%d,%d) gave %v", a, b, res)
			}
			// Must not have modified the word.
			cwCheck := clean.Clone()
			cwCheck.Flip(a)
			cwCheck.Flip(b)
			if !cw.Equal(cwCheck) {
				t.Fatalf("double error (%d,%d) mutated codeword", a, b)
			}
		}
	}
}

func TestSECDEDColumnsDistinctOdd(t *testing.T) {
	s := MustSECDED(64)
	seen := map[uint16]bool{}
	for j, c := range s.cols {
		if c == 0 {
			t.Fatalf("column %d is zero", j)
		}
		if seen[c] {
			t.Fatalf("duplicate column %#x at %d", c, j)
		}
		seen[c] = true
		w := 0
		for x := c; x != 0; x &= x - 1 {
			w++
		}
		if w%2 == 0 {
			t.Fatalf("column %d has even weight %d", j, w)
		}
	}
}

func TestSECDEDHardErrorPlusSoftError(t *testing.T) {
	// The paper's Fig. 8(b) scenario: a stuck-at hard error plus a later
	// soft error in the same word defeats SECDED (detected, not
	// corrected) — the motivation for keeping 2D protection on top.
	s := MustSECDED(64)
	rng := rand.New(rand.NewSource(4))
	d := randVec(rng, 64)
	cw := s.Encode(d)
	cw.Flip(10) // manufacture-time hard error
	cw.Flip(40) // in-field soft error
	res, _ := s.Decode(cw)
	if res != Detected {
		t.Fatalf("hard+soft pair should be uncorrectable: %v", res)
	}
}
