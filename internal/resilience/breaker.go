package resilience

import (
	"time"
)

// BreakerConfig tunes a HealthBreaker. For the engine's per-bank
// breakers (set via Config.Breaker) the breaker sits in front of the
// recovery rungs, not in front of the bank: an open breaker does not
// reject traffic, it routes new uncorrectables on the bank straight to
// the degrade/bypass rung, bounding how much repair latency a
// persistently failing bank can charge its clients. The cluster layer
// reuses the same machine per replica endpoint, where an open breaker
// excludes the endpoint from reads and write fan-out attempts.
type BreakerConfig struct {
	// Disabled turns the breakers off: every repair runs the full
	// ladder, as before this layer existed.
	Disabled bool
	// FailureThreshold is how many consecutive failed repairs (rungs
	// exhausted, watchdog force-escalation) trip a closed breaker open.
	// Zero or negative selects 5.
	FailureThreshold int
	// OpenTimeout is how long an open breaker sheds before allowing a
	// half-open probe repair. Zero or negative selects 10ms.
	OpenTimeout time.Duration
	// ProbeSuccesses is how many consecutive successful probes close a
	// half-open breaker. Zero or negative selects 2.
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 10 * time.Millisecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// admitVerdict is the breaker's routing decision for a would-be repair.
type admitVerdict int

const (
	// admitRun: run the full ladder (breaker closed or disabled).
	admitRun admitVerdict = iota
	// admitProbe: run the full ladder as a half-open probe; the result
	// decides whether the breaker closes or re-opens.
	admitProbe
	// admitShed: skip the recovery rungs, go straight to degrade.
	admitShed
)

// newBankBreakers builds the engine's per-bank breakers over the shared
// HealthBreaker machine. The transition hook keeps the engine's gauge,
// trip/transition counters, and event stream exactly as the in-line
// implementation did: every entry into the open state is a trip.
func (e *Engine) newBankBreakers(n int) []*HealthBreaker {
	bs := make([]*HealthBreaker, n)
	for i := range bs {
		bank := i
		bs[i] = NewHealthBreaker(e.cfg.Breaker, e.clock, func(from, to, reason string) {
			if to == breakerOpen.String() {
				e.breakersOpen.Add(1)
				e.breakerTrips.Inc()
			}
			if from == breakerOpen.String() {
				e.breakersOpen.Add(-1)
			}
			e.breakerTransitions.Inc()
			e.snk().BreakerTransition(bank, from, to, reason)
		})
	}
	return bs
}

// admit asks bank's breaker how to route a new repair. Single-flight
// serialises repairs per bank, so admit/record pairs never interleave
// for the same bank in practice; the breaker is still safe on its own.
func (e *Engine) admit(bank int) admitVerdict {
	if e.cfg.Breaker.Disabled {
		return admitRun
	}
	switch e.breakers[bank].Admit() {
	case BreakerRun:
		return admitRun
	case BreakerProbe:
		return admitProbe
	default:
		return admitShed
	}
}

// recordBreaker feeds a finished repair's outcome back into bank's
// breaker. success means the rungs rescued the access without the
// watchdog forcing the repair over.
func (e *Engine) recordBreaker(bank int, probe, success bool) {
	if e.cfg.Breaker.Disabled {
		return
	}
	e.breakers[bank].Record(probe, success)
}

// releaseBreaker returns a probe slot without recording an outcome —
// the repair aborted for reasons that say nothing about the bank's
// health (caller deadline, hard non-DUE error).
func (e *Engine) releaseBreaker(bank int, probe bool) {
	if !probe || e.cfg.Breaker.Disabled {
		return
	}
	e.breakers[bank].Release(probe)
}

// BreakerState reports bank's breaker state ("closed", "open",
// "half-open") for reports and tests.
func (e *Engine) BreakerState(bank int) string {
	if e.cfg.Breaker.Disabled || bank < 0 || bank >= len(e.breakers) {
		return breakerClosed.String()
	}
	return e.breakers[bank].State()
}
