package twodcache_test

import (
	"fmt"

	"twodcache"
)

// The paper's running configuration: an 8 kB array of 4-way interleaved
// (72,64) EDC8 codewords with 32 vertical parity rows corrects any
// clustered error up to 32x32 bits.
func Example() {
	arr := twodcache.NewPaperArray()
	arr.Write(0, 0, twodcache.WordFromUint64(0xC0FFEE, 64))

	// A 32x32 single-event upset...
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			arr.FlipBit(r, c)
		}
	}

	// ...is detected by the horizontal code on the next read and
	// repaired by the vertical recovery process.
	data, status := arr.Read(0, 0)
	fmt.Println(status, data.Uint64())
	// Output: recovered-2d 12648430
}

// Custom configurations choose the horizontal code, the physical
// interleave degree, and the vertical interleave factor V; coverage is
// V rows by (EDCn detect width x interleave) columns.
func ExampleNewArray() {
	h, err := twodcache.NewEDC(64, 16)
	if err != nil {
		panic(err)
	}
	arr, err := twodcache.NewArray(twodcache.ArrayConfig{
		Rows:           128,
		WordsPerRow:    2,
		Horizontal:     h,
		VerticalGroups: 16,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d words of %d bits, coverage %dx%d bits\n",
		arr.Words(), arr.DataBits(), arr.VerticalGroups(), 16*2)
	// Output: 256 words of 64 bits, coverage 16x32 bits
}

// The BCH baselines are real codecs: OECNED corrects any 8 bit errors
// in a (121,64) codeword.
func ExampleNewOECNED() {
	code, err := twodcache.NewOECNED(64)
	if err != nil {
		panic(err)
	}
	cw := code.Encode(twodcache.WordFromUint64(12345, 64))
	for i := 0; i < 8; i++ {
		cw.Flip(i * 13)
	}
	res, n := code.Decode(cw)
	fmt.Println(res, n, code.Data(cw).Uint64())
	// Output: corrected 8 12345
}

// CacheYield evaluates the Fig. 8(a) repair policies.
func ExampleCacheYield() {
	g := twodcache.YieldGeometry{Words: 16 << 20 * 8 / 64, WordBits: 72}
	y := twodcache.CacheYield(g, 2400, twodcache.YieldPolicy{ECC: true, SpareRows: 32})
	fmt.Printf("%.0f%%\n", y*100)
	// Output: 100%
}

// A ShardedCache stripes the address space across independent
// resilient engines; batches amortise locking per bank and per shard.
func ExampleNewShardedCache() {
	st, err := twodcache.NewShardedCache(twodcache.ShardedCacheConfig{
		Shards: 4, // 4 independent engines, line-interleaved
		Cache:  twodcache.ProtectedCacheConfig{Sets: 16, Ways: 2, LineBytes: 64},
	}, twodcache.NewMemoryBacking(64))
	if err != nil {
		panic(err)
	}
	writes := []twodcache.BatchWriteOp{
		{Addr: 0 * 64, Data: []byte("two")},
		{Addr: 1 * 64, Data: []byte("dee")},
	}
	if failed := st.WriteBatch(writes); failed != 0 {
		panic("write batch failed")
	}
	reads := []twodcache.BatchReadOp{
		{Addr: 0 * 64, Dst: make([]byte, 3)},
		{Addr: 1 * 64, Dst: make([]byte, 3)},
	}
	if failed := st.ReadBatch(reads); failed != 0 {
		panic("read batch failed")
	}
	fmt.Printf("%s%s from shards %d and %d of %d\n",
		reads[0].Dst, reads[1].Dst,
		st.ShardOf(reads[0].Addr), st.ShardOf(reads[1].Addr), st.NumShards())
	// Output: twodee from shards 0 and 1 of 4
}

// A ProtectedCache keeps real data and tags in 2D-coded arrays and
// recovers injected errors transparently.
func ExampleNewProtectedCache() {
	cache, err := twodcache.NewProtectedCache(
		twodcache.ProtectedCacheConfig{Sets: 16, Ways: 2, LineBytes: 64},
		twodcache.NewMemoryBacking(64))
	if err != nil {
		panic(err)
	}
	if err := cache.Write(0x100, []byte("resilient")); err != nil {
		panic(err)
	}
	// A soft error strikes the bank that holds 0x100's set (set 4 =
	// (0x100/64) % 16): BankOf finds it, BankArrays exposes its arrays.
	da, _ := cache.BankArrays(cache.BankOf(4))
	da.FlipBit(0, 5)
	got, err := cache.Read(0x100, 9)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(got))
	// Output: resilient
}
