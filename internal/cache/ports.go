package cache

// Ports tracks per-cycle, per-bank port availability. The simulator
// calls NewCycle once per cycle, then Take to claim slots; a claim
// fails when the bank's ports are exhausted — the structural hazard
// through which 2D coding's read-before-write traffic costs
// performance (§4, §5.1).
type Ports struct {
	banks   int
	perBank int
	used    []int
	// claimed counts total slots handed out (lifetime), busy sums
	// cycles in which at least one slot was taken — both feed
	// occupancy statistics.
	claimed uint64
}

// NewPorts builds a port tracker for banks*perBank slots per cycle.
func NewPorts(banks, perBank int) *Ports {
	return &Ports{banks: banks, perBank: perBank, used: make([]int, banks)}
}

// NewCycle resets the per-cycle usage.
func (p *Ports) NewCycle() {
	for i := range p.used {
		p.used[i] = 0
	}
}

// Take claims one slot on the given bank, reporting success.
func (p *Ports) Take(bank int) bool {
	if p.used[bank] >= p.perBank {
		return false
	}
	p.used[bank]++
	p.claimed++
	return true
}

// Idle reports whether the bank still has a free slot this cycle.
func (p *Ports) Idle(bank int) bool { return p.used[bank] < p.perBank }

// Claimed returns the lifetime number of slots handed out.
func (p *Ports) Claimed() uint64 { return p.claimed }

// MSHRFile bounds outstanding misses and merges requests to the same
// line.
type MSHRFile struct {
	cap     int
	pending map[uint64][]int // line addr -> waiter tokens
}

// NewMSHRFile builds an MSHR file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity, pending: make(map[uint64][]int)}
}

// Full reports whether a new (non-mergeable) miss can be accepted.
func (m *MSHRFile) Full() bool { return len(m.pending) >= m.cap }

// Outstanding returns the number of allocated MSHRs.
func (m *MSHRFile) Outstanding() int { return len(m.pending) }

// Lookup reports whether a miss to the line is already outstanding.
func (m *MSHRFile) Lookup(lineAddr uint64) bool {
	_, ok := m.pending[lineAddr]
	return ok
}

// Allocate registers a miss (or merges into an existing one) and
// attaches a waiter token. It reports false when the file is full and
// no merge is possible.
func (m *MSHRFile) Allocate(lineAddr uint64, waiter int) bool {
	if ws, ok := m.pending[lineAddr]; ok {
		m.pending[lineAddr] = append(ws, waiter)
		return true
	}
	if len(m.pending) >= m.cap {
		return false
	}
	m.pending[lineAddr] = []int{waiter}
	return true
}

// Complete removes the entry for lineAddr and returns its waiters.
func (m *MSHRFile) Complete(lineAddr uint64) []int {
	ws := m.pending[lineAddr]
	delete(m.pending, lineAddr)
	return ws
}
