package experiments

import (
	"fmt"

	"twodcache/internal/sim"
)

// Table1 reproduces Table 1: the simulated system parameters of the fat
// and lean CMP baselines, as configured in internal/sim.
func Table1() Table {
	fat, lean := sim.FatConfig(), sim.LeanConfig()
	row := func(name string, f func(sim.SystemConfig) string) []string {
		return []string{name, f(fat), f(lean)}
	}
	t := Table{
		ID:     "tab1",
		Title:  "Table 1: simulated systems",
		Header: []string{"parameter", "Fat CMP", "Lean CMP"},
	}
	t.Rows = append(t.Rows,
		row("cores", func(c sim.SystemConfig) string {
			kind := "in-order"
			if c.OoO {
				kind = "OoO"
			}
			return fmt.Sprintf("%d x %d-wide %s, %d thread(s)", c.Cores, c.Width, kind, c.ThreadsPerCore)
		}),
		row("store queue", func(c sim.SystemConfig) string { return fmt.Sprintf("%d entries", c.SQSize) }),
		row("L1 D-cache", func(c sim.SystemConfig) string {
			return fmt.Sprintf("%dkB %d-way %dB lines, %d-cycle, %d port(s), write-back",
				c.L1.SizeBytes>>10, c.L1.Assoc, c.L1.LineBytes, c.L1.HitLatency, c.L1.PortsPerBank)
		}),
		row("L2 cache", func(c sim.SystemConfig) string {
			return fmt.Sprintf("%dMB %d-way %dB lines, %d-cycle, %d banks, %d MSHRs",
				c.L2.SizeBytes>>20, c.L2.Assoc, c.L2.LineBytes, c.L2.HitLatency, c.L2.Banks, c.L2.MSHRs)
		}),
		row("crossbar", func(c sim.SystemConfig) string { return fmt.Sprintf("%d cycle", c.CrossbarLat) }),
		row("memory", func(c sim.SystemConfig) string { return fmt.Sprintf("%d cycles (60ns at 4GHz)", c.MemLat) }),
	)
	t.Rows = append(t.Rows, []string{"workloads", "OLTP, DSS, Web, Moldyn, Ocean, Sparse (synthetic equivalents)", "same"})
	return t
}
