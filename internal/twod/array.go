package twod

import (
	"fmt"
	"sync/atomic"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// Config parameterises a 2D-protected array.
type Config struct {
	// Rows is the number of data rows.
	Rows int
	// WordsPerRow is the physical bit-interleave degree d.
	WordsPerRow int
	// Horizontal is the per-word code checked on every read (EDCn or
	// SECDED).
	Horizontal ecc.HorizontalCode
	// VerticalGroups is V, the number of interleaved vertical parity
	// rows: data row r accumulates into parity row r mod V. The paper's
	// EDC32 vertical code is V = 32.
	VerticalGroups int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Horizontal == nil {
		return fmt.Errorf("twod: nil horizontal code")
	}
	if c.Rows <= 0 || c.WordsPerRow <= 0 {
		return fmt.Errorf("twod: invalid geometry rows=%d words/row=%d", c.Rows, c.WordsPerRow)
	}
	if c.VerticalGroups <= 0 || c.VerticalGroups > c.Rows {
		return fmt.Errorf("twod: vertical groups %d out of range [1,%d]", c.VerticalGroups, c.Rows)
	}
	return nil
}

// Stats counts array activity; the CMP simulator and the overhead
// benches consume these. Counters are maintained with atomic adds so
// concurrent readers holding a shared lock (see TryRead) do not race.
type Stats struct {
	// Reads is the number of word read operations.
	Reads uint64
	// Writes is the number of word write operations.
	Writes uint64
	// ExtraReads counts the read-before-write operations issued to
	// update the vertical parity (the paper's ~20% extra accesses).
	ExtraReads uint64
	// InlineCorrections counts single-bit errors repaired by the
	// horizontal SECDED code without entering 2D recovery.
	InlineCorrections uint64
	// Recoveries counts invocations of the 2D recovery process.
	Recoveries uint64
	// RecoveredWords counts words repaired by 2D recovery.
	RecoveredWords uint64
	// Uncorrectable counts recovery attempts that failed (error
	// exceeded the 2D coverage).
	Uncorrectable uint64
}

// ReadStatus reports how a read completed.
type ReadStatus int

const (
	// ReadClean means the horizontal code checked clean.
	ReadClean ReadStatus = iota
	// ReadCorrectedInline means SECDED repaired a single-bit error
	// without invoking 2D recovery.
	ReadCorrectedInline
	// ReadRecovered means 2D recovery ran and repaired the word.
	ReadRecovered
	// ReadUncorrectable means the error exceeded 2D coverage; the
	// returned data is not trustworthy.
	ReadUncorrectable
)

// String names the read status.
func (s ReadStatus) String() string {
	switch s {
	case ReadClean:
		return "clean"
	case ReadCorrectedInline:
		return "corrected-inline"
	case ReadRecovered:
		return "recovered-2d"
	case ReadUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ReadStatus(%d)", int(s))
	}
}

// Array is a memory array protected by 2D error coding. All storage —
// data bits, horizontal check bits, and vertical parity rows — is
// explicit, so fault injection can flip any physical bit and recovery
// must cope exactly as hardware would.
type Array struct {
	cfg    Config
	layout Layout
	data   *bitvec.Matrix // Rows x RowBits: interleaved codewords
	vpar   *bitvec.Matrix // VerticalGroups x RowBits: parity rows
	stats  Stats
}

// NewArray builds a zero-initialised protected array (vertical parity
// of all-zero data is all zero, so the array starts consistent).
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout := Layout{
		Rows:         cfg.Rows,
		WordsPerRow:  cfg.WordsPerRow,
		CodewordBits: ecc.CodewordBits(cfg.Horizontal),
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		cfg:    cfg,
		layout: layout,
		data:   bitvec.NewMatrix(cfg.Rows, layout.RowBits()),
		vpar:   bitvec.NewMatrix(cfg.VerticalGroups, layout.RowBits()),
	}, nil
}

// MustArray is NewArray panicking on error.
func MustArray(cfg Config) *Array {
	a, err := NewArray(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// Layout returns the physical geometry.
func (a *Array) Layout() Layout { return a.layout }

// Stats returns a snapshot of the activity counters.
func (a *Array) Stats() Stats {
	return Stats{
		Reads:             atomic.LoadUint64(&a.stats.Reads),
		Writes:            atomic.LoadUint64(&a.stats.Writes),
		ExtraReads:        atomic.LoadUint64(&a.stats.ExtraReads),
		InlineCorrections: atomic.LoadUint64(&a.stats.InlineCorrections),
		Recoveries:        atomic.LoadUint64(&a.stats.Recoveries),
		RecoveredWords:    atomic.LoadUint64(&a.stats.RecoveredWords),
		Uncorrectable:     atomic.LoadUint64(&a.stats.Uncorrectable),
	}
}

// ResetStats zeroes the activity counters.
func (a *Array) ResetStats() {
	atomic.StoreUint64(&a.stats.Reads, 0)
	atomic.StoreUint64(&a.stats.Writes, 0)
	atomic.StoreUint64(&a.stats.ExtraReads, 0)
	atomic.StoreUint64(&a.stats.InlineCorrections, 0)
	atomic.StoreUint64(&a.stats.Recoveries, 0)
	atomic.StoreUint64(&a.stats.RecoveredWords, 0)
	atomic.StoreUint64(&a.stats.Uncorrectable, 0)
}

// Words returns the number of addressable words.
func (a *Array) Words() int { return a.layout.Words() }

// DataBits returns the logical word width.
func (a *Array) DataBits() int { return a.cfg.Horizontal.DataBits() }

// group returns the vertical parity group of data row r.
func (a *Array) group(r int) int { return r % a.cfg.VerticalGroups }

// extract reads word w's codeword out of physical row r.
func (a *Array) extract(r, w int) *bitvec.Vector {
	cw := bitvec.New(a.layout.CodewordBits)
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		if row.Bit(a.layout.PhysColumn(w, b)) {
			cw.Set(b, true)
		}
	}
	return cw
}

// store writes codeword cw into word slot (r, w), updating the vertical
// parity for every bit that changes (the delta-XOR of Fig. 4(a) step 2).
func (a *Array) store(r, w int, cw *bitvec.Vector) {
	row := a.data.Row(r)
	par := a.vpar.Row(a.group(r))
	for b := 0; b < a.layout.CodewordBits; b++ {
		col := a.layout.PhysColumn(w, b)
		old := row.Bit(col)
		nv := cw.Bit(b)
		if old != nv {
			row.Set(col, nv)
			par.Flip(col)
		}
	}
}

// checkWord returns the horizontal syndrome of word (r, w).
func (a *Array) checkWord(r, w int) uint64 {
	return a.cfg.Horizontal.SyndromeBits(a.extract(r, w))
}

// Write stores data (DataBits wide) into word w of row r. Every write
// is converted to a read-before-write: the old codeword is read both to
// compute the vertical parity delta and to check its integrity — a
// latent error under the overwritten word triggers recovery first, as
// the hardware's read-check would.
func (a *Array) Write(r, w int, data *bitvec.Vector) ReadStatus {
	if data.Len() != a.DataBits() {
		panic(fmt.Sprintf("twod: Write data width %d != %d", data.Len(), a.DataBits()))
	}
	atomic.AddUint64(&a.stats.Writes, 1)
	atomic.AddUint64(&a.stats.ExtraReads, 1) // the read-before-write
	status := ReadClean
	if a.checkWord(r, w) != 0 {
		// Latent error under the write target: repair before computing
		// the delta, otherwise the corruption would poison the parity.
		if !a.repairWord(r, w) {
			// Unrepairable latent damage. A delta against the corrupted
			// old word would fold its unknown error pattern into the
			// vertical parity with no faulty word left to flag it; a
			// later row-mode recovery would then replay that residue
			// into an innocent row of the group — silent corruption if
			// the residue happens to be a valid codeword pattern.
			// Overwrite raw and rebuild parity from the array as it now
			// stands: rows that remain faulty keep failing their
			// horizontal check and surface as detected-uncorrectable.
			a.storeRaw(r, w, a.cfg.Horizontal.Encode(data))
			a.rebuildParity()
			return ReadUncorrectable
		}
		status = ReadRecovered
	}
	a.store(r, w, a.cfg.Horizontal.Encode(data))
	return status
}

// Read returns word w of row r, checking the horizontal code and
// escalating to in-line SECDED correction or full 2D recovery as
// needed.
func (a *Array) Read(r, w int) (*bitvec.Vector, ReadStatus) {
	atomic.AddUint64(&a.stats.Reads, 1)
	cw := a.extract(r, w)
	res, _ := a.cfg.Horizontal.Decode(cw)
	switch res {
	case ecc.Clean:
		return a.cfg.Horizontal.Data(cw), ReadClean
	case ecc.Corrected:
		// SECDED fixed a single-bit error in the copy; write the repair
		// back to the cells. The vertical parity reflects intended
		// contents, so restoring a corrupted cell must NOT touch parity.
		atomic.AddUint64(&a.stats.InlineCorrections, 1)
		a.storeRaw(r, w, cw)
		return a.cfg.Horizontal.Data(cw), ReadCorrectedInline
	default:
		if !a.repairWord(r, w) {
			cw = a.extract(r, w)
			return a.cfg.Horizontal.Data(cw), ReadUncorrectable
		}
		cw = a.extract(r, w)
		return a.cfg.Horizontal.Data(cw), ReadRecovered
	}
}

// TryRead returns word (r, w) if its horizontal code checks clean,
// WITHOUT mutating the array: no inline correction, no recovery. The
// second result is false when the word needs repair, in which case the
// caller must escalate to Read (or Recover) under exclusive access.
// Because the only side effect is an atomic counter, TryRead is safe
// for many concurrent callers as long as no writer runs — the
// shared-lock fast path of a concurrent cache.
func (a *Array) TryRead(r, w int) (*bitvec.Vector, bool) {
	atomic.AddUint64(&a.stats.Reads, 1)
	cw := a.extract(r, w)
	if a.cfg.Horizontal.SyndromeBits(cw) != 0 {
		return nil, false
	}
	return a.cfg.Horizontal.Data(cw), true
}

// CorrectWord attempts a targeted word-level repair of (r, w) using the
// horizontal code only — no array-wide recovery march. It reports
// whether the word now checks clean. Detection-only horizontal codes
// (EDCn) can confirm a clean word but never repair a dirty one; a
// correcting code (SECDED) fixes single-bit errors in place. This is
// the cheap middle rung of a recovery escalation ladder: between a bare
// retry and the full Fig. 4(b) recovery process.
func (a *Array) CorrectWord(r, w int) bool {
	cw := a.extract(r, w)
	res, _ := a.cfg.Horizontal.Decode(cw)
	switch res {
	case ecc.Clean:
		return true
	case ecc.Corrected:
		// Restoring corrupted cells to their intended value must not
		// touch the vertical parity (it already reflects intent).
		atomic.AddUint64(&a.stats.InlineCorrections, 1)
		a.storeRaw(r, w, cw)
		return true
	default:
		return false
	}
}

// FaultyWordList returns the coordinates of every word whose horizontal
// code currently flags an error, without mutating anything. Scrubbers
// use it after a failed recovery to map residual damage back to the
// cache lines that must be decommissioned.
func (a *Array) FaultyWordList() [][2]int {
	var out [][2]int
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			if a.checkWord(r, w) != 0 {
				out = append(out, [2]int{r, w})
			}
		}
	}
	return out
}

// storeRaw writes codeword bits without a parity delta — used only to
// restore corrupted cells to their intended value.
func (a *Array) storeRaw(r, w int, cw *bitvec.Vector) {
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		row.Set(a.layout.PhysColumn(w, b), cw.Bit(b))
	}
}

// repairWord runs 2D recovery and reports whether word (r, w) now
// checks clean.
func (a *Array) repairWord(r, w int) bool {
	a.Recover()
	return a.checkWord(r, w) == 0
}

// --- fault-injection surface (used by internal/fault) -----------------

// FlipBit flips the physical data bit at (row, col) WITHOUT updating
// the vertical parity: this models an error, not a write.
func (a *Array) FlipBit(row, col int) { a.data.Flip(row, col) }

// FlipParityBit flips a bit of vertical parity row g: errors can strike
// the parity storage too.
func (a *Array) FlipParityBit(g, col int) { a.vpar.Flip(g, col) }

// RowBits returns the physical row width.
func (a *Array) RowBits() int { return a.layout.RowBits() }

// Rows returns the number of data rows.
func (a *Array) Rows() int { return a.cfg.Rows }

// VerticalGroups returns V.
func (a *Array) VerticalGroups() int { return a.cfg.VerticalGroups }

// SnapshotData returns a deep copy of the data matrix, for
// campaign-level golden comparisons.
func (a *Array) SnapshotData() *bitvec.Matrix { return a.data.Clone() }

// ForceWrite overwrites word (r, w) unconditionally — no
// read-before-write, no integrity check — and rebuilds the vertical
// parity from scratch. It is the software-visible "reload after an
// uncorrectable error" path: after data beyond the 2D coverage is
// detected (a machine-check in real hardware), the OS refetches the
// line and the array must return to a consistent state regardless of
// how corrupted it was.
func (a *Array) ForceWrite(r, w int, data *bitvec.Vector) {
	if data.Len() != a.DataBits() {
		panic(fmt.Sprintf("twod: ForceWrite data width %d != %d", data.Len(), a.DataBits()))
	}
	atomic.AddUint64(&a.stats.Writes, 1)
	a.storeRaw(r, w, a.cfg.Horizontal.Encode(data))
	a.rebuildParity()
}
