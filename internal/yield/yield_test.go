package yield

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"Spare_128":      {SpareRows: 128},
		"ECC Only":       {ECC: true},
		"ECC + Spare_16": {ECC: true, SpareRows: 16},
	}
	for want, pol := range cases {
		if got := pol.String(); got != want {
			t.Errorf("%+v = %q, want %q", pol, got, want)
		}
	}
}

func TestYieldBoundaries(t *testing.T) {
	g := Geometry16MBL2()
	if y := Yield(g, 0, Policy{}); y != 1 {
		t.Fatalf("zero faults yield = %v", y)
	}
	if y := Yield(g, -5, Policy{ECC: true}); y != 1 {
		t.Fatalf("negative faults yield = %v", y)
	}
}

func TestYieldMonotoneInFaults(t *testing.T) {
	g := Geometry16MBL2()
	for _, pol := range []Policy{{SpareRows: 128}, {ECC: true}, {ECC: true, SpareRows: 16}} {
		prev := 1.0
		for _, n := range []int{0, 400, 800, 1600, 2400, 3200, 4000} {
			y := Yield(g, n, pol)
			if y > prev+1e-9 {
				t.Fatalf("%v: yield increased at %d faults (%v > %v)", pol, n, y, prev)
			}
			if y < 0 || y > 1 {
				t.Fatalf("%v: yield out of range %v", pol, y)
			}
			prev = y
		}
	}
}

func TestFig8aOrdering(t *testing.T) {
	// At a moderate fault count, the paper's ordering holds:
	// Spare_128 << ECC Only < ECC+Spare_16 <= ECC+Spare_32 ~ 1.
	g := Geometry16MBL2()
	n := 2400
	spare := Yield(g, n, Policy{SpareRows: 128})
	eccOnly := Yield(g, n, Policy{ECC: true})
	ecc16 := Yield(g, n, Policy{ECC: true, SpareRows: 16})
	ecc32 := Yield(g, n, Policy{ECC: true, SpareRows: 32})
	if spare > 0.01 {
		t.Fatalf("Spare_128 at %d faults = %v, want ~0", n, spare)
	}
	if !(eccOnly < ecc16 && ecc16 <= ecc32) {
		t.Fatalf("ordering violated: %v %v %v", eccOnly, ecc16, ecc32)
	}
	if ecc32 < 0.95 {
		t.Fatalf("ECC+Spare_32 at %d faults = %v, want ~1", n, ecc32)
	}
}

func TestSpareOnlyDiesEarly(t *testing.T) {
	// With 128 spares and no ECC, yield collapses once faults clearly
	// exceed the spare count (the paper's "falls quickly" curve).
	g := Geometry16MBL2()
	if y := Yield(g, 100, Policy{SpareRows: 128}); y < 0.95 {
		t.Fatalf("100 faults vs 128 spares: yield = %v", y)
	}
	if y := Yield(g, 400, Policy{SpareRows: 128}); y > 0.01 {
		t.Fatalf("400 faults vs 128 spares: yield = %v", y)
	}
}

func TestAnalyticMatchesMonteCarlo(t *testing.T) {
	// Use a small geometry so the Monte Carlo converges quickly.
	g := Geometry{Words: 4096, WordBits: 72}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		faults int
		pol    Policy
	}{
		{50, Policy{ECC: true, SpareRows: 0}},
		{120, Policy{ECC: true, SpareRows: 2}},
		{60, Policy{SpareRows: 64}},
	} {
		an := Yield(g, tc.faults, tc.pol)
		mc := YieldMonteCarlo(rng, g, tc.faults, tc.pol, 4000)
		if math.Abs(an-mc) > 0.05 {
			t.Fatalf("%v faults=%d: analytic %v vs MC %v", tc.pol, tc.faults, an, mc)
		}
	}
}

func TestCurveShape(t *testing.T) {
	g := Geometry16MBL2()
	xs := []int{0, 800, 1600, 2400, 3200, 4000}
	c := Curve(g, xs, Policy{ECC: true, SpareRows: 32})
	if len(c) != len(xs) {
		t.Fatalf("curve length %d", len(c))
	}
	if c[0] != 1 {
		t.Fatalf("curve[0] = %v", c[0])
	}
}

func TestReliabilityBasics(t *testing.T) {
	cfg := ReliabilityConfig{
		Caches:        10,
		Geometry:      Geometry16MBL2(),
		FITPerMb:      1000,
		HardErrorRate: 0.00001, // 0.001%
	}
	if p := cfg.SuccessProbability(0); p != 1 {
		t.Fatalf("P(0y) = %v", p)
	}
	p1 := cfg.SuccessProbability(1)
	p5 := cfg.SuccessProbability(5)
	if !(p5 < p1 && p1 < 1) {
		t.Fatalf("not declining: %v %v", p1, p5)
	}
	// 2D coding keeps success at 1 regardless.
	cfg.TwoD = true
	if p := cfg.SuccessProbability(5); p != 1 {
		t.Fatalf("2D P(5y) = %v", p)
	}
}

func TestReliabilityHEROrdering(t *testing.T) {
	// Fig. 8(b): higher hard-error rates decay faster.
	base := ReliabilityConfig{Caches: 10, Geometry: Geometry16MBL2(), FITPerMb: 1000}
	her := []float64{0.000005, 0.00001, 0.00005} // 0.0005%..0.005%
	var prev = 1.0
	for _, h := range her {
		cfg := base
		cfg.HardErrorRate = h
		p := cfg.SuccessProbability(5)
		if p >= prev {
			t.Fatalf("HER=%v: P=%v not below %v", h, p, prev)
		}
		prev = p
	}
	// The highest HER must show a substantial 5-year failure risk (the
	// paper's argument that ECC must not be spent on hard errors).
	if prev > 0.9 {
		t.Fatalf("HER=0.005%%: P(5y) = %v, want substantial decay", prev)
	}
}

func TestReliabilityCurveLength(t *testing.T) {
	cfg := ReliabilityConfig{Caches: 10, Geometry: Geometry16MBL2(), FITPerMb: 1000, HardErrorRate: 0.00001}
	c := cfg.ReliabilityCurve(5)
	if len(c) != 6 || c[0] != 1 {
		t.Fatalf("curve = %v", c)
	}
	for i := 1; i < len(c); i++ {
		if c[i] > c[i-1] {
			t.Fatal("curve not monotone")
		}
	}
}
