package twod

import (
	"fmt"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// ConventionalArray is the baseline the paper compares against: an
// array protected only by a per-word code (e.g. SECDED or OECNED) with
// physical bit interleaving — no vertical dimension. Its correction
// capability is whatever the per-word code can do after the interleave
// spreads a physical burst across words.
type ConventionalArray struct {
	layout Layout
	code   ecc.Code
	data   *bitvec.Matrix
}

// NewConventionalArray builds a zeroed baseline array with the given
// per-word code and interleave degree.
func NewConventionalArray(rows, wordsPerRow int, code ecc.Code) (*ConventionalArray, error) {
	if code == nil {
		return nil, fmt.Errorf("twod: nil code")
	}
	layout := Layout{Rows: rows, WordsPerRow: wordsPerRow, CodewordBits: ecc.CodewordBits(code)}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return &ConventionalArray{
		layout: layout,
		code:   code,
		data:   bitvec.NewMatrix(rows, layout.RowBits()),
	}, nil
}

// MustConventionalArray panics on configuration error.
func MustConventionalArray(rows, wordsPerRow int, code ecc.Code) *ConventionalArray {
	a, err := NewConventionalArray(rows, wordsPerRow, code)
	if err != nil {
		panic(err)
	}
	return a
}

// Layout returns the physical geometry.
func (a *ConventionalArray) Layout() Layout { return a.layout }

// Write stores data into word w of row r.
func (a *ConventionalArray) Write(r, w int, data *bitvec.Vector) {
	cw := a.code.Encode(data)
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		row.Set(a.layout.PhysColumn(w, b), cw.Bit(b))
	}
}

// Read returns word w of row r after per-word decode. Corrections are
// written back to the cells.
func (a *ConventionalArray) Read(r, w int) (*bitvec.Vector, ecc.Result) {
	cw := a.extract(r, w)
	res, _ := a.code.Decode(cw)
	if res == ecc.Corrected {
		row := a.data.Row(r)
		for b := 0; b < a.layout.CodewordBits; b++ {
			row.Set(a.layout.PhysColumn(w, b), cw.Bit(b))
		}
	}
	return a.code.Data(cw), res
}

func (a *ConventionalArray) extract(r, w int) *bitvec.Vector {
	cw := bitvec.New(a.layout.CodewordBits)
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		if row.Bit(a.layout.PhysColumn(w, b)) {
			cw.Set(b, true)
		}
	}
	return cw
}

// FlipBit flips the physical bit at (row, col) — fault injection.
func (a *ConventionalArray) FlipBit(row, col int) { a.data.Flip(row, col) }

// Scrub decodes every word in place (like a BIST pass) and reports how
// many words were corrected and how many remain uncorrectable.
func (a *ConventionalArray) Scrub() (corrected, uncorrectable int) {
	for r := 0; r < a.layout.Rows; r++ {
		for w := 0; w < a.layout.WordsPerRow; w++ {
			_, res := a.Read(r, w)
			switch res {
			case ecc.Corrected:
				corrected++
			case ecc.Detected:
				uncorrectable++
			}
		}
	}
	return corrected, uncorrectable
}

// SnapshotData returns a deep copy of the data matrix.
func (a *ConventionalArray) SnapshotData() *bitvec.Matrix { return a.data.Clone() }

// Rows returns the number of rows.
func (a *ConventionalArray) Rows() int { return a.layout.Rows }

// RowBits returns the physical row width.
func (a *ConventionalArray) RowBits() int { return a.layout.RowBits() }
