// Package cache implements the set-associative cache structures of the
// simulated CMPs: tag/state arrays with true LRU replacement, banking,
// per-cycle port accounting, and MSHRs. The cycle-level simulator in
// internal/sim composes these into the two-level hierarchies of the
// paper's fat and lean baselines.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache.
type Config struct {
	// Name labels the cache in statistics.
	Name string
	// SizeBytes is the data capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// Banks is the number of independently-ported banks (line-address
	// interleaved).
	Banks int
	// PortsPerBank is how many operations one bank accepts per cycle.
	PortsPerBank int
	// HitLatency is the access latency in cycles.
	HitLatency int
	// MSHRs bounds outstanding misses.
	MSHRs int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: invalid geometry %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %dB lines",
			c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("cache: bank count %d not a positive power of two", c.Banks)
	}
	if c.PortsPerBank <= 0 || c.HitLatency <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cache: ports/latency/mshrs must be positive: %+v", c)
	}
	return nil
}

// line is one tag-array entry.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Stats counts tag-level outcomes.
type Stats struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses uint64
	// Evictions counts replaced valid lines; DirtyEvictions the subset
	// requiring writeback.
	Evictions, DirtyEvictions uint64
}

// Cache is the tag/state array. Port and MSHR accounting live in the
// companion types Ports and MSHRFile so that the simulator can compose
// them per its own clocking.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint // log2(LineBytes)
	setMask  uint64
	bankMask uint64
	stamp    uint64
	stats    Stats
}

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(nsets - 1),
		bankMask: uint64(cfg.Banks - 1),
	}, nil
}

// MustNew panics on configuration error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr truncates a byte address to its line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.setShift }

// Bank returns the bank a line address maps to.
func (c *Cache) Bank(addr uint64) int {
	return int(c.LineAddr(addr) & c.bankMask)
}

func (c *Cache) set(lineAddr uint64) int { return int(lineAddr & c.setMask) }
func (c *Cache) tag(lineAddr uint64) uint64 {
	return lineAddr >> bits.TrailingZeros64(c.setMask+1)
}

// Lookup probes the tags. On a hit it updates LRU and, if write, marks
// the line dirty.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	la := c.LineAddr(addr)
	set := c.sets[c.set(la)]
	tag := c.tag(la)
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes without updating LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.sets[c.set(la)]
	tag := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Fill.
type Eviction struct {
	// Valid reports whether a line was displaced at all.
	Valid bool
	// Addr is the displaced line's address (line-granular, shifted back
	// to bytes).
	Addr uint64
	// Dirty reports whether the displaced line needs writing back.
	Dirty bool
}

// Fill installs the line containing addr, evicting the LRU way if the
// set is full. If dirty, the new line is installed dirty (write-allocate
// stores). Filling a line already present just updates its state.
func (c *Cache) Fill(addr uint64, dirty bool) Eviction {
	la := c.LineAddr(addr)
	si := c.set(la)
	set := c.sets[si]
	tag := c.tag(la)
	c.stamp++
	// Already present?
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if dirty {
				set[i].dirty = true
			}
			return Eviction{}
		}
	}
	// Free way?
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	ev := Eviction{}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		evLine := set[victim]
		ev = Eviction{
			Valid: true,
			Addr:  c.reconstruct(evLine.tag, si),
			Dirty: evLine.dirty,
		}
		c.stats.Evictions++
		if evLine.dirty {
			c.stats.DirtyEvictions++
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: dirty, lru: c.stamp}
	return ev
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty (the caller decides what to do with dirty data —
// e.g. an L1-to-L1 transfer).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.set(la)]
	tag := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

// CleanLine clears the dirty bit of the line containing addr (after a
// writeback), if present.
func (c *Cache) CleanLine(addr uint64) {
	la := c.LineAddr(addr)
	set := c.sets[c.set(la)]
	tag := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = false
			return
		}
	}
}

func (c *Cache) reconstruct(tag uint64, setIdx int) uint64 {
	setBits := bits.TrailingZeros64(c.setMask + 1)
	return ((tag << uint(setBits)) | uint64(setIdx)) << c.setShift
}
