package twod

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// injectCluster flips a rectangle of bits starting at (row, col) of the
// given height and width (physical coordinates), returning the golden
// pre-error snapshot.
func injectCluster(a *Array, row, col, h, w int) *bitvec.Matrix {
	golden := a.SnapshotData()
	for r := row; r < row+h && r < a.Rows(); r++ {
		for c := col; c < col+w && c < a.RowBits(); c++ {
			a.FlipBit(r, c)
		}
	}
	return golden
}

func recoverAndCompare(t *testing.T, a *Array, golden *bitvec.Matrix, wantSuccess bool) RecoveryReport {
	t.Helper()
	rep := a.Recover()
	if rep.Success != wantSuccess {
		t.Fatalf("recovery success = %v (mode %v), want %v", rep.Success, rep.Mode, wantSuccess)
	}
	if wantSuccess {
		if diffs := a.SnapshotData().Diff(golden); len(diffs) != 0 {
			t.Fatalf("array differs from golden at %d positions after recovery (mode %v)", len(diffs), rep.Mode)
		}
		if !parityConsistent(a) {
			t.Fatal("parity inconsistent after successful recovery")
		}
	}
	return rep
}

func TestRecoverFullRowFailure(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(10))
	fillRandom(a, rng)
	golden := injectCluster(a, 77, 0, 1, a.RowBits()) // entire row flipped
	rep := recoverAndCompare(t, a, golden, true)
	if rep.Mode != RecoveryRow {
		t.Fatalf("mode = %v, want row reconstruction", rep.Mode)
	}
}

func TestRecover32x32Cluster(t *testing.T) {
	// The paper's headline claim: clustered errors up to 32x32 bits are
	// correctable with EDC8+Intv4 horizontal and EDC32 vertical.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(11))
	fillRandom(a, rng)
	golden := injectCluster(a, 64, 100, 32, 32)
	recoverAndCompare(t, a, golden, true)
}

func TestRecoverRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		a := small8kb(t)
		fillRandom(a, rng)
		h := 1 + rng.Intn(32)
		w := 1 + rng.Intn(32)
		row := rng.Intn(a.Rows() - h + 1)
		col := rng.Intn(a.RowBits() - w + 1)
		golden := injectCluster(a, row, col, h, w)
		recoverAndCompare(t, a, golden, true)
	}
}

func TestRecoverSparseClusterPattern(t *testing.T) {
	// Random subset of a 32x32 box (not a solid rectangle).
	a := small8kb(t)
	rng := rand.New(rand.NewSource(13))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	base, colBase := 10, 40
	for i := 0; i < 200; i++ {
		a.FlipBit(base+rng.Intn(32), colBase+rng.Intn(32))
	}
	// Flips may collide (cancel); recovery must still restore golden.
	recoverAndCompare(t, a, golden, true)
}

func TestRecoverColumnFailure(t *testing.T) {
	// A column failure spanning a full interleave period (32 rows, one
	// per vertical group) is repaired from row evidence: each group's
	// mismatch is exactly its sole faulty row's pattern. Under a
	// detection-only horizontal code this is the ONLY sound evidence —
	// see TestRecoverColumnFailureMultiHitGroupRefusedEDC for why
	// deeper columns cannot be repaired under EDC.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(14))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	col := 123
	for r := 0; r < 32; r++ { // one row per group (group(r) = r mod 32)
		a.FlipBit(r, col)
	}
	rep := recoverAndCompare(t, a, golden, true)
	if rep.Mode != RecoveryRow {
		t.Fatalf("mode = %v, want row reconstruction", rep.Mode)
	}
}

func TestRecoverColumnFailureMultiHitGroupRefusedEDC(t *testing.T) {
	// Three hits of one column inside one vertical group: the group's
	// mismatch carries the column (odd count), and a GF(2) solve over
	// it would even be "unique" — but the evidence is indistinguishable
	// from one genuine hit plus a cancelled same-column pair hiding an
	// error at a DIFFERENT, syndrome-aliasing column (EDC8 syndromes
	// repeat mod 8). Both states satisfy every observable; repairing
	// would forge in the latter (the storm found exactly this shape —
	// internal/replay/testdata/hiddenpair-shrunk.trace). Under EDC the
	// multi-hit group must refuse, untouched; sole-hit groups repair.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(14))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	col := 123
	for r := 0; r < 32; r++ { // one row per group (group(r) = r mod 32)
		a.FlipBit(r, col)
	}
	for _, r := range []int{32, 64} { // two more hits in group 0: 3 total
		a.FlipBit(r, col)
	}
	withErrors := a.SnapshotData()

	rep := a.Recover()
	if rep.Success {
		t.Fatal("recovery claimed success over a multi-hit group under EDC")
	}
	snap := a.SnapshotData()
	for _, r := range []int{0, 32, 64} {
		if !snap.Row(r).Equal(withErrors.Row(r)) {
			t.Fatalf("row %d modified by refused recovery", r)
		}
	}
	for r := 1; r < 32; r++ { // sole-hit groups repaired from row evidence
		if !snap.Row(r).Equal(golden.Row(r)) {
			t.Fatalf("sole-hit row %d not repaired", r)
		}
	}
}

func TestRecoverColumnFailureMultiHitGroupClusteredModel(t *testing.T) {
	// The exact scenario the strict discipline refuses above becomes
	// recoverable once the caller declares the paper's fault model:
	// with AssumeClusteredFaults the multi-hit column IS the fault, so
	// pooling suspect columns across groups and solving each faulty
	// word over the pool (Fig. 4(b) as published) is sound. Offline
	// coverage campaigns (fault.TwoDScheme, Fig. 3/4) run in this mode.
	a := MustArray(Config{
		Rows:                  256,
		WordsPerRow:           4,
		Horizontal:            ecc.MustEDC(64, 8),
		VerticalGroups:        32,
		AssumeClusteredFaults: true,
	})
	rng := rand.New(rand.NewSource(14))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	col := 123
	for r := 0; r < 32; r++ {
		a.FlipBit(r, col)
	}
	for _, r := range []int{32, 64} { // group 0 gets 3 hits
		a.FlipBit(r, col)
	}
	rep := recoverAndCompare(t, a, golden, true)
	if rep.Mode != RecoveryColumn {
		t.Fatalf("mode = %v, want column localisation", rep.Mode)
	}
}

func TestRecoverColumnFailureEvenHitGroupRefused(t *testing.T) {
	// Two hits of one column inside one vertical group cancel out of
	// the group's parity mismatch: the vertical code carries zero
	// evidence about either row. Under a detection-only horizontal
	// code the repair would be a pure guess (an 8-value syndrome check
	// aliases mod 8), so recovery must refuse — loudly, without
	// touching any row — rather than forge. (Borrowing the column from
	// another group's mismatch is exactly the forgery pinned by
	// internal/replay/testdata/cancelpair-shrunk.trace.)
	a := small8kb(t)
	rng := rand.New(rand.NewSource(15))
	fillRandom(a, rng)
	col := 123
	a.FlipBit(0, col)
	a.FlipBit(32, col) // same group (V=32), same column: cancels
	// An odd-hit group alongside, so the column IS visible elsewhere —
	// it must still not be borrowed into group 0.
	a.FlipBit(1, col)
	withErrors := a.SnapshotData()

	rep := a.Recover()
	if rep.Success {
		t.Fatal("recovery claimed success over a cancelled same-column pair under EDC")
	}
	// Row 1 (odd-hit group) may legitimately be repaired; rows 0 and 32
	// must not have been touched at all.
	snap := a.SnapshotData()
	for _, r := range []int{0, 32} {
		if !snap.Row(r).Equal(withErrors.Row(r)) {
			t.Fatalf("row %d modified by refused recovery", r)
		}
	}
}

func TestRecoverMultipleColumnFailures(t *testing.T) {
	// Several adjacent failing columns (e.g. a defective column-mux
	// region), each hitting some groups more than once. A correcting
	// horizontal code (SECDED) keeps the GF(2) column solve sound (its
	// column space has distance >= 4: no small aliasing dependencies),
	// with inline correction as the per-word fallback.
	a := MustArray(Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 32,
	})
	rng := rand.New(rand.NewSource(15))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	for _, col := range []int{60, 61, 62, 63} {
		for r := 0; r < 32; r++ { // one row per group
			a.FlipBit(r, col)
		}
		a.FlipBit(32, col) // plus a third hit in group 0
		a.FlipBit(64, col)
	}
	rep := recoverAndCompare(t, a, golden, true)
	if rep.Mode != RecoveryColumn {
		t.Fatalf("mode = %v, want column localisation", rep.Mode)
	}
}

func TestRecoverFullStuckColumnSECDED(t *testing.T) {
	// Every cell in a column flipped: the flips have even parity in
	// every vertical group, so the vertical code sees nothing. A
	// correcting horizontal code (SECDED) localises each word's single
	// bit — the grey "ECC correct" box of Fig. 4(b).
	a := MustArray(Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 32,
	})
	rng := rand.New(rand.NewSource(16))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	for r := 0; r < a.Rows(); r++ {
		a.FlipBit(r, 200)
	}
	rep := recoverAndCompare(t, a, golden, true)
	if rep.InlineFixes != a.Rows() {
		t.Fatalf("inline fixes = %d, want %d", rep.InlineFixes, a.Rows())
	}
}

func TestFullColumnInversionAmbiguousUnderEDC(t *testing.T) {
	// With a detection-only horizontal code, a full column inversion is
	// information-theoretically ambiguous (the difference between the
	// true fix and a same-group wrong fix is a codeword of the product
	// code). Recovery must fail loudly rather than guess. The event
	// requires even flip counts in every vertical group — probability
	// ~2^-V for real stuck-at faults over random data.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(16))
	fillRandom(a, rng)
	for r := 0; r < a.Rows(); r++ {
		a.FlipBit(r, 200)
	}
	rep := a.Recover()
	if rep.Success {
		t.Fatal("ambiguous full-column inversion reported success under EDC")
	}
}

func TestUncorrectable33x33PlusCluster(t *testing.T) {
	// Errors spanning more than 32 rows AND more than n*d columns in a
	// dense block exceed 2D coverage: recovery must fail loudly, not
	// silently corrupt.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(17))
	fillRandom(a, rng)
	// 40 rows x 40 columns solid cluster: >32 rows means vertical groups
	// see 2 faulty rows; 40 contiguous physical columns within a word
	// map to <= 10 bits per word, distinct mod 8? 10 bits spanning
	// groups: two bits share a parity group => ambiguous.
	injectCluster(a, 0, 0, 40, 40)
	rep := a.Recover()
	if rep.Success {
		t.Fatalf("40x40 cluster unexpectedly recovered (mode %v)", rep.Mode)
	}
	if a.Stats().Uncorrectable == 0 {
		t.Fatal("uncorrectable not counted")
	}
}

func TestRecoveryCleanArrayIsNoop(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(18))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	rep := a.Recover()
	if rep.Mode != RecoveryNone || !rep.Success || rep.BitsFlipped != 0 {
		t.Fatalf("noop recovery: %+v", rep)
	}
	if len(a.SnapshotData().Diff(golden)) != 0 {
		t.Fatal("noop recovery modified data")
	}
}

func TestRecoveryRefreshesCorruptedParity(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(19))
	fillRandom(a, rng)
	a.FlipParityBit(3, 50)
	a.FlipParityBit(7, 100)
	rep := a.Recover()
	if !rep.Success || !rep.ParityRefreshed {
		t.Fatalf("parity refresh: %+v", rep)
	}
	if !parityConsistent(a) {
		t.Fatal("parity still inconsistent")
	}
}

func TestRecoverySECDEDHorizontal(t *testing.T) {
	// With SECDED horizontal code, a 32x32 cluster is still recovered
	// via the vertical dimension (SECDED flags multi-bit as detected).
	a := MustArray(Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 32,
	})
	rng := rand.New(rand.NewSource(20))
	fillRandom(a, rng)
	golden := injectCluster(a, 30, 30, 32, 32)
	recoverAndCompare(t, a, golden, true)
}

func TestRecoverySECDEDColumnFailure(t *testing.T) {
	// Column failure under SECDED horizontal: each word sees a
	// single-bit error, correctable in-line during the scan... but the
	// recovery path still must produce a fully consistent array.
	a := MustArray(Config{
		Rows:           128,
		WordsPerRow:    2,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 16,
	})
	rng := rand.New(rand.NewSource(21))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	for r := 0; r < a.Rows(); r++ {
		if rng.Intn(2) == 1 {
			a.FlipBit(r, 77)
		}
	}
	recoverAndCompare(t, a, golden, true)
}

func TestRecoveryReportCycles(t *testing.T) {
	a := small8kb(t)
	rep := a.Recover()
	// Scan reads at least rows*words once, plus the verify pass.
	if rep.ScanReads < a.Rows()*4 {
		t.Fatalf("scan reads = %d", rep.ScanReads)
	}
	if rep.CyclesEstimate() < rep.ScanReads {
		t.Fatal("cycle estimate below scan reads")
	}
}

func TestErrorInParityAndData(t *testing.T) {
	// Simultaneous data-row error and (different-group) parity-row
	// error: data must be restored; parity rebuilt.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(22))
	fillRandom(a, rng)
	golden := a.SnapshotData()
	a.FlipBit(10, 10) // data error in group 10
	a.FlipParityBit(20, 99)
	rep := a.Recover()
	if !rep.Success {
		t.Fatalf("recovery failed: %+v", rep)
	}
	if len(a.SnapshotData().Diff(golden)) != 0 {
		t.Fatal("data not restored")
	}
	if !parityConsistent(a) {
		t.Fatal("parity not rebuilt")
	}
}

func TestSolveGF2(t *testing.T) {
	// Identity-like system: three columns in distinct groups.
	cols := []uint64{0b001, 0b010, 0b100}
	sel, unique := solveGF2(cols, 0b101)
	if !unique || !sel[0] || sel[1] || !sel[2] {
		t.Fatalf("sel=%v unique=%v", sel, unique)
	}
	// Duplicate columns: ambiguous.
	if _, unique := solveGF2([]uint64{0b1, 0b1}, 0b1); unique {
		t.Fatal("ambiguous system reported unique")
	}
	// Inconsistent: syndrome bit with no covering column.
	if _, unique := solveGF2([]uint64{0b1}, 0b10); unique {
		t.Fatal("inconsistent system reported solvable")
	}
	// Empty selection for zero syndrome.
	sel, unique = solveGF2([]uint64{0b1, 0b10}, 0)
	if !unique || sel[0] || sel[1] {
		t.Fatalf("zero syndrome: sel=%v unique=%v", sel, unique)
	}
}

func TestConventionalArrayBaseline(t *testing.T) {
	// 4-way interleaved SECDED corrects any physical burst of <= 4 bits
	// along a row (one bit per word) but fails at 8.
	sec := ecc.MustSECDED(64)
	a := MustConventionalArray(64, 4, sec)
	rng := rand.New(rand.NewSource(23))
	for r := 0; r < 64; r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, randVec(rng, 64))
		}
	}
	golden := a.SnapshotData()
	for c := 100; c < 104; c++ { // 4-bit burst
		a.FlipBit(10, c)
	}
	corrected, unc := a.Scrub()
	if corrected != 4 || unc != 0 {
		t.Fatalf("4-bit burst: corrected=%d uncorrectable=%d", corrected, unc)
	}
	if len(a.SnapshotData().Diff(golden)) != 0 {
		t.Fatal("scrub did not restore data")
	}
	// 8-bit burst: two bits land in each word -> SECDED detects only.
	for c := 0; c < 8; c++ {
		a.FlipBit(20, c)
	}
	_, unc = a.Scrub()
	if unc != 4 {
		t.Fatalf("8-bit burst: uncorrectable=%d, want 4", unc)
	}
}

func TestConventionalOECNEDWideBurst(t *testing.T) {
	// OECNED+Intv4 corrects 32-bit bursts (8 bits per word).
	oec, err := ecc.NewOECNED(64)
	if err != nil {
		t.Fatal(err)
	}
	a := MustConventionalArray(32, 4, oec)
	rng := rand.New(rand.NewSource(24))
	for r := 0; r < 32; r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, randVec(rng, 64))
		}
	}
	golden := a.SnapshotData()
	for c := 50; c < 82; c++ { // 32-bit physical burst
		a.FlipBit(5, c)
	}
	corrected, unc := a.Scrub()
	if unc != 0 || corrected != 4 {
		t.Fatalf("32-bit burst on OECNED+Intv4: corrected=%d unc=%d", corrected, unc)
	}
	if len(a.SnapshotData().Diff(golden)) != 0 {
		t.Fatal("data not restored")
	}
}
