package obs

import (
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// The obs-overhead suite: what instrumentation costs relative to the
// raw atomics it wraps. Recorded in results/BENCH_obs.md.

func BenchmarkObsRawAtomicAdd(b *testing.B) {
	var v atomic.Uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Add(1)
	}
}

func BenchmarkObsCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := MustHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkObsNopSinkEvent(b *testing.B) {
	var s Sink = NopSink{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UncorrectableDetected("data", i, 0)
	}
}

func BenchmarkObsSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		r.Counter(n, "").Add(uint64(len(n)))
	}
	r.ClampLE("a", "b")
	r.Histogram("lat", "").Observe(time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func BenchmarkObsWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Counter(n, "help text").Add(uint64(len(n)))
	}
	h := r.Histogram("lat", "latency")
	h.Observe(time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot().WritePrometheus(io.Discard)
	}
}
