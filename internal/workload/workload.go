// Package workload generates synthetic instruction and memory-address
// streams standing in for the paper's commercial (OLTP, DSS, Web) and
// scientific (Moldyn, Ocean, Sparse) workloads. The generators control
// the properties the 2D-coding experiments are sensitive to — memory
// intensity, store fraction, working-set sizes at each cache level,
// streaming behaviour, and cross-core sharing — so the simulated cache
// traffic matches the shape of the access breakdowns the paper reports
// in Fig. 6, even though no real applications run.
package workload

import (
	"fmt"
	"math/rand"
)

// Instr is one committed instruction of the synthetic trace.
type Instr struct {
	// IsMem reports whether the instruction accesses data memory.
	IsMem bool
	// IsWrite distinguishes stores from loads (meaningful when IsMem).
	IsWrite bool
	// Addr is the byte address accessed (meaningful when IsMem).
	Addr uint64
}

// Source supplies committed instructions to a simulated core: either a
// synthetic Stream or a recorded trace replayer.
type Source interface {
	// Next produces the next committed instruction.
	Next() Instr
}

// Profile parameterises one workload's memory behaviour.
type Profile struct {
	// Name is the workload label used in the paper's figures.
	Name string
	// MemFrac is the fraction of instructions that are loads or stores.
	MemFrac float64
	// WriteFrac is the store fraction of memory operations.
	WriteFrac float64
	// HotLines is the per-thread hot working set in cache lines
	// (intended to be L1-resident).
	HotLines int
	// WarmLines is the per-thread secondary working set in lines
	// (L2-resident, misses L1 often).
	WarmLines int
	// HotFrac is the fraction of non-streaming accesses that go to the
	// hot set (the rest go to the warm set).
	HotFrac float64
	// StreamFrac is the fraction of accesses that walk sequentially
	// through a large region (scan/grid behaviour; misses both levels
	// at line boundaries).
	StreamFrac float64
	// SharedFrac is the fraction of accesses directed at a global
	// shared region, generating coherence traffic (L1-to-L1 transfers
	// of dirty data).
	SharedFrac float64
	// SharedLines is the size of the global shared region in lines.
	SharedLines int
	// IFetchMissRate is the L1-I miss probability per fetch group,
	// driving instruction reads into the L2.
	IFetchMissRate float64
}

// Validate checks the profile's parameters.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	for _, f := range []float64{p.MemFrac, p.WriteFrac, p.HotFrac, p.StreamFrac, p.SharedFrac, p.IFetchMissRate} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if p.HotLines <= 0 || p.WarmLines <= 0 || p.SharedLines <= 0 {
		return fmt.Errorf("workload %s: working sets must be positive", p.Name)
	}
	return nil
}

// Profiles returns the six workloads of the paper's evaluation, with
// parameters chosen to reflect their published characterisations:
// OLTP is store-heavy with a large secondary working set; DSS and
// Sparse are scan-dominated; Web mixes sharing with moderate stores;
// Moldyn is compute-bound with a small hot set; Ocean sweeps grids.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "OLTP", MemFrac: 0.36, WriteFrac: 0.32,
			HotLines: 128, WarmLines: 1200, HotFrac: 0.95,
			StreamFrac: 0.04, SharedFrac: 0.05, SharedLines: 4096,
			IFetchMissRate: 0.015,
		},
		{
			Name: "DSS", MemFrac: 0.30, WriteFrac: 0.12,
			HotLines: 160, WarmLines: 1500, HotFrac: 0.93,
			StreamFrac: 0.30, SharedFrac: 0.02, SharedLines: 2048,
			IFetchMissRate: 0.006,
		},
		{
			Name: "Web", MemFrac: 0.33, WriteFrac: 0.26,
			HotLines: 144, WarmLines: 1000, HotFrac: 0.94,
			StreamFrac: 0.08, SharedFrac: 0.04, SharedLines: 3072,
			IFetchMissRate: 0.018,
		},
		{
			Name: "Moldyn", MemFrac: 0.27, WriteFrac: 0.34,
			HotLines: 96, WarmLines: 800, HotFrac: 0.97,
			StreamFrac: 0.08, SharedFrac: 0.03, SharedLines: 2048,
			IFetchMissRate: 0.001,
		},
		{
			Name: "Ocean", MemFrac: 0.34, WriteFrac: 0.30,
			HotLines: 128, WarmLines: 1400, HotFrac: 0.92,
			StreamFrac: 0.25, SharedFrac: 0.02, SharedLines: 2048,
			IFetchMissRate: 0.001,
		},
		{
			Name: "Sparse", MemFrac: 0.40, WriteFrac: 0.18,
			HotLines: 128, WarmLines: 2000, HotFrac: 0.90,
			StreamFrac: 0.35, SharedFrac: 0.01, SharedLines: 1024,
			IFetchMissRate: 0.001,
		},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// lineBytes is the address granularity the generators assume.
const lineBytes = 64

// Address-space layout: each (core, thread) owns disjoint private
// regions; the shared region is global.
const (
	sharedBase  = uint64(1) << 40
	streamBase  = uint64(1) << 41
	privateSize = uint64(1) << 32
)

// Stream generates the instruction trace of one hardware thread.
type Stream struct {
	prof Profile
	rng  *rand.Rand
	irng *rand.Rand // independent stream for i-fetch sampling, so the
	// data trace stays identical across timing variations (matched pairs)
	core   int
	thread int
	base   uint64
	cursor uint64 // streaming pointer
}

// NewStream builds a deterministic generator for (core, thread).
func NewStream(p Profile, core, thread int, seed int64) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	id := int64(core)*64 + int64(thread)
	// Stagger region bases so different threads' working sets do not
	// collide on the same cache sets (the bases are otherwise 2^32
	// aligned, which would alias every thread onto set 0).
	stagger := uint64(id) * 131 * lineBytes
	base := uint64(1+id)*privateSize + stagger
	return &Stream{
		prof:   p,
		rng:    rand.New(rand.NewSource(seed ^ (id+1)*0x5851F42D4C957F2D)),
		irng:   rand.New(rand.NewSource(seed ^ (id+7)*0x2545F4914F6CDD1D)),
		core:   core,
		thread: thread,
		base:   base,
		cursor: streamBase + uint64(id)*privateSize + stagger,
	}, nil
}

// MustStream panics on error.
func MustStream(p Profile, core, thread int, seed int64) *Stream {
	s, err := NewStream(p, core, thread, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Next produces the next committed instruction.
func (s *Stream) Next() Instr {
	if s.rng.Float64() >= s.prof.MemFrac {
		return Instr{}
	}
	in := Instr{IsMem: true, IsWrite: s.rng.Float64() < s.prof.WriteFrac}
	r := s.rng.Float64()
	switch {
	case r < s.prof.SharedFrac:
		in.Addr = sharedBase + uint64(s.rng.Intn(s.prof.SharedLines))*lineBytes
	case r < s.prof.SharedFrac+s.prof.StreamFrac:
		// Sequential walk; several accesses per line before advancing.
		in.Addr = s.cursor
		s.cursor += lineBytes / 8
	default:
		if s.rng.Float64() < s.prof.HotFrac {
			in.Addr = s.base + uint64(s.rng.Intn(s.prof.HotLines))*lineBytes
		} else {
			in.Addr = s.base + privateSize/2 + uint64(s.rng.Intn(s.prof.WarmLines))*lineBytes
		}
	}
	// Spread accesses within the line.
	in.Addr += uint64(s.rng.Intn(lineBytes/8)) * 8
	return in
}

// IFetchMiss samples whether this cycle's instruction fetch misses the
// L1-I cache.
func (s *Stream) IFetchMiss() bool {
	return s.irng.Float64() < s.prof.IFetchMissRate
}

// IFetchAddr returns a plausible instruction line address for an L1-I
// miss (a moderate code footprint per thread).
func (s *Stream) IFetchAddr() uint64 {
	const codeLines = 4096
	return s.base + privateSize/4 + uint64(s.irng.Intn(codeLines))*lineBytes
}
