// Package bch implements shortened systematic binary BCH codes with
// configurable correction capability t. These serve as the paper's
// conventional multi-bit ECC baselines:
//
//	t=1 (+parity)  SECDED-equivalent
//	t=2 (+parity)  DECTED  — double-error-correct, triple-error-detect
//	t=4 (+parity)  QECPED  — quad-error-correct, penta-error-detect
//	t=8 (+parity)  OECNED  — octal-error-correct, nona-error-detect
//
// The decoder uses syndrome computation, Berlekamp–Massey, and Chien
// search over GF(2^m).
package bch

import (
	"fmt"

	"twodcache/internal/bitvec"
	"twodcache/internal/gf2"
)

// Result describes the outcome of decoding a possibly-corrupted codeword.
type Result int

const (
	// Clean means no error was detected.
	Clean Result = iota
	// Corrected means errors were detected and corrected in place.
	Corrected
	// Detected means an uncorrectable error was detected; the codeword
	// was left untouched.
	Detected
)

// String returns a human-readable name for the decode result.
func (r Result) String() string {
	switch r {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Code is a shortened binary BCH code over GF(2^m) carrying k data bits
// and correcting up to t bit errors per codeword. With Extended set, an
// overall parity bit is appended, raising the design distance from 2t+1
// to 2t+2 so that t+1 errors are detected rather than miscorrected.
type Code struct {
	field    *gf2.Field
	k        int // data bits
	r        int // BCH parity bits (degree of generator)
	t        int // designed correction capability
	extended bool
	gen      gf2.Poly
}

// New constructs a BCH code for k data bits correcting t errors, with an
// extra overall parity bit for (t+1)-error detection (the paper's
// xECyED convention). It selects the smallest field GF(2^m) whose
// natural code length 2^m-1 accommodates k + deg(g) bits.
func New(k, t int) (*Code, error) {
	return newCode(k, t, true)
}

// NewPlain constructs the code without the extended overall parity bit
// (design distance 2t+1).
func NewPlain(k, t int) (*Code, error) {
	return newCode(k, t, false)
}

func newCode(k, t int, extended bool) (*Code, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bch: k=%d must be positive", k)
	}
	if t < 1 {
		return nil, fmt.Errorf("bch: t=%d must be >= 1", t)
	}
	for m := 3; m <= 16; m++ {
		f, err := gf2.NewField(m)
		if err != nil {
			return nil, err
		}
		// Upper bound on parity bits is m*t; check fit before the more
		// expensive generator computation.
		if (1<<uint(m))-1 < k+m*t {
			continue
		}
		gen := generator(f, t)
		r := gen.Degree()
		if (1<<uint(m))-1 < k+r {
			continue
		}
		return &Code{field: f, k: k, r: r, t: t, extended: extended, gen: gen}, nil
	}
	return nil, fmt.Errorf("bch: no field up to GF(2^16) fits k=%d t=%d", k, t)
}

// generator returns g(x) = lcm of the minimal polynomials of
// alpha^1 .. alpha^2t.
func generator(f *gf2.Field, t int) gf2.Poly {
	g := gf2.PolyOne()
	for i := 1; i <= 2*t; i++ {
		g = gf2.Lcm(g, gf2.MinimalPoly(f, i))
	}
	return g
}

// K returns the number of data bits per codeword.
func (c *Code) K() int { return c.k }

// T returns the designed correction capability in bits.
func (c *Code) T() int { return c.t }

// ParityBits returns the number of check bits (including the overall
// parity bit when the code is extended).
func (c *Code) ParityBits() int {
	if c.extended {
		return c.r + 1
	}
	return c.r
}

// N returns the total codeword length in bits.
func (c *Code) N() int { return c.k + c.ParityBits() }

// Generator returns the generator polynomial g(x).
func (c *Code) Generator() gf2.Poly { return c.gen }

// bchLen is the length of the BCH portion of the codeword (without the
// extended parity bit).
func (c *Code) bchLen() int { return c.k + c.r }

// Encode produces the systematic codeword for data (length K bits):
// bits [0,r) hold the BCH remainder, bits [r, r+k) the data, and with
// Extended codes bit r+k holds overall even parity.
func (c *Code) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != c.k {
		panic(fmt.Sprintf("bch: Encode data length %d != k %d", data.Len(), c.k))
	}
	// Build d(x) * x^r as a polynomial and reduce mod g.
	msg := gf2.Poly{}
	for _, i := range data.Ones() {
		msg = msg.Add(gf2.PolyX(i + c.r))
	}
	rem := msg.Mod(c.gen)
	cw := bitvec.New(c.N())
	for i := 0; i < c.r; i++ {
		if rem.Coeff(i) == 1 {
			cw.Set(i, true)
		}
	}
	cw.SetSlice(c.r, data)
	if c.extended {
		// Overall even parity across the BCH portion.
		p := 0
		for i := 0; i < c.bchLen(); i++ {
			if cw.Bit(i) {
				p ^= 1
			}
		}
		cw.Set(c.bchLen(), p == 1)
	}
	return cw
}

// Data extracts the data bits from a codeword.
func (c *Code) Data(cw *bitvec.Vector) *bitvec.Vector {
	if cw.Len() != c.N() {
		panic(fmt.Sprintf("bch: codeword length %d != n %d", cw.Len(), c.N()))
	}
	return cw.Slice(c.r, c.r+c.k)
}

// syndromes returns S_1..S_2t for the BCH portion of cw and whether any
// is nonzero.
func (c *Code) syndromes(cw *bitvec.Vector) ([]uint16, bool) {
	s := make([]uint16, 2*c.t)
	any := false
	for _, pos := range cw.Ones() {
		if pos >= c.bchLen() {
			continue // extended parity bit
		}
		for j := 1; j <= 2*c.t; j++ {
			s[j-1] ^= c.field.Exp(j * pos)
		}
	}
	for _, x := range s {
		if x != 0 {
			any = true
			break
		}
	}
	return s, any
}

// Decode checks and, if possible, corrects cw in place. It returns the
// decode outcome and the number of bits corrected. When the error weight
// exceeds the code's capability the decoder reports Detected where the
// design distance guarantees it (≤ t+1 errors for extended codes);
// beyond that, like any bounded-distance decoder, it may miscorrect.
func (c *Code) Decode(cw *bitvec.Vector) (Result, int) {
	if cw.Len() != c.N() {
		panic(fmt.Sprintf("bch: codeword length %d != n %d", cw.Len(), c.N()))
	}
	synd, anyErr := c.syndromes(cw)
	parityErr := false
	if c.extended {
		p := 0
		for i := 0; i <= c.bchLen(); i++ {
			if cw.Bit(i) {
				p ^= 1
			}
		}
		parityErr = p == 1
	}
	if !anyErr {
		if parityErr {
			// Error confined to the overall parity bit itself.
			cw.Flip(c.bchLen())
			return Corrected, 1
		}
		return Clean, 0
	}
	sigma := berlekampMassey(c.field, synd, c.t)
	nu := len(sigma) - 1 // degree of error locator
	if nu > c.t {
		return Detected, 0
	}
	locs := c.chien(sigma)
	if len(locs) != nu {
		// Locator does not split over the field: error weight exceeds t.
		return Detected, 0
	}
	parityBitFix := false
	if c.extended {
		// Parity consistency: an even/odd mismatch between the claimed
		// correction weight and the overall parity means either the
		// extended parity bit itself is also flipped (correctable while
		// the total weight stays <= t) or there are t+1 errors.
		correctionParity := len(locs) % 2
		observed := 0
		if parityErr {
			observed = 1
		}
		if correctionParity != observed {
			if len(locs) >= c.t {
				return Detected, 0
			}
			parityBitFix = true
		}
	}
	for _, pos := range locs {
		cw.Flip(pos)
	}
	if parityBitFix {
		cw.Flip(c.bchLen())
	}
	// Verify: syndromes of the corrected word must vanish. This catches
	// rare miscorrections that land outside the shortened length.
	if _, still := c.syndromes(cw); still {
		for _, pos := range locs {
			cw.Flip(pos) // roll back
		}
		if parityBitFix {
			cw.Flip(c.bchLen())
		}
		return Detected, 0
	}
	n := len(locs)
	if parityBitFix {
		n++
	}
	return Corrected, n
}

// chien finds error positions: sigma(alpha^{-i}) == 0 marks an error at
// bit position i. Only positions within the shortened length count;
// roots outside it indicate a decoding failure.
func (c *Code) chien(sigma []uint16) []int {
	var locs []int
	f := c.field
	n := c.bchLen()
	for i := 0; i < n; i++ {
		x := f.Exp(-i)
		var acc uint16
		for d := len(sigma) - 1; d >= 0; d-- {
			acc = f.Mul(acc, x) ^ sigma[d]
		}
		if acc == 0 {
			locs = append(locs, i)
		}
	}
	return locs
}

// berlekampMassey computes the error-locator polynomial sigma from the
// syndrome sequence, returning its coefficients sigma[0..nu] with
// sigma[0] == 1.
func berlekampMassey(f *gf2.Field, synd []uint16, t int) []uint16 {
	sigma := []uint16{1}
	b := []uint16{1}
	var l, m int = 0, 1
	var bDelta uint16 = 1
	for n := 0; n < 2*t; n++ {
		// Discrepancy.
		var delta uint16 = synd[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			delta ^= f.Mul(sigma[i], synd[n-i])
		}
		if delta == 0 {
			m++
			continue
		}
		// sigma' = sigma - (delta/bDelta) x^m b
		scale := f.Div(delta, bDelta)
		next := make([]uint16, max(len(sigma), len(b)+m))
		copy(next, sigma)
		for i, bc := range b {
			next[i+m] ^= f.Mul(scale, bc)
		}
		if 2*l <= n {
			l, b, bDelta = n+1-l, sigma, delta
			m = 1
		} else {
			m++
		}
		sigma = next
	}
	// Trim trailing zeros so len(sigma)-1 is the true degree.
	for len(sigma) > 1 && sigma[len(sigma)-1] == 0 {
		sigma = sigma[:len(sigma)-1]
	}
	return sigma
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
