package netsrv

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"twodcache/internal/bufpool"
	"twodcache/internal/pcache"
)

// Client is a pipelined protocol client, safe for concurrent callers:
// every in-flight request holds its own id, so N goroutines sharing one
// Client keep N requests on the wire at once and responses are
// correlated back by id regardless of arrival order. Errors decoded
// from the wire unwrap to the same sentinels local store calls return
// (pcache.ErrUncorrectable, resilience.ErrRecoveryInProgress,
// context.DeadlineExceeded), so remote and local failure handling is
// the same code.
type Client struct {
	nc net.Conn

	// wmu serialises frame writes; the bufio flush after every send
	// keeps single-caller latency low while still letting concurrent
	// callers interleave whole frames. hdr is the wmu-guarded header
	// scratch: frames go out as a header write plus a payload write, so
	// no per-call frame buffer is ever assembled.
	wmu sync.Mutex
	bw  *bufio.Writer
	hdr [frameHeader + frameFixed]byte

	pmu     sync.Mutex
	pending map[uint64]chan wireResp
	nextID  uint64
	closed  bool
	cause   error // first transport failure (nil on deliberate Close)

	done chan struct{}
}

type wireResp struct {
	status  uint8
	payload []byte
}

// respChanPool recycles the per-call response channels. A channel is
// returned to the pool ONLY on the happy receive path: a call abandoned
// at ctx expiry (or client death) may still receive a late send from
// readLoop, so its channel must never be reused.
var respChanPool = sync.Pool{New: func() any { return make(chan wireResp, 1) }}

// Dial connects a Client to a cachenetd-style server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (ownership transfers: the
// Client closes it).
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, readBufSize),
		pending: map[uint64]chan wireResp{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.fatal(nil)
	return nil
}

// fatal marks the client dead, fails every waiter, and closes the
// socket. The first cause wins.
func (c *Client) fatal(cause error) {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	c.pending = map[uint64]chan wireResp{}
	c.pmu.Unlock()
	close(c.done)
	c.nc.Close()
}

// closedErr builds the error in-flight and future calls observe.
func (c *Client) closedErr() error {
	c.pmu.Lock()
	cause := c.cause
	c.pmu.Unlock()
	if cause == nil {
		return ErrClosed
	}
	return fmt.Errorf("%w: %w", ErrClosed, cause)
}

// readLoop dispatches response frames to their waiting callers.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, readBufSize)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.fatal(err)
			return
		}
		if len(f.payload) < 1 {
			c.fatal(fmt.Errorf("netsrv: response frame with no status"))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.id]
		delete(c.pending, f.id)
		c.pmu.Unlock()
		if ok {
			// Buffered(1): never blocks, and an abandoned caller (ctx
			// expired) simply never receives.
			ch <- wireResp{status: f.payload[0], payload: f.payload[1:]}
		}
	}
}

// call sends one request frame and waits for its response under ctx.
// The payload is fully consumed by the time call returns, so callers
// that drew it from bufpool may Put it back immediately after.
func (c *Client) call(ctx context.Context, op uint8, payload []byte) (wireResp, error) {
	if err := ctx.Err(); err != nil {
		return wireResp{}, err
	}
	ch := respChanPool.Get().(chan wireResp)
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		respChanPool.Put(ch)
		return wireResp{}, c.closedErr()
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	bePut32(c.hdr[:], uint32(frameFixed+len(payload)))
	c.hdr[4] = op
	bePut64(c.hdr[5:], id)
	_, werr := c.bw.Write(c.hdr[:])
	if werr == nil && len(payload) > 0 {
		_, werr = c.bw.Write(payload)
	}
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.fatal(werr)
		return wireResp{}, c.closedErr()
	}

	select {
	case r := <-ch:
		respChanPool.Put(ch)
		return r, nil
	case <-ctx.Done():
		// The channel may still receive a late send — leak it to the GC
		// rather than ever reusing it.
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return wireResp{}, ctx.Err()
	case <-c.done:
		return wireResp{}, c.closedErr()
	}
}

// wireDeadline converts ctx's deadline to the protocol's relative
// nanoseconds (0 = none). An already-expired deadline fails fast here
// with the context's error — burning a round trip just so the server
// can answer stDeadline would charge a doomed request a full RTT.
// (ctx.Err() can still be nil in the instant after the deadline passes,
// before the context's timer fires; DeadlineExceeded is the answer
// either way.)
func wireDeadline(ctx context.Context) (uint64, error) {
	d, ok := ctx.Deadline()
	if !ok {
		return 0, nil
	}
	rel := time.Until(d)
	if rel <= 0 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 0, context.DeadlineExceeded
	}
	return uint64(rel), nil
}

// Read returns n bytes at addr. Deadline-free reads ride the server's
// batch accumulation.
func (c *Client) Read(addr uint64, n int) ([]byte, error) {
	return c.ReadCtx(context.Background(), addr, n)
}

// ReadCtx is Read bounded by ctx: the deadline travels in the frame and
// maps to the store's ReadCtx on the server.
func (c *Client) ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error) {
	wd, err := wireDeadline(ctx)
	if err != nil {
		return nil, err
	}
	p := bufpool.Get(20)[:0]
	p = be64Append(p, wd)
	p = be64Append(p, addr)
	p = be32Append(p, uint32(n))
	r, err := c.call(ctx, opRead, p)
	bufpool.Put(p)
	if err != nil {
		return nil, err
	}
	if err := statusErr(r.status, string(maybeMsg(r))); err != nil {
		return nil, err
	}
	return r.payload, nil
}

// ReadInto reads len(dst) bytes at addr into dst.
func (c *Client) ReadInto(addr uint64, dst []byte) error {
	out, err := c.Read(addr, len(dst))
	if err != nil {
		return err
	}
	copy(dst, out)
	return nil
}

// Write stores data at addr.
func (c *Client) Write(addr uint64, data []byte) error {
	return c.WriteCtx(context.Background(), addr, data)
}

// WriteCtx is Write bounded by ctx.
func (c *Client) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	wd, err := wireDeadline(ctx)
	if err != nil {
		return err
	}
	p := bufpool.Get(16 + len(data))[:0]
	p = be64Append(p, wd)
	p = be64Append(p, addr)
	p = append(p, data...)
	r, err := c.call(ctx, opWrite, p)
	bufpool.Put(p)
	if err != nil {
		return err
	}
	return statusErr(r.status, string(maybeMsg(r)))
}

// ReadBatch sends every op in one BATCH_READ frame — one round trip,
// one server-side amortised store call. Per-op outcomes land in each
// op's Err and Dst; failed counts ops whose Err is non-nil. A non-nil
// error is transport-level: no op was served.
func (c *Client) ReadBatch(ops []pcache.ReadOp) (failed int, err error) {
	return c.ReadBatchCtx(context.Background(), ops)
}

// ReadBatchCtx is ReadBatch bounded by ctx on the client side (the
// batch itself rides the server's unbounded amortised path).
func (c *Client) ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int, err error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if len(ops) > maxBatchOps {
		return len(ops), fmt.Errorf("netsrv: batch of %d ops exceeds limit %d", len(ops), maxBatchOps)
	}
	wd, err := wireDeadline(ctx)
	if err != nil {
		return len(ops), err
	}
	p := bufpool.Get(12 + len(ops)*12)[:0]
	p = be64Append(p, wd)
	p = be32Append(p, uint32(len(ops)))
	for i := range ops {
		p = be64Append(p, ops[i].Addr)
		p = be32Append(p, uint32(len(ops[i].Dst)))
	}
	r, err := c.call(ctx, opBatchRead, p)
	bufpool.Put(p)
	if err != nil {
		return len(ops), err
	}
	if err := statusErr(r.status, string(maybeMsg(r))); err != nil {
		return len(ops), err
	}
	b := r.payload
	if len(b) < 4 || int(be32(b)) != len(ops) {
		return len(ops), fmt.Errorf("netsrv: BATCH_READ response count mismatch")
	}
	off := 4
	for i := range ops {
		if off+5 > len(b) {
			return len(ops), fmt.Errorf("netsrv: truncated BATCH_READ response")
		}
		st := b[off]
		n := int(be32(b[off+1:]))
		off += 5
		if off+n > len(b) || (st == stOK && n != len(ops[i].Dst)) {
			return len(ops), fmt.Errorf("netsrv: malformed BATCH_READ response")
		}
		ops[i].Err = statusErr(st, "")
		if st == stOK {
			copy(ops[i].Dst, b[off:off+n])
		} else {
			failed++
		}
		off += n
	}
	return failed, nil
}

// WriteBatch sends every op in one BATCH_WRITE frame; see ReadBatch.
func (c *Client) WriteBatch(ops []pcache.WriteOp) (failed int, err error) {
	return c.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch bounded by ctx on the client side.
func (c *Client) WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int, err error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if len(ops) > maxBatchOps {
		return len(ops), fmt.Errorf("netsrv: batch of %d ops exceeds limit %d", len(ops), maxBatchOps)
	}
	wd, err := wireDeadline(ctx)
	if err != nil {
		return len(ops), err
	}
	size := 12
	for i := range ops {
		size += 12 + len(ops[i].Data)
	}
	p := bufpool.Get(size)[:0]
	p = be64Append(p, wd)
	p = be32Append(p, uint32(len(ops)))
	for i := range ops {
		p = be64Append(p, ops[i].Addr)
		p = be32Append(p, uint32(len(ops[i].Data)))
		p = append(p, ops[i].Data...)
	}
	r, err := c.call(ctx, opBatchWrite, p)
	bufpool.Put(p)
	if err != nil {
		return len(ops), err
	}
	if err := statusErr(r.status, string(maybeMsg(r))); err != nil {
		return len(ops), err
	}
	b := r.payload
	if len(b) != 4+len(ops) || int(be32(b)) != len(ops) {
		return len(ops), fmt.Errorf("netsrv: BATCH_WRITE response count mismatch")
	}
	for i := range ops {
		ops[i].Err = statusErr(b[4+i], "")
		if ops[i].Err != nil {
			failed++
		}
	}
	return failed, nil
}

// Flush writes back every dirty line on the server.
func (c *Client) Flush() error {
	return c.FlushCtx(context.Background())
}

// FlushCtx is Flush bounded by ctx.
func (c *Client) FlushCtx(ctx context.Context) error {
	wd, err := wireDeadline(ctx)
	if err != nil {
		return err
	}
	p := be64Append(bufpool.Get(8)[:0], wd)
	r, err := c.call(ctx, opFlush, p)
	bufpool.Put(p)
	if err != nil {
		return err
	}
	return statusErr(r.status, string(maybeMsg(r)))
}

// Stats fetches the server store's coherent cache counters.
func (c *Client) Stats() (pcache.Stats, error) {
	r, err := c.call(context.Background(), opStats, nil)
	if err != nil {
		return pcache.Stats{}, err
	}
	if err := statusErr(r.status, string(maybeMsg(r))); err != nil {
		return pcache.Stats{}, err
	}
	return decodeStats(r.payload)
}

// Epoch fetches the loss epoch of the set owning addr — the soak
// oracle's primitive for telling accounted loss from silent corruption.
// Servers without an epoch oracle answer ErrUnsupported.
func (c *Client) Epoch(addr uint64) (uint64, error) {
	p := be64Append(bufpool.Get(8)[:0], addr)
	r, err := c.call(context.Background(), opEpoch, p)
	bufpool.Put(p)
	if err != nil {
		return 0, err
	}
	if err := statusErr(r.status, string(maybeMsg(r))); err != nil {
		return 0, err
	}
	if len(r.payload) != 8 {
		return 0, fmt.Errorf("netsrv: EPOCH response %d bytes", len(r.payload))
	}
	return be64(r.payload), nil
}

// maybeMsg returns the error text carried by non-OK responses (empty
// for stOK, whose payload is data).
func maybeMsg(r wireResp) []byte {
	if r.status == stOK {
		return nil
	}
	return r.payload
}
