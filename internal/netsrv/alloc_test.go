package netsrv

import (
	"bytes"
	"testing"

	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// Alloc-regression pins for the zero-copy batch plane. AllocsPerRun
// counts the process's global mallocs, so each ceiling covers BOTH
// sides of the loopback round trip — the client encoding the request
// and the server parsing, serving, and answering it. The ceilings sit
// above the steady-state measurements (~3 allocs/op) with headroom for
// pool refills and scheduler noise, and far below the pre-pooling
// numbers (15–50), so a regression that reintroduces per-op buffer
// churn fails loudly.
//
// Skipped under -race: the race runtime allocates per sync operation
// and the pins would measure it, not the code.

func pinAllocs(t *testing.T, what string, ceiling float64, f func()) {
	t.Helper()
	f() // warm the pools and the server's conn scratch
	if got := testing.AllocsPerRun(50, f); got > ceiling {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", what, got, ceiling)
	}
}

func TestLoopbackAllocsSingle(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pins are meaningless under -race")
	}
	st, _ := newStore(t, 1, resilience.Config{})
	_, addr := startServer(t, st, Config{})
	cl := dial(t, addr)

	data := bytes.Repeat([]byte{0xAB}, lineBytes)
	if err := cl.Write(0, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, lineBytes)

	pinAllocs(t, "single read round trip", 8, func() {
		if err := cl.ReadInto(0, dst); err != nil {
			t.Fatal(err)
		}
	})
	pinAllocs(t, "single write round trip", 8, func() {
		if err := cl.Write(0, data); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoopbackAllocsBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pins are meaningless under -race")
	}
	st, _ := newStore(t, 1, resilience.Config{})
	_, addr := startServer(t, st, Config{})
	cl := dial(t, addr)

	const nOps = 32
	wops := make([]pcache.WriteOp, nOps)
	for i := range wops {
		wops[i] = pcache.WriteOp{Addr: uint64(i) * lineBytes, Data: bytes.Repeat([]byte{byte(i)}, lineBytes)}
	}
	rops := make([]pcache.ReadOp, nOps)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * lineBytes, Dst: make([]byte, lineBytes)}
	}

	// Whole-batch ceilings (not per op): before pooling, a 32-op read
	// round trip cost ~50 allocs and a write ~18.
	pinAllocs(t, "32-op batch write round trip", 10, func() {
		if failed, err := cl.WriteBatch(wops); failed != 0 || err != nil {
			t.Fatalf("failed=%d err=%v", failed, err)
		}
	})
	pinAllocs(t, "32-op batch read round trip", 10, func() {
		if failed, err := cl.ReadBatch(rops); failed != 0 || err != nil {
			t.Fatalf("failed=%d err=%v", failed, err)
		}
	})
}
