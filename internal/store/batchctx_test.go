package store

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"twodcache/internal/pcache"
)

// TestBatchCtxExpiredStampsEveryOp pins the expired-deadline contract
// at the router: a batch whose context is already dead is not served —
// every op, on every shard, carries the context error (errors.Is
// parity with single-op ctx paths), nothing is read or written, and
// the failed count covers the whole batch.
func TestBatchCtxExpiredStampsEveryOp(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s, _ := newSharded(t, shards)
		seed := bytes.Repeat([]byte{0x5A}, 64)
		for line := uint64(0); line < 8; line++ {
			if err := s.Write(line*64, seed); err != nil {
				t.Fatal(err)
			}
		}
		before := s.Stats()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()

		rops := make([]pcache.ReadOp, 8)
		for i := range rops {
			rops[i] = pcache.ReadOp{Addr: uint64(i) * 64, Dst: make([]byte, 64)}
		}
		if failed := s.ReadBatchCtx(ctx, rops); failed != len(rops) {
			t.Fatalf("shards=%d: expired ReadBatchCtx failed=%d, want %d", shards, failed, len(rops))
		}
		for i := range rops {
			if !errors.Is(rops[i].Err, context.Canceled) {
				t.Fatalf("shards=%d: op %d err = %v, want context.Canceled", shards, i, rops[i].Err)
			}
		}

		wops := make([]pcache.WriteOp, 8)
		for i := range wops {
			wops[i] = pcache.WriteOp{Addr: uint64(i) * 64, Data: bytes.Repeat([]byte{0xEE}, 64)}
		}
		if failed := s.WriteBatchCtx(ctx, wops); failed != len(wops) {
			t.Fatalf("shards=%d: expired WriteBatchCtx failed=%d, want %d", shards, failed, len(wops))
		}
		for i := range wops {
			if !errors.Is(wops[i].Err, context.Canceled) {
				t.Fatalf("shards=%d: write op %d err = %v, want context.Canceled", shards, i, wops[i].Err)
			}
		}

		// Nothing was served: the cache counters did not move, and the
		// rejected writes did not land.
		if after := s.Stats(); after.Accesses != before.Accesses {
			t.Fatalf("shards=%d: expired batch touched the cache (%d -> %d accesses)",
				shards, before.Accesses, after.Accesses)
		}
		got, err := s.Read(0, 64)
		if err != nil || !bytes.Equal(got, seed) {
			t.Fatalf("shards=%d: rejected write landed anyway (%x, %v)", shards, got[:4], err)
		}
	}
}

// TestBatchCtxLiveMatchesPlainBatch proves the ctx paths are the plain
// paths when the deadline is comfortable: same data, same outcomes.
func TestBatchCtxLiveMatchesPlainBatch(t *testing.T) {
	s, _ := newSharded(t, 4)
	ctx := context.Background()
	wops := make([]pcache.WriteOp, 16)
	for i := range wops {
		wops[i] = pcache.WriteOp{Addr: uint64(i) * 64, Data: bytes.Repeat([]byte{byte(i)}, 64)}
	}
	if failed := s.WriteBatchCtx(ctx, wops); failed != 0 {
		t.Fatalf("WriteBatchCtx failed=%d: %v", failed, wops[0].Err)
	}
	rops := make([]pcache.ReadOp, 16)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * 64, Dst: make([]byte, 64)}
	}
	if failed := s.ReadBatchCtx(ctx, rops); failed != 0 {
		t.Fatalf("ReadBatchCtx failed=%d: %v", failed, rops[0].Err)
	}
	for i := range rops {
		if !bytes.Equal(rops[i].Dst, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("op %d read back %x", i, rops[i].Dst[:4])
		}
	}
}

// TestBatchCtxSpanErrorsStillPerOp: ops rejected for geometry (span
// crossing a line) keep their typed error on the ctx path while the
// rest of the batch is served — ctx bounding must not coarsen per-op
// outcomes.
func TestBatchCtxSpanErrorsStillPerOp(t *testing.T) {
	s, _ := newSharded(t, 4)
	if err := s.Write(64, bytes.Repeat([]byte{0x77}, 64)); err != nil {
		t.Fatal(err)
	}
	ops := []pcache.ReadOp{
		{Addr: 60, Dst: make([]byte, 8)}, // crosses the line boundary
		{Addr: 64, Dst: make([]byte, 64)},
	}
	if failed := s.ReadBatchCtx(context.Background(), ops); failed != 1 {
		t.Fatalf("failed=%d, want 1", failed)
	}
	if ops[0].Err == nil || ops[1].Err != nil {
		t.Fatalf("per-op outcomes: %v / %v", ops[0].Err, ops[1].Err)
	}
	if !bytes.Equal(ops[1].Dst, bytes.Repeat([]byte{0x77}, 64)) {
		t.Fatalf("surviving op read %x", ops[1].Dst[:4])
	}
}
