package resilience

import (
	"testing"

	"twodcache/internal/pcache"
)

// TestReadBatchLaddersFailedOps: a batch over a planted beyond-coverage
// fault must come back fully served — clean ops straight from the
// batch path, the faulting op re-driven through the escalation ladder.
func TestReadBatchLaddersFailedOps(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	plantBeyondCoverage(t, e)
	// A clean line in another set, plus reads over both planted lines.
	if err := e.Cache().Write(5*64, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	ops := []pcache.ReadOp{
		{Addr: 0, Dst: make([]byte, 1)},
		{Addr: 5 * 64, Dst: make([]byte, 1)},
		{Addr: 16 * 64, Dst: make([]byte, 1)},
	}
	if failed := e.ReadBatch(ops); failed != 0 {
		for i, op := range ops {
			t.Logf("op %d: err=%v", i, op.Err)
		}
		t.Fatalf("batch failed %d ops after recovery", failed)
	}
	if ops[0].Dst[0] != 0x11 || ops[1].Dst[0] != 0x77 || ops[2].Dst[0] != 0x22 {
		t.Fatalf("wrong bytes: %x %x %x", ops[0].Dst, ops[1].Dst, ops[2].Dst)
	}
	if r := e.Report(); r.DUEs == 0 {
		t.Fatal("no DUE entered the ladder — the fault was not exercised")
	}
}

// TestWriteBatchLaddersFailedOps mirrors the read case for stores.
func TestWriteBatchLaddersFailedOps(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	plantBeyondCoverage(t, e)
	ops := []pcache.WriteOp{
		{Addr: 0, Data: []byte{0xAA}},
		{Addr: 16 * 64, Data: []byte{0xBB}},
	}
	if failed := e.WriteBatch(ops); failed != 0 {
		for i, op := range ops {
			t.Logf("op %d: err=%v", i, op.Err)
		}
		t.Fatalf("batch failed %d ops after recovery", failed)
	}
	got, err := e.Read(0, 1)
	if err != nil || got[0] != 0xAA {
		t.Fatalf("readback: %x %v", got, err)
	}
	got, err = e.Read(16*64, 1)
	if err != nil || got[0] != 0xBB {
		t.Fatalf("readback: %x %v", got, err)
	}
}

// TestBatchPropagatesSpanErrors: non-DUE failures (bad spans) must not
// enter the ladder and must stay per-op.
func TestBatchPropagatesSpanErrors(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	ops := []pcache.ReadOp{
		{Addr: 60, Dst: make([]byte, 8)}, // crosses a line boundary
		{Addr: 0, Dst: make([]byte, 1)},
	}
	if failed := e.ReadBatch(ops); failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if ops[0].Err == nil || ops[1].Err != nil {
		t.Fatalf("per-op errors wrong: %v / %v", ops[0].Err, ops[1].Err)
	}
	if r := e.Report(); r.DUEs != 0 {
		t.Fatalf("span error entered the ladder: %+v", r)
	}
}
