package pcache

// Batched accesses: many reads or writes served in one pass, grouped
// by bank and line so each bank lock is taken once per batch and each
// distinct line is tag-probed, checked and moved through its protected
// array once, however many ops touch it. This is the multi-op
// entrypoint the sharded store's ReadBatch/WriteBatch amortisation
// rides on: the per-access costs a single-op path pays k times — lock
// acquisition, tag lookup, the horizontal-code check of every word in
// the line, and (for writes) the vertical-parity delta updates of a
// full line store — are paid once per distinct line instead.

import (
	"cmp"
	"slices"
	"sync"
)

// ReadOp is one read of a batch: Dst receives len(Dst) bytes at Addr
// (the span must not cross a line boundary, as with ReadInto), and Err
// receives the per-op outcome. Err is overwritten on every batch call.
type ReadOp struct {
	Addr uint64
	Dst  []byte
	Err  error
}

// WriteOp is one write of a batch: len(Data) bytes are stored at Addr
// (the span must not cross a line boundary, as with Write), and Err
// receives the per-op outcome. Err is overwritten on every batch call.
type WriteOp struct {
	Addr uint64
	Data []byte
	Err  error
}

// idxPool recycles the per-batch index scratch so steady-state batch
// calls allocate nothing per op. The slice travels inside a pooled
// holder struct to avoid boxing its header on every Put.
var idxPool = sync.Pool{New: func() any { return new(idxScratch) }}

type idxScratch struct{ idx []int }

// batchCmp orders two addresses by (bank, line) — the batch iteration
// order: one lock acquisition per bank run, one tag probe per line
// group.
func (c *Cache) batchCmp(aa, ab uint64) int {
	la, lb := c.lineAddr(aa), c.lineAddr(ab)
	if r := cmp.Compare(c.setOf(la)/c.setsPerBank, c.setOf(lb)/c.setsPerBank); r != 0 {
		return r
	}
	return cmp.Compare(la, lb)
}

// readBatchOrder validates every op's span, stamps per-op errors, and
// returns the surviving op indices (appended to idx) sorted by (bank,
// line). The sort is stable, so ops on the same line keep their batch
// order — overlapping same-line writes apply exactly as serial issue
// would.
func (c *Cache) readBatchOrder(idx []int, ops []ReadOp) ([]int, int) {
	failed := 0
	for i := range ops {
		if err := c.checkSpan(ops[i].Addr, len(ops[i].Dst)); err != nil {
			ops[i].Err = err
			failed++
			continue
		}
		ops[i].Err = nil
		idx = append(idx, i)
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		return c.batchCmp(ops[a].Addr, ops[b].Addr)
	})
	return idx, failed
}

// writeBatchOrder is readBatchOrder for write ops.
func (c *Cache) writeBatchOrder(idx []int, ops []WriteOp) ([]int, int) {
	failed := 0
	for i := range ops {
		if err := c.checkSpan(ops[i].Addr, len(ops[i].Data)); err != nil {
			ops[i].Err = err
			failed++
			continue
		}
		ops[i].Err = nil
		idx = append(idx, i)
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		return c.batchCmp(ops[a].Addr, ops[b].Addr)
	})
	return idx, failed
}

// ReadBatch serves every op, grouped by bank and line: one bank lock
// acquisition per bank touched, one tag lookup and one protected line
// read-out per distinct line. Every op reads exactly the bytes serial
// issue would read; ops on the same line are served in batch order.
// Ops on different lines are reordered by (bank, line), so replacement
// decisions — and therefore the hit/miss split and eviction timing —
// may differ from strict serial issue; cached-plus-backing content
// never does. A group sharing a failing line reports the failure on
// every op while detecting it once. Per-op outcomes land in each op's
// Err field; the return value counts failed ops. Safe for concurrent
// use; ops in one batch must not be aliased by another concurrent
// batch.
func (c *Cache) ReadBatch(ops []ReadOp) (failed int) {
	sc := idxPool.Get().(*idxScratch)
	defer idxPool.Put(sc)
	var idx []int
	idx, failed = c.readBatchOrder(sc.idx[:0], ops)
	sc.idx = idx[:0]
	for start := 0; start < len(idx); {
		line := c.lineAddr(ops[idx[start]].Addr)
		b, _ := c.bankOf(c.setOf(line))
		end := start
		for end < len(idx) {
			l := c.lineAddr(ops[idx[end]].Addr)
			if bb, _ := c.bankOf(c.setOf(l)); bb != b {
				break
			}
			end++
		}
		failed += c.readBankRun(b, ops, idx[start:end])
		start = end
	}
	return failed
}

// readBankRun serves one bank's slice of the batch under a single
// exclusive lock acquisition.
func (c *Cache) readBankRun(b *bank, ops []ReadOp, run []int) (failed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for start := 0; start < len(run); {
		line := c.lineAddr(ops[run[start]].Addr)
		end := start
		for end < len(run) && c.lineAddr(ops[run[end]].Addr) == line {
			end++
		}
		failed += c.readLineGroupLocked(b, line, ops, run[start:end])
		start = end
	}
	return failed
}

// readLineGroupLocked serves every op of one line with a single tag
// lookup and a single protected read-out. Accounting mirrors serial
// issue: on a miss the first op pays the fill, the rest hit the line
// it brought in; on a decommissioned set every op counts as a
// bypassed miss.
func (c *Cache) readLineGroupLocked(b *bank, line uint64, ops []ReadOp, group []int) int {
	k := uint64(len(group))
	ls := c.setOf(line) % c.setsPerBank
	b.accesses.Add(k)
	fail := func(err error) int {
		for _, i := range group {
			ops[i].Err = err
		}
		return len(group)
	}
	way, err := c.lookupLocked(b, ls, c.tagOf(line))
	if err != nil {
		return fail(err)
	}
	if way >= 0 {
		b.hits.Add(k)
	} else {
		var ok bool
		way, ok, err = c.fillLocked(b, ls, line)
		if err != nil {
			return fail(err)
		}
		if !ok {
			// Every way decommissioned: serve the whole group from one
			// backing fetch.
			c.misses.Add(k)
			c.bypassed.Add(k)
			buf := c.backing.ReadLine(line << c.lineShift)
			for _, i := range group {
				off := int(ops[i].Addr) & (c.cfg.LineBytes - 1)
				copy(ops[i].Dst, buf[off:off+len(ops[i].Dst)])
			}
			return 0
		}
		c.misses.Add(1)
		if k > 1 {
			b.hits.Add(k - 1)
		}
	}
	b.touch(ls, way, c.cfg.Ways)
	if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
		return fail(err)
	}
	for _, i := range group {
		off := int(ops[i].Addr) & (c.cfg.LineBytes - 1)
		copy(ops[i].Dst, b.lineBuf[off:off+len(ops[i].Dst)])
	}
	return 0
}

// WriteBatch stores every op, grouped by bank and line: one bank lock
// acquisition per bank touched and, per distinct line, one tag lookup,
// one read-modify-write of the protected line (one set of
// vertical-parity delta updates) and one dirty-tag store, however many
// ops patch that line. Ops on the same line apply in batch order; ops
// on different lines are reordered by (bank, line), with the same
// content-equivalence guarantee as ReadBatch. A group sharing a
// failing line reports the failure on every op while detecting it
// once. Per-op outcomes land in each op's Err field; the return value
// counts failed ops. Safe for concurrent use.
func (c *Cache) WriteBatch(ops []WriteOp) (failed int) {
	sc := idxPool.Get().(*idxScratch)
	defer idxPool.Put(sc)
	var idx []int
	idx, failed = c.writeBatchOrder(sc.idx[:0], ops)
	sc.idx = idx[:0]
	for start := 0; start < len(idx); {
		line := c.lineAddr(ops[idx[start]].Addr)
		b, _ := c.bankOf(c.setOf(line))
		end := start
		for end < len(idx) {
			l := c.lineAddr(ops[idx[end]].Addr)
			if bb, _ := c.bankOf(c.setOf(l)); bb != b {
				break
			}
			end++
		}
		failed += c.writeBankRun(b, ops, idx[start:end])
		start = end
	}
	return failed
}

func (c *Cache) writeBankRun(b *bank, ops []WriteOp, run []int) (failed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for start := 0; start < len(run); {
		line := c.lineAddr(ops[run[start]].Addr)
		end := start
		for end < len(run) && c.lineAddr(ops[run[end]].Addr) == line {
			end++
		}
		failed += c.writeLineGroupLocked(b, line, ops, run[start:end])
		start = end
	}
	return failed
}

func (c *Cache) writeLineGroupLocked(b *bank, line uint64, ops []WriteOp, group []int) int {
	k := uint64(len(group))
	ls := c.setOf(line) % c.setsPerBank
	b.accesses.Add(k)
	fail := func(err error) int {
		for _, i := range group {
			ops[i].Err = err
		}
		return len(group)
	}
	way, err := c.lookupLocked(b, ls, c.tagOf(line))
	if err != nil {
		return fail(err)
	}
	if way >= 0 {
		b.hits.Add(k)
	} else {
		var ok bool
		way, ok, err = c.fillLocked(b, ls, line)
		if err != nil {
			return fail(err)
		}
		if !ok {
			// Decommissioned set: one read-modify-write through to
			// backing carries every patch, in batch order.
			c.misses.Add(k)
			c.bypassed.Add(k)
			buf := c.backing.ReadLine(line << c.lineShift)
			for _, i := range group {
				off := int(ops[i].Addr) & (c.cfg.LineBytes - 1)
				copy(buf[off:], ops[i].Data)
			}
			c.backing.WriteLine(line<<c.lineShift, buf)
			return 0
		}
		c.misses.Add(1)
		if k > 1 {
			b.hits.Add(k - 1)
		}
	}
	b.touch(ls, way, c.cfg.Ways)
	if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
		return fail(err)
	}
	for _, i := range group {
		off := int(ops[i].Addr) & (c.cfg.LineBytes - 1)
		copy(b.lineBuf[off:], ops[i].Data)
	}
	if err := c.writeLineLocked(b, ls, way, b.lineBuf); err != nil {
		return fail(err)
	}
	if err := c.writeTagLocked(b, ls, way, tagValidBit|tagDirtyBit|c.tagOf(line)<<tagShift); err != nil {
		return fail(err)
	}
	return 0
}
