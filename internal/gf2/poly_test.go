package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyBasics(t *testing.T) {
	p := PolyFromBits(0b1011) // x^3 + x + 1
	if p.Degree() != 3 {
		t.Fatalf("degree = %d", p.Degree())
	}
	if p.String() != "x^3+x+1" {
		t.Fatalf("string = %q", p.String())
	}
	if p.Coeff(0) != 1 || p.Coeff(1) != 1 || p.Coeff(2) != 0 || p.Coeff(3) != 1 {
		t.Fatal("coefficients wrong")
	}
	z := Poly{}
	if !z.IsZero() || z.Degree() != -1 || z.String() != "0" {
		t.Fatal("zero polynomial misbehaves")
	}
}

func TestPolyX(t *testing.T) {
	for _, k := range []int{0, 1, 63, 64, 65, 200} {
		p := PolyX(k)
		if p.Degree() != k {
			t.Fatalf("PolyX(%d).Degree() = %d", k, p.Degree())
		}
		if p.Coeff(k) != 1 {
			t.Fatalf("PolyX(%d) top coeff missing", k)
		}
	}
}

func TestPolyAddSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randPoly(rng, 300)
		if !p.Add(p).IsZero() {
			t.Fatal("p + p != 0 in GF(2)")
		}
	}
}

func TestPolyMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		a, b, c := randPoly(rng, 100), randPoly(rng, 100), randPoly(rng, 100)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		if !left.Equal(right) {
			t.Fatal("multiplication does not distribute")
		}
	}
}

func TestPolyMulDegree(t *testing.T) {
	a := PolyFromBits(0b101) // x^2+1
	b := PolyFromBits(0b11)  // x+1
	prod := a.Mul(b)
	// (x^2+1)(x+1) = x^3+x^2+x+1
	if !prod.Equal(PolyFromBits(0b1111)) {
		t.Fatalf("product = %s", prod)
	}
}

func TestPolyDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, 200)
		q := randPoly(rng, 80)
		if q.IsZero() {
			continue
		}
		quot, rem := p.DivMod(q)
		if rem.Degree() >= q.Degree() {
			t.Fatalf("remainder degree %d >= divisor degree %d", rem.Degree(), q.Degree())
		}
		back := quot.Mul(q).Add(rem)
		if !back.Equal(p) {
			t.Fatal("quot*q + rem != p")
		}
		if !p.Mod(q).Equal(rem) {
			t.Fatal("Mod disagrees with DivMod")
		}
	}
}

func TestPolyModByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	PolyOne().Mod(Poly{})
}

func TestGcdLcm(t *testing.T) {
	a := PolyFromBits(0b110) // x^2+x = x(x+1)
	b := PolyFromBits(0b10)  // x
	g := Gcd(a, b)
	if !g.Equal(b) {
		t.Fatalf("gcd = %s, want x", g)
	}
	l := Lcm(a, b)
	if !l.Equal(a) {
		t.Fatalf("lcm = %s, want x^2+x", l)
	}
}

func TestMinimalPolyGF16(t *testing.T) {
	// Classic table for GF(2^4) with p(x)=x^4+x+1 (Lin & Costello Table 2.9):
	f := MustField(4)
	cases := map[int]uint64{
		1: 0b10011, // x^4+x+1
		3: 0b11111, // x^4+x^3+x^2+x+1
		5: 0b111,   // x^2+x+1
		7: 0b11001, // x^4+x^3+1
	}
	for i, bits := range cases {
		got := MinimalPoly(f, i)
		want := PolyFromBits(bits)
		if !got.Equal(want) {
			t.Fatalf("minpoly(alpha^%d) = %s, want %s", i, got, want)
		}
	}
}

func TestMinimalPolyHasRoot(t *testing.T) {
	// alpha^i must be a root of its own minimal polynomial.
	f := MustField(8)
	for i := 1; i < 20; i++ {
		p := MinimalPoly(f, i)
		root := f.Exp(i)
		// Evaluate p at root over GF(2^m).
		var acc uint16
		for k := p.Degree(); k >= 0; k-- {
			acc = f.Mul(acc, root)
			if p.Coeff(k) == 1 {
				acc ^= 1
			}
		}
		if acc != 0 {
			t.Fatalf("minpoly(alpha^%d)(alpha^%d) = %d, want 0", i, i, acc)
		}
	}
}

func TestPolyMulCommutesQuick(t *testing.T) {
	prop := func(a, b uint64) bool {
		pa, pb := PolyFromBits(a), PolyFromBits(b)
		return pa.Mul(pb).Equal(pb.Mul(pa))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	p := Poly{}
	deg := rng.Intn(maxDeg + 1)
	for i := 0; i <= deg; i++ {
		if rng.Intn(2) == 1 {
			p = p.flipCoeff(i)
		}
	}
	return p
}
