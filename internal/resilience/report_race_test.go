package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// checkReportInvariants asserts the cross-counter invariants Report
// promises. Before Report was rebuilt on a coherent obs snapshot it
// loaded its twelve counters one by one, so a reader racing a ladder
// could see a rung's success count exceed its attempt count.
func checkReportInvariants(t *testing.T, r Report) {
	t.Helper()
	if r.RetrySuccesses > r.Retries {
		t.Fatalf("retry successes %d > retries %d", r.RetrySuccesses, r.Retries)
	}
	if r.WordRecoveries > r.WordAttempts {
		t.Fatalf("word recoveries %d > attempts %d", r.WordRecoveries, r.WordAttempts)
	}
	if r.FullRecoveries > r.FullAttempts {
		t.Fatalf("full recoveries %d > attempts %d", r.FullRecoveries, r.FullAttempts)
	}
	if r.Remaps > r.Decommissions {
		t.Fatalf("remaps %d > decommissions %d", r.Remaps, r.Decommissions)
	}
	if r.Exhausted > r.DUEs {
		t.Fatalf("exhausted %d > DUEs %d", r.Exhausted, r.DUEs)
	}
	if r.Cache.Hits > r.Cache.Accesses {
		t.Fatalf("cache hits %d > accesses %d", r.Cache.Hits, r.Cache.Accesses)
	}
	if r.Cache.Hits+r.Cache.Misses > r.Cache.Accesses {
		t.Fatalf("hits %d + misses %d > accesses %d",
			r.Cache.Hits, r.Cache.Misses, r.Cache.Accesses)
	}
}

// TestReportCoherentUnderConcurrentRepairs hammers Report() while
// worker goroutines drive the escalation ladder through every rung
// (retry, word, full-2D, degrade) concurrently. Run under -race this is
// the regression test for the old non-atomic Report: every snapshot
// must satisfy the rung invariants and never regress between reads.
func TestReportCoherentUnderConcurrentRepairs(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{MaxRetries: 1})
	// Seed some resident lines so traffic counters move too.
	for l := uint64(0); l < 32; l++ {
		if err := e.Write(l*64, []byte{byte(l)}); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				// fails selects the rung that rescues the access: 0 =>
				// retry, 1 => word recovery, 2 => full 2D, 3 => degrade.
				fails := n % 4
				attempt := func() error {
					if fails > 0 {
						fails--
						return due((w*7+n)%32, n%2)
					}
					return nil
				}
				if err := e.ladder(due((w*7+n)%32, n%2), attempt); err != nil {
					t.Errorf("ladder: %v", err)
					return
				}
				if _, err := e.Read(uint64(n%32)*64, 1); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}

	var prev Report
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		r := e.Report()
		checkReportInvariants(t, r)
		// Monotonic between successive snapshots (rule 3): derived rates
		// must never go negative.
		if r.DUEs < prev.DUEs || r.Retries < prev.Retries ||
			r.Decommissions < prev.Decommissions || r.ScrubPasses < prev.ScrubPasses {
			t.Fatalf("counters regressed: %+v then %+v", prev, r)
		}
		prev = r
		covered := r.DUEs > 0 && r.WordAttempts > 0 && r.FullAttempts > 0 && r.Decommissions > 0
		if (i >= 300 && covered) || time.Now().After(deadline) {
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	r := e.Report()
	checkReportInvariants(t, r)
	if r.DUEs == 0 || r.WordAttempts == 0 || r.FullAttempts == 0 || r.Decommissions == 0 {
		t.Fatalf("ladder rungs not exercised: %+v", r)
	}
}
