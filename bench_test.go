package twodcache

// One benchmark per paper table/figure (the regeneration harness), plus
// micro-benchmarks for the core data-path operations. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig. 5/6 benches run reduced cycle counts per iteration; use
// cmd/repro -full for paper-scale sampling.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/experiments"
	"twodcache/internal/fault"
	"twodcache/internal/redundancy"
	"twodcache/internal/sim"
	"twodcache/internal/twod"
	"twodcache/internal/workload"
	"twodcache/internal/yield"
)

func benchOpts() experiments.Options {
	return experiments.Options{Samples: 1, Warmup: 10000, Measure: 10000, Trials: 2, Seed: 1}
}

// --- per-figure regeneration benches ------------------------------------

func BenchmarkFig1_CodeStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig1b().Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig1_CodeEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig1c().Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig2_Interleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig2()) != 2 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkFig3_Coverage(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig3(opt).Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable1_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Render() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig5_IPCLoss_Fat(b *testing.B) {
	opt := benchOpts()
	prof, _ := workload.ByName("OLTP")
	for i := 0; i < b.N; i++ {
		rep, err := sim.PerformanceLoss(sim.FatConfig(),
			sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
			prof, opt.Samples, opt.Warmup, opt.Measure)
		if err != nil || rep.Samples == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_IPCLoss_Lean(b *testing.B) {
	opt := benchOpts()
	prof, _ := workload.ByName("OLTP")
	for i := 0; i < b.N; i++ {
		rep, err := sim.PerformanceLoss(sim.LeanConfig(),
			sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
			prof, opt.Samples, opt.Warmup, opt.Measure)
		if err != nil || rep.Samples == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_AccessBreakdown(b *testing.B) {
	opt := benchOpts()
	prof, _ := workload.ByName("Web")
	for i := 0; i < b.N; i++ {
		_, l2, err := sim.AccessBreakdown(sim.LeanConfig(),
			sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
			prof, 1, opt.Warmup, opt.Measure)
		if err != nil || l2[4] <= 0 {
			b.Fatal("no extra reads")
		}
	}
}

func BenchmarkFig7_Overheads(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig7(false, opt).Rows) == 0 ||
			len(experiments.Fig7(true, opt).Rows) == 0 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkFig8_Yield(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig8a().Rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig8_Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig8b().Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// --- core data-path micro-benches ----------------------------------------

func paperArray() *twod.Array {
	return twod.MustArray(twod.Config{
		Rows: 256, WordsPerRow: 4,
		Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 32,
	})
}

func BenchmarkArrayWrite(b *testing.B) {
	a := paperArray()
	d := WordFromUint64(0xDEADBEEF, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Write(i%256, i%4, d)
	}
}

func BenchmarkArrayReadClean(b *testing.B) {
	a := paperArray()
	d := WordFromUint64(0xDEADBEEF, 64)
	for r := 0; r < 256; r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, d)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := a.Read(i%256, i%4); st != twod.ReadClean {
			b.Fatal("unexpected status")
		}
	}
}

func BenchmarkRecovery32x32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := paperArray()
		for r := 0; r < 32; r++ {
			for c := 0; c < 32; c++ {
				if rng.Intn(2) == 1 {
					a.FlipBit(64+r, 64+c)
				}
			}
		}
		b.StartTimer()
		if rep := a.Recover(); !rep.Success {
			b.Fatal("recovery failed")
		}
	}
}

func BenchmarkEDC8Syndrome(b *testing.B) {
	e := ecc.MustEDC(64, 8)
	cw := e.Encode(WordFromUint64(0x123456789ABCDEF0, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.SyndromeBits(cw) != 0 {
			b.Fatal("dirty syndrome")
		}
	}
}

func BenchmarkSECDEDDecode(b *testing.B) {
	s := ecc.MustSECDED(64)
	clean := s.Encode(WordFromUint64(0x123456789ABCDEF0, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := clean.Clone()
		cw.Flip(i % 72)
		if res, _ := s.Decode(cw); res != ecc.Corrected {
			b.Fatal("not corrected")
		}
	}
}

func BenchmarkOECNEDDecode8Errors(b *testing.B) {
	c, err := ecc.NewOECNED(64)
	if err != nil {
		b.Fatal(err)
	}
	clean := c.Encode(WordFromUint64(0x123456789ABCDEF0, 64))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cw := clean.Clone()
		for _, p := range rng.Perm(cw.Len())[:8] {
			cw.Flip(p)
		}
		b.StartTimer()
		if res, _ := c.Decode(cw); res != ecc.Corrected {
			b.Fatal("not corrected")
		}
	}
}

func BenchmarkSimCycle_Fat(b *testing.B) {
	prof, _ := workload.ByName("OLTP")
	s, err := sim.New(sim.FatConfig(),
		sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true}, prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkYieldCurve(b *testing.B) {
	g := yield.Geometry16MBL2()
	pol := yield.Policy{ECC: true, SpareRows: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if yield.Yield(g, 2400, pol) < 0.5 {
			b.Fatal("unexpected yield")
		}
	}
}

func BenchmarkCoverageCampaign(b *testing.B) {
	s := fault.TwoDScheme{Cfg: twod.Config{
		Rows: 64, WordsPerRow: 2,
		Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 16,
	}}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := fault.CoverageMatrix(s, rng, []int{8}, []int{8}, 1)
		if cells[0].Rate() != 1 {
			b.Fatal("coverage hole")
		}
	}
}

// --- substrate micro-benches (added subsystems) ---------------------------

func BenchmarkMarchCMinus64x576(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		arr := MustBenchFaultyArray(64, 576)
		b.StartTimer()
		if !RunMarch(arr, MarchCMinus()).Passed() {
			b.Fatal("clean array failed")
		}
	}
}

func BenchmarkSelfRepair(b *testing.B) {
	cfg := RepairConfig{Rows: 64, Cols: 576, SpareRows: 2, WordBits: 72, ECCSingleBit: true}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		arr := MustBenchFaultyArray(64, 576)
		_ = arr.Inject(CellFault{Row: 7, Col: 70, Kind: StuckAt1})
		_ = arr.Inject(CellFault{Row: 30, Col: 300, Kind: StuckAt0})
		b.StartTimer()
		out, err := SelfRepair(arr, cfg, MarchCMinus())
		if err != nil || !out.Repaired {
			b.Fatalf("repair failed: %v %+v", err, out)
		}
	}
}

func BenchmarkTraceRecordReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := RecordTrace(&buf, "OLTP", 0, 0, 1, 10000); err != nil {
			b.Fatal(err)
		}
		src, err := ReplayTrace(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10000; j++ {
			src.Next()
		}
	}
}

func BenchmarkRepairAllocation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := RepairConfig{Rows: 512, Cols: 1152, SpareRows: 8, SpareCols: 8, WordBits: 72, ECCSingleBit: true}
	var faults []redundancy.Fault
	for i := 0; i < 60; i++ {
		faults = append(faults, redundancy.Fault{Row: rng.Intn(512), Col: rng.Intn(1152)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllocateRepairs(cfg, faults); err != nil {
			b.Fatal(err)
		}
	}
}

// MustBenchFaultyArray builds a defect-injectable array or fails the
// benchmark setup.
func MustBenchFaultyArray(rows, cols int) *FaultyArray {
	a, err := NewFaultyArray(rows, cols)
	if err != nil {
		panic(err)
	}
	return a
}

// BenchmarkPCacheParallelRead is the contention benchmark for the
// banked concurrent cache: all workers issue clean-hit reads, which
// proceed under per-bank shared locks, so throughput should scale with
// GOMAXPROCS instead of serialising on one global mutex. Compare
// -cpu 1,2,4,8 runs to see the scaling.
func BenchmarkPCacheParallelRead(b *testing.B) {
	backing := NewMemoryBacking(64)
	c, err := NewProtectedCache(ProtectedCacheConfig{
		Sets: 256, Ways: 4, LineBytes: 64, Banks: 8,
	}, backing)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-fill exactly sets*ways lines so every read below is a hit.
	for l := uint64(0); l < 256*4; l++ {
		if err := c.Write(l*64, []byte{byte(l)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	var workerSeed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Distinct seeds: identically seeded workers walk the same bank
		// sequence in lockstep, manufacturing worst-case lock collisions.
		rng := rand.New(rand.NewSource(workerSeed.Add(1)))
		for pb.Next() {
			l := uint64(rng.Intn(256 * 4))
			if _, err := c.Read(l*64, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScrubberSweep measures one full background scrubbing pass
// (2D recovery over every bank's data and tag arrays) on a clean,
// fully populated cache — the steady-state cost the scrub interval
// must amortise.
func BenchmarkScrubberSweep(b *testing.B) {
	backing := NewMemoryBacking(64)
	eng, err := NewResilientCache(ProtectedCacheConfig{
		Sets: 256, Ways: 4, LineBytes: 64, Banks: 8,
	}, backing, ResilienceConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for l := uint64(0); l < 256*4; l++ {
		if err := eng.Write(l*64, []byte{byte(l)}); err != nil {
			b.Fatal(err)
		}
	}
	s := eng.NewScrubber(ScrubberConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Sweep() {
			b.Fatal("clean cache failed a sweep")
		}
	}
}

func BenchmarkProtectedCacheAccess(b *testing.B) {
	backing := NewMemoryBacking(64)
	c, err := NewProtectedCache(ProtectedCacheConfig{Sets: 64, Ways: 4, LineBytes: 64}, backing)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(rng.Intn(1 << 15))
		if i%3 == 0 {
			if err := c.Write(addr, []byte{byte(i)}); err != nil {
				b.Fatal(err)
			}
		} else if _, err := c.Read(addr, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- word-kernel micro-benches ------------------------------------------
//
// One encode and one decode bench per representative code, all through
// the allocation-free kernel interface (EncodeInto/DecodeInPlace).
// results/BENCH_kernels.md tracks these against the pre-kernel Vector
// path.

func kernelBenchCodes(b *testing.B) []ecc.Code {
	b.Helper()
	dec, err := ecc.NewDECTED(64)
	if err != nil {
		b.Fatal(err)
	}
	return []ecc.Code{
		ecc.MustEDC(64, 8),
		ecc.MustEDC(64, 16),
		ecc.MustSECDED(64),
		dec,
	}
}

func BenchmarkKernelEncode(b *testing.B) {
	for _, c := range kernelBenchCodes(b) {
		b.Run(c.Name(), func(b *testing.B) {
			data := bitvec.MakeCodeword([]uint64{0x123456789ABCDEF0}, 64)
			cw := bitvec.MakeCodeword(make([]uint64, bitvec.WordsFor(ecc.CodewordBits(c))), ecc.CodewordBits(c))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.EncodeInto(cw, data)
			}
		})
	}
}

func BenchmarkKernelDecodeClean(b *testing.B) {
	for _, c := range kernelBenchCodes(b) {
		b.Run(c.Name(), func(b *testing.B) {
			data := bitvec.MakeCodeword([]uint64{0x123456789ABCDEF0}, 64)
			cw := bitvec.MakeCodeword(make([]uint64, bitvec.WordsFor(ecc.CodewordBits(c))), ecc.CodewordBits(c))
			c.EncodeInto(cw, data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, _ := c.DecodeInPlace(cw); res != ecc.Clean {
					b.Fatal("clean codeword decoded dirty")
				}
			}
		})
	}
}

func BenchmarkKernelDecodeOneError(b *testing.B) {
	for _, c := range kernelBenchCodes(b) {
		if c.CorrectCapability() == 0 {
			continue // detection-only codes cannot run a correct loop
		}
		b.Run(c.Name(), func(b *testing.B) {
			n := ecc.CodewordBits(c)
			data := bitvec.MakeCodeword([]uint64{0x123456789ABCDEF0}, 64)
			cw := bitvec.MakeCodeword(make([]uint64, bitvec.WordsFor(n)), n)
			c.EncodeInto(cw, data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cw.Flip(i % n)
				if res, _ := c.DecodeInPlace(cw); res != ecc.Corrected {
					b.Fatal("single error not corrected")
				}
			}
		})
	}
}

// BenchmarkPCacheParallelReadInto is BenchmarkPCacheParallelRead
// through the zero-allocation ReadInto entry point: the remaining
// ns/op is pure lock + kernel cost, with no garbage generated.
func BenchmarkPCacheParallelReadInto(b *testing.B) {
	backing := NewMemoryBacking(64)
	c, err := NewProtectedCache(ProtectedCacheConfig{
		Sets: 256, Ways: 4, LineBytes: 64, Banks: 8,
	}, backing)
	if err != nil {
		b.Fatal(err)
	}
	for l := uint64(0); l < 256*4; l++ {
		if err := c.Write(l*64, []byte{byte(l)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	var workerSeed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(workerSeed.Add(1)))
		dst := make([]byte, 8)
		for pb.Next() {
			l := uint64(rng.Intn(256 * 4))
			if err := c.ReadInto(l*64, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- sharded store benches ----------------------------------------------
//
// BenchmarkShardedParallelRead sweeps the shard count with a FIXED
// per-shard geometry (scale-out: N shards = N× banks and capacity) and
// a fixed 256-line working set, so the curve isolates what sharding
// buys parallel readers: more independent lock domains and counters.
// Run with -cpu 1,2,4,8 — on a single core the curve is flat (there is
// no parallelism to unlock); results/BENCH_shards.md records both.
func BenchmarkShardedParallelRead(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			backing := NewMemoryBacking(64)
			s, err := NewShardedCache(ShardedCacheConfig{
				Shards: shards,
				Cache:  ProtectedCacheConfig{Sets: 64, Ways: 4, LineBytes: 64, Banks: 8},
			}, backing)
			if err != nil {
				b.Fatal(err)
			}
			const lines = 256 // striped across all shards, always resident
			for l := uint64(0); l < lines; l++ {
				if err := s.Write(l*64, []byte{byte(l)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			var workerSeed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(workerSeed.Add(1)))
				dst := make([]byte, 8)
				for pb.Next() {
					l := uint64(rng.Intn(lines))
					if err := s.ReadInto(l*64, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// benchBatchStore builds the 4-shard store and the 64-op working set
// (8 spans over each of 8 resident lines) shared by the batch-vs-single
// pair below, so the two benches measure identical work.
func benchBatchStore(b *testing.B) (*ShardedCache, []BatchReadOp) {
	b.Helper()
	backing := NewMemoryBacking(64)
	s, err := NewShardedCache(ShardedCacheConfig{
		Shards: 4,
		Cache:  ProtectedCacheConfig{Sets: 64, Ways: 4, LineBytes: 64, Banks: 8},
	}, backing)
	if err != nil {
		b.Fatal(err)
	}
	for l := uint64(0); l < 8; l++ {
		if err := s.Write(l*64, bytes.Repeat([]byte{byte(l)}, 64)); err != nil {
			b.Fatal(err)
		}
	}
	ops := make([]BatchReadOp, 64)
	for i := range ops {
		line, off := uint64(i%8), uint64(i/8)*8
		ops[i] = BatchReadOp{Addr: line*64 + off, Dst: make([]byte, 8)}
	}
	return s, ops
}

// BenchmarkStoreReadBatch reads the 64-op set through ReadBatch: one
// bank-lock acquisition and one tag lookup per distinct line, spans
// served from a single line read-out.
func BenchmarkStoreReadBatch(b *testing.B) {
	s, ops := benchBatchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if failed := s.ReadBatch(ops); failed != 0 {
			b.Fatal("batch read failed")
		}
	}
}

// BenchmarkStoreSingleReads is the same 64 ops issued one at a time —
// the baseline ReadBatch must beat (64 lock acquisitions, 64 tag
// lookups, 64 line read-outs).
func BenchmarkStoreSingleReads(b *testing.B) {
	s, ops := benchBatchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			if err := s.ReadInto(ops[j].Addr, ops[j].Dst); err != nil {
				b.Fatal(err)
			}
		}
	}
}
