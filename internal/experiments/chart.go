package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// BarChart renders one numeric column of the table as a horizontal bar
// chart — a terminal rendition of the paper's figure for quick visual
// comparison. Values may be plain floats or "%"-suffixed. Non-numeric
// rows are skipped.
func (t Table) BarChart(col int, width int) string {
	if col <= 0 || col >= len(t.Header) {
		return ""
	}
	if width <= 0 {
		width = 50
	}
	type bar struct {
		label string
		value float64
	}
	var bars []bar
	maxVal := 0.0
	for _, r := range t.Rows {
		if col >= len(r) {
			continue
		}
		v, err := parseNumeric(r[col])
		if err != nil {
			continue
		}
		bars = append(bars, bar{label: r[0], value: v})
		if v > maxVal {
			maxVal = v
		}
	}
	if len(bars) == 0 {
		return ""
	}
	labelW := 0
	for _, b := range bars {
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.Title, t.Header[col])
	for _, b := range bars {
		n := 0
		if maxVal > 0 {
			n = int(b.value / maxVal * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s %s\n", labelW, b.label,
			strings.Repeat("#", n), formatNumeric(b.value, t.Rows[0][col]))
	}
	return sb.String()
}

// Charts renders a bar chart for every numeric column of the table.
func (t Table) Charts(width int) string {
	var sb strings.Builder
	for col := 1; col < len(t.Header); col++ {
		if c := t.BarChart(col, width); c != "" {
			sb.WriteString(c)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// parseNumeric accepts "12.5", "12.5%", and "3x" style cells.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	return strconv.ParseFloat(s, 64)
}

// formatNumeric echoes the value in the style of the sample cell.
func formatNumeric(v float64, sample string) string {
	if strings.HasSuffix(strings.TrimSpace(sample), "%") {
		return fmt.Sprintf("%.1f%%", v)
	}
	return fmt.Sprintf("%.2f", v)
}
