package resilience

import (
	"context"
	"testing"
	"time"
)

func TestSweepRepairsRecoverableDamage(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	c := e.Cache()
	if err := c.Write(0, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	da.FlipBit(0, 3)

	s := e.NewScrubber(ScrubberConfig{})
	if !s.Sweep() {
		t.Fatal("recoverable damage reported unclean")
	}
	if s.Passes() != 1 || s.Victims() != 0 {
		t.Fatalf("passes=%d victims=%d", s.Passes(), s.Victims())
	}
	if got, err := c.Read(0, 1); err != nil || got[0] != 0x42 {
		t.Fatalf("data after sweep: %v %v", got, err)
	}
	if r := e.Report(); r.ScrubPasses != 1 {
		t.Fatalf("report missed scrub activity: %+v", r)
	}
}

func TestSweepRetiresBeyondCoverageVictims(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	plantBeyondCoverage(t, e)

	s := e.NewScrubber(ScrubberConfig{})
	if s.Sweep() {
		t.Fatal("ambiguous damage reported clean")
	}
	if s.Victims() != 2 {
		t.Fatalf("victims = %d, want the ambiguous pair", s.Victims())
	}
	if e.Report().DisabledWays != 2 {
		t.Fatalf("victims not decommissioned: %+v", e.Report())
	}
	// After degradation the arrays are consistent again.
	if !s.Sweep() {
		t.Fatal("cache still inconsistent after retiring victims")
	}
	// The flushed data survives via refetch.
	if got, err := e.Read(0, 1); err != nil || got[0] != 0x11 {
		t.Fatalf("read after sweep degrade: %v %v", got, err)
	}
	if got, err := e.Read(16*64, 1); err != nil || got[0] != 0x22 {
		t.Fatalf("read after sweep degrade: %v %v", got, err)
	}
}

// TestRunBacksOffUnderLoadAndCatchesUp scripts the clock, sleeps, and
// access counter: under a sustained high access rate the scrubber must
// defer sweeps (backoffs), but never past MaxDelay — the catch-up
// guarantee.
func TestRunBacksOffUnderLoadAndCatchesUp(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	s := e.NewScrubber(ScrubberConfig{
		Interval:     10 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
		HighRate:     100, // accesses/sec
		MaxDelay:     30 * time.Millisecond,
	})
	now := time.Unix(0, 0)
	s.clock = func() time.Time { return now }
	// Access counter grows 10k/sec — far above HighRate, forever.
	s.accessFn = func() uint64 { return uint64(now.UnixNano() / 100_000) }
	sleeps := 0
	s.sleep = func(ctx context.Context, d time.Duration) bool {
		now = now.Add(d)
		sleeps++
		return sleeps < 40
	}
	_ = s.Run(context.Background())

	if s.Backoffs() == 0 {
		t.Fatal("scrubber never backed off under sustained load")
	}
	if s.Passes() == 0 {
		t.Fatal("MaxDelay did not force a catch-up sweep under sustained load")
	}
	// Deferral is bounded: per completed sweep at most
	// ceil(MaxDelay/PollInterval) = 3 backoffs.
	if s.Backoffs() > 3*(s.Passes()+1) {
		t.Fatalf("backoffs %d exceed the MaxDelay bound for %d passes",
			s.Backoffs(), s.Passes())
	}
}

func TestRunSweepsFreelyWhenIdle(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	s := e.NewScrubber(ScrubberConfig{
		Interval: 10 * time.Millisecond,
		HighRate: 100,
	})
	now := time.Unix(0, 0)
	s.clock = func() time.Time { return now }
	s.accessFn = func() uint64 { return 0 } // idle
	sleeps := 0
	s.sleep = func(ctx context.Context, d time.Duration) bool {
		now = now.Add(d)
		sleeps++
		return sleeps < 10
	}
	_ = s.Run(context.Background())
	if s.Backoffs() != 0 {
		t.Fatalf("idle cache caused %d backoffs", s.Backoffs())
	}
	if s.Passes() < 9 {
		t.Fatalf("idle cache swept only %d times in 10 intervals", s.Passes())
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	s := e.NewScrubber(ScrubberConfig{Interval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scrubber did not stop on cancel")
	}
}
