package cluster

import (
	"context"
	"slices"
	"sync"

	"twodcache/internal/pcache"
)

// The cluster batch plane: one logical batch maps to at most one batch
// frame per endpoint, riding the servers' amortised store path. The
// freshness invariant holds per op — an endpoint serves only the ops it
// is fresh for — and the caller's ctx deadline travels in every batch
// frame, so per-op recovery work is deadline-bounded on each replica.
//
// Batches trade the single-op path's hedging and backoff retries for
// throughput: a replica failure stamps its ops' Err fields (and marks
// the endpoint down or missed, same as the single-op path) rather than
// triggering another round. Callers that need per-op retry semantics
// re-issue the failed subset.

// ReadBatch reads every op from the cluster in one round; see
// ReadBatchCtx.
func (c *Client) ReadBatch(ops []pcache.ReadOp) (failed int, err error) {
	return c.ReadBatchCtx(context.Background(), ops)
}

// ReadBatchCtx partitions ops across fresh endpoints (round-robin per
// op, so load spreads even when every endpoint is fresh for everything)
// and issues at most one BATCH_READ frame per endpoint, concurrently.
// Per-op outcomes land in each op's Err; ops no fresh replica can serve
// fail with ErrNoReplicas. A non-nil error is call-level (closed client
// or expired ctx): no op was served.
func (c *Client) ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int, err error) {
	if c.closed.Load() {
		return len(ops), ErrClosed
	}
	if len(ops) == 0 {
		return 0, nil
	}
	if err := ctx.Err(); err != nil {
		return len(ops), err
	}
	c.reads.Add(uint64(len(ops)))

	// Admit each endpoint once per batch: one breaker token covers the
	// whole sub-batch, so a 10k-op batch cannot eat the breaker's probe
	// budget 10k times over.
	type gate struct {
		conn  Conn
		probe bool
		idxs  []int
	}
	gates := make([]gate, len(c.eps))
	admitted := make([]bool, len(c.eps))
	start := int(c.rr.Add(1))
	for i := range ops {
		ops[i].Err = ErrNoReplicas
		for j := 0; j < len(c.eps); j++ {
			k := (start + i + j) % len(c.eps)
			ep := c.eps[k]
			conn, fresh := ep.freshFor(ops[i].Addr)
			if !fresh {
				continue
			}
			if !admitted[k] {
				if gates[k].conn != nil {
					continue // admit already refused this endpoint
				}
				ok, probe := ep.admit()
				if !ok {
					gates[k].conn = conn // remember the refusal
					continue
				}
				admitted[k] = true
				gates[k] = gate{conn: conn, probe: probe}
			} else if gates[k].conn != conn {
				continue // transport changed underneath; skip this op here
			}
			gates[k].idxs = append(gates[k].idxs, i)
			ops[i].Err = nil
			break
		}
	}

	var wg sync.WaitGroup
	for k := range gates {
		if !admitted[k] {
			continue
		}
		ep, g := c.eps[k], &gates[k]
		if len(g.idxs) == 0 {
			ep.brk.Release(g.probe)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := make([]pcache.ReadOp, len(g.idxs))
			for si, oi := range g.idxs {
				sub[si] = pcache.ReadOp{Addr: ops[oi].Addr, Dst: ops[oi].Dst}
			}
			_, berr := g.conn.ReadBatchCtx(ctx, sub)
			switch {
			case berr == nil:
				ep.brk.Record(g.probe, true)
			case ctxError(ctx, berr):
				ep.brk.Release(g.probe)
			default:
				ep.brk.Record(g.probe, false)
				if isTransportDead(berr) {
					ep.markDown(g.conn)
				}
			}
			for si, oi := range g.idxs {
				if berr != nil {
					ops[oi].Err = berr
				} else {
					ops[oi].Err = sub[si].Err
				}
			}
		}()
	}
	wg.Wait()

	for i := range ops {
		if ops[i].Err != nil {
			failed++
		}
	}
	if failed > 0 {
		// Count ops nobody could serve the way single-op reads count them.
		for i := range ops {
			if ops[i].Err == ErrNoReplicas {
				c.noReplicaErrors.Inc()
			}
		}
	}
	return failed, nil
}

// WriteBatch writes every op to the cluster in one round; see
// WriteBatchCtx.
func (c *Client) WriteBatch(ops []pcache.WriteOp) (failed int, err error) {
	return c.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx fans the whole batch out to every usable replica in one
// BATCH_WRITE frame each, under the stripe locks of every addr in the
// batch (taken in index order, so concurrent batch writes cannot
// deadlock and same-addr writes land in one order everywhere). An op
// succeeds if at least one replica applied it; every replica that did
// not (per-op failure, call-level failure, or not usable this round)
// gets the addr in its missed set and is excluded from reads until
// repair copies the value across. A non-nil error is call-level: no op
// was attempted anywhere.
func (c *Client) WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int, err error) {
	if c.closed.Load() {
		return len(ops), ErrClosed
	}
	if len(ops) == 0 {
		return 0, nil
	}
	if err := ctx.Err(); err != nil {
		return len(ops), err
	}
	c.writes.Add(uint64(len(ops)))

	locks := make([]int, 0, len(ops))
	for i := range ops {
		locks = append(locks, int(ops[i].Addr%numStripes))
	}
	slices.Sort(locks)
	locks = slices.Compact(locks)
	for _, s := range locks {
		c.stripes[s].Lock()
	}
	defer func() {
		for _, s := range locks {
			c.stripes[s].Unlock()
		}
	}()
	for i := range ops {
		c.noteWritten(ops[i].Addr, len(ops[i].Data))
	}

	type wres struct {
		ep   *endpoint
		sub  []pcache.WriteOp
		berr error
	}
	results := make(chan wres, len(c.eps))
	launched := 0
	for _, ep := range c.eps {
		conn, probe, usable := c.admitWrite(ep)
		if !usable {
			for i := range ops {
				ep.markMissed(ops[i].Addr, len(ops[i].Data))
			}
			continue
		}
		launched++
		go func(ep *endpoint, conn Conn, probe bool) {
			sub := make([]pcache.WriteOp, len(ops))
			for i := range ops {
				sub[i] = pcache.WriteOp{Addr: ops[i].Addr, Data: ops[i].Data}
			}
			_, berr := conn.WriteBatchCtx(ctx, sub)
			switch {
			case berr == nil:
				ep.brk.Record(probe, true)
			case ctxError(ctx, berr):
				ep.brk.Release(probe)
			default:
				ep.brk.Record(probe, false)
				if isTransportDead(berr) {
					ep.markDown(conn)
				}
			}
			results <- wres{ep, sub, berr}
		}(ep, conn, probe)
	}

	applied := make([]int, len(ops))
	errs := make([]error, len(ops))
	for r := 0; r < launched; r++ {
		res := <-results
		for i := range ops {
			operr := res.berr
			if operr == nil {
				operr = res.sub[i].Err
			}
			if operr == nil {
				applied[i]++
				res.ep.clearMissed(ops[i].Addr)
			} else {
				res.ep.markMissed(ops[i].Addr, len(ops[i].Data))
				errs[i] = operr
			}
		}
	}
	for i := range ops {
		if applied[i] > 0 {
			ops[i].Err = nil
			continue
		}
		if errs[i] == nil {
			errs[i] = ErrNoReplicas
			c.noReplicaErrors.Inc()
		}
		ops[i].Err = errs[i]
		failed++
	}
	return failed, nil
}
