package bist

import (
	"twodcache/internal/redundancy"
)

// RepairOutcome summarises a BISR pass: test, allocate, re-verify.
type RepairOutcome struct {
	// Detected lists the failing cells the march test found.
	Detected [][2]int
	// Plan is the redundancy allocation chosen.
	Plan redundancy.Plan
	// Repaired reports whether the post-repair march run passed (all
	// remaining faults hidden behind spares or left to ECC).
	Repaired bool
	// Operations counts total march operations across both passes.
	Operations int
}

// remappedMemory views a faulty array through a redundancy remapper:
// accesses to repaired rows/columns land on (fault-free) spare cells.
type remappedMemory struct {
	base   *FaultyArray
	rm     *redundancy.Remapper
	spares *FaultyArray // spare storage: extra rows and columns
	cfg    redundancy.Config
}

func newRemappedMemory(base *FaultyArray, cfg redundancy.Config, rm *redundancy.Remapper) *remappedMemory {
	// Spare storage sized generously: spare rows are full-width, spare
	// columns full-height, held in one auxiliary array.
	aux := MustFaultyArray(cfg.Rows+cfg.SpareRows+1, cfg.Cols+cfg.SpareCols+1)
	return &remappedMemory{base: base, rm: rm, spares: aux, cfg: cfg}
}

// Rows returns the logical row count.
func (m *remappedMemory) Rows() int { return m.cfg.Rows }

// Cols returns the logical column count.
func (m *remappedMemory) Cols() int { return m.cfg.Cols }

// ReadBit reads through the remapping.
func (m *remappedMemory) ReadBit(row, col int) bool {
	pr, pc := m.rm.Translate(row, col)
	if pr >= m.cfg.Rows || pc >= m.cfg.Cols {
		return m.spares.ReadBit(pr, pc)
	}
	return m.base.ReadBit(pr, pc)
}

// WriteBit writes through the remapping.
func (m *remappedMemory) WriteBit(row, col int, v bool) {
	pr, pc := m.rm.Translate(row, col)
	if pr >= m.cfg.Rows || pc >= m.cfg.Cols {
		m.spares.WriteBit(pr, pc, v)
		return
	}
	m.base.WriteBit(pr, pc, v)
}

var _ Memory = (*remappedMemory)(nil)

// SelfRepair runs the full BISR flow of §2.3/§4: march-test the array,
// feed the failing cells to the redundancy allocator, program the
// remapper, and re-run the march through the repaired view. With
// cfg.ECCSingleBit, cells left to the ECC are excluded from the
// re-verification (the in-line SECDED owns them at run time).
func SelfRepair(arr *FaultyArray, cfg redundancy.Config, alg Algorithm) (RepairOutcome, error) {
	out := RepairOutcome{}
	first := Run(arr, alg)
	out.Operations = first.Operations
	out.Detected = first.FailingCells()

	var faults []redundancy.Fault
	for _, c := range out.Detected {
		faults = append(faults, redundancy.Fault{Row: c[0], Col: c[1]})
	}
	plan, err := redundancy.Allocate(cfg, faults)
	if err != nil {
		return out, err
	}
	out.Plan = plan
	if !plan.Repairable {
		return out, nil
	}
	rm, err := redundancy.NewRemapper(cfg, plan)
	if err != nil {
		return out, err
	}
	view := newRemappedMemory(arr, cfg, rm)
	second := Run(view, alg)
	out.Operations += second.Operations

	if cfg.ECCSingleBit {
		// Faults the plan left to ECC legitimately still fail the raw
		// march; verify there is at most one per word and nothing else.
		perWord := map[[2]int]int{}
		for _, f := range second.FailingCells() {
			perWord[[2]int{f[0], f[1] / cfg.WordBits}]++
		}
		out.Repaired = true
		for _, n := range perWord {
			if n > 1 {
				out.Repaired = false
				break
			}
		}
	} else {
		out.Repaired = second.Passed()
	}
	return out, nil
}
