package trace

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twodcache/internal/workload"
)

func sampleInstrs(n int) []workload.Instr {
	p, _ := workload.ByName("OLTP")
	s := workload.MustStream(p, 0, 0, 42)
	out := make([]workload.Instr, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func TestRoundTripBuffer(t *testing.T) {
	ins := sampleInstrs(5000)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if err := tw.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != 5000 {
		t.Fatalf("count = %d", tw.Count())
	}

	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ins) {
		t.Fatalf("len = %d, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], ins[i])
		}
	}
}

func TestRoundTripFileWithSeek(t *testing.T) {
	// With a seekable file, the header carries the exact record count.
	path := filepath.Join(t.TempDir(), "x.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := workload.ByName("DSS")
	src := workload.MustStream(p, 1, 0, 7)
	n, err := Record(f, src, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("recorded %d", n)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr, err := NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1234 {
		t.Fatalf("replayed %d", len(got))
	}
	// Replay must equal a fresh generator with the same seed.
	ref := workload.MustStream(p, 1, 0, 7)
	for i, in := range got {
		if in != ref.Next() {
			t.Fatalf("record %d diverges", i)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte("2DCT"))
	buf.Write([]byte{99, 0}) // version 99
	buf.Write(make([]byte, 8))
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	ins := sampleInstrs(100)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	for _, in := range ins {
		_ = tw.Append(in)
	}
	_ = tw.Close()
	full := buf.Bytes()
	// Chop mid-record: reader must error, not hang or panic.
	tr, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.ReadAll()
	if err == nil {
		t.Fatal("truncated trace read cleanly")
	}
}

func TestCompactness(t *testing.T) {
	// Delta encoding should keep the trace well under 9 bytes/record
	// for generator-like locality.
	ins := sampleInstrs(20000)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	for _, in := range ins {
		_ = tw.Append(in)
	}
	_ = tw.Close()
	perRecord := float64(buf.Len()) / 20000
	if perRecord > 6 {
		t.Fatalf("%.1f bytes/record, want < 6", perRecord)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	_ = tw.Close()
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRandomAddressesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ins []workload.Instr
	for i := 0; i < 2000; i++ {
		in := workload.Instr{IsMem: rng.Intn(2) == 1}
		if in.IsMem {
			in.IsWrite = rng.Intn(2) == 1
			in.Addr = rng.Uint64() // worst case: no locality
		}
		ins = append(ins, in)
	}
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	for _, in := range ins {
		if err := tw.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	_ = tw.Close()
	tr, _ := NewReader(&buf)
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayerLoops(t *testing.T) {
	ins := sampleInstrs(100)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	for _, in := range ins {
		_ = tw.Append(in)
	}
	_ = tw.Close()
	rep, err := NewReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 100 {
		t.Fatalf("len = %d", rep.Len())
	}
	for i := 0; i < 250; i++ {
		got := rep.Next()
		if got != ins[i%100] {
			t.Fatalf("replay %d mismatch", i)
		}
	}
	if rep.Loops() != 2 {
		t.Fatalf("loops = %d", rep.Loops())
	}
}

func TestReplayerRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	_ = tw.Close()
	if _, err := NewReplayer(&buf); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestSummarize(t *testing.T) {
	p, _ := workload.ByName("OLTP")
	src := workload.MustStream(p, 0, 0, 11)
	var buf bytes.Buffer
	if _, err := Record(&buf, src, 50000); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != 50000 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if mf := s.MemFrac(); mf < 0.33 || mf > 0.39 {
		t.Fatalf("mem frac = %v, want ~0.36", mf)
	}
	if wf := s.WriteFrac(); wf < 0.28 || wf > 0.36 {
		t.Fatalf("write frac = %v, want ~0.32", wf)
	}
	if s.UniqueLines == 0 {
		t.Fatal("no lines touched")
	}
}

func TestReplayerDrivesCore(t *testing.T) {
	// A replayed trace must be a drop-in workload.Source for the cores.
	p, _ := workload.ByName("Web")
	src := workload.MustStream(p, 0, 0, 5)
	var buf bytes.Buffer
	if _, err := Record(&buf, src, 10000); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var s workload.Source = rep
	mem := 0
	for i := 0; i < 20000; i++ { // loops once
		if s.Next().IsMem {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("no memory ops replayed")
	}
}
