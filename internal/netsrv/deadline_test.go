package netsrv

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"twodcache/internal/pcache"
)

// staleDeadlineCtx models the window where the wall clock has passed
// the deadline but the context's timer has not fired yet: Deadline()
// is in the past while Err() is still nil. wireDeadline must treat it
// as expired anyway.
type staleDeadlineCtx struct{ context.Context }

func (staleDeadlineCtx) Deadline() (time.Time, bool) { return time.Now().Add(-time.Hour), true }
func (staleDeadlineCtx) Err() error                  { return nil }

// canceledDeadlineCtx carries both a past deadline and a Canceled
// error — cancellation raced the deadline and won.
type canceledDeadlineCtx struct{ context.Context }

func (canceledDeadlineCtx) Deadline() (time.Time, bool) { return time.Now().Add(-time.Hour), true }
func (canceledDeadlineCtx) Err() error                  { return context.Canceled }

// TestDeadlineCtxClamp pins the server-side decode: a wire deadline
// above MaxInt64 nanoseconds — unrepresentable as time.Duration —
// must clamp to the far future, not wrap negative and expire the
// request before the store ever sees it.
func TestDeadlineCtxClamp(t *testing.T) {
	for _, nanos := range []uint64{math.MaxInt64 + 1, math.MaxUint64} {
		ctx, cancel := deadlineCtx(context.Background(), nanos)
		if err := ctx.Err(); err != nil {
			t.Errorf("deadlineCtx(%d) expired on arrival: %v", nanos, err)
		}
		if d, ok := ctx.Deadline(); !ok || time.Until(d) < 24*time.Hour {
			t.Errorf("deadlineCtx(%d) deadline %v, want far future", nanos, d)
		}
		cancel()
	}
}

// TestDeadlineCtxZero pins that a zero wire deadline means "none": the
// parent comes back unchanged.
func TestDeadlineCtxZero(t *testing.T) {
	parent := context.Background()
	ctx, cancel := deadlineCtx(parent, 0)
	defer cancel()
	if ctx != parent {
		t.Fatal("deadlineCtx(0) did not return the parent")
	}
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("deadlineCtx(0) grew a deadline")
	}
}

// TestWireDeadlineRoundTrip pins the client-encode → server-decode
// path: a live deadline survives the trip without tightening past the
// original or expiring en route.
func TestWireDeadlineRoundTrip(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	wd, err := wireDeadline(parent)
	if err != nil {
		t.Fatalf("wireDeadline on a live ctx: %v", err)
	}
	if wd == 0 || wd > uint64(250*time.Millisecond) {
		t.Fatalf("wireDeadline = %d ns, want in (0, 250ms]", wd)
	}
	ctx, cancel2 := deadlineCtx(context.Background(), wd)
	defer cancel2()
	if err := ctx.Err(); err != nil {
		t.Fatalf("round-tripped ctx dead on arrival: %v", err)
	}
	pd, _ := parent.Deadline()
	if d, ok := ctx.Deadline(); !ok || d.After(pd.Add(10*time.Millisecond)) {
		t.Fatalf("round-tripped deadline %v later than original %v", d, pd)
	}
}

// TestWireDeadlineNone pins that a deadline-free context encodes as 0.
func TestWireDeadlineNone(t *testing.T) {
	wd, err := wireDeadline(context.Background())
	if wd != 0 || err != nil {
		t.Fatalf("wireDeadline(Background) = %d, %v; want 0, nil", wd, err)
	}
}

// TestWireDeadlineExpired pins the fail-fast contract: an expired or
// cancelled context is refused client-side with its own error — never
// encoded as a tiny deadline for the server to bounce.
func TestWireDeadlineExpired(t *testing.T) {
	// A context cancelled before its deadline passed reports Canceled —
	// wireDeadline must surface ctx.Err() as-is, not invent its own.
	canceled := canceledDeadlineCtx{context.Background()}
	if _, err := wireDeadline(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want Canceled", err)
	}

	past, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := wireDeadline(past); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past-deadline ctx: err = %v, want DeadlineExceeded", err)
	}

	// The timer-not-yet-fired window: Err() nil, Deadline() past.
	stale := staleDeadlineCtx{context.Background()}
	if _, err := wireDeadline(stale); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stale-deadline ctx: err = %v, want DeadlineExceeded", err)
	}
}

// TestClientExpiredCtxNoRoundTrip pins the satellite end to end: every
// Ctx entry point refuses an expired context before any frame reaches
// the wire. The peer side of the pipe watches for bytes; seeing any
// means the client burned the round trip the fix is supposed to save.
func TestClientExpiredCtxNoRoundTrip(t *testing.T) {
	cl, sv := net.Pipe()
	c := NewClient(cl)
	defer c.Close()
	defer sv.Close()

	ctx := staleDeadlineCtx{context.Background()}
	for name, call := range map[string]func() error{
		"ReadCtx":  func() error { _, err := c.ReadCtx(ctx, 0, 8); return err },
		"WriteCtx": func() error { return c.WriteCtx(ctx, 0, []byte{1}) },
		"ReadBatchCtx": func() error {
			ops := []pcache.ReadOp{{Addr: 0, Dst: make([]byte, 8)}}
			_, err := c.ReadBatchCtx(ctx, ops)
			return err
		},
		"WriteBatchCtx": func() error {
			ops := []pcache.WriteOp{{Addr: 0, Data: []byte{1}}}
			_, err := c.WriteBatchCtx(ctx, ops)
			return err
		},
		"FlushCtx": func() error { return c.FlushCtx(ctx) },
	} {
		if err := call(); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s with expired ctx: err = %v, want DeadlineExceeded", name, err)
		}
	}

	// Nothing may have hit the wire: a read on the peer must time out
	// with zero bytes, not observe a frame.
	sv.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if n, err := sv.Read(buf); err == nil || n > 0 {
		t.Fatalf("client sent %d bytes for expired-ctx calls (err=%v)", n, err)
	} else if !errors.Is(err, io.EOF) {
		var ne net.Error
		if !(errors.As(err, &ne) && ne.Timeout()) {
			t.Fatalf("peer read: %v, want timeout", err)
		}
	}
}
