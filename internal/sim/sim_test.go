package sim

import (
	"testing"

	"twodcache/internal/workload"
)

const (
	testWarmup  = 30000
	testMeasure = 20000
)

func prof(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []SystemConfig{FatConfig(), LeanConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	bad := FatConfig()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("cores=0 accepted")
	}
	bad = FatConfig()
	bad.L2Occupancy = 0
	if bad.Validate() == nil {
		t.Fatal("occupancy=0 accepted")
	}
	bad = FatConfig()
	bad.Window = 0
	if bad.Validate() == nil {
		t.Fatal("OoO without window accepted")
	}
}

func TestProtectionNames(t *testing.T) {
	cases := map[string]Protection{
		"baseline":  {},
		"L1":        {L1TwoD: true},
		"L1(PS)":    {L1TwoD: true, PortStealing: true},
		"L2":        {L2TwoD: true},
		"L1+L2":     {L1TwoD: true, L2TwoD: true},
		"L1(PS)+L2": {L1TwoD: true, L2TwoD: true, PortStealing: true},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("%+v = %q, want %q", p, got, want)
		}
	}
}

func TestBaselineRunsAndCommits(t *testing.T) {
	for _, cfg := range []SystemConfig{FatConfig(), LeanConfig()} {
		r, err := RunOne(cfg, Baseline(), prof(t, "OLTP"), 1, testWarmup, testMeasure)
		if err != nil {
			t.Fatal(err)
		}
		if r.Committed == 0 {
			t.Fatalf("%s: nothing committed", cfg.Name)
		}
		ipc := r.IPC()
		maxIPC := float64(cfg.Cores * cfg.Width)
		if ipc <= 0 || ipc > maxIPC {
			t.Fatalf("%s: IPC %v out of (0,%v]", cfg.Name, ipc, maxIPC)
		}
		if r.L1.ReadData == 0 || r.L1.Write == 0 || r.L1.FillEvict == 0 {
			t.Fatalf("%s: empty L1 stats %+v", cfg.Name, r.L1)
		}
		if r.L2.Total() == 0 {
			t.Fatalf("%s: no L2 traffic", cfg.Name)
		}
		if r.L1.ExtraRead > r.L1ToL1 {
			t.Fatalf("%s: baseline has 2D extra reads: %+v", cfg.Name, r.L1)
		}
		if r.L2.ExtraRead != 0 {
			t.Fatalf("%s: baseline has L2 extra reads", cfg.Name)
		}
	}
}

func TestMatchedPairDeterminism(t *testing.T) {
	cfg := FatConfig()
	a, err := RunOne(cfg, Baseline(), prof(t, "Web"), 5, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg, Baseline(), prof(t, "Web"), 5, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.L1 != b.L1 || a.L2 != b.L2 {
		t.Fatal("same seed produced different results")
	}
}

func TestTwoDAddsExtraReads(t *testing.T) {
	cfg := LeanConfig()
	r, err := RunOne(cfg, Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
		prof(t, "OLTP"), 2, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1.ExtraRead == 0 || r.L2.ExtraRead == 0 {
		t.Fatalf("2D produced no extra reads: L1=%+v L2=%+v", r.L1, r.L2)
	}
	// The paper reports ~20% more accesses from read-before-write:
	// extra reads should be within (5%, 45%) of total L1 traffic.
	frac := float64(r.L1.ExtraRead) / float64(r.L1.Total())
	if frac < 0.05 || frac > 0.45 {
		t.Fatalf("L1 extra-read fraction %v implausible", frac)
	}
	// Extra reads roughly track writes + fills.
	if r.L1.ExtraRead > r.L1.Write+r.L1.FillEvict+r.L1ToL1+10 {
		t.Fatalf("more extra reads (%d) than writes+fills (%d)",
			r.L1.ExtraRead, r.L1.Write+r.L1.FillEvict)
	}
}

func TestTwoDCostsPerformance(t *testing.T) {
	// Without port stealing, L1 protection must cost measurable IPC on
	// a warmed system; the loss must stay in the paper's "modest" range
	// (< 15%). Averaged over samples because a single short window has
	// ~0.5% timing noise.
	for _, cfg := range []SystemConfig{FatConfig(), LeanConfig()} {
		rep, err := PerformanceLoss(cfg, Protection{L1TwoD: true}, prof(t, "OLTP"),
			2, 120000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MeanLossPct <= 0.2 {
			t.Fatalf("%s: L1 2D without port stealing shows no loss (%v%%)", cfg.Name, rep.MeanLossPct)
		}
		if rep.MeanLossPct > 15 {
			t.Fatalf("%s: loss %v%% implausibly high", cfg.Name, rep.MeanLossPct)
		}
	}
}

func TestPortStealingReducesLoss(t *testing.T) {
	cfg := FatConfig()
	p := prof(t, "OLTP")
	base, err := RunOne(cfg, Baseline(), p, 4, 120000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	noPS, err := RunOne(cfg, Protection{L1TwoD: true}, p, 4, 120000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := RunOne(cfg, Protection{L1TwoD: true, PortStealing: true}, p, 4, 120000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	lossNoPS := base.IPC() - noPS.IPC()
	lossPS := base.IPC() - ps.IPC()
	if lossPS >= lossNoPS {
		t.Fatalf("port stealing did not help: %v vs %v", lossPS, lossNoPS)
	}
}

func TestPerformanceLossReport(t *testing.T) {
	rep, err := PerformanceLoss(FatConfig(), Protection{L1TwoD: true}, prof(t, "Web"),
		3, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 3 || rep.BaselineIPC <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.MeanLossPct < -1 || rep.MeanLossPct > 20 {
		t.Fatalf("loss %v%% out of plausible range", rep.MeanLossPct)
	}
}

func TestAccessBreakdown(t *testing.T) {
	l1, l2, err := AccessBreakdown(LeanConfig(),
		Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
		prof(t, "OLTP"), 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range l1 {
		if x < 0 {
			t.Fatal("negative breakdown")
		}
		sum += x
	}
	if sum <= 0 {
		t.Fatal("empty L1 breakdown")
	}
	if l2[0] <= 0 {
		t.Fatal("no instruction reads at L2")
	}
	if l1[4] <= 0 || l2[4] <= 0 {
		t.Fatal("no extra reads in protected breakdown")
	}
}

func TestL1ToL1Transfers(t *testing.T) {
	r, err := RunOne(FatConfig(), Baseline(), prof(t, "OLTP"), 2, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1ToL1 == 0 {
		t.Fatal("no L1-to-L1 dirty transfers under a sharing workload")
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, p := range workload.Profiles() {
		r, err := RunOne(LeanConfig(), Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
			p, 1, 10000, 10000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if r.Committed == 0 {
			t.Fatalf("%s: nothing committed", p.Name)
		}
	}
}

func TestNoResourceLeaks(t *testing.T) {
	// After a long run, in-flight state must stay bounded: completion
	// tokens are consumed, L2 queues drain, MSHRs turn over.
	for _, prot := range []Protection{{}, {L1TwoD: true, L2TwoD: true, PortStealing: true}} {
		s, err := New(FatConfig(), prot, prof(t, "OLTP"), 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100000; i++ {
			s.Step()
		}
		// Bound: tokens pending = loads in flight; with 8 MSHRs x 4 cores
		// plus hit-latency tokens, a few hundred is generous.
		if n := s.PendingLoads(); n > 500 {
			t.Fatalf("%s: %d pending load tokens (leak)", prot, n)
		}
		if q := s.QueuedL2Ops(); q > 1000 {
			t.Fatalf("%s: %d queued L2 ops (backlog)", prot, q)
		}
	}
}

func TestWriteThroughProtectionRuns(t *testing.T) {
	r, err := RunOne(FatConfig(), Protection{WriteThroughL1: true, L2TwoD: true},
		prof(t, "OLTP"), 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("write-through made no progress")
	}
	// Write-through multiplies L2 writes well beyond writeback levels.
	base, err := RunOne(FatConfig(), Baseline(), prof(t, "OLTP"), 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.L2.Write < base.L2.Write*3 {
		t.Fatalf("write-through L2 writes %d not >> baseline %d", r.L2.Write, base.L2.Write)
	}
}

func TestReplicationCacheRuns(t *testing.T) {
	r, err := RunOne(FatConfig(), Protection{ReplicationEntries: 8},
		prof(t, "OLTP"), 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("replication cache made no progress")
	}
	base, err := RunOne(FatConfig(), Baseline(), prof(t, "OLTP"), 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if r.L2.Write <= base.L2.Write {
		t.Fatalf("replication spills %d not above baseline %d", r.L2.Write, base.L2.Write)
	}
}

func TestInvalidProtectionCombos(t *testing.T) {
	bad := []Protection{
		{WriteThroughL1: true, L1TwoD: true},
		{ReplicationEntries: 4, L1TwoD: true},
		{ReplicationEntries: 4, WriteThroughL1: true},
	}
	for i, p := range bad {
		if _, err := New(FatConfig(), p, prof(t, "OLTP"), 1); err == nil {
			t.Errorf("case %d: invalid combo accepted", i)
		}
	}
}

func TestErrorInjectionBlocksL1(t *testing.T) {
	p := prof(t, "OLTP")
	base, err := RunOne(FatConfig(), Protection{L1TwoD: true, PortStealing: true},
		p, 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	stormProt := Protection{L1TwoD: true, PortStealing: true, ErrorEveryCycles: 500}
	storm, err := RunOne(FatConfig(), stormProt, p, 1, testWarmup, testMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if storm.Recoveries == 0 {
		t.Fatal("no recoveries under storm")
	}
	if storm.IPC() >= base.IPC() {
		t.Fatalf("error storm did not cost IPC: %v vs %v", storm.IPC(), base.IPC())
	}
}
