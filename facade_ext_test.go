package twodcache

import (
	"bytes"
	"testing"

	"twodcache/internal/redundancy"
)

func TestPublicBISTFlow(t *testing.T) {
	arr, err := NewFaultyArray(64, 576)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Inject(CellFault{Row: 10, Col: 100, Kind: StuckAt1}); err != nil {
		t.Fatal(err)
	}
	res := RunMarch(arr, MarchCMinus())
	if res.Passed() || len(res.FailingCells()) != 1 {
		t.Fatalf("march result: %d fails", len(res.Fails))
	}
	// MATS+ and March X run too.
	for _, alg := range []MarchAlgorithm{MATSPlus(), MarchX()} {
		a2, _ := NewFaultyArray(8, 8)
		if !RunMarch(a2, alg).Passed() {
			t.Fatalf("%s failed clean array", alg.Name)
		}
	}
}

func TestPublicSelfRepair(t *testing.T) {
	arr, _ := NewFaultyArray(64, 576)
	_ = arr.Inject(CellFault{Row: 3, Col: 9, Kind: StuckAt0})
	out, err := SelfRepair(arr, RepairConfig{
		Rows: 64, Cols: 576, SpareRows: 1, WordBits: 72,
	}, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("outcome %+v", out)
	}
}

func TestPublicAllocateRepairs(t *testing.T) {
	plan, err := AllocateRepairs(RepairConfig{
		Rows: 16, Cols: 144, SpareRows: 1, WordBits: 72,
	}, []redundancy.Fault{{Row: 2, Col: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatalf("plan %+v", plan)
	}
}

func TestPublicScrubModel(t *testing.T) {
	m := DefaultScrubModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.EventRatePerHour() <= 0 {
		t.Fatal("zero event rate")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := RecordTrace(&buf, "Moldyn", 0, 0, 3, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("record: %d, %v", n, err)
	}
	data := buf.Bytes()
	sum, err := SummarizeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instructions != 5000 {
		t.Fatalf("summary %+v", sum)
	}
	src, err := ReplayTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mem := 0
	for i := 0; i < 5000; i++ {
		if src.Next().IsMem {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("replay produced no memory ops")
	}
	if _, err := RecordTrace(&buf, "nope", 0, 0, 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPublicErrorInjectionProtection(t *testing.T) {
	wl, _ := Workload("OLTP")
	prot := Protection{L1TwoD: true, PortStealing: true, ErrorEveryCycles: 5000}
	r, err := RunCMP(FatCMP(), prot, wl, 1, 10000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries == 0 {
		t.Fatal("no recovery events recorded")
	}
}
