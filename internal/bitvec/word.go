package bitvec

import (
	"fmt"
	"math/bits"
)

// Codeword is an unowned, allocation-free view of n bits packed
// little-endian into a caller-owned []uint64. It is the word-kernel
// counterpart of Vector: every operation works in place on the backing
// words, so the hot coding paths (per-access horizontal checks, the
// delta-XOR vertical update) can run without a single heap allocation.
//
// A Codeword never owns or grows its storage. Bits at positions >= Len
// inside the last backing word are "tail" bits: kernel operations keep
// them zero, and MaskTail restores that invariant after raw word
// manipulation.
type Codeword struct {
	n int
	w []uint64
}

// WordsFor returns the number of uint64 words needed to hold n bits.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// MakeCodeword returns an n-bit view over buf. It panics if buf is too
// short. Extra words beyond WordsFor(n) are ignored.
func MakeCodeword(buf []uint64, n int) Codeword {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative codeword length %d", n))
	}
	nw := WordsFor(n)
	if len(buf) < nw {
		panic(fmt.Sprintf("bitvec: codeword buffer %d words < %d needed for %d bits", len(buf), nw, n))
	}
	return Codeword{n: n, w: buf[:nw]}
}

// AsCodeword returns a Codeword view sharing v's storage: mutations
// through the view mutate the vector. This is the zero-copy bridge from
// the legacy Vector API onto the kernels.
func (v *Vector) AsCodeword() Codeword { return Codeword{n: v.n, w: v.words} }

// Words exposes v's backing words (little-endian bit order). Mutating
// them mutates the vector; bits >= Len in the last word must stay zero.
func (v *Vector) Words() []uint64 { return v.words }

// Len returns the number of bits in the view.
func (c Codeword) Len() int { return c.n }

// Words returns the backing word slice of the view.
func (c Codeword) Words() []uint64 { return c.w }

// Bit reports whether bit i is set. It panics if i is out of range.
func (c Codeword) Bit(i int) bool {
	c.check(i)
	return c.w[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetBit sets bit i to val. It panics if i is out of range.
func (c Codeword) SetBit(i int, val bool) {
	c.check(i)
	if val {
		c.w[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		c.w[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (c Codeword) Flip(i int) {
	c.check(i)
	c.w[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (c Codeword) check(i int) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("bitvec: codeword index %d out of range [0,%d)", i, c.n))
	}
}

// Zero clears every bit.
func (c Codeword) Zero() {
	for i := range c.w {
		c.w[i] = 0
	}
}

// IsZero reports whether no bit is set.
func (c Codeword) IsZero() bool {
	for _, w := range c.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (c Codeword) PopCount() int {
	n := 0
	for _, w := range c.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Parity returns the XOR of all bits.
func (c Codeword) Parity() int {
	var acc uint64
	for _, w := range c.w {
		acc ^= w
	}
	return bits.OnesCount64(acc) & 1
}

// Xor sets c to c XOR other. Both must have equal length.
func (c Codeword) Xor(other Codeword) {
	if c.n != other.n {
		panic(fmt.Sprintf("bitvec: codeword Xor length mismatch %d != %d", c.n, other.n))
	}
	for i := range c.w {
		c.w[i] ^= other.w[i]
	}
}

// CopyFrom overwrites c with the contents of src (equal lengths).
func (c Codeword) CopyFrom(src Codeword) {
	if c.n != src.n {
		panic(fmt.Sprintf("bitvec: codeword CopyFrom length mismatch %d != %d", c.n, src.n))
	}
	copy(c.w, src.w)
}

// Equal reports whether both views hold identical bits and lengths.
func (c Codeword) Equal(other Codeword) bool {
	if c.n != other.n {
		return false
	}
	for i := range c.w {
		if c.w[i] != other.w[i] {
			return false
		}
	}
	return true
}

// Uint64 returns the low 64 bits of the view.
func (c Codeword) Uint64() uint64 {
	if len(c.w) == 0 {
		return 0
	}
	x := c.w[0]
	if c.n < wordBits {
		x &= (1 << uint(c.n)) - 1
	}
	return x
}

// Uint64At returns up to 64 bits starting at bit offset off, shifted
// down to bit 0 and zero-padded past the end of the view.
func (c Codeword) Uint64At(off int) uint64 {
	if off < 0 || off > c.n {
		panic(fmt.Sprintf("bitvec: codeword offset %d out of range [0,%d]", off, c.n))
	}
	wi, sh := off/wordBits, uint(off)%wordBits
	if wi >= len(c.w) {
		return 0
	}
	x := c.w[wi] >> sh
	if sh != 0 && wi+1 < len(c.w) {
		x |= c.w[wi+1] << (wordBits - sh)
	}
	if rem := c.n - off; rem < wordBits {
		x &= (1 << uint(rem)) - 1
	}
	return x
}

// StoreBits overwrites the nb bits at offset off with the low nb bits
// of x (nb <= 64). Bits outside [off, off+nb) are untouched.
func (c Codeword) StoreBits(off, nb int, x uint64) {
	if nb < 0 || nb > wordBits {
		panic(fmt.Sprintf("bitvec: StoreBits width %d out of [0,64]", nb))
	}
	if off < 0 || off+nb > c.n {
		panic(fmt.Sprintf("bitvec: StoreBits [%d,%d) out of range [0,%d)", off, off+nb, c.n))
	}
	if nb == 0 {
		return
	}
	mask := ^uint64(0)
	if nb < wordBits {
		mask = (1 << uint(nb)) - 1
	}
	x &= mask
	wi, sh := off/wordBits, uint(off)%wordBits
	c.w[wi] = c.w[wi]&^(mask<<sh) | x<<sh
	if spill := int(sh) + nb - wordBits; spill > 0 {
		hi := uint(wordBits) - sh
		c.w[wi+1] = c.w[wi+1]&^(mask>>hi) | x>>hi
	}
}

// Slice returns an in-place sub-view of bits [lo, hi). lo must be
// word-aligned (a multiple of 64) so the view can share storage; use
// Uint64At for arbitrary offsets.
func (c Codeword) Slice(lo, hi int) Codeword {
	if lo < 0 || hi > c.n || lo > hi {
		panic(fmt.Sprintf("bitvec: codeword Slice [%d,%d) out of range [0,%d)", lo, hi, c.n))
	}
	if lo%wordBits != 0 {
		panic(fmt.Sprintf("bitvec: codeword Slice offset %d not word-aligned", lo))
	}
	return Codeword{n: hi - lo, w: c.w[lo/wordBits : WordsFor(hi)]}
}

// MaskTail clears the tail bits (positions >= Len) of the last backing
// word, restoring the kernel invariant after raw word writes.
func (c Codeword) MaskTail() {
	if rem := c.n % wordBits; rem != 0 && len(c.w) > 0 {
		c.w[len(c.w)-1] &= (1 << uint(rem)) - 1
	}
}

// CopyToVector materialises the view as a freshly allocated Vector.
func (c Codeword) CopyToVector() *Vector {
	v := New(c.n)
	copy(v.words, c.w)
	return v
}
