package netsrv

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/twod"
)

// goroutineCount samples runtime.NumGoroutine after nudging the
// scheduler, so freshly-exited goroutines are actually gone.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// waitGoroutines polls until the goroutine count returns to the
// baseline or the deadline passes.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for goroutineCount() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goroutineCount(); got > baseline {
		t.Fatalf("goroutine leak: %d alive, baseline %d", got, baseline)
	}
}

// TestGracefulDrain is the shutdown contract end to end: with writers
// mid-pipeline, Shutdown must let every acknowledged write execute and
// flush to the backing, refuse new connections, return Serve nil, and
// leave no server goroutine behind.
func TestGracefulDrain(t *testing.T) {
	baseline := goroutineCount()
	st, backing := newStore(t, 2, resilience.Config{})
	srv, err := NewServer(Config{Store: st, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	// Each writer streams full lines at fresh addresses (its own slice
	// of the address space), recording every acknowledged write. An ack
	// means the server executed the op — so after drain+flush the
	// backing must hold exactly that data at that line.
	const writers = 4
	acked := make([]map[uint64][]byte, writers)
	clients := make([]*Client, writers)
	for g := 0; g < writers; g++ {
		acked[g] = map[uint64][]byte{}
		c, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients[g] = c
	}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for seq := 0; ; seq++ {
				addr := uint64(g<<20|seq) * lineBytes
				data := make([]byte, lineBytes)
				rng.Read(data)
				if err := clients[g].Write(addr, data); err != nil {
					// The drain closed the connection under us — the
					// expected way out.
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDraining) {
						t.Errorf("writer %d: unexpected error %v", g, err)
					}
					return
				}
				acked[g][addr] = data
			}
		}(g)
	}

	// Let traffic flow, then drain mid-stream.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
	}
	wg.Wait()

	// New connections must be refused: the listener is closed.
	if c, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}

	total := 0
	for g := 0; g < writers; g++ {
		clients[g].Close()
		total += len(acked[g])
		for addr, want := range acked[g] {
			if got := backing.ReadLine(addr); !bytes.Equal(got, want) {
				t.Fatalf("writer %d: acked line %#x not in backing after drain", g, addr)
			}
		}
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged before the drain — test proved nothing")
	}

	// A drained server refuses Serve on a fresh listener.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l2); !errors.Is(err, ErrDraining) {
		t.Fatalf("Serve after Shutdown = %v, want ErrDraining", err)
	}

	waitGoroutines(t, baseline)
}

// TestShutdownForceClose pins the ctx-expired path: a connection that
// never completes its frame keeps the drain from finishing, so an
// already-expired ctx must force-close it, return the ctx error, and
// still leave no goroutines behind.
func TestShutdownForceClose(t *testing.T) {
	baseline := goroutineCount()
	st, _ := newStore(t, 1, resilience.Config{})
	srv, err := NewServer(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	// A half-frame keeps the reader waiting for payload even after the
	// drain kick resets its read deadline — SetReadDeadline only kicks
	// the *current* blocking read; this conn immediately re-blocks
	// inside io.ReadFull. Only the force-close path can reap it.
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write(be32Append(nil, 100)) // length promises 100 bytes that never come
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil", err)
	}
	waitGoroutines(t, baseline)
}

// TestHammer drives many concurrent pipelined clients over a store
// under a live fault storm — the -race workout for the wire layer.
// Every error escaping to a caller must be canonical: transport errors
// only after the test closes things, op errors only the taxonomy the
// store itself produces.
func TestHammer(t *testing.T) {
	st, _ := newStore(t, 2, resilience.Config{})
	_, addr := startServer(t, st, Config{BatchSize: 8, RespQueue: 32})

	const nClients = 3
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = dial(t, addr)
	}

	// Storm: continuous single-event flips across every (shard, bank),
	// clean-word gated under the bank lock like the soak harness.
	stopStorm := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		storm := fault.NewStorm(fault.StormConfig{Seed: 99, MeanInterval: time.Microsecond})
		rng := rand.New(rand.NewSource(99))
		banksPer := st.Shard(0).Cache().NumBanks()
		for {
			select {
			case <-stopStorm:
				return
			default:
			}
			gi := rng.Intn(st.NumShards() * banksPer)
			c, bi := st.Shard(gi/banksPer).Cache(), gi%banksPer
			hitTags := rng.Intn(4) == 0
			c.WithBankLock(bi, func(data, tags *twod.Array) {
				a := data
				if hitTags {
					a = tags
				}
				p := storm.NextEvent(a.Rows(), a.RowBits())
				for _, fl := range p.Flips {
					w, _ := a.Layout().Locate(fl.Col)
					if _, ok := a.TryRead(fl.Row, w); ok {
						a.FlipBit(fl.Row, fl.Col)
					}
				}
			})
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const (
		goroutinesPerClient = 4
		opsPerGoroutine     = 150
		lines               = 64
	)
	okErr := func(err error) bool {
		return err == nil ||
			errors.Is(err, pcache.ErrUncorrectable) ||
			errors.Is(err, resilience.ErrRecoveryInProgress) ||
			errors.Is(err, context.DeadlineExceeded)
	}
	var wg sync.WaitGroup
	for ci, cl := range clients {
		for g := 0; g < goroutinesPerClient; g++ {
			wg.Add(1)
			go func(ci, g int, cl *Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(ci*100 + g)))
				buf := make([]byte, lineBytes)
				for i := 0; i < opsPerGoroutine; i++ {
					a := uint64(rng.Intn(lines)) * lineBytes
					var err error
					switch rng.Intn(10) {
					case 0, 1, 2:
						rng.Read(buf)
						err = cl.Write(a, buf)
					case 3, 4, 5:
						_, err = cl.Read(a, lineBytes)
					case 6:
						ops := make([]pcache.ReadOp, 4)
						for j := range ops {
							ops[j] = pcache.ReadOp{Addr: uint64(rng.Intn(lines)) * lineBytes, Dst: make([]byte, lineBytes)}
						}
						var terr error
						if _, terr = cl.ReadBatch(ops); terr != nil {
							t.Errorf("hammer %d/%d: ReadBatch transport: %v", ci, g, terr)
							return
						}
						for j := range ops {
							if !okErr(ops[j].Err) {
								t.Errorf("hammer %d/%d: batch read op err %v", ci, g, ops[j].Err)
							}
						}
					case 7:
						ops := make([]pcache.WriteOp, 4)
						for j := range ops {
							d := make([]byte, lineBytes)
							rng.Read(d)
							ops[j] = pcache.WriteOp{Addr: uint64(rng.Intn(lines)) * lineBytes, Data: d}
						}
						var terr error
						if _, terr = cl.WriteBatch(ops); terr != nil {
							t.Errorf("hammer %d/%d: WriteBatch transport: %v", ci, g, terr)
							return
						}
						for j := range ops {
							if !okErr(ops[j].Err) {
								t.Errorf("hammer %d/%d: batch write op err %v", ci, g, ops[j].Err)
							}
						}
					case 8:
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
						_, err = cl.ReadCtx(ctx, a, lineBytes)
						cancel()
					default:
						_, err = cl.Stats()
					}
					if !okErr(err) {
						t.Errorf("hammer %d/%d op %d: %v", ci, g, i, err)
						return
					}
				}
			}(ci, g, cl)
		}
	}
	wg.Wait()
	close(stopStorm)
	<-stormDone
}
