package twod

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// TestPropertyClusterWithinCoverageAlwaysRecovers is the paper's
// coverage contract as a property: any error pattern contained in a
// box of at most V rows by at most n*d physical columns is corrected
// exactly.
func TestPropertyClusterWithinCoverageAlwaysRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := Config{Rows: 64, WordsPerRow: 4, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 16}
	maxW := 8 * 4 // n*d = 32 physical columns
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustArray(cfg)
		fillRandom(a, rng)
		golden := a.SnapshotData()
		h := 1 + rng.Intn(cfg.VerticalGroups)
		w := 1 + rng.Intn(maxW)
		r0 := rng.Intn(cfg.Rows - h + 1)
		c0 := rng.Intn(a.RowBits() - w + 1)
		// Random non-empty subset of the box.
		flips := 1 + rng.Intn(h*w)
		for i := 0; i < flips; i++ {
			a.FlipBit(r0+rng.Intn(h), c0+rng.Intn(w))
		}
		rep := a.Recover()
		return rep.Success && len(a.SnapshotData().Diff(golden)) == 0 && parityConsistent(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWritesPreserveParity: arbitrary write sequences never
// break the vertical parity invariant, and reads return the last value
// written.
func TestPropertyWritesPreserveParity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cfg := Config{Rows: 32, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 8}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustArray(cfg)
		shadow := make(map[[2]int]uint64)
		for i := 0; i < 300; i++ {
			r, w := rng.Intn(cfg.Rows), rng.Intn(cfg.WordsPerRow)
			if rng.Intn(3) == 0 {
				d := rng.Uint64()
				a.Write(r, w, u64vec(d))
				shadow[[2]int{r, w}] = d
			} else {
				got, st := a.Read(r, w)
				if st != ReadClean {
					return false
				}
				if got.Uint64() != shadow[[2]int{r, w}] {
					return false
				}
			}
		}
		return parityConsistent(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRecoveryIdempotent: running recovery on an already
// recovered (or clean) array changes nothing.
func TestPropertyRecoveryIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Rows: 32, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 8}
		a := MustArray(cfg)
		fillRandom(a, rng)
		a.FlipBit(rng.Intn(32), rng.Intn(a.RowBits()))
		if !a.Recover().Success {
			return false
		}
		snap := a.SnapshotData()
		rep := a.Recover()
		return rep.Mode == RecoveryNone && rep.Success &&
			len(a.SnapshotData().Diff(snap)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySECDEDInlineNeverBreaksParity: inline corrections restore
// intended contents, so the parity invariant survives any single-bit
// soft error plus read.
func TestPropertySECDEDInlineNeverBreaksParity(t *testing.T) {
	cfg := Config{Rows: 32, WordsPerRow: 2, Horizontal: ecc.MustSECDED(64), VerticalGroups: 8}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustArray(cfg)
		fillRandom(a, rng)
		r := rng.Intn(cfg.Rows)
		col := rng.Intn(a.RowBits())
		a.FlipBit(r, col)
		w, _ := a.Layout().Locate(col)
		_, st := a.Read(r, w)
		return st == ReadCorrectedInline && parityConsistent(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func u64vec(x uint64) *bitvec.Vector { return bitvec.FromUint64(x, 64) }
