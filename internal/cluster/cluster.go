// Package cluster is the replicated client over N netsrv endpoints: a
// drop-in store-shaped API whose reads survive a slow or dead replica
// and whose writes fan out to every replica with read-repair for the
// ones that miss.
//
// The correctness invariant the whole package hangs off is freshness:
// an endpoint may serve a read for addr only if it is not known (or
// suspected) to have missed a write to addr. Every failed, shed, or
// ambiguous per-replica write lands addr in that replica's missed set;
// a reconnect after a connection loss conservatively marks every addr
// the cluster ever wrote (a restarted replica is an empty replica, and
// the client cannot tell a blip from a restart). Reads are routed only
// to fresh endpoints, so a stale replica can never answer with old
// bytes — the failure mode that would read as silent corruption to the
// shadow verifier. A background repair loop drains missed sets by
// copying from a fresh replica under the same per-addr stripe locks
// writes hold, so repair never interleaves with a newer write.
//
// Reads hedge: after a delay derived from the live read-latency
// histogram (HedgeQuantile, clamped to [HedgeMin, HedgeMax]), a second
// replica is asked and the first success wins. Retryable failures
// (recovery in progress, draining, transport loss) fail over
// immediately and then retry with jittered exponential backoff while
// deadline headroom remains. Writes never retry past ambiguity: if
// every replica failed and any failure was ambiguous (the request may
// have been applied), the write surfaces ErrAmbiguousWrite rather than
// risk a double apply — unless the caller declares writes idempotent.
//
// Per-endpoint health is a resilience.HealthBreaker (closed → open →
// half-open with single probes), the same state machine that guards
// cache banks, so endpoint misbehaviour sheds load the same way bank
// misbehaviour does.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/netsrv"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// Errors surfaced by the cluster client.
var (
	// ErrClosed reports that the client has been closed.
	ErrClosed = errors.New("cluster: client closed")
	// ErrNoReplicas reports that no fresh, healthy replica could serve
	// the request right now — a loud, accounted failure, never a stale
	// answer.
	ErrNoReplicas = errors.New("cluster: no fresh replica available")
	// ErrAmbiguousWrite reports a write whose outcome is unknown on
	// every replica: it may or may not have been applied somewhere.
	// Retrying is the caller's call (safe iff the write is idempotent);
	// the client will not make it unilaterally.
	ErrAmbiguousWrite = errors.New("cluster: write outcome ambiguous")
)

// Conn is the per-endpoint transport the cluster drives — the subset of
// netsrv.Client it needs, an interface so tests can substitute
// in-process fakes. The batch forms carry per-op outcomes in each op's
// Err field and return a transport-level error only when no op was
// served; a ctx deadline travels in the batch frame and bounds the
// whole batch server-side.
type Conn interface {
	ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error)
	WriteCtx(ctx context.Context, addr uint64, data []byte) error
	ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int, err error)
	WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int, err error)
	FlushCtx(ctx context.Context) error
	Epoch(addr uint64) (uint64, error)
	Close() error
}

// Config parameterises a cluster Client.
type Config struct {
	// Endpoints are the replica addresses. At least one is required;
	// every replica is assumed to start from the same (empty) state.
	Endpoints []string
	// Dial opens a transport to one endpoint. Nil selects netsrv.Dial.
	Dial func(addr string) (Conn, error)
	// Breaker configures each endpoint's health breaker. The zero value
	// selects the resilience defaults (threshold 5, open 10ms, 2 probes).
	Breaker resilience.BreakerConfig
	// HedgeQuantile is the read-latency quantile the hedge delay tracks
	// (default 0.95): a hedge fires when a read has outlived that share
	// of recent reads.
	HedgeQuantile float64
	// HedgeMin and HedgeMax clamp the derived hedge delay (defaults
	// 200µs and 20ms). Until enough samples accumulate the delay sits at
	// HedgeMax, so a cold client cannot hedge-storm.
	HedgeMin, HedgeMax time.Duration
	// DisableHedging turns hedged reads off (failover and retry remain).
	DisableHedging bool
	// MaxRetries bounds cluster-level retries after the first attempt
	// (default 3). Zero means default; negative means none.
	MaxRetries int
	// RetryBase and RetryMax bound the jittered exponential backoff
	// between retries (defaults 500µs and 10ms).
	RetryBase, RetryMax time.Duration
	// IdempotentWrites declares that re-applying a write is harmless,
	// allowing retries past ambiguous per-replica outcomes.
	IdempotentWrites bool
	// Seed fixes the retry-jitter stream for reproducible runs.
	Seed int64
	// Metrics receives the cluster_* metric family; nil uses a private
	// registry (metrics still work, nobody exports them).
	Metrics *obs.Registry
	// RedialBackoff is the initial pause between reconnect attempts to a
	// down endpoint (default 10ms, doubling to 500ms).
	RedialBackoff time.Duration
	// RepairInterval is the read-repair scan period (default 2ms).
	RepairInterval time.Duration
	// RepairBatch bounds addrs repaired per endpoint per pass
	// (default 64).
	RepairBatch int
	// SelftestSkewEvery, when positive, deliberately skips one replica
	// on every Nth write WITHOUT recording the miss — an injected
	// replication bug that must surface as silent corruption in the
	// shadow verifier. It exists so the soak gate can prove it would
	// catch real divergence; never set it outside that drill.
	SelftestSkewEvery int
}

func (c Config) withDefaults() Config {
	if c.Dial == nil {
		c.Dial = func(addr string) (Conn, error) { return netsrv.Dial(addr) }
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 200 * time.Microsecond
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = 20 * time.Millisecond
		if c.HedgeMax < c.HedgeMin {
			c.HedgeMax = c.HedgeMin
		}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Microsecond
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = 10 * time.Millisecond
		if c.RetryMax < c.RetryBase {
			c.RetryMax = c.RetryBase
		}
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 10 * time.Millisecond
	}
	if c.RepairInterval <= 0 {
		c.RepairInterval = 2 * time.Millisecond
	}
	if c.RepairBatch <= 0 {
		c.RepairBatch = 64
	}
	return c
}

// numStripes is the per-addr lock fan-out: writes and repairs to the
// same addr serialise, unrelated addrs almost never collide.
const numStripes = 256

// Client is a replicated cluster client. Safe for concurrent use.
type Client struct {
	cfg Config
	eps []*endpoint

	stripes [numStripes]sync.Mutex

	mu      sync.Mutex
	written map[uint64]int // every addr ever written → last length
	rng     *rand.Rand     // retry jitter; guarded by mu

	rr       atomic.Uint64 // read round-robin cursor
	writeSeq atomic.Uint64 // selftest-skew counter

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	reads, writes   *obs.Counter
	hedges          *obs.Counter
	hedgeWins       *obs.Counter
	hedgeWasted     *obs.Counter
	retries         *obs.Counter
	readRepairs     *obs.Counter
	redials         *obs.Counter
	ambiguousWrites *obs.Counter
	noReplicaErrors *obs.Counter
	breakerTrips    *obs.Counter
	readLat         *obs.Histogram
	hedgeDelayGauge *obs.Gauge
	selftestSkipped *obs.Counter
}

// New dials every endpoint and starts the repair loop. Endpoints that
// refuse the initial dial start down and are redialled in the
// background — a cluster with one live replica is degraded, not dead.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("cluster: Config.Endpoints is empty")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg = reg.WithPrefix("cluster_")
	c := &Client{
		cfg:     cfg,
		written: map[uint64]int{},
		rng:     rand.New(rand.NewSource(fault.DeriveSeed(cfg.Seed, 0x636c757374))),
		done:    make(chan struct{}),
	}
	c.reads = reg.Counter("reads_total", "cluster reads issued")
	c.writes = reg.Counter("writes_total", "cluster writes issued")
	c.hedges = reg.Counter("hedges_total", "hedge reads launched")
	c.hedgeWins = reg.Counter("hedge_wins_total", "hedge reads that returned first")
	c.hedgeWasted = reg.Counter("hedge_wasted_total", "hedge reads beaten by the primary")
	c.retries = reg.Counter("retries_total", "cluster-level retries")
	c.readRepairs = reg.Counter("read_repairs_total", "addrs repaired onto stale replicas")
	c.redials = reg.Counter("redials_total", "reconnect attempts to down endpoints")
	c.ambiguousWrites = reg.Counter("ambiguous_writes_total", "writes surfaced as ErrAmbiguousWrite")
	c.noReplicaErrors = reg.Counter("no_replica_errors_total", "requests that found no fresh replica")
	c.breakerTrips = reg.Counter("breaker_trips_total", "endpoint breakers tripped open")
	c.selftestSkipped = reg.Counter("selftest_skew_skips_total", "writes deliberately skipped by the selftest skew hook")
	c.readLat = reg.Histogram("read_latency", "winner latency of cluster reads")
	c.hedgeDelayGauge = reg.Gauge("hedge_delay_ns", "current derived hedge delay")
	reg.ClampLE("hedge_wins_total", "hedges_total")
	reg.ClampLE("hedge_wasted_total", "hedges_total")

	for i, addr := range cfg.Endpoints {
		ep := newEndpoint(c, i, addr)
		c.eps = append(c.eps, ep)
		if conn, err := cfg.Dial(addr); err == nil {
			ep.conn = conn
		} else {
			ep.startRedialLocked()
		}
	}
	reg.GaugeFunc("endpoints_connected", "endpoints with a live transport", func() int64 {
		var n int64
		for _, ep := range c.eps {
			ep.mu.Lock()
			if ep.conn != nil {
				n++
			}
			ep.mu.Unlock()
		}
		return n
	})
	c.wg.Add(1)
	go c.repairLoop()
	return c, nil
}

// Close stops the repair and redial loops and closes every transport.
// In-flight calls fail with ErrClosed or their transport's error.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.done)
	c.wg.Wait()
	for _, ep := range c.eps {
		ep.mu.Lock()
		if ep.conn != nil {
			ep.conn.Close()
			ep.conn = nil
		}
		ep.mu.Unlock()
	}
	return nil
}

// Epoch reports the cluster loss epoch for addr: the max over reachable
// replicas. A restarted replica reports 0 and cannot drag the max down,
// so accounted loss stays accounted across restarts.
func (c *Client) Epoch(addr uint64) (uint64, error) {
	var (
		best    uint64
		got     bool
		lastErr error
	)
	for _, ep := range c.eps {
		conn := ep.liveConn()
		if conn == nil {
			continue
		}
		e, err := conn.Epoch(addr)
		if err != nil {
			lastErr = err
			if isTransportDead(err) {
				ep.markDown(conn)
			}
			continue
		}
		got = true
		if e > best {
			best = e
		}
	}
	if !got {
		if lastErr == nil {
			lastErr = ErrNoReplicas
		}
		return 0, lastErr
	}
	return best, nil
}

// Flush flushes every reachable replica; see FlushCtx.
func (c *Client) Flush() error { return c.FlushCtx(context.Background()) }

// FlushCtx writes back dirty lines on every reachable replica. It
// attempts all replicas and returns the first error (a stale replica
// failing its flush still matters: its dirty lines are the ones repair
// will overwrite, but a fresh replica failing is data at risk).
func (c *Client) FlushCtx(ctx context.Context) error {
	var firstErr error
	flushed := 0
	for _, ep := range c.eps {
		conn := ep.liveConn()
		if conn == nil {
			continue
		}
		if err := conn.FlushCtx(ctx); err != nil {
			if isTransportDead(err) {
				ep.markDown(conn)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		flushed++
	}
	if flushed == 0 && firstErr == nil {
		return ErrNoReplicas
	}
	return firstErr
}

// noteWritten records addr in the global written set — the conservative
// resync source for reconnecting replicas.
func (c *Client) noteWritten(addr uint64, n int) {
	c.mu.Lock()
	c.written[addr] = n
	c.mu.Unlock()
}

// writtenSnapshot copies the global written set for a reconnect resync.
func (c *Client) writtenSnapshot() map[uint64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[uint64]int, len(c.written))
	for a, n := range c.written {
		m[a] = n
	}
	return m
}

// jitteredBackoff returns the pause before retry attempt (0-based):
// RetryBase·2^attempt capped at RetryMax, scaled by a uniform factor in
// [0.5, 1.5) from the seeded jitter stream.
func (c *Client) jitteredBackoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	c.mu.Lock()
	f := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(f * float64(d))
}

// hedgeDelay derives the current hedge trigger from the live latency
// histogram: the configured quantile, clamped. With under 64 samples it
// answers HedgeMax so a cold client cannot hedge-storm.
func (c *Client) hedgeDelay() time.Duration {
	s := c.readLat.Snapshot()
	d := c.cfg.HedgeMax
	if s.Count >= 64 {
		d = s.Quantile(c.cfg.HedgeQuantile)
		if d < c.cfg.HedgeMin {
			d = c.cfg.HedgeMin
		} else if d > c.cfg.HedgeMax {
			d = c.cfg.HedgeMax
		}
	}
	c.hedgeDelayGauge.Set(int64(d))
	return d
}

// stripe returns the lock serialising writes and repairs for addr.
func (c *Client) stripe(addr uint64) *sync.Mutex {
	return &c.stripes[addr%numStripes]
}

// Endpoints reports each endpoint's address, breaker state, transport
// liveness, and missed-addr backlog — the operator's view.
func (c *Client) Endpoints() []EndpointStatus {
	out := make([]EndpointStatus, len(c.eps))
	for i, ep := range c.eps {
		ep.mu.Lock()
		out[i] = EndpointStatus{
			Addr:      ep.addr,
			Connected: ep.conn != nil,
			Breaker:   ep.brk.State(),
			Missed:    len(ep.missed),
		}
		ep.mu.Unlock()
	}
	return out
}

// EndpointStatus is one endpoint's health summary.
type EndpointStatus struct {
	Addr      string
	Connected bool
	Breaker   string
	Missed    int
}

// String renders the status compactly for logs.
func (s EndpointStatus) String() string {
	conn := "down"
	if s.Connected {
		conn = "up"
	}
	return fmt.Sprintf("%s[%s/%s missed=%d]", s.Addr, conn, s.Breaker, s.Missed)
}
