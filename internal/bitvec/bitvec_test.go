package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if !v.IsZero() {
			t.Fatalf("New(%d) not zero", n)
		}
		if v.PopCount() != 0 {
			t.Fatalf("PopCount of zero vector = %d", v.PopCount())
		}
	}
}

func TestSetBitFlip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 64 || i == 129
		if v.Bit(i) != want {
			t.Fatalf("Bit(%d) = %v, want %v", i, v.Bit(i), want)
		}
	}
	if v.PopCount() != 3 {
		t.Fatalf("PopCount = %d, want 3", v.PopCount())
	}
	v.Flip(64)
	if v.Bit(64) {
		t.Fatal("Flip did not clear bit 64")
	}
	v.Set(0, false)
	if v.Bit(0) {
		t.Fatal("Set(0,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Bit(10) },
		func() { New(10).Bit(-1) },
		func() { New(10).Set(10, true) },
		func() { New(10).Flip(-1) },
		func() { New(-1) },
		func() { New(8).Xor(New(9)) },
		func() { New(8).Slice(3, 9) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestXorSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := randomVec(rng, n), randomVec(rng, n)
		orig := a.Clone()
		a.Xor(b)
		a.Xor(b)
		if !a.Equal(orig) {
			t.Fatalf("xor twice != identity at n=%d", n)
		}
	}
}

func TestOnesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		v := randomVec(rng, n)
		ones := v.Ones()
		if len(ones) != v.PopCount() {
			t.Fatalf("len(Ones)=%d popcount=%d", len(ones), v.PopCount())
		}
		rebuilt := New(n)
		for _, i := range ones {
			rebuilt.Set(i, true)
		}
		if !rebuilt.Equal(v) {
			t.Fatal("rebuilding from Ones() differs")
		}
	}
}

func TestParityMatchesPopCount(t *testing.T) {
	f := func(words []uint64) bool {
		n := len(words) * 64
		if n == 0 {
			return true
		}
		v := New(n)
		for i, w := range words {
			for b := 0; b < 64; b++ {
				if w&(1<<uint(b)) != 0 {
					v.Set(i*64+b, true)
				}
			}
		}
		return v.Parity() == v.PopCount()%2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromUint64(t *testing.T) {
	v := FromUint64(0xDEADBEEF, 32)
	if v.Uint64() != 0xDEADBEEF {
		t.Fatalf("round trip = %#x", v.Uint64())
	}
	v = FromUint64(^uint64(0), 16)
	if v.Uint64() != 0xFFFF {
		t.Fatalf("mask failed: %#x", v.Uint64())
	}
	if v.PopCount() != 16 {
		t.Fatalf("popcount = %d", v.PopCount())
	}
}

func TestFromBytes(t *testing.T) {
	v := FromBytes([]byte{0x01, 0x80}, 16)
	if !v.Bit(0) || !v.Bit(15) || v.PopCount() != 2 {
		t.Fatalf("FromBytes wrong: %s", v)
	}
	// Truncation: only first 4 bits used.
	v = FromBytes([]byte{0xFF}, 4)
	if v.PopCount() != 4 {
		t.Fatalf("truncated popcount = %d", v.PopCount())
	}
}

func TestSliceAndSetSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVec(rng, 200)
	s := v.Slice(37, 150)
	if s.Len() != 113 {
		t.Fatalf("slice len = %d", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Bit(i) != v.Bit(37+i) {
			t.Fatalf("slice bit %d mismatch", i)
		}
	}
	w := New(200)
	w.SetSlice(37, s)
	for i := 0; i < 113; i++ {
		if w.Bit(37+i) != v.Bit(37+i) {
			t.Fatalf("SetSlice bit %d mismatch", i)
		}
	}
}

func TestParseString(t *testing.T) {
	v, err := Parse("10110")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "10110" {
		t.Fatalf("round trip = %q", v.String())
	}
	if _, err := Parse("10x"); err == nil {
		t.Fatal("expected error for invalid char")
	}
}

func TestAndOr(t *testing.T) {
	a, _ := Parse("1100")
	b, _ := Parse("1010")
	x := a.Clone()
	x.And(b)
	if x.String() != "1000" {
		t.Fatalf("And = %s", x)
	}
	y := a.Clone()
	y.Or(b)
	if y.String() != "1110" {
		t.Fatalf("Or = %s", y)
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomVec(rng, 99)
	b := New(99)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom not equal")
	}
	b.Flip(42)
	if a.Equal(b) {
		t.Fatal("Equal after flip")
	}
	if a.Equal(New(98)) {
		t.Fatal("Equal across lengths")
	}
}

func randomVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}
