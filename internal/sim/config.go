// Package sim is the cycle-level chip-multiprocessor simulator used for
// the paper's performance experiments (Fig. 5, Fig. 6): cores from
// internal/cpu, private L1 data caches and a shared banked L2 from
// internal/cache, a directory for dirty-in-L1 lines (Piranha-style
// L1-to-L1 transfers), a fixed-latency memory, and the 2D-coding write
// path — every write becomes a read-before-write, optionally hidden by
// port stealing.
//
// This simulator substitutes for the paper's FLEXUS full-system
// runs: it does not execute an ISA, but reproduces the traffic shape
// (reads/writes/fills per cycle) and the contention mechanisms through
// which 2D coding costs performance.
package sim

import (
	"fmt"

	"twodcache/internal/cache"
)

// SystemConfig describes one CMP baseline (Table 1).
type SystemConfig struct {
	// Name labels the system ("fat" or "lean").
	Name string
	// Cores is the number of CPU cores.
	Cores int
	// ThreadsPerCore is the hardware thread count (1 for the fat OoO).
	ThreadsPerCore int
	// Width is the superscalar issue width.
	Width int
	// Window is the fat core's reorder window (ignored for lean).
	Window int
	// SQSize is the store queue capacity.
	SQSize int
	// OoO selects the fat (true) or lean (false) core model.
	OoO bool
	// L1 is the per-core L1 data cache.
	L1 cache.Config
	// L2 is the shared cache.
	L2 cache.Config
	// L2Occupancy is how many cycles one operation occupies an L2 bank
	// (banks are not fully pipelined); 2D-protected writes occupy the
	// bank twice as long for the read-before-write.
	L2Occupancy int
	// CrossbarLat is the core-to-L2 interconnect latency in cycles.
	CrossbarLat int
	// MemLat is the memory access latency in cycles.
	MemLat int
}

// Validate checks the configuration.
func (c SystemConfig) Validate() error {
	if c.Cores <= 0 || c.ThreadsPerCore <= 0 || c.Width <= 0 || c.SQSize <= 0 {
		return fmt.Errorf("sim: invalid core parameters %+v", c)
	}
	if c.OoO && c.Window <= 0 {
		return fmt.Errorf("sim: OoO core needs a window")
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("sim: L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("sim: L2: %w", err)
	}
	if c.CrossbarLat < 0 || c.MemLat <= 0 || c.L2Occupancy <= 0 {
		return fmt.Errorf("sim: invalid latencies %+v", c)
	}
	return nil
}

// FatConfig returns the paper's fat CMP baseline: four 4-wide OoO cores
// at 4 GHz, 64 kB 2-way dual-ported write-back L1 D-caches with 2-cycle
// hits, a 16 MB 8-way shared L2 with 16-cycle hits and a 1-cycle
// crossbar, 64 MSHRs, and 60 ns (240-cycle) memory.
func FatConfig() SystemConfig {
	return SystemConfig{
		Name:           "fat",
		Cores:          4,
		ThreadsPerCore: 1,
		Width:          4,
		Window:         64,
		SQSize:         64,
		OoO:            true,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2,
			Banks: 1, PortsPerBank: 2, HitLatency: 2, MSHRs: 8,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 16 << 20, LineBytes: 64, Assoc: 8,
			Banks: 8, PortsPerBank: 1, HitLatency: 16, MSHRs: 64,
		},
		L2Occupancy: 4,
		CrossbarLat: 1,
		MemLat:      240,
	}
}

// LeanConfig returns the paper's lean CMP baseline: eight 2-wide
// in-order 4-thread cores, single-ported L1 D-caches, and a 4 MB 16-way
// shared L2 with 12-cycle hits.
func LeanConfig() SystemConfig {
	return SystemConfig{
		Name:           "lean",
		Cores:          8,
		ThreadsPerCore: 4,
		Width:          2,
		Window:         0,
		SQSize:         64,
		OoO:            false,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2,
			Banks: 1, PortsPerBank: 1, HitLatency: 2, MSHRs: 8,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 4 << 20, LineBytes: 64, Assoc: 16,
			Banks: 8, PortsPerBank: 1, HitLatency: 12, MSHRs: 64,
		},
		L2Occupancy: 4,
		CrossbarLat: 1,
		MemLat:      240,
	}
}

// Protection selects which caches carry 2D coding and how the L1 hides
// the read-before-write.
type Protection struct {
	// L1TwoD converts every L1 data write (store retirement, line
	// fill) into a read-before-write.
	L1TwoD bool
	// L2TwoD does the same for L2 writes (writebacks, fills).
	L2TwoD bool
	// PortStealing schedules the read half of L1 read-before-writes
	// into idle port cycles instead of demanding a second slot.
	PortStealing bool
	// StealQueueDepth bounds the pending stolen reads; a full queue
	// blocks further writes (rate matching, §4).
	StealQueueDepth int
	// WriteThroughL1 models the conventional alternative the paper
	// argues against (§5.1): the L1 keeps only EDC and duplicates every
	// store into the multi-bit-tolerant L2, never holding dirty data.
	// Mutually exclusive with L1TwoD.
	WriteThroughL1 bool
	// ReplicationEntries models Zhang's replication cache (the paper's
	// related work [54]): a small fully-associative buffer holding
	// duplicates of recently-written L1 blocks. Stores allocate an
	// entry; evicted duplicates are written through to the multi-bit
	// tolerant L2. Zero disables it. Mutually exclusive with L1TwoD.
	ReplicationEntries int
	// ErrorEveryCycles injects one detected multi-bit error event per
	// period into a random protected L1: the cache blocks for the 2D
	// recovery latency (a BIST-march-scale scan, §4). Zero disables
	// injection. Used to validate the paper's claim that rare errors
	// leave performance unaffected.
	ErrorEveryCycles uint64
	// RecoveryLatencyCycles is how long a recovery blocks the struck
	// L1; zero selects a default of rows*words scan reads (~2k cycles
	// for the paper's bank, the "few hundred or thousand cycles" of §4).
	RecoveryLatencyCycles uint64
}

// Baseline returns the unprotected configuration.
func Baseline() Protection { return Protection{} }

// String names the protection configuration.
func (p Protection) String() string {
	if p.ReplicationEntries > 0 {
		return fmt.Sprintf("ReplCache-%d", p.ReplicationEntries)
	}
	if p.WriteThroughL1 {
		if p.L2TwoD {
			return "WT-L1+L2(2D)"
		}
		return "WT-L1"
	}
	switch {
	case p.L1TwoD && p.L2TwoD && p.PortStealing:
		return "L1(PS)+L2"
	case p.L1TwoD && p.L2TwoD:
		return "L1+L2"
	case p.L1TwoD && p.PortStealing:
		return "L1(PS)"
	case p.L1TwoD:
		return "L1"
	case p.L2TwoD:
		return "L2"
	default:
		return "baseline"
	}
}
