//go:build race

package twod

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = true
