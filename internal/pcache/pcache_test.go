package pcache

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func smallCache(t testing.TB, secded bool) (*Cache, *MapBacking) {
	t.Helper()
	b := NewMapBacking(64)
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64, SECDEDHorizontal: secded}, b)
	return c, b
}

func TestConfigValidation(t *testing.T) {
	b := NewMapBacking(64)
	bad := []Config{
		{Sets: 0, Ways: 2, LineBytes: 64},
		{Sets: 3, Ways: 2, LineBytes: 64},
		{Sets: 16, Ways: 0, LineBytes: 64},
		{Sets: 16, Ways: 2, LineBytes: 60},
		{Sets: 16, Ways: 2, LineBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, b); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Sets: 16, Ways: 2, LineBytes: 64}, nil); err == nil {
		t.Error("nil backing accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	c, _ := smallCache(t, false)
	if err := c.Write(0x1000, []byte("hello protected world")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0x1000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello protected world" {
		t.Fatalf("read %q", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSpanChecks(t *testing.T) {
	c, _ := smallCache(t, false)
	if _, err := c.Read(60, 8); err == nil {
		t.Fatal("line-crossing read accepted")
	}
	if err := c.Write(0, make([]byte, 65)); err == nil {
		t.Fatal("oversized write accepted")
	}
	if _, err := c.Read(0, 0); err == nil {
		t.Fatal("zero-size read accepted")
	}
}

func TestWritebackOnEviction(t *testing.T) {
	c, b := smallCache(t, false)
	// Fill set 0 with three conflicting lines (2 ways).
	stride := uint64(16 * 64)
	if err := c.Write(0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(stride, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(2*stride, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Writebacks == 0 {
		t.Fatal("no writeback on dirty eviction")
	}
	// The evicted line's data must be in the backing store.
	if b.ReadLine(0)[0] != 0xAA {
		t.Fatal("evicted data lost")
	}
	// Re-reading the evicted line refetches it correctly.
	got, err := c.Read(0, 1)
	if err != nil || got[0] != 0xAA {
		t.Fatalf("refetch: %v %v", got, err)
	}
}

func TestFlush(t *testing.T) {
	c, b := smallCache(t, false)
	for i := 0; i < 8; i++ {
		if err := c.Write(uint64(i)*64, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if b.ReadLine(uint64(i) * 64)[0] != byte(i+1) {
			t.Fatalf("line %d not flushed", i)
		}
	}
	// Second flush is a no-op (no dirty lines).
	wb := c.Stats().Writebacks
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Writebacks != wb {
		t.Fatal("clean flush wrote back")
	}
}

func TestTransparentErrorRecoveryInData(t *testing.T) {
	c, _ := smallCache(t, false)
	payload := []byte("precious data that must survive")
	if err := c.Write(0x2000, payload); err != nil {
		t.Fatal(err)
	}
	// Inject a 16x16 clustered error into the bank holding 0x2000's set.
	da, _ := c.BankArrays(c.BankOf(0))
	for r := 0; r < 16 && r < da.Rows(); r++ {
		for col := 0; col < 16; col++ {
			da.FlipBit(r, col)
		}
	}
	got, err := c.Read(0x2000, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("data corrupted: %q", got)
	}
	if c.Stats().ErrorsRecovered == 0 {
		t.Fatal("recovery not recorded")
	}
}

func TestTransparentErrorRecoveryInTags(t *testing.T) {
	c, _ := smallCache(t, true) // SECDED horizontal: inline tag repair
	if err := c.Write(0x3000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, ta := c.BankArrays(c.BankOf(0))
	ta.FlipBit(0, 0) // single-bit tag error somewhere in set 0
	got, err := c.Read(0x3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("tag corruption broke lookup: %v", got)
	}
}

func TestScrub(t *testing.T) {
	c, _ := smallCache(t, false)
	_ = c.Write(0, []byte{9})
	da, _ := c.BankArrays(c.BankOf(0))
	da.FlipBit(0, 3)
	if !c.Scrub() {
		t.Fatal("scrub failed")
	}
	got, _ := c.Read(0, 1)
	if got[0] != 9 {
		t.Fatal("scrub lost data")
	}
}

func TestRandomisedAgainstReferenceModel(t *testing.T) {
	// Property: the protected cache, under random accesses AND random
	// single-cell upsets, behaves exactly like a flat byte map.
	rng := rand.New(rand.NewSource(42))
	c, _ := smallCache(t, false)
	ref := map[uint64]byte{}
	const span = 64 * 256 // many lines, some conflicts
	for i := 0; i < 4000; i++ {
		addr := uint64(rng.Intn(span))
		switch rng.Intn(5) {
		case 0, 1:
			val := byte(rng.Intn(256))
			if err := c.Write(addr, []byte{val}); err != nil {
				t.Fatal(err)
			}
			ref[addr] = val
		case 2:
			// Soft error in the data array: at most one flip per
			// currently-clean word, so every upset stays within the
			// horizontal code's guaranteed detection. (Unrestricted
			// accumulation can build undetectable code-valid patterns,
			// which are beyond 2D coverage — the flat-map equivalence
			// asserted here only holds within coverage.)
			da, _ := c.BankArrays(rng.Intn(c.NumBanks()))
			r, col := rng.Intn(da.Rows()), rng.Intn(da.RowBits())
			w, _ := da.Layout().Locate(col)
			if _, ok := da.TryRead(r, w); ok {
				da.FlipBit(r, col)
			}
		default:
			got, err := c.Read(addr, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != ref[addr] {
				t.Fatalf("i=%d addr=%#x: got %d want %d", i, addr, got[0], ref[addr])
			}
		}
	}
	if c.Stats().ErrorsRecovered == 0 {
		t.Fatal("no recoveries happened — test not exercising errors")
	}
}

func TestMapBacking(t *testing.T) {
	b := NewMapBacking(64)
	if b.ReadLine(0)[5] != 0 {
		t.Fatal("cold line not zeroed")
	}
	d := make([]byte, 64)
	d[5] = 7
	b.WriteLine(0, d)
	d[5] = 9 // caller mutation must not affect the store
	if b.ReadLine(0)[5] != 7 {
		t.Fatal("backing aliased caller slice")
	}
}

func TestUncorrectableSurfacesAndRepairs(t *testing.T) {
	c, _ := smallCache(t, false)
	if err := c.Write(0x4000, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt far beyond coverage: a solid block in 0x4000's bank.
	da, _ := c.BankArrays(c.BankOf(0))
	for r := 0; r < 32 && r < da.Rows(); r++ {
		for col := 0; col < 200; col++ {
			da.FlipBit(r, col)
		}
	}
	for r := 0; r < da.Rows(); r++ { // plus a full column, same groups
		da.FlipBit(r, 300)
	}
	sawErr := false
	for addr := uint64(0); addr < 64*64; addr += 64 {
		if _, err := c.Read(addr, 1); err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("unexpected error %v", err)
			}
			var ue *UncorrectableError
			if !errors.As(err, &ue) || ue.Array != ArrayData {
				t.Fatalf("error not a located *UncorrectableError: %v", err)
			}
			sawErr = true
			c.Repair(addr)
		}
	}
	if !sawErr {
		t.Skip("corruption happened to stay within coverage")
	}
	if c.Stats().Uncorrectable == 0 {
		t.Fatal("uncorrectable not counted")
	}
	// After repair, the flushed value is intact (it was clean in backing).
	got, err := c.Read(0x4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("repaired read = %d", got[0])
	}
}
