package ecc

import "testing"

func TestCheckBitsForMatchesPaper(t *testing.T) {
	// Codeword sizes quoted in the paper (Fig. 1 and §2.1):
	cases := []struct{ k, t, want int }{
		{64, 1, 8},   // (72,64) SECDED
		{64, 2, 15},  // DECTED
		{64, 4, 29},  // QECPED
		{64, 8, 57},  // (121,64) OECNED
		{256, 1, 10}, // (266,256) SECDED
		{256, 8, 73}, // OECNED on 256b
	}
	for _, tc := range cases {
		if got := CheckBitsFor(tc.k, tc.t); got != tc.want {
			t.Errorf("CheckBitsFor(%d,%d) = %d, want %d", tc.k, tc.t, got, tc.want)
		}
	}
}

func TestSpecStorageOverheadFig1(t *testing.T) {
	// Fig. 1(b): EDC8 and SECDED on 64b both cost 12.5%; OECNED on 64b
	// costs 89.1%.
	edc8 := SpecEDC(64, 8)
	if edc8.StorageOverhead() != 0.125 {
		t.Errorf("EDC8 overhead = %v", edc8.StorageOverhead())
	}
	sec := SpecCorrecting("SECDED", 64, 1)
	if sec.StorageOverhead() != 0.125 {
		t.Errorf("SECDED overhead = %v", sec.StorageOverhead())
	}
	oec := SpecCorrecting("OECNED", 64, 8)
	if o := oec.StorageOverhead(); o < 0.89 || o > 0.90 {
		t.Errorf("OECNED overhead = %v, want ~0.891", o)
	}
}

func TestSpecByName(t *testing.T) {
	names := []string{"EDC4", "EDC8", "EDC16", "EDC32", "SECDED", "DECTED", "QECPED", "OECNED"}
	for _, n := range names {
		s, err := SpecByName(n, 64)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if s.DataBits != 64 || s.CheckBits <= 0 {
			t.Fatalf("%s: bad spec %+v", n, s)
		}
	}
	if _, err := SpecByName("XYZ", 64); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Paper: EDC8 latency ~ byte parity << stronger ECC; OECNED deepest.
	edc8 := SpecEDC(64, 8).SyndromeDepth()
	sec := SpecCorrecting("SECDED", 64, 1).SyndromeDepth()
	dec := SpecCorrecting("DECTED", 64, 2).SyndromeDepth()
	oec := SpecCorrecting("OECNED", 64, 8).SyndromeDepth()
	if !(edc8 <= sec && sec <= dec && dec <= oec) {
		t.Fatalf("latency ordering violated: EDC8=%d SECDED=%d DECTED=%d OECNED=%d",
			edc8, sec, dec, oec)
	}
}

func TestGateCountGrowsWithStrength(t *testing.T) {
	prev := 0
	for _, name := range []string{"SECDED", "DECTED", "QECPED", "OECNED"} {
		s, _ := SpecByName(name, 64)
		g := s.XORGateCount()
		if g <= prev {
			t.Fatalf("%s gate count %d not increasing (prev %d)", name, g, prev)
		}
		prev = g
	}
}

func TestSpecMatchesImplementations(t *testing.T) {
	// The analytical Spec and the executable codes must agree on sizes.
	if got, want := SpecCorrecting("SECDED", 64, 1).CheckBits, MustSECDED(64).CheckBits(); got != want {
		t.Errorf("SECDED spec %d != impl %d", got, want)
	}
	oec, err := NewOECNED(64)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SpecCorrecting("OECNED", 64, 8).CheckBits, oec.CheckBits(); got != want {
		t.Errorf("OECNED spec %d != impl %d", got, want)
	}
	if got, want := SpecEDC(64, 8).CheckBits, MustEDC(64, 8).CheckBits(); got != want {
		t.Errorf("EDC8 spec %d != impl %d", got, want)
	}
}
