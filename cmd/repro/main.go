// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro [-full] [-list] [experiment-id ...]
//
// With no ids, every experiment runs in paper order. -full sizes the
// simulation-backed experiments at paper scale (minutes); the default
// quick sizing finishes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"twodcache"
)

func main() {
	full := flag.Bool("full", false, "paper-scale sampling (slower)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	chart := flag.Bool("chart", false, "render numeric columns as bar charts")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range twodcache.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	opt := twodcache.QuickOptions()
	if *full {
		opt = twodcache.FullOptions()
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = twodcache.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tabs, err := twodcache.Experiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		var file strings.Builder
		for _, t := range tabs {
			fmt.Println(t.Render())
			file.WriteString(t.Render())
			file.WriteByte('\n')
			if *chart {
				if c := t.Charts(48); c != "" {
					fmt.Println(c)
				}
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(file.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
