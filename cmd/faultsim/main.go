// Command faultsim runs fault-injection campaigns against the
// protection schemes of Fig. 3 and prints a correction-coverage matrix
// per scheme over clustered error footprints.
//
// Usage:
//
//	faultsim [-trials N] [-seed S] [-sizes 1,2,4,8,16,32]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

func main() {
	trials := flag.Int("trials", 10, "injection trials per footprint")
	seed := flag.Int64("seed", 1, "random seed")
	sizesArg := flag.String("sizes", "1,2,4,8,16,32", "comma-separated cluster edge sizes")
	flag.Parse()

	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}

	oec, err := ecc.NewOECNED(64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
	schemes := []fault.Scheme{
		fault.ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: ecc.MustSECDED(64)},
		fault.ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: oec},
		fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 32,
		}},
		fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal: ecc.MustSECDED(64), VerticalGroups: 32,
		}},
	}

	rng := rand.New(rand.NewSource(*seed))
	for _, s := range schemes {
		fmt.Printf("%s (storage overhead %.1f%%)\n", s.Name(), s.StorageOverhead()*100)
		fmt.Printf("  %8s", "HxW")
		for _, w := range sizes {
			fmt.Printf(" %6d", w)
		}
		fmt.Println()
		cells := fault.CoverageMatrix(s, rng, sizes, sizes, *trials)
		i := 0
		for _, h := range sizes {
			fmt.Printf("  %8d", h)
			for range sizes {
				fmt.Printf(" %5.0f%%", cells[i].Rate()*100)
				i++
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
