package resilience

import (
	"context"
	"sync"
	"time"
)

// ScrubberConfig tunes the background sweeper.
type ScrubberConfig struct {
	// Interval is the pause between completed sweeps (default 50ms).
	Interval time.Duration
	// HighRate, in accesses/second, is the traffic level above which
	// the scrubber backs off instead of sweeping. Zero disables
	// traffic-awareness (the scrubber always sweeps on schedule).
	HighRate float64
	// PollInterval is how often a backed-off scrubber re-checks the
	// load (default Interval/5, min 1ms).
	PollInterval time.Duration
	// MaxDelay bounds how long a sweep may be deferred under sustained
	// load before it runs anyway — the catch-up guarantee (default
	// 10×Interval).
	MaxDelay time.Duration
}

func (c ScrubberConfig) withDefaults() ScrubberConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.Interval / 5
		if c.PollInterval < time.Millisecond {
			c.PollInterval = time.Millisecond
		}
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 10 * c.Interval
	}
	return c
}

// Scrubber sweeps every protected sub-array with full 2D recovery on a
// configurable interval, traffic-aware: it backs off while the access
// rate is high and catches up when the cache goes idle (cf. Kishani et
// al.'s traffic-aware ECC maintenance). Victims a sweep cannot repair
// are handed to the engine's degrade rung. Pass/backoff/victim counts
// and sweep latency are served through the engine's metrics registry,
// and every completed sweep emits a ScrubPass event.
type Scrubber struct {
	engine *Engine
	cfg    ScrubberConfig

	// accessFn, clock and sleep are injection points for tests; they
	// default to the cache's access counter and real time. bankHook,
	// when set, runs after each bank of a sweep (cancel-mid-pass tests).
	accessFn func() uint64
	clock    func() time.Time
	sleep    func(ctx context.Context, d time.Duration) bool
	bankHook func(bank int)

	// Start/Stop lifecycle for the background goroutine.
	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewScrubber builds the engine's background scrubber and attaches it
// so Report includes scrub activity. Call Run to start it.
func (e *Engine) NewScrubber(cfg ScrubberConfig) *Scrubber {
	s := &Scrubber{
		engine:   e,
		cfg:      cfg.withDefaults(),
		accessFn: e.cache.Accesses,
		clock:    e.clock,
		sleep:    realSleep,
	}
	e.mu.Lock()
	e.scrubber = s
	e.mu.Unlock()
	return s
}

func realSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Passes returns completed sweep count.
func (s *Scrubber) Passes() uint64 { return s.engine.scrubPasses.Load() }

// Backoffs returns how many times a sweep was deferred under load.
func (s *Scrubber) Backoffs() uint64 { return s.engine.scrubBackoffs.Load() }

// Victims returns how many unrepairable ways sweeps have retired.
func (s *Scrubber) Victims() uint64 { return s.engine.scrubVictims.Load() }

// Sweep runs one full scrubbing pass over every bank, degrading any
// ways whose damage exceeds 2D coverage. It reports whether every bank
// checked (or was repaired) clean without needing degradation.
func (s *Scrubber) Sweep() bool {
	clean, _ := s.sweepCtx(context.Background())
	return clean
}

// sweepCtx is Sweep with mid-pass cancellation: ctx is checked between
// banks, and an interrupted sweep reports completed=false WITHOUT
// counting a pass, observing a latency, or emitting a ScrubPass event
// — a partial sweep must never masquerade as scrub coverage in the
// stats an operator uses to judge whether scrubbing keeps up.
// Individual banks already swept stay repaired (the work is real; only
// the accounting of a full pass is withheld).
func (s *Scrubber) sweepCtx(ctx context.Context) (clean, completed bool) {
	c := s.engine.cache
	start := s.clock()
	clean = true
	retired := 0
	for i := 0; i < c.NumBanks(); i++ {
		if ctx.Err() != nil {
			return clean, false
		}
		ok, n := s.SweepBank(i)
		if !ok {
			clean = false
			retired += n
		}
		if s.bankHook != nil {
			s.bankHook(i)
		}
	}
	d := s.clock().Sub(start)
	s.engine.scrubPasses.Inc()
	s.engine.scrubLatency.Observe(d)
	s.engine.snk().ScrubPass(c.NumBanks(), clean, retired, d)
	return clean, true
}

// SweepBank scrubs one bank: full 2D recovery, then graceful
// degradation of every way the recovery could not repair. It reports
// whether the bank checked (or was repaired) clean, and how many ways
// were retired. The deterministic replay harness drives scrubbing
// through this entry point so a replayed scrub event performs exactly
// the sweep a live scrubber would.
func (s *Scrubber) SweepBank(i int) (clean bool, retired int) {
	ok, victims := s.engine.cache.ScrubBank(i)
	if ok {
		return true, 0
	}
	for _, v := range victims {
		s.engine.scrubVictims.Inc()
		s.engine.Degrade(v.Set, v.Way)
	}
	return false, len(victims)
}

// Run sweeps until ctx is cancelled, returning ctx.Err(). Between
// sweeps it sleeps Interval; when the observed access rate exceeds
// HighRate it defers the sweep in PollInterval steps, up to MaxDelay,
// then sweeps regardless (catch-up).
func (s *Scrubber) Run(ctx context.Context) error {
	lastAcc := s.accessFn()
	lastT := s.clock()
	for {
		if !s.sleep(ctx, s.cfg.Interval) {
			return ctx.Err()
		}
		deferred := time.Duration(0)
		for s.cfg.HighRate > 0 {
			now := s.clock()
			acc := s.accessFn()
			dt := now.Sub(lastT).Seconds()
			if dt <= 0 {
				dt = s.cfg.Interval.Seconds()
			}
			rate := float64(acc-lastAcc) / dt
			lastAcc, lastT = acc, now
			if rate <= s.cfg.HighRate || deferred >= s.cfg.MaxDelay {
				break
			}
			s.engine.scrubBackoffs.Inc()
			if !s.sleep(ctx, s.cfg.PollInterval) {
				return ctx.Err()
			}
			deferred += s.cfg.PollInterval
		}
		if _, completed := s.sweepCtx(ctx); !completed {
			return ctx.Err()
		}
	}
}

// Start launches Run in a background goroutine; idempotent until Stop.
// Prefer Start/Stop over `go s.Run(ctx)` at shutdown boundaries: Stop
// joins the goroutine, so no sweep is still running (and no pass can
// be half-counted) after it returns.
func (s *Scrubber) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.done = make(chan struct{})
	done := s.done
	go func() {
		defer close(done)
		_ = s.Run(ctx)
	}()
}

// Stop cancels the background goroutine and waits for it to exit — any
// in-progress sweep aborts at the next bank boundary and is not
// counted as a completed pass.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}
