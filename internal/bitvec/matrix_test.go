package bitvec

import (
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4, 10)
	if m.Rows() != 4 || m.Cols() != 10 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(2, 7, true)
	if !m.Bit(2, 7) {
		t.Fatal("Set/Bit failed")
	}
	m.Flip(2, 7)
	if m.Bit(2, 7) {
		t.Fatal("Flip failed")
	}
	if m.PopCount() != 0 {
		t.Fatal("PopCount after clear")
	}
}

func TestMatrixRowColExtraction(t *testing.T) {
	m := NewMatrix(8, 8)
	// Set the main diagonal.
	for i := 0; i < 8; i++ {
		m.Set(i, i, true)
	}
	for i := 0; i < 8; i++ {
		row := m.Row(i)
		if row.PopCount() != 1 || !row.Bit(i) {
			t.Fatalf("row %d = %s", i, row)
		}
		col := m.Col(i)
		if col.PopCount() != 1 || !col.Bit(i) {
			t.Fatalf("col %d = %s", i, col)
		}
	}
}

func TestMatrixRowAliasesStorage(t *testing.T) {
	m := NewMatrix(2, 4)
	m.Row(0).Set(3, true)
	if !m.Bit(0, 3) {
		t.Fatal("Row() must alias backing storage")
	}
}

func TestMatrixXorRowRecoversRow(t *testing.T) {
	// The core 2D-recovery identity: XOR of all rows sharing a parity
	// group equals the missing row.
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(16, 64)
	for r := 0; r < 16; r++ {
		m.SetRow(r, randomVec(rng, 64))
	}
	parity := New(64)
	for r := 0; r < 16; r++ {
		parity.Xor(m.Row(r))
	}
	// Reconstruct row 5 from parity and all other rows.
	rec := parity.Clone()
	for r := 0; r < 16; r++ {
		if r != 5 {
			rec.Xor(m.Row(r))
		}
	}
	if !rec.Equal(m.Row(5)) {
		t.Fatal("XOR reconstruction failed")
	}
}

func TestMatrixCloneIndependence(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(1, 1, true)
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatal("clone not equal")
	}
	c.Flip(0, 0)
	if c.Equal(m) {
		t.Fatal("clone aliased original")
	}
	if m.Bit(0, 0) {
		t.Fatal("mutating clone changed original")
	}
}

func TestMatrixDiff(t *testing.T) {
	a := NewMatrix(4, 4)
	b := a.Clone()
	b.Set(1, 2, true)
	b.Set(3, 0, true)
	d := a.Diff(b)
	if len(d) != 2 {
		t.Fatalf("diff len = %d", len(d))
	}
	if d[0] != [2]int{1, 2} || d[1] != [2]int{3, 0} {
		t.Fatalf("diff = %v", d)
	}
	if len(a.Diff(a)) != 0 {
		t.Fatal("self diff nonempty")
	}
}

func TestMatrixZero(t *testing.T) {
	m := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		m.Set(i, 4-i, true)
	}
	m.Zero()
	if m.PopCount() != 0 {
		t.Fatal("Zero left bits set")
	}
}
