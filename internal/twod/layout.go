// Package twod implements the paper's primary contribution: a memory
// array protected by two-dimensional error coding. A light-weight
// horizontal per-word code (interleaved-parity EDCn, or Hsiao SECDED
// for in-line single-bit correction and yield enhancement) is checked
// on every read, while interleaved vertical parity rows — maintained in
// the background via read-before-write delta updates — are consulted
// only by the rare recovery process to reconstruct large clustered
// errors, row failures, and column failures.
package twod

import "fmt"

// Layout describes the physical geometry of one protected sub-array:
// how many logical words share a physical row and how their codeword
// bits are interleaved along the wordline.
//
// With d-way physical bit interleaving, physical column c of a row
// holds bit c/d of word c%d, so a contiguous physical burst of up to
// d*n bits touches each word's EDCn parity groups at most once per
// group (paper §2.2, §3).
type Layout struct {
	// Rows is the number of data rows in the array (excluding vertical
	// parity rows).
	Rows int
	// WordsPerRow is the physical interleave degree d.
	WordsPerRow int
	// CodewordBits is the per-word codeword size (data + check bits).
	CodewordBits int
}

// Validate checks the geometry.
func (l Layout) Validate() error {
	if l.Rows <= 0 || l.WordsPerRow <= 0 || l.CodewordBits <= 0 {
		return fmt.Errorf("twod: invalid layout %+v", l)
	}
	return nil
}

// RowBits returns the physical row width in bits.
func (l Layout) RowBits() int { return l.WordsPerRow * l.CodewordBits }

// PhysColumn maps (word index within row, bit index within codeword) to
// a physical column.
func (l Layout) PhysColumn(word, bit int) int {
	if word < 0 || word >= l.WordsPerRow {
		panic(fmt.Sprintf("twod: word %d out of range [0,%d)", word, l.WordsPerRow))
	}
	if bit < 0 || bit >= l.CodewordBits {
		panic(fmt.Sprintf("twod: bit %d out of range [0,%d)", bit, l.CodewordBits))
	}
	return bit*l.WordsPerRow + word
}

// Locate maps a physical column back to (word index, codeword bit).
func (l Layout) Locate(col int) (word, bit int) {
	if col < 0 || col >= l.RowBits() {
		panic(fmt.Sprintf("twod: column %d out of range [0,%d)", col, l.RowBits()))
	}
	return col % l.WordsPerRow, col / l.WordsPerRow
}

// Words returns the total number of addressable words in the array.
func (l Layout) Words() int { return l.Rows * l.WordsPerRow }
