package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceRoundTrip: Encode∘Parse is the identity on generated storm
// traces, and re-encoding parses back to the same bytes (the committed
// regression traces rely on the format being stable).
func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(5, HardStormParams())
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Cfg != tr.Cfg || back.ExpectSilent != tr.ExpectSilent {
		t.Fatalf("header changed: %+v -> %+v", tr.Cfg, back.Cfg)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("event count %d -> %d", len(tr.Events), len(back.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, tr.Events[i], back.Events[i])
		}
	}
	var buf2 bytes.Buffer
	if err := back.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding is not byte-stable")
	}
}

// TestReplayDeterminism: two replays of one trace agree bit for bit —
// same taxonomy, same flip gating, same final state digest.
func TestReplayDeterminism(t *testing.T) {
	tr := Generate(11, HardStormParams())
	first, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if first.StateHash != second.StateHash {
		t.Fatalf("state hash differs across replays: %#x vs %#x", first.StateHash, second.StateHash)
	}
	if first.Accounted != second.Accounted || first.Reported != second.Reported ||
		first.Silent != second.Silent || first.FlipsApplied != second.FlipsApplied {
		t.Fatalf("taxonomy differs across replays: %+v vs %+v", first, second)
	}
}

// TestCommittedTraces replays every committed trace in testdata. The
// shrunk regression traces (each a pre-fix silent-corruption repro)
// must now replay with zero silent corruptions; harness-validation
// traces marked "expect silent" must still be classified silent.
// This is the permanent regression gate for the hard-storm bug — see
// also scripts/check.sh, which runs it in tier-1.
func TestCommittedTraces(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed traces found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			tr, err := ParseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			if tr.ExpectSilent {
				if res.Silent == 0 {
					t.Fatalf("harness-validation trace not classified silent: %+v", res)
				}
				return
			}
			if res.Silent != 0 {
				t.Fatalf("silent corruption replaying %s: %v", path, res.SilentDetails)
			}
			again, err := Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			if again.StateHash != res.StateHash {
				t.Fatalf("replay of %s not deterministic: %#x vs %#x", path, res.StateHash, again.StateHash)
			}
		})
	}
}

// TestShrink: ddmin reduces a storm trace to the minimal event set for
// a synthetic predicate, and the result still satisfies it.
func TestShrink(t *testing.T) {
	tr := Generate(3, HardStormParams())
	// Predicate: the trace still contains at least one write and at
	// least one scrub — minimal satisfying trace has exactly 2 events.
	fails := func(c Trace) bool {
		var w, s bool
		for _, e := range c.Events {
			switch e.Op {
			case OpWrite:
				w = true
			case OpScrub:
				s = true
			}
		}
		return w && s
	}
	got := Shrink(tr, fails)
	if !fails(got) {
		t.Fatal("shrunk trace no longer satisfies the predicate")
	}
	if len(got.Events) != 2 {
		t.Fatalf("shrunk to %d events, want 2", len(got.Events))
	}
}

// TestOracleSelfValidation: a trace that corrupts the backing store
// behind the cache's back (OpPoke) MUST be classified silent — if the
// oracle ever stops seeing it, the "zero silent corruptions" results
// everywhere else are meaningless.
func TestOracleSelfValidation(t *testing.T) {
	cfg := Config{
		Sets: 4, Ways: 2, LineBytes: 64, Banks: 1,
		VerticalGroups: 4, SpareRows: 2, MaxRetries: 1,
	}
	tr := Trace{Cfg: cfg, ExpectSilent: true}
	// Write line 0, evict it via two conflicting fills (set 0 holds
	// lines 0, 4, 8 with 2 ways), poke the written-back byte in the
	// backing store, then read it back through a fresh fill.
	tr.Events = []Event{
		{Op: OpWrite, Addr: 0x00, Val: 0xe5},
		{Op: OpRead, Addr: 4 * 64},
		{Op: OpRead, Addr: 8 * 64},
		{Op: OpPoke, Addr: 0x00, Val: 0x5e},
		{Op: OpRead, Addr: 0x00},
	}
	res, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent == 0 {
		t.Fatalf("poked backing byte not classified silent: %+v", res)
	}
	if res.Accounted != 0 || res.Reported != 0 {
		t.Fatalf("poke misclassified: %+v", res)
	}
}

// TestGenerateDeterminism: the generator depends on nothing but
// (seed, params).
func TestGenerateDeterminism(t *testing.T) {
	a := Generate(9, HardStormParams())
	b := Generate(9, HardStormParams())
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestParseRejects: malformed traces fail loudly, never half-parse.
func TestParseRejects(t *testing.T) {
	cases := []string{
		"",                      // no header
		"twodtrace v2\nconfig ", // wrong version
		"twodtrace v1\n",        // missing config
		"twodtrace v1\nconfig sets=64 ways=4 line=64 banks=1 vgroups=32 secded=0 spares=8 retries=1\nz 1 2\n",
		"twodtrace v1\nconfig sets=64 ways=4 line=64 banks=1 vgroups=32 secded=0 spares=8 retries=1\nr 0\n",
		"twodtrace v1\nconfig sets=64 ways=4 line=64 banks=1 vgroups=32 secded=0 spares=8 retries=1\nf 0 q 1 2\n",
		"twodtrace v1\nconfig sets=64 bogus=1\nr 0 0\n",
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: malformed trace parsed cleanly", i)
		}
	}
}

// TestCommittedTraceFilesParse keeps the testdata headers honest: any
// comment lines must round-trip away (comments are documentation, not
// state).
func TestCommittedTraceFilesParse(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.trace"))
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(bytes.NewReader(raw)); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
