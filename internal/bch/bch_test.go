package bch

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
)

func mustCode(t *testing.T, k, tcap int) *Code {
	t.Helper()
	c, err := New(k, tcap)
	if err != nil {
		t.Fatalf("New(%d,%d): %v", k, tcap, err)
	}
	return c
}

func TestCodeSizes(t *testing.T) {
	// Check-bit counts should match the paper's Hamming-distance
	// estimates: (72,64) SECDED, (79,64) DECTED, (93,64) QECPED,
	// (121,64) OECNED, (266,256) SECDED.
	cases := []struct {
		k, t       int
		wantParity int
	}{
		{64, 1, 8},
		{64, 2, 15},
		{64, 4, 29},
		{64, 8, 57},
		{256, 1, 10},
		{256, 2, 19},
	}
	for _, tc := range cases {
		c := mustCode(t, tc.k, tc.t)
		if c.ParityBits() != tc.wantParity {
			t.Errorf("k=%d t=%d: parity=%d want %d", tc.k, tc.t, c.ParityBits(), tc.wantParity)
		}
		if c.N() != tc.k+tc.wantParity {
			t.Errorf("k=%d t=%d: n=%d", tc.k, tc.t, c.N())
		}
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	c := mustCode(t, 64, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		data := randVec(rng, 64)
		cw := c.Encode(data)
		if !c.Data(cw).Equal(data) {
			t.Fatal("data bits not recoverable from codeword")
		}
	}
}

func TestCleanDecode(t *testing.T) {
	for _, tc := range []struct{ k, t int }{{64, 1}, {64, 2}, {64, 4}, {64, 8}, {256, 2}} {
		c := mustCode(t, tc.k, tc.t)
		rng := rand.New(rand.NewSource(int64(tc.k + tc.t)))
		for i := 0; i < 10; i++ {
			cw := c.Encode(randVec(rng, tc.k))
			res, n := c.Decode(cw)
			if res != Clean || n != 0 {
				t.Fatalf("k=%d t=%d: clean codeword decoded as %v/%d", tc.k, tc.t, res, n)
			}
		}
	}
}

func TestCorrectUpToT(t *testing.T) {
	for _, tc := range []struct{ k, t int }{{64, 1}, {64, 2}, {64, 4}, {64, 8}, {256, 4}} {
		c := mustCode(t, tc.k, tc.t)
		rng := rand.New(rand.NewSource(int64(100*tc.k + tc.t)))
		for trial := 0; trial < 25; trial++ {
			data := randVec(rng, tc.k)
			cw := c.Encode(data)
			nerr := 1 + rng.Intn(tc.t)
			flipped := flipRandom(rng, cw, nerr)
			res, n := c.Decode(cw)
			if res != Corrected {
				t.Fatalf("k=%d t=%d nerr=%d: result=%v", tc.k, tc.t, nerr, res)
			}
			if n != len(flipped) {
				t.Fatalf("k=%d t=%d: corrected %d bits, injected %d", tc.k, tc.t, n, len(flipped))
			}
			if !c.Data(cw).Equal(data) {
				t.Fatalf("k=%d t=%d: data not restored", tc.k, tc.t)
			}
		}
	}
}

func TestDetectTPlusOne(t *testing.T) {
	// Extended codes must *detect* exactly t+1 errors, never miscorrect.
	for _, tc := range []struct{ k, t int }{{64, 1}, {64, 2}, {64, 4}, {64, 8}} {
		c := mustCode(t, tc.k, tc.t)
		rng := rand.New(rand.NewSource(int64(7*tc.k + tc.t)))
		for trial := 0; trial < 25; trial++ {
			data := randVec(rng, tc.k)
			cw := c.Encode(data)
			flipRandom(rng, cw, tc.t+1)
			res, _ := c.Decode(cw)
			if res != Detected {
				t.Fatalf("k=%d t=%d: %d errors gave %v, want detected", tc.k, tc.t, tc.t+1, res)
			}
		}
	}
}

func TestParityBitError(t *testing.T) {
	c := mustCode(t, 64, 2)
	data := randVec(rand.New(rand.NewSource(5)), 64)
	cw := c.Encode(data)
	cw.Flip(c.N() - 1) // the extended parity bit
	res, n := c.Decode(cw)
	if res != Corrected || n != 1 {
		t.Fatalf("parity-bit error: %v/%d", res, n)
	}
	if !c.Data(cw).Equal(data) {
		t.Fatal("data corrupted")
	}
}

func TestPlainCode(t *testing.T) {
	c, err := NewPlain(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.ParityBits() != 14 {
		t.Fatalf("plain DEC parity = %d, want 14", c.ParityBits())
	}
	rng := rand.New(rand.NewSource(9))
	data := randVec(rng, 64)
	cw := c.Encode(data)
	flipRandom(rng, cw, 2)
	if res, _ := c.Decode(cw); res != Corrected {
		t.Fatalf("plain decode = %v", res)
	}
	if !c.Data(cw).Equal(data) {
		t.Fatal("plain data not restored")
	}
}

func TestBadParameters(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestBurstWithinT(t *testing.T) {
	// A contiguous burst of t flips is just a weight-t error pattern.
	c := mustCode(t, 64, 8)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		data := randVec(rng, 64)
		cw := c.Encode(data)
		start := rng.Intn(c.N() - 8)
		for i := 0; i < 8; i++ {
			cw.Flip(start + i)
		}
		res, n := c.Decode(cw)
		if res != Corrected || n != 8 {
			t.Fatalf("burst decode = %v/%d", res, n)
		}
		if !c.Data(cw).Equal(data) {
			t.Fatal("burst data not restored")
		}
	}
}

func TestDecodeDoesNotMutateOnDetect(t *testing.T) {
	c := mustCode(t, 64, 2)
	rng := rand.New(rand.NewSource(13))
	data := randVec(rng, 64)
	cw := c.Encode(data)
	flipRandom(rng, cw, 3) // t+1 => detected
	before := cw.Clone()
	res, _ := c.Decode(cw)
	if res != Detected {
		t.Fatalf("res=%v", res)
	}
	if !cw.Equal(before) {
		t.Fatal("Detected decode mutated codeword")
	}
}

func randVec(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// flipRandom flips exactly n distinct random bits of v and returns their
// positions.
func flipRandom(rng *rand.Rand, v *bitvec.Vector, n int) []int {
	perm := rng.Perm(v.Len())[:n]
	for _, p := range perm {
		v.Flip(p)
	}
	return perm
}
