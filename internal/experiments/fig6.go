package experiments

import (
	"fmt"

	"twodcache/internal/sim"
	"twodcache/internal/workload"
)

// Fig6 reproduces Fig. 6 for one system: cache accesses per 100 cycles
// at the L1 data caches (aggregated over cores) and the shared L2,
// broken into the paper's classes, under full 2D protection with port
// stealing.
func Fig6(cfg sim.SystemConfig, opt Options) []Table {
	prot := sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true}
	l1t := Table{
		ID:     "fig6-l1-" + cfg.Name,
		Title:  fmt.Sprintf("Fig. 6: %s L1 data cache accesses / 100 cycles", cfg.Name),
		Header: []string{"workload", "read:inst", "read:data", "write", "fill/evict", "extra read (2D)"},
	}
	l2t := Table{
		ID:     "fig6-l2-" + cfg.Name,
		Title:  fmt.Sprintf("Fig. 6: %s L2 cache accesses / 100 cycles", cfg.Name),
		Header: []string{"workload", "read:inst", "read:data", "write", "fill/evict", "extra read (2D)"},
	}
	for _, prof := range workload.Profiles() {
		l1, l2, err := sim.AccessBreakdown(cfg, prot, prof, opt.Seed, opt.Warmup, opt.Measure)
		if err != nil {
			panic(fmt.Sprintf("fig6 %s: %v", prof.Name, err))
		}
		l1t.Rows = append(l1t.Rows, []string{prof.Name, f1(l1[0]), f1(l1[1]), f1(l1[2]), f1(l1[3]), f1(l1[4])})
		l2t.Rows = append(l2t.Rows, []string{prof.Name, f1(l2[0]), f1(l2[1]), f1(l2[2]), f1(l2[3]), f1(l2[4])})
	}
	return []Table{l1t, l2t}
}
