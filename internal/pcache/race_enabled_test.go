//go:build race

package pcache

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = true
