package pcache

import (
	"encoding/binary"
	"testing"

	"twodcache/internal/obs"
)

// TestHitPathAllocFree pins the cache hit path to zero heap
// allocations: once a line is resident and clean, ReadInto (fast path
// under the shared bank lock) and Write (read-modify-write under the
// exclusive lock) must not allocate. This holds for both the EDC
// detection-only and the SECDED correcting configurations.
func TestHitPathAllocFree(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately drops items under the race detector,
		// so the pooled TryRead fast path allocates by design there.
		// The non-race tier-1 run enforces the zero-alloc contract.
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, secded := range []bool{false, true} {
		name := "EDC8"
		if secded {
			name = "SECDED"
		}
		t.Run(name, func(t *testing.T) {
			c := MustNew(Config{
				Sets: 64, Ways: 4, LineBytes: 64, Banks: 4,
				SECDEDHorizontal: secded,
			}, NewMapBacking(64))
			// The zero-alloc contract must survive full instrumentation:
			// a registered registry and an installed (no-op) event sink.
			reg := obs.NewRegistry()
			c.RegisterMetrics(reg)
			c.SetEventSink(obs.NopSink{})
			const addr = 0x1040
			seed := make([]byte, 64)
			for i := range seed {
				seed[i] = byte(i * 7)
			}
			if err := c.Write(addr&^63, seed); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, 16)
			if got := testing.AllocsPerRun(200, func() {
				if err := c.ReadInto(addr, dst); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("ReadInto (clean hit) allocates %.1f/op", got)
			}
			src := make([]byte, 8)
			var x uint64
			if got := testing.AllocsPerRun(200, func() {
				x++
				binary.LittleEndian.PutUint64(src, x)
				if err := c.Write(addr, src); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("Write (hit) allocates %.1f/op", got)
			}
			// The data must have survived the alloc-counted traffic.
			if err := c.ReadInto(addr, dst[:8]); err != nil {
				t.Fatal(err)
			}
			if got := binary.LittleEndian.Uint64(dst[:8]); got != x {
				t.Fatalf("readback %#x != last write %#x", got, x)
			}
		})
	}
}
