#!/bin/sh
# test_soak_exit.sh — the exit-code contract of cmd/soak.
#
# A soak run that detects silent corruption MUST exit non-zero, in
# every mode: a live run, a live run interrupted by SIGINT mid-failure
# (the drain still reports and fails), and a deterministic -replay of a
# trace that goes silent. Healthy runs and expect-silent
# self-validation traces exit 0. CI treats a zero exit from a corrupted
# run as the worst possible outcome — this script pins the contract.
set -u
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/soak"
go build -o "$bin" ./cmd/soak || exit 1

fail() {
    echo "test_soak_exit: FAIL: $*" >&2
    exit 1
}

# 1. Replay of a committed regression trace replays clean -> exit 0.
"$bin" -replay internal/replay/testdata/tornfill-shrunk.trace >/dev/null \
    || fail "clean replay exited $?"

# 2. The self-validation trace declares "expect silent" and must go
#    silent -> exit 0.
"$bin" -replay internal/replay/testdata/selftest-silent.trace >/dev/null \
    || fail "expect-silent replay exited $?"

# 3. The same trace with the declaration stripped: the silent
#    classification now counts as a failure -> exit 1.
grep -v '^expect silent$' internal/replay/testdata/selftest-silent.trace >"$tmp/silent.trace"
"$bin" -replay "$tmp/silent.trace" >/dev/null 2>&1
st=$?
[ "$st" -eq 1 ] || fail "silent replay exited $st (want 1)"

# 4. Live failing run: the backing store is corrupted behind the
#    cache's back (storm slowed so no loss epoch ever moves) -> exit 1
#    with the FAIL banner. -ways 2 oversubscribes the cache so evicted
#    lines refill from the poisoned backing.
out=$("$bin" -duration 1s -ways 2 -selftest-corrupt-backing -fault-interval 10s -stats-interval 0 2>&1)
st=$?
[ "$st" -eq 1 ] || fail "live failing run exited $st (want 1)"
case "$out" in
*"FAIL — silent corruption detected"*) ;;
*) fail "live failing run printed no FAIL banner" ;;
esac

# 5. SIGINT during a failing run: workers drain, the report prints, and
#    the exit code still says failure.
"$bin" -duration 60s -ways 2 -selftest-corrupt-backing -fault-interval 10s -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 1 ] || fail "interrupted failing run exited $st (want 1)"

# 6. SIGINT during a healthy run drains and exits 0.
"$bin" -duration 60s -banks 1 -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 0 ] || fail "interrupted healthy run exited $st (want 0)"

# 7. SLO violation is its OWN exit code (3), distinct from corruption's
#    1: an unmeetable 1ns p99 budget means every read lands over budget,
#    the data is still fine, and the run must say "too slow", not "lied
#    about data".
out=$("$bin" -duration 1s -p99-budget 1ns -stats-interval 0 2>&1)
st=$?
[ "$st" -eq 3 ] || fail "SLO-violating run exited $st (want 3)"
case "$out" in
*"FAIL — p99 read latency over budget"*) ;;
*) fail "SLO-violating run printed no SLO FAIL banner" ;;
esac

# 8. A generous budget passes: SLO mode itself must not break a healthy
#    run's zero exit.
"$bin" -duration 1s -p99-budget 50ms -stats-interval 0 >/dev/null 2>&1 \
    || fail "healthy SLO run exited $?"

# 9. Sharded hard storm: four independent shards under an aggressive
#    fault rate still finish with zero silent corruptions -> exit 0.
"$bin" -shards 4 -duration 2s -fault-interval 100us -stats-interval 0 >/dev/null 2>&1 \
    || fail "4-shard hard-storm run exited $?"

# 10. Recording is a single-engine determinism contract: -record with
#     -shards >1 must be rejected up front -> exit 2.
"$bin" -shards 4 -record /dev/null -duration 1s >/dev/null 2>&1
st=$?
[ "$st" -eq 2 ] || fail "sharded -record exited $st (want 2)"

# 11. -http is part of the run's lifecycle: a healthy run serving
#     metrics still drains to exit 0 on SIGINT (the owned http server
#     shuts down with the run instead of leaking an accept loop).
"$bin" -duration 60s -http 127.0.0.1:0 -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 0 ] || fail "interrupted -http run exited $st (want 0)"

# 12. A bad -http address (port already held) must fail the run at
#     startup with exit 2 — not soak for the full duration silently
#     serving no metrics.
"$bin" -duration 60s -http 127.0.0.1:0 -stats-interval 0 >"$tmp/http.out" 2>&1 &
pid=$!
sleep 1
addr=$(sed -n 's/^soak: serving .* on \(.*\)$/\1/p' "$tmp/http.out")
[ -n "$addr" ] || { kill -INT "$pid"; wait "$pid"; fail "-http run never printed its bound address"; }
"$bin" -duration 60s -http "$addr" -stats-interval 0 >/dev/null 2>&1
st=$?
kill -INT "$pid"
wait "$pid"
[ "$st" -eq 2 ] || fail "port-in-use -http run exited $st (want 2)"

echo "test_soak_exit: OK"
