#!/bin/sh
# test_soak_exit.sh — the exit-code contract of cmd/soak.
#
# A soak run that detects silent corruption MUST exit non-zero, in
# every mode: a live run, a live run interrupted by SIGINT mid-failure
# (the drain still reports and fails), and a deterministic -replay of a
# trace that goes silent. Healthy runs and expect-silent
# self-validation traces exit 0. CI treats a zero exit from a corrupted
# run as the worst possible outcome — this script pins the contract.
set -u
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/soak"
go build -o "$bin" ./cmd/soak || exit 1

fail() {
    echo "test_soak_exit: FAIL: $*" >&2
    exit 1
}

# 1. Replay of a committed regression trace replays clean -> exit 0.
"$bin" -replay internal/replay/testdata/tornfill-shrunk.trace >/dev/null \
    || fail "clean replay exited $?"

# 2. The self-validation trace declares "expect silent" and must go
#    silent -> exit 0.
"$bin" -replay internal/replay/testdata/selftest-silent.trace >/dev/null \
    || fail "expect-silent replay exited $?"

# 3. The same trace with the declaration stripped: the silent
#    classification now counts as a failure -> exit 1.
grep -v '^expect silent$' internal/replay/testdata/selftest-silent.trace >"$tmp/silent.trace"
"$bin" -replay "$tmp/silent.trace" >/dev/null 2>&1
st=$?
[ "$st" -eq 1 ] || fail "silent replay exited $st (want 1)"

# 4. Live failing run: the backing store is corrupted behind the
#    cache's back (storm slowed so no loss epoch ever moves) -> exit 1
#    with the FAIL banner. -ways 2 oversubscribes the cache so evicted
#    lines refill from the poisoned backing.
out=$("$bin" -duration 1s -ways 2 -selftest-corrupt-backing -fault-interval 10s -stats-interval 0 2>&1)
st=$?
[ "$st" -eq 1 ] || fail "live failing run exited $st (want 1)"
case "$out" in
*"FAIL — silent corruption detected"*) ;;
*) fail "live failing run printed no FAIL banner" ;;
esac

# 5. SIGINT during a failing run: workers drain, the report prints, and
#    the exit code still says failure.
"$bin" -duration 60s -ways 2 -selftest-corrupt-backing -fault-interval 10s -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 1 ] || fail "interrupted failing run exited $st (want 1)"

# 6. SIGINT during a healthy run drains and exits 0.
"$bin" -duration 60s -banks 1 -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 0 ] || fail "interrupted healthy run exited $st (want 0)"

# 7. SLO violation is its OWN exit code (3), distinct from corruption's
#    1: an unmeetable 1ns p99 budget means every read lands over budget,
#    the data is still fine, and the run must say "too slow", not "lied
#    about data".
out=$("$bin" -duration 1s -p99-budget 1ns -stats-interval 0 2>&1)
st=$?
[ "$st" -eq 3 ] || fail "SLO-violating run exited $st (want 3)"
case "$out" in
*"FAIL — p99 read latency over budget"*) ;;
*) fail "SLO-violating run printed no SLO FAIL banner" ;;
esac

# 8. A generous budget passes: SLO mode itself must not break a healthy
#    run's zero exit.
"$bin" -duration 1s -p99-budget 50ms -stats-interval 0 >/dev/null 2>&1 \
    || fail "healthy SLO run exited $?"

# 9. Sharded hard storm: four independent shards under an aggressive
#    fault rate still finish with zero silent corruptions -> exit 0.
"$bin" -shards 4 -duration 2s -fault-interval 100us -stats-interval 0 >/dev/null 2>&1 \
    || fail "4-shard hard-storm run exited $?"

# 10. Recording is a single-engine determinism contract: -record with
#     -shards >1 must be rejected up front -> exit 2.
"$bin" -shards 4 -record /dev/null -duration 1s >/dev/null 2>&1
st=$?
[ "$st" -eq 2 ] || fail "sharded -record exited $st (want 2)"

# 11. -http is part of the run's lifecycle: a healthy run serving
#     metrics still drains to exit 0 on SIGINT (the owned http server
#     shuts down with the run instead of leaking an accept loop).
"$bin" -duration 60s -http 127.0.0.1:0 -stats-interval 0 >/dev/null 2>&1 &
pid=$!
sleep 2
kill -INT "$pid"
wait "$pid"
st=$?
[ "$st" -eq 0 ] || fail "interrupted -http run exited $st (want 0)"

# 12. A bad -http address (port already held) must fail the run at
#     startup with exit 2 — not soak for the full duration silently
#     serving no metrics.
"$bin" -duration 60s -http 127.0.0.1:0 -stats-interval 0 >"$tmp/http.out" 2>&1 &
pid=$!
sleep 1
addr=$(sed -n 's/^soak: serving .* on \(.*\)$/\1/p' "$tmp/http.out")
[ -n "$addr" ] || { kill -INT "$pid"; wait "$pid"; fail "-http run never printed its bound address"; }
"$bin" -duration 60s -http "$addr" -stats-interval 0 >/dev/null 2>&1
st=$?
kill -INT "$pid"
wait "$pid"
[ "$st" -eq 2 ] || fail "port-in-use -http run exited $st (want 2)"

# 13. Replicated cluster drill: three cachenetd replicas behind
#     deterministic chaos proxies, a closed-loop cacheload driving them,
#     and one replica killed with SIGKILL mid-run then restarted on the
#     same address with an empty store. The freshness machinery must
#     keep every read correct: exit 0, zero silent corruption.
netd="$tmp/cachenetd"
load="$tmp/cacheload"
go build -o "$netd" ./cmd/cachenetd || exit 1
go build -o "$load" ./cmd/cacheload || exit 1

start_netd() { # $1=outfile $2=addr $3=seed
    "$netd" -addr "$2" -seed "$3" -chaos-seed "$3" \
        -chaos-delay-prob 0.05 -chaos-reset-prob 0.002 -chaos-tear-prob 0.002 \
        >"$1" 2>&1 &
}
netd_addr() { # $1=outfile — the client-facing (chaos proxy) address
    for _ in $(seq 1 50); do
        a=$(sed -n 's/^cachenetd: chaos proxy on \([^ ]*\) .*$/\1/p' "$1")
        [ -n "$a" ] && { echo "$a"; return 0; }
        sleep 0.1
    done
    return 1
}

start_netd "$tmp/n1.out" 127.0.0.1:0 101; pid1=$!
start_netd "$tmp/n2.out" 127.0.0.1:0 102; pid2=$!
start_netd "$tmp/n3.out" 127.0.0.1:0 103; pid3=$!
a1=$(netd_addr "$tmp/n1.out") || fail "replica 1 never printed its address"
a2=$(netd_addr "$tmp/n2.out") || fail "replica 2 never printed its address"
a3=$(netd_addr "$tmp/n3.out") || fail "replica 3 never printed its address"

"$load" -endpoints "$a1,$a2,$a3" -duration 5s -seed 7 -lines 512 >"$tmp/load.out" 2>&1 &
loadpid=$!
sleep 1.5
kill -KILL "$pid2" 2>/dev/null
wait "$pid2" 2>/dev/null
sleep 1
start_netd "$tmp/n2b.out" "$a2" 102; pid2=$!
wait "$loadpid"
st=$?
kill -INT "$pid1" "$pid2" "$pid3" 2>/dev/null
wait "$pid1" "$pid2" "$pid3" 2>/dev/null
[ "$st" -eq 0 ] || { cat "$tmp/load.out" >&2; fail "cluster kill/restart drill exited $st (want 0)"; }
grep -q "cacheload: PASS" "$tmp/load.out" \
    || { cat "$tmp/load.out" >&2; fail "cluster drill printed no PASS banner"; }

# 14. The skew selftest proves the shadow verifier would catch real
#     replication divergence: -selftest-skew-writes silently skips one
#     replica every Nth write, which MUST surface as silent corruption
#     -> exit 1.
"$netd" -addr 127.0.0.1:0 >"$tmp/s1.out" 2>&1 &
spid1=$!
"$netd" -addr 127.0.0.1:0 >"$tmp/s2.out" 2>&1 &
spid2=$!
"$netd" -addr 127.0.0.1:0 >"$tmp/s3.out" 2>&1 &
spid3=$!
plain_addr() { # $1=outfile
    for _ in $(seq 1 50); do
        a=$(sed -n 's/^cachenetd: listening on \([^ ]*\) .*$/\1/p' "$1")
        [ -n "$a" ] && { echo "$a"; return 0; }
        sleep 0.1
    done
    return 1
}
b1=$(plain_addr "$tmp/s1.out") || fail "skew replica 1 never printed its address"
b2=$(plain_addr "$tmp/s2.out") || fail "skew replica 2 never printed its address"
b3=$(plain_addr "$tmp/s3.out") || fail "skew replica 3 never printed its address"
"$load" -endpoints "$b1,$b2,$b3" -duration 3s -seed 7 -lines 256 -selftest-skew-writes 4 \
    >"$tmp/skew.out" 2>&1
st=$?
kill -INT "$spid1" "$spid2" "$spid3" 2>/dev/null
wait "$spid1" "$spid2" "$spid3" 2>/dev/null
[ "$st" -eq 1 ] || { cat "$tmp/skew.out" >&2; fail "skew selftest exited $st (want 1)"; }
grep -q "FAIL — silent corruption detected" "$tmp/skew.out" \
    || { cat "$tmp/skew.out" >&2; fail "skew selftest exit 1 was not the corruption banner"; }

# 15. Batch deadlines are a per-op contract, not a silent success: a
#     single cachenetd under batch load with a tight-but-nonzero
#     deadline must finish PASS (exit 0) while REPORTING deadline
#     aborts — every timed-out op surfaces as a per-op deadline status
#     the client counts, never as fabricated data. A zero reported
#     count under a 5ms budget with chaos delays would mean deadlines
#     are being swallowed somewhere on the batch plane.
"$netd" -addr 127.0.0.1:0 -chaos-seed 55 -chaos-delay-prob 0.3 \
    >"$tmp/bd.out" 2>&1 &
bdpid=$!
c1=$(netd_addr "$tmp/bd.out") || fail "batch-deadline replica never printed its address"
"$load" -endpoints "$c1" -duration 3s -seed 7 -lines 256 -batch 16 -deadline 5ms \
    >"$tmp/bdload.out" 2>&1
st=$?
kill -INT "$bdpid" 2>/dev/null
wait "$bdpid" 2>/dev/null
[ "$st" -eq 0 ] || { cat "$tmp/bdload.out" >&2; fail "batch-deadline run exited $st (want 0)"; }
grep -q "cacheload: PASS" "$tmp/bdload.out" \
    || { cat "$tmp/bdload.out" >&2; fail "batch-deadline run printed no PASS banner"; }
aborts=$(sed -n 's/.*accounting: *\([0-9][0-9]*\) reported DUE\/aborts.*/\1/p' "$tmp/bdload.out")
[ -n "$aborts" ] && [ "$aborts" -gt 0 ] \
    || { cat "$tmp/bdload.out" >&2; fail "batch-deadline run reported no deadline aborts (got '${aborts:-}')"; }

echo "test_soak_exit: OK"
