package ecc

import (
	"fmt"
	"math/bits"

	"twodcache/internal/bitvec"
)

// SECDED is a Hsiao-style single-error-correct, double-error-detect code
// (odd-weight-column construction). With k=64 it yields the classic
// (72,64) code; with k=256 the (266,256) code the paper uses for L2
// words. It can also correct single-bit manufacture-time hard errors
// in-line, the paper's yield-enhancement configuration (§5.2).
type SECDED struct {
	k, r int
	// cols[j] is the r-bit parity-check column for codeword bit j
	// (data bits 0..k-1 then check bits k..k+r-1).
	cols []uint16
	// colIndex maps a column pattern back to its bit position + 1.
	colIndex map[uint16]int
	// kern is the word-parallel row-mask machinery behind the
	// allocation-free EncodeInto/DecodeInPlace/SyndromeWords path.
	kern colKernel
}

// NewSECDED builds the code for k data bits, picking the smallest r with
// 2^(r-1) >= k + r (enough distinct odd-weight columns).
func NewSECDED(k int) (*SECDED, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecc: invalid SECDED k=%d", k)
	}
	r := 2
	for ; r <= 16; r++ {
		if 1<<(uint(r)-1) >= k+r {
			break
		}
	}
	if r > 16 {
		return nil, fmt.Errorf("ecc: SECDED k=%d too large (r > 16)", k)
	}
	s := &SECDED{k: k, r: r, cols: make([]uint16, k+r), colIndex: make(map[uint16]int)}
	// Data bits take odd-weight columns of weight >= 3, lowest weight
	// first (Hsiao's minimal-weight rule).
	idx := 0
	for w := 3; w <= r && idx < k; w += 2 {
		for c := uint16(1); int(c) < 1<<uint(r) && idx < k; c++ {
			if bits.OnesCount16(c) == w {
				s.cols[idx] = c
				idx++
			}
		}
	}
	if idx < k {
		return nil, fmt.Errorf("ecc: SECDED internal: not enough odd columns for k=%d r=%d", k, r)
	}
	// Check bits take the weight-1 identity columns.
	for i := 0; i < r; i++ {
		s.cols[k+i] = 1 << uint(i)
	}
	for j, c := range s.cols {
		s.colIndex[c] = j + 1
	}
	s.kern = makeColKernel(k, r, s.cols)
	return s, nil
}

// MustSECDED is NewSECDED panicking on error.
func MustSECDED(k int) *SECDED {
	s, err := NewSECDED(k)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns "SECDED".
func (s *SECDED) Name() string { return "SECDED" }

// DataBits returns the number of data bits per codeword.
func (s *SECDED) DataBits() int { return s.k }

// CheckBits returns the number of check bits.
func (s *SECDED) CheckBits() int { return s.r }

// CorrectCapability is 1.
func (s *SECDED) CorrectCapability() int { return 1 }

// DetectCapability is 2.
func (s *SECDED) DetectCapability() int { return 2 }

// Encode appends check bits so that every parity-check row is even.
func (s *SECDED) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != s.k {
		panic(fmt.Sprintf("ecc: SECDED encode length %d != k %d", data.Len(), s.k))
	}
	cw := bitvec.New(s.k + s.r)
	s.EncodeInto(cw.AsCodeword(), data.AsCodeword())
	return cw
}

// EncodeInto writes data plus check bits into cw without allocating.
func (s *SECDED) EncodeInto(cw, data bitvec.Codeword) {
	s.kern.encodeInto(cw, data, "SECDED")
}

// syndrome computes H * cw.
func (s *SECDED) syndrome(cw *bitvec.Vector) uint16 {
	return s.kern.syndromeWords(cw.Words())
}

// SyndromeWords returns the packed syndrome of a codeword view,
// allocation-free.
func (s *SECDED) SyndromeWords(cw bitvec.Codeword) uint64 {
	return uint64(s.kern.syndromeWords(cw.Words()))
}

// Decode corrects a single-bit error in place; even-weight or unmatched
// syndromes report Detected.
func (s *SECDED) Decode(cw *bitvec.Vector) (Result, int) {
	if cw.Len() != s.k+s.r {
		panic(fmt.Sprintf("ecc: SECDED codeword length %d != %d", cw.Len(), s.k+s.r))
	}
	return s.DecodeInPlace(cw.AsCodeword())
}

// DecodeInPlace is Decode on a word view without allocating.
func (s *SECDED) DecodeInPlace(cw bitvec.Codeword) (Result, int) {
	return s.kern.decodeInPlace(cw, s.colIndex, "SECDED")
}

// Data extracts the data bits.
func (s *SECDED) Data(cw *bitvec.Vector) *bitvec.Vector { return cw.Slice(0, s.k) }

var _ Code = (*SECDED)(nil)
