package twod

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// small8kb mirrors the paper's Fig. 3 example: 256x256-bit data array
// organised as 4-way interleaved EDC8-protected 64-bit words with 32
// vertical parity rows. With 4x(72,64) codewords a physical row is 288
// bits wide; the data portion is 256 bits as in the paper.
func small8kb(t testing.TB) *Array {
	t.Helper()
	return MustArray(Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     ecc.MustEDC(64, 8),
		VerticalGroups: 32,
	})
}

func tiny(t testing.TB, h ecc.HorizontalCode) *Array {
	t.Helper()
	return MustArray(Config{Rows: 32, WordsPerRow: 2, Horizontal: h, VerticalGroups: 8})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 0, WordsPerRow: 1, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 1},
		{Rows: 8, WordsPerRow: 0, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 1},
		{Rows: 8, WordsPerRow: 1, Horizontal: nil, VerticalGroups: 1},
		{Rows: 8, WordsPerRow: 1, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 0},
		{Rows: 8, WordsPerRow: 1, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 9},
	}
	for i, cfg := range bad {
		if _, err := NewArray(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLayoutMapping(t *testing.T) {
	l := Layout{Rows: 4, WordsPerRow: 4, CodewordBits: 72}
	if l.RowBits() != 288 {
		t.Fatalf("row bits = %d", l.RowBits())
	}
	seen := map[int]bool{}
	for w := 0; w < 4; w++ {
		for b := 0; b < 72; b++ {
			c := l.PhysColumn(w, b)
			if seen[c] {
				t.Fatalf("column collision at %d", c)
			}
			seen[c] = true
			ww, bb := l.Locate(c)
			if ww != w || bb != b {
				t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", c, ww, bb, w, b)
			}
		}
	}
	// Bit-interleaving property: adjacent physical columns belong to
	// different words.
	for c := 0; c+1 < l.RowBits(); c++ {
		w1, _ := l.Locate(c)
		w2, _ := l.Locate(c + 1)
		if w1 == w2 {
			t.Fatalf("columns %d,%d map to same word %d", c, c+1, w1)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(1))
	type wr struct{ r, w int }
	written := map[wr]*bitvec.Vector{}
	for i := 0; i < 500; i++ {
		r, w := rng.Intn(a.Rows()), rng.Intn(4)
		d := randVec(rng, 64)
		a.Write(r, w, d)
		written[wr{r, w}] = d
	}
	for k, d := range written {
		got, st := a.Read(k.r, k.w)
		if st != ReadClean {
			t.Fatalf("read (%d,%d) status %v", k.r, k.w, st)
		}
		if !got.Equal(d) {
			t.Fatalf("read (%d,%d) data mismatch", k.r, k.w)
		}
	}
}

// parityConsistent checks the fundamental invariant: every vertical
// parity row equals the XOR of its group's data rows.
func parityConsistent(a *Array) bool {
	return allZero(a.verticalMismatch())
}

func TestVerticalParityInvariantAfterWrites(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a.Write(rng.Intn(a.Rows()), rng.Intn(4), randVec(rng, 64))
		if i%200 == 0 && !parityConsistent(a) {
			t.Fatalf("parity inconsistent after %d writes", i+1)
		}
	}
	if !parityConsistent(a) {
		t.Fatal("parity inconsistent at end")
	}
}

func TestReadBeforeWriteCounted(t *testing.T) {
	a := small8kb(t)
	d := bitvec.New(64)
	a.Write(0, 0, d)
	a.Write(0, 0, d)
	st := a.Stats()
	if st.Writes != 2 || st.ExtraReads != 2 {
		t.Fatalf("stats = %+v, want 2 writes and 2 extra reads", st)
	}
}

func TestSingleBitErrorRecoveredWithEDC(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(3))
	fillRandom(a, rng)
	want, _ := a.Read(100, 2)
	// Flip one bit of word 2 in row 100.
	a.FlipBit(100, a.Layout().PhysColumn(2, 17))
	got, st := a.Read(100, 2)
	if st != ReadRecovered {
		t.Fatalf("status = %v", st)
	}
	if !got.Equal(want) {
		t.Fatal("data not recovered")
	}
	// Array must be fully consistent afterwards.
	if !parityConsistent(a) {
		t.Fatal("parity inconsistent after recovery")
	}
}

func TestSECDEDInlineCorrection(t *testing.T) {
	a := tiny(t, ecc.MustSECDED(64))
	rng := rand.New(rand.NewSource(4))
	fillRandom(a, rng)
	want, _ := a.Read(5, 1)
	a.FlipBit(5, a.Layout().PhysColumn(1, 30))
	got, st := a.Read(5, 1)
	if st != ReadCorrectedInline {
		t.Fatalf("status = %v, want inline correction", st)
	}
	if !got.Equal(want) {
		t.Fatal("data wrong after inline correction")
	}
	if a.Stats().Recoveries != 0 {
		t.Fatal("inline correction must not trigger 2D recovery")
	}
	if a.Stats().InlineCorrections != 1 {
		t.Fatalf("inline corrections = %d", a.Stats().InlineCorrections)
	}
	// The cells themselves must have been repaired (self-healing).
	if _, st := a.Read(5, 1); st != ReadClean {
		t.Fatalf("second read status = %v, want clean", st)
	}
}

func TestWriteOverLatentError(t *testing.T) {
	// A latent error under a write target must not poison the vertical
	// parity: the read-before-write checks and repairs first.
	a := small8kb(t)
	rng := rand.New(rand.NewSource(5))
	fillRandom(a, rng)
	a.FlipBit(50, a.Layout().PhysColumn(1, 3))
	st := a.Write(50, 1, randVec(rng, 64))
	if st != ReadRecovered {
		t.Fatalf("write status = %v", st)
	}
	if !parityConsistent(a) {
		t.Fatal("parity poisoned by write over latent error")
	}
}

func TestStatsSnapshot(t *testing.T) {
	a := small8kb(t)
	a.Write(0, 0, bitvec.New(64))
	a.Read(0, 0)
	st := a.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func fillRandom(a *Array, rng *rand.Rand) {
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < a.Config().WordsPerRow; w++ {
			a.Write(r, w, randVec(rng, a.DataBits()))
		}
	}
	a.ResetStats()
}

func randVec(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestVerifyIntegrity(t *testing.T) {
	a := small8kb(t)
	rng := rand.New(rand.NewSource(55))
	fillRandom(a, rng)
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("clean array audits dirty: %+v", rep)
	}
	a.FlipBit(3, 40)
	a.FlipParityBit(7, 100)
	rep := a.VerifyIntegrity()
	if rep.FaultyWords != 1 || rep.ParityMismatches != 2 {
		// The data flip dirties its own group's parity too.
		t.Fatalf("audit: %+v", rep)
	}
	// The audit must not have mutated anything.
	rep2 := a.VerifyIntegrity()
	if rep != rep2 {
		t.Fatal("audit not idempotent")
	}
	// After recovery, the audit is clean again.
	if !a.Recover().Success {
		t.Fatal("recovery failed")
	}
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("post-recovery audit dirty: %+v", rep)
	}
}
