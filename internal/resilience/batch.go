package resilience

// Batched accesses through the escalation ladder: the cache's
// bank-grouped batch path serves the common (fault-free) case with
// amortised locking and line movement; any op that surfaces a
// detected-uncorrectable error is then re-driven individually through
// the ladder, exactly as a single access would be — each failed op
// gets its own RecoveryStart/End bracket, DUE accounting, and ladder
// latency observation.

import (
	"context"

	"twodcache/internal/pcache"
)

// ReadBatch serves every op through the cache's batched path, then
// runs the escalation ladder on each op that tripped a machine check.
// Per-op outcomes land in each op's Err field; the return value counts
// ops that still failed after recovery. Safe for concurrent use.
func (e *Engine) ReadBatch(ops []pcache.ReadOp) (failed int) {
	if e.cache.ReadBatch(ops) == 0 {
		return 0
	}
	for i := range ops {
		op := &ops[i]
		if op.Err == nil {
			continue
		}
		op.Err = e.ladderCtx(context.Background(), op.Err,
			func() error { return e.cache.ReadInto(op.Addr, op.Dst) })
		if op.Err != nil {
			failed++
		}
	}
	return failed
}

// WriteBatch stores every op through the cache's batched path, then
// runs the escalation ladder on each op that tripped a machine check.
// Per-op outcomes land in each op's Err field; the return value counts
// ops that still failed after recovery. Safe for concurrent use.
func (e *Engine) WriteBatch(ops []pcache.WriteOp) (failed int) {
	if e.cache.WriteBatch(ops) == 0 {
		return 0
	}
	for i := range ops {
		op := &ops[i]
		if op.Err == nil {
			continue
		}
		op.Err = e.ladderCtx(context.Background(), op.Err,
			func() error { return e.cache.Write(op.Addr, op.Data) })
		if op.Err != nil {
			failed++
		}
	}
	return failed
}
