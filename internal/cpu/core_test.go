package cpu

import (
	"math/rand"
	"testing"

	"twodcache/internal/workload"
)

// fakeMem is a configurable MemPort: loads complete after latency
// cycles; ports bound accepts per cycle.
type fakeMem struct {
	now        uint64
	latency    uint64
	slots      int
	used       int
	nextToken  uint64
	done       map[uint64]uint64
	storeOK    bool
	storeCount int
	loadCount  int
}

func newFakeMem(latency uint64, slots int) *fakeMem {
	return &fakeMem{latency: latency, slots: slots, done: map[uint64]uint64{}, storeOK: true}
}

func (m *fakeMem) newCycle() { m.now++; m.used = 0 }

func (m *fakeMem) TryLoad(addr uint64) (uint64, bool) {
	if m.used >= m.slots {
		return 0, false
	}
	m.used++
	m.loadCount++
	m.nextToken++
	m.done[m.nextToken] = m.now + m.latency
	return m.nextToken, true
}

func (m *fakeMem) LoadDone(token uint64) bool {
	t, ok := m.done[token]
	return ok && m.now >= t
}

func (m *fakeMem) TryStore(addr uint64) bool {
	if !m.storeOK || m.used >= m.slots {
		return false
	}
	m.used++
	m.storeCount++
	return true
}

func traceFor(t *testing.T, name string, core, thread int) *workload.Stream {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.MustStream(p, core, thread, 99)
}

func TestFatCoreParams(t *testing.T) {
	if _, err := NewFatCore(0, 64, 64, traceFor(t, "OLTP", 0, 0)); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NewFatCore(4, 64, 64, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestFatCoreIPCBounds(t *testing.T) {
	core, err := NewFatCore(4, 64, 64, traceFor(t, "OLTP", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	mem := newFakeMem(2, 4)
	const cycles = 20000
	for i := 0; i < cycles; i++ {
		mem.newCycle()
		core.Tick(mem)
	}
	ipc := float64(core.Committed()) / cycles
	if ipc <= 0.5 || ipc > 4.0 {
		t.Fatalf("fat IPC = %v, want (0.5, 4]", ipc)
	}
	if mem.storeCount == 0 || mem.loadCount == 0 {
		t.Fatal("no memory traffic reached the port")
	}
}

func TestFatCoreDegradesWithLatency(t *testing.T) {
	run := func(lat uint64) float64 {
		core, _ := NewFatCore(4, 64, 64, traceFor(t, "OLTP", 0, 0))
		mem := newFakeMem(lat, 4)
		const cycles = 20000
		for i := 0; i < cycles; i++ {
			mem.newCycle()
			core.Tick(mem)
		}
		return float64(core.Committed()) / cycles
	}
	fast, slow := run(2), run(100)
	if slow >= fast {
		t.Fatalf("IPC did not degrade with latency: %v vs %v", fast, slow)
	}
	// The window must hide some of the latency: slow IPC should still
	// beat a fully-blocking design's bound (~1/(memfrac*lat)).
	if slow < 0.05 {
		t.Fatalf("no memory-level parallelism: slow IPC = %v", slow)
	}
}

func TestFatCoreDegradesWithPortContention(t *testing.T) {
	run := func(slots int) float64 {
		core, _ := NewFatCore(4, 64, 64, traceFor(t, "OLTP", 0, 0))
		mem := newFakeMem(2, slots)
		const cycles = 20000
		for i := 0; i < cycles; i++ {
			mem.newCycle()
			core.Tick(mem)
		}
		return float64(core.Committed()) / cycles
	}
	wide, narrow := run(4), run(1)
	if narrow >= wide {
		t.Fatalf("IPC did not degrade with port contention: %v vs %v", wide, narrow)
	}
}

func TestFatCoreStoreBackpressure(t *testing.T) {
	// If stores can never drain, the SQ fills and dispatch stalls.
	core, _ := NewFatCore(4, 64, 8, traceFor(t, "OLTP", 0, 0))
	mem := newFakeMem(2, 4)
	mem.storeOK = false
	for i := 0; i < 2000; i++ {
		mem.newCycle()
		core.Tick(mem)
	}
	if core.SQFullStalls() == 0 {
		t.Fatal("no SQ-full stalls with blocked stores")
	}
	ipcBlocked := float64(core.Committed()) / 2000
	if ipcBlocked > 1.0 {
		t.Fatalf("IPC %v too high with blocked stores", ipcBlocked)
	}
}

func TestLeanCoreParams(t *testing.T) {
	if _, err := NewLeanCore(2, 64, nil); err == nil {
		t.Fatal("no threads accepted")
	}
	if _, err := NewLeanCore(2, 64, []workload.Source{nil}); err == nil {
		t.Fatal("nil thread accepted")
	}
}

func TestLeanCoreMultithreadingHidesLatency(t *testing.T) {
	p, _ := workload.ByName("OLTP")
	run := func(nthreads int) float64 {
		var traces []workload.Source
		for th := 0; th < nthreads; th++ {
			traces = append(traces, workload.MustStream(p, 0, th, 7))
		}
		core, err := NewLeanCore(2, 64, traces)
		if err != nil {
			t.Fatal(err)
		}
		mem := newFakeMem(20, 2)
		const cycles = 20000
		for i := 0; i < cycles; i++ {
			mem.newCycle()
			core.Tick(mem)
		}
		return float64(core.Committed()) / cycles
	}
	one, four := run(1), run(4)
	if four <= one*1.5 {
		t.Fatalf("4 threads (%v IPC) should beat 1 thread (%v IPC) clearly", four, one)
	}
	if four > 2.0 {
		t.Fatalf("lean IPC %v exceeds width", four)
	}
}

func TestLeanCoreBlocksOnLoads(t *testing.T) {
	p, _ := workload.ByName("Sparse")
	core, _ := NewLeanCore(2, 64, []workload.Source{workload.MustStream(p, 0, 0, 3)})
	mem := newFakeMem(50, 2)
	const cycles = 10000
	for i := 0; i < cycles; i++ {
		mem.newCycle()
		core.Tick(mem)
	}
	ipc := float64(core.Committed()) / cycles
	// Single thread blocking on 50-cycle loads at ~40% mem ops can't
	// sustain high IPC.
	if ipc > 0.5 {
		t.Fatalf("single-thread blocking IPC = %v, too high", ipc)
	}
}

// chaosMem randomly accepts/rejects operations and completes loads at
// random latencies — an adversarial memory to shake out core-state
// corruption.
type chaosMem struct {
	rng       *rand.Rand
	now       uint64
	nextToken uint64
	done      map[uint64]uint64
}

func (m *chaosMem) newCycle() { m.now++ }

func (m *chaosMem) TryLoad(addr uint64) (uint64, bool) {
	if m.rng.Intn(3) == 0 {
		return 0, false
	}
	m.nextToken++
	m.done[m.nextToken] = m.now + uint64(m.rng.Intn(300))
	return m.nextToken, true
}

func (m *chaosMem) LoadDone(token uint64) bool {
	t, ok := m.done[token]
	if ok && m.now >= t {
		delete(m.done, token)
		return true
	}
	return false
}

func (m *chaosMem) TryStore(addr uint64) bool { return m.rng.Intn(4) != 0 }

func TestFatCoreSurvivesChaos(t *testing.T) {
	core, err := NewFatCore(4, 64, 16, traceFor(t, "Sparse", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	mem := &chaosMem{rng: rand.New(rand.NewSource(1)), done: map[uint64]uint64{}}
	var prev uint64
	for i := 0; i < 50000; i++ {
		mem.newCycle()
		core.Tick(mem)
		if core.Committed() < prev {
			t.Fatal("committed count went backwards")
		}
		prev = core.Committed()
		// The ROB must respect the window bound.
		if len(core.rob) > 64 {
			t.Fatalf("ROB grew to %d > window", len(core.rob))
		}
		if len(core.sq) > 16 {
			t.Fatalf("SQ grew to %d > capacity", len(core.sq))
		}
	}
	if core.Committed() == 0 {
		t.Fatal("no forward progress under chaos")
	}
}

func TestLeanCoreSurvivesChaos(t *testing.T) {
	p, _ := workload.ByName("Web")
	var traces []workload.Source
	for th := 0; th < 4; th++ {
		traces = append(traces, workload.MustStream(p, 0, th, 5))
	}
	core, err := NewLeanCore(2, 8, traces)
	if err != nil {
		t.Fatal(err)
	}
	mem := &chaosMem{rng: rand.New(rand.NewSource(2)), done: map[uint64]uint64{}}
	for i := 0; i < 50000; i++ {
		mem.newCycle()
		core.Tick(mem)
		if len(core.sq) > 8 {
			t.Fatalf("SQ grew to %d > capacity", len(core.sq))
		}
	}
	if core.Committed() == 0 {
		t.Fatal("no forward progress under chaos")
	}
}
