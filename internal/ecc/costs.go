package ecc

import (
	"fmt"
	"math"
)

// CheckBitsFor returns the paper's Hamming-distance-based check-bit
// estimate for a t-error-correcting, (t+1)-error-detecting code on k
// data bits: the smallest m with 2^m >= k + t*m + 1 gives r = t*m + 1.
// This reproduces the codeword sizes quoted in the paper: (72,64)
// SECDED, (79,64) DECTED, (93,64) QECPED, (121,64) OECNED, (266,256)
// SECDED.
func CheckBitsFor(k, t int) int {
	for m := 1; m <= 32; m++ {
		if 1<<uint(m) >= k+t*m+1 {
			return t*m + 1
		}
	}
	panic(fmt.Sprintf("ecc: CheckBitsFor(%d,%d) does not converge", k, t))
}

// Spec captures the cost-relevant parameters of a coding scheme for a
// given word size, used by the Fig. 1 and Fig. 7 overhead models.
type Spec struct {
	// Name of the scheme ("EDC8", "SECDED", "DECTED", "QECPED", "OECNED").
	Name string
	// DataBits per codeword.
	DataBits int
	// CheckBits per codeword.
	CheckBits int
	// Correct is the guaranteed correction capability in bits.
	Correct int
	// Detect is the guaranteed detection capability in bits
	// (contiguous for EDCn).
	Detect int
	// FaninPerCheck is the number of inputs XOR-ed to produce one
	// syndrome bit during a read check.
	FaninPerCheck int
}

// StorageOverhead returns CheckBits/DataBits.
func (s Spec) StorageOverhead() float64 {
	return float64(s.CheckBits) / float64(s.DataBits)
}

// SyndromeDepth models coding latency as the depth of the syndrome
// generation and comparison circuit: an XOR tree per check bit followed
// by an OR tree across syndrome bits (paper §5.1).
func (s Spec) SyndromeDepth() int {
	xor := ceilLog2(s.FaninPerCheck + 1) // +1 folds in the stored check bit
	or := ceilLog2(s.CheckBits)
	return xor + or
}

// XORGateCount estimates the number of 2-input XOR gates in the syndrome
// generator; a proxy for coding-logic dynamic energy.
func (s Spec) XORGateCount() int {
	return s.CheckBits * s.FaninPerCheck
}

// SpecEDC returns the Spec of EDCn over k data bits.
func SpecEDC(k, n int) Spec {
	return Spec{
		Name:          fmt.Sprintf("EDC%d", n),
		DataBits:      k,
		CheckBits:     n,
		Correct:       0,
		Detect:        n,
		FaninPerCheck: (k + n - 1) / n,
	}
}

// SpecCorrecting returns the Spec of a t-EC/(t+1)-ED code over k data
// bits under its conventional name.
func SpecCorrecting(name string, k, t int) Spec {
	r := CheckBitsFor(k, t)
	fanin := (k + r) / 2 // dense parity-check rows for BCH-class codes
	if t == 1 {
		// Hsiao SECDED uses minimal odd-weight columns: row weight ~ 3k/r.
		fanin = (3*k + r - 1) / r
	}
	return Spec{
		Name:          name,
		DataBits:      k,
		CheckBits:     r,
		Correct:       t,
		Detect:        t + 1,
		FaninPerCheck: fanin,
	}
}

// SpecByName resolves a scheme name to its Spec for k data bits.
// Recognised names: EDC4, EDC8, EDC16, EDC32, SECDED, DECTED, QECPED,
// OECNED.
func SpecByName(name string, k int) (Spec, error) {
	switch name {
	case "EDC4":
		return SpecEDC(k, 4), nil
	case "EDC8":
		return SpecEDC(k, 8), nil
	case "EDC16":
		return SpecEDC(k, 16), nil
	case "EDC32":
		return SpecEDC(k, 32), nil
	case "SECDED":
		return SpecCorrecting("SECDED", k, 1), nil
	case "DECTED":
		return SpecCorrecting("DECTED", k, 2), nil
	case "QECPED":
		return SpecCorrecting("QECPED", k, 4), nil
	case "OECNED":
		return SpecCorrecting("OECNED", k, 8), nil
	default:
		return Spec{}, fmt.Errorf("ecc: unknown scheme %q", name)
	}
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
