package store

import (
	"bytes"
	"testing"

	"twodcache/internal/pcache"
)

// FuzzShardedVsUnsharded is the sharding differential oracle: the same
// op sequence driven through a 1-shard and a 4-shard store (each over
// its own backing) must produce identical read results and, after a
// final flush, byte-identical backings — the shard address contraction
// and batch routing are pure plumbing, invisible to callers. No faults
// are injected, so both runs are deterministic.
//
// Stats are compared only where sharding guarantees equality: access
// counts (one per op on each store). Hit/miss splits legitimately
// differ — per-shard caches replace independently.
func FuzzShardedVsUnsharded(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 1, 2, 3, 0x01, 1, 2, 3})
	f.Add([]byte{0x02, 9, 0, 1, 0x02, 10, 0, 2, 0x02, 11, 0, 3, 0x03, 0, 0, 0})
	seq := make([]byte, 0, 256)
	for i := 0; i < 64; i++ {
		seq = append(seq, byte(i%4), byte(i*7), byte(i*3), byte(i))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		const lines = 64
		mkStore := func(shards int) (*Sharded, *pcache.MapBacking) {
			backing := pcache.NewMapBacking(64)
			s, err := New(Config{
				Shards: shards,
				Cache:  pcache.Config{Sets: 8, Ways: 2, LineBytes: 64, Banks: 2},
			}, backing)
			if err != nil {
				t.Fatal(err)
			}
			return s, backing
		}
		s1, b1 := mkStore(1)
		s4, b4 := mkStore(4)

		var pending []uint64 // addresses queued for a batch round
		runBatch := func() {
			if len(pending) == 0 {
				return
			}
			for _, s := range []*Sharded{s1, s4} {
				wops := make([]pcache.WriteOp, len(pending))
				for i, a := range pending {
					wops[i] = pcache.WriteOp{Addr: a, Data: []byte{byte(a), byte(i)}}
				}
				if failed := s.WriteBatch(wops); failed != 0 {
					t.Fatalf("%d-shard WriteBatch failed %d ops", s.NumShards(), failed)
				}
			}
			r1 := make([]pcache.ReadOp, len(pending))
			r4 := make([]pcache.ReadOp, len(pending))
			for i, a := range pending {
				r1[i] = pcache.ReadOp{Addr: a, Dst: make([]byte, 2)}
				r4[i] = pcache.ReadOp{Addr: a, Dst: make([]byte, 2)}
			}
			if f1, f4 := s1.ReadBatch(r1), s4.ReadBatch(r4); f1 != 0 || f4 != 0 {
				t.Fatalf("ReadBatch failed: 1-shard %d, 4-shard %d", f1, f4)
			}
			for i := range pending {
				if !bytes.Equal(r1[i].Dst, r4[i].Dst) {
					t.Fatalf("batch read diverged at %#x: %x vs %x", pending[i], r1[i].Dst, r4[i].Dst)
				}
			}
			pending = pending[:0]
		}

		for len(data) >= 4 {
			op, a, b, c := data[0], data[1], data[2], data[3]
			data = data[4:]
			line := uint64(a) % lines
			off := uint64(b%8) * 8
			addr := line*64 + off
			n := int(c%8) + 1
			switch op % 4 {
			case 0: // write
				buf := bytes.Repeat([]byte{c}, n)
				e1 := s1.Write(addr, buf)
				e4 := s4.Write(addr, buf)
				if (e1 == nil) != (e4 == nil) {
					t.Fatalf("write %#x: errors diverged: %v vs %v", addr, e1, e4)
				}
			case 1: // read and compare
				g1, e1 := s1.Read(addr, n)
				g4, e4 := s4.Read(addr, n)
				if (e1 == nil) != (e4 == nil) {
					t.Fatalf("read %#x: errors diverged: %v vs %v", addr, e1, e4)
				}
				if e1 == nil && !bytes.Equal(g1, g4) {
					t.Fatalf("read %#x diverged: %x vs %x", addr, g1, g4)
				}
			case 2: // queue a batch op
				pending = append(pending, addr)
				if len(pending) == 6 {
					runBatch()
				}
			case 3: // flush both
				runBatch()
				if e1, e4 := s1.Flush(), s4.Flush(); e1 != nil || e4 != nil {
					t.Fatalf("flush: %v / %v", e1, e4)
				}
			}
		}
		runBatch()
		if e1, e4 := s1.Flush(), s4.Flush(); e1 != nil || e4 != nil {
			t.Fatalf("final flush: %v / %v", e1, e4)
		}
		for line := uint64(0); line < lines; line++ {
			l1, l4 := b1.ReadLine(line*64), b4.ReadLine(line*64)
			if !bytes.Equal(l1, l4) {
				t.Fatalf("backing diverged at line %d:\n  1-shard %x\n  4-shard %x", line, l1, l4)
			}
		}
		st1, st4 := s1.Stats(), s4.Stats()
		if st1.Accesses != st4.Accesses {
			t.Fatalf("access counts diverged: %d vs %d", st1.Accesses, st4.Accesses)
		}
		for _, st := range []pcache.Stats{st1, st4} {
			if st.Hits+st.Misses+st.Bypassed != st.Accesses {
				t.Fatalf("incoherent stats: %+v", st)
			}
		}
	})
}
