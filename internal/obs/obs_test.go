package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := MustHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (inclusive upper bound)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow bucket
	h.Observe(-time.Second)           // clamps to zero, bucket 0
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	want := 500*time.Microsecond + time.Millisecond + 2*time.Millisecond + time.Second
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if _, err := NewHistogram(time.Second, time.Millisecond); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

func TestSnapshotClampLE(t *testing.T) {
	r := NewRegistry()
	// Simulate the torn-read hazard: the "attempts" reader momentarily
	// lags the "hits" reader, exactly the resilience Report() bug.
	hits, attempts := uint64(10), uint64(7)
	r.CounterFunc("hits", "", func() uint64 { return hits })
	r.CounterFunc("attempts", "", func() uint64 { return attempts })
	r.ClampLE("hits", "attempts")
	s := r.Snapshot()
	if s.Counter("hits") != 7 || s.Counter("attempts") != 7 {
		t.Fatalf("clamp failed: hits=%d attempts=%d", s.Counter("hits"), s.Counter("attempts"))
	}
	// Once consistent, values pass through untouched.
	attempts = 12
	s = r.Snapshot()
	if s.Counter("hits") != 10 || s.Counter("attempts") != 12 {
		t.Fatalf("consistent values altered: %v", s.Counters)
	}
}

func TestSnapshotMonotonic(t *testing.T) {
	r := NewRegistry()
	v := uint64(100)
	r.CounterFunc("c", "", func() uint64 { return v })
	if got := r.Snapshot().Counter("c"); got != 100 {
		t.Fatalf("first snapshot %d", got)
	}
	v = 40 // a regressing source (torn multi-word sum) must not surface
	if got := r.Snapshot().Counter("c"); got != 100 {
		t.Fatalf("snapshot regressed to %d", got)
	}
	v = 150
	if got := r.Snapshot().Counter("c"); got != 150 {
		t.Fatalf("snapshot stuck at %d", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestClampLEUnknownPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "")
	defer func() {
		if recover() == nil {
			t.Fatal("ClampLE over unknown counter did not panic")
		}
	}()
	r.ClampLE("a", "nope")
}

// TestSnapshotInvariantUnderConcurrency hammers an attempts/hits pair
// from writer goroutines (attempt incremented strictly before hit, as
// every real emitter does) while a reader snapshots continuously: no
// snapshot may ever show hits > attempts. Meant for -race.
func TestSnapshotInvariantUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	attempts := r.Counter("attempts", "")
	hits := r.Counter("hits", "")
	r.ClampLE("hits", "attempts")
	hist := r.Histogram("lat", "")

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				attempts.Inc()
				hits.Inc()
				hist.Observe(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := r.Snapshot()
		if h, a := s.Counter("hits"), s.Counter("attempts"); h > a {
			t.Fatalf("snapshot %d: hits %d > attempts %d", i, h, a)
		}
		hs := s.Histogram("lat")
		var sum uint64
		for _, c := range hs.Counts {
			sum += c
		}
		if sum != hs.Count {
			t.Fatalf("snapshot %d: bucket sum %d != count %d", i, sum, hs.Count)
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_events_total", "events seen")
	c.Add(3)
	g := r.Gauge("app_ways_disabled", "")
	g.Set(-2)
	h := r.Histogram("app_latency_seconds", "ladder latency", time.Millisecond, time.Second)
	h.Observe(2 * time.Millisecond)
	h.Observe(5 * time.Second)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_events_total events seen",
		"# TYPE app_events_total counter",
		"app_events_total 3",
		"# TYPE app_ways_disabled gauge",
		"app_ways_disabled -2",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.001"} 0`,
		`app_latency_seconds_bucket{le="1"} 1`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		"app_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestVarsAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(5)
	r.Gauge("g", "").Set(6)
	r.Histogram("h", "", time.Millisecond).Observe(time.Microsecond)
	vars := r.Snapshot().Vars()
	if vars["c"] != uint64(5) || vars["g"] != int64(6) {
		t.Fatalf("vars: %v", vars)
	}
	hm, ok := vars["h"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Fatalf("histogram var: %v", vars["h"])
	}
	// Publishing twice must not panic (expvar forbids duplicates).
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry")
}

// TestHotPathAllocFree pins the metric write path and the no-op sink
// dispatch to zero heap allocations — the contract that lets emitters
// instrument their slow paths unconditionally and their hot paths keep
// the zero-alloc guarantee.
func TestHotPathAllocFree(t *testing.T) {
	var c Counter
	var g Gauge
	h := MustHistogram()
	var sink Sink = NopSink{}
	if a := testing.AllocsPerRun(200, func() { c.Add(1) }); a != 0 {
		t.Errorf("Counter.Add allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() { g.Set(3) }); a != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() { h.Observe(time.Millisecond) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		sink.RecoveryStart("data", 1, 2)
		sink.RecoveryEnd("data", 1, 2, true, time.Millisecond)
		sink.ScrubPass(8, true, 0, time.Millisecond)
		sink.DegradeEpoch(1, 2, false)
		sink.UncorrectableDetected("tags", 3, 4)
		sink.BreakerTransition(0, "closed", "open", "failure threshold")
		sink.RepairCoalesced("data", 0, 1, 2)
		sink.RequestShed("data", 0, 1, 2)
		sink.WatchdogFire(0, 1, 2, time.Millisecond)
	}); a != 0 {
		t.Errorf("NopSink dispatch allocates %.1f/op", a)
	}
}

// TestHistogramQuantileAndCountLE pins the SLO primitives: CountLE is
// exact on bucket boundaries and conservative elsewhere, Quantile
// interpolates inside the containing bucket and saturates at the
// largest finite bound.
func TestHistogramQuantileAndCountLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", time.Millisecond, 2*time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 98; i++ {
		h.Observe(500 * time.Microsecond) // bucket (0, 1ms]
	}
	h.Observe(5 * time.Millisecond)  // bucket (2ms, 10ms]
	h.Observe(50 * time.Millisecond) // overflow
	s := r.Snapshot().Histogram("lat")

	if n, exact := s.CountLE(2 * time.Millisecond); n != 98 || !exact {
		t.Fatalf("CountLE(2ms) = %d exact=%v, want 98 exact", n, exact)
	}
	if n, exact := s.CountLE(3 * time.Millisecond); n != 98 || exact {
		t.Fatalf("CountLE(3ms) = %d exact=%v, want 98 inexact", n, exact)
	}
	if n, _ := s.CountLE(10 * time.Millisecond); n != 99 {
		t.Fatalf("CountLE(10ms) = %d, want 99", n)
	}
	// p50 lands inside the first bucket; p99 in (2ms,10ms]; p100 in the
	// overflow bucket saturates at the last finite bound.
	if q := s.Quantile(0.50); q <= 0 || q > time.Millisecond {
		t.Fatalf("p50 = %v, want inside (0, 1ms]", q)
	}
	if q := s.Quantile(0.99); q <= 2*time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("p99 = %v, want inside (2ms, 10ms]", q)
	}
	if q := s.Quantile(1.0); q != 10*time.Millisecond {
		t.Fatalf("p100 = %v, want saturation at 10ms", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}
}

func TestWithPrefixViews(t *testing.T) {
	root := NewRegistry()
	root.Counter("global", "").Add(1)
	s0 := root.WithPrefix("shard0_")
	s1 := root.WithPrefix("shard1_")
	c0 := s0.Counter("hits", "")
	c1 := s1.Counter("hits", "") // same local name, no collision
	s0.Counter("accesses", "")
	s0.ClampLE("hits", "accesses")
	c0.Add(5)
	c1.Add(9)

	// Each view snapshots only its own metrics, prefix stripped; the
	// clamp declared inside the view fires on the view's local names.
	v0 := s0.Snapshot()
	if got := v0.Counter("hits"); got != 0 { // clamped to accesses=0
		t.Fatalf("view hits = %d, want 0 (clamped)", got)
	}
	if _, ok := v0.Counters["global"]; ok {
		t.Fatal("prefixed view leaked a root metric")
	}
	if names := v0.Names(); len(names) != 2 || names[0] != "hits" {
		t.Fatalf("view names = %v", names)
	}

	// The root sees everything fully qualified, same clamp applied.
	rs := root.Snapshot()
	if got := rs.Counter("shard0_hits"); got != 0 {
		t.Fatalf("root shard0_hits = %d, want 0 (clamped)", got)
	}
	if got := rs.Counter("shard1_hits"); got != 9 {
		t.Fatalf("root shard1_hits = %d, want 9", got)
	}
	if got := rs.Counter("global"); got != 1 {
		t.Fatalf("root global = %d, want 1", got)
	}

	// Monotonic floors are shared between views: a regression observed
	// through the root must not resurface through the view.
	var src atomic.Uint64
	src.Store(100)
	s1.CounterFunc("mono", "", src.Load)
	_ = root.Snapshot()
	src.Store(40)
	if got := s1.Snapshot().Counter("mono"); got != 100 {
		t.Fatalf("view snapshot regressed to %d", got)
	}

	// Nested prefixes compose.
	s0.WithPrefix("inner_").Counter("x", "").Add(3)
	if got := root.Snapshot().Counter("shard0_inner_x"); got != 3 {
		t.Fatalf("nested prefix counter = %d, want 3", got)
	}
}

func TestAttachHistogram(t *testing.T) {
	h := MustHistogram(time.Millisecond, time.Second)
	h.Observe(2 * time.Millisecond)
	r1, r2 := NewRegistry(), NewRegistry()
	r1.AttachHistogram("lat", "", h)
	r2.WithPrefix("mirror_").AttachHistogram("lat", "", h)
	if got := r1.Snapshot().Histogram("lat").Count; got != 1 {
		t.Fatalf("r1 count = %d, want 1", got)
	}
	if got := r2.Snapshot().Histogram("mirror_lat").Count; got != 1 {
		t.Fatalf("r2 count = %d, want 1", got)
	}
}
