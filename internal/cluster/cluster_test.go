package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/netsrv"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/store"
)

const lineBytes = 64

var testCacheCfg = pcache.Config{Sets: 16, Ways: 2, LineBytes: lineBytes, Banks: 4}

// replica is one in-process netsrv server that can be killed abruptly
// and restarted on the same address with a fresh (empty) store —
// modelling a process crash that loses everything.
type replica struct {
	t    *testing.T
	addr string

	mu     sync.Mutex
	srv    *netsrv.Server
	l      net.Listener
	served chan error
}

func startReplica(t *testing.T) *replica {
	t.Helper()
	r := &replica{t: t}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r.addr = l.Addr().String()
	r.boot(l)
	t.Cleanup(r.kill)
	return r
}

func (r *replica) boot(l net.Listener) {
	r.t.Helper()
	backing := pcache.NewMapBacking(lineBytes)
	st, err := store.New(store.Config{
		Shards: 2, Cache: testCacheCfg, Resilience: resilience.Config{},
	}, backing)
	if err != nil {
		r.t.Fatal(err)
	}
	srv, err := netsrv.NewServer(netsrv.Config{Store: st})
	if err != nil {
		r.t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	r.mu.Lock()
	r.srv, r.l, r.served = srv, l, served
	r.mu.Unlock()
}

// kill shuts the replica down; established client conns die.
func (r *replica) kill() {
	r.mu.Lock()
	srv, served := r.srv, r.served
	r.srv = nil
	r.mu.Unlock()
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	<-served
}

// restart brings the replica back on the same address with an empty
// store. The port was just freed, but give the kernel a moment.
func (r *replica) restart() {
	r.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		l, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		r.t.Fatalf("re-listen on %s: %v", r.addr, err)
	}
	r.boot(l)
}

// pattern builds a line-sized deterministic payload for addr/version.
func pattern(addr uint64, version byte) []byte {
	b := make([]byte, lineBytes)
	for i := range b {
		b[i] = byte(addr>>3) ^ version ^ byte(i*7)
	}
	return b
}

func newCluster(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClusterReplicationRoundTrip pins the basic contract: writes fan
// out, reads come back identical from a healthy 3-replica cluster, and
// every replica independently holds the data (proved by reading through
// single-endpoint clients).
func TestClusterReplicationRoundTrip(t *testing.T) {
	reps := []*replica{startReplica(t), startReplica(t), startReplica(t)}
	addrs := []string{reps[0].addr, reps[1].addr, reps[2].addr}
	c := newCluster(t, Config{Endpoints: addrs, Seed: 1})

	const lines = 32
	for i := uint64(0); i < lines; i++ {
		if err := c.Write(i*lineBytes, pattern(i*lineBytes, 1)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < lines; i++ {
		got, err := c.Read(i*lineBytes, lineBytes)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(i*lineBytes, 1)) {
			t.Fatalf("read %d returned wrong data", i)
		}
	}
	// Every individual replica holds every line.
	for ri, addr := range addrs {
		nc, err := netsrv.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < lines; i++ {
			got, err := nc.Read(i*lineBytes, lineBytes)
			if err != nil || !bytes.Equal(got, pattern(i*lineBytes, 1)) {
				t.Fatalf("replica %d line %d: %v", ri, i, err)
			}
		}
		nc.Close()
		_ = ri
	}
}

// TestClusterKillRestartNoStaleReads is the tentpole invariant test: a
// replica that dies, misses writes, and comes back EMPTY must never
// serve a read until repair has refreshed it — the cluster keeps
// answering with the latest data throughout.
func TestClusterKillRestartNoStaleReads(t *testing.T) {
	reps := []*replica{startReplica(t), startReplica(t), startReplica(t)}
	cfg := Config{
		Endpoints:     []string{reps[0].addr, reps[1].addr, reps[2].addr},
		Seed:          2,
		RedialBackoff: 5 * time.Millisecond,
		// Writes here are idempotent full-line puts; lets the cluster
		// retry through the kill window instead of surfacing ambiguity.
		IdempotentWrites: true,
	}
	c := newCluster(t, cfg)

	const lines = 24
	for i := uint64(0); i < lines; i++ {
		if err := c.Write(i*lineBytes, pattern(i*lineBytes, 1)); err != nil {
			t.Fatalf("v1 write %d: %v", i, err)
		}
	}

	reps[1].kill()

	// Overwrite everything while replica 1 is down: it misses v2.
	for i := uint64(0); i < lines; i++ {
		if err := c.Write(i*lineBytes, pattern(i*lineBytes, 2)); err != nil {
			t.Fatalf("v2 write %d: %v", i, err)
		}
	}

	// Replica 1 comes back with an empty store. Until repair completes,
	// reads must still be v2 every single time.
	reps[1].restart()
	deadline := time.Now().Add(10 * time.Second)
	healed := false
	for !healed {
		for i := uint64(0); i < lines; i++ {
			got, err := c.Read(i*lineBytes, lineBytes)
			if err != nil {
				t.Fatalf("read %d during heal: %v", i, err)
			}
			if !bytes.Equal(got, pattern(i*lineBytes, 2)) {
				t.Fatalf("read %d returned stale/garbage data during heal", i)
			}
		}
		healed = true
		for _, s := range c.Endpoints() {
			if !s.Connected || s.Missed > 0 {
				healed = false
			}
		}
		if !healed && time.Now().After(deadline) {
			t.Fatalf("repair never drained: %v", c.Endpoints())
		}
	}

	// Healed: the restarted replica now independently holds v2.
	nc, err := netsrv.Dial(reps[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := uint64(0); i < lines; i++ {
		got, err := nc.Read(i*lineBytes, lineBytes)
		if err != nil || !bytes.Equal(got, pattern(i*lineBytes, 2)) {
			t.Fatalf("restarted replica line %d not repaired: %v", i, err)
		}
	}
}

// fakeConn is an in-memory Conn for policy-level tests: programmable
// latency and error injection per operation.
type fakeConn struct {
	mu        sync.Mutex
	data      map[uint64][]byte
	readDelay time.Duration
	readErr   func(call int) error
	writeErr  func(call int) error
	readCalls int
	writeCall int
}

func newFakeConn() *fakeConn { return &fakeConn{data: map[uint64][]byte{}} }

func (f *fakeConn) ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error) {
	f.mu.Lock()
	call := f.readCalls
	f.readCalls++
	delay, errf := f.readDelay, f.readErr
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if errf != nil {
		if err := errf(call); err != nil {
			return nil, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.data[addr]
	if !ok {
		return make([]byte, n), nil
	}
	return append([]byte(nil), d...), nil
}

func (f *fakeConn) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	f.mu.Lock()
	call := f.writeCall
	f.writeCall++
	errf := f.writeErr
	f.mu.Unlock()
	if errf != nil {
		if err := errf(call); err != nil {
			return err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data[addr] = append([]byte(nil), data...)
	return nil
}

// ReadBatchCtx serves each op through the single-op path, so the same
// programmable error/delay hooks drive batch tests.
func (f *fakeConn) ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int, err error) {
	for i := range ops {
		d, rerr := f.ReadCtx(ctx, ops[i].Addr, len(ops[i].Dst))
		ops[i].Err = rerr
		if rerr != nil {
			failed++
			continue
		}
		copy(ops[i].Dst, d)
	}
	return failed, nil
}

func (f *fakeConn) WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int, err error) {
	for i := range ops {
		ops[i].Err = f.WriteCtx(ctx, ops[i].Addr, ops[i].Data)
		if ops[i].Err != nil {
			failed++
		}
	}
	return failed, nil
}

func (f *fakeConn) FlushCtx(context.Context) error { return nil }
func (f *fakeConn) Epoch(uint64) (uint64, error)   { return 0, nil }
func (f *fakeConn) Close() error                   { return nil }

func (f *fakeConn) writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeCall
}

// fakeDialer hands out pre-built fakes by address.
func fakeDialer(conns map[string]Conn) func(string) (Conn, error) {
	return func(addr string) (Conn, error) {
		c, ok := conns[addr]
		if !ok {
			return nil, fmt.Errorf("no fake for %s", addr)
		}
		return c, nil
	}
}

// TestClusterHedgedReadBeatsSlowReplica pins the hedging policy: with
// one pathologically slow replica, reads finish at fast-replica latency
// because the hedge wins, and the hedge metrics advance. With hedging
// disabled, slow-primary reads pay the full slow latency.
func TestClusterHedgedReadBeatsSlowReplica(t *testing.T) {
	const slow = 300 * time.Millisecond
	mk := func(hedge bool) (time.Duration, *obs.Registry) {
		slowC, fastC := newFakeConn(), newFakeConn()
		slowC.readDelay = slow
		reg := obs.NewRegistry()
		c := newCluster(t, Config{
			Endpoints:      []string{"slow", "fast"},
			Dial:           fakeDialer(map[string]Conn{"slow": slowC, "fast": fastC}),
			DisableHedging: !hedge,
			HedgeMin:       5 * time.Millisecond,
			HedgeMax:       5 * time.Millisecond,
			Metrics:        reg,
			Seed:           3,
		})
		if err := c.Write(0, pattern(0, 1)); err != nil {
			t.Fatal(err)
		}
		var worst time.Duration
		for i := 0; i < 6; i++ {
			t0 := time.Now()
			got, err := c.Read(0, lineBytes)
			if err != nil {
				t.Fatalf("hedged read: %v", err)
			}
			if !bytes.Equal(got, pattern(0, 1)) {
				t.Fatal("hedged read returned wrong data")
			}
			if d := time.Since(t0); d > worst {
				worst = d
			}
		}
		return worst, reg
	}

	worstHedged, reg := mk(true)
	if worstHedged >= slow {
		t.Fatalf("worst hedged read %v, want < %v", worstHedged, slow)
	}
	s := reg.Snapshot()
	if s.Counter("cluster_hedges_total") == 0 || s.Counter("cluster_hedge_wins_total") == 0 {
		t.Fatalf("hedge metrics did not advance: hedges=%d wins=%d",
			s.Counter("cluster_hedges_total"), s.Counter("cluster_hedge_wins_total"))
	}

	worstUnhedged, reg2 := mk(false)
	if worstUnhedged < slow {
		t.Fatalf("worst unhedged read %v — the slow replica was never primary; widen the loop", worstUnhedged)
	}
	if got := reg2.Snapshot().Counter("cluster_hedges_total"); got != 0 {
		t.Fatalf("hedging disabled but %d hedges launched", got)
	}
}

// TestClusterRetryTransient pins retry classification: recovery-in-
// progress answers are retried with backoff until they clear, within
// the caller's deadline headroom.
func TestClusterRetryTransient(t *testing.T) {
	fc := newFakeConn()
	fc.readErr = func(call int) error {
		if call < 2 {
			return &netsrv.RemoteError{Status: 2} // stRecoveryInProgress
		}
		return nil
	}
	reg := obs.NewRegistry()
	c := newCluster(t, Config{
		Endpoints: []string{"a"},
		Dial:      fakeDialer(map[string]Conn{"a": fc}),
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Metrics: reg, Seed: 4,
	})
	if err := c.Write(0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0, lineBytes)
	if err != nil {
		t.Fatalf("read through transient recovery: %v", err)
	}
	if !bytes.Equal(got, pattern(0, 1)) {
		t.Fatal("wrong data after retries")
	}
	if reg.Snapshot().Counter("cluster_retries_total") == 0 {
		t.Fatal("no retries recorded")
	}

	// With no deadline headroom the retry loop must bail immediately
	// rather than sleep through the caller's budget.
	fc2 := newFakeConn()
	fc2.readErr = func(int) error { return &netsrv.RemoteError{Status: 2} }
	c2 := newCluster(t, Config{
		Endpoints: []string{"a"},
		Dial:      fakeDialer(map[string]Conn{"a": fc2}),
		RetryBase: 50 * time.Millisecond, RetryMax: 50 * time.Millisecond,
		Seed: 5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = c2.ReadCtx(ctx, 0, lineBytes)
	if err == nil {
		t.Fatal("read succeeded against an always-recovering replica")
	}
	if d := time.Since(t0); d > 40*time.Millisecond {
		t.Fatalf("retry loop slept %v into a 20ms budget", d)
	}
}

// TestClusterAmbiguousWrite pins the ambiguity rule: when every replica
// fails ambiguously and writes are not idempotent, the cluster must
// not retry — it surfaces ErrAmbiguousWrite after exactly one round.
func TestClusterAmbiguousWrite(t *testing.T) {
	boom := errors.New("mid-flight transport loss")
	fc := newFakeConn()
	fc.writeErr = func(int) error { return boom }
	c := newCluster(t, Config{
		Endpoints: []string{"a"},
		Dial:      fakeDialer(map[string]Conn{"a": fc}),
		Seed:      6,
	})
	err := c.Write(0, pattern(0, 1))
	if !errors.Is(err, ErrAmbiguousWrite) {
		t.Fatalf("err = %v, want ErrAmbiguousWrite", err)
	}
	if n := fc.writes(); n != 1 {
		t.Fatalf("ambiguous write attempted %d times, want exactly 1", n)
	}
}

// TestClusterUnambiguousWriteRetries pins the complement: a definite
// not-applied refusal (draining) is retried, never ambiguous.
func TestClusterUnambiguousWriteRetries(t *testing.T) {
	fc := newFakeConn()
	fc.writeErr = func(call int) error {
		if call < 2 {
			return &netsrv.RemoteError{Status: 6} // stDraining
		}
		return nil
	}
	c := newCluster(t, Config{
		Endpoints: []string{"a"},
		Dial:      fakeDialer(map[string]Conn{"a": fc}),
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Seed: 7,
	})
	if err := c.Write(0, pattern(0, 1)); err != nil {
		t.Fatalf("write through draining window: %v", err)
	}
	if n := fc.writes(); n != 3 {
		t.Fatalf("write attempted %d times, want 3", n)
	}
}

// TestClusterStaleReplicaNeverServesReads pins freshness routing: a
// replica that keeps failing writes holds stale (wrong) data, and no
// read may ever come back with it.
func TestClusterStaleReplicaNeverServesReads(t *testing.T) {
	good, bad := newFakeConn(), newFakeConn()
	bad.writeErr = func(int) error { return &netsrv.RemoteError{Status: 6} } // never applies
	c := newCluster(t, Config{
		Endpoints:      []string{"good", "bad"},
		Dial:           fakeDialer(map[string]Conn{"good": good, "bad": bad}),
		Seed:           8,
		RepairInterval: time.Millisecond,
	})
	// Seed the bad replica with old bytes, then write v2 through the
	// cluster: good applies, bad refuses and goes stale.
	bad.mu.Lock()
	bad.data[0] = pattern(0, 1)
	bad.mu.Unlock()
	if err := c.Write(0, pattern(0, 2)); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 50; i++ {
		got, err := c.Read(0, lineBytes)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(0, 2)) {
			t.Fatalf("read %d returned stale bytes from the bad replica", i)
		}
	}
}

// TestClusterChaosHammer drives a 3-replica cluster through per-replica
// chaos proxies under -race: concurrent workers, deterministic chaos,
// and the hard assertion that every successful read returns exactly
// the last successfully-written value — transport chaos may slow or
// fail requests but must never corrupt them.
func TestClusterChaosHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos hammer is slow")
	}
	var endpoints []string
	for i := 0; i < 3; i++ {
		r := startReplica(t)
		p, err := fault.NewChaosProxy(fault.ChaosProxyConfig{
			Seed:      int64(100 + i),
			Target:    r.addr,
			DelayProb: 0.05, ResetProb: 0.004, TearProb: 0.004, DropProb: 0.002,
			DelayMin: 100 * time.Microsecond, DelayMax: time.Millisecond,
			DropStall: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		endpoints = append(endpoints, p.Addr().String())
	}
	c := newCluster(t, Config{
		Endpoints:        endpoints,
		Seed:             9,
		IdempotentWrites: true,
		MaxRetries:       8,
		RedialBackoff:    2 * time.Millisecond,
		HedgeMax:         2 * time.Millisecond,
	})

	const (
		workers = 4
		opsEach = 150
		lines   = 16 // per worker
	)
	var wg sync.WaitGroup
	var mismatches, successes int64
	var statMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * lines * lineBytes
			shadow := make(map[uint64][]byte)
			for i := 0; i < opsEach; i++ {
				addr := base + uint64(i%lines)*lineBytes
				if i%3 == 0 {
					v := pattern(addr, byte(i))
					if err := c.Write(addr, v); err != nil {
						// Outcome unknown: this addr leaves the verified set
						// until a later write succeeds.
						delete(shadow, addr)
						continue
					}
					shadow[addr] = v
					continue
				}
				want, known := shadow[addr]
				got, err := c.Read(addr, lineBytes)
				if err != nil {
					continue
				}
				if known {
					statMu.Lock()
					successes++
					if !bytes.Equal(got, want) {
						mismatches++
					}
					statMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if mismatches > 0 {
		t.Fatalf("%d silent corruptions across %d verified reads", mismatches, successes)
	}
	if successes == 0 {
		t.Fatal("chaos killed every read; loosen the probabilities")
	}
	t.Logf("chaos hammer: %d verified reads, 0 mismatches", successes)
}

// TestClusterBatchFreshnessPartition pins the batch plane's freshness
// invariant: a batch read routes each op only to endpoints fresh for
// that addr, an op no fresh replica can serve fails with ErrNoReplicas
// instead of returning stale bytes, and a batch write's per-replica
// failures land the addrs in that replica's missed set.
func TestClusterBatchFreshnessPartition(t *testing.T) {
	a, b := newFakeConn(), newFakeConn()
	c := newCluster(t, Config{
		Endpoints:      []string{"a", "b"},
		Dial:           fakeDialer(map[string]Conn{"a": a, "b": b}),
		RepairInterval: time.Hour, // keep repair from healing mid-test
		MaxRetries:     -1,
	})

	wops := make([]pcache.WriteOp, 4)
	for i := range wops {
		wops[i] = pcache.WriteOp{Addr: uint64(i) * lineBytes, Data: bytes.Repeat([]byte{byte(i + 1)}, lineBytes)}
	}
	if failed, err := c.WriteBatchCtx(context.Background(), wops); failed != 0 || err != nil {
		t.Fatalf("batch write failed=%d err=%v (%v)", failed, err, wops[0].Err)
	}
	if a.writes() != 4 || b.writes() != 4 {
		t.Fatalf("write fan-out: a=%d b=%d, want 4/4", a.writes(), b.writes())
	}

	// Poison endpoint a for addr 0: reads for it must route to b.
	c.eps[0].markMissed(0, lineBytes)
	rops := make([]pcache.ReadOp, 4)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * lineBytes, Dst: make([]byte, lineBytes)}
	}
	if failed, err := c.ReadBatchCtx(context.Background(), rops); failed != 0 || err != nil {
		t.Fatalf("batch read failed=%d err=%v (%v)", failed, err, rops[0].Err)
	}
	for i := range rops {
		if !bytes.Equal(rops[i].Dst, bytes.Repeat([]byte{byte(i + 1)}, lineBytes)) {
			t.Fatalf("op %d read back %x", i, rops[i].Dst[:4])
		}
	}

	// Now poison BOTH endpoints for addr 0: the op must fail loudly with
	// ErrNoReplicas while its batchmates are still served.
	c.eps[0].markMissed(0, lineBytes)
	c.eps[1].markMissed(0, lineBytes)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * lineBytes, Dst: make([]byte, lineBytes)}
	}
	failed, err := c.ReadBatchCtx(context.Background(), rops)
	if err != nil || failed != 1 {
		t.Fatalf("poisoned batch read failed=%d err=%v", failed, err)
	}
	if !errors.Is(rops[0].Err, ErrNoReplicas) {
		t.Fatalf("op 0 err = %v, want ErrNoReplicas", rops[0].Err)
	}
	for i := 1; i < len(rops); i++ {
		if rops[i].Err != nil || !bytes.Equal(rops[i].Dst, bytes.Repeat([]byte{byte(i + 1)}, lineBytes)) {
			t.Fatalf("batchmate %d not served: %v %x", i, rops[i].Err, rops[i].Dst[:4])
		}
	}

	// A batch write where one replica fails every op: the write still
	// succeeds (the other replica applied), and the failing replica's
	// missed set holds every addr in the batch.
	b.mu.Lock()
	b.writeErr = func(int) error { return errors.New("disk on fire") }
	b.mu.Unlock()
	for i := range wops {
		wops[i].Err = nil
	}
	if failed, err := c.WriteBatchCtx(context.Background(), wops); failed != 0 || err != nil {
		t.Fatalf("degraded batch write failed=%d err=%v (%v)", failed, err, wops[0].Err)
	}
	c.eps[1].mu.Lock()
	missed := len(c.eps[1].missed)
	c.eps[1].mu.Unlock()
	if missed < len(wops) {
		t.Fatalf("failing replica missed set has %d addrs, want >= %d", missed, len(wops))
	}
}
