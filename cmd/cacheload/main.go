// Cacheload is a closed-loop load generator for cachenetd. It opens N
// connections with P pipelined worker goroutines each, drives a mixed
// read/write workload (single ops or fixed-size batches) against a
// remote store, and — unless verification is off — checks every read
// against a private shadow model using the loss-epoch protocol over
// the EPOCH opcode: a mismatch is legitimate only if the owning set's
// loss epoch advanced since the value was written; otherwise it is
// SILENT corruption and the run fails with exit 1.
//
// Workers own disjoint line ranges, so the shadow needs no cross-worker
// coordination and every mismatch is attributable. On completion (or
// SIGINT/SIGTERM) the run reports throughput, read-latency percentiles,
// and the corruption taxonomy, mirroring cmd/soak's accounting over the
// wire.
//
// With -endpoints a,b,c the generator drives a replicated ClusterClient
// instead of one connection: hedged reads, failover retries, write
// fan-out with read-repair. The shadow protocol is unchanged — the
// cluster epoch is the max over reachable replicas — so killing and
// restarting a replica mid-run must produce zero silent corruption, or
// the run exits 1. -selftest-skew-writes N arms the cluster's injected
// replication bug (every Nth write silently skips one replica) to prove
// the verifier would catch real divergence.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twodcache"
)

// storeClient is the op surface shared by a NetClient and a
// ClusterClient — the generator's worker loop drives either. The batch
// calls carry the ctx deadline in the batch frame, so batch mode and
// -deadline compose.
type storeClient interface {
	ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error)
	WriteCtx(ctx context.Context, addr uint64, data []byte) error
	ReadBatchCtx(ctx context.Context, ops []twodcache.BatchReadOp) (failed int, err error)
	WriteBatchCtx(ctx context.Context, ops []twodcache.BatchWriteOp) (failed int, err error)
	Epoch(addr uint64) (uint64, error)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7420", "cachenetd address")
		conns     = flag.Int("conns", 2, "client connections")
		pipeline  = flag.Int("pipeline", 4, "pipelined worker goroutines per connection")
		duration  = flag.Duration("duration", 2*time.Second, "run length")
		lines     = flag.Int("lines", 4096, "distinct lines in the working set")
		lineBytes = flag.Int("line", 64, "line size in bytes (must match the server)")
		writeFrac = flag.Float64("write-frac", 0.3, "fraction of ops that are writes")
		batch     = flag.Int("batch", 0, "ops per batch frame (0 = single-op frames)")
		deadline  = flag.Duration("deadline", 0, "per-op deadline (0 = none); in batch mode it bounds each whole batch frame")
		verify    = flag.Bool("verify", true, "shadow-check reads via the loss-epoch protocol (needs the server's EPOCH oracle)")
		seed      = flag.Int64("seed", 1, "random seed")
		endpoints = flag.String("endpoints", "", "comma-separated replica addresses: drive a replicated cluster client instead of -addr")
		hedge     = flag.Bool("hedge", true, "hedged reads (cluster mode only)")
		skewEvery = flag.Int("selftest-skew-writes", 0, "arm the cluster's injected replication bug: every Nth write silently skips one replica (must surface as silent corruption)")
	)
	flag.Parse()
	workers := *conns * *pipeline
	if *conns < 1 || *pipeline < 1 || *lines < workers {
		fmt.Fprintln(os.Stderr, "cacheload: need conns>=1, pipeline>=1, lines>=conns*pipeline")
		os.Exit(2)
	}

	// clientFor hands worker w its client; both single-endpoint and
	// cluster clients carry the full surface, batch frames included.
	var (
		clientFor  func(w int) storeClient
		cluster    *twodcache.ClusterClient
		clusterReg = twodcache.NewMetricsRegistry()
	)
	if *endpoints != "" {
		eps := strings.Split(*endpoints, ",")
		cc, err := twodcache.DialCluster(twodcache.ClusterConfig{
			Endpoints: eps,
			Seed:      *seed,
			// Full-line puts of self-contained values: re-applying one is
			// harmless, so the cluster may retry through ambiguity.
			IdempotentWrites:  true,
			DisableHedging:    !*hedge,
			Metrics:           clusterReg,
			SelftestSkewEvery: *skewEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cacheload:", err)
			os.Exit(2)
		}
		defer cc.Close()
		cluster = cc
		clientFor = func(int) storeClient { return cc }
	} else {
		if *skewEvery > 0 {
			fmt.Fprintln(os.Stderr, "cacheload: -selftest-skew-writes needs -endpoints (it is a replication bug)")
			os.Exit(2)
		}
		clients := make([]*twodcache.NetClient, *conns)
		for i := range clients {
			c, err := twodcache.DialNet(*addr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cacheload:", err)
				os.Exit(2)
			}
			defer c.Close()
			clients[i] = c
		}
		clientFor = func(w int) storeClient { return clients[w / *pipeline] }
	}

	// The loss-epoch oracle must be present when verifying.
	if *verify {
		if _, err := clientFor(0).Epoch(0); err != nil {
			if errors.Is(err, twodcache.ErrNetUnsupported) {
				fmt.Fprintln(os.Stderr, "cacheload: server has no EPOCH oracle; rerun with -verify=false or fix the server")
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "cacheload: epoch probe:", err)
			os.Exit(2)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var (
		ops       atomic.Uint64 // completed ops (each batch op counts)
		reads     atomic.Uint64
		writes    atomic.Uint64
		reported  atomic.Uint64 // ops that surfaced a DUE/bounded abort
		accounted atomic.Uint64 // mismatches explained by a loss-epoch advance
		silent    atomic.Uint64 // unaccounted mismatches: must stay zero
		bytesIO   atomic.Uint64
		wg        sync.WaitGroup
	)

	// shadowLine is one verified line: the value acked by the server and
	// the owning set's loss epoch sampled BEFORE the write was issued.
	// Sampling before is conservative in the right direction: an epoch
	// advance during the write window can only turn a real corruption
	// into "accounted", never the reverse. data is a stable per-line
	// buffer (written by copy, never re-allocated), so the steady-state
	// generator allocates nothing per op.
	type shadowLine struct {
		data  []byte
		valid bool
		epoch uint64
	}

	// readLat is the caller-observed single-op read latency (queueing,
	// hedging, retries, and failover included) — the number the hedged
	// vs unhedged comparison in scripts/bench.sh is about.
	readLat := clusterReg.Histogram("load_read_latency", "caller-observed read latency")

	// fatalClientErr reports errors that mean the generator's transport
	// is gone for good. In cluster mode per-replica transport loss is
	// routine (failover handles it); only a closed cluster ends the run.
	fatalClientErr := func(err error) bool {
		if cluster != nil {
			return errors.Is(err, twodcache.ErrClusterClosed)
		}
		return errors.Is(err, twodcache.ErrNetClosed)
	}

	linesPer := *lines / workers
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clientFor(w)
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			base := uint64(w*linesPer) * uint64(*lineBytes)
			addrOf := func(i int) uint64 { return base + uint64(i)*uint64(*lineBytes) }
			shadow := make([]shadowLine, linesPer)

			// verifyRead classifies one read outcome against the shadow.
			verifyRead := func(li int, got []byte, err error) {
				if err != nil {
					reported.Add(1)
					shadow[li].valid = false // contents now unknown
					return
				}
				if !*verify || !shadow[li].valid {
					return
				}
				if bytes.Equal(got, shadow[li].data) {
					return
				}
				now, eerr := cl.Epoch(addrOf(li))
				if eerr == nil && now > shadow[li].epoch {
					accounted.Add(1)
					shadow[li].valid = false
					return
				}
				silent.Add(1)
				fmt.Fprintf(os.Stderr, "cacheload: SILENT corruption at %#x (epoch %d -> %d, %v)\n",
					addrOf(li), shadow[li].epoch, now, eerr)
			}
			// noteWrite installs an acked write into the shadow by copy,
			// so the caller's buffer is free for reuse next iteration.
			noteWrite := func(li int, d []byte, epoch uint64) {
				if shadow[li].data == nil {
					shadow[li].data = make([]byte, len(d))
				}
				copy(shadow[li].data, d)
				shadow[li].valid = true
				shadow[li].epoch = epoch
			}
			// preWrite samples the epoch a write's shadow entry will
			// carry; on epoch failure verification of that line pauses.
			preWrite := func(li int) (uint64, bool) {
				if !*verify {
					return 0, true
				}
				e, err := cl.Epoch(addrOf(li))
				if err != nil {
					shadow[li].valid = false
					return 0, false
				}
				return e, true
			}
			fill := func(buf []byte) {
				rng.Read(buf)
			}

			// Per-worker reusable scratch: op slices, index/epoch shadows,
			// and one line buffer per batch slot (write payloads and read
			// destinations both) — nothing below allocates per iteration.
			k := *batch
			var (
				wops   []twodcache.BatchWriteOp
				rops   []twodcache.BatchReadOp
				lis    []int
				epochs []uint64
				oks    []bool
				bufs   [][]byte
			)
			if k > 0 {
				wops = make([]twodcache.BatchWriteOp, k)
				rops = make([]twodcache.BatchReadOp, k)
				lis = make([]int, k)
				epochs = make([]uint64, k)
				oks = make([]bool, k)
				bufs = make([][]byte, k)
				for j := range bufs {
					bufs[j] = make([]byte, *lineBytes)
				}
			}
			wbuf := make([]byte, *lineBytes)

			// batchAbort handles a call-level batch failure: a deadline
			// (or closed-client race at drain) is a reported outcome for
			// every op in the frame, not a generator fatality.
			batchAbort := func(err error, isWrite bool) bool {
				if fatalClientErr(err) || !errors.Is(err, context.DeadlineExceeded) {
					return false // transport down: end the worker
				}
				for j := 0; j < k; j++ {
					if isWrite {
						writes.Add(1)
					} else {
						reads.Add(1)
					}
					ops.Add(1)
					reported.Add(1)
					shadow[lis[j]].valid = false
				}
				return true
			}

			for ctx.Err() == nil {
				opCtx := context.Background()
				var opCancel context.CancelFunc = func() {}
				if *deadline > 0 {
					opCtx, opCancel = context.WithTimeout(opCtx, *deadline)
				}

				if k > 0 {
					// Batch mode: one frame, k ops, one amortised store
					// call per replica; the deadline bounds the frame.
					if rng.Float64() < *writeFrac {
						for j := 0; j < k; j++ {
							lis[j] = rng.Intn(linesPer)
							epochs[j], oks[j] = preWrite(lis[j])
							fill(bufs[j])
							wops[j] = twodcache.BatchWriteOp{Addr: addrOf(lis[j]), Data: bufs[j]}
						}
						_, err := cl.WriteBatchCtx(opCtx, wops)
						opCancel()
						if err != nil {
							if batchAbort(err, true) {
								continue
							}
							return
						}
						for j := 0; j < k; j++ {
							writes.Add(1)
							ops.Add(1)
							bytesIO.Add(uint64(*lineBytes))
							if wops[j].Err != nil {
								reported.Add(1)
								shadow[lis[j]].valid = false
								continue
							}
							if oks[j] {
								noteWrite(lis[j], bufs[j], epochs[j])
							}
						}
					} else {
						for j := 0; j < k; j++ {
							lis[j] = rng.Intn(linesPer)
							rops[j] = twodcache.BatchReadOp{Addr: addrOf(lis[j]), Dst: bufs[j]}
						}
						_, err := cl.ReadBatchCtx(opCtx, rops)
						opCancel()
						if err != nil {
							if batchAbort(err, false) {
								continue
							}
							return
						}
						for j := 0; j < k; j++ {
							reads.Add(1)
							ops.Add(1)
							bytesIO.Add(uint64(*lineBytes))
							verifyRead(lis[j], rops[j].Dst, rops[j].Err)
						}
					}
					continue
				}

				// Single-op mode, optionally deadline-bounded.
				li := rng.Intn(linesPer)
				if rng.Float64() < *writeFrac {
					epoch, ok := preWrite(li)
					fill(wbuf)
					err := cl.WriteCtx(opCtx, addrOf(li), wbuf)
					opCancel()
					if fatalClientErr(err) {
						return
					}
					writes.Add(1)
					ops.Add(1)
					bytesIO.Add(uint64(*lineBytes))
					if err != nil {
						reported.Add(1)
						shadow[li].valid = false
						continue
					}
					if ok {
						noteWrite(li, wbuf, epoch)
					}
				} else {
					t0 := time.Now()
					got, err := cl.ReadCtx(opCtx, addrOf(li), *lineBytes)
					readLat.Observe(time.Since(t0))
					opCancel()
					if fatalClientErr(err) {
						return
					}
					reads.Add(1)
					ops.Add(1)
					bytesIO.Add(uint64(*lineBytes))
					verifyRead(li, got, err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	total := ops.Load()
	fmt.Printf("cacheload: %d ops in %v — %.0f ops/s, %.1f MiB/s (%d reads, %d writes)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(),
		float64(bytesIO.Load())/(1<<20)/elapsed.Seconds(),
		reads.Load(), writes.Load())
	fmt.Printf("  accounting: %d reported DUE/aborts, %d accounted losses, %d SILENT corruptions\n",
		reported.Load(), accounted.Load(), silent.Load())
	if total > 0 {
		// Whole-process deltas: the generator's own overhead rides along,
		// so this is an upper bound on the client stack's allocation rate.
		fmt.Printf("  client-side: %.1f allocs/op, %.0f alloc-bytes/op\n",
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(total),
			float64(memAfter.TotalAlloc-memBefore.TotalAlloc)/float64(total))
	}
	snap := clusterReg.Snapshot()
	if h := snap.Histogram("load_read_latency"); h.Count > 0 {
		fmt.Printf("  read latency: p50 %v  p90 %v  p99 %v (%d samples)\n",
			h.Quantile(0.50).Round(time.Microsecond),
			h.Quantile(0.90).Round(time.Microsecond),
			h.Quantile(0.99).Round(time.Microsecond), h.Count)
	}
	if cluster != nil {
		fmt.Printf("  cluster: %d hedges (%d won, %d wasted), %d retries, %d read-repairs, %d redials, %d no-replica errors\n",
			snap.Counter("cluster_hedges_total"), snap.Counter("cluster_hedge_wins_total"),
			snap.Counter("cluster_hedge_wasted_total"), snap.Counter("cluster_retries_total"),
			snap.Counter("cluster_read_repairs_total"), snap.Counter("cluster_redials_total"),
			snap.Counter("cluster_no_replica_errors_total"))
		for _, s := range cluster.Endpoints() {
			fmt.Printf("  endpoint %s\n", s)
		}
	}
	if silent.Load() > 0 {
		fmt.Println("cacheload: FAIL — silent corruption detected")
		os.Exit(1)
	}
	if *verify {
		fmt.Println("cacheload: PASS — every mismatch accounted for by a loss-epoch advance")
	}
}
