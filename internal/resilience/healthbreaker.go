package resilience

import (
	"sync"
	"time"
)

// BreakerVerdict is a HealthBreaker's routing decision for one would-be
// operation against the resource it guards.
type BreakerVerdict int

const (
	// BreakerRun: proceed normally (breaker closed or disabled).
	BreakerRun BreakerVerdict = iota
	// BreakerProbe: proceed as the half-open probe; the caller MUST
	// report the outcome with Record(true, ...) or return the slot with
	// Release(true).
	BreakerProbe
	// BreakerShed: skip the guarded operation (resource presumed down).
	BreakerShed
)

// HealthBreaker is the reusable three-state circuit breaker behind the
// engine's per-bank repair breakers: closed → open after
// FailureThreshold consecutive failures, open → half-open after
// OpenTimeout with exactly one probe out at a time, half-open → closed
// after ProbeSuccesses consecutive good probes (or back to open on a
// probe failure). It guards any failure-prone resource — a cache bank's
// recovery rungs, a remote replica endpoint — and is safe for
// concurrent use.
//
// The optional onTransition hook fires under the breaker lock on every
// state change, with the state names ("closed", "open", "half-open")
// and the edge's reason; it must not call back into the breaker.
type HealthBreaker struct {
	cfg          BreakerConfig
	clock        func() time.Time
	onTransition func(from, to, reason string)

	mu       sync.Mutex
	state    breakerState
	fails    int  // consecutive failures while closed
	probeOK  int  // consecutive probe successes while half-open
	probing  bool // a probe is currently out
	openedAt time.Time
}

// NewHealthBreaker builds a breaker. A nil clock selects time.Now; a
// nil onTransition disables the hook. cfg defaults are applied
// (FailureThreshold 5, OpenTimeout 10ms, ProbeSuccesses 2); a Disabled
// cfg yields a breaker that always answers BreakerRun.
func NewHealthBreaker(cfg BreakerConfig, clock func() time.Time, onTransition func(from, to, reason string)) *HealthBreaker {
	if clock == nil {
		clock = time.Now
	}
	return &HealthBreaker{cfg: cfg.withDefaults(), clock: clock, onTransition: onTransition}
}

// Admit asks the breaker how to route a new operation. An open breaker
// whose OpenTimeout has elapsed transitions to half-open here and
// admits the caller as the probe; only one probe is out at a time.
func (b *HealthBreaker) Admit() BreakerVerdict {
	if b.cfg.Disabled {
		return BreakerRun
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return BreakerRun
	case breakerOpen:
		if b.clock().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return BreakerShed
		}
		b.transitionLocked(breakerHalfOpen, "open timeout elapsed")
		b.probing = true
		return BreakerProbe
	default: // half-open
		if b.probing {
			return BreakerShed
		}
		b.probing = true
		return BreakerProbe
	}
}

// Record feeds a finished operation's outcome back. probe must be true
// iff Admit answered BreakerProbe for this operation.
func (b *HealthBreaker) Record(probe, success bool) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.openedAt = b.clock()
			b.transitionLocked(breakerOpen, "failure threshold")
		}
	case breakerHalfOpen:
		if success {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.transitionLocked(breakerClosed, "probe successes")
			}
			return
		}
		b.openedAt = b.clock()
		b.transitionLocked(breakerOpen, "probe failed")
	case breakerOpen:
		// A result landing after an independent re-open: stale, ignore.
	}
}

// Release returns a probe slot without recording an outcome — the
// operation aborted for reasons that say nothing about the resource's
// health (caller deadline, unrelated hard error).
func (b *HealthBreaker) Release(probe bool) {
	if !probe || b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// State reports the current state ("closed", "open", "half-open").
func (b *HealthBreaker) State() string {
	if b.cfg.Disabled {
		return breakerClosed.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// transitionLocked moves the breaker to state `to`, maintaining the
// streak counters and firing the hook. Caller holds b.mu.
func (b *HealthBreaker) transitionLocked(to breakerState, reason string) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case breakerClosed:
		b.fails, b.probeOK = 0, 0
	case breakerOpen, breakerHalfOpen:
		b.probeOK = 0
	}
	if b.onTransition != nil {
		b.onTransition(from.String(), to.String(), reason)
	}
}
