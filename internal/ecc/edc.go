package ecc

import (
	"fmt"

	"twodcache/internal/bitvec"
)

// EDC is the paper's interleaved-parity error detection code EDCn:
// n check bits per word where check bit i stores the parity of every
// n-th data bit starting at i (parity_bit[i] = xor(data[i], data[i+n],
// data[i+2n], ...)). EDCn detects all contiguous errors of up to n bits
// (each flipped bit falls in a distinct parity group). It corrects
// nothing by itself — in the 2D scheme correction is the vertical
// code's job.
type EDC struct {
	k int // data bits
	n int // interleave factor = check bits
}

// NewEDC returns an EDCn code for k data bits. n must be positive and
// not exceed k.
func NewEDC(k, n int) (*EDC, error) {
	if k <= 0 || n <= 0 || n > k {
		return nil, fmt.Errorf("ecc: invalid EDC parameters k=%d n=%d", k, n)
	}
	return &EDC{k: k, n: n}, nil
}

// MustEDC is NewEDC panicking on error.
func MustEDC(k, n int) *EDC {
	e, err := NewEDC(k, n)
	if err != nil {
		panic(err)
	}
	return e
}

// Name returns "EDC<n>".
func (e *EDC) Name() string { return fmt.Sprintf("EDC%d", e.n) }

// DataBits returns the number of data bits per codeword.
func (e *EDC) DataBits() int { return e.k }

// CheckBits returns n, the number of interleaved parity bits.
func (e *EDC) CheckBits() int { return e.n }

// CorrectCapability is 0: EDC is detection-only.
func (e *EDC) CorrectCapability() int { return 0 }

// DetectCapability is n for contiguous bursts.
func (e *EDC) DetectCapability() int { return e.n }

// checks computes the n interleaved parity bits of data.
func (e *EDC) checks(data *bitvec.Vector) *bitvec.Vector {
	c := bitvec.New(e.n)
	for _, i := range data.Ones() {
		c.Flip(i % e.n)
	}
	return c
}

// Encode appends the n parity bits to data.
func (e *EDC) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != e.k {
		panic(fmt.Sprintf("ecc: EDC encode length %d != k %d", data.Len(), e.k))
	}
	cw := bitvec.New(e.k + e.n)
	cw.SetSlice(0, data)
	cw.SetSlice(e.k, e.checks(data))
	return cw
}

// Decode verifies the interleaved parity. EDC never corrects; any parity
// mismatch yields Detected.
func (e *EDC) Decode(cw *bitvec.Vector) (Result, int) {
	if cw.Len() != e.k+e.n {
		panic(fmt.Sprintf("ecc: EDC codeword length %d != %d", cw.Len(), e.k+e.n))
	}
	if e.Syndrome(cw).IsZero() {
		return Clean, 0
	}
	return Detected, 0
}

// Syndrome returns the n-bit parity mismatch vector: bit g is set when
// parity group g is inconsistent. The 2D recovery process uses it to
// identify faulty column groups.
func (e *EDC) Syndrome(cw *bitvec.Vector) *bitvec.Vector {
	s := e.checks(cw.Slice(0, e.k))
	s.Xor(cw.Slice(e.k, e.k+e.n))
	return s
}

// Data extracts the data bits.
func (e *EDC) Data(cw *bitvec.Vector) *bitvec.Vector { return cw.Slice(0, e.k) }

var _ Code = (*EDC)(nil)
