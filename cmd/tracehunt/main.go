// Tracehunt searches seeded deterministic storm traces for silent
// corruptions and ddmin-shrinks the first failure to a minimal
// committable regression trace. This is the offline half of the
// record/replay harness: where cmd/soak -record captures a live
// concurrent run, tracehunt explores the deterministic workload space
// directly — every seed is a complete, replayable experiment.
//
//	go run ./cmd/tracehunt -seeds 1:200 -out internal/replay/testdata/found.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"twodcache/internal/replay"
)

func main() {
	var (
		seedRange  = flag.String("seeds", "1:100", "inclusive seed range start:end to search")
		ops        = flag.Int("ops", 0, "client ops per trace (0 = hard-storm default)")
		faultEvery = flag.Int("fault-every", 0, "client ops per fault event (0 = default)")
		scrubEvery = flag.Int("scrub-every", 0, "client ops per scrub sweep (0 = default)")
		out        = flag.String("out", "", "write the shrunk failing trace here")
		rawOut     = flag.String("raw-out", "", "also write the unshrunk failing trace here")
		noShrink   = flag.Bool("no-shrink", false, "stop at the first failure without shrinking")
	)
	flag.Parse()

	var lo, hi int64
	if _, err := fmt.Sscanf(*seedRange, "%d:%d", &lo, &hi); err != nil {
		fmt.Fprintln(os.Stderr, "tracehunt: bad -seeds (want start:end):", err)
		os.Exit(2)
	}
	p := replay.HardStormParams()
	if *ops > 0 {
		p.Ops = *ops
	}
	if *faultEvery > 0 {
		p.FaultEvery = *faultEvery
	}
	if *scrubEvery > 0 {
		p.ScrubEvery = *scrubEvery
	}

	fails := func(tr replay.Trace) bool {
		res, err := replay.Run(tr)
		return err == nil && res.Silent > 0
	}

	for seed := lo; seed <= hi; seed++ {
		tr := replay.Generate(seed, p)
		res, err := replay.Run(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracehunt: replay:", err)
			os.Exit(2)
		}
		fmt.Printf("seed %d: %d events, %d ops, silent=%d accounted=%d reported=%d\n",
			seed, len(tr.Events), res.Ops, res.Silent, res.Accounted, res.Reported)
		if res.Silent == 0 {
			continue
		}
		fmt.Printf("seed %d FAILS:\n  %s\n", seed, strings.Join(res.SilentDetails, "\n  "))
		if *rawOut != "" {
			if err := tr.SaveFile(*rawOut); err != nil {
				fmt.Fprintln(os.Stderr, "tracehunt:", err)
				os.Exit(2)
			}
			fmt.Println("tracehunt: raw failing trace →", *rawOut)
		}
		if *noShrink {
			os.Exit(1)
		}
		fmt.Println("tracehunt: shrinking...")
		shrunk := replay.Shrink(tr, fails)
		res, _ = replay.Run(shrunk)
		fmt.Printf("tracehunt: shrunk %d → %d events (silent=%d)\n",
			len(tr.Events), len(shrunk.Events), res.Silent)
		for _, d := range res.SilentDetails {
			fmt.Println("  " + d)
		}
		if *out != "" {
			if err := shrunk.SaveFile(*out); err != nil {
				fmt.Fprintln(os.Stderr, "tracehunt:", err)
				os.Exit(2)
			}
			fmt.Println("tracehunt: shrunk trace →", *out)
		}
		os.Exit(1)
	}
	fmt.Println("tracehunt: no silent corruption found in seed range")
}
