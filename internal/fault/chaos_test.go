package fault

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back until the
// listener closes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { l.Close(); wg.Wait() })
	return l
}

// TestChaosProxyTransparent pins that a zero-probability proxy is a
// faithful forwarder: bytes round-trip unmodified.
func TestChaosProxyTransparent(t *testing.T) {
	l := echoServer(t)
	p, err := NewChaosProxy(ChaosProxyConfig{Seed: 1, Target: l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("twodcache"), 1000)
	go func() { c.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read through proxy: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("proxy corrupted the stream")
	}
	if a, r, te, dr, _ := p.Stats(); a != 1 || r+te+dr != 0 {
		t.Fatalf("stats = accepted %d, resets %d, tears %d, drops %d; want 1,0,0,0", a, r, te, dr)
	}
}

// TestChaosProxyReset pins that a certain-reset proxy kills the
// connection: the client observes an error or EOF, never data loss
// disguised as success.
func TestChaosProxyReset(t *testing.T) {
	l := echoServer(t)
	p, err := NewChaosProxy(ChaosProxyConfig{Seed: 7, Target: l.Addr().String(), ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("doomed"))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); err == nil && n > 0 {
		t.Fatalf("read %d bytes through a reset-everything proxy", n)
	}
	if _, r, _, _, _ := p.Stats(); r == 0 {
		t.Fatal("no reset recorded")
	}
}

// TestChaosProxyTearTruncates pins the torn-frame mode: the receiver
// gets a strict prefix (possibly empty) and then a closed connection —
// never the full chunk, never garbage.
func TestChaosProxyTearTruncates(t *testing.T) {
	l := echoServer(t)
	p, err := NewChaosProxy(ChaosProxyConfig{Seed: 3, Target: l.Addr().String(), TearProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("x"), 1024)
	c.Write(msg)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(c)
	if len(got) >= len(msg) {
		t.Fatalf("tear mode forwarded %d of %d bytes", len(got), len(msg))
	}
	if _, _, te, _, _ := p.Stats(); te == 0 {
		t.Fatal("no tear recorded")
	}
}

// TestChaosProxyDeterministic pins seed determinism: two proxies with
// the same seed make identical per-stream decisions for the same
// byte sequence.
func TestChaosProxyDeterministic(t *testing.T) {
	run := func(seed int64) int {
		l := echoServer(t)
		p, err := NewChaosProxy(ChaosProxyConfig{
			Seed: seed, Target: l.Addr().String(),
			TearProb: 0.5, ResetProb: 0.2, ChunkBytes: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := net.Dial("tcp", p.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Write one byte at a time with small pauses so the proxy sees a
		// stable chunk sequence regardless of TCP coalescing.
		for i := 0; i < 64; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, _ := io.ReadAll(c)
		return len(got)
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed forwarded %d vs %d bytes", a, b)
	}
}

// TestChaosProxyCloseInterruptsDrop pins that Close does not wait out a
// black-hole stall.
func TestChaosProxyCloseInterruptsDrop(t *testing.T) {
	l := echoServer(t)
	p, err := NewChaosProxy(ChaosProxyConfig{
		Seed: 5, Target: l.Addr().String(), DropProb: 1, DropStall: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("into the void"))
	time.Sleep(50 * time.Millisecond) // let the drop engage
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a black-holed connection")
	}
}
