package fault

import (
	"math/rand"
	"testing"

	"twodcache/internal/ecc"
	"twodcache/internal/twod"
)

func paperTwoD() TwoDScheme {
	return TwoDScheme{Cfg: twod.Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     ecc.MustEDC(64, 8),
		VerticalGroups: 32,
	}}
}

func TestSchemeNames(t *testing.T) {
	if got := paperTwoD().Name(); got != "2D(EDC8+Intv4,V32)" {
		t.Fatalf("name = %q", got)
	}
	cs := ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: ecc.MustSECDED(64)}
	if got := cs.Name(); got != "SECDED+Intv4" {
		t.Fatalf("name = %q", got)
	}
}

func TestStorageOverheadsMatchFig3(t *testing.T) {
	// Fig. 3: SECDED+Intv4 = 12.5%, OECNED+Intv4 = 89.1%, 2D = 25%.
	sec := ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: ecc.MustSECDED(64)}
	if o := sec.StorageOverhead(); o != 0.125 {
		t.Errorf("SECDED overhead = %v", o)
	}
	oec, err := ecc.NewOECNED(64)
	if err != nil {
		t.Fatal(err)
	}
	oc := ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: oec}
	if o := oc.StorageOverhead(); o < 0.89 || o > 0.90 {
		t.Errorf("OECNED overhead = %v", o)
	}
	td := paperTwoD()
	// 12.5% horizontal + (32/256) vertical over 72/64-wide rows ~ 26.6%;
	// the paper rounds this as 25%.
	if o := td.StorageOverhead(); o < 0.25 || o > 0.28 {
		t.Errorf("2D overhead = %v", o)
	}
}

func TestTwoDSchemeRepairsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := paperTwoD().New(rng)
	tg := inst.Target()
	Apply(tg, SolidCluster(40, 40, 16, 16))
	if !inst.Repair() {
		t.Fatal("2D scheme failed a 16x16 cluster")
	}
}

func TestConventionalSchemeLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := ConventionalScheme{Rows: 64, WordsPerRow: 4, Code: ecc.MustSECDED(64)}
	// 4-bit burst: correctable.
	inst := s.New(rng)
	Apply(inst.Target(), SolidCluster(10, 100, 1, 4))
	if !inst.Repair() {
		t.Fatal("SECDED+Intv4 failed a 4-bit burst")
	}
	// 2-row failure: uncorrectable.
	inst = s.New(rng)
	Apply(inst.Target(), SolidCluster(10, 0, 2, inst.Target().RowBits()))
	if inst.Repair() {
		t.Fatal("SECDED+Intv4 repaired a 2-row failure?!")
	}
}

func TestCoverageMatrixShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := TwoDScheme{Cfg: twod.Config{
		Rows: 64, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 16,
	}}
	cells := CoverageMatrix(s, rng, []int{1, 16}, []int{1, 16}, 3)
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Trials != 3 {
			t.Fatalf("cell %dx%d trials = %d", c.H, c.W, c.Trials)
		}
		if c.Rate() != 1.0 {
			t.Fatalf("cell %dx%d rate = %v, want full coverage", c.H, c.W, c.Rate())
		}
	}
}

func TestCoverageMatrixDetectsLimit(t *testing.T) {
	// Beyond coverage in BOTH dimensions the success rate must drop to
	// zero (solid cluster taller than V and wider than n*d).
	rng := rand.New(rand.NewSource(4))
	s := TwoDScheme{Cfg: twod.Config{
		Rows: 64, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 8,
	}}
	cells := CoverageMatrix(s, rng, []int{24}, []int{24}, 3)
	if cells[0].Rate() != 0 {
		t.Fatalf("out-of-coverage rate = %v, want 0", cells[0].Rate())
	}
}

// TestCoverageMatrixCellsIndependent is the regression test for the
// shared-rng bug: every cell consumed the one campaign rng, so a cell's
// result depended on which cells ran before it. Now a cell keyed by
// (h, w) must produce identical outcomes whether it runs alone or as
// part of a larger grid.
func TestCoverageMatrixCellsIndependent(t *testing.T) {
	s := TwoDScheme{Cfg: twod.Config{
		Rows: 64, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 8,
	}}
	const trials = 4
	full := CoverageMatrix(s, rand.New(rand.NewSource(11)), []int{1, 8, 24}, []int{1, 8, 24}, trials)
	alone := CoverageMatrix(s, rand.New(rand.NewSource(11)), []int{8}, []int{24}, trials)
	if len(alone) != 1 {
		t.Fatalf("alone cells = %d", len(alone))
	}
	var fromFull CoverageCell
	for _, c := range full {
		if c.H == 8 && c.W == 24 {
			fromFull = c
		}
	}
	if fromFull != alone[0] {
		t.Fatalf("cell 8x24 depends on grid composition: full %+v, alone %+v", fromFull, alone[0])
	}
}

// TestCoverageMatrixPinnedCell pins known cells' exact outcomes for a
// fixed seed, plus the seed-derivation mix itself, so any change to the
// per-cell rng derivation (or a regression back to a shared stream) is
// caught.
func TestCoverageMatrixPinnedCell(t *testing.T) {
	s := TwoDScheme{Cfg: twod.Config{
		Rows: 64, WordsPerRow: 2, Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 8,
	}}
	cells := CoverageMatrix(s, rand.New(rand.NewSource(11)), []int{12, 16}, []int{16}, 6)
	want := []CoverageCell{
		{H: 12, W: 16, Trials: 6, Successes: 6}, // within column-mode coverage
		{H: 16, W: 16, Trials: 6, Successes: 0}, // beyond it
	}
	for i, w := range want {
		if cells[i] != w {
			t.Fatalf("pinned cell %d drifted: got %+v, want %+v", i, cells[i], w)
		}
	}
	if got := uint64(cellSeed(0x123456789, 8, 24)); got != 0x8a3f90e95514f5ce {
		t.Fatalf("cellSeed derivation drifted: %#x", got)
	}
}

func TestCoverageCellRateEmpty(t *testing.T) {
	if (CoverageCell{}).Rate() != 0 {
		t.Fatal("empty cell rate should be 0")
	}
}

func TestExhaustiveCoverageSmallArray(t *testing.T) {
	// Not sampled: EVERY solid cluster of every size within coverage at
	// EVERY anchor position on a small array must be corrected. This is
	// the strongest form of the paper's coverage claim that is
	// exhaustively checkable in test time.
	if testing.Short() {
		t.Skip("exhaustive")
	}
	s := TwoDScheme{Cfg: twod.Config{
		Rows: 16, WordsPerRow: 1,
		Horizontal:     ecc.MustEDC(64, 8),
		VerticalGroups: 4,
	}}
	rng := rand.New(rand.NewSource(1))
	// Coverage: 4 rows x 8 physical columns (EDC8, no interleaving).
	for h := 1; h <= 4; h++ {
		for w := 1; w <= 8; w++ {
			inst := s.New(rng)
			tg := inst.Target()
			for r0 := 0; r0 <= tg.Rows()-h; r0++ {
				for c0 := 0; c0 <= tg.RowBits()-w; c0 += 3 { // every 3rd col: 4x faster, still dense
					inst := s.New(rng)
					Apply(inst.Target(), SolidCluster(r0, c0, h, w))
					if !inst.Repair() {
						t.Fatalf("uncovered: %dx%d cluster at (%d,%d)", h, w, r0, c0)
					}
				}
			}
		}
	}
}
