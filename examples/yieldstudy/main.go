// Yieldstudy: explore the paper's §5.2 argument — in-line SECDED
// correction of manufacture-time hard errors rescues yield, but
// without 2D coding it silently spends the soft-error budget; with 2D
// coding both yield and field reliability hold.
package main

import (
	"fmt"

	"twodcache"
)

func main() {
	g := twodcache.YieldGeometry{Words: 16 << 20 * 8 / 64, WordBits: 72}

	fmt.Println("Yield of a 16MB L2 cache vs number of failing cells (Fig. 8(a) model)")
	fmt.Printf("%-10s %-12s %-10s %-16s %-16s\n",
		"faults", "Spare_128", "ECC only", "ECC+Spare_16", "ECC+Spare_32")
	for _, n := range []int{0, 800, 1600, 2400, 3200, 4000} {
		fmt.Printf("%-10d %-12.1f %-10.1f %-16.1f %-16.1f\n", n,
			100*twodcache.CacheYield(g, n, twodcache.YieldPolicy{SpareRows: 128}),
			100*twodcache.CacheYield(g, n, twodcache.YieldPolicy{ECC: true}),
			100*twodcache.CacheYield(g, n, twodcache.YieldPolicy{ECC: true, SpareRows: 16}),
			100*twodcache.CacheYield(g, n, twodcache.YieldPolicy{ECC: true, SpareRows: 32}))
	}

	fmt.Println("\nProbability all soft errors stay correctable (10 x 16MB, 1000 FIT/Mb)")
	fmt.Printf("%-28s", "configuration")
	for y := 0; y <= 5; y++ {
		fmt.Printf(" %5dy", y)
	}
	fmt.Println()
	rows := []struct {
		label string
		her   float64
		twoD  bool
	}{
		{"with 2D coding", 5e-5, true},
		{"no 2D, HER=0.0005%", 5e-6, false},
		{"no 2D, HER=0.001%", 1e-5, false},
		{"no 2D, HER=0.005%", 5e-5, false},
	}
	for _, r := range rows {
		cfg := twodcache.FieldReliability{
			Caches: 10, Geometry: g, FITPerMb: 1000,
			HardErrorRate: r.her, TwoD: r.twoD,
		}
		fmt.Printf("%-28s", r.label)
		for y := 0; y <= 5; y++ {
			fmt.Printf(" %5.1f%%", 100*cfg.SuccessProbability(float64(y)))
		}
		fmt.Println()
	}
	fmt.Println("\nConclusion (paper §5.2): ECC should not be spent on hard errors")
	fmt.Println("unless a multi-bit mechanism like 2D coding backs it up.")
}
