package twodcache

import (
	"strings"
	"testing"
)

func TestPublicArrayRoundTrip(t *testing.T) {
	a := NewPaperArray()
	d := WordFromUint64(0xCAFEBABE12345678, 64)
	a.Write(10, 1, d)
	got, st := a.Read(10, 1)
	if st != ReadClean || !got.Equal(d) {
		t.Fatalf("read %v status %v", got, st)
	}
}

func TestPublicArrayRecovers32x32(t *testing.T) {
	a := NewPaperArray()
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, WordFromUint64(uint64(r*4+w)*0x9E3779B9, 64))
		}
	}
	for r := 100; r < 132; r++ {
		for c := 50; c < 82; c++ {
			a.FlipBit(r, c)
		}
	}
	rep := a.Recover()
	if !rep.Success {
		t.Fatalf("recovery failed: %+v", rep)
	}
	got, st := a.Read(101, 0)
	if st != ReadClean || got.Uint64() != uint64(101*4)*0x9E3779B9 {
		t.Fatalf("post-recovery read wrong: %#x, %v", got.Uint64(), st)
	}
}

func TestPublicCodes(t *testing.T) {
	for _, mk := range []func(int) (Code, error){NewDECTED, NewQECPED, NewOECNED} {
		c, err := mk(64)
		if err != nil {
			t.Fatal(err)
		}
		cw := c.Encode(WordFromUint64(42, 64))
		if res, _ := c.Decode(cw); res != Clean {
			t.Fatalf("%s clean decode: %v", c.Name(), res)
		}
	}
	e, err := NewEDC(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.CheckBits() != 8 {
		t.Fatal("EDC8 check bits")
	}
	s, err := NewSECDED(64)
	if err != nil {
		t.Fatal(err)
	}
	if s.CheckBits() != 8 {
		t.Fatal("SECDED check bits")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Fatal("want 6 workloads")
	}
	if _, err := Workload("OLTP"); err != nil {
		t.Fatal(err)
	}
	if _, err := Workload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPublicCMPRun(t *testing.T) {
	wl, _ := Workload("Web")
	r, err := RunCMP(FatCMP(), Protection{L1TwoD: true, PortStealing: true}, wl, 1, 5000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Fatal("no progress")
	}
}

func TestPublicYield(t *testing.T) {
	g := YieldGeometry{Words: 1 << 21, WordBits: 72}
	y := CacheYield(g, 2400, YieldPolicy{ECC: true, SpareRows: 32})
	if y < 0.9 {
		t.Fatalf("yield = %v", y)
	}
	rel := FieldReliability{Caches: 10, Geometry: g, FITPerMb: 1000, HardErrorRate: 1e-5}
	if p := rel.SuccessProbability(5); p >= 1 || p <= 0 {
		t.Fatalf("reliability = %v", p)
	}
}

func TestExperimentDispatch(t *testing.T) {
	// Analytic experiments run instantly; check dispatch and rendering.
	for _, id := range []string{"fig1b", "fig1c", "fig2", "tab1", "fig7a", "fig7b", "fig8a", "fig8b", "abl-bch"} {
		tabs, err := Experiment(id, QuickOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s: empty result", id)
		}
		if !strings.Contains(tabs[0].Render(), tabs[0].ID) {
			t.Fatalf("%s: render missing id", id)
		}
	}
	if _, err := Experiment("fig99", QuickOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 26 {
		t.Fatalf("experiment ids = %d", len(ExperimentIDs()))
	}
}
