package obs

import (
	"fmt"
	"sync"
	"time"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered entry: exactly one of the accessors is set.
type metric struct {
	kind    metricKind
	help    string
	counter func() uint64
	gauge   func() int64
	hist    *Histogram
}

// Registry holds named metrics and produces coherent snapshots. All
// methods are safe for concurrent use; registration is expected at
// setup time, Snapshot at any time.
type Registry struct {
	mu      sync.Mutex
	names   []string // registration order
	metrics map[string]*metric
	clamps  [][2]string // {lower, upper}: snapshot enforces lower <= upper
	lastC   map[string]uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: map[string]*metric{},
		lastC:   map[string]uint64{},
	}
}

func (r *Registry) register(name string, m *metric) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names = append(r.names, name)
	r.metrics[name] = m
}

// Counter registers and returns a new Counter under name. Panics on a
// duplicate name (metric names identify time series; silently merging
// two would corrupt both).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &metric{kind: kindCounter, help: help, counter: c.Load})
	return c
}

// CounterFunc registers an external monotonic counter read through fn —
// the bridge for subsystems that keep their own atomics (per-bank
// padded counters, array stats) but want to be served by the registry.
// fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &metric{kind: kindCounter, help: help, counter: fn})
}

// Gauge registers and returns a new Gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, &metric{kind: kindGauge, help: help, gauge: g.Load})
	return g
}

// GaugeFunc registers an external gauge read through fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, &metric{kind: kindGauge, help: help, gauge: fn})
}

// Histogram registers and returns a new latency histogram under name;
// empty bounds select DefaultLatencyBounds.
func (r *Registry) Histogram(name, help string, bounds ...time.Duration) *Histogram {
	h := MustHistogram(bounds...)
	r.register(name, &metric{kind: kindHistogram, help: help, hist: h})
	return h
}

// ClampLE declares the invariant counter[lower] <= counter[upper]:
// every snapshot clamps the lower value so the pair never reads
// impossible (a success count exceeding its attempt count, hits
// exceeding accesses). Both names must already be registered counters.
func (r *Registry) ClampLE(lower, upper string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range [2]string{lower, upper} {
		m, ok := r.metrics[n]
		if !ok || m.kind != kindCounter {
			panic(fmt.Sprintf("obs: ClampLE(%q, %q): %q is not a registered counter", lower, upper, n))
		}
	}
	r.clamps = append(r.clamps, [2]string{lower, upper})
}

// HistogramSnapshot is one histogram's coherent state: Counts[i] is the
// number of observations in (Bounds[i-1], Bounds[i]], with the final
// bucket unbounded. Count always equals the sum of Counts.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []uint64
	Count  uint64
	Sum    time.Duration
}

// Mean returns the average observation (zero when empty).
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// CountLE returns how many observations are known to be <= bound.
// exact reports whether bound coincides with a bucket boundary; when it
// does not, the count is the conservative lower estimate from the last
// boundary at or below bound. SLO checks should therefore build their
// histogram with the budget as an explicit bound (see cmd/soak).
func (h HistogramSnapshot) CountLE(bound time.Duration) (n uint64, exact bool) {
	for i, b := range h.Bounds {
		if b > bound {
			return n, false
		}
		n += h.Counts[i]
		if b == bound {
			return n, true
		}
	}
	return n, false
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket — a display aid, not an
// SLO primitive (use CountLE against an exact bound for pass/fail
// decisions). Observations in the overflow bucket report the largest
// finite bound: the histogram cannot resolve beyond it. Zero when
// empty.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, b := range h.Bounds {
		c := float64(h.Counts[i])
		if cum+c >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if c == 0 {
				return b
			}
			frac := (rank - cum) / c
			return lo + time.Duration(frac*float64(b-lo))
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a coherent point-in-time view of a registry: all declared
// cross-counter invariants hold and counters never regress between
// successive snapshots of the same registry.
type Snapshot struct {
	names      []string // registration order, for deterministic export
	help       map[string]string
	kinds      map[string]metricKind
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter value by name (zero if absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge value by name (zero if absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram snapshot by name (zero value if absent).
func (s *Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Names returns the metric names in registration order.
func (s *Snapshot) Names() []string { return append([]string(nil), s.names...) }

// Snapshot reads every metric under the registry lock and applies the
// coherence rules (see the package comment): ClampLE invariants first,
// then monotonic clamping against the previous snapshot. Safe for
// concurrent use; snapshots serialise against each other but never
// block metric writers.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		names:      append([]string(nil), r.names...),
		help:       make(map[string]string, len(r.names)),
		kinds:      make(map[string]metricKind, len(r.names)),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, name := range r.names {
		m := r.metrics[name]
		s.help[name] = m.help
		s.kinds[name] = m.kind
		switch m.kind {
		case kindCounter:
			s.Counters[name] = m.counter()
		case kindGauge:
			s.Gauges[name] = m.gauge()
		case kindHistogram:
			h := m.hist
			hs := HistogramSnapshot{
				Bounds: h.bounds,
				Counts: make([]uint64, len(h.buckets)),
			}
			// Count is derived from the loaded buckets, never from an
			// independently-read total, so Σ Counts == Count by
			// construction.
			for i := range h.buckets {
				hs.Counts[i] = h.buckets[i].Load()
				hs.Count += hs.Counts[i]
			}
			hs.Sum = time.Duration(h.sum.Load())
			s.Histograms[name] = hs
		}
	}
	// Rule 2: declared cross-counter invariants.
	for _, cl := range r.clamps {
		lo, up := cl[0], cl[1]
		if s.Counters[lo] > s.Counters[up] {
			s.Counters[lo] = s.Counters[up]
		}
	}
	// Rule 3: monotonic against the previous snapshot, so rates derived
	// from successive snapshots never go negative.
	for name, v := range s.Counters {
		if prev := r.lastC[name]; v < prev {
			s.Counters[name] = prev
		} else {
			r.lastC[name] = v
		}
	}
	return s
}
