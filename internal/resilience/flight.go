package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"twodcache/internal/pcache"
)

// Rung identifiers for progress reporting (flight.rung).
const (
	rungRetry int32 = iota
	rungWord
	rungFull
	rungDegrade
)

func rungName(r int32) string {
	switch r {
	case rungRetry:
		return "retry"
	case rungWord:
		return "word"
	case rungFull:
		return "full-2d"
	default:
		return "degrade"
	}
}

// flight is one in-flight repair on one bank — the single-flight unit.
// Exactly one goroutine (the leader) advances the repair; every other
// request that trips an uncorrectable on the same bank while it runs
// coalesces onto it, waiting on done under its own deadline. The
// flight's context is cancelled when the repair resolves, when the
// leader's caller cancels, or when the watchdog force-escalates —
// whichever comes first — so a stalled rung always has a release path.
type flight struct {
	bank     int
	array    string
	set, way int
	start    time.Time

	// rung is the deepest ladder rung the repair has entered, for
	// progress reporting to abandoning waiters.
	rung atomic.Int32

	// done resolves the flight: closed exactly once, after which waiters
	// re-issue their access.
	done chan struct{}

	// ctx/cancel bound the repair's blocking points (fault.Stall, and
	// any future long rung). forced records that the cancellation came
	// from the watchdog rather than the leader's caller.
	ctx    context.Context
	cancel context.CancelFunc
	forced atomic.Bool

	once sync.Once
}

// resolve closes done and cancels the repair context, exactly once.
func (fl *flight) resolve() {
	fl.once.Do(func() {
		close(fl.done)
		fl.cancel()
	})
}

// joinFlight returns the bank's in-flight repair, creating one anchored
// at ue's location if none is running. leader reports whether the
// caller now owns the repair (and must finishFlight it). start is the
// moment the DUE entered the ladder — the repair's birth time for
// watchdog age accounting.
func (e *Engine) joinFlight(bank int, ue *pcache.UncorrectableError, start time.Time) (fl *flight, leader bool) {
	e.flightMu.Lock()
	defer e.flightMu.Unlock()
	if fl, ok := e.flights[bank]; ok {
		return fl, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	fl = &flight{
		bank:   bank,
		array:  ue.Array,
		set:    ue.Set,
		way:    ue.Way,
		start:  start,
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
	}
	e.flights[bank] = fl
	return fl, true
}

// finishFlight retires the flight from the bank slot and resolves it,
// releasing every coalesced waiter. Idempotent.
func (e *Engine) finishFlight(fl *flight) {
	e.flightMu.Lock()
	if cur, ok := e.flights[fl.bank]; ok && cur == fl {
		delete(e.flights, fl.bank)
	}
	e.flightMu.Unlock()
	fl.resolve()
}

// progressErr builds the typed abandonment error for fl, stamped with
// the repair's current rung and age.
func (e *Engine) progressErr(fl *flight, cause error) error {
	return &RecoveryInProgressError{
		Bank:    fl.bank,
		Array:   fl.array,
		Set:     fl.set,
		Way:     fl.way,
		Rung:    rungName(fl.rung.Load()),
		Elapsed: e.clock().Sub(fl.start),
		Err:     cause,
	}
}
