package resilience

import (
	"context"
	"sync"
	"time"
)

// WatchdogConfig tunes the recovery watchdog.
type WatchdogConfig struct {
	// Budget is the wall-clock allowance for one in-flight repair;
	// repairs older than this are force-escalated. Zero or negative
	// selects 100ms.
	Budget time.Duration
	// Poll is how often the watchdog scans the in-flight repairs. Zero
	// or negative selects Budget/4 (at least 1ms).
	Poll time.Duration
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Budget <= 0 {
		c.Budget = 100 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = c.Budget / 4
		if c.Poll < time.Millisecond {
			c.Poll = time.Millisecond
		}
	}
	return c
}

// Watchdog is the stuck-repair detector: a background scanner over the
// engine's in-flight repairs that force-escalates any repair running
// past its budget — it decommissions the repair's way (the terminal
// ladder rung, always fast) and cancels the repair context, releasing
// a leader wedged in a stalled rung and every waiter coalesced behind
// it. Recovery thereby has the same property the ladder gives
// correction: it terminates, even when a rung does not.
type Watchdog struct {
	e   *Engine
	cfg WatchdogConfig

	mu     sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}
}

// NewWatchdog builds a watchdog over the engine's in-flight repairs.
// Start it with Start/Stop (or drive Run under your own context). Ages
// are measured with the engine's clock; the poll cadence is wall time.
func (e *Engine) NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{e: e, cfg: cfg.withDefaults()}
}

// ScanOnce inspects every in-flight repair and force-escalates those
// over budget: each victim's way is decommissioned and its repair
// context cancelled, exactly once per flight. Returns how many repairs
// were forced. Exported so tests and deterministic harnesses can drive
// the watchdog without its goroutine.
func (w *Watchdog) ScanOnce() int {
	e := w.e
	now := e.clock()
	var victims []*flight
	e.flightMu.Lock()
	for _, fl := range e.flights {
		if now.Sub(fl.start) > w.cfg.Budget && fl.forced.CompareAndSwap(false, true) {
			victims = append(victims, fl)
		}
	}
	e.flightMu.Unlock()
	// Escalation runs outside flightMu: Degrade takes bank and engine
	// locks, and the leader it wakes may immediately need flightMu to
	// finish the flight.
	for _, fl := range victims {
		e.watchdogFires.Inc()
		e.snk().WatchdogFire(fl.bank, fl.set, fl.way, now.Sub(fl.start))
		e.Degrade(fl.set, fl.way)
		fl.cancel()
	}
	return len(victims)
}

// Run scans until ctx is cancelled.
func (w *Watchdog) Run(ctx context.Context) {
	t := time.NewTicker(w.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.ScanOnce()
		}
	}
}

// Start launches Run in a goroutine; idempotent until Stop.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	w.done = make(chan struct{})
	done := w.done
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
}

// Stop cancels the scanner and waits for it to exit.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	cancel, done := w.cancel, w.done
	w.cancel, w.done = nil, nil
	w.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}
