// Bisr: the manufacture-time test-and-repair flow of §2.3/§5.2. A
// freshly fabricated sub-bank comes back from the fab with stuck-at
// defects; built-in self-test locates them with March C-, the repair
// allocator assigns spare rows (delegating isolated single-bit faults
// to the in-line SECDED), and the repaired view is re-verified. The
// punchline is the paper's synergy: ECC+spares repairs arrays that
// neither resource could rescue alone — and 2D coding then restores the
// soft-error immunity that spending ECC on hard faults gave up.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"twodcache"
)

const (
	rows, cols = 128, 1152 // 16 (72,64) words per row
	defects    = 14
)

func main() {
	build := func() *twodcache.FaultyArray {
		arr, err := twodcache.NewFaultyArray(rows, cols)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7)) // same defect map every time
		for i := 0; i < defects; i++ {
			kind := twodcache.StuckAt0
			if rng.Intn(2) == 1 {
				kind = twodcache.StuckAt1
			}
			if err := arr.Inject(twodcache.CellFault{
				Row: rng.Intn(rows), Col: rng.Intn(cols), Kind: kind,
			}); err != nil {
				log.Fatal(err)
			}
		}
		return arr
	}

	fmt.Printf("sub-bank: %dx%d cells, %d manufacturing defects\n\n", rows, cols, defects)

	res := twodcache.RunMarch(build(), twodcache.MarchCMinus())
	fmt.Printf("March C- (%d operations) found %d failing cells\n",
		res.Operations, len(res.FailingCells()))

	policies := []struct {
		label string
		cfg   twodcache.RepairConfig
	}{
		{"2 spare rows, no ECC", twodcache.RepairConfig{
			Rows: rows, Cols: cols, SpareRows: 2, WordBits: 72}},
		{"in-line SECDED, no spares", twodcache.RepairConfig{
			Rows: rows, Cols: cols, WordBits: 72, ECCSingleBit: true}},
		{"SECDED + 2 spare rows", twodcache.RepairConfig{
			Rows: rows, Cols: cols, SpareRows: 2, WordBits: 72, ECCSingleBit: true}},
	}
	for _, p := range policies {
		out, err := twodcache.SelfRepair(build(), p.cfg, twodcache.MarchCMinus())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", p.label)
		fmt.Printf("  spares used: %d rows, %d cols; ECC absorbed %d faults\n",
			len(out.Plan.RepairRows), len(out.Plan.RepairCols), out.Plan.ECCAbsorbed)
		if out.Repaired {
			fmt.Println("  => die ships")
		} else {
			fmt.Printf("  => die SCRAPPED (%d faults uncoverable)\n", len(out.Plan.Uncovered))
		}
	}

	fmt.Println("\nWith ECC spent on hard faults, a later soft error in the same word")
	fmt.Println("would be uncorrectable — unless 2D coding provides the multi-bit net:")
	rel := twodcache.FieldReliability{
		Caches:        10,
		Geometry:      twodcache.YieldGeometry{Words: rows * cols / 72 * 1024, WordBits: 72},
		FITPerMb:      1000,
		HardErrorRate: float64(defects) / float64(rows*cols),
	}
	fmt.Printf("  P(all soft errors correctable over 5y) without 2D: %.1f%%\n",
		100*rel.SuccessProbability(5))
	rel.TwoD = true
	fmt.Printf("  with 2D coding:                                    %.1f%%\n",
		100*rel.SuccessProbability(5))
}
