package sim

import (
	"fmt"
	"math/rand"

	"twodcache/internal/cache"
	"twodcache/internal/cpu"
	"twodcache/internal/workload"
)

// AccessStats breaks cache traffic into the classes of Fig. 6.
type AccessStats struct {
	// ReadData counts demand data reads.
	ReadData uint64
	// ReadInst counts instruction reads (L2 only; L1-I is not modelled
	// in detail).
	ReadInst uint64
	// Write counts stores (L1) or writebacks (L2).
	Write uint64
	// FillEvict counts line fills and their evictions.
	FillEvict uint64
	// ExtraRead counts the additional reads imposed by 2D coding's
	// read-before-write.
	ExtraRead uint64
}

// Total sums all classes.
func (a AccessStats) Total() uint64 {
	return a.ReadData + a.ReadInst + a.Write + a.FillEvict + a.ExtraRead
}

// Result summarises one simulation run.
type Result struct {
	// System and Workload identify the run.
	System, Workload string
	// Protection is the 2D configuration simulated.
	Protection string
	// Cycles is the measured cycle count (after warm-up).
	Cycles uint64
	// Committed is the number of instructions committed in the
	// measurement window, across all cores.
	Committed uint64
	// L1 aggregates data-cache traffic over all cores; L2 is the shared
	// cache's traffic.
	L1, L2 AccessStats
	// L1ToL1 counts dirty-data transfers between L1s.
	L1ToL1 uint64
	// SQFullStalls and PortRejects aggregate core-side contention
	// events.
	SQFullStalls, PortRejects uint64
	// Recoveries counts injected error-recovery events (when
	// Protection.ErrorEveryCycles is set).
	Recoveries uint64
}

// IPC returns aggregate committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// l2OpKind classifies shared-cache operations.
type l2OpKind uint8

const (
	l2DemandData l2OpKind = iota
	l2DemandInst
	l2Writeback
	l2FillReturn
)

// l2Op is one operation queued at an L2 bank.
type l2Op struct {
	kind    l2OpKind
	line    uint64 // line address (byte address >> log2(lineBytes))
	core    int    // requester (demand ops)
	isStore bool   // demand triggered by a store miss
	arrival uint64 // earliest service cycle
}

// l1Fill is a line arriving at a core's L1.
type l1Fill struct {
	line    uint64
	ready   uint64
	isStore bool
}

// Sim is one configured CMP instance.
type Sim struct {
	cfg  SystemConfig
	prot Protection

	cores  []cpu.Core
	traces []*workload.Stream // one per core (thread 0) for ifetch sampling

	l1      []*cache.Cache
	l1Ports []*cache.Ports
	l1MSHR  []*cache.MSHRFile
	stealQ  [][]uint64 // pending stolen extra reads per core
	xferQ   []int      // pending remote-read port charges per core

	l2       *cache.Cache
	l2MSHR   *cache.MSHRFile
	l2Q      [][]l2Op // per bank
	bankFree []uint64 // per bank: next cycle the bank can start an op

	dir map[uint64]int // dirty line -> owning core

	fills [][]l1Fill // per core

	now       uint64
	nextToken uint64
	loadDone  map[uint64]uint64

	rbwReady   []bool     // per core: read half of a read-before-write done
	replCache  [][]uint64 // per core: FIFO of duplicated dirty lines (Zhang [54])
	l1Blocked  []uint64   // per core: L1 unavailable until this cycle (recovery)
	recoveries uint64
	errRng     *rand.Rand

	res Result
}

// New builds a simulator for the system, protection and workload.
func New(cfg SystemConfig, prot Protection, prof workload.Profile, seed int64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prot.WriteThroughL1 && prot.L1TwoD {
		return nil, fmt.Errorf("sim: WriteThroughL1 and L1TwoD are mutually exclusive")
	}
	if prot.ReplicationEntries > 0 && (prot.L1TwoD || prot.WriteThroughL1) {
		return nil, fmt.Errorf("sim: ReplicationEntries excludes L1TwoD/WriteThroughL1")
	}
	if prot.L1TwoD && prot.PortStealing && prot.StealQueueDepth <= 0 {
		prot.StealQueueDepth = 8
	}
	s := &Sim{
		cfg:      cfg,
		prot:     prot,
		l2:       cache.MustNew(cfg.L2),
		l2MSHR:   cache.NewMSHRFile(cfg.L2.MSHRs),
		l2Q:      make([][]l2Op, cfg.L2.Banks),
		bankFree: make([]uint64, cfg.L2.Banks),
		dir:      make(map[uint64]int),
		loadDone: make(map[uint64]uint64),
	}
	s.res = Result{System: cfg.Name, Workload: prof.Name, Protection: prot.String()}
	if prot.ErrorEveryCycles > 0 {
		s.errRng = rand.New(rand.NewSource(seed ^ 0x2D2D2D))
	}
	for c := 0; c < cfg.Cores; c++ {
		s.l1 = append(s.l1, cache.MustNew(cfg.L1))
		s.l1Ports = append(s.l1Ports, cache.NewPorts(cfg.L1.Banks, cfg.L1.PortsPerBank))
		s.l1MSHR = append(s.l1MSHR, cache.NewMSHRFile(cfg.L1.MSHRs))
		s.stealQ = append(s.stealQ, nil)
		s.xferQ = append(s.xferQ, 0)
		s.rbwReady = append(s.rbwReady, false)
		s.replCache = append(s.replCache, nil)
		s.l1Blocked = append(s.l1Blocked, 0)
		s.fills = append(s.fills, nil)

		var core cpu.Core
		var err error
		if cfg.OoO {
			tr := workload.MustStream(prof, c, 0, seed)
			s.traces = append(s.traces, tr)
			core, err = cpu.NewFatCore(cfg.Width, cfg.Window, cfg.SQSize, tr)
		} else {
			var trs []workload.Source
			var first *workload.Stream
			for th := 0; th < cfg.ThreadsPerCore; th++ {
				st := workload.MustStream(prof, c, th, seed)
				if th == 0 {
					first = st
				}
				trs = append(trs, st)
			}
			s.traces = append(s.traces, first)
			core, err = cpu.NewLeanCore(cfg.Width, cfg.SQSize, trs)
		}
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, core)
	}
	return s, nil
}

// port implements cpu.MemPort for one core.
type port struct {
	s    *Sim
	core int
}

// TryLoad issues a demand load at the core's L1.
func (p port) TryLoad(addr uint64) (uint64, bool) { return p.s.tryLoad(p.core, addr) }

// LoadDone reports load completion.
func (p port) LoadDone(token uint64) bool { return p.s.loadIsDone(token) }

// TryStore retires a store at the core's L1.
func (p port) TryStore(addr uint64) bool { return p.s.tryStore(p.core, addr) }

func (s *Sim) newToken() uint64 {
	s.nextToken++
	return s.nextToken
}

func (s *Sim) loadIsDone(token uint64) bool {
	t, ok := s.loadDone[token]
	if !ok || s.now < t {
		return false
	}
	delete(s.loadDone, token)
	return true
}

func (s *Sim) lineOf(addr uint64) uint64 { return addr >> 6 }

// tryLoad handles a demand load: port arbitration, L1 lookup, MSHR
// allocation and L2 request on a miss, including dirty-in-remote-L1
// detection through the directory.
func (s *Sim) tryLoad(core int, addr uint64) (uint64, bool) {
	if s.now < s.l1Blocked[core] {
		return 0, false
	}
	l1 := s.l1[core]
	bank := l1.Bank(addr)
	if !s.l1Ports[core].Idle(bank) {
		return 0, false
	}
	line := s.lineOf(addr)
	token := s.newToken()
	if l1.Contains(addr) {
		s.l1Ports[core].Take(bank)
		s.res.L1.ReadData++
		l1.Lookup(addr, false)
		s.loadDone[token] = s.now + uint64(s.cfg.L1.HitLatency)
		return token, true
	}
	// Miss: merge into an outstanding MSHR or allocate a new one.
	mshr := s.l1MSHR[core]
	if mshr.Lookup(line) {
		s.l1Ports[core].Take(bank)
		s.res.L1.ReadData++
		l1.Lookup(addr, false) // records the miss
		mshr.Allocate(line, int(token))
		return token, true
	}
	if mshr.Full() {
		return 0, false
	}
	s.l1Ports[core].Take(bank)
	s.res.L1.ReadData++
	l1.Lookup(addr, false)
	mshr.Allocate(line, int(token))
	s.sendL2(l2Op{
		kind:    l2DemandData,
		line:    line,
		core:    core,
		arrival: s.now + uint64(s.cfg.CrossbarLat),
	})
	return token, true
}

// tryStore retires a store: port arbitration (including the 2D
// read-before-write slot or steal-queue admission), L1 update on a hit,
// or a write-allocate miss through the L2.
func (s *Sim) tryStore(core int, addr uint64) bool {
	if s.now < s.l1Blocked[core] {
		return false
	}
	l1 := s.l1[core]
	bank := l1.Bank(addr)
	ports := s.l1Ports[core]
	if s.prot.ReplicationEntries > 0 {
		return s.tryStoreReplicated(core, addr)
	}
	if s.prot.WriteThroughL1 {
		// Write-through, write-around: update the L1 copy if present
		// (never dirty) and duplicate the store into the L2 — the
		// bandwidth/power cost the paper charges this design (§5.1).
		if !ports.Idle(bank) {
			return false
		}
		ports.Take(bank)
		s.res.L1.Write++
		if l1.Contains(addr) {
			l1.Lookup(addr, false)
		}
		s.sendL2(l2Op{kind: l2Writeback, line: s.lineOf(addr), core: core,
			arrival: s.now + uint64(s.cfg.CrossbarLat)})
		return true
	}
	needSteal := false
	if s.prot.L1TwoD {
		if s.prot.PortStealing {
			if len(s.stealQ[core]) >= s.prot.StealQueueDepth {
				return false
			}
			if !ports.Idle(bank) {
				return false
			}
			needSteal = true
		} else if !s.rbwReady[core] {
			// The read half of the read-before-write must occupy a port
			// slot before the write half. A dual-ported L1 fits both in
			// one cycle; a single-ported one spends this cycle on the
			// read and retries the write next cycle.
			if !ports.Idle(bank) {
				return false
			}
			ports.Take(bank)
			s.res.L1.ExtraRead++
			if !ports.Idle(bank) {
				s.rbwReady[core] = true
				return false
			}
		} else if !ports.Idle(bank) {
			return false
		}
	} else if !ports.Idle(bank) {
		return false
	}
	defer func() { s.rbwReady[core] = false }()

	line := s.lineOf(addr)
	if l1.Contains(addr) {
		ports.Take(bank)
		s.res.L1.Write++
		if needSteal {
			s.stealQ[core] = append(s.stealQ[core], addr)
		}
		l1.Lookup(addr, true)
		s.dir[line] = core
		return true
	}
	// Write miss: write-allocate through the L2.
	mshr := s.l1MSHR[core]
	if mshr.Lookup(line) {
		ports.Take(bank)
		s.res.L1.Write++
		if needSteal {
			s.stealQ[core] = append(s.stealQ[core], addr)
		}
		mshr.Allocate(line, -1)
		s.markStoreMiss(core, line)
		return true
	}
	if mshr.Full() {
		return false
	}
	ports.Take(bank)
	s.res.L1.Write++
	if needSteal {
		s.stealQ[core] = append(s.stealQ[core], addr)
	}
	mshr.Allocate(line, -1)
	s.sendL2(l2Op{
		kind:    l2DemandData,
		line:    line,
		core:    core,
		isStore: true,
		arrival: s.now + uint64(s.cfg.CrossbarLat),
	})
	return true
}

// tryStoreReplicated implements Zhang's replication-cache alternative:
// the store writes the (EDC-only) L1 normally AND deposits a duplicate
// into a small fully-associative buffer. A duplicate displaced from the
// full buffer is written through to the L2 — cheap while the buffer
// absorbs rewrites, expensive when contention forces frequent
// evictions (the paper's §6 critique).
func (s *Sim) tryStoreReplicated(core int, addr uint64) bool {
	l1 := s.l1[core]
	bank := l1.Bank(addr)
	ports := s.l1Ports[core]
	if !ports.Idle(bank) {
		return false
	}
	line := s.lineOf(addr)
	if !l1.Contains(addr) {
		// Write-allocate through the L2 like the write-back baseline.
		mshr := s.l1MSHR[core]
		if mshr.Lookup(line) {
			ports.Take(bank)
			s.res.L1.Write++
			mshr.Allocate(line, -1)
			s.markStoreMiss(core, line)
			return true
		}
		if mshr.Full() {
			return false
		}
		ports.Take(bank)
		s.res.L1.Write++
		mshr.Allocate(line, -1)
		s.sendL2(l2Op{kind: l2DemandData, line: line, core: core, isStore: true,
			arrival: s.now + uint64(s.cfg.CrossbarLat)})
		return true
	}
	ports.Take(bank)
	s.res.L1.Write++
	l1.Lookup(addr, true)
	s.dir[line] = core
	// Deposit the duplicate, merging rewrites of the same line.
	rc := s.replCache[core]
	for i, l := range rc {
		if l == line {
			rc = append(append(rc[:i:i], rc[i+1:]...), line) // move to back
			s.replCache[core] = rc
			return true
		}
	}
	if len(rc) >= s.prot.ReplicationEntries {
		// Oldest duplicate spills to the L2.
		victim := rc[0]
		rc = rc[1:]
		s.sendL2(l2Op{kind: l2Writeback, line: victim, core: core,
			arrival: s.now + uint64(s.cfg.CrossbarLat)})
		s.l1[core].CleanLine(victim << 6)
		delete(s.dir, victim)
	}
	s.replCache[core] = append(rc, line)
	return true
}

// markStoreMiss upgrades an outstanding demand to install dirty.
func (s *Sim) markStoreMiss(core int, line uint64) {
	for i := range s.fills[core] {
		if s.fills[core][i].line == line {
			s.fills[core][i].isStore = true
			return
		}
	}
	for b := range s.l2Q {
		for i := range s.l2Q[b] {
			op := &s.l2Q[b][i]
			if op.kind == l2DemandData && op.core == core && op.line == line {
				op.isStore = true
				return
			}
		}
	}
}

// sendL2 enqueues an operation at its bank.
func (s *Sim) sendL2(op l2Op) {
	bank := s.l2.Bank(op.line << 6)
	s.l2Q[bank] = append(s.l2Q[bank], op)
}

// serveL2 runs one cycle of bank service. Each operation occupies its
// bank for L2Occupancy cycles (2D-protected writes for twice that, the
// read-before-write). Fill returns are served before demands and
// writebacks: they complete MSHRs and unblock the rest of the
// hierarchy, so they must never be head-of-line blocked by an op that
// is itself stalled on a full MSHR file.
func (s *Sim) serveL2() {
	occ := uint64(s.cfg.L2Occupancy)
	for b := range s.l2Q {
		for s.bankFree[b] <= s.now {
			servedOne := false
			for pass := 0; pass < 2 && !servedOne; pass++ {
				for i := 0; i < len(s.l2Q[b]); i++ {
					op := s.l2Q[b][i]
					isFill := op.kind == l2FillReturn
					if op.arrival > s.now || (pass == 0) != isFill {
						continue
					}
					if !s.serveL2Op(op) {
						continue // stalled (e.g. MSHR full); try next op
					}
					s.l2Q[b] = append(s.l2Q[b][:i:i], s.l2Q[b][i+1:]...)
					start := s.bankFree[b]
					if start < s.now {
						start = s.now
					}
					s.bankFree[b] = start + occ
					if s.prot.L2TwoD && (op.kind == l2Writeback || op.kind == l2FillReturn) {
						s.bankFree[b] += occ
						s.res.L2.ExtraRead++
					}
					servedOne = true
					break
				}
			}
			if !servedOne {
				break
			}
		}
	}
}

// serveL2Op executes one bank operation; false means retry later (no
// statistics are recorded for stalled attempts).
func (s *Sim) serveL2Op(op l2Op) bool {
	addr := op.line << 6
	switch op.kind {
	case l2DemandData, l2DemandInst:
		// Dirty in a remote L1? Transfer: write the remote data back to
		// the L2 and forward to the requester (Piranha-style).
		if owner, ok := s.dir[op.line]; ok && owner != op.core {
			if present, dirty := s.l1[owner].Invalidate(addr); present && dirty {
				s.countDemand(op)
				s.res.L1ToL1++
				s.xferQ[owner]++ // the remote L1 pays a read slot
				delete(s.dir, op.line)
				s.l2.Fill(addr, true)
				s.res.L2.Write++
				if op.kind == l2DemandData {
					s.deliver(op, uint64(s.cfg.L2.HitLatency)+2)
				}
				return true
			}
			delete(s.dir, op.line)
		}
		if s.l2.Contains(addr) {
			s.countDemand(op)
			s.l2.Lookup(addr, false)
			if op.kind == l2DemandData {
				s.deliver(op, uint64(s.cfg.L2.HitLatency))
			}
			return true
		}
		// L2 miss.
		if s.l2MSHR.Lookup(op.line) {
			s.countDemand(op)
			s.l2.Lookup(addr, false)
			s.l2MSHR.Allocate(op.line, s.packWaiter(op))
			return true
		}
		if s.l2MSHR.Full() {
			return false
		}
		s.countDemand(op)
		s.l2.Lookup(addr, false)
		s.l2MSHR.Allocate(op.line, s.packWaiter(op))
		s.sendL2(l2Op{kind: l2FillReturn, line: op.line, core: -1,
			arrival: s.now + uint64(s.cfg.MemLat)})
		return true
	case l2Writeback:
		s.res.L2.Write++
		if s.l2.Contains(addr) {
			s.l2.Lookup(addr, true)
		} else {
			ev := s.l2.Fill(addr, true)
			s.handleL2Eviction(ev)
		}
		return true
	case l2FillReturn:
		s.res.L2.FillEvict++
		ev := s.l2.Fill(addr, false)
		s.handleL2Eviction(ev)
		for _, w := range s.l2MSHR.Complete(op.line) {
			if w < 0 {
				continue
			}
			dop := s.unpackWaiter(w, op.line)
			s.deliver(dop, uint64(s.cfg.L2.HitLatency))
		}
		return true
	default:
		panic(fmt.Sprintf("sim: unknown l2 op kind %d", op.kind))
	}
}

// countDemand records a served demand read in the Fig. 6 classes.
func (s *Sim) countDemand(op l2Op) {
	if op.kind == l2DemandInst {
		s.res.L2.ReadInst++
	} else {
		s.res.L2.ReadData++
	}
}

// handleL2Eviction accounts a line displaced from the L2. Dirty victims
// go to memory (unbounded bandwidth, so only the event is counted); the
// hierarchy is non-inclusive, so L1 copies are unaffected.
func (s *Sim) handleL2Eviction(ev cache.Eviction) {
	if ev.Valid && ev.Dirty {
		s.res.L2.FillEvict++
	}
}

// packWaiter encodes (core, isStore) into the MSHR's int waiter.
func (s *Sim) packWaiter(op l2Op) int {
	w := op.core << 1
	if op.isStore {
		w |= 1
	}
	return w
}

func (s *Sim) unpackWaiter(w int, line uint64) l2Op {
	return l2Op{kind: l2DemandData, line: line, core: w >> 1, isStore: w&1 == 1}
}

// deliver schedules the filled line's arrival at the requesting L1.
func (s *Sim) deliver(op l2Op, lat uint64) {
	s.fills[op.core] = append(s.fills[op.core], l1Fill{
		line:    op.line,
		ready:   s.now + lat + uint64(s.cfg.CrossbarLat),
		isStore: op.isStore,
	})
}

// serveFills installs ready lines into their L1s, consuming port slots
// (including the 2D read-before-write of the fill write).
func (s *Sim) serveFills(core int) {
	if s.now < s.l1Blocked[core] {
		return
	}
	ports := s.l1Ports[core]
	q := s.fills[core]
	for len(q) > 0 {
		idx := -1
		for i := range q {
			if q[i].ready <= s.now {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		f := q[idx]
		addr := f.line << 6
		bank := s.l1[core].Bank(addr)
		if !ports.Take(bank) {
			break
		}
		s.res.L1.FillEvict++
		if s.prot.L1TwoD {
			if s.prot.PortStealing {
				s.stealQ[core] = append(s.stealQ[core], addr)
			} else if ports.Take(bank) {
				s.res.L1.ExtraRead++
			} else {
				// No slot for the read half: the fill still completes but
				// the read is charged next cycle through the transfer
				// queue.
				s.xferQ[core]++
			}
		}
		ev := s.l1[core].Fill(addr, f.isStore)
		if f.isStore {
			s.dir[f.line] = core
		}
		if ev.Valid {
			evLine := s.lineOf(ev.Addr)
			if owner, ok := s.dir[evLine]; ok && owner == core {
				delete(s.dir, evLine)
			}
			if ev.Dirty {
				s.sendL2(l2Op{kind: l2Writeback, line: evLine, core: core,
					arrival: s.now + uint64(s.cfg.CrossbarLat)})
			}
		}
		for _, w := range s.l1MSHR[core].Complete(f.line) {
			if w >= 0 {
				s.loadDone[uint64(w)] = s.now + uint64(s.cfg.L1.HitLatency)
			}
		}
		q = append(q[:idx:idx], q[idx+1:]...)
	}
	s.fills[core] = q
}

// drainBackground consumes idle L1 port slots with stolen extra reads
// and deferred transfer charges.
func (s *Sim) drainBackground(core int) {
	ports := s.l1Ports[core]
	for ports.Idle(0) && s.xferQ[core] > 0 {
		ports.Take(0)
		s.xferQ[core]--
		s.res.L1.ExtraRead++
	}
	for ports.Idle(0) && len(s.stealQ[core]) > 0 {
		ports.Take(0)
		s.stealQ[core] = s.stealQ[core][1:]
		s.res.L1.ExtraRead++
	}
}

// Step advances the simulation one cycle.
func (s *Sim) Step() {
	if s.errRng != nil && s.prot.ErrorEveryCycles > 0 &&
		s.now > 0 && s.now%s.prot.ErrorEveryCycles == 0 {
		// A detected multi-bit error strikes a random L1: the bank is
		// unavailable while the BIST-style 2D recovery marches over it.
		core := s.errRng.Intn(len(s.cores))
		lat := s.prot.RecoveryLatencyCycles
		if lat == 0 {
			lat = 2048 // rows * words scan of the paper's 256-row bank
		}
		s.l1Blocked[core] = s.now + lat
		s.recoveries++
	}
	for c := range s.l1Ports {
		s.l1Ports[c].NewCycle()
	}
	s.serveL2()
	for c := range s.cores {
		s.serveFills(c)
	}
	for c, core := range s.cores {
		core.Tick(port{s: s, core: c})
		// Instruction-fetch misses go straight to the L2.
		if s.traces[c].IFetchMiss() {
			s.sendL2(l2Op{kind: l2DemandInst, line: s.lineOf(s.traces[c].IFetchAddr()),
				core: c, arrival: s.now + uint64(s.cfg.CrossbarLat)})
		}
	}
	for c := range s.cores {
		s.drainBackground(c)
	}
	s.now++
}

// Run executes warmup cycles (discarded) then measure cycles, returning
// the measured-window result.
func (s *Sim) Run(warmup, measure uint64) Result {
	for i := uint64(0); i < warmup; i++ {
		s.Step()
	}
	s.res.L1 = AccessStats{}
	s.res.L2 = AccessStats{}
	s.res.L1ToL1 = 0
	base := uint64(0)
	for _, c := range s.cores {
		base += c.Committed()
	}
	for i := uint64(0); i < measure; i++ {
		s.Step()
	}
	total := uint64(0)
	var sqStalls, rejects uint64
	for _, c := range s.cores {
		total += c.Committed()
		switch cc := c.(type) {
		case *cpu.FatCore:
			sqStalls += cc.SQFullStalls()
			rejects += cc.PortRejects()
		case *cpu.LeanCore:
			sqStalls += cc.SQFullStalls()
			rejects += cc.PortRejects()
		}
	}
	s.res.Cycles = measure
	s.res.Committed = total - base
	s.res.SQFullStalls = sqStalls
	s.res.PortRejects = rejects
	s.res.Recoveries = s.recoveries
	return s.res
}

// PendingLoads reports outstanding load-completion tokens — an
// observability hook for leak detection in tests.
func (s *Sim) PendingLoads() int { return len(s.loadDone) }

// QueuedL2Ops reports the total operations waiting at L2 banks.
func (s *Sim) QueuedL2Ops() int {
	n := 0
	for _, q := range s.l2Q {
		n += len(q)
	}
	return n
}
