package ecc

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"

	"twodcache/internal/bitvec"
)

// SECDEDSBD is a single-error-correct, double-error-detect,
// single-byte-error-detect code — the extension the paper names (§3,
// refs [12,28]) for giving SECDED the multi-bit detection reach of
// interleaved EDC at very low cost. On top of the Hsiao odd-weight
// construction, the parity-check columns of each data byte are chosen
// so that *any* error pattern confined to one byte produces a syndrome
// that is nonzero and does not alias a single-bit column — detected,
// never miscorrected.
type SECDEDSBD struct {
	k, r, b  int
	name     string
	cols     []uint16
	colIndex map[uint16]int
	// kern is the word-parallel row-mask machinery behind the
	// allocation-free EncodeInto/DecodeInPlace/SyndromeWords path.
	kern colKernel
}

// sbdCache memoises the randomized column search per (k, b).
var sbdCache sync.Map // [2]int -> *SECDEDSBD

// NewSECDEDSbED constructs the code for k data bits with byte width b
// (4 for the classic S4ED that fits in plain-SECDED check counts, 8 for
// full-byte detection). The column assignment is found by seeded
// randomized search and verified exhaustively; results are cached.
func NewSECDEDSbED(k, b int) (*SECDEDSBD, error) {
	if b != 4 && b != 8 {
		return nil, fmt.Errorf("ecc: SbED byte width must be 4 or 8, got %d", b)
	}
	if k <= 0 || k%b != 0 {
		return nil, fmt.Errorf("ecc: SECDED-S%dED needs k divisible by %d, got %d", b, b, k)
	}
	if v, ok := sbdCache.Load([2]int{k, b}); ok {
		return v.(*SECDEDSBD), nil
	}
	// A byte's b columns are linearly independent, so they span a
	// b-dimensional subspace; with r = b that is the whole space and
	// every check column would alias some byte pattern, so r > b is
	// required. Start from max(SECDED's r, b+1) and grow.
	base := MustSECDED(k).CheckBits()
	if base < b+1 {
		base = b + 1
	}
	for r := base; r <= base+3 && r <= 16; r++ {
		if s := searchSBD(k, r, b); s != nil {
			sbdCache.Store([2]int{k, b}, s)
			return s, nil
		}
	}
	return nil, fmt.Errorf("ecc: SECDED-S%dED search failed for k=%d", b, k)
}

// NewSECDEDSBD constructs the full-byte (b=8) variant.
func NewSECDEDSBD(k int) (*SECDEDSBD, error) { return NewSECDEDSbED(k, 8) }

// MustSECDEDSBD panics on error (b=8).
func MustSECDEDSBD(k int) *SECDEDSBD {
	s, err := NewSECDEDSBD(k)
	if err != nil {
		panic(err)
	}
	return s
}

// MustSECDEDSbED panics on error.
func MustSECDEDSbED(k, b int) *SECDEDSBD {
	s, err := NewSECDEDSbED(k, b)
	if err != nil {
		panic(err)
	}
	return s
}

// searchSBD attempts to find a valid column assignment with r check
// bits, trying several seeded shuffles.
func searchSBD(k, r, b int) *SECDEDSBD {
	// Candidate columns: odd weight >= 3 (weight-1 belongs to the check
	// bits' identity part).
	var candidates []uint16
	for c := uint16(1); int(c) < 1<<uint(r); c++ {
		if w := bits.OnesCount16(c); w%2 == 1 && w >= 3 {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) < k {
		return nil
	}
	rng := rand.New(rand.NewSource(int64(k)*131 + int64(r)*17 + int64(b)))
	for attempt := 0; attempt < 400; attempt++ {
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		if s := trySBD(k, r, b, candidates); s != nil {
			return s
		}
	}
	return nil
}

// trySBD greedily assigns columns byte by byte, maintaining each byte's
// subset-XOR closure, then verifies the global no-alias condition.
func trySBD(k, r, b int, candidates []uint16) *SECDEDSBD {
	s := &SECDEDSBD{k: k, r: r, b: b, cols: make([]uint16, k+r), colIndex: map[uint16]int{}}
	used := map[uint16]bool{}
	// forbidden holds odd-weight subset XORs (|S| >= 2) of completed
	// bytes: a later column equal to one would let that byte's error
	// pattern masquerade as a single-bit error in the new column.
	forbidden := map[uint16]bool{}
	// Check-bit identity columns.
	for i := 0; i < r; i++ {
		s.cols[k+i] = 1 << uint(i)
		used[1<<uint(i)] = true
	}
	for byteIdx := 0; byteIdx < k/b; byteIdx++ {
		// closure holds XORs of all non-empty subsets of this byte's
		// chosen columns.
		closure := map[uint16]bool{}
		for bit := 0; bit < b; bit++ {
			// Scan the (shuffled) candidate list for a column that keeps
			// the byte's subset-XOR closure free of 0, duplicates, and
			// odd-weight aliases to already-used columns.
			placed := false
			for _, c := range candidates {
				if used[c] || closure[c] || forbidden[c] {
					continue // duplicate, subset collision, or alias
				}
				ok := true
				for x := range closure {
					xc := x ^ c
					if xc == 0 || closure[xc] ||
						(used[xc] && bits.OnesCount16(xc)%2 == 1) {
						// xc already a subset XOR => two subsets alias;
						// odd-weight alias to a used column would
						// miscorrect. (Verified globally below too.)
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				// Accept c.
				newClosure := map[uint16]bool{c: true}
				for x := range closure {
					newClosure[x] = true
					newClosure[x^c] = true
				}
				closure = newClosure
				s.cols[byteIdx*b+bit] = c
				used[c] = true
				placed = true
				break
			}
			if !placed {
				return nil
			}
		}
		// Freeze this byte's odd multi-column subset XORs.
		for x := range closure {
			if bits.OnesCount16(x)%2 == 1 {
				forbidden[x] = true
			}
		}
	}
	for j, c := range s.cols {
		s.colIndex[c] = j + 1
	}
	if !s.verify() {
		return nil
	}
	s.kern = makeColKernel(k, r, s.cols)
	s.name = fmt.Sprintf("SECDED-S%dED", b)
	return s
}

// verify exhaustively checks the single-byte-detection property: every
// error confined to one data byte yields a syndrome that is nonzero and
// not equal to any single column (so the decoder reports Detected
// rather than miscorrecting).
func (s *SECDEDSBD) verify() bool {
	for byteIdx := 0; byteIdx < s.k/s.b; byteIdx++ {
		group := s.cols[byteIdx*s.b : byteIdx*s.b+s.b]
		for mask := 2; mask < 1<<uint(s.b); mask++ { // multi-bit patterns only
			if bits.OnesCount16(uint16(mask)) < 2 {
				continue
			}
			var syn uint16
			for bit := 0; bit < s.b; bit++ {
				if mask&(1<<uint(bit)) != 0 {
					syn ^= group[bit]
				}
			}
			if syn == 0 {
				return false
			}
			if s.colIndex[syn] != 0 {
				return false
			}
		}
	}
	return true
}

// Name returns "SECDED-S4ED" or "SECDED-S8ED".
func (s *SECDEDSBD) Name() string { return s.name }

// DataBits returns the data width.
func (s *SECDEDSBD) DataBits() int { return s.k }

// CheckBits returns the check-bit count.
func (s *SECDEDSBD) CheckBits() int { return s.r }

// CorrectCapability is 1 (single-bit correction).
func (s *SECDEDSBD) CorrectCapability() int { return 1 }

// DetectCapability is b: any error within one b-bit byte is detected
// (plus all double-bit errors anywhere).
func (s *SECDEDSBD) DetectCapability() int { return s.b }

// ByteWidth returns b.
func (s *SECDEDSBD) ByteWidth() int { return s.b }

// Encode appends check bits.
func (s *SECDEDSBD) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != s.k {
		panic(fmt.Sprintf("ecc: SBD encode length %d != k %d", data.Len(), s.k))
	}
	cw := bitvec.New(s.k + s.r)
	s.EncodeInto(cw.AsCodeword(), data.AsCodeword())
	return cw
}

// EncodeInto writes data plus check bits into cw without allocating.
func (s *SECDEDSBD) EncodeInto(cw, data bitvec.Codeword) {
	s.kern.encodeInto(cw, data, s.Name())
}

func (s *SECDEDSBD) syndrome(cw *bitvec.Vector) uint16 {
	return s.kern.syndromeWords(cw.Words())
}

// SyndromeWords returns the packed syndrome of a codeword view,
// allocation-free.
func (s *SECDEDSBD) SyndromeWords(cw bitvec.Codeword) uint64 {
	return uint64(s.kern.syndromeWords(cw.Words()))
}

// Decode corrects single-bit errors and detects double-bit and
// single-byte multi-bit errors.
func (s *SECDEDSBD) Decode(cw *bitvec.Vector) (Result, int) {
	if cw.Len() != s.k+s.r {
		panic(fmt.Sprintf("ecc: SBD codeword length %d != %d", cw.Len(), s.k+s.r))
	}
	return s.DecodeInPlace(cw.AsCodeword())
}

// DecodeInPlace is Decode on a word view without allocating.
func (s *SECDEDSBD) DecodeInPlace(cw bitvec.Codeword) (Result, int) {
	return s.kern.decodeInPlace(cw, s.colIndex, s.Name())
}

// Data extracts the data bits.
func (s *SECDEDSBD) Data(cw *bitvec.Vector) *bitvec.Vector { return cw.Slice(0, s.k) }

// SyndromeBits implements HorizontalCode.
func (s *SECDEDSBD) SyndromeBits(cw *bitvec.Vector) uint64 { return uint64(s.syndrome(cw)) }

// ParityColumn implements HorizontalCode.
func (s *SECDEDSBD) ParityColumn(j int) uint64 { return uint64(s.cols[j]) }

var _ HorizontalCode = (*SECDEDSBD)(nil)
