// Package stats provides the small statistical toolbox used by the
// yield models and the SimFlex-style sampled simulations: Poisson and
// binomial distributions, sample summaries, confidence intervals, and
// matched-pair comparison of simulation runs.
package stats

import (
	"fmt"
	"math"
)

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda), computed in log
// space for numerical stability.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda < 0 || k < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lp := -lambda + float64(k)*math.Log(lambda) - logFactorial(k)
	return math.Exp(lp)
}

// PoissonCDF returns P(X <= k) for X ~ Poisson(lambda).
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	// Large-lambda normal approximation with continuity correction.
	if lambda > 5000 {
		z := (float64(k) + 0.5 - lambda) / math.Sqrt(lambda)
		return normCDF(z)
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += PoissonPMF(lambda, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomialTailLE returns P(X <= k) for X ~ Binomial(n, p), using a
// Poisson approximation when n is large and p small, a normal
// approximation when np(1-p) is large, and the exact sum otherwise.
func BinomialTailLE(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	mean := float64(n) * p
	if float64(n) > 1e5 && p < 1e-3 {
		return PoissonCDF(mean, k)
	}
	variance := mean * (1 - p)
	if variance > 2500 {
		z := (float64(k) + 0.5 - mean) / math.Sqrt(variance)
		return normCDF(z)
	}
	// Exact sum in log space.
	sum := 0.0
	for i := 0; i <= k; i++ {
		lp := logChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p)
		sum += math.Exp(lp)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logFactorial(n int) float64 {
	if n < 2 {
		return 0
	}
	// Stirling series with correction; exact for small n.
	if n < 32 {
		s := 0.0
		for i := 2; i <= n; i++ {
			s += math.Log(float64(i))
		}
		return s
	}
	x := float64(n)
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) + 1/(12*x)
}

func logChoose(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Sample accumulates observations and summarises them.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean (normal approximation, as SimFlex sampling uses).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return math.Inf(1)
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// MatchedPair compares paired baseline/treatment observations (same
// workload sample run under both configurations — the paper's
// matched-pair relative-performance methodology) and reports the mean
// relative delta (treatment-baseline)/baseline with its 95% CI.
type MatchedPair struct {
	deltas Sample
}

// Add records one paired observation. baseline must be nonzero.
func (m *MatchedPair) Add(baseline, treatment float64) error {
	if baseline == 0 {
		return fmt.Errorf("stats: zero baseline in matched pair")
	}
	m.deltas.Add((treatment - baseline) / baseline)
	return nil
}

// MeanDelta returns the average relative difference.
func (m *MatchedPair) MeanDelta() float64 { return m.deltas.Mean() }

// CI95 returns the half-width of the 95% CI on the mean delta.
func (m *MatchedPair) CI95() float64 { return m.deltas.CI95() }

// N returns the number of pairs.
func (m *MatchedPair) N() int { return m.deltas.N() }

// HoursPerYear is the 8766-hour year (365.25 days) used by the
// reliability models.
const HoursPerYear = 8766.0
