package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as `# TYPE name counter`,
// gauges as gauges, histograms as cumulative `_bucket{le="..."}` series
// plus `_sum`/`_count`, durations in seconds.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range s.names {
		switch s.kinds[name] {
		case kindCounter:
			if err := promHeader(w, name, s.help[name], "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
				return err
			}
		case kindGauge:
			if err := promHeader(w, name, s.help[name], "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
				return err
			}
		case kindHistogram:
			if err := promHeader(w, name, s.help[name], "histogram"); err != nil {
				return err
			}
			h := s.Histograms[name]
			cum := uint64(0)
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					name, formatSeconds(b.Seconds()), cum); err != nil {
					return err
				}
			}
			cum += h.Counts[len(h.Counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				name, formatSeconds(h.Sum.Seconds()), name, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promHeader writes the # HELP / # TYPE preamble.
func promHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// formatSeconds renders a float without exponent noise for round values.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Vars returns the snapshot as a plain name→value map suitable for
// expvar/JSON export: counters and gauges as numbers, histograms as
// {"count", "sum_ns", "buckets": {le_ns: n}} maps.
func (s *Snapshot) Vars() map[string]any {
	out := make(map[string]any, len(s.names))
	for _, name := range s.names {
		switch s.kinds[name] {
		case kindCounter:
			out[name] = s.Counters[name]
		case kindGauge:
			out[name] = s.Gauges[name]
		case kindHistogram:
			h := s.Histograms[name]
			buckets := make(map[string]uint64, len(h.Counts))
			for i, b := range h.Bounds {
				buckets[strconv.FormatInt(int64(b), 10)] = h.Counts[i]
			}
			buckets["inf"] = h.Counts[len(h.Counts)-1]
			out[name] = map[string]any{
				"count":   h.Count,
				"sum_ns":  int64(h.Sum),
				"buckets": buckets,
			}
		}
	}
	return out
}

// PublishExpvar publishes the registry under the given expvar name as a
// Func that snapshots on demand (so /debug/vars always serves coherent,
// clamped values). Re-publishing an existing name is a no-op: expvar
// forbids duplicates and observability setup must be idempotent.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot().Vars() }))
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
}
