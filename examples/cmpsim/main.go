// Cmpsim: run the paper's two CMP baselines under an OLTP-like workload
// and measure what 2D protection of the L1 data caches and the shared
// L2 costs in IPC — with and without port stealing (the Fig. 5
// experiment in miniature).
package main

import (
	"fmt"
	"log"

	"twodcache"
)

const (
	warmup  = 100000
	measure = 50000
	samples = 3
)

func main() {
	wl, err := twodcache.Workload("OLTP")
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		label string
		prot  twodcache.Protection
	}{
		{"L1 only (no port stealing)", twodcache.Protection{L1TwoD: true}},
		{"L1 + port stealing", twodcache.Protection{L1TwoD: true, PortStealing: true}},
		{"L2 only", twodcache.Protection{L2TwoD: true}},
		{"L1(PS) + L2", twodcache.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true}},
	}
	for _, sys := range []twodcache.SystemConfig{twodcache.FatCMP(), twodcache.LeanCMP()} {
		base, err := twodcache.RunCMP(sys, twodcache.Protection{}, wl, 1, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s CMP, OLTP: baseline IPC %.3f (aggregate over %d cores)\n",
			sys.Name, base.IPC(), sys.Cores)
		for _, c := range configs {
			rep, err := twodcache.MeasureIPCLoss(sys, c.prot, wl, samples, warmup, measure)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s IPC loss %5.2f%% (±%.2f)\n", c.label, rep.MeanLossPct, rep.CI95Pct)
		}
		full, err := twodcache.RunCMP(sys,
			twodcache.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true},
			wl, 1, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		extra := float64(full.L1.ExtraRead) / float64(full.L1.Total()) * 100
		fmt.Printf("  read-before-write adds %.0f%% of L1 traffic (paper: ~20%%)\n\n", extra)
	}
}
