package trace

import (
	"fmt"
	"io"

	"twodcache/internal/workload"
)

// Replayer feeds a recorded trace to a simulated core, looping back to
// the start when the recording runs out (simulations usually need more
// instructions than any finite recording holds). It implements
// workload.Source.
type Replayer struct {
	instrs []workload.Instr
	pos    int
	loops  int
}

// NewReplayer loads a whole trace into memory for replay.
func NewReplayer(r io.Reader) (*Replayer, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	ins, err := tr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(ins) == 0 {
		return nil, fmt.Errorf("trace: empty trace cannot drive a core")
	}
	return &Replayer{instrs: ins}, nil
}

// Next returns the next recorded instruction, looping at the end.
func (r *Replayer) Next() workload.Instr {
	in := r.instrs[r.pos]
	r.pos++
	if r.pos == len(r.instrs) {
		r.pos = 0
		r.loops++
	}
	return in
}

// Len returns the number of recorded instructions.
func (r *Replayer) Len() int { return len(r.instrs) }

// Loops returns how many times the recording has wrapped.
func (r *Replayer) Loops() int { return r.loops }

var _ workload.Source = (*Replayer)(nil)

// Summary reports aggregate statistics of a trace, for inspection
// tooling.
type Summary struct {
	// Instructions is the total record count.
	Instructions int
	// Loads and Stores count the memory operations.
	Loads, Stores int
	// UniqueLines counts distinct 64-byte lines touched.
	UniqueLines int
}

// MemFrac returns the memory-instruction fraction.
func (s Summary) MemFrac() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Loads+s.Stores) / float64(s.Instructions)
}

// WriteFrac returns the store fraction of memory operations.
func (s Summary) WriteFrac() float64 {
	mem := s.Loads + s.Stores
	if mem == 0 {
		return 0
	}
	return float64(s.Stores) / float64(mem)
}

// Summarize scans a trace and reports its statistics.
func Summarize(r io.Reader) (Summary, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	lines := map[uint64]bool{}
	for {
		in, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s, err
		}
		s.Instructions++
		if in.IsMem {
			if in.IsWrite {
				s.Stores++
			} else {
				s.Loads++
			}
			lines[in.Addr>>6] = true
		}
	}
	s.UniqueLines = len(lines)
	return s, nil
}
