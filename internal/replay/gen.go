package replay

import (
	"math/rand"

	"twodcache/internal/fault"
	"twodcache/internal/pcache"
)

// GenParams shapes a generated storm trace: the deterministic,
// single-threaded analogue of the cmd/soak workload. Time is replaced
// by operation count — one fault event every FaultEvery client ops,
// one full scrub sweep every ScrubEvery ops — which mirrors the
// hard-storm regime (many fault events per scrub) without a clock.
type GenParams struct {
	Cfg Config
	// Ops is the number of client access events.
	Ops int
	// Clients is the number of client streams (round-robin).
	Clients int
	// FaultEvery inserts one multi-bit fault event per that many client
	// ops (0 disables faults).
	FaultEvery int
	// ScrubEvery inserts one full scrub sweep (all banks) per that many
	// client ops (0 disables scrubbing).
	ScrubEvery int
	// Lines is the client address space in cache lines (default
	// 4*Sets, the soak's conflict-heavy working set).
	Lines int
}

// HardStormParams mirrors the ROADMAP hard-storm soak configuration
// (`-banks 1 -fault-interval 60us -scrub-interval 10ms`) in operation
// counts: a single bank, a fault event roughly every 25 client ops and
// a scrub sweep every ~170 faults' worth of traffic, so multi-row
// damage accumulates past row-recoverability between sweeps exactly as
// it does in the live soak.
func HardStormParams() GenParams {
	return GenParams{
		Cfg: Config{
			Sets: 64, Ways: 4, LineBytes: 64, Banks: 1,
			VerticalGroups: 32, SpareRows: 8, MaxRetries: 1,
		},
		Ops:        12000,
		Clients:    4,
		FaultEvery: 25,
		ScrubEvery: 4000,
	}
}

// Generate builds a seeded storm trace. Every random stream — one per
// client plus the storm — is derived from the seed with the splitmix64
// discipline (fault.DeriveSeed), so streams are uncorrelated and the
// trace depends on nothing but (seed, params).
func Generate(seed int64, p GenParams) Trace {
	if p.Clients <= 0 {
		p.Clients = 1
	}
	if p.Lines <= 0 {
		p.Lines = 4 * p.Cfg.Sets
	}
	tr := Trace{Cfg: p.Cfg}

	// Geometry for fault placement, via a throwaway cache (the replayer
	// builds its own): rows and physical row width per sub-array.
	probe := pcache.MustNew(pcache.Config{
		Sets: p.Cfg.Sets, Ways: p.Cfg.Ways, LineBytes: p.Cfg.LineBytes,
		VerticalGroups: p.Cfg.VerticalGroups, SECDEDHorizontal: p.Cfg.SECDED,
		Banks: p.Cfg.Banks,
	}, pcache.NewMapBacking(p.Cfg.LineBytes))
	banks := probe.NumBanks()
	dataArr, tagArr := probe.BankArrays(0)
	dataRows, dataBits := dataArr.Rows(), dataArr.RowBits()
	tagRows, tagBits := tagArr.Rows(), tagArr.RowBits()

	clientRng := make([]*rand.Rand, p.Clients)
	for i := range clientRng {
		clientRng[i] = rand.New(rand.NewSource(fault.DeriveSeed(seed, uint64(100+i))))
	}
	stormRng := rand.New(rand.NewSource(fault.DeriveSeed(seed, 7)))
	dist := fault.ModernDist()

	lineBytes := uint64(p.Cfg.LineBytes)
	for i := 0; i < p.Ops; i++ {
		id := i % p.Clients
		rng := clientRng[id]
		// Disjoint line ownership, like the soak: line % clients == id.
		l := uint64(rng.Intn((p.Lines+p.Clients-1)/p.Clients))*uint64(p.Clients) + uint64(id)
		addr := l*lineBytes + uint64(rng.Intn(p.Cfg.LineBytes))
		if rng.Intn(5) < 2 { // 40% writes
			tr.Events = append(tr.Events, Event{Op: OpWrite, Client: id, Addr: addr, Val: byte(rng.Intn(256))})
		} else {
			tr.Events = append(tr.Events, Event{Op: OpRead, Client: id, Addr: addr})
		}
		if p.FaultEvery > 0 && i%p.FaultEvery == p.FaultEvery-1 {
			bank := stormRng.Intn(banks)
			hitTags := stormRng.Intn(4) == 0
			rows, cols := dataRows, dataBits
			if hitTags {
				rows, cols = tagRows, tagBits
			}
			pat := fault.SoftEvent(stormRng, rows, cols, dist)
			for _, fl := range pat.Flips {
				tr.Events = append(tr.Events, Event{
					Op: OpFlip, Bank: bank, Tags: hitTags, Row: fl.Row, Col: fl.Col,
				})
			}
		}
		if p.ScrubEvery > 0 && i%p.ScrubEvery == p.ScrubEvery-1 {
			for b := 0; b < banks; b++ {
				tr.Events = append(tr.Events, Event{Op: OpScrub, Bank: b})
			}
		}
	}
	return tr
}
