package experiments

import (
	"fmt"

	"twodcache/internal/ecc"
	"twodcache/internal/vlsi"
)

// fig7Scheme is one bar group of Fig. 7.
type fig7Scheme struct {
	label        string
	code         string
	interleave   int
	verticalRows int
	// accessFactor scales dynamic power for extra traffic: 1.2 for 2D
	// (the ~20% read-before-write reads of Fig. 6).
	accessFactor float64
	// writeThroughL2 charges the L2-duplication power of a
	// write-through L1 (the paper's right-most bar in Fig. 7(a)).
	writeThroughL2 bool
}

// Fig7 reproduces Fig. 7(a) or (b): code storage area, coding latency
// and dynamic power of each scheme achieving 32-bit (32x32 for 2D)
// coverage, normalised to SECDED with 2-way physical interleaving.
func Fig7(l2 bool, opt Options) Table {
	tech := vlsi.Default70nm()
	var spec vlsi.CacheSpec
	var schemes []fig7Scheme
	var id, title string
	if !l2 {
		id, title = "fig7a", "Fig. 7(a): 64kB L1 data cache overheads (norm. to SECDED+Intv2)"
		spec = vlsi.L1Spec64KB()
		schemes = []fig7Scheme{
			{label: "2D(EDC8+Intv4,EDC32)", code: "EDC8", interleave: 4, verticalRows: 32, accessFactor: 1.2},
			{label: "DECTED+Intv16", code: "DECTED", interleave: 16, accessFactor: 1},
			{label: "QECPED+Intv8", code: "QECPED", interleave: 8, accessFactor: 1},
			{label: "OECNED+Intv4", code: "OECNED", interleave: 4, accessFactor: 1},
			{label: "EDC8+Intv4(Wr-through)", code: "EDC8", interleave: 4, accessFactor: 1, writeThroughL2: true},
		}
	} else {
		id, title = "fig7b", "Fig. 7(b): 4MB L2 cache overheads (norm. to SECDED+Intv2)"
		spec = vlsi.L2Spec4MB()
		schemes = []fig7Scheme{
			{label: "2D(EDC16+Intv2,EDC32)", code: "EDC16", interleave: 2, verticalRows: 32, accessFactor: 1.2},
			{label: "DECTED+Intv16", code: "DECTED", interleave: 16, accessFactor: 1},
			{label: "QECPED+Intv8", code: "QECPED", interleave: 8, accessFactor: 1},
			{label: "OECNED+Intv4", code: "OECNED", interleave: 4, accessFactor: 1},
		}
	}

	baseSpec := ecc.SpecCorrecting("SECDED", spec.DataWordBits, 1)
	base, err := vlsi.CodedCache(tech, spec, baseSpec, 2, 0, vlsi.BalancedOpt)
	if err != nil {
		panic(fmt.Sprintf("fig7 baseline: %v", err))
	}
	// Write-through duplication charges a share of the companion L2's
	// access energy per L1 access (store fraction ~0.3 of traffic).
	l2Companion, err := vlsi.CodedCache(tech, vlsi.L2Spec4MB(),
		ecc.SpecCorrecting("SECDED", 256, 1), 2, 0, vlsi.BalancedOpt)
	if err != nil {
		panic(err)
	}

	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"scheme", "code area", "coding latency", "dynamic power"},
		Notes: []string{
			"coverage target: 32-bit clustered errors (32x32 for 2D)",
			"2D dynamic power includes the 1.2x access factor from read-before-write traffic",
			fmt.Sprintf("baseline SECDED+Intv2 absolute storage: %.1f%%; the paper's '+5-6%% extra area' claim is absolute", base.CodeStorageFrac*100),
		},
	}
	for _, sc := range schemes {
		codeSpec, err := ecc.SpecByName(sc.code, spec.DataWordBits)
		if err != nil {
			panic(err)
		}
		c, err := vlsi.CodedCache(tech, spec, codeSpec, sc.interleave, sc.verticalRows, vlsi.BalancedOpt)
		if err != nil {
			panic(fmt.Sprintf("fig7 %s: %v", sc.label, err))
		}
		power := c.AccessEnergyPJ * sc.accessFactor
		if sc.writeThroughL2 {
			// Every store is duplicated into the shared L2: charge 30% of
			// accesses with one L2 access each.
			power += 0.3 * l2Companion.AccessEnergyPJ
		}
		t.Rows = append(t.Rows, []string{
			sc.label,
			norm(c.CodeStorageFrac / base.CodeStorageFrac),
			norm(c.SyndromeDelayNS / base.SyndromeDelayNS),
			norm(power / base.AccessEnergyPJ),
		})
	}
	return t
}
