package twod

// Stale vertical parity is the one way the 2D scheme can be tricked
// into *manufacturing* corruption: row-mode recovery XORs the group's
// parity mismatch into a faulty row, so any residue in that mismatch
// that does not belong to the row gets written into it — and if the
// residue happens to be a valid codeword pattern, the forged word
// passes every later check. These tests pin the two defences:
//
//  1. Recover refuses a row-mode delta the horizontal code cannot
//     attribute to the row (rowDeltaPlausible);
//  2. overwriting a word with unrepairable latent damage preserves
//     every group's parity mismatch exactly (delta against the raw
//     stored content): the old error pattern stays represented as a
//     refusable residue, and no other faulty row's vertical recovery
//     information is erased. (This path once rebuilt the parity from
//     the corrupted array instead — which silently destroyed the
//     mismatch of every other faulty row in the bank and let a later
//     column-mode recovery forge words over an incomplete suspect
//     set; see testdata/tornfill-shrunk.trace in internal/replay.)
//  3. a group holding such a residue is tainted: row-mode recovery
//     refuses to replay its mismatch even when the per-word syndrome
//     check passes, because two residues can pair into a code-valid
//     pattern that rides along invisibly (EDC8 syndromes alias mod 8;
//     see testdata/residue-forgery-shrunk.trace);
//  4. column-mode recovery repairs a row only from sound evidence: a
//     sole faulty row's group mismatch (row-mode evidence), or — with
//     a correcting horizontal code only — a GF(2) solve over the own
//     group's columns. Under detection-only EDC, multi-faulty-row
//     groups refuse outright: a same-column pair of errors inside one
//     group cancels out of the vertical parity, so the visible
//     mismatch need not contain the true error at all, and any column
//     that merely aliases the 8-value horizontal syndrome — borrowed
//     from another group or even sitting in the own group's mismatch —
//     forges a globally self-consistent wrong state (see
//     testdata/{cancelpair,crosscluster,hiddenpair}-shrunk.trace).

import (
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// TestRecoverRefusesStaleParityCrossWord: parity of group 0 takes a
// code-valid two-bit hit in word slot 1 (EDC8 bits 0 and 8 share a
// parity column) while row 0 has an ordinary recoverable single-bit
// error in word slot 0. A trusting row-mode repair would fix word 0
// and silently forge word 1 into a valid-but-wrong codeword; the
// plausibility guard must refuse instead.
func TestRecoverRefusesStaleParityCrossWord(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x4444)
	golden := a.SnapshotData()
	lay := a.Layout()

	a.FlipParityBit(0, lay.PhysColumn(1, 0))
	a.FlipParityBit(0, lay.PhysColumn(1, 8))
	a.FlipBit(0, lay.PhysColumn(0, 3))

	rep := a.Recover()
	if rep.Success {
		t.Fatalf("recovery claimed success over stale parity: %+v", rep)
	}
	// The untouched word must not have been forged: every bit of row 0
	// outside the injected flip must still match the golden snapshot.
	row, want := a.SnapshotData().Row(0), golden.Row(0)
	bad := lay.PhysColumn(0, 3)
	for c := 0; c < lay.RowBits(); c++ {
		if c == bad {
			continue
		}
		if row.Bit(c) != want.Bit(c) {
			t.Fatalf("recovery forged bit %d of row 0 from stale parity", c)
		}
	}
}

// TestWriteOverUncorrectableDoesNotPoisonParity: overwriting a word
// that holds unrepairable latent damage must not destroy any vertical
// recovery information. The new data must read back clean, the group
// mismatch must be preserved exactly (the old error pattern stays as a
// residue; the partner row's error stays represented), and the damage
// that remains elsewhere must stay *detected* — never replayed into
// other rows, never forged clean, by a later recovery.
func TestWriteOverUncorrectableDoesNotPoisonParity(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x5555)
	golden := a.SnapshotData()
	injectBeyondCoverage(a) // rows 0 and 4, word 0: ambiguous pair

	if st := a.Write(0, 0, bitvec.FromUint64(0xABCD, 64)); st != ReadUncorrectable {
		t.Fatalf("write over latent uncorrectable damage: status %v", st)
	}
	if got, ok := a.TryRead(0, 0); !ok || got.Uint64() != 0xABCD {
		t.Fatalf("overwritten word did not read back clean: ok=%v", ok)
	}
	rep := a.VerifyIntegrity()
	if rep.FaultyWords != 1 {
		t.Fatalf("want exactly row 4's word still faulty, got %d faulty words", rep.FaultyWords)
	}
	// The raw-delta overwrite preserves the group's mismatch — the
	// ambiguous pair's combined pattern is still there, flagged. (The
	// old behaviour rebuilt parity here, reporting 0 mismatches while
	// silently absorbing row 4's error into the parity rows.)
	if rep.ParityMismatches != 1 {
		t.Fatalf("parity mismatches = %d, want the pair's group still flagged", rep.ParityMismatches)
	}

	// A later recovery sees row 4 faulty with a mismatch it cannot
	// attribute to row 4 alone (the residue rides along) — it must
	// refuse, not scribble on any row.
	rec := a.Recover()
	if rec.Success {
		t.Fatalf("recovery claimed success with residual damage: %+v", rec)
	}
	snap := a.SnapshotData()
	for r := 0; r < a.Rows(); r++ {
		if r == 0 || r == 4 {
			continue
		}
		if !snap.Row(r).Equal(golden.Row(r)) {
			t.Fatalf("row %d changed by write/recover of other rows", r)
		}
	}

	// The machine-check reload of the damaged word, plus the residue
	// flush once the group checks clean, restores a fully clean,
	// consistent array.
	a.ForceWrite(4, 0, bitvec.FromUint64(0, 64))
	if n := a.FlushResidualParity(); n != 1 {
		t.Fatalf("flushed %d residual groups, want 1", n)
	}
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("array not clean after reloading the damaged word: %+v", rep)
	}
}

// TestRowModeRefusesTaintedResiduePair: two residues in one group can
// pair into a CODE-VALID pattern (EDC8 parity columns alias mod 8:
// bits 0 and 8 share a syndrome), which the per-word plausibility
// check cannot see — it rides along with a genuinely faulty row's
// error and matches that row's syndrome exactly. The residue taint
// must make row-mode recovery refuse the whole group until the
// residues are flushed, and the refusal must not leak into other
// groups.
func TestRowModeRefusesTaintedResiduePair(t *testing.T) {
	a := MustArray(Config{
		Rows: 12, WordsPerRow: 2,
		Horizontal:     ecc.MustEDC(64, 8),
		VerticalGroups: 4, // group 0 = rows 0, 4, 8
	})
	fillArray(a, 0x6060)
	lay := a.Layout()

	// Plant the ambiguous pair (rows 0 and 4, word 0, bits 0 and 8) and
	// overwrite both words: each overwrite leaves its old error pattern
	// as a residue, and together the residues form the code-valid pair.
	injectBeyondCoverage(a)
	if st := a.Write(0, 0, bitvec.FromUint64(0x1111, 64)); st != ReadUncorrectable {
		t.Fatalf("first overwrite status %v", st)
	}
	if st := a.Write(4, 0, bitvec.FromUint64(0x2222, 64)); st != ReadUncorrectable {
		t.Fatalf("second overwrite status %v", st)
	}

	// A real error lands on row 8 — the group's only faulty row, so
	// row-mode recovery would XOR the full mismatch in. The residue
	// pair has syndrome zero, so the delta's syndrome matches row 8's
	// real error exactly: plausibility alone would forge bits 0 and 8
	// into row 8. A second real error in (untainted) group 1 checks
	// that the refusal stays scoped.
	a.FlipBit(8, lay.PhysColumn(0, 3))
	a.FlipBit(1, lay.PhysColumn(1, 5))
	golden8 := a.SnapshotData().Row(8).Clone()

	rep := a.Recover()
	if rep.Success {
		t.Fatalf("recovery claimed success over a tainted group: %+v", rep)
	}
	if !a.SnapshotData().Row(8).Equal(golden8) {
		t.Fatal("row-mode recovery wrote into the tainted group's faulty row")
	}
	if _, ok := a.TryRead(1, 1); !ok {
		t.Fatal("untainted group's row was not repaired")
	}

	// Reload the damaged word and flush: the taint lifts and the group
	// is fully row-recoverable again.
	a.ForceWrite(8, 0, bitvec.FromUint64(0x6060+8*13, 64))
	if n := a.FlushResidualParity(); n != 1 {
		t.Fatalf("flushed %d residual groups, want 1", n)
	}
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("array not clean after flush: %+v", rep)
	}
	a.FlipBit(4, lay.PhysColumn(0, 7))
	if rep := a.Recover(); !rep.Success || rep.Mode != RecoveryRow {
		t.Fatalf("group not recoverable after taint lifted: %+v", rep)
	}
}
