package experiments

import (
	"fmt"
	"math/rand"

	"twodcache/internal/bch"
	"twodcache/internal/bist"
	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/redundancy"
	"twodcache/internal/scrub"
	"twodcache/internal/sim"
	"twodcache/internal/twod"
	"twodcache/internal/vlsi"
	"twodcache/internal/workload"
	"twodcache/internal/yield"
)

// AblationVerticalInterleave sweeps the vertical interleave factor V
// (parity rows per bank) and reports storage cost against measured
// coverage of V x 32 clusters — the design-choice behind the paper's
// EDC32 pick.
func AblationVerticalInterleave(opt Options) Table {
	t := Table{
		ID:     "abl-vint",
		Title:  "Ablation: vertical interleave factor vs storage and coverage",
		Header: []string{"V (parity rows)", "storage overhead", "Vx32 cluster coverage", "2Vx32 coverage"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, v := range []int{8, 16, 32, 64} {
		s := fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal:     ecc.MustEDC(64, 8),
			VerticalGroups: v,
		}}
		in := fault.CoverageMatrix(s, rng, []int{v}, []int{32}, opt.Trials)
		out := fault.CoverageMatrix(s, rng, []int{2 * v}, []int{32}, opt.Trials)
		t.Rows = append(t.Rows, []string{
			itoa(v),
			pct(s.StorageOverhead()),
			pct(in[0].Rate()),
			pct(out[0].Rate()),
		})
	}
	return t
}

// AblationHorizontalCode compares EDC8 and SECDED horizontal codes:
// check bits, syndrome latency, in-line correction, and measured 32x32
// coverage — the paper's yield-enhancement configuration trade-off.
func AblationHorizontalCode(opt Options) Table {
	t := Table{
		ID:     "abl-hcode",
		Title:  "Ablation: horizontal code choice for 2D protection",
		Header: []string{"horizontal", "check bits", "syndrome depth", "inline correct", "32x32 coverage"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	codes := []ecc.HorizontalCode{
		ecc.MustEDC(64, 8),
		ecc.MustSECDED(64),
		ecc.MustSECDEDSbED(64, 4),
	}
	for _, h := range codes {
		s := fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4, Horizontal: h, VerticalGroups: 32,
		}}
		cov := fault.CoverageMatrix(s, rng, []int{32}, []int{32}, opt.Trials)
		// Latency from the cost model where it has an entry; SbED checks
		// like SECDED plus one more syndrome bit.
		depth := ecc.SpecCorrecting("SECDED", 64, 1).SyndromeDepth() + 1
		if spec, err := ecc.SpecByName(h.Name(), 64); err == nil {
			depth = spec.SyndromeDepth()
		}
		t.Rows = append(t.Rows, []string{
			h.Name(),
			itoa(h.CheckBits()),
			itoa(depth),
			fmt.Sprintf("%v", h.CorrectCapability() > 0),
			pct(cov[0].Rate()),
		})
	}
	t.Notes = append(t.Notes,
		"SECDED-S4ED adds nibble-error detection at SECDED's check-bit count (paper §3)")
	return t
}

// AblationPortStealing sweeps the steal-queue depth on the fat CMP
// running OLTP, showing the rate-matching trade-off of §4.
func AblationPortStealing(opt Options) Table {
	t := Table{
		ID:     "abl-ps",
		Title:  "Ablation: port-stealing queue depth (fat CMP, OLTP)",
		Header: []string{"depth", "IPC loss"},
	}
	prof, err := workload.ByName("OLTP")
	if err != nil {
		panic(err)
	}
	cfg := sim.FatConfig()
	for _, depth := range []int{0, 1, 2, 4, 8, 16} {
		prot := sim.Protection{L1TwoD: true, PortStealing: depth > 0, StealQueueDepth: depth}
		rep, err := sim.PerformanceLoss(cfg, prot, prof, opt.Samples, opt.Warmup, opt.Measure)
		if err != nil {
			panic(err)
		}
		label := itoa(depth)
		if depth == 0 {
			label = "off (no stealing)"
		}
		t.Rows = append(t.Rows, []string{label, f1(rep.MeanLossPct) + "%"})
	}
	t.Notes = append(t.Notes,
		"the fat L1's idle port slots absorb stolen reads at any depth >= 1;",
		"sub-±1% values are within matched-pair timing noise")
	return t
}

// AblationBCHBits compares the real constructed BCH codes' check-bit
// counts against the paper's Hamming-distance estimates.
func AblationBCHBits() Table {
	t := Table{
		ID:     "abl-bch",
		Title:  "Ablation: constructed BCH check bits vs paper's Hamming-distance estimate",
		Header: []string{"code", "k", "t", "constructed", "estimate"},
	}
	for _, tc := range []struct {
		name string
		k, t int
	}{
		{"SECDED-class", 64, 1}, {"DECTED", 64, 2}, {"QECPED", 64, 4}, {"OECNED", 64, 8},
		{"DECTED", 256, 2}, {"OECNED", 256, 8},
	} {
		c, err := bch.New(tc.k, tc.t)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			tc.name, itoa(tc.k), itoa(tc.t),
			itoa(c.ParityBits()),
			itoa(ecc.CheckBitsFor(tc.k, tc.t)),
		})
	}
	return t
}

// AblationWriteThrough quantifies the paper's §5.1 argument against
// write-through L1 protection: the write-through alternative (EDC-only
// L1 duplicating every store into a 2D-protected L2) pays substantially
// more L2 traffic — and under bank contention more IPC — than a
// write-back L1 protected directly with 2D coding plus port stealing.
func AblationWriteThrough(opt Options) Table {
	t := Table{
		ID:     "abl-wt",
		Title:  "Ablation: write-back 2D L1 vs write-through L1 (+2D L2)",
		Header: []string{"system", "scheme", "IPC loss", "L2 writes / 100 cycles"},
	}
	prots := []sim.Protection{
		{L1TwoD: true, L2TwoD: true, PortStealing: true},
		{WriteThroughL1: true, L2TwoD: true},
	}
	prof, err := workload.ByName("OLTP")
	if err != nil {
		panic(err)
	}
	for _, cfg := range []sim.SystemConfig{sim.FatConfig(), sim.LeanConfig()} {
		for _, prot := range prots {
			rep, err := sim.PerformanceLoss(cfg, prot, prof, opt.Samples, opt.Warmup, opt.Measure)
			if err != nil {
				panic(err)
			}
			res, err := sim.RunOne(cfg, prot, prof, opt.Seed, opt.Warmup, opt.Measure)
			if err != nil {
				panic(err)
			}
			wr := float64(res.L2.Write) * 100 / float64(res.Cycles)
			t.Rows = append(t.Rows, []string{cfg.Name, prot.String(), f1(rep.MeanLossPct) + "%", f1(wr)})
		}
	}
	t.Notes = append(t.Notes,
		"write-through multiplies L2 write traffic by the store rate; write-back 2D confines it to dirty evictions",
		"where the L2 has bank headroom the write-through cost appears as traffic (hence power), not IPC")
	return t
}

// AblationScrubInterval sweeps the scrub period of a 2D-protected bank
// and reports the probability that soft errors accumulate between
// scrubs into an uncorrectable footprint (§2.1's scrubbing trade-off).
// The soft-error rate is accelerated so the trade-off is visible at
// bank scale; at real rates all values collapse toward zero.
func AblationScrubInterval(opt Options) Table {
	t := Table{
		ID:     "abl-scrub",
		Title:  "Ablation: scrub interval vs uncorrectable accumulation (accelerated SER)",
		Header: []string{"interval (h)", "events/interval", "P(fail)/interval", "P(fail)/year"},
	}
	m := scrub.DefaultModel()
	m.FITPerMb = 5e9 // accelerated-test flux
	rng := rand.New(rand.NewSource(opt.Seed))
	reps, err := m.Sweep(rng, []float64{0.5, 2, 8, 32, 128}, opt.Trials*3, 4)
	if err != nil {
		panic(err)
	}
	for _, r := range reps {
		t.Rows = append(t.Rows, []string{
			f1(r.IntervalHours),
			f2(r.EventsPerInterval),
			fmt.Sprintf("%.4f", r.PFailPerInterval),
			fmt.Sprintf("%.4f", r.PFailPerYear),
		})
	}
	t.Notes = append(t.Notes,
		"single events always fit the 32x32 coverage; only multi-event accumulation fails",
		"shorter intervals bound accumulation — the paper's motivation for checking on every read")
	return t
}

// AblationBISRYield cross-checks the analytic Fig. 8(a) yield model
// against an end-to-end BISR flow: inject stuck-at defects, march-test
// with March C-, allocate spares (with ECC absorption), and verify.
func AblationBISRYield(opt Options) Table {
	t := Table{
		ID:     "abl-bisr",
		Title:  "Ablation: end-to-end BISR (March C- + allocation) vs analytic yield",
		Header: []string{"defects", "policy", "BISR repair rate", "analytic yield"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	rows, cols := 128, 1152 // one sub-bank: 128 rows of 16 x (72,64) words
	g := yield.Geometry{Words: rows * cols / 72, WordBits: 72}
	for _, defects := range []int{2, 8, 24} {
		for _, pol := range []yield.Policy{
			{SpareRows: 2},
			{ECC: true, SpareRows: 2},
		} {
			ok := 0
			trials := opt.Trials
			if trials < 5 {
				trials = 5
			}
			for tr := 0; tr < trials; tr++ {
				arr := bist.MustFaultyArray(rows, cols)
				for i := 0; i < defects; i++ {
					kind := bist.StuckAt0
					if rng.Intn(2) == 1 {
						kind = bist.StuckAt1
					}
					_ = arr.Inject(bist.CellFault{
						Row: rng.Intn(rows), Col: rng.Intn(cols), Kind: kind,
					})
				}
				cfg := redundancy.Config{
					Rows: rows, Cols: cols,
					SpareRows: pol.SpareRows, SpareCols: 0,
					WordBits: 72, ECCSingleBit: pol.ECC,
				}
				out, err := bist.SelfRepair(arr, cfg, bist.MarchCMinus())
				if err != nil {
					panic(err)
				}
				if out.Repaired {
					ok++
				}
			}
			t.Rows = append(t.Rows, []string{
				itoa(defects),
				pol.String(),
				pct(float64(ok) / float64(trials)),
				pct(yield.Yield(g, defects, pol)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"BISR rates measured by full march-test + allocation + re-verification",
		"analytic yield from the Fig. 8(a) model on the same geometry")
	return t
}

// AblationRecoveryRate validates the paper's §4 claim that the 2D
// recovery process — though it blocks the struck cache for a BIST-scale
// march — does not affect overall performance at realistic error rates,
// and shows where that claim would break down under error storms.
func AblationRecoveryRate(opt Options) Table {
	t := Table{
		ID:     "abl-err",
		Title:  "Ablation: recovery events vs IPC (fat CMP, OLTP, 2k-cycle recovery)",
		Header: []string{"error interval (cycles)", "recoveries in run", "IPC loss"},
	}
	prof, err := workload.ByName("OLTP")
	if err != nil {
		panic(err)
	}
	cfg := sim.FatConfig()
	base := sim.Protection{L1TwoD: true, L2TwoD: true, PortStealing: true}
	for _, every := range []uint64{0, 100000, 10000, 1000} {
		prot := base
		prot.ErrorEveryCycles = every
		rep, err := sim.PerformanceLoss(cfg, prot, prof, opt.Samples, opt.Warmup, opt.Measure)
		if err != nil {
			panic(err)
		}
		res, err := sim.RunOne(cfg, prot, prof, opt.Seed, opt.Warmup, opt.Measure)
		if err != nil {
			panic(err)
		}
		label := "none"
		if every > 0 {
			label = itoa(int(every))
		}
		t.Rows = append(t.Rows, []string{label, itoa(int(res.Recoveries)), f1(rep.MeanLossPct) + "%"})
	}
	t.Notes = append(t.Notes,
		"real error rates are ~one event per hours-to-days (>10^12 cycles): the 'none' row",
		"even one event per 10k cycles — billions of times the real rate — costs only a few percent")
	return t
}

// AblationVerticalCode compares the paper's two vertical-code design
// points (§3: "either EDC or ECC"): interleaved parity rows (EDC32)
// against a per-column SECDED. Parity wins on clustered errors; SECDED
// handles scattered single-bit-per-column errors of any height at a
// third of the check storage.
func AblationVerticalCode(opt Options) Table {
	t := Table{
		ID:     "abl-vcode",
		Title:  "Ablation: vertical interleaved parity (EDC32) vs vertical SECDED",
		Header: []string{"vertical code", "check rows", "storage", "32x32 cluster", "row failure", "64 scattered (1/col)"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	schemes := []fault.Scheme{
		fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 32,
		}},
		fault.VSECDEDScheme{Rows: 256, WordsPerRow: 4, Horizontal: ecc.MustEDC(64, 8)},
	}
	checkRows := []int{32, 10}
	for i, s := range schemes {
		cluster := fault.CoverageMatrix(s, rng, []int{32}, []int{32}, opt.Trials)
		row := rowFailureRate(s, rng, opt.Trials)
		scattered := scatteredRate(s, rng, opt.Trials, 64)
		t.Rows = append(t.Rows, []string{
			s.Name(),
			itoa(checkRows[i]),
			pct(s.StorageOverhead()),
			pct(cluster[0].Rate()),
			pct(row),
			pct(scattered),
		})
	}
	return t
}

// scatteredRate measures correction of n single-bit errors placed in n
// distinct columns at random rows.
func scatteredRate(s fault.Scheme, rng *rand.Rand, trials, n int) float64 {
	ok := 0
	for i := 0; i < trials; i++ {
		inst := s.New(rng)
		tg := inst.Target()
		cols := rng.Perm(tg.RowBits())
		if n > len(cols) {
			n = len(cols)
		}
		p := fault.Pattern{Kind: "scattered"}
		for _, c := range cols[:n] {
			p.Flips = append(p.Flips, fault.Flip{Row: rng.Intn(tg.Rows()), Col: c})
		}
		fault.Apply(tg, p)
		if inst.Repair() {
			ok++
		}
	}
	if trials == 0 {
		return 0
	}
	return float64(ok) / float64(trials)
}

// AblationReplicationCache compares 2D L1 protection against Zhang's
// replication-cache alternative (the paper's related work [54]): a
// small fully-associative buffer duplicating recently-written blocks,
// spilling to the L2 when contended. The paper's critique — duplication
// traffic grows with buffer contention — shows as L2 write traffic.
func AblationReplicationCache(opt Options) Table {
	t := Table{
		ID:     "abl-repl",
		Title:  "Ablation: 2D write-back L1 vs Zhang replication cache (fat CMP, OLTP)",
		Header: []string{"scheme", "IPC loss", "L2 writes / 100 cycles"},
	}
	prof, err := workload.ByName("OLTP")
	if err != nil {
		panic(err)
	}
	cfg := sim.FatConfig()
	prots := []sim.Protection{
		{L1TwoD: true, PortStealing: true},
		{ReplicationEntries: 8},
		{ReplicationEntries: 64},
		{ReplicationEntries: 512},
	}
	for _, prot := range prots {
		rep, err := sim.PerformanceLoss(cfg, prot, prof, opt.Samples, opt.Warmup, opt.Measure)
		if err != nil {
			panic(err)
		}
		res, err := sim.RunOne(cfg, prot, prof, opt.Seed, opt.Warmup, opt.Measure)
		if err != nil {
			panic(err)
		}
		wr := float64(res.L2.Write) * 100 / float64(res.Cycles)
		t.Rows = append(t.Rows, []string{prot.String(), f1(rep.MeanLossPct) + "%", f1(wr)})
	}
	t.Notes = append(t.Notes,
		"small replication buffers spill most duplicates to the L2 (paper §6, ref [37]'s critique of [54])")
	return t
}

// AblationHorizontalInterleave compares the three ways to reach 32-bit
// horizontal detection width — EDC8 with 4-way interleaving (the
// paper's L1 choice), EDC16 with 2-way (its L2 choice), and EDC32 with
// none — on storage, read energy (64kB array), and measured coverage.
// The paper picks per level by the interleaving-energy curves of
// Fig. 2; this table makes that trade-off explicit.
func AblationHorizontalInterleave(opt Options) Table {
	t := Table{
		ID:     "abl-hintv",
		Title:  "Ablation: horizontal EDCn x interleave combinations with equal 32-bit detect width",
		Header: []string{"combination", "check bits/word", "read energy (pJ)", "32x32 coverage"},
	}
	tech := vlsi.Default70nm()
	spec := vlsi.L1Spec64KB()
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, combo := range []struct {
		n, intv int
	}{{8, 4}, {16, 2}, {32, 1}} {
		h := ecc.MustEDC(64, combo.n)
		s := fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: combo.intv, Horizontal: h, VerticalGroups: 32,
		}}
		cov := fault.CoverageMatrix(s, rng, []int{32}, []int{32}, opt.Trials)
		cost, err := vlsi.CodedCache(tech, spec, ecc.SpecEDC(64, combo.n), combo.intv, 32, vlsi.BalancedOpt)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("EDC%d + Intv%d", combo.n, combo.intv),
			itoa(combo.n),
			f1(cost.AccessEnergyPJ),
			pct(cov[0].Rate()),
		})
	}
	t.Notes = append(t.Notes,
		"all three detect 32-bit physical bursts; they differ in check storage vs pseudo-read energy",
		"the paper picks EDC8+Intv4 for the narrow-word L1 and EDC16+Intv2 for the wide-word L2")
	return t
}

// AblationMiscorrection measures each per-word code's behaviour beyond
// its guarantee: the fraction of random w-bit errors that are silently
// miscorrected (turned into different wrong data) rather than detected.
// This quantifies why the paper uses detection-only EDC, not SECDED,
// as the multi-bit safety net: a SECDED word hit by >2 bits has a
// sizeable chance of "correcting" itself into silent corruption, while
// EDC8 either sees the error or misses it without rewriting anything.
func AblationMiscorrection(opt Options) Table {
	t := Table{
		ID:     "abl-miscorrect",
		Title:  "Ablation: silent corruption rate vs error weight (64-bit words)",
		Header: []string{"code", "w=1", "w=2", "w=3", "w=4", "w=6", "w=8", "w=10"},
	}
	oec, err := ecc.NewOECNED(64)
	if err != nil {
		panic(err)
	}
	dec, err := ecc.NewDECTED(64)
	if err != nil {
		panic(err)
	}
	codes := []ecc.Code{ecc.MustEDC(64, 8), ecc.MustSECDED(64), ecc.MustSECDEDSbED(64, 4), dec, oec}
	weights := []int{1, 2, 3, 4, 6, 8, 10}
	rng := rand.New(rand.NewSource(opt.Seed))
	trials := opt.Trials * 100
	if trials < 200 {
		trials = 200
	}
	for _, code := range codes {
		row := []string{code.Name()}
		for _, w := range weights {
			mis := 0
			for tr := 0; tr < trials; tr++ {
				data := bitvec.New(64)
				for i := 0; i < 64; i++ {
					if rng.Intn(2) == 1 {
						data.Set(i, true)
					}
				}
				cw := code.Encode(data)
				for _, p := range rng.Perm(cw.Len())[:w] {
					cw.Flip(p)
				}
				res, _ := code.Decode(cw)
				// Miscorrection: the decoder claims success (or clean)
				// but the data bits are wrong.
				if (res == ecc.Corrected || res == ecc.Clean) && !code.Data(cw).Equal(data) {
					mis++
				}
			}
			row = append(row, pct(float64(mis)/float64(trials)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"silent corruption = decoder reports clean/corrected but the data is wrong",
		"(covers both parity aliasing in EDC and miscorrection in ECC decoders)",
		fmt.Sprintf("%d random error patterns per cell", trials))
	return t
}
