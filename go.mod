module twodcache

go 1.22
