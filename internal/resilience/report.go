package resilience

import (
	"fmt"
	"strings"
)

// String renders the health report as the operator-facing summary the
// soak tool prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resilience health report\n")
	fmt.Fprintf(&b, "  traffic:     %d accesses (%d hits, %d misses, %d writebacks, %d bypassed)\n",
		r.Accesses, r.Cache.Hits, r.Cache.Misses, r.Cache.Writebacks, r.Cache.Bypassed)
	fmt.Fprintf(&b, "  DUEs:        %d (rate %.3e per access), MTTR %v\n", r.DUEs, r.DUERate, r.MTTR)
	fmt.Fprintf(&b, "  ladder:      retry %d/%d · word %d/%d · full-2D %d/%d · decommission %d (remapped %d, exhausted %d)\n",
		r.RetrySuccesses, r.Retries,
		r.WordRecoveries, r.WordAttempts,
		r.FullRecoveries, r.FullAttempts,
		r.Decommissions, r.Remaps, r.Exhausted)
	fmt.Fprintf(&b, "  scrubbing:   %d passes, %d backoffs, %d victims retired\n",
		r.ScrubPasses, r.ScrubBackoffs, r.ScrubVictims)
	fmt.Fprintf(&b, "  bounded:     %d coalesced waits · breaker %d trips, %d sheds, %d open · watchdog %d fires · %d deadline aborts\n",
		r.CoalescedWaits, r.BreakerTrips, r.BreakerSheds, r.OpenBreakers, r.WatchdogFires, r.DeadlineAborts)
	fmt.Fprintf(&b, "  capacity:    %d/%d ways disabled (%.1f%% lost)\n",
		r.DisabledWays, r.TotalWays, r.CapacityLostPct)
	fmt.Fprintf(&b, "  data loss:   %d dirty lines lost (accounted), %d errors recovered in-line\n",
		r.DirtyLinesLost, r.Cache.ErrorsRecovered)
	return b.String()
}
