package twod

import (
	"fmt"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// VSECDEDArray is the alternative vertical-code design point the paper
// sketches in §3 ("the horizontal and vertical coding can either be
// EDC or ECC"): instead of V interleaved parity rows, every physical
// column carries a vertical Hsiao SECDED code over all data rows. Check
// storage is r_v check rows (10 for 256 rows) — less than EDC32's 32
// parity rows — and correction of a column's single bit needs no group
// XOR; but only ONE error per column is correctable, so solid clusters
// taller than one row defeat it. The trade-off is quantified by the
// abl-vcode ablation: vertical parity wins on clustered errors,
// vertical SECDED on scattered ones, at a third of the check storage.
type VSECDEDArray struct {
	layout Layout
	horiz  ecc.HorizontalCode
	vcode  *ecc.SECDED
	data   *bitvec.Matrix
	checks *bitvec.Matrix // vcode.CheckBits() rows x RowBits
	stats  Stats
}

// NewVSECDEDArray builds a zeroed array with horizontal code h and a
// vertical SECDED over the rows dimension.
func NewVSECDEDArray(rows, wordsPerRow int, h ecc.HorizontalCode) (*VSECDEDArray, error) {
	if h == nil {
		return nil, fmt.Errorf("twod: nil horizontal code")
	}
	layout := Layout{Rows: rows, WordsPerRow: wordsPerRow, CodewordBits: ecc.CodewordBits(h)}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	vcode, err := ecc.NewSECDED(rows)
	if err != nil {
		return nil, fmt.Errorf("twod: vertical code: %w", err)
	}
	return &VSECDEDArray{
		layout: layout,
		horiz:  h,
		vcode:  vcode,
		data:   bitvec.NewMatrix(rows, layout.RowBits()),
		checks: bitvec.NewMatrix(vcode.CheckBits(), layout.RowBits()),
	}, nil
}

// MustVSECDEDArray panics on error.
func MustVSECDEDArray(rows, wordsPerRow int, h ecc.HorizontalCode) *VSECDEDArray {
	a, err := NewVSECDEDArray(rows, wordsPerRow, h)
	if err != nil {
		panic(err)
	}
	return a
}

// Layout returns the physical geometry.
func (a *VSECDEDArray) Layout() Layout { return a.layout }

// Rows returns the data row count.
func (a *VSECDEDArray) Rows() int { return a.layout.Rows }

// RowBits returns the physical row width.
func (a *VSECDEDArray) RowBits() int { return a.layout.RowBits() }

// CheckRows returns the number of vertical check rows (r_v).
func (a *VSECDEDArray) CheckRows() int { return a.vcode.CheckBits() }

// Stats returns the activity counters.
func (a *VSECDEDArray) Stats() Stats { return a.stats }

// vDelta XORs the vertical-code contribution of a flip at data row r
// into column c's check bits. SECDED encoding is linear, so the delta
// is just row r's parity-check column.
func (a *VSECDEDArray) vDelta(r, c int) {
	mask := a.vcode.ParityColumn(r)
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			a.checks.Flip(i, c)
		}
		mask >>= 1
	}
}

// Write stores data into word w of row r with a read-before-write
// vertical update, exactly as the parity variant does.
func (a *VSECDEDArray) Write(r, w int, data *bitvec.Vector) {
	if data.Len() != a.horiz.DataBits() {
		panic(fmt.Sprintf("twod: Write data width %d != %d", data.Len(), a.horiz.DataBits()))
	}
	a.stats.Writes++
	a.stats.ExtraReads++
	cw := a.horiz.Encode(data)
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		col := a.layout.PhysColumn(w, b)
		if row.Bit(col) != cw.Bit(b) {
			row.Flip(col)
			a.vDelta(r, col)
		}
	}
}

// Read returns word w of row r, recovering through the vertical SECDED
// when the horizontal code flags an error.
func (a *VSECDEDArray) Read(r, w int) (*bitvec.Vector, ReadStatus) {
	a.stats.Reads++
	cw := a.extract(r, w)
	res, _ := a.horiz.Decode(cw)
	switch res {
	case ecc.Clean:
		return a.horiz.Data(cw), ReadClean
	case ecc.Corrected:
		a.stats.InlineCorrections++
		a.storeRaw(r, w, cw)
		return a.horiz.Data(cw), ReadCorrectedInline
	default:
		rep := a.Recover()
		cw = a.extract(r, w)
		if !rep.Success || a.horiz.SyndromeBits(cw) != 0 {
			return a.horiz.Data(cw), ReadUncorrectable
		}
		return a.horiz.Data(cw), ReadRecovered
	}
}

func (a *VSECDEDArray) extract(r, w int) *bitvec.Vector {
	cw := bitvec.New(a.layout.CodewordBits)
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		if row.Bit(a.layout.PhysColumn(w, b)) {
			cw.Set(b, true)
		}
	}
	return cw
}

func (a *VSECDEDArray) storeRaw(r, w int, cw *bitvec.Vector) {
	row := a.data.Row(r)
	for b := 0; b < a.layout.CodewordBits; b++ {
		row.Set(a.layout.PhysColumn(w, b), cw.Bit(b))
	}
}

// FlipBit injects an error into a data cell.
func (a *VSECDEDArray) FlipBit(row, col int) { a.data.Flip(row, col) }

// SnapshotData returns a deep copy of the data matrix.
func (a *VSECDEDArray) SnapshotData() *bitvec.Matrix { return a.data.Clone() }

// columnCodeword assembles column c's vertical codeword (data bits then
// check bits) for decoding.
func (a *VSECDEDArray) columnCodeword(c int) *bitvec.Vector {
	n := a.layout.Rows + a.vcode.CheckBits()
	cw := bitvec.New(n)
	for r := 0; r < a.layout.Rows; r++ {
		if a.data.Bit(r, c) {
			cw.Set(r, true)
		}
	}
	for i := 0; i < a.vcode.CheckBits(); i++ {
		if a.checks.Bit(i, c) {
			cw.Set(a.layout.Rows+i, true)
		}
	}
	return cw
}

// Recover runs the vertical-SECDED correction: every column decodes
// independently, fixing at most one erroneous bit per column. Columns
// with multi-bit damage are uncorrectable.
func (a *VSECDEDArray) Recover() RecoveryReport {
	a.stats.Recoveries++
	rep := RecoveryReport{Mode: RecoveryColumn}
	ok := true
	for c := 0; c < a.layout.RowBits(); c++ {
		rep.ScanReads++
		cw := a.columnCodeword(c)
		res, _ := a.vcode.Decode(cw)
		switch res {
		case ecc.Clean:
			continue
		case ecc.Corrected:
			// Write the corrected column back.
			for r := 0; r < a.layout.Rows; r++ {
				if a.data.Bit(r, c) != cw.Bit(r) {
					a.data.Flip(r, c)
					rep.BitsFlipped++
				}
			}
			for i := 0; i < a.vcode.CheckBits(); i++ {
				if a.checks.Bit(i, c) != cw.Bit(a.layout.Rows+i) {
					a.checks.Flip(i, c)
					rep.BitsFlipped++
				}
			}
		default:
			ok = false
		}
	}
	// Verify every word's horizontal code.
	for r := 0; r < a.layout.Rows; r++ {
		for w := 0; w < a.layout.WordsPerRow; w++ {
			rep.ScanReads++
			if a.horiz.SyndromeBits(a.extract(r, w)) != 0 {
				ok = false
			}
		}
	}
	if !ok {
		rep.Mode = RecoveryFailed
		a.stats.Uncorrectable++
		return rep
	}
	rep.Success = true
	return rep
}
