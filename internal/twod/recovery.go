package twod

import (
	"sync/atomic"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// RecoveryMode identifies which branch of the Fig. 4(b) algorithm
// repaired the array.
type RecoveryMode int

const (
	// RecoveryNone: the scan found nothing to repair.
	RecoveryNone RecoveryMode = iota
	// RecoveryRow: each vertical parity group held at most one faulty
	// row, so every faulty row was reconstructed by XOR-ing the group.
	RecoveryRow
	// RecoveryColumn: multiple faulty rows shared a group (large-scale
	// column failure); faulty columns were located via the vertical
	// code and bits were solved for along the horizontal direction.
	RecoveryColumn
	// RecoveryFailed: the error footprint exceeded 2D coverage.
	RecoveryFailed
)

// String names the recovery mode.
func (m RecoveryMode) String() string {
	switch m {
	case RecoveryNone:
		return "none"
	case RecoveryRow:
		return "row-reconstruction"
	case RecoveryColumn:
		return "column-localisation"
	case RecoveryFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// RecoveryReport summarises one invocation of the BIST-style recovery
// process.
type RecoveryReport struct {
	// Mode is the repair strategy that ran.
	Mode RecoveryMode
	// FaultyWords is the number of words whose horizontal code flagged
	// an error during the scan.
	FaultyWords int
	// BitsFlipped is the number of cell corrections applied.
	BitsFlipped int
	// InlineFixes counts words repaired by the horizontal ECC itself
	// during column-mode recovery (the grey "ECC correct" box of
	// Fig. 4(b)); nonzero only with a correcting horizontal code.
	InlineFixes int
	// ParityRefreshed reports whether the vertical parity rows were
	// rebuilt (they held errors, or row-mode changed intent).
	ParityRefreshed bool
	// ScanReads counts the word reads performed — the dominant term of
	// the recovery latency (comparable to a BIST march, §4).
	ScanReads int
	// Success reports whether the array checks fully clean afterwards.
	Success bool
}

// CyclesEstimate returns a rough latency in array-access cycles,
// dominated by the scan reads plus one write per corrected word.
func (r RecoveryReport) CyclesEstimate() int {
	return r.ScanReads + r.BitsFlipped
}

// recoverImpl is the 2D recovery process (Recover without event
// emission). It implements Fig. 4(b):
//
//  1. March over all rows, checking every word's horizontal code.
//  2. If every vertical group holds at most one faulty row, each faulty
//     row's error pattern equals the group's parity mismatch — XOR it in.
//  3. Otherwise (column-scale failure) locate suspect columns from the
//     vertical mismatch and solve each faulty word's syndrome over the
//     suspect set along the horizontal direction.
//  4. Re-verify; refresh parity rows if the data is clean but parity is
//     stale (errors struck the parity storage itself).
func (a *Array) recoverImpl() RecoveryReport {
	atomic.AddUint64(&a.stats.Recoveries, 1)
	rep := RecoveryReport{}

	faultyWords, faultyRows := a.scan(&rep)
	rep.FaultyWords = len(faultyWords)

	mismatch := a.verticalMismatch()

	if len(faultyWords) == 0 {
		// Data clean. If parity rows disagree they took the hit; rebuild.
		rep.Mode = RecoveryNone
		if !allZero(mismatch) {
			a.rebuildParity()
			rep.ParityRefreshed = true
		}
		rep.Success = true
		return rep
	}

	// Count faulty rows per vertical group.
	groupCount := make([]int, a.cfg.VerticalGroups)
	for r := range faultyRows {
		groupCount[a.group(r)]++
	}
	columnMode := false
	for _, c := range groupCount {
		if c > 1 {
			columnMode = true
			break
		}
	}

	if !columnMode {
		rep.Mode = RecoveryRow
		for r := range faultyRows {
			m := mismatch[a.group(r)]
			if !a.rowDeltaPlausible(r, m) {
				// The mismatch carries bits the horizontal code cannot
				// attribute to this row's errors: the parity itself is
				// stale or struck. XOR-ing it in could forge a
				// valid-looking word — leave the row for verification
				// to flag rather than guess (Fig. 4(b) step 4).
				continue
			}
			rep.BitsFlipped += m.PopCount()
			a.data.XorRow(r, m)
		}
	} else {
		rep.Mode = RecoveryColumn
		if !a.recoverColumns(mismatch, faultyWords, &rep) {
			rep.Mode = RecoveryFailed
		}
	}

	// Verify: every word must now check clean.
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			rep.ScanReads++
			if a.checkWord(r, w) != 0 {
				rep.Mode = RecoveryFailed
				rep.Success = false
				atomic.AddUint64(&a.stats.Uncorrectable, 1)
				return rep
			}
		}
	}
	// Data verified clean; restore the parity invariant if anything is
	// left inconsistent (e.g. parity rows themselves were struck).
	if !allZero(a.verticalMismatch()) {
		if rep.InlineFixes > 0 {
			// Inline ECC corrections that leave the vertical parity
			// inconsistent indicate a miscorrection (>1 real error in
			// some word): refuse to mask it.
			rep.Mode = RecoveryFailed
			rep.Success = false
			atomic.AddUint64(&a.stats.Uncorrectable, 1)
			return rep
		}
		a.rebuildParity()
		rep.ParityRefreshed = true
	}
	rep.Success = true
	atomic.AddUint64(&a.stats.RecoveredWords, uint64(rep.FaultyWords))
	return rep
}

// scan marches over the array checking every word's horizontal code.
func (a *Array) scan(rep *RecoveryReport) (map[[2]int]uint64, map[int]bool) {
	faultyWords := make(map[[2]int]uint64)
	faultyRows := make(map[int]bool)
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			rep.ScanReads++
			if syn := a.checkWord(r, w); syn != 0 {
				faultyWords[[2]int{r, w}] = syn
				faultyRows[r] = true
			}
		}
	}
	return faultyWords, faultyRows
}

// rowDeltaPlausible reports whether mismatch m is a credible error
// pattern for row r: every word the horizontal code flags must be
// explained by m's slice (matching syndrome), and every clean word's
// slice must be empty. A failure means the group's parity disagrees
// with the data for reasons beyond this row — applying m would write
// garbage into words that were never faulty. Code-valid garbage
// confined to an already-faulty word is indistinguishable from a real
// error pattern and remains beyond coverage, as in the paper.
func (a *Array) rowDeltaPlausible(r int, m *bitvec.Vector) bool {
	nb := a.layout.CodewordBits
	d := a.cfg.WordsPerRow
	mw := m.Words()
	for w := 0; w < a.cfg.WordsPerRow; w++ {
		// Gather m's interleaved slice for word slot w into scratch.
		s := a.scr.cw
		for i := range s {
			s[i] = 0
		}
		zero := true
		col := w
		for b := 0; b < nb; b++ {
			if mw[col>>6]>>uint(col&63)&1 != 0 {
				zero = false
				s[b>>6] |= 1 << uint(b&63)
			}
			col += d
		}
		syn := a.syndromeAt(r, w)
		if syn == 0 {
			if !zero {
				return false
			}
			continue
		}
		if a.cfg.Horizontal.SyndromeWords(bitvec.MakeCodeword(s, nb)) != syn {
			return false
		}
	}
	return true
}

// verticalMismatch returns, per group, the XOR of the stored parity row
// with the parity recomputed from the data rows. With at most one
// faulty row in the group this equals that row's exact error pattern.
func (a *Array) verticalMismatch() []*bitvec.Vector {
	out := make([]*bitvec.Vector, a.cfg.VerticalGroups)
	for g := range out {
		m := a.vpar.Row(g).Clone()
		for r := g; r < a.cfg.Rows; r += a.cfg.VerticalGroups {
			m.Xor(a.data.Row(r))
		}
		out[g] = m
	}
	return out
}

// rebuildParity recomputes all vertical parity rows from the data.
func (a *Array) rebuildParity() {
	for g := 0; g < a.cfg.VerticalGroups; g++ {
		p := a.vpar.Row(g)
		p.Zero()
		for r := g; r < a.cfg.Rows; r += a.cfg.VerticalGroups {
			p.Xor(a.data.Row(r))
		}
	}
}

// recoverColumns handles large-scale column failures: the union of the
// vertical mismatches marks suspect physical columns; each faulty
// word's syndrome is then solved over its suspect bits via GF(2)
// elimination (unique solutions only).
func (a *Array) recoverColumns(mismatch []*bitvec.Vector, faultyWords map[[2]int]uint64, rep *RecoveryReport) bool {
	suspect := bitvec.New(a.layout.RowBits())
	for _, m := range mismatch {
		suspect.Or(m)
	}
	// Group suspect columns by word slot.
	byWord := make(map[int][]int) // word slot -> codeword bit indices
	for _, c := range suspect.Ones() {
		w, b := a.layout.Locate(c)
		byWord[w] = append(byWord[w], b)
	}
	h := a.cfg.Horizontal
	canInline := h.CorrectCapability() > 0
	ok := true
	for rw, syn := range faultyWords {
		r, w := rw[0], rw[1]
		cand := byWord[w]
		cols := make([]uint64, len(cand))
		for i, b := range cand {
			cols[i] = h.ParityColumn(b)
		}
		sel, unique := solveGF2(cols, syn)
		if unique {
			for i, use := range sel {
				if use {
					a.data.Flip(r, a.layout.PhysColumn(w, cand[i]))
					rep.BitsFlipped++
				}
			}
			continue
		}
		// Fall back to the horizontal ECC's own correction — the grey
		// "ECC correct" box of Fig. 4(b). This handles column failures
		// invisible to the vertical parity (even flip counts in every
		// group), which a correcting code localises per word.
		if canInline {
			a.extractInto(a.scr.cw, r, w)
			cw := bitvec.MakeCodeword(a.scr.cw, a.layout.CodewordBits)
			if res, n := h.DecodeInPlace(cw); res == ecc.Corrected {
				a.storeRawWords(r, w, a.scr.cw)
				rep.InlineFixes++
				rep.BitsFlipped += n
				continue
			}
		}
		ok = false
	}
	return ok
}

// solveGF2 finds x with sum_{i: x_i} cols[i] == target over GF(2).
// It reports the solution and whether it is unique. Duplicate or
// dependent columns make the system ambiguous (unique=false).
func solveGF2(cols []uint64, target uint64) (sel []bool, unique bool) {
	n := len(cols)
	sel = make([]bool, n)
	// Build augmented rows: each column becomes a variable; eliminate
	// to reduced row-echelon over the syndrome-bit equations.
	type eq struct {
		coef uint64 // bit i set => variable i participates
		rhs  bool
	}
	// There are up to 64 syndrome bits; build one equation per bit.
	var eqs []eq
	for bit := 0; bit < 64; bit++ {
		var coef uint64
		for i, c := range cols {
			if c&(1<<uint(bit)) != 0 {
				coef |= 1 << uint(i)
			}
		}
		rhs := target&(1<<uint(bit)) != 0
		if coef == 0 {
			if rhs {
				return nil, false // inconsistent
			}
			continue
		}
		eqs = append(eqs, eq{coef, rhs})
	}
	if n > 64 {
		return nil, false // solver supports up to 64 suspect bits/word
	}
	// Gaussian elimination on variables.
	pivotOf := make([]int, 0, n)
	row := 0
	for v := 0; v < n && row < len(eqs); v++ {
		// Find a row at/after 'row' with variable v.
		p := -1
		for i := row; i < len(eqs); i++ {
			if eqs[i].coef&(1<<uint(v)) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		eqs[row], eqs[p] = eqs[p], eqs[row]
		for i := range eqs {
			if i != row && eqs[i].coef&(1<<uint(v)) != 0 {
				eqs[i].coef ^= eqs[row].coef
				eqs[i].rhs = eqs[i].rhs != eqs[row].rhs
			}
		}
		pivotOf = append(pivotOf, v)
		row++
	}
	// Unique iff every variable got a pivot.
	if len(pivotOf) < n {
		return nil, false
	}
	// Back-substitute (matrix is diagonal on pivots now).
	for i, v := range pivotOf {
		if eqs[i].rhs {
			sel[v] = true
		}
	}
	// Consistency: remaining equations must be 0 = 0.
	for i := len(pivotOf); i < len(eqs); i++ {
		if eqs[i].coef == 0 && eqs[i].rhs {
			return nil, false
		}
	}
	return sel, true
}

func allZero(vs []*bitvec.Vector) bool {
	for _, v := range vs {
		if !v.IsZero() {
			return false
		}
	}
	return true
}

// IntegrityReport is the result of a non-mutating consistency audit.
type IntegrityReport struct {
	// FaultyWords counts words whose horizontal code flags an error.
	FaultyWords int
	// ParityMismatches counts vertical groups whose stored parity row
	// disagrees with the data.
	ParityMismatches int
}

// Clean reports whether the audit found nothing.
func (r IntegrityReport) Clean() bool {
	return r.FaultyWords == 0 && r.ParityMismatches == 0
}

// VerifyIntegrity audits the array without modifying anything: every
// word's horizontal code is checked and every vertical parity row is
// recomputed and compared. Diagnostics and tests use it to distinguish
// "clean", "recoverable", and "silently inconsistent" states.
func (a *Array) VerifyIntegrity() IntegrityReport {
	rep := IntegrityReport{}
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			if a.checkWord(r, w) != 0 {
				rep.FaultyWords++
			}
		}
	}
	for _, m := range a.verticalMismatch() {
		if !m.IsZero() {
			rep.ParityMismatches++
		}
	}
	return rep
}
