// Package gf2 implements arithmetic in the binary Galois fields GF(2^m)
// and polynomials over GF(2). It is the mathematical substrate for the
// BCH error-correcting codes used as the paper's conventional-ECC
// baselines (DECTED, QECPED, OECNED).
package gf2

import "fmt"

// defaultPrimitive maps field degree m to a primitive polynomial for
// GF(2^m), expressed as a bit mask including the x^m term. These are the
// standard primitive trinomials/pentanomials used in coding texts
// (Lin & Costello, App. A).
var defaultPrimitive = map[int]uint32{
	2:  0x7,    // x^2 + x + 1
	3:  0xB,    // x^3 + x + 1
	4:  0x13,   // x^4 + x + 1
	5:  0x25,   // x^5 + x^2 + 1
	6:  0x43,   // x^6 + x + 1
	7:  0x89,   // x^7 + x^3 + 1
	8:  0x11D,  // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,  // x^9 + x^4 + 1
	10: 0x409,  // x^10 + x^3 + 1
	11: 0x805,  // x^11 + x^2 + 1
	12: 0x1053, // x^12 + x^6 + x^4 + x + 1
	13: 0x201B, // x^13 + x^4 + x^3 + x + 1
	14: 0x4443, // x^14 + x^10 + x^6 + x + 1
	15: 0x8003, // x^15 + x + 1
	16: 0x1100B,
}

// Field represents GF(2^m) with exp/log tables for O(1) multiplication.
type Field struct {
	m    int
	size int // 2^m
	poly uint32
	exp  []uint16 // exp[i] = alpha^i, length 2*(size-1) to avoid mod
	log  []int    // log[x] = i such that alpha^i = x; log[0] undefined (-1)
}

// NewField constructs GF(2^m) using the package's default primitive
// polynomial for m. Supported m: 2..16.
func NewField(m int) (*Field, error) {
	p, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("gf2: unsupported field degree m=%d (want 2..16)", m)
	}
	return NewFieldPoly(m, p)
}

// MustField is NewField that panics on error; for use with known-good m.
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFieldPoly constructs GF(2^m) from an explicit primitive polynomial
// (bit i of poly is the coefficient of x^i; bit m must be set).
func NewFieldPoly(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("gf2: field degree m=%d out of range [2,16]", m)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("gf2: polynomial %#x is not monic of degree %d", poly, m)
	}
	f := &Field{m: m, size: 1 << uint(m), poly: poly}
	n := f.size - 1
	f.exp = make([]uint16, 2*n)
	f.log = make([]int, f.size)
	for i := range f.log {
		f.log[i] = -1
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = uint16(x)
		if f.log[x] != -1 {
			return nil, fmt.Errorf("gf2: polynomial %#x is not primitive for m=%d", poly, m)
		}
		f.log[x] = i
		x <<= 1
		if x&(1<<uint(m)) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf2: polynomial %#x is not primitive for m=%d (period mismatch)", poly, m)
	}
	copy(f.exp[n:], f.exp[:n])
	return f, nil
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// Size returns 2^m, the number of field elements.
func (f *Field) Size() int { return f.size }

// N returns 2^m - 1, the multiplicative group order (natural BCH length).
func (f *Field) N() int { return f.size - 1 }

// Add returns a + b (XOR in characteristic 2).
func (f *Field) Add(a, b uint16) uint16 { return a ^ b }

// Mul returns the product a*b in the field.
func (f *Field) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b. It panics if b == 0.
func (f *Field) Div(a, b uint16) uint16 {
	if b == 0 {
		panic("gf2: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := f.log[a] - f.log[b]
	if d < 0 {
		d += f.N()
	}
	return f.exp[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func (f *Field) Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.exp[f.N()-f.log[a]]
}

// Exp returns alpha^i for any integer i (reduced mod 2^m-1).
func (f *Field) Exp(i int) uint16 {
	n := f.N()
	i %= n
	if i < 0 {
		i += n
	}
	return f.exp[i]
}

// Log returns the discrete log of a (the i with alpha^i == a).
// It panics if a == 0.
func (f *Field) Log(a uint16) int {
	if a == 0 {
		panic("gf2: log of zero")
	}
	return f.log[a]
}

// Pow returns a^k for k >= 0.
func (f *Field) Pow(a uint16, k int) uint16 {
	if a == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if k == 0 {
		return 1
	}
	e := (f.log[a] * k) % f.N()
	if e < 0 {
		e += f.N()
	}
	return f.exp[e]
}
