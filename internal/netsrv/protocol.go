// Package netsrv is the network serving layer: a pipelined,
// length-prefixed binary protocol over TCP that puts concurrent remote
// clients in front of a store.Store — one resilience engine or N
// shards, unchanged. The wire layer is deliberately thin: the server's
// job is to accumulate in-flight requests into pcache.ReadOp/WriteOp
// batches so socket traffic rides the same bank-amortised batch path
// local callers use, and to keep per-connection memory bounded (a
// bounded response queue per connection is the backpressure mechanism:
// when a client stops draining responses, its requests stop being
// read, and TCP flow control pushes back to the sender).
//
// Wire format (all integers big-endian):
//
//	frame  := u32 length | u8 opcode | u64 request-id | payload
//	         (length counts opcode+id+payload, so length >= 9)
//
// Requests (deadline is relative nanoseconds, 0 = none):
//
//	READ        := u64 deadline | u64 addr | u32 n
//	WRITE       := u64 deadline | u64 addr | data...
//	BATCH_READ  := u64 deadline | u32 count | count×(u64 addr, u32 n)
//	BATCH_WRITE := u64 deadline | u32 count | count×(u64 addr, u32 len, data)
//	FLUSH       := u64 deadline
//	STATS       := (empty)
//	EPOCH       := u64 addr
//
// A nonzero deadline on a batch frame bounds the batch end-to-end: the
// server maps it to a context on the store's ReadBatchCtx/WriteBatchCtx
// path, so per-op recovery work is deadline-bounded exactly like a
// single-op READ/WRITE, and ops the deadline kills answer stDeadline
// (or stRecoveryInProgress) individually inside an stOK batch response.
// A batch whose deadline has already expired on arrival is not served:
// every op reports stDeadline — an expired batch deadline is per-op
// deadline outcomes, never silent success.
//
// Responses echo the opcode and request id, then carry a status byte:
//
//	response := u8 status | payload
//
// On stOK: READ carries the data; WRITE and FLUSH are empty;
// BATCH_READ carries u32 count | count×(u8 status, u32 len, data);
// BATCH_WRITE carries u32 count | count×u8 status; STATS carries the
// eight pcache.Stats counters as u64s; EPOCH carries the u64 loss
// epoch. On any other status the payload is a human-readable error
// message (batch per-op failures carry status codes only).
//
// Responses may arrive in any order; the request id is the correlation
// key. Clients pipeline by keeping many ids in flight.
package netsrv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"twodcache/internal/bufpool"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// Opcodes. Responses echo the request's opcode.
const (
	opRead uint8 = iota + 1
	opWrite
	opBatchRead
	opBatchWrite
	opFlush
	opStats
	opEpoch
)

// Status codes. Everything except stOK maps back to a canonical error
// on the client so errors.Is works across the wire.
const (
	stOK uint8 = iota
	// stUncorrectable: the ladder exhausted — pcache.ErrUncorrectable.
	stUncorrectable
	// stRecoveryInProgress: a bounded request abandoned an in-flight
	// repair — resilience.ErrRecoveryInProgress.
	stRecoveryInProgress
	// stDeadline: the request's deadline expired —
	// context.DeadlineExceeded.
	stDeadline
	// stCanceled: the serving context was cancelled — context.Canceled.
	stCanceled
	// stBadRequest: the frame was well-formed but unserviceable (span
	// crossing a line boundary, zero-length read, oversized batch).
	stBadRequest
	// stDraining: the server is shutting down and refused the request.
	stDraining
	// stUnsupported: the opcode needs a hook the server lacks (EPOCH
	// without an oracle).
	stUnsupported
	// stError: any other failure; the payload carries the message.
	stError
)

// Frame geometry and guard rails.
const (
	frameHeader = 4               // the u32 length prefix
	frameFixed  = 1 + 8           // opcode + request id, covered by length
	maxFrame    = 4 << 20         // hard cap on one frame's length field
	maxBatchOps = 1 << 16         // ops per batch frame
	maxReadLen  = 1 << 20         // bytes per single read
	readBufSize = 64 * 1024       // bufio sizes on both sides
	statsFields = 8               // pcache.Stats counters on the wire
	statsLen    = statsFields * 8 // encoded size
)

// Protocol-level sentinels surfaced by the client.
var (
	// ErrDraining reports that the server refused the request because
	// it is shutting down.
	ErrDraining = errors.New("netsrv: server draining")
	// ErrBadRequest reports a request the server rejected as malformed
	// or unserviceable.
	ErrBadRequest = errors.New("netsrv: bad request")
	// ErrUnsupported reports an opcode the server cannot serve (EPOCH
	// without an oracle hook).
	ErrUnsupported = errors.New("netsrv: unsupported operation")
	// ErrClosed reports that the client connection is closed (by Close
	// or a transport failure); the wrapped cause is attached.
	ErrClosed = errors.New("netsrv: connection closed")
)

// RemoteError is a non-OK response decoded from the wire. It unwraps to
// the canonical sentinel for its status, so
// errors.Is(err, pcache.ErrUncorrectable), errors.Is(err,
// context.DeadlineExceeded), etc. classify remote failures exactly like
// local ones. Coordinates inside Msg are the server store's — already
// globalised when the store is sharded.
type RemoteError struct {
	Status uint8
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Msg != "" {
		return "netsrv: remote: " + e.Msg
	}
	return fmt.Sprintf("netsrv: remote status %d", e.Status)
}

// Unwrap maps the status to its canonical sentinel.
func (e *RemoteError) Unwrap() error {
	switch e.Status {
	case stUncorrectable:
		return pcache.ErrUncorrectable
	case stRecoveryInProgress:
		return resilience.ErrRecoveryInProgress
	case stDeadline:
		return context.DeadlineExceeded
	case stCanceled:
		return context.Canceled
	case stBadRequest:
		return ErrBadRequest
	case stDraining:
		return ErrDraining
	case stUnsupported:
		return ErrUnsupported
	}
	return nil
}

// statusOf classifies a store error into its wire status.
func statusOf(err error) uint8 {
	switch {
	case err == nil:
		return stOK
	case errors.Is(err, resilience.ErrRecoveryInProgress):
		// Checked before the context sentinels: a RecoveryInProgressError
		// carries the deadline cause in its chain, and the more specific
		// classification must win.
		return stRecoveryInProgress
	case errors.Is(err, pcache.ErrUncorrectable):
		return stUncorrectable
	case errors.Is(err, context.DeadlineExceeded):
		return stDeadline
	case errors.Is(err, context.Canceled):
		return stCanceled
	}
	return stError
}

// statusErr maps a wire status back to an error (nil for stOK).
func statusErr(status uint8, msg string) error {
	if status == stOK {
		return nil
	}
	return &RemoteError{Status: status, Msg: msg}
}

// Big-endian shorthands used throughout the codec.
func be64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
func be32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func bePut64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
func bePut32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }

func be64Append(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func be32Append(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// frame is one decoded request or response.
type frame struct {
	op      uint8
	id      uint64
	payload []byte
}

// readFrame decodes one frame. The payload is freshly allocated per
// frame and owned by the caller — the client uses this form because
// response payloads transfer ownership outward (Read hands its payload
// to the caller).
func readFrame(r io.Reader) (frame, error) {
	return readFrameAlloc(r, plainAlloc)
}

func plainAlloc(n int) []byte { return make([]byte, n) }

// readFramePooled is readFrame with the payload drawn from bufpool.
// The caller owns the payload and must Put it back once nothing
// aliases it — the server's reader loop does, at the point each
// handler stops retaining the frame.
func readFramePooled(r io.Reader) (frame, error) {
	return readFrameAlloc(r, bufpool.Get)
}

func readFrameAlloc(r io.Reader, alloc func(int) []byte) (frame, error) {
	var hdr [frameHeader + frameFixed]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length < frameFixed || length > maxFrame {
		return frame{}, fmt.Errorf("netsrv: frame length %d out of range", length)
	}
	f := frame{
		op:      hdr[4],
		id:      binary.BigEndian.Uint64(hdr[5:13]),
		payload: alloc(int(length - frameFixed)),
	}
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, err
	}
	return f, nil
}

// appendFrame encodes a frame into buf and returns the extended slice.
func appendFrame(buf []byte, op uint8, id uint64, payload ...[]byte) []byte {
	n := 0
	for _, p := range payload {
		n += len(p)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameFixed+n))
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint64(buf, id)
	for _, p := range payload {
		buf = append(buf, p...)
	}
	return buf
}

// deadlineCtx converts a wire deadline (relative nanoseconds) into a
// context. A zero deadline returns the parent with a no-op cancel.
// Values above MaxInt64 — which time.Duration cannot represent — clamp
// to MaxInt64 instead of wrapping negative and expiring instantly.
func deadlineCtx(parent context.Context, nanos uint64) (context.Context, context.CancelFunc) {
	if nanos == 0 {
		return parent, func() {}
	}
	if nanos > math.MaxInt64 {
		nanos = math.MaxInt64
	}
	return context.WithTimeout(parent, time.Duration(nanos))
}

// encodeStats flattens the eight pcache.Stats counters.
func encodeStats(st pcache.Stats) []byte {
	buf := make([]byte, 0, statsLen)
	for _, v := range [statsFields]uint64{
		st.Accesses, st.Hits, st.Misses, st.Writebacks,
		st.ErrorsRecovered, st.Uncorrectable, st.Bypassed, st.DirtyLinesLost,
	} {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return buf
}

// decodeStats is the inverse of encodeStats.
func decodeStats(b []byte) (pcache.Stats, error) {
	if len(b) != statsLen {
		return pcache.Stats{}, fmt.Errorf("netsrv: stats payload %d bytes, want %d", len(b), statsLen)
	}
	u := func(i int) uint64 { return binary.BigEndian.Uint64(b[i*8:]) }
	return pcache.Stats{
		Accesses: u(0), Hits: u(1), Misses: u(2), Writebacks: u(3),
		ErrorsRecovered: u(4), Uncorrectable: u(5), Bypassed: u(6), DirtyLinesLost: u(7),
	}, nil
}
