//go:build !race

package netsrv

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
