package experiments

import (
	"strconv"
	"strings"
	"testing"

	"twodcache/internal/sim"
)

func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1b(t *testing.T) {
	tab := Fig1b()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// EDC8 and SECDED at 12.5% for 64b; OECNED ~89.1%.
	if tab.Rows[0][1] != "12.5%" || tab.Rows[1][1] != "12.5%" {
		t.Fatalf("EDC8/SECDED overhead: %v", tab.Rows)
	}
	if v := pctVal(t, tab.Rows[4][1]); v < 88 || v < pctVal(t, tab.Rows[2][1]) {
		t.Fatalf("OECNED 64b overhead %v", v)
	}
	// 256b words amortise better: every 256b overhead < 64b overhead
	// for correcting codes.
	for _, r := range tab.Rows[1:] {
		if pctVal(t, r[2]) >= pctVal(t, r[1]) {
			t.Fatalf("%s: 256b overhead not smaller: %v", r[0], r)
		}
	}
}

func TestFig1cMonotone(t *testing.T) {
	tab := Fig1c()
	prev := -1.0
	for _, r := range tab.Rows[1:] { // skip EDC8 (detection-only)
		v := pctVal(t, r[1])
		if v <= prev {
			t.Fatalf("energy overhead not increasing with strength: %v", tab.Rows)
		}
		prev = v
	}
}

func TestFig2Shapes(t *testing.T) {
	tabs := Fig2()
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, r := range tab.Rows {
			first, _ := strconv.ParseFloat(r[1], 64)
			last, _ := strconv.ParseFloat(r[5], 64)
			if first != 1.0 {
				t.Fatalf("%s not normalised: %v", tab.ID, r)
			}
			if last < 1.0 {
				t.Fatalf("%s energy decreased with interleaving: %v", tab.ID, r)
			}
		}
	}
}

func TestFig3Coverage(t *testing.T) {
	tab := Fig3(Quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// SECDED+Intv4 corrects 1x4 but not 1x32, 32x32, or a row failure.
	sec := tab.Rows[0]
	if sec[3] != "100.0%" || sec[4] == "100.0%" || sec[5] == "100.0%" || sec[6] == "100.0%" {
		t.Fatalf("SECDED row: %v", sec)
	}
	// OECNED+Intv4 corrects anything <= 32 bits wide per row (including
	// the 32x32 box, independently per word) but not a row failure.
	oec := tab.Rows[1]
	if oec[4] != "100.0%" || oec[5] != "100.0%" || oec[6] == "100.0%" {
		t.Fatalf("OECNED row: %v", oec)
	}
	// 2D corrects everything up to 32x32.
	td := tab.Rows[2]
	for _, col := range []int{3, 4, 5, 6} {
		if td[col] != "100.0%" {
			t.Fatalf("2D row: %v", td)
		}
	}
	// Storage ordering: SECDED < 2D << OECNED.
	if !(pctVal(t, sec[1]) < pctVal(t, td[1]) && pctVal(t, td[1]) < pctVal(t, oec[1])) {
		t.Fatalf("storage ordering: %v %v %v", sec[1], td[1], oec[1])
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	out := tab.Render()
	for _, want := range []string{"64kB", "16MB", "4MB", "OoO", "in-order"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tab := Fig5(sim.FatConfig(), Quick())
	if len(tab.Rows) != 7 { // 6 workloads + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, c := range r[1:] {
			v := pctVal(t, c)
			if v < -5 || v > 25 {
				t.Fatalf("implausible loss %v in %v", v, r)
			}
		}
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	tabs := Fig6(sim.LeanConfig(), Quick())
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// Every workload must show nonzero L1 extra reads under 2D.
	for _, r := range tabs[0].Rows {
		v, _ := strconv.ParseFloat(r[5], 64)
		if v <= 0 {
			t.Fatalf("no extra reads: %v", r)
		}
	}
}

func TestFig7(t *testing.T) {
	for _, l2 := range []bool{false, true} {
		tab := Fig7(l2, Quick())
		if len(tab.Rows) < 4 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		// 2D (first row) must beat OECNED (4th row) on all three axes.
		td, oec := tab.Rows[0], tab.Rows[3]
		for col := 1; col <= 3; col++ {
			if pctVal(t, td[col]) >= pctVal(t, oec[col]) {
				t.Fatalf("fig7 l2=%v col %d: 2D (%s) not cheaper than OECNED (%s)",
					l2, col, td[col], oec[col])
			}
		}
		// 2D power should be modest: below 200% of the SECDED baseline.
		if v := pctVal(t, td[3]); v > 200 {
			t.Fatalf("2D power %v%% too high", v)
		}
	}
}

func TestFig8a(t *testing.T) {
	tab := Fig8a()
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if pctVal(t, last[1]) > 1 { // Spare_128 dead at 4000 faults
		t.Fatalf("Spare_128 at 4000 faults: %v", last[1])
	}
	if pctVal(t, last[4]) < 90 { // ECC+Spare_32 healthy
		t.Fatalf("ECC+Spare_32 at 4000 faults: %v", last[4])
	}
}

func TestFig8b(t *testing.T) {
	tab := Fig8b()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// 2D row stays at 100%.
	for _, c := range tab.Rows[0][1:] {
		if c != "100.0%" {
			t.Fatalf("2D row decayed: %v", tab.Rows[0])
		}
	}
	// Highest HER decays the most by year 5.
	if !(pctVal(t, tab.Rows[3][6]) < pctVal(t, tab.Rows[2][6]) &&
		pctVal(t, tab.Rows[2][6]) < pctVal(t, tab.Rows[1][6])) {
		t.Fatalf("HER ordering violated: %v", tab.Rows)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	opt := Quick()
	vint := AblationVerticalInterleave(opt)
	if len(vint.Rows) != 4 {
		t.Fatalf("vint rows = %d", len(vint.Rows))
	}
	// In-coverage clusters always corrected; beyond-coverage never.
	for _, r := range vint.Rows {
		if r[2] != "100.0%" {
			t.Fatalf("VxW coverage failed: %v", r)
		}
		if r[3] == "100.0%" {
			t.Fatalf("beyond-V coverage unexpectedly full: %v", r)
		}
	}
	hc := AblationHorizontalCode(opt)
	if len(hc.Rows) != 3 {
		t.Fatalf("hcode rows = %d", len(hc.Rows))
	}
	b := AblationBCHBits()
	if len(b.Rows) != 6 {
		t.Fatalf("bch rows = %d", len(b.Rows))
	}
	// Constructed BCH codes never need more bits than the estimate.
	for _, r := range b.Rows {
		got, _ := strconv.Atoi(r[3])
		est, _ := strconv.Atoi(r[4])
		if got > est {
			t.Fatalf("constructed %d > estimate %d: %v", got, est, r)
		}
	}
}

func TestBarChart(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo", Header: []string{"scheme", "overhead"},
		Rows: [][]string{{"A", "12.5%"}, {"B", "89.1%"}, {"C", "25.0%"}},
	}
	c := tab.BarChart(1, 40)
	if !strings.Contains(c, "A") || !strings.Contains(c, "89.1%") {
		t.Fatalf("chart missing content:\n%s", c)
	}
	// B's bar must be the longest.
	lines := strings.Split(strings.TrimSpace(c), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if !(count(lines[2]) > count(lines[1]) && count(lines[2]) > count(lines[3])) {
		t.Fatalf("bar lengths wrong:\n%s", c)
	}
	if tab.BarChart(0, 40) != "" || tab.BarChart(9, 40) != "" {
		t.Fatal("invalid column accepted")
	}
	// Non-numeric columns are skipped by Charts.
	mixed := Table{
		Title: "m", Header: []string{"a", "b", "c"},
		Rows: [][]string{{"r", "hello", "3.0"}},
	}
	out := mixed.Charts(20)
	if strings.Contains(out, "hello") {
		t.Fatal("non-numeric column charted")
	}
	if !strings.Contains(out, "3.00") {
		t.Fatal("numeric column missing")
	}
}

func TestFig1bChartRenders(t *testing.T) {
	c := Fig1b().Charts(40)
	if !strings.Contains(c, "OECNED") || !strings.Contains(c, "#") {
		t.Fatalf("fig1b chart:\n%s", c)
	}
}

func TestNewAblationDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	opt := Quick()

	wt := AblationWriteThrough(opt)
	if len(wt.Rows) != 4 {
		t.Fatalf("abl-wt rows = %d", len(wt.Rows))
	}
	// Write-through must carry far more L2 write traffic than 2D
	// write-back on the same system.
	for i := 0; i < len(wt.Rows); i += 2 {
		wb, _ := strconv.ParseFloat(wt.Rows[i][3], 64)
		wtr, _ := strconv.ParseFloat(wt.Rows[i+1][3], 64)
		if wtr < wb*3 {
			t.Fatalf("write-through traffic %v not >> write-back %v", wtr, wb)
		}
	}

	sc := AblationScrubInterval(opt)
	if len(sc.Rows) != 5 {
		t.Fatalf("abl-scrub rows = %d", len(sc.Rows))
	}
	firstI, _ := strconv.ParseFloat(sc.Rows[0][2], 64)
	lastI, _ := strconv.ParseFloat(sc.Rows[len(sc.Rows)-1][2], 64)
	if lastI < firstI {
		t.Fatalf("longer scrub interval safer: %v vs %v", lastI, firstI)
	}

	bisr := AblationBISRYield(opt)
	if len(bisr.Rows) != 6 {
		t.Fatalf("abl-bisr rows = %d", len(bisr.Rows))
	}

	errT := AblationRecoveryRate(opt)
	if len(errT.Rows) != 4 {
		t.Fatalf("abl-err rows = %d", len(errT.Rows))
	}
	if errT.Rows[0][1] != "0" {
		t.Fatalf("no-injection row has recoveries: %v", errT.Rows[0])
	}

	vc := AblationVerticalCode(opt)
	if len(vc.Rows) != 2 {
		t.Fatalf("abl-vcode rows = %d", len(vc.Rows))
	}
	// Parity handles clusters; vertical SECDED handles scattered.
	if vc.Rows[0][3] != "100.0%" || vc.Rows[1][5] != "100.0%" {
		t.Fatalf("vcode coverage: %v", vc.Rows)
	}
	if vc.Rows[1][3] == "100.0%" {
		t.Fatalf("vertical SECDED should not cover 32x32 clusters: %v", vc.Rows[1])
	}

	repl := AblationReplicationCache(opt)
	if len(repl.Rows) != 4 {
		t.Fatalf("abl-repl rows = %d", len(repl.Rows))
	}
	small, _ := strconv.ParseFloat(repl.Rows[1][2], 64)
	big, _ := strconv.ParseFloat(repl.Rows[3][2], 64)
	if small <= big {
		t.Fatalf("small replication buffer should spill more: %v vs %v", small, big)
	}

	hi := AblationHorizontalInterleave(opt)
	if len(hi.Rows) != 3 {
		t.Fatalf("abl-hintv rows = %d", len(hi.Rows))
	}
	for _, r := range hi.Rows {
		if r[3] != "100.0%" {
			t.Fatalf("equal-width combo lost coverage: %v", r)
		}
	}

	mc := AblationMiscorrection(opt)
	if len(mc.Rows) != 5 {
		t.Fatalf("abl-miscorrect rows = %d", len(mc.Rows))
	}
	// Nothing silently corrupts at w=1; SECDED does at w=3.
	for _, r := range mc.Rows {
		if r[1] != "0.0%" {
			t.Fatalf("w=1 silent corruption in %v", r)
		}
	}
	if mc.Rows[1][3] == "0.0%" {
		t.Fatalf("SECDED at w=3 should miscorrect: %v", mc.Rows[1])
	}
}

func TestFig4Walkthrough(t *testing.T) {
	tab := Fig4(Quick())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// All in-coverage scenarios corrected; the beyond-coverage one
	// detected.
	for _, r := range tab.Rows[:5] {
		if r[5] != "corrected" {
			t.Fatalf("in-coverage scenario failed: %v", r)
		}
	}
	if tab.Rows[5][5] != "detected-uncorrectable" {
		t.Fatalf("beyond-coverage outcome: %v", tab.Rows[5])
	}
	// Latency stays in the paper's "few hundred or thousand cycles".
	for _, r := range tab.Rows {
		lat, _ := strconv.Atoi(r[4])
		if lat < 500 || lat > 10000 {
			t.Fatalf("latency %d out of the BIST-march range: %v", lat, r)
		}
	}
	// The row-failure scenario must use row reconstruction and the
	// column failure the column branch.
	if tab.Rows[3][1] != "row-reconstruction" || tab.Rows[4][1] != "column-localisation" {
		t.Fatalf("branches: %v / %v", tab.Rows[3], tab.Rows[4])
	}
}
