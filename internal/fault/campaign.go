package fault

import (
	"fmt"
	"math/rand"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/twod"
)

// Instance is one freshly-prepared protected array under test.
type Instance interface {
	// Target exposes the raw bit-flip surface for injection.
	Target() Target
	// Repair attempts correction and reports whether the array contents
	// exactly match the pre-injection golden state afterwards.
	Repair() bool
}

// Scheme builds test instances of a particular protection configuration.
type Scheme interface {
	// Name identifies the scheme, e.g. "2D(EDC8+Intv4,EDC32)".
	Name() string
	// StorageOverhead is the check-bit storage cost as a fraction of
	// data bits (vertical parity rows included where applicable).
	StorageOverhead() float64
	// New prepares a randomly-filled instance.
	New(rng *rand.Rand) Instance
}

// --- 2D scheme ---------------------------------------------------------

// TwoDScheme builds twod.Array instances.
type TwoDScheme struct {
	// Label overrides the generated name when non-empty.
	Label string
	// Cfg is the array configuration to instantiate.
	Cfg twod.Config
}

// Name returns the scheme label.
func (s TwoDScheme) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("2D(%s+Intv%d,V%d)", s.Cfg.Horizontal.Name(), s.Cfg.WordsPerRow, s.Cfg.VerticalGroups)
}

// StorageOverhead accounts both the horizontal check bits and the V
// vertical parity rows.
func (s TwoDScheme) StorageOverhead() float64 {
	h := s.Cfg.Horizontal
	horiz := float64(h.CheckBits()) / float64(h.DataBits())
	vert := float64(s.Cfg.VerticalGroups) / float64(s.Cfg.Rows)
	// Vertical rows span the whole physical row (data+check bits), so
	// their relative cost applies to the full codeword width.
	cwScale := float64(h.DataBits()+h.CheckBits()) / float64(h.DataBits())
	return horiz + vert*cwScale
}

type twoDInstance struct {
	arr    *twod.Array
	golden *bitvec.Matrix
}

// New prepares a randomly-filled 2D array instance. Campaigns measure
// the paper's coverage claims under its declared fault model (column
// failures and contiguous clusters), so the instance enables the
// fault-model-trusting column solve (twod.Config.AssumeClusteredFaults)
// regardless of the caller's setting; online caches keep the strict
// default.
func (s TwoDScheme) New(rng *rand.Rand) Instance {
	cfg := s.Cfg
	cfg.AssumeClusteredFaults = true
	a := twod.MustArray(cfg)
	k := s.Cfg.Horizontal.DataBits()
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < s.Cfg.WordsPerRow; w++ {
			a.Write(r, w, randWord(rng, k))
		}
	}
	return &twoDInstance{arr: a, golden: a.SnapshotData()}
}

func (i *twoDInstance) Target() Target { return i.arr }

func (i *twoDInstance) Repair() bool {
	rep := i.arr.Recover()
	if !rep.Success {
		return false
	}
	return len(i.arr.SnapshotData().Diff(i.golden)) == 0
}

// --- conventional scheme -----------------------------------------------

// ConventionalScheme builds per-word-code-only baselines
// (e.g. SECDED+Intv4, OECNED+Intv4).
type ConventionalScheme struct {
	// Label overrides the generated name when non-empty.
	Label string
	// Rows and WordsPerRow fix the geometry.
	Rows, WordsPerRow int
	// Code is the per-word code.
	Code ecc.Code
}

// Name returns the scheme label.
func (s ConventionalScheme) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("%s+Intv%d", s.Code.Name(), s.WordsPerRow)
}

// StorageOverhead returns the per-word check-bit cost.
func (s ConventionalScheme) StorageOverhead() float64 {
	return ecc.StorageOverhead(s.Code)
}

type convInstance struct {
	arr    *twod.ConventionalArray
	golden *bitvec.Matrix
}

// New prepares a randomly-filled conventional array instance.
func (s ConventionalScheme) New(rng *rand.Rand) Instance {
	a := twod.MustConventionalArray(s.Rows, s.WordsPerRow, s.Code)
	for r := 0; r < s.Rows; r++ {
		for w := 0; w < s.WordsPerRow; w++ {
			a.Write(r, w, randWord(rng, s.Code.DataBits()))
		}
	}
	return &convInstance{arr: a, golden: a.SnapshotData()}
}

func (i *convInstance) Target() Target { return i.arr }

func (i *convInstance) Repair() bool {
	_, unc := i.arr.Scrub()
	if unc > 0 {
		return false
	}
	return len(i.arr.SnapshotData().Diff(i.golden)) == 0
}

// --- coverage campaign ---------------------------------------------------

// CoverageCell is the measured correction rate for one error footprint.
type CoverageCell struct {
	// H and W are the injected cluster bounds (rows x physical columns).
	H, W int
	// Trials and Successes count campaign outcomes.
	Trials, Successes int
}

// Rate returns the success fraction.
func (c CoverageCell) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// CoverageMatrix measures a scheme's correction rate over a grid of
// cluster footprints, injecting each at random positions.
//
// Each (h, w) cell runs on its own rng, seeded from one base draw off
// the caller's rng mixed with the cell's footprint, so a cell's trial
// sequence depends only on the incoming seed and (h, w) — adding,
// removing, or reordering grid entries never perturbs the other cells'
// results. (Previously all cells shared the caller's rng, so every
// cell's outcome depended on the entire grid before it.)
func CoverageMatrix(s Scheme, rng *rand.Rand, heights, widths []int, trials int) []CoverageCell {
	base := rng.Int63()
	var out []CoverageCell
	for _, h := range heights {
		for _, w := range widths {
			cellRng := rand.New(rand.NewSource(cellSeed(base, h, w)))
			cell := CoverageCell{H: h, W: w}
			for tr := 0; tr < trials; tr++ {
				inst := s.New(cellRng)
				t := inst.Target()
				if h > t.Rows() || w > t.RowBits() {
					continue
				}
				r0 := cellRng.Intn(t.Rows() - h + 1)
				c0 := cellRng.Intn(t.RowBits() - w + 1)
				Apply(t, SolidCluster(r0, c0, h, w))
				cell.Trials++
				if inst.Repair() {
					cell.Successes++
				}
			}
			out = append(out, cell)
		}
	}
	return out
}

// DeriveSeed mixes a base seed with a stream index through the
// splitmix64 finalizer, so consumers that need many independent
// deterministic rng streams (per-cell campaign rngs, per-client replay
// traces, storm generators) can derive uncorrelated sub-seeds from one
// user-visible seed instead of sharing a single rand.Source.
func DeriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) ^ stream
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return int64(z ^ z>>31)
}

// cellSeed derives the per-cell rng seed from the cell footprint, so
// nearby (h, w) pairs land on uncorrelated streams.
func cellSeed(base int64, h, w int) int64 {
	return DeriveSeed(base, uint64(h)<<32^uint64(w))
}

func randWord(rng *rand.Rand, k int) *bitvec.Vector {
	v := bitvec.New(k)
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// --- vertical-SECDED scheme ---------------------------------------------

// VSECDEDScheme builds the alternative vertical-ECC design point
// (twod.VSECDEDArray): SECDED down the columns instead of interleaved
// parity rows.
type VSECDEDScheme struct {
	// Label overrides the generated name when non-empty.
	Label string
	// Rows, WordsPerRow fix the geometry; Horizontal is the per-word code.
	Rows, WordsPerRow int
	Horizontal        ecc.HorizontalCode
}

// Name returns the scheme label.
func (s VSECDEDScheme) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("2D(%s+Intv%d,vSECDED)", s.Horizontal.Name(), s.WordsPerRow)
}

// StorageOverhead accounts the horizontal check bits plus the vertical
// SECDED check rows.
func (s VSECDEDScheme) StorageOverhead() float64 {
	h := s.Horizontal
	horiz := float64(h.CheckBits()) / float64(h.DataBits())
	a := twod.MustVSECDEDArray(s.Rows, s.WordsPerRow, h)
	cwScale := float64(h.DataBits()+h.CheckBits()) / float64(h.DataBits())
	return horiz + float64(a.CheckRows())/float64(s.Rows)*cwScale
}

type vsecInstance struct {
	arr    *twod.VSECDEDArray
	golden *bitvec.Matrix
}

// New prepares a randomly-filled instance.
func (s VSECDEDScheme) New(rng *rand.Rand) Instance {
	a := twod.MustVSECDEDArray(s.Rows, s.WordsPerRow, s.Horizontal)
	for r := 0; r < s.Rows; r++ {
		for w := 0; w < s.WordsPerRow; w++ {
			a.Write(r, w, randWord(rng, s.Horizontal.DataBits()))
		}
	}
	return &vsecInstance{arr: a, golden: a.SnapshotData()}
}

func (i *vsecInstance) Target() Target { return i.arr }

func (i *vsecInstance) Repair() bool {
	if !i.arr.Recover().Success {
		return false
	}
	return len(i.arr.SnapshotData().Diff(i.golden)) == 0
}
