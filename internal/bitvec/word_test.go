package bitvec

import (
	"math/rand"
	"testing"
)

func TestMakeCodewordBasics(t *testing.T) {
	buf := make([]uint64, 3)
	c := MakeCodeword(buf, 130)
	if c.Len() != 130 || len(c.Words()) != 3 {
		t.Fatalf("len=%d words=%d", c.Len(), len(c.Words()))
	}
	c.SetBit(0, true)
	c.SetBit(129, true)
	if !c.Bit(0) || !c.Bit(129) || c.Bit(64) {
		t.Fatal("bit set/get broken")
	}
	if c.PopCount() != 2 {
		t.Fatalf("popcount %d", c.PopCount())
	}
	c.Flip(129)
	if c.Bit(129) || c.PopCount() != 1 {
		t.Fatal("flip broken")
	}
	if c.IsZero() {
		t.Fatal("not zero")
	}
	c.Zero()
	if !c.IsZero() {
		t.Fatal("zero broken")
	}
}

func TestCodewordVectorBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 63, 64, 65, 72, 128, 266} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		c := v.AsCodeword()
		if c.Len() != n || c.PopCount() != v.PopCount() {
			t.Fatalf("n=%d view mismatch", n)
		}
		for i := 0; i < n; i++ {
			if c.Bit(i) != v.Bit(i) {
				t.Fatalf("n=%d bit %d mismatch", n, i)
			}
		}
		// Mutating through the view mutates the vector.
		c.Flip(n - 1)
		if c.Bit(n-1) != v.Bit(n-1) {
			t.Fatal("view does not share storage")
		}
		got := c.CopyToVector()
		if !got.Equal(v) {
			t.Fatalf("n=%d CopyToVector mismatch", n)
		}
	}
}

func TestCodewordUint64AtStoreBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200
	for trial := 0; trial < 200; trial++ {
		ref := New(n)
		buf := make([]uint64, WordsFor(n))
		c := MakeCodeword(buf, n)
		for i := 0; i < n; i++ {
			b := rng.Intn(2) == 1
			ref.Set(i, b)
			c.SetBit(i, b)
		}
		off := rng.Intn(n + 1)
		// Uint64At must agree with a bit-by-bit read.
		var want uint64
		for i := 0; i < 64 && off+i < n; i++ {
			if ref.Bit(off + i) {
				want |= 1 << uint(i)
			}
		}
		if got := c.Uint64At(off); got != want {
			t.Fatalf("Uint64At(%d) = %#x want %#x", off, got, want)
		}
		// StoreBits round-trips through bit reads.
		nb := rng.Intn(65)
		if off+nb > n {
			nb = n - off
		}
		x := rng.Uint64()
		c.StoreBits(off, nb, x)
		for i := 0; i < nb; i++ {
			if c.Bit(off+i) != (x&(1<<uint(i)) != 0) {
				t.Fatalf("StoreBits(%d,%d) bit %d wrong", off, nb, i)
			}
		}
		// Bits outside the stored span must be untouched.
		for i := 0; i < n; i++ {
			if i >= off && i < off+nb {
				continue
			}
			if c.Bit(i) != ref.Bit(i) {
				t.Fatalf("StoreBits(%d,%d) clobbered bit %d", off, nb, i)
			}
		}
	}
}

func TestCodewordSliceXor(t *testing.T) {
	buf := make([]uint64, 3)
	c := MakeCodeword(buf, 192)
	c.SetBit(64, true)
	c.SetBit(100, true)
	s := c.Slice(64, 128)
	if s.Len() != 64 || !s.Bit(0) || !s.Bit(36) {
		t.Fatal("slice view wrong")
	}
	s.Flip(0)
	if c.Bit(64) {
		t.Fatal("slice does not share storage")
	}
	var other [1]uint64
	o := MakeCodeword(other[:], 64)
	o.SetBit(36, true)
	s.Xor(o)
	if c.Bit(100) {
		t.Fatal("xor through slice broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned slice must panic")
		}
	}()
	c.Slice(1, 65)
}

func TestCodewordMaskTail(t *testing.T) {
	buf := []uint64{^uint64(0), ^uint64(0)}
	c := MakeCodeword(buf, 72)
	c.MaskTail()
	if buf[1] != 0xFF {
		t.Fatalf("tail not masked: %#x", buf[1])
	}
	if c.PopCount() != 72 {
		t.Fatalf("popcount %d", c.PopCount())
	}
}

func TestFromBytesBytewise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 256} {
		b := make([]byte, (n+7)/8+2) // extra bytes must be ignored
		rng.Read(b)
		got := FromBytes(b, n)
		want := New(n)
		for i := 0; i < n; i++ {
			if b[i/8]&(1<<(i%8)) != 0 {
				want.Set(i, true)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("n=%d FromBytes mismatch\n got %s\nwant %s", n, got, want)
		}
		// Short input: missing bytes are zero.
		short := FromBytes(b[:1], n)
		for i := 8; i < n; i++ {
			if short.Bit(i) {
				t.Fatalf("n=%d short FromBytes set bit %d", n, i)
			}
		}
	}
}

func TestAppendUint64AndUint64At(t *testing.T) {
	v := New(0)
	v.AppendUint64(0xABCD, 16)
	v.AppendUint64(0x1, 1)
	v.AppendUint64(^uint64(0), 64)
	if v.Len() != 81 {
		t.Fatalf("len %d", v.Len())
	}
	if got := v.Uint64At(0) & 0xFFFF; got != 0xABCD {
		t.Fatalf("first field %#x", got)
	}
	if !v.Bit(16) {
		t.Fatal("second field")
	}
	if got := v.Uint64At(17); got != ^uint64(0) {
		t.Fatalf("third field %#x", got)
	}
	if got := v.Uint64At(81); got != 0 {
		t.Fatalf("past-end read %#x", got)
	}
}
