// Package pcache assembles the 2D-coded arrays into a complete,
// functional, set-associative cache: real data bytes live in
// twod-protected data sub-arrays, and the tag/state store lives in a
// twod-protected tag sub-array — "cache tag sub-arrays are handled
// identically" (§4). The cache serves loads and stores against a
// backing memory, write-back write-allocate, while arbitrary bit
// errors injected into any of its arrays are detected by the
// horizontal codes and repaired by 2D recovery, transparently to the
// caller. This is the end-to-end artefact a downstream user adopts:
// not a codec, a cache.
package pcache

import (
	"errors"
	"fmt"
	"math/bits"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/twod"
)

// Config sizes the protected cache.
type Config struct {
	// Sets and Ways define the organisation; LineBytes the block size
	// (must be a multiple of 8, power of two).
	Sets, Ways, LineBytes int
	// VerticalGroups is V for every sub-array (default 32).
	VerticalGroups int
	// SECDEDHorizontal selects in-line single-bit correction (yield
	// configuration) instead of EDC8 detection-only horizontal codes.
	SECDEDHorizontal bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("pcache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("pcache: ways %d", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes%8 != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("pcache: line bytes %d must be a power-of-two multiple of 8", c.LineBytes)
	}
	if c.VerticalGroups < 0 {
		return fmt.Errorf("pcache: negative vertical groups")
	}
	return nil
}

// Backing is the next level of the hierarchy: line-granular load/store.
type Backing interface {
	// ReadLine returns LineBytes bytes at the line-aligned address.
	ReadLine(addr uint64) []byte
	// WriteLine stores LineBytes bytes at the line-aligned address.
	WriteLine(addr uint64, data []byte)
}

// MapBacking is a simple in-memory Backing.
type MapBacking struct {
	lineBytes int
	m         map[uint64][]byte
}

// NewMapBacking builds an empty backing store.
func NewMapBacking(lineBytes int) *MapBacking {
	return &MapBacking{lineBytes: lineBytes, m: map[uint64][]byte{}}
}

// ReadLine returns the stored line (zeroes if never written).
func (b *MapBacking) ReadLine(addr uint64) []byte {
	if d, ok := b.m[addr]; ok {
		out := make([]byte, b.lineBytes)
		copy(out, d)
		return out
	}
	return make([]byte, b.lineBytes)
}

// WriteLine stores a line.
func (b *MapBacking) WriteLine(addr uint64, data []byte) {
	d := make([]byte, b.lineBytes)
	copy(d, data)
	b.m[addr] = d
}

// ErrUncorrectable reports an error footprint beyond the 2D coverage —
// the software-visible machine-check. The affected line's contents are
// untrustworthy; callers recover with Repair (refetch from backing,
// losing unwritten dirty data) as an OS would.
var ErrUncorrectable = errors.New("pcache: uncorrectable error (exceeds 2D coverage)")

// Stats counts cache-level events.
type Stats struct {
	// Hits and Misses count accesses by outcome.
	Hits, Misses uint64
	// Writebacks counts dirty lines written to the backing store.
	Writebacks uint64
	// ErrorsRecovered counts reads/writes that needed 2D recovery or
	// in-line correction anywhere in the arrays.
	ErrorsRecovered uint64
	// Uncorrectable counts machine-check events (ErrUncorrectable).
	Uncorrectable uint64
}

// Cache is the protected cache. One twod array holds all data lines
// (each 64-bit word of a line is one protected word); a second twod
// array holds the tag/state words.
type Cache struct {
	cfg     Config
	backing Backing

	data *twod.Array // rows = sets*ways, wordsPerRow = lineBytes/8
	tags *twod.Array // rows = sets, wordsPerRow = ways

	lineShift uint
	setMask   uint64
	lru       [][]uint64 // [set][way] last-touch stamps
	stamp     uint64

	stats Stats
}

// tag word layout (64 bits): [0] valid, [1] dirty, [2..63] tag bits.
const (
	tagValidBit = uint64(1) << 0
	tagDirtyBit = uint64(1) << 1
	tagShift    = 2
)

// New builds an empty protected cache over the backing store.
func New(cfg Config, backing Backing) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backing == nil {
		return nil, fmt.Errorf("pcache: nil backing store")
	}
	v := cfg.VerticalGroups
	if v == 0 {
		v = 32
	}
	mkArray := func(rows, wordsPerRow int) (*twod.Array, error) {
		var h ecc.HorizontalCode
		var err error
		if cfg.SECDEDHorizontal {
			h, err = ecc.NewSECDED(64)
		} else {
			h, err = ecc.NewEDC(64, 8)
		}
		if err != nil {
			return nil, err
		}
		groups := v
		if groups > rows {
			groups = rows
		}
		return twod.NewArray(twod.Config{
			Rows:           rows,
			WordsPerRow:    wordsPerRow,
			Horizontal:     h,
			VerticalGroups: groups,
		})
	}
	data, err := mkArray(cfg.Sets*cfg.Ways, cfg.LineBytes/8)
	if err != nil {
		return nil, err
	}
	tags, err := mkArray(cfg.Sets, cfg.Ways)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		backing:   backing,
		data:      data,
		tags:      tags,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(cfg.Sets - 1),
		lru:       make([][]uint64, cfg.Sets),
	}
	for i := range c.lru {
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// MustNew panics on error.
func MustNew(cfg Config, backing Backing) *Cache {
	c, err := New(cfg, backing)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns the counters.
func (c *Cache) Stats() Stats { return c.stats }

// DataArray exposes the protected data array for fault injection.
func (c *Cache) DataArray() *twod.Array { return c.data }

// TagArray exposes the protected tag array for fault injection.
func (c *Cache) TagArray() *twod.Array { return c.tags }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }
func (c *Cache) setOf(line uint64) int       { return int(line & c.setMask) }
func (c *Cache) tagOf(line uint64) uint64    { return line >> bits.TrailingZeros64(c.setMask+1) }

// readTag fetches the tag word for (set, way) through the protected
// array, counting recoveries.
func (c *Cache) readTag(set, way int) (uint64, error) {
	w, st := c.tags.Read(set, way)
	if err := c.note(st); err != nil {
		return 0, err
	}
	return w.Uint64(), nil
}

func (c *Cache) writeTag(set, way int, v uint64) error {
	st := c.tags.Write(set, way, bitvec.FromUint64(v, 64))
	return c.note(st)
}

// note records an access outcome. An uncorrectable error — a footprint
// beyond the 2D coverage, typically from letting errors accumulate
// without scrubbing — surfaces as ErrUncorrectable, the
// machine-check-exception equivalent. Deployments bound accumulation by
// calling Scrub periodically (see internal/scrub for the interval
// analysis) and recover with Repair.
func (c *Cache) note(st twod.ReadStatus) error {
	if st == twod.ReadRecovered || st == twod.ReadCorrectedInline {
		c.stats.ErrorsRecovered++
	}
	if st == twod.ReadUncorrectable {
		c.stats.Uncorrectable++
		return ErrUncorrectable
	}
	return nil
}

// lookup returns the hitting way, or -1.
func (c *Cache) lookup(set int, tag uint64) (int, error) {
	for way := 0; way < c.cfg.Ways; way++ {
		t, err := c.readTag(set, way)
		if err != nil {
			return -1, err
		}
		if t&tagValidBit != 0 && t>>tagShift == tag {
			return way, nil
		}
	}
	return -1, nil
}

// victim picks an invalid or LRU way.
func (c *Cache) victim(set int) (int, error) {
	best, bestStamp := 0, ^uint64(0)
	for way := 0; way < c.cfg.Ways; way++ {
		t, err := c.readTag(set, way)
		if err != nil {
			return 0, err
		}
		if t&tagValidBit == 0 {
			return way, nil
		}
		if c.lru[set][way] < bestStamp {
			best, bestStamp = way, c.lru[set][way]
		}
	}
	return best, nil
}

// dataRow maps (set, way) to the data array row.
func (c *Cache) dataRow(set, way int) int { return set*c.cfg.Ways + way }

// readLineWords fetches a full line from the data array.
func (c *Cache) readLineWords(set, way int) ([]byte, error) {
	out := make([]byte, c.cfg.LineBytes)
	row := c.dataRow(set, way)
	for w := 0; w < c.cfg.LineBytes/8; w++ {
		word, st := c.data.Read(row, w)
		if err := c.note(st); err != nil {
			return nil, err
		}
		v := word.Uint64()
		for b := 0; b < 8; b++ {
			out[w*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	return out, nil
}

// writeLineWords stores a full line into the data array.
func (c *Cache) writeLineWords(set, way int, data []byte) error {
	row := c.dataRow(set, way)
	for w := 0; w < c.cfg.LineBytes/8; w++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(data[w*8+b]) << (8 * uint(b))
		}
		st := c.data.Write(row, w, bitvec.FromUint64(v, 64))
		if err := c.note(st); err != nil {
			return err
		}
	}
	return nil
}

// fill brings the line into (set, way), evicting as needed.
func (c *Cache) fill(line uint64) (set, way int, err error) {
	set = c.setOf(line)
	way, err = c.victim(set)
	if err != nil {
		return 0, 0, err
	}
	old, err := c.readTag(set, way)
	if err != nil {
		return 0, 0, err
	}
	if old&tagValidBit != 0 && old&tagDirtyBit != 0 {
		oldLine := old>>tagShift<<bits.TrailingZeros64(c.setMask+1) | uint64(set)
		victim, err := c.readLineWords(set, way)
		if err != nil {
			return 0, 0, err
		}
		c.backing.WriteLine(oldLine<<c.lineShift, victim)
		c.stats.Writebacks++
	}
	if err := c.writeLineWords(set, way, c.backing.ReadLine(line<<c.lineShift)); err != nil {
		return 0, 0, err
	}
	if err := c.writeTag(set, way, tagValidBit|c.tagOf(line)<<tagShift); err != nil {
		return 0, 0, err
	}
	return set, way, nil
}

// access returns (set, way) for the line, filling on a miss.
func (c *Cache) access(addr uint64) (int, int, error) {
	line := c.lineAddr(addr)
	set := c.setOf(line)
	way, err := c.lookup(set, c.tagOf(line))
	if err != nil {
		return 0, 0, err
	}
	if way >= 0 {
		c.stats.Hits++
	} else {
		c.stats.Misses++
		set, way, err = c.fill(line)
		if err != nil {
			return 0, 0, err
		}
	}
	c.stamp++
	c.lru[set][way] = c.stamp
	return set, way, nil
}

// Read returns n bytes at addr (must not cross a line boundary). An
// ErrUncorrectable means the 2D coverage was exceeded (machine check);
// recover with Repair.
func (c *Cache) Read(addr uint64, n int) ([]byte, error) {
	if err := c.checkSpan(addr, n); err != nil {
		return nil, err
	}
	set, way, err := c.access(addr)
	if err != nil {
		return nil, err
	}
	line, err := c.readLineWords(set, way)
	if err != nil {
		return nil, err
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	out := make([]byte, n)
	copy(out, line[off:off+n])
	return out, nil
}

// Write stores bytes at addr (must not cross a line boundary),
// write-back: the line is marked dirty in the protected tag store.
func (c *Cache) Write(addr uint64, data []byte) error {
	if err := c.checkSpan(addr, len(data)); err != nil {
		return err
	}
	set, way, err := c.access(addr)
	if err != nil {
		return err
	}
	lineBytes, err := c.readLineWords(set, way)
	if err != nil {
		return err
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	copy(lineBytes[off:], data)
	if err := c.writeLineWords(set, way, lineBytes); err != nil {
		return err
	}
	line := c.lineAddr(addr)
	return c.writeTag(set, way, tagValidBit|tagDirtyBit|c.tagOf(line)<<tagShift)
}

// Flush writes every dirty line back to the backing store.
func (c *Cache) Flush() error {
	for set := 0; set < c.cfg.Sets; set++ {
		for way := 0; way < c.cfg.Ways; way++ {
			t, err := c.readTag(set, way)
			if err != nil {
				return err
			}
			if t&tagValidBit != 0 && t&tagDirtyBit != 0 {
				line := t>>tagShift<<bits.TrailingZeros64(c.setMask+1) | uint64(set)
				data, err := c.readLineWords(set, way)
				if err != nil {
					return err
				}
				c.backing.WriteLine(line<<c.lineShift, data)
				if err := c.writeTag(set, way, t&^tagDirtyBit); err != nil {
					return err
				}
				c.stats.Writebacks++
			}
		}
	}
	return nil
}

// Repair recovers from ErrUncorrectable the way an OS handles a cache
// machine check: every line in the address's set is force-reloaded
// from the backing store (dirty contents of that set are lost — the
// detected-but-uncorrectable outcome) and the arrays' parity state is
// rebuilt.
func (c *Cache) Repair(addr uint64) {
	line := c.lineAddr(addr)
	set := c.setOf(line)
	for way := 0; way < c.cfg.Ways; way++ {
		row := c.dataRow(set, way)
		fresh := c.backing.ReadLine(line << c.lineShift)
		for w := 0; w < c.cfg.LineBytes/8; w++ {
			var v uint64
			for b := 0; b < 8; b++ {
				v |= uint64(fresh[w*8+b]) << (8 * uint(b))
			}
			c.data.ForceWrite(row, w, bitvec.FromUint64(v, 64))
		}
		// Invalidate the way; the next access refetches cleanly.
		c.tags.ForceWrite(set, way, bitvec.FromUint64(0, 64))
	}
}

// Scrub proactively runs 2D recovery over both arrays (a scrubbing
// pass), returning whether everything is consistent.
func (c *Cache) Scrub() bool {
	return c.data.Recover().Success && c.tags.Recover().Success
}

func (c *Cache) checkSpan(addr uint64, n int) error {
	if n <= 0 || n > c.cfg.LineBytes {
		return fmt.Errorf("pcache: access size %d out of (0,%d]", n, c.cfg.LineBytes)
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	if off+n > c.cfg.LineBytes {
		return fmt.Errorf("pcache: access at %#x size %d crosses a line boundary", addr, n)
	}
	return nil
}

// RepairAll is the whole-cache machine-check handler: every set is
// force-reloaded from the backing store (all unflushed dirty data is
// lost) and both arrays return to a consistent state. Used when a
// scrub pass itself reports uncorrectable damage.
func (c *Cache) RepairAll() {
	for set := 0; set < c.cfg.Sets; set++ {
		c.Repair(uint64(set) << c.lineShift)
	}
}
