// Package store defines the storage-engine seam of the system: a Store
// interface over the protected, self-healing cache stack, and a Sharded
// router that stripes the address space across N fully independent
// engine instances.
//
// The single-engine implementation is resilience.Engine. Sharding
// exists because every structure in one engine — bank locks, breaker
// arrays, the scrubber's sweep, the watchdog's scan, the single-flight
// repair table — is scoped to that engine: a storm that wedges one
// engine's bank, or a breaker that opens on it, stalls everything
// behind that engine. With N shards each owning a full stack, the
// blast radius of a storm is 1/N of the address space, and the other
// shards never even observe it (no shared locks, no shared breaker
// state, no shared scrub schedule).
package store

import (
	"context"

	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// Store is the storage-engine interface: a byte-addressable, protected,
// self-healing write-back cache over a backing store. Implementations
// must be safe for concurrent use.
//
// Reads and writes must not cross a cache-line boundary (they map to
// exactly one line, hence one shard). Batch calls amortise locking and
// line movement across ops and report per-op outcomes in each op's Err
// field, returning how many ops failed; they are content-equivalent to
// issuing the ops one at a time, not stats-equivalent (grouping changes
// replacement order).
type Store interface {
	Read(addr uint64, n int) ([]byte, error)
	ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error)
	ReadInto(addr uint64, dst []byte) error
	ReadIntoCtx(ctx context.Context, addr uint64, dst []byte) error
	Write(addr uint64, data []byte) error
	WriteCtx(ctx context.Context, addr uint64, data []byte) error

	// Batch calls: the plain forms run unbounded; the Ctx forms bound
	// per-op recovery work by ctx (the amortised fault-free pass always
	// completes), and an already-expired ctx stamps every op with the
	// context error instead of serving it — an expired deadline yields
	// per-op deadline outcomes, never silent success.
	ReadBatch(ops []pcache.ReadOp) (failed int)
	ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int)
	WriteBatch(ops []pcache.WriteOp) (failed int)
	WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int)

	Flush() error
	FlushCtx(ctx context.Context) error

	// Stats returns a coherent snapshot of the cache-level counters
	// (for Sharded, summed across shards).
	Stats() pcache.Stats
	// RegisterMetrics mirrors the store's instrumentation into an
	// additional registry. It panics on duplicate metric names, so call
	// it at most once per registry.
	RegisterMetrics(r *obs.Registry)
	// SetEventSink installs the structured event sink (nil resets to
	// the no-op sink). Safe to call while the store is serving traffic.
	SetEventSink(s obs.Sink)
}

// Both the single engine and the sharded router satisfy Store.
var (
	_ Store = (*resilience.Engine)(nil)
	_ Store = (*Sharded)(nil)
)
