package experiments

import (
	"math/rand"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

// Fig4 walks the recovery algorithm of Fig. 4(b) through one error of
// each class on the paper's 8 kB array and reports which branch ran and
// what it cost — the executable rendition of the paper's flow chart.
// The latency column grounds §4's statement that recovery is
// "similar to a simple BIST march test ... a few hundred or thousand
// cycles".
func Fig4(opt Options) Table {
	t := Table{
		ID:     "fig4",
		Title:  "Fig. 4(b): recovery algorithm walkthrough on the 8kB array (EDC8+Intv4, EDC32)",
		Header: []string{"error injected", "recovery branch", "faulty words", "bits repaired", "latency (array cycles)", "outcome"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	scenarios := []struct {
		label  string
		inject func(a *twod.Array)
	}{
		{"single bit", func(a *twod.Array) { a.FlipBit(100, 37) }},
		{"8x8 cluster", func(a *twod.Array) {
			fault.Apply(a, fault.SolidCluster(40, 80, 8, 8))
		}},
		{"32x32 cluster", func(a *twod.Array) {
			fault.Apply(a, fault.SolidCluster(0, 0, 32, 32))
		}},
		{"full row failure", func(a *twod.Array) {
			fault.Apply(a, fault.RowFailure(77, a.RowBits()))
		}},
		{"column failure (stuck-at)", func(a *twod.Array) {
			fault.Apply(a, fault.ColumnStuckAt(rng, 123, a.Rows()))
		}},
		{"40x40 cluster (beyond coverage)", func(a *twod.Array) {
			fault.Apply(a, fault.SolidCluster(0, 0, 40, 40))
		}},
	}
	for _, sc := range scenarios {
		a := twod.MustArray(twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal:     ecc.MustEDC(64, 8),
			VerticalGroups: 32,
			// The walkthrough reproduces Fig. 4 under the paper's
			// declared fault model (clusters/column failures).
			AssumeClusteredFaults: true,
		})
		for r := 0; r < a.Rows(); r++ {
			for w := 0; w < 4; w++ {
				a.Write(r, w, bitvec.FromUint64(rng.Uint64(), 64))
			}
		}
		sc.inject(a)
		rep := a.Recover()
		outcome := "corrected"
		if !rep.Success {
			outcome = "detected-uncorrectable"
		}
		t.Rows = append(t.Rows, []string{
			sc.label,
			rep.Mode.String(),
			itoa(rep.FaultyWords),
			itoa(rep.BitsFlipped),
			itoa(rep.CyclesEstimate()),
			outcome,
		})
	}
	t.Notes = append(t.Notes,
		"latency = scan reads + correction writes, the BIST-march cost of §4",
		"the beyond-coverage case fails loudly — never a silent miscorrection")
	return t
}
