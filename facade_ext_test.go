package twodcache

import (
	"bytes"
	"errors"
	"testing"

	"twodcache/internal/redundancy"
)

func TestPublicBISTFlow(t *testing.T) {
	arr, err := NewFaultyArray(64, 576)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Inject(CellFault{Row: 10, Col: 100, Kind: StuckAt1}); err != nil {
		t.Fatal(err)
	}
	res := RunMarch(arr, MarchCMinus())
	if res.Passed() || len(res.FailingCells()) != 1 {
		t.Fatalf("march result: %d fails", len(res.Fails))
	}
	// MATS+ and March X run too.
	for _, alg := range []MarchAlgorithm{MATSPlus(), MarchX()} {
		a2, _ := NewFaultyArray(8, 8)
		if !RunMarch(a2, alg).Passed() {
			t.Fatalf("%s failed clean array", alg.Name)
		}
	}
}

func TestPublicSelfRepair(t *testing.T) {
	arr, _ := NewFaultyArray(64, 576)
	_ = arr.Inject(CellFault{Row: 3, Col: 9, Kind: StuckAt0})
	out, err := SelfRepair(arr, RepairConfig{
		Rows: 64, Cols: 576, SpareRows: 1, WordBits: 72,
	}, MarchCMinus())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Repaired {
		t.Fatalf("outcome %+v", out)
	}
}

func TestPublicAllocateRepairs(t *testing.T) {
	plan, err := AllocateRepairs(RepairConfig{
		Rows: 16, Cols: 144, SpareRows: 1, WordBits: 72,
	}, []redundancy.Fault{{Row: 2, Col: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatalf("plan %+v", plan)
	}
}

func TestPublicScrubModel(t *testing.T) {
	m := DefaultScrubModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.EventRatePerHour() <= 0 {
		t.Fatal("zero event rate")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := RecordTrace(&buf, "Moldyn", 0, 0, 3, 5000)
	if err != nil || n != 5000 {
		t.Fatalf("record: %d, %v", n, err)
	}
	data := buf.Bytes()
	sum, err := SummarizeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Instructions != 5000 {
		t.Fatalf("summary %+v", sum)
	}
	src, err := ReplayTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mem := 0
	for i := 0; i < 5000; i++ {
		if src.Next().IsMem {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("replay produced no memory ops")
	}
	if _, err := RecordTrace(&buf, "nope", 0, 0, 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPublicErrorInjectionProtection(t *testing.T) {
	wl, _ := Workload("OLTP")
	prot := Protection{L1TwoD: true, PortStealing: true, ErrorEveryCycles: 5000}
	r, err := RunCMP(FatCMP(), prot, wl, 1, 10000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries == 0 {
		t.Fatal("no recovery events recorded")
	}
}

func TestPublicResilientCache(t *testing.T) {
	backing := NewMemoryBacking(64)
	eng, err := NewResilientCache(ProtectedCacheConfig{
		Sets: 32, Ways: 2, LineBytes: 64, Banks: 1,
	}, backing, ResilienceConfig{SpareRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Write(0, []byte("resilient")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	// Plant the guaranteed beyond-coverage pair (rows 0 and 32 share a
	// vertical group; codeword bits 0 and 8 share an EDC8 parity
	// column) and let the ladder absorb it: the read must survive.
	if err := eng.Write(16*64, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	da, _ := eng.Cache().BankArrays(0)
	da.FlipBit(0, da.Layout().PhysColumn(0, 0))
	da.FlipBit(32, da.Layout().PhysColumn(0, 8))

	got, err := eng.Read(0, 9)
	if err != nil || string(got) != "resilient" {
		t.Fatalf("read through ladder: %q %v", got, err)
	}
	rep := eng.Report()
	if rep.DUEs == 0 || rep.Decommissions == 0 {
		t.Fatalf("ladder never escalated: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty health report")
	}

	s := eng.NewScrubber(ScrubberConfig{})
	s.Sweep()
	if eng.Report().ScrubPasses != 1 {
		t.Fatal("scrub pass not reported")
	}
}

func TestPublicUncorrectableTaxonomy(t *testing.T) {
	var err error = &CacheUncorrectableError{Array: "data", Set: 3, Way: 1}
	if !errors.Is(err, ErrCacheUncorrectable) {
		t.Fatal("typed error does not wrap the sentinel")
	}
	var ue *CacheUncorrectableError
	if !errors.As(err, &ue) || ue.Set != 3 || ue.Way != 1 {
		t.Fatalf("errors.As lost the location: %+v", ue)
	}
}
