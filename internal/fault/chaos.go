package fault

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosProxyConfig parameterises a ChaosProxy — the network analogue of
// a Storm: a TCP proxy in front of a real server that injects the
// failure modes a flaky NIC, an overloaded switch, or a dying peer
// produce, with every decision drawn from seed-derived rngs so a run is
// reproducible the way a storm run is.
//
// All probabilities are per forwarded chunk (ChunkBytes of stream data
// in one direction), evaluated in a fixed order: reset, tear, drop,
// delay. Zero probabilities make the proxy a transparent forwarder.
type ChaosProxyConfig struct {
	// Seed makes the chaos reproducible: connection i's two directions
	// draw from rngs derived via DeriveSeed(Seed, 2i) and
	// DeriveSeed(Seed, 2i+1), so the decision sequence per stream is
	// fixed even though goroutine interleaving is not.
	Seed int64
	// Target is the real server's dial address.
	Target string
	// Addr is the proxy's listen address; empty selects 127.0.0.1:0.
	Addr string
	// ResetProb abruptly closes both sides mid-stream — the RST a dying
	// process sends.
	ResetProb float64
	// TearProb forwards a strict prefix of the chunk and then closes
	// both sides: a torn frame, the partial write of a crashing peer.
	TearProb float64
	// DropProb black-holes the connection: forwarding stops in both
	// directions but the sockets stay open for DropStall (default 2s),
	// then both sides close — the half-dead peer that neither answers
	// nor resets.
	DropProb float64
	// DelayProb stalls the chunk for a uniform duration in
	// [DelayMin, DelayMax] before forwarding it — queueing jitter.
	DelayProb float64
	// DelayMin and DelayMax bound injected delays; defaults 1ms and 5ms.
	DelayMin, DelayMax time.Duration
	// DropStall is how long a dropped connection lingers before closing.
	// Zero selects 2s.
	DropStall time.Duration
	// ChunkBytes is the forwarding granularity (and the unit the
	// probabilities apply to). Zero selects 4096.
	ChunkBytes int
}

func (c ChaosProxyConfig) withDefaults() ChaosProxyConfig {
	if c.DelayMin <= 0 {
		c.DelayMin = time.Millisecond
	}
	if c.DelayMax < c.DelayMin {
		c.DelayMax = 5 * time.Millisecond
		if c.DelayMax < c.DelayMin {
			c.DelayMax = c.DelayMin
		}
	}
	if c.DropStall <= 0 {
		c.DropStall = 2 * time.Second
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 4096
	}
	return c
}

// ChaosProxy is a running chaos TCP proxy. Safe for concurrent use;
// Close stops the accept loop and tears down every proxied connection.
type ChaosProxy struct {
	cfg ChaosProxyConfig
	l   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // both legs of every live pair
	nextID uint64
	done   chan struct{} // closed by Close; interrupts drop stalls
	wg     sync.WaitGroup

	accepted atomic.Uint64
	resets   atomic.Uint64
	tears    atomic.Uint64
	drops    atomic.Uint64
	delays   atomic.Uint64
}

// NewChaosProxy binds the proxy's listener and starts accepting. The
// chosen address is available from Addr.
func NewChaosProxy(cfg ChaosProxyConfig) (*ChaosProxy, error) {
	if cfg.Target == "" {
		return nil, errors.New("fault: ChaosProxyConfig.Target is required")
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{cfg: cfg.withDefaults(), l: l, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address clients dial.
func (p *ChaosProxy) Addr() net.Addr { return p.l.Addr() }

// Stats reports how many connections were accepted and how many chaos
// events of each kind fired, for assertions and run reports.
func (p *ChaosProxy) Stats() (accepted, resets, tears, drops, delays uint64) {
	return p.accepted.Load(), p.resets.Load(), p.tears.Load(), p.drops.Load(), p.delays.Load()
}

// Close stops accepting, closes every proxied connection, and waits for
// the forwarding goroutines to exit.
func (p *ChaosProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	cs := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		cs = append(cs, c)
	}
	p.mu.Unlock()
	err := p.l.Close()
	for _, c := range cs {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cc.Close()
			return
		}
		id := p.nextID
		p.nextID++
		p.mu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(1)
		go p.serveConn(cc, id)
	}
}

// track registers c for Close teardown; returns false when the proxy is
// already closed.
func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// pair is one proxied connection: both legs plus the shared teardown
// that any chaos event (or either side hanging up) triggers.
type pair struct {
	client, server net.Conn
	once           sync.Once
}

func (pr *pair) kill() {
	pr.once.Do(func() {
		pr.client.Close()
		pr.server.Close()
	})
}

func (p *ChaosProxy) serveConn(cc net.Conn, id uint64) {
	defer p.wg.Done()
	sc, err := net.DialTimeout("tcp", p.cfg.Target, 5*time.Second)
	if err != nil {
		cc.Close()
		return
	}
	if !p.track(cc) || !p.track(sc) {
		cc.Close()
		sc.Close()
		p.untrack(cc)
		return
	}
	defer p.untrack(cc)
	defer p.untrack(sc)
	pr := &pair{client: cc, server: sc}
	defer pr.kill()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.forward(pr, cc, sc, rand.New(rand.NewSource(DeriveSeed(p.cfg.Seed, 2*id))))
	}()
	p.forward(pr, sc, cc, rand.New(rand.NewSource(DeriveSeed(p.cfg.Seed, 2*id+1))))
	wg.Wait()
}

// forward copies src → dst in ChunkBytes units, rolling the chaos dice
// once per chunk. Any injected failure kills the whole pair so the two
// directions die together, the way a real connection does.
func (p *ChaosProxy) forward(pr *pair, src, dst net.Conn, rng *rand.Rand) {
	buf := make([]byte, p.cfg.ChunkBytes)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			roll := rng.Float64()
			switch cfg := p.cfg; {
			case roll < cfg.ResetProb:
				p.resets.Add(1)
				pr.kill()
				return
			case roll < cfg.ResetProb+cfg.TearProb:
				// A strict prefix (possibly empty) then hangup: the
				// receiver sees a frame that stops mid-payload.
				p.tears.Add(1)
				_, _ = dst.Write(buf[:rng.Intn(n)])
				pr.kill()
				return
			case roll < cfg.ResetProb+cfg.TearProb+cfg.DropProb:
				// Black hole: both sockets stay up, nothing moves, then
				// the pair dies. The stall is interruptible by Close.
				p.drops.Add(1)
				t := time.NewTimer(p.cfg.DropStall)
				select {
				case <-t.C:
				case <-p.done:
					t.Stop()
				}
				pr.kill()
				return
			case roll < cfg.ResetProb+cfg.TearProb+cfg.DropProb+cfg.DelayProb:
				p.delays.Add(1)
				d := cfg.DelayMin
				if span := cfg.DelayMax - cfg.DelayMin; span > 0 {
					d += time.Duration(rng.Int63n(int64(span) + 1))
				}
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				pr.kill()
				return
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				// Half-close cleanly so the peer can finish in-flight
				// responses on the other leg.
				if t, ok := dst.(*net.TCPConn); ok {
					t.CloseWrite()
					return
				}
			}
			pr.kill()
			return
		}
	}
}
