package bufpool

import (
	"sync"
	"testing"
)

// TestClassGeometry pins the rounding: Get(n) has length n and a
// power-of-two capacity no smaller than n (and no smaller than the
// 64-byte floor), and oversized asks fall back to exact allocations.
func TestClassGeometry(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 4096, 4097, 1 << 20, 1<<22 - 1, 1 << 22} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		c := cap(b)
		if c < 64 || c&(c-1) != 0 || c < n {
			t.Fatalf("Get(%d): cap %d not a class", n, c)
		}
		Put(b)
	}
	big := Get(1<<22 + 1)
	if len(big) != 1<<22+1 {
		t.Fatalf("oversized Get: len %d", len(big))
	}
	Put(big) // dropped, not filed — must not panic
}

// TestRecycle proves a Put buffer comes back on the next same-class Get
// in check mode (deterministic LIFO), with the requested length.
func TestRecycle(t *testing.T) {
	SetCheck(true)
	defer SetCheck(false)
	b := Get(100)
	p := &b[:1][0]
	Put(b)
	b2 := Get(80)
	if &b2[:1][0] != p {
		t.Fatal("same-class Get did not recycle the Put buffer")
	}
	if len(b2) != 80 {
		t.Fatalf("recycled length %d, want 80", len(b2))
	}
	Put(b2)
}

// TestOutstanding pins the leak detector: Get raises it, Put lowers it.
func TestOutstanding(t *testing.T) {
	SetCheck(true)
	defer SetCheck(false)
	if Outstanding() != 0 {
		t.Fatalf("fresh check mode: %d outstanding", Outstanding())
	}
	a, b := Get(64), Get(4096)
	if Outstanding() != 2 {
		t.Fatalf("after 2 Gets: %d outstanding", Outstanding())
	}
	Put(a)
	Put(b)
	if Outstanding() != 0 {
		t.Fatalf("after matching Puts: %d outstanding (leak?)", Outstanding())
	}
}

// TestDoublePutPanics pins the detector the rest of the system relies
// on: returning one buffer twice panics at the second Put instead of
// silently handing the same memory to two future owners.
func TestDoublePutPanics(t *testing.T) {
	SetCheck(true)
	defer SetCheck(false)
	b := Get(256)
	Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	Put(b)
}

// TestUseAfterPutPanics pins the poison check: writing through a stale
// reference after Put is caught at the next Get of that class.
func TestUseAfterPutPanics(t *testing.T) {
	SetCheck(true)
	defer SetCheck(false)
	b := Get(256)
	Put(b)
	b[17] = 0x42 // stale write through the returned buffer
	defer func() {
		if recover() == nil {
			t.Fatal("use-after-put was not detected at Get")
		}
	}()
	Get(256)
}

// TestConcurrentFastPath hammers the lock-free pools from many
// goroutines; meaningful mainly under -race (the check.sh race list
// includes this package).
func TestConcurrentFastPath(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := 1 << (6 + i%8)
				b := Get(n + i%7)
				for j := range b {
					b[j] = seed
				}
				for j := range b {
					if b[j] != seed {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

// TestAllocSteadyState pins the point of the package: a Get/Put cycle
// in steady state allocates nothing.
func TestAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	// Warm the class and the header pool.
	for i := 0; i < 4; i++ {
		Put(Get(1024))
	}
	avg := testing.AllocsPerRun(200, func() {
		b := Get(1024)
		b[0] = 1
		Put(b)
	})
	if avg > 0.1 {
		t.Fatalf("steady-state Get/Put allocates %.2f/op, want 0", avg)
	}
}
