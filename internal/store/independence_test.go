package store

import (
	"sync"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// TestShardIndependence is the core claim of sharding: a shard whose
// repairs are wedged — stalled full-2D rung, watchdog force-escalation,
// breaker tripped open — must leave every other shard completely
// untouched: no DUEs, no watchdog fires, closed breakers, zero ladder
// entries on their metrics.
func TestShardIndependence(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour) // wedge any repair that reaches the full-2D rung
	backing := pcache.NewMapBacking(64)
	s, err := New(Config{
		Shards: 2,
		Cache:  pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 1},
		Resilience: resilience.Config{
			RecoveryStall: &stall,
			Breaker: resilience.BreakerConfig{
				FailureThreshold: 1,
				OpenTimeout:      time.Hour, // stay open for the assertions
			},
		},
		Watchdog: &resilience.WatchdogConfig{Budget: 10 * time.Millisecond, Poll: 2 * time.Millisecond},
	}, backing)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	// Plant a persistent ambiguous DUE on shard 0 (dirty lines + the
	// beyond-coverage double fault; see resilience's bounded tests).
	c := s.Shard(0).Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil { // shard-local addrs
		t.Fatal(err)
	}
	if err := c.Write(16*64, []byte{0xA5}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))

	// Seed shard 1 with clean data at global odd lines.
	for line := uint64(1); line < 32; line += 2 {
		if err := s.Write(line*64, []byte{byte(line)}); err != nil {
			t.Fatal(err)
		}
	}

	// Drive shard 0 into the wedge: the repair leader stalls in the
	// full-2D rung, the watchdog force-escalates it, and the breaker
	// (threshold 1) trips open. Global line 0 → shard 0 local line 0.
	if _, err := s.Read(0, 1); err != nil {
		t.Fatalf("read through force-escalated repair: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Shard(0).BreakerState(0) != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 breaker = %s, never opened", s.Shard(0).BreakerState(0))
		}
		time.Sleep(time.Millisecond)
	}

	// Shard 1 serves normally while shard 0 is shedding.
	for line := uint64(1); line < 32; line += 2 {
		got, err := s.Read(line*64, 1)
		if err != nil || got[0] != byte(line) {
			t.Fatalf("shard 1 read line %d during shard 0 outage: %x, %v", line, got, err)
		}
	}

	// And shows no trace of shard 0's trouble.
	r1 := s.Shard(1).Report()
	if r1.DUEs != 0 || r1.WatchdogFires != 0 || r1.BreakerTrips != 0 || r1.Decommissions != 0 {
		t.Fatalf("shard 1 contaminated by shard 0's outage: %+v", r1)
	}
	if st := s.Shard(1).BreakerState(0); st != "closed" {
		t.Fatalf("shard 1 breaker = %s", st)
	}
	snap := s.Metrics().Snapshot()
	if n := snap.Counter("shard1_resilience_dues_total"); n != 0 {
		t.Fatalf("shard1_resilience_dues_total = %d", n)
	}
	if n := snap.Histogram("shard1_resilience_ladder_seconds").Count; n != 0 {
		t.Fatalf("shard 1 ladder histogram count = %d, want 0", n)
	}
	if n := snap.Counter("shard0_resilience_dues_total"); n == 0 {
		t.Fatal("shard 0 recorded no DUEs: the outage never happened")
	}
	r0 := s.Shard(0).Report()
	if r0.WatchdogFires == 0 || r0.BreakerTrips == 0 {
		t.Fatalf("shard 0 wedge not exercised: %+v", r0)
	}
	if stall.Fired() == 0 {
		t.Fatal("stall never engaged: test proved nothing")
	}
}

// TestSharedBackingConcurrentShards hammers one MapBacking through
// every shard at once — fills, writebacks, flushes, and batches from
// independent goroutines — and checks read-your-writes per goroutine.
// Each goroutine owns a disjoint set of lines so its values are
// deterministic. Run under -race this is the regression test for the
// backing's concurrency safety (shards share nothing BUT the backing).
func TestSharedBackingConcurrentShards(t *testing.T) {
	backing := pcache.NewMapBacking(64)
	s, err := New(Config{
		Shards: 4,
		// Tiny per-shard cache: constant evictions keep the shared
		// backing hot with concurrent writebacks and refills.
		Cache: pcache.Config{Sets: 4, Ways: 2, LineBytes: 64, Banks: 2},
	}, backing)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		lines   = 256
		rounds  = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			model := map[uint64]byte{}
			rnd := uint64(g)*2654435761 + 1
			next := func(n uint64) uint64 { rnd = rnd*6364136223846793005 + 1442695040888963407; return (rnd >> 33) % n }
			for i := 0; i < rounds; i++ {
				line := uint64(g) + next(lines/workers)*workers // disjoint per goroutine
				addr := line * 64
				switch next(4) {
				case 0:
					v := byte(next(256))
					if err := s.Write(addr, []byte{v}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					model[addr] = v
				case 1:
					got, err := s.Read(addr, 1)
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if want, ok := model[addr]; ok && got[0] != want {
						t.Errorf("goroutine %d: addr %#x = %#x, want %#x", g, addr, got[0], want)
						return
					}
				case 2: // batch write+readback over a few owned lines
					var wops []pcache.WriteOp
					for k := 0; k < 4; k++ {
						l := uint64(g) + next(lines/workers)*workers
						v := byte(next(256))
						wops = append(wops, pcache.WriteOp{Addr: l * 64, Data: []byte{v}})
					}
					if failed := s.WriteBatch(wops); failed != 0 {
						t.Errorf("batch write failed %d", failed)
						return
					}
					for _, op := range wops {
						model[op.Addr] = op.Data[0] // last-wins per batch order
					}
				case 3:
					if err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiesced: flush everything and check the shared backing holds
	// each goroutine's final values at the global addresses.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits+st.Misses+st.Bypassed != st.Accesses {
		t.Fatalf("incoherent aggregate stats after hammer: %+v", st)
	}
}
