package resilience

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-bank circuit breakers. The breaker sits
// in front of the recovery rungs, not in front of the bank: an open
// breaker does not reject traffic, it routes new uncorrectables on the
// bank straight to the degrade/bypass rung, bounding how much repair
// latency a persistently failing bank can charge its clients.
type BreakerConfig struct {
	// Disabled turns the breakers off: every repair runs the full
	// ladder, as before this layer existed.
	Disabled bool
	// FailureThreshold is how many consecutive failed repairs (rungs
	// exhausted, watchdog force-escalation) trip a closed breaker open.
	// Zero or negative selects 5.
	FailureThreshold int
	// OpenTimeout is how long an open breaker sheds before allowing a
	// half-open probe repair. Zero or negative selects 10ms.
	OpenTimeout time.Duration
	// ProbeSuccesses is how many consecutive successful probes close a
	// half-open breaker. Zero or negative selects 2.
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 10 * time.Millisecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// breakerState is the classic three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// bankBreaker is one bank's breaker. Single-flight serialises repairs
// per bank, so admit/record pairs never interleave for the same bank in
// practice; the mutex still makes every path safe on its own.
type bankBreaker struct {
	mu       sync.Mutex
	state    breakerState
	fails    int  // consecutive failures while closed
	probeOK  int  // consecutive probe successes while half-open
	probing  bool // a probe repair is currently out
	openedAt time.Time
}

// admitVerdict is the breaker's routing decision for a would-be repair.
type admitVerdict int

const (
	// admitRun: run the full ladder (breaker closed or disabled).
	admitRun admitVerdict = iota
	// admitProbe: run the full ladder as a half-open probe; the result
	// decides whether the breaker closes or re-opens.
	admitProbe
	// admitShed: skip the recovery rungs, go straight to degrade.
	admitShed
)

// admit asks bank's breaker how to route a new repair. An open breaker
// whose OpenTimeout has elapsed transitions to half-open here and
// admits the caller as the probe; only one probe is out at a time.
func (e *Engine) admit(bank int) admitVerdict {
	if e.cfg.Breaker.Disabled {
		return admitRun
	}
	b := &e.breakers[bank]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return admitRun
	case breakerOpen:
		if e.clock().Sub(b.openedAt) < e.cfg.Breaker.OpenTimeout {
			return admitShed
		}
		e.transitionLocked(bank, b, breakerHalfOpen, "open timeout elapsed")
		b.probing = true
		return admitProbe
	default: // half-open
		if b.probing {
			return admitShed
		}
		b.probing = true
		return admitProbe
	}
}

// recordBreaker feeds a finished repair's outcome back into bank's
// breaker. success means the rungs rescued the access without the
// watchdog forcing the repair over.
func (e *Engine) recordBreaker(bank int, probe, success bool) {
	if e.cfg.Breaker.Disabled {
		return
	}
	b := &e.breakers[bank]
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= e.cfg.Breaker.FailureThreshold {
			b.openedAt = e.clock()
			e.breakerTrips.Inc()
			e.transitionLocked(bank, b, breakerOpen, "failure threshold")
		}
	case breakerHalfOpen:
		if success {
			b.probeOK++
			if b.probeOK >= e.cfg.Breaker.ProbeSuccesses {
				e.transitionLocked(bank, b, breakerClosed, "probe successes")
			}
			return
		}
		b.openedAt = e.clock()
		e.breakerTrips.Inc()
		e.transitionLocked(bank, b, breakerOpen, "probe failed")
	case breakerOpen:
		// A result landing after an independent re-open: stale, ignore.
	}
}

// releaseBreaker returns a probe slot without recording an outcome —
// the repair aborted for reasons that say nothing about the bank's
// health (caller deadline, hard non-DUE error).
func (e *Engine) releaseBreaker(bank int, probe bool) {
	if !probe || e.cfg.Breaker.Disabled {
		return
	}
	b := &e.breakers[bank]
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// transitionLocked moves b to state `to`, maintaining counters, the
// open-breakers gauge, and the event stream. Caller holds b.mu.
func (e *Engine) transitionLocked(bank int, b *bankBreaker, to breakerState, reason string) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case breakerClosed:
		b.fails, b.probeOK = 0, 0
	case breakerOpen:
		b.probeOK = 0
	case breakerHalfOpen:
		b.probeOK = 0
	}
	if to == breakerOpen {
		e.breakersOpen.Add(1)
	}
	if from == breakerOpen {
		e.breakersOpen.Add(-1)
	}
	e.breakerTransitions.Inc()
	e.snk().BreakerTransition(bank, from.String(), to.String(), reason)
}

// BreakerState reports bank's breaker state ("closed", "open",
// "half-open") for reports and tests.
func (e *Engine) BreakerState(bank int) string {
	if e.cfg.Breaker.Disabled || bank < 0 || bank >= len(e.breakers) {
		return breakerClosed.String()
	}
	b := &e.breakers[bank]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
