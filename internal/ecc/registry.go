package ecc

// Registry returns one representative instance of every per-word code
// family over 64-bit data words: the paper's interleaved-parity
// detection codes, the Hsiao correcting codes, and the BCH multi-bit
// baselines. Differential tests (FuzzKernelVsVector) and the kernel
// micro-benches iterate it so a new code family is covered the moment
// it is registered here.
func Registry() []Code {
	codes := []Code{
		MustEDC(64, 8),
		MustEDC(64, 16),
		MustEDC(64, 32),
		MustSECDED(64),
		MustSECDEDSbED(64, 4),
		MustSECDEDSBD(64),
	}
	for _, mk := range []struct {
		name string
		make func(int) (Code, error)
	}{
		{"DECTED", NewDECTED},
		{"QECPED", NewQECPED},
		{"OECNED", NewOECNED},
	} {
		c, err := mk.make(64)
		if err != nil {
			panic("ecc: registry: " + mk.name + ": " + err.Error())
		}
		codes = append(codes, c)
	}
	return codes
}
