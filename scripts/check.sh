#!/bin/sh
# check.sh — the tier-1 verify loop, `make check`-equivalent.
#
#   ./scripts/check.sh          # fmt + vet + build + test + race on hardened packages
#   ./scripts/check.sh -full    # additionally race-test every package
#
# The race pass covers the packages with concurrent hot paths (banked
# pcache locking, the resilience engine/scrubber, atomic twod stats,
# the obs registry) and the kernel layer they are built on (bitvec word
# views, ecc scratch pools); -full extends it to the whole module.
#
# The replay gate re-runs every committed fault trace in
# internal/replay/testdata/ (each one is a shrunk, once-silent storm
# run) through the deterministic replayer; -full repeats them under
# -race and adds the cmd/soak exit-code contract.
#
# Every go test invocation carries -timeout 120s — the deadlock gate: a
# wedged repair (stuck single-flight leader, watchdog that never fires,
# scrubber Stop that never joins) fails the build in two minutes with a
# goroutine dump instead of idling under go test's default 10m.
#
# staticcheck runs when the binary is on PATH and is skipped with a
# warning otherwise, so the gate tightens automatically on machines
# that have it without breaking minimal containers.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt_out" >&2
    exit 1
fi
echo "== go vet ./..."
go vet ./...
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi
echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test -timeout 120s ./...
echo "== replay gate (committed fault traces)"
go test -timeout 120s ./internal/replay/ -run 'TestCommittedTraces'
if [ "${1:-}" = "-full" ]; then
    echo "== go test -race ./... (full)"
    go test -race -timeout 120s ./...
    echo "== replay gate under -race (full)"
    go test -race -timeout 120s ./internal/replay/ -run 'TestCommittedTraces'
    echo "== cmd/soak exit-code contract (full)"
    sh scripts/test_soak_exit.sh
else
    echo "== go test -race (concurrency-hardened packages + kernel layer)"
    go test -race -timeout 120s ./internal/bitvec/ ./internal/ecc/ ./internal/twod/ ./internal/pcache/ ./internal/resilience/ ./internal/obs/ ./internal/store/ ./internal/netsrv/ ./internal/fault/ ./internal/cluster/ ./internal/bufpool/
fi
echo "check: OK"
