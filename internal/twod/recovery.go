package twod

import (
	"sort"
	"sync/atomic"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// RecoveryMode identifies which branch of the Fig. 4(b) algorithm
// repaired the array.
type RecoveryMode int

const (
	// RecoveryNone: the scan found nothing to repair.
	RecoveryNone RecoveryMode = iota
	// RecoveryRow: each vertical parity group held at most one faulty
	// row, so every faulty row was reconstructed by XOR-ing the group.
	RecoveryRow
	// RecoveryColumn: multiple faulty rows shared a group (large-scale
	// column failure); faulty columns were located via the vertical
	// code and bits were solved for along the horizontal direction.
	RecoveryColumn
	// RecoveryFailed: the error footprint exceeded 2D coverage.
	RecoveryFailed
)

// String names the recovery mode.
func (m RecoveryMode) String() string {
	switch m {
	case RecoveryNone:
		return "none"
	case RecoveryRow:
		return "row-reconstruction"
	case RecoveryColumn:
		return "column-localisation"
	case RecoveryFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// RecoveryReport summarises one invocation of the BIST-style recovery
// process.
type RecoveryReport struct {
	// Mode is the repair strategy that ran.
	Mode RecoveryMode
	// FaultyWords is the number of words whose horizontal code flagged
	// an error during the scan.
	FaultyWords int
	// BitsFlipped is the number of cell corrections applied.
	BitsFlipped int
	// InlineFixes counts words repaired by the horizontal ECC itself
	// during column-mode recovery (the grey "ECC correct" box of
	// Fig. 4(b)); nonzero only with a correcting horizontal code.
	InlineFixes int
	// ParityRefreshed reports whether the vertical parity rows were
	// rebuilt (they held errors, or row-mode changed intent).
	ParityRefreshed bool
	// ScanReads counts the word reads performed — the dominant term of
	// the recovery latency (comparable to a BIST march, §4).
	ScanReads int
	// Success reports whether the array checks fully clean afterwards.
	Success bool
}

// CyclesEstimate returns a rough latency in array-access cycles,
// dominated by the scan reads plus one write per corrected word.
func (r RecoveryReport) CyclesEstimate() int {
	return r.ScanReads + r.BitsFlipped
}

// recoverImpl is the 2D recovery process (Recover without event
// emission). It implements Fig. 4(b):
//
//  1. March over all rows, checking every word's horizontal code.
//  2. If every vertical group holds at most one faulty row, each faulty
//     row's error pattern equals the group's parity mismatch — XOR it in.
//  3. Otherwise (column-scale failure) locate suspect columns from the
//     vertical mismatch and solve each faulty word's syndrome over the
//     suspect set along the horizontal direction.
//  4. Re-verify; refresh parity rows if the data is clean but parity is
//     stale (errors struck the parity storage itself).
func (a *Array) recoverImpl() RecoveryReport {
	atomic.AddUint64(&a.stats.Recoveries, 1)
	rep := RecoveryReport{}

	faultyWords, faultyRows := a.scan(&rep)
	rep.FaultyWords = len(faultyWords)

	mismatch := a.verticalMismatch()

	if len(faultyWords) == 0 {
		// Data clean. If parity rows disagree they took the hit; rebuild.
		rep.Mode = RecoveryNone
		if !allZero(mismatch) {
			a.rebuildParity()
			rep.ParityRefreshed = true
		}
		rep.Success = true
		return rep
	}

	// Count faulty rows per vertical group.
	groupCount := make([]int, a.cfg.VerticalGroups)
	for r := range faultyRows {
		groupCount[a.group(r)]++
	}
	columnMode := false
	for _, c := range groupCount {
		if c > 1 {
			columnMode = true
			break
		}
	}

	// touched[g] records that this recovery applied repairs to data rows
	// of group g — used below to tell residue flushes apart from wrong
	// repairs when the parity disagrees after verification.
	touched := make([]bool, a.cfg.VerticalGroups)

	if !columnMode {
		rep.Mode = RecoveryRow
		// Repair rows in ascending order: the repairs commute (disjoint
		// rows), but a fixed order keeps replayed recoveries bit- and
		// event-identical to the recorded run (map order is randomised).
		rows := make([]int, 0, len(faultyRows))
		for r := range faultyRows {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		for _, r := range rows {
			if a.residual[a.group(r)] {
				// The group's mismatch carries the residue of an
				// overwritten unrepairable word — an error pattern of
				// unknown shape. Even when the per-word syndrome check
				// below passes, residues can pair into a code-valid
				// pattern (EDC8 parity columns alias mod 8) riding
				// along with the row's real error: XOR-ing the
				// mismatch in would then forge a clean-checking wrong
				// word. Refuse; escalation handles the row as an
				// accounted loss.
				continue
			}
			m := mismatch[a.group(r)]
			if !a.rowDeltaPlausible(r, m) {
				// The mismatch carries bits the horizontal code cannot
				// attribute to this row's errors: the parity itself is
				// stale or struck. XOR-ing it in could forge a
				// valid-looking word — leave the row for verification
				// to flag rather than guess (Fig. 4(b) step 4).
				continue
			}
			rep.BitsFlipped += m.PopCount()
			a.data.XorRow(r, m)
			touched[a.group(r)] = true
		}
	} else {
		rep.Mode = RecoveryColumn
		if !a.recoverColumns(mismatch, faultyWords, groupCount, touched, &rep) {
			rep.Mode = RecoveryFailed
		}
	}

	// Verify: every word must now check clean.
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			rep.ScanReads++
			if a.checkWord(r, w) != 0 {
				rep.Mode = RecoveryFailed
				rep.Success = false
				atomic.AddUint64(&a.stats.Uncorrectable, 1)
				return rep
			}
		}
	}
	// Data verified clean; restore the parity invariant if anything is
	// left inconsistent (e.g. parity rows themselves were struck).
	if remaining := a.verticalMismatch(); !allZero(remaining) {
		if rep.InlineFixes > 0 {
			// Inline ECC corrections that leave the vertical parity
			// inconsistent indicate a miscorrection (>1 real error in
			// some word): refuse to mask it.
			rep.Mode = RecoveryFailed
			rep.Success = false
			atomic.AddUint64(&a.stats.Uncorrectable, 1)
			return rep
		}
		for g, m := range remaining {
			if m.IsZero() || a.residual[g] || !touched[g] {
				continue
			}
			// This recovery wrote into group g, every word now checks
			// clean, yet the parity still disagrees and no residue
			// explains it: the repairs themselves must be wrong
			// (code-valid garbage). Rebuilding here would bake the
			// forgery into the parity — refuse instead.
			rep.Mode = RecoveryFailed
			rep.Success = false
			atomic.AddUint64(&a.stats.Uncorrectable, 1)
			return rep
		}
		a.rebuildParity()
		rep.ParityRefreshed = true
	}
	rep.Success = true
	atomic.AddUint64(&a.stats.RecoveredWords, uint64(rep.FaultyWords))
	return rep
}

// scan marches over the array checking every word's horizontal code.
func (a *Array) scan(rep *RecoveryReport) (map[[2]int]uint64, map[int]bool) {
	faultyWords := make(map[[2]int]uint64)
	faultyRows := make(map[int]bool)
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			rep.ScanReads++
			if syn := a.checkWord(r, w); syn != 0 {
				faultyWords[[2]int{r, w}] = syn
				faultyRows[r] = true
			}
		}
	}
	return faultyWords, faultyRows
}

// rowDeltaPlausible reports whether mismatch m is a credible error
// pattern for row r: every word the horizontal code flags must be
// explained by m's slice (matching syndrome), and every clean word's
// slice must be empty. A failure means the group's parity disagrees
// with the data for reasons beyond this row — applying m would write
// garbage into words that were never faulty. Code-valid garbage
// confined to an already-faulty word is indistinguishable from a real
// error pattern and remains beyond coverage, as in the paper.
func (a *Array) rowDeltaPlausible(r int, m *bitvec.Vector) bool {
	nb := a.layout.CodewordBits
	d := a.cfg.WordsPerRow
	mw := m.Words()
	for w := 0; w < a.cfg.WordsPerRow; w++ {
		// Gather m's interleaved slice for word slot w into scratch.
		s := a.scr.cw
		for i := range s {
			s[i] = 0
		}
		zero := true
		col := w
		for b := 0; b < nb; b++ {
			if mw[col>>6]>>uint(col&63)&1 != 0 {
				zero = false
				s[b>>6] |= 1 << uint(b&63)
			}
			col += d
		}
		syn := a.syndromeAt(r, w)
		if syn == 0 {
			if !zero {
				return false
			}
			continue
		}
		if a.cfg.Horizontal.SyndromeWords(bitvec.MakeCodeword(s, nb)) != syn {
			return false
		}
	}
	return true
}

// verticalMismatch returns, per group, the XOR of the stored parity row
// with the parity recomputed from the data rows. With at most one
// faulty row in the group this equals that row's exact error pattern.
func (a *Array) verticalMismatch() []*bitvec.Vector {
	out := make([]*bitvec.Vector, a.cfg.VerticalGroups)
	for g := range out {
		m := a.vpar.Row(g).Clone()
		for r := g; r < a.cfg.Rows; r += a.cfg.VerticalGroups {
			m.Xor(a.data.Row(r))
		}
		out[g] = m
	}
	return out
}

// rebuildParity recomputes all vertical parity rows from the data.
// Every residue is gone afterwards, so the taint flags clear with it;
// callers are responsible for only rebuilding over trustworthy data.
func (a *Array) rebuildParity() {
	for g := 0; g < a.cfg.VerticalGroups; g++ {
		p := a.vpar.Row(g)
		p.Zero()
		for r := g; r < a.cfg.Rows; r += a.cfg.VerticalGroups {
			p.Xor(a.data.Row(r))
		}
		a.residual[g] = false
	}
}

// recoverColumns handles large-scale column failures — the branch taken
// when some vertical group holds more than one faulty row.
//
// Evidence discipline: a group's parity mismatch is the XOR of its
// rows' error patterns. With exactly ONE faulty row in the group, the
// mismatch IS that row's pattern — the same hard evidence row mode
// uses, so such rows are repaired here with the full row-mode
// discipline (taint refusal + plausibility). With SEVERAL faulty rows
// the attribution of mismatch columns to rows is underdetermined, and
// under a detection-only horizontal code the per-word syndrome adds
// only an 8-value check that aliases mod 8. Worse, two same-column
// flips inside the group cancel out of the mismatch entirely, so the
// visible columns need not even contain the true error: a "unique"
// GF(2) solution over them can be plain wrong, and the forged state is
// globally self-consistent — clean words, zero mismatch, consistent
// multiplicities — hence undetectable after the fact. The true state
// and the forgery satisfy every observable, so no solver confined to
// the visible evidence is sound. Shrunk storm traces pinning four
// escalating variants of this forgery (cross-group borrowing,
// corroborated borrowing, and same-group aliasing) live in
// internal/replay/testdata/{cancelpair,crosscluster,hiddenpair}-shrunk.trace.
//
// Therefore: under EDC, words in multi-faulty-row groups refuse and
// escalate to an accounted loss (wipe + reload). With a correcting
// horizontal code the per-word evidence is strong enough to keep the
// GF(2) solve (its column space has distance >= 4, so small aliasing
// dependencies do not exist), with the code's own inline correction as
// the fallback (Fig. 4(b)'s grey box).
//
// Config.AssumeClusteredFaults trades this discipline for the paper's
// declared fault model: offline coverage campaigns measuring Fig. 3/4
// claims pool suspect columns across all groups and solve every faulty
// word over the pool, which is sound when errors really are contiguous
// column clusters (recoverColumnsClustered).
func (a *Array) recoverColumns(mismatch []*bitvec.Vector, faultyWords map[[2]int]uint64, groupCount []int, touched []bool, rep *RecoveryReport) bool {
	if a.cfg.AssumeClusteredFaults {
		return a.recoverColumnsClustered(mismatch, faultyWords, touched, rep)
	}
	h := a.cfg.Horizontal
	canInline := h.CorrectCapability() > 0
	ok := true

	// Pass 1 — rows that are the sole faulty row of their group: repair
	// with row-mode evidence. Ascending order for deterministic replay.
	var soleRows []int
	seenRow := make(map[int]bool)
	for rw := range faultyWords {
		r := rw[0]
		if seenRow[r] {
			continue
		}
		seenRow[r] = true
		if groupCount[a.group(r)] == 1 {
			soleRows = append(soleRows, r)
		}
	}
	sort.Ints(soleRows)
	repairedRow := make(map[int]bool)
	for _, r := range soleRows {
		g := a.group(r)
		if a.residual[g] {
			continue // tainted: fall through to pass 2's fallback
		}
		m := mismatch[g]
		if !a.rowDeltaPlausible(r, m) {
			continue
		}
		rep.BitsFlipped += m.PopCount()
		a.data.XorRow(r, m)
		touched[g] = true
		repairedRow[r] = true
	}

	// Pass 2 — words in multi-faulty-row groups, plus sole rows refused
	// above. Row-major order: per-word repairs touch disjoint cells, so
	// the order is for deterministic replay, not correctness.
	order := make([][2]int, 0, len(faultyWords))
	for rw := range faultyWords {
		order = append(order, rw)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	for _, rw := range order {
		r, w := rw[0], rw[1]
		if repairedRow[r] {
			continue
		}
		syn := faultyWords[rw]
		g := a.group(r)
		if !canInline || a.residual[g] {
			// Detection-only code (no sound evidence for this word), or
			// the group's mismatch carries an overwritten word's residue
			// (its columns are not trustworthy). Escalation handles the
			// word as an accounted loss; the inline ECC may still fix it
			// in the tainted-group case.
			if !a.tryInline(r, w, canInline, rep) {
				ok = false
			}
			continue
		}
		var cand []int
		for _, c := range mismatch[g].Ones() {
			if ws, b := a.layout.Locate(c); ws == w {
				cand = append(cand, b)
			}
		}
		cols := make([]uint64, len(cand))
		for i, b := range cand {
			cols[i] = h.ParityColumn(b)
		}
		sel, unique := solveGF2(cols, syn)
		if unique {
			for i, use := range sel {
				if use {
					a.data.Flip(r, a.layout.PhysColumn(w, cand[i]))
					rep.BitsFlipped++
					touched[g] = true
				}
			}
			continue
		}
		if !a.tryInline(r, w, canInline, rep) {
			ok = false
		}
	}
	return ok
}

// recoverColumnsClustered is the fault-model-trusting column mode
// enabled by Config.AssumeClusteredFaults: suspect columns pooled
// across every untainted group, each faulty word solved over the pool
// (Fig. 4(b) as published). Sound only under the declared clustered
// fault model — see recoverColumns for why arbitrary patterns can
// forge it.
func (a *Array) recoverColumnsClustered(mismatch []*bitvec.Vector, faultyWords map[[2]int]uint64, touched []bool, rep *RecoveryReport) bool {
	suspect := bitvec.New(a.layout.RowBits())
	for g, m := range mismatch {
		if a.residual[g] {
			continue // residue columns are not fault evidence
		}
		suspect.Or(m)
	}
	// Group suspect columns by word slot.
	byWord := make(map[int][]int) // word slot -> codeword bit indices
	for _, c := range suspect.Ones() {
		w, b := a.layout.Locate(c)
		byWord[w] = append(byWord[w], b)
	}
	h := a.cfg.Horizontal
	canInline := h.CorrectCapability() > 0
	ok := true
	// Row-major order: repairs touch disjoint cells, so the order is
	// for deterministic replay, not correctness.
	order := make([][2]int, 0, len(faultyWords))
	for rw := range faultyWords {
		order = append(order, rw)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	for _, rw := range order {
		r, w := rw[0], rw[1]
		syn := faultyWords[rw]
		cand := byWord[w]
		cols := make([]uint64, len(cand))
		for i, b := range cand {
			cols[i] = h.ParityColumn(b)
		}
		sel, unique := solveGF2(cols, syn)
		if unique {
			for i, use := range sel {
				if use {
					a.data.Flip(r, a.layout.PhysColumn(w, cand[i]))
					rep.BitsFlipped++
					touched[a.group(r)] = true
				}
			}
			continue
		}
		if !a.tryInline(r, w, canInline, rep) {
			ok = false
		}
	}
	return ok
}

// tryInline falls back to the horizontal ECC's own correction for one
// faulty word — the grey "ECC correct" box of Fig. 4(b). This handles
// column failures invisible to the vertical parity (even flip counts
// in every group), which a correcting code localises per word.
func (a *Array) tryInline(r, w int, canInline bool, rep *RecoveryReport) bool {
	if !canInline {
		return false
	}
	a.extractInto(a.scr.cw, r, w)
	cw := bitvec.MakeCodeword(a.scr.cw, a.layout.CodewordBits)
	res, n := a.cfg.Horizontal.DecodeInPlace(cw)
	if res != ecc.Corrected {
		return false
	}
	a.storeRawWords(r, w, a.scr.cw)
	rep.InlineFixes++
	rep.BitsFlipped += n
	return true
}

// solveGF2 finds x with sum_{i: x_i} cols[i] == target over GF(2).
// It reports the solution and whether it is unique. Duplicate or
// dependent columns make the system ambiguous (unique=false).
func solveGF2(cols []uint64, target uint64) (sel []bool, unique bool) {
	n := len(cols)
	sel = make([]bool, n)
	// Build augmented rows: each column becomes a variable; eliminate
	// to reduced row-echelon over the syndrome-bit equations.
	type eq struct {
		coef uint64 // bit i set => variable i participates
		rhs  bool
	}
	// There are up to 64 syndrome bits; build one equation per bit.
	var eqs []eq
	for bit := 0; bit < 64; bit++ {
		var coef uint64
		for i, c := range cols {
			if c&(1<<uint(bit)) != 0 {
				coef |= 1 << uint(i)
			}
		}
		rhs := target&(1<<uint(bit)) != 0
		if coef == 0 {
			if rhs {
				return nil, false // inconsistent
			}
			continue
		}
		eqs = append(eqs, eq{coef, rhs})
	}
	if n > 64 {
		return nil, false // solver supports up to 64 suspect bits/word
	}
	// Gaussian elimination on variables.
	pivotOf := make([]int, 0, n)
	row := 0
	for v := 0; v < n && row < len(eqs); v++ {
		// Find a row at/after 'row' with variable v.
		p := -1
		for i := row; i < len(eqs); i++ {
			if eqs[i].coef&(1<<uint(v)) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		eqs[row], eqs[p] = eqs[p], eqs[row]
		for i := range eqs {
			if i != row && eqs[i].coef&(1<<uint(v)) != 0 {
				eqs[i].coef ^= eqs[row].coef
				eqs[i].rhs = eqs[i].rhs != eqs[row].rhs
			}
		}
		pivotOf = append(pivotOf, v)
		row++
	}
	// Unique iff every variable got a pivot.
	if len(pivotOf) < n {
		return nil, false
	}
	// Back-substitute (matrix is diagonal on pivots now).
	for i, v := range pivotOf {
		if eqs[i].rhs {
			sel[v] = true
		}
	}
	// Consistency: remaining equations must be 0 = 0.
	for i := len(pivotOf); i < len(eqs); i++ {
		if eqs[i].coef == 0 && eqs[i].rhs {
			return nil, false
		}
	}
	return sel, true
}

// FlushResidualParity rebuilds the vertical parity row of every group
// whose data rows all check clean horizontally but whose stored parity
// disagrees with the data. Such residues are the deliberate leftovers
// of the raw-delta overwrite discipline (writeStaged's uncorrectable
// branch, ForceWrite): when an unrepairable word is overwritten, its
// old error pattern stays in its group's mismatch instead of a full
// parity rebuild erasing every other faulty row's recovery
// information. A lone residue has a nonzero horizontal syndrome and is
// refused by rowDeltaPlausible, but residues left to accumulate can
// combine into a code-valid pattern that a later row-mode repair would
// replay into a genuinely faulty row — which is why residue-carrying
// groups are tainted (row-mode recovery refuses them outright) and why
// wipe paths call this once the damage they were handling is cleared:
// flushing retires the residue and lifts the taint, restoring full
// row-mode recoverability for the group. Groups still containing
// detected faulty words keep their mismatch (and taint) untouched.
// Returns the number of groups flushed. Caller must hold the array's
// external exclusive lock, as for Recover.
func (a *Array) FlushResidualParity() int {
	flushed := 0
	for g := 0; g < a.cfg.VerticalGroups; g++ {
		m := a.vpar.Row(g).Clone()
		clean := true
		for r := g; r < a.cfg.Rows && clean; r += a.cfg.VerticalGroups {
			m.Xor(a.data.Row(r))
			for w := 0; w < a.cfg.WordsPerRow; w++ {
				if a.syndromeAt(r, w) != 0 {
					clean = false
					break
				}
			}
		}
		if !clean {
			continue
		}
		// Every word of the group checks clean: any residue is now
		// retired (rebuilt away below) and the taint lifts.
		a.residual[g] = false
		if m.IsZero() {
			continue
		}
		p := a.vpar.Row(g)
		p.Zero()
		for r := g; r < a.cfg.Rows; r += a.cfg.VerticalGroups {
			p.Xor(a.data.Row(r))
		}
		flushed++
	}
	return flushed
}

func allZero(vs []*bitvec.Vector) bool {
	for _, v := range vs {
		if !v.IsZero() {
			return false
		}
	}
	return true
}

// IntegrityReport is the result of a non-mutating consistency audit.
type IntegrityReport struct {
	// FaultyWords counts words whose horizontal code flags an error.
	FaultyWords int
	// ParityMismatches counts vertical groups whose stored parity row
	// disagrees with the data.
	ParityMismatches int
}

// Clean reports whether the audit found nothing.
func (r IntegrityReport) Clean() bool {
	return r.FaultyWords == 0 && r.ParityMismatches == 0
}

// VerifyIntegrity audits the array without modifying anything: every
// word's horizontal code is checked and every vertical parity row is
// recomputed and compared. Diagnostics and tests use it to distinguish
// "clean", "recoverable", and "silently inconsistent" states.
func (a *Array) VerifyIntegrity() IntegrityReport {
	rep := IntegrityReport{}
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			if a.checkWord(r, w) != 0 {
				rep.FaultyWords++
			}
		}
	}
	for _, m := range a.verticalMismatch() {
		if !m.IsZero() {
			rep.ParityMismatches++
		}
	}
	return rep
}
