// Package obs is the observability layer: allocation-conscious metric
// primitives (Counter, Gauge, fixed-bucket latency Histogram) backed by
// atomics, a Registry that produces coherent point-in-time snapshots,
// and a structured event-hook interface (Sink) with a no-op default
// that stays off the hot path.
//
// The design goal is that the instrumentation be as trustworthy as the
// protection scheme it measures: individual counters are lock-free
// atomics (one uncontended atomic add on the hot path, zero heap
// allocations), and all cross-counter reasoning — rates, ladder
// hit/attempt ratios, hit/access ratios — happens on a Snapshot whose
// coherence rules guarantee that derived quantities never go negative:
//
//  1. Counters are read in registration order under the registry lock.
//  2. Declared cross-counter invariants (ClampLE: lower ≤ upper, e.g.
//     retry hits ≤ retries) are enforced by clamping the lower value.
//  3. Counters are clamped monotonically non-decreasing against the
//     previous snapshot, so rates computed between two snapshots are
//     never negative even while writers race the reader.
//  4. A histogram's total count is derived from the very bucket values
//     in the snapshot, so bucket sums always equal the count.
//
// A snapshot is therefore not a linearisable cut of all counters (that
// would require stopping the world), but every *declared* invariant
// holds in every snapshot, which is what downstream consumers (health
// reports, exporters, dashboards) actually rely on.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use. All methods are safe for concurrent use and perform
// no heap allocation.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value. Prefer Registry.Snapshot when the
// value will be compared against other counters.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use. All methods are safe for concurrent use and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram: observations are
// durations, buckets are cumulative-style upper bounds fixed at
// construction. Observe is lock-free (two atomic adds plus a linear
// scan over a handful of bounds) and allocation-free.
type Histogram struct {
	bounds  []time.Duration // ascending upper bounds; implicit +Inf last
	buckets []atomic.Uint64 // len(bounds)+1
	sum     atomic.Int64    // nanoseconds
}

// DefaultLatencyBounds covers the recovery/scrub latencies this system
// exhibits: sub-microsecond retries up to second-scale full recoveries.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		time.Microsecond,
		10 * time.Microsecond,
		100 * time.Microsecond,
		time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		time.Second,
	}
}

// NewHistogram builds a histogram with the given ascending upper
// bounds; an empty list selects DefaultLatencyBounds. Registry-managed
// histograms are built via Registry.Histogram instead.
func NewHistogram(bounds ...time.Duration) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not ascending at %d: %v", i, bounds)
		}
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}, nil
}

// MustHistogram is NewHistogram panicking on error.
func MustHistogram(bounds ...time.Duration) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one duration. Negative durations clamp to zero (a
// clock step backwards must not corrupt the sum's sign).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// --- event hooks --------------------------------------------------------

// Sink receives structured resilience events. Implementations must be
// safe for concurrent use and should return quickly: emitters call them
// inline from recovery and scrub paths (never from the clean-hit fast
// path, which emits no events at all). Install NopSink{} — or leave the
// emitter's sink unset — for zero overhead.
type Sink interface {
	// RecoveryStart fires when a recovery escalation begins for the
	// located uncorrectable fault. Emitters that do not know the cache
	// coordinates (e.g. a raw array) pass set = way = -1.
	RecoveryStart(array string, set, way int)
	// RecoveryEnd fires when the escalation finishes, successfully or
	// not, with the wall-clock duration of the attempt.
	RecoveryEnd(array string, set, way int, success bool, d time.Duration)
	// ScrubPass fires after a completed scrub sweep over `banks` banks:
	// clean reports whether every bank checked (or was repaired) clean,
	// victims is how many ways the sweep handed to degradation.
	ScrubPass(banks int, clean bool, victims int, d time.Duration)
	// DegradeEpoch fires when a way is decommissioned (graceful
	// degradation); lostDirty reports discarded unflushed data.
	DegradeEpoch(set, way int, lostDirty bool)
	// UncorrectableDetected fires when an access trips an error beyond
	// the 2D coverage, before any recovery is attempted.
	UncorrectableDetected(array string, set, way int)
	// BreakerTransition fires when a per-bank circuit breaker changes
	// state (closed/open/half-open); reason names the edge that was
	// taken ("failure threshold", "probe failed", ...).
	BreakerTransition(bank int, from, to, reason string)
	// RepairCoalesced fires when a request joins an already-in-flight
	// repair on its bank instead of starting its own (single-flight).
	RepairCoalesced(array string, bank, set, way int)
	// RequestShed fires when an open breaker routes a request straight
	// to the degrade/bypass path, skipping the recovery rungs.
	RequestShed(array string, bank, set, way int)
	// WatchdogFire fires when the recovery watchdog force-escalates a
	// stuck or over-budget in-flight repair; age is how long the repair
	// had been running.
	WatchdogFire(bank, set, way int, age time.Duration)
}

// NopSink is the no-op default Sink: every method is an empty inlinable
// body, so an installed NopSink costs one interface dispatch on the
// (already slow) event paths and nothing on the clean-hit path.
type NopSink struct{}

// RecoveryStart implements Sink.
func (NopSink) RecoveryStart(string, int, int) {}

// RecoveryEnd implements Sink.
func (NopSink) RecoveryEnd(string, int, int, bool, time.Duration) {}

// ScrubPass implements Sink.
func (NopSink) ScrubPass(int, bool, int, time.Duration) {}

// DegradeEpoch implements Sink.
func (NopSink) DegradeEpoch(int, int, bool) {}

// UncorrectableDetected implements Sink.
func (NopSink) UncorrectableDetected(string, int, int) {}

// BreakerTransition implements Sink.
func (NopSink) BreakerTransition(int, string, string, string) {}

// RepairCoalesced implements Sink.
func (NopSink) RepairCoalesced(string, int, int, int) {}

// RequestShed implements Sink.
func (NopSink) RequestShed(string, int, int, int) {}

// WatchdogFire implements Sink.
func (NopSink) WatchdogFire(int, int, int, time.Duration) {}

var _ Sink = NopSink{}
