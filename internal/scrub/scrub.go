// Package scrub models periodic scrubbing (§2.1 of the paper): a
// background process that sweeps the array, checks every word, and
// repairs what it finds. Scrubbing bounds the *accumulation* of soft
// errors between passes — two upsets that individually fit the 2D
// coverage can combine into an uncorrectable footprint if left to
// accumulate. The package quantifies the paper's remark that scrubbing
// alone "has lower error coverage than checking ECC on every read" and
// gives the uncorrectable-accumulation probability as a function of the
// scrub interval.
package scrub

import (
	"fmt"
	"math"
	"math/rand"

	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/stats"
	"twodcache/internal/twod"
)

// Model parameterises the accumulation study for one protected bank.
type Model struct {
	// Rows and WordsPerRow give the bank geometry.
	Rows, WordsPerRow int
	// Horizontal names the horizontal code ("EDC8" or "SECDED", 64-bit
	// words).
	Horizontal string
	// VerticalGroups is V.
	VerticalGroups int
	// FITPerMb is the soft-error rate.
	FITPerMb float64
	// Dist is the upset footprint distribution.
	Dist fault.EventSizeDist
}

// DefaultModel returns the paper-configuration bank under a modern
// upset mix.
func DefaultModel() Model {
	return Model{
		Rows: 256, WordsPerRow: 4,
		Horizontal:     "EDC8",
		VerticalGroups: 32,
		FITPerMb:       1000,
		Dist:           fault.ModernDist(),
	}
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.Rows <= 0 || m.WordsPerRow <= 0 || m.VerticalGroups <= 0 {
		return fmt.Errorf("scrub: invalid geometry %+v", m)
	}
	if m.FITPerMb < 0 {
		return fmt.Errorf("scrub: negative FIT rate")
	}
	if m.Horizontal != "EDC8" && m.Horizontal != "SECDED" {
		return fmt.Errorf("scrub: unsupported horizontal code %q", m.Horizontal)
	}
	return m.Dist.Validate()
}

func (m Model) newArray() *twod.Array {
	var h ecc.HorizontalCode
	if m.Horizontal == "SECDED" {
		h = ecc.MustSECDED(64)
	} else {
		h = ecc.MustEDC(64, 8)
	}
	return twod.MustArray(twod.Config{
		Rows:           m.Rows,
		WordsPerRow:    m.WordsPerRow,
		Horizontal:     h,
		VerticalGroups: m.VerticalGroups,
	})
}

// bankBits is the physical cell count of the bank.
func (m Model) bankBits() int {
	a := m.newArray()
	return a.Rows() * a.RowBits()
}

// EventRatePerHour returns the soft-error event arrival rate of the
// bank.
func (m Model) EventRatePerHour() float64 {
	return fault.FITRate(m.FITPerMb, m.bankBits())
}

// FailureGivenEvents estimates, by direct injection into a fresh 2D
// array, the probability that k accumulated upset events defeat
// recovery. Correction of linear codes is data-independent, so the
// array is left zero-filled (fast) without loss of generality.
func (m Model) FailureGivenEvents(rng *rand.Rand, k, trials int) float64 {
	if trials <= 0 || k <= 0 {
		return 0
	}
	fails := 0
	for t := 0; t < trials; t++ {
		a := m.newArray()
		for e := 0; e < k; e++ {
			fault.Apply(a, fault.SoftEvent(rng, a.Rows(), a.RowBits(), m.Dist))
		}
		if rep := a.Recover(); !rep.Success {
			fails++
		}
	}
	return float64(fails) / float64(trials)
}

// Report is the accumulation analysis for one scrub interval.
type Report struct {
	// IntervalHours is the scrub period analysed.
	IntervalHours float64
	// EventsPerInterval is the expected upset count per interval.
	EventsPerInterval float64
	// PFailPerInterval is the per-interval uncorrectable probability.
	PFailPerInterval float64
	// PFailPerYear is 1-(1-PFailPerInterval)^(intervals/year).
	PFailPerYear float64
}

// Analyze computes the uncorrectable-accumulation probability for a
// scrub interval: the per-interval failure probability is the Poisson
// mixture over event counts k of the measured P(fail | k events), for
// k up to maxK (contributions beyond are bounded by the residual tail
// and added conservatively).
func (m Model) Analyze(rng *rand.Rand, intervalHours float64, trials, maxK int) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if intervalHours <= 0 {
		return Report{}, fmt.Errorf("scrub: non-positive interval")
	}
	if maxK < 1 {
		maxK = 1
	}
	lambda := m.EventRatePerHour() * intervalHours
	pInt := 0.0
	cdf := 0.0
	for k := 0; k <= maxK; k++ {
		pk := stats.PoissonPMF(lambda, k)
		cdf += pk
		if k == 0 {
			continue
		}
		pInt += pk * m.FailureGivenEvents(rng, k, trials)
	}
	// Tail: assume failure for any count beyond maxK (conservative).
	pInt += 1 - cdf
	if pInt < 0 {
		pInt = 0
	}
	intervalsPerYear := stats.HoursPerYear / intervalHours
	pYear := 1 - math.Pow(1-pInt, intervalsPerYear)
	return Report{
		IntervalHours:     intervalHours,
		EventsPerInterval: lambda,
		PFailPerInterval:  pInt,
		PFailPerYear:      pYear,
	}, nil
}

// Sweep analyses several scrub intervals.
func (m Model) Sweep(rng *rand.Rand, intervalsHours []float64, trials, maxK int) ([]Report, error) {
	var out []Report
	for _, h := range intervalsHours {
		r, err := m.Analyze(rng, h, trials, maxK)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
