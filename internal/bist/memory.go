package bist

import (
	"fmt"

	"twodcache/internal/bitvec"
)

// FaultKind classifies injected manufacturing defects.
type FaultKind uint8

const (
	// StuckAt0 cells always read 0.
	StuckAt0 FaultKind = iota
	// StuckAt1 cells always read 1.
	StuckAt1
	// TransitionUp cells fail the 0->1 transition (stay 0 when written
	// 1 from 0) but can be reset.
	TransitionUp
	// TransitionDown cells fail the 1->0 transition.
	TransitionDown
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case TransitionUp:
		return "transition-up"
	case TransitionDown:
		return "transition-down"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// CellFault is an injected defect at one cell.
type CellFault struct {
	Row, Col int
	Kind     FaultKind
}

// FaultyArray is a bit array with injectable manufacturing defects; it
// implements Memory so march tests exercise it like silicon.
type FaultyArray struct {
	rows, cols int
	data       *bitvec.Matrix
	faults     map[[2]int]FaultKind
}

// NewFaultyArray builds a zeroed array.
func NewFaultyArray(rows, cols int) (*FaultyArray, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("bist: invalid dimensions %dx%d", rows, cols)
	}
	return &FaultyArray{
		rows: rows, cols: cols,
		data:   bitvec.NewMatrix(rows, cols),
		faults: map[[2]int]FaultKind{},
	}, nil
}

// MustFaultyArray panics on error.
func MustFaultyArray(rows, cols int) *FaultyArray {
	a, err := NewFaultyArray(rows, cols)
	if err != nil {
		panic(err)
	}
	return a
}

// Inject adds a defect. Stuck-at faults take effect immediately.
func (a *FaultyArray) Inject(f CellFault) error {
	if f.Row < 0 || f.Row >= a.rows || f.Col < 0 || f.Col >= a.cols {
		return fmt.Errorf("bist: fault %+v out of bounds", f)
	}
	a.faults[[2]int{f.Row, f.Col}] = f.Kind
	switch f.Kind {
	case StuckAt0:
		a.data.Set(f.Row, f.Col, false)
	case StuckAt1:
		a.data.Set(f.Row, f.Col, true)
	}
	return nil
}

// Rows returns the row count.
func (a *FaultyArray) Rows() int { return a.rows }

// Cols returns the column count.
func (a *FaultyArray) Cols() int { return a.cols }

// ReadBit returns the stored (possibly faulty) value.
func (a *FaultyArray) ReadBit(row, col int) bool {
	return a.data.Bit(row, col)
}

// WriteBit stores a value, subject to the cell's defect behaviour.
func (a *FaultyArray) WriteBit(row, col int, v bool) {
	if k, faulty := a.faults[[2]int{row, col}]; faulty {
		switch k {
		case StuckAt0, StuckAt1:
			return // value pinned
		case TransitionUp:
			if v && !a.data.Bit(row, col) {
				return // 0->1 transition fails
			}
		case TransitionDown:
			if !v && a.data.Bit(row, col) {
				return // 1->0 transition fails
			}
		}
	}
	a.data.Set(row, col, v)
}

// FaultCount returns the number of injected defects.
func (a *FaultyArray) FaultCount() int { return len(a.faults) }

var _ Memory = (*FaultyArray)(nil)
