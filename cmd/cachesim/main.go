// Command cachesim runs one CMP simulation and prints IPC and the
// Fig. 6-style access breakdown.
//
// Usage:
//
//	cachesim [-system fat|lean] [-workload OLTP] [-l1] [-l2] [-ps]
//	         [-warmup N] [-measure N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"twodcache"
)

// dumpMetrics exports the run's counters as one coherent Prometheus
// text snapshot on stdout, so scripted sweeps can scrape cachesim runs
// with the same names the online engine serves.
func dumpMetrics(res twodcache.SimResult) error {
	reg := twodcache.NewMetricsRegistry()
	cnt := func(name, help string, v uint64) {
		reg.CounterFunc(name, help, func() uint64 { return v })
	}
	cnt("cachesim_cycles_total", "measured cycles (after warm-up)", res.Cycles)
	cnt("cachesim_committed_total", "instructions committed across all cores", res.Committed)
	level := func(prefix string, a twodcache.SimAccessStats) {
		cnt(prefix+"_read_data_total", "demand data reads", a.ReadData)
		cnt(prefix+"_read_inst_total", "instruction reads", a.ReadInst)
		cnt(prefix+"_write_total", "stores or writebacks", a.Write)
		cnt(prefix+"_fill_evict_total", "line fills and evictions", a.FillEvict)
		cnt(prefix+"_extra_read_total", "2D read-before-write accesses", a.ExtraRead)
	}
	level("cachesim_l1", res.L1)
	level("cachesim_l2", res.L2)
	cnt("cachesim_l1_to_l1_total", "dirty-data transfers between L1s", res.L1ToL1)
	cnt("cachesim_sq_full_stalls_total", "store-queue-full stalls", res.SQFullStalls)
	cnt("cachesim_port_rejects_total", "port-contention rejects", res.PortRejects)
	cnt("cachesim_recoveries_total", "injected error-recovery events", res.Recoveries)
	return reg.Snapshot().WritePrometheus(os.Stdout)
}

func main() {
	system := flag.String("system", "fat", "CMP baseline: fat or lean")
	wlName := flag.String("workload", "OLTP", "workload: OLTP, DSS, Web, Moldyn, Ocean, Sparse")
	l1 := flag.Bool("l1", false, "protect L1 data caches with 2D coding")
	l2 := flag.Bool("l2", false, "protect the shared L2 with 2D coding")
	ps := flag.Bool("ps", false, "enable port stealing for L1 read-before-writes")
	warmup := flag.Uint64("warmup", 100000, "warmup cycles (discarded)")
	measure := flag.Uint64("measure", 50000, "measured cycles")
	seed := flag.Int64("seed", 1, "trace seed")
	metrics := flag.Bool("metrics", false, "append the run's counters in Prometheus text format")
	flag.Parse()

	var cfg twodcache.SystemConfig
	switch *system {
	case "fat":
		cfg = twodcache.FatCMP()
	case "lean":
		cfg = twodcache.LeanCMP()
	default:
		fmt.Fprintf(os.Stderr, "cachesim: unknown system %q\n", *system)
		os.Exit(1)
	}
	wl, err := twodcache.Workload(*wlName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
		os.Exit(1)
	}
	prot := twodcache.Protection{L1TwoD: *l1, L2TwoD: *l2, PortStealing: *ps}

	res, err := twodcache.RunCMP(cfg, prot, wl, *seed, *warmup, *measure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("system=%s workload=%s protection=%s\n", res.System, res.Workload, res.Protection)
	fmt.Printf("cycles=%d committed=%d IPC=%.3f\n", res.Cycles, res.Committed, res.IPC())
	per100 := func(x uint64) float64 { return float64(x) * 100 / float64(res.Cycles) }
	fmt.Printf("L1/100cyc: read=%.1f write=%.1f fill=%.1f extra2D=%.1f\n",
		per100(res.L1.ReadData), per100(res.L1.Write), per100(res.L1.FillEvict), per100(res.L1.ExtraRead))
	fmt.Printf("L2/100cyc: readData=%.1f readInst=%.1f write=%.1f fill=%.1f extra2D=%.1f\n",
		per100(res.L2.ReadData), per100(res.L2.ReadInst), per100(res.L2.Write), per100(res.L2.FillEvict), per100(res.L2.ExtraRead))
	fmt.Printf("L1-to-L1 transfers=%d sqFullStalls=%d portRejects=%d\n",
		res.L1ToL1, res.SQFullStalls, res.PortRejects)

	if *l1 || *l2 {
		rep, err := twodcache.MeasureIPCLoss(cfg, prot, wl, 3, *warmup, *measure)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("IPC loss vs baseline: %.2f%% (±%.2f, %d matched pairs, baseline IPC %.3f)\n",
			rep.MeanLossPct, rep.CI95Pct, rep.Samples, rep.BaselineIPC)
	}

	if *metrics {
		if err := dumpMetrics(res); err != nil {
			fmt.Fprintf(os.Stderr, "cachesim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
