package fault

import (
	"testing"
	"time"
)

func TestStormDelaysAreExponential(t *testing.T) {
	s := NewStorm(StormConfig{Seed: 1, MeanInterval: 2 * time.Millisecond})
	const n = 5000
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := s.NextDelay()
		if d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < time.Millisecond || mean > 4*time.Millisecond {
		t.Fatalf("sample mean %v too far from configured 2ms", mean)
	}
}

func TestStormEventsInBounds(t *testing.T) {
	s := NewStorm(StormConfig{Seed: 2, MeanInterval: time.Millisecond})
	const rows, cols = 64, 576
	for i := 0; i < 500; i++ {
		p := s.NextEvent(rows, cols)
		if len(p.Flips) == 0 {
			continue // sparse cluster may sample empty
		}
		for _, f := range p.Flips {
			if f.Row < 0 || f.Row >= rows || f.Col < 0 || f.Col >= cols {
				t.Fatalf("event %d flip %+v out of %dx%d", i, f, rows, cols)
			}
		}
	}
	if s.Events() != 500 {
		t.Fatalf("event count %d", s.Events())
	}
}

func TestStormDefaults(t *testing.T) {
	s := NewStorm(StormConfig{})
	if d := s.NextDelay(); d <= 0 {
		t.Fatal("default storm produced non-positive delay")
	}
	if p := s.NextEvent(8, 64); p.Kind == "" {
		t.Fatal("default storm produced kindless pattern")
	}
}
