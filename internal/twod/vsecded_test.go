package twod

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

func vsec(t testing.TB) *VSECDEDArray {
	t.Helper()
	return MustVSECDEDArray(256, 4, ecc.MustEDC(64, 8))
}

func TestVSECDEDConstruction(t *testing.T) {
	a := vsec(t)
	// SECDED over 256 rows needs 10 check rows — vs EDC32's 32.
	if a.CheckRows() != 10 {
		t.Fatalf("check rows = %d, want 10", a.CheckRows())
	}
	if _, err := NewVSECDEDArray(0, 4, ecc.MustEDC(64, 8)); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := NewVSECDEDArray(256, 4, nil); err == nil {
		t.Fatal("nil horizontal accepted")
	}
}

func TestVSECDEDWriteReadRoundTrip(t *testing.T) {
	a := vsec(t)
	rng := rand.New(rand.NewSource(1))
	vals := map[[2]int]uint64{}
	for i := 0; i < 400; i++ {
		r, w := rng.Intn(256), rng.Intn(4)
		v := rng.Uint64()
		a.Write(r, w, bitvec.FromUint64(v, 64))
		vals[[2]int{r, w}] = v
	}
	for k, v := range vals {
		got, st := a.Read(k[0], k[1])
		if st != ReadClean || got.Uint64() != v {
			t.Fatalf("read (%d,%d) = %#x/%v", k[0], k[1], got.Uint64(), st)
		}
	}
}

func TestVSECDEDRecoversScatteredErrors(t *testing.T) {
	// One error per column, across arbitrarily many rows — the pattern
	// vertical SECDED handles that interleaved parity of the same
	// storage budget could not.
	a := vsec(t)
	rng := rand.New(rand.NewSource(2))
	for r := 0; r < 256; r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, bitvec.FromUint64(rng.Uint64(), 64))
		}
	}
	golden := a.SnapshotData()
	// 100 errors in 100 distinct columns, random rows.
	cols := rng.Perm(a.RowBits())[:100]
	for _, c := range cols {
		a.FlipBit(rng.Intn(256), c)
	}
	rep := a.Recover()
	if !rep.Success {
		t.Fatalf("recovery failed: %+v", rep)
	}
	if diff := a.SnapshotData().Diff(golden); len(diff) != 0 {
		t.Fatalf("%d residual errors", len(diff))
	}
}

func TestVSECDEDReadTriggersRecovery(t *testing.T) {
	a := vsec(t)
	d := bitvec.FromUint64(0xABCD, 64)
	a.Write(9, 2, d)
	a.FlipBit(9, a.Layout().PhysColumn(2, 5))
	got, st := a.Read(9, 2)
	if st != ReadRecovered || !got.Equal(d) {
		t.Fatalf("read = %v/%v", got.Uint64(), st)
	}
	if _, st := a.Read(9, 2); st != ReadClean {
		t.Fatal("error not repaired in storage")
	}
}

func TestVSECDEDFailsOnTallClusters(t *testing.T) {
	// Two errors in the same column defeat the vertical SECDED — the
	// trade-off against interleaved parity the abl-vcode ablation
	// quantifies.
	a := vsec(t)
	a.FlipBit(10, 50)
	a.FlipBit(20, 50)
	rep := a.Recover()
	if rep.Success {
		t.Fatal("double-error column unexpectedly recovered")
	}
	if a.Stats().Uncorrectable == 0 {
		t.Fatal("uncorrectable not counted")
	}
}

func TestVSECDEDSingleRowClusterOK(t *testing.T) {
	// A 1x32 burst touches 32 distinct columns once each: correctable.
	a := vsec(t)
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 256; r++ {
		for w := 0; w < 4; w++ {
			a.Write(r, w, bitvec.FromUint64(rng.Uint64(), 64))
		}
	}
	golden := a.SnapshotData()
	for c := 100; c < 132; c++ {
		a.FlipBit(77, c)
	}
	rep := a.Recover()
	if !rep.Success {
		t.Fatalf("1x32 burst not recovered: %+v", rep)
	}
	if len(a.SnapshotData().Diff(golden)) != 0 {
		t.Fatal("data not restored")
	}
}

func TestVSECDEDInlineWithSECDEDHorizontal(t *testing.T) {
	a := MustVSECDEDArray(64, 2, ecc.MustSECDED(64))
	d := bitvec.FromUint64(42, 64)
	a.Write(3, 1, d)
	a.FlipBit(3, a.Layout().PhysColumn(1, 7))
	got, st := a.Read(3, 1)
	if st != ReadCorrectedInline || !got.Equal(d) {
		t.Fatalf("read = %v/%v", got.Uint64(), st)
	}
}

func TestVSECDEDCheckStorageBelowParityVariant(t *testing.T) {
	// The design-point comparison: 10 check rows vs 32 parity rows for
	// the same 256-row bank.
	v := vsec(t)
	if v.CheckRows() >= 32 {
		t.Fatalf("vertical SECDED rows = %d, expected < 32", v.CheckRows())
	}
}
