package netsrv

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"twodcache/internal/bufpool"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/store"
)

// Server metric names.
const (
	metricConns          = "net_conns"
	metricConnsTotal     = "net_conns_total"
	metricConnsRefused   = "net_conns_refused_total"
	metricRequests       = "net_requests_total"
	metricBatches        = "net_batches_total"
	metricBatchOps       = "net_batch_ops_total"
	metricBytesIn        = "net_bytes_in_total"
	metricBytesOut       = "net_bytes_out_total"
	metricReqSeconds     = "net_req_seconds"
	metricBatchSeconds   = "net_batch_seconds"
	metricDeadlineAborts = "net_deadline_aborts_total"
)

// Config assembles a Server.
type Config struct {
	// Store is the storage engine served over the wire — one resilience
	// engine or a sharded router, unchanged. Required.
	Store store.Store
	// BatchSize is the in-flight accumulation threshold: a connection's
	// pipelined single READs/WRITEs are gathered into one
	// ReadBatch/WriteBatch call when this many are pending, or sooner
	// when the pipe goes idle. Zero selects 32; 1 disables batching.
	BatchSize int
	// RespQueue bounds each connection's response queue (frames). A
	// client that stops draining responses stalls its own reader once
	// the queue fills — that is the backpressure mechanism. Zero
	// selects 128.
	RespQueue int
	// MaxConns caps concurrent connections; further accepts are closed
	// immediately and counted in net_conns_refused_total. Zero means
	// unlimited.
	MaxConns int
	// Metrics is the registry the server registers its net_* metrics
	// into. Nil selects a fresh private registry.
	Metrics *obs.Registry
	// EpochOf, when non-nil, serves EPOCH frames: it must return the
	// loss epoch of the set owning addr (the soak oracle's primitive).
	// Nil answers EPOCH with stUnsupported.
	EpochOf func(addr uint64) uint64
}

// Server serves the binary protocol over TCP, riding the store's
// batch-amortised path. Safe for concurrent use; one Server may serve
// several listeners.
type Server struct {
	st        store.Store
	batchSize int
	respQueue int
	maxConns  int
	epochOf   func(uint64) uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	draining  bool
	connWG    sync.WaitGroup

	metrics        *obs.Registry
	connsGauge     *obs.Gauge
	connsTotal     *obs.Counter
	connsRefused   *obs.Counter
	requests       *obs.Counter
	batches        *obs.Counter
	batchOps       *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	reqSeconds     *obs.Histogram
	batchSeconds   *obs.Histogram
	deadlineAborts *obs.Counter
}

// NewServer builds a Server over cfg.Store and registers its metrics.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("netsrv: Config.Store is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		st:        cfg.Store,
		batchSize: cfg.BatchSize,
		respQueue: cfg.RespQueue,
		maxConns:  cfg.MaxConns,
		epochOf:   cfg.EpochOf,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*conn]struct{}{},
		metrics:   reg,
	}
	if s.batchSize <= 0 {
		s.batchSize = 32
	}
	if s.respQueue <= 0 {
		s.respQueue = 128
	}
	s.connsGauge = reg.Gauge(metricConns, "currently open client connections")
	s.connsTotal = reg.Counter(metricConnsTotal, "client connections accepted")
	s.connsRefused = reg.Counter(metricConnsRefused, "connections refused at the limit or while draining")
	s.requests = reg.Counter(metricRequests, "request frames served")
	s.batches = reg.Counter(metricBatches, "store batch calls issued by the wire layer")
	s.batchOps = reg.Counter(metricBatchOps, "ops carried by wire-layer batch calls")
	s.bytesIn = reg.Counter(metricBytesIn, "request bytes received")
	s.bytesOut = reg.Counter(metricBytesOut, "response bytes sent")
	s.reqSeconds = reg.Histogram(metricReqSeconds, "per-request server-side latency")
	s.batchSeconds = reg.Histogram(metricBatchSeconds, "per-batch store call latency")
	s.deadlineAborts = reg.Counter(metricDeadlineAborts, "requests that failed at their deadline")
	return s, nil
}

// Metrics returns the registry holding the server's net_* metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Serve accepts connections on l until l fails or Shutdown runs. It
// returns nil after a graceful shutdown, the accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrDraining
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		if c, ok := s.addConn(nc); ok {
			go c.serve()
		} else {
			s.connsRefused.Inc()
			nc.Close()
		}
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// addConn registers a new connection unless the server is draining or
// at its connection limit.
func (s *Server) addConn(nc net.Conn) (*conn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || (s.maxConns > 0 && len(s.conns) >= s.maxConns) {
		return nil, false
	}
	c := &conn{
		srv:        s,
		nc:         nc,
		br:         bufio.NewReaderSize(nc, readBufSize),
		out:        make(chan []byte, s.respQueue),
		writerDone: make(chan struct{}),
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.connsTotal.Inc()
	s.connsGauge.Add(1)
	return c, true
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.connsGauge.Add(-1)
	s.connWG.Done()
}

// Shutdown gracefully drains the server: listeners close (no new
// connections), every connection finishes its in-flight requests —
// pending batches execute and their responses are delivered — and the
// store's dirty lines are flushed. Connections still open when ctx
// expires are force-closed (their unread requests are dropped; the
// flush still runs). Returns the context error, the flush error, or
// nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	cs := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	// Kick readers blocked between frames: they observe the expired
	// read deadline, execute what they already accumulated, deliver the
	// responses, and exit.
	for _, c := range cs {
		c.nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		derr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return errors.Join(derr, s.st.Flush())
}

// conn is one client connection: a reader goroutine that parses frames
// and accumulates single ops into store batches, and a writer goroutine
// draining the bounded response queue.
//
// Buffer ownership on this path is explicit: request-frame payloads
// and read-destination arenas come from bufpool and return to it at the
// point nothing aliases them any more (the end of the handler, or the
// batch flush that consumes what the handler retained); response frames
// come from bufpool and are returned by writeLoop after hitting the
// socket. The reader goroutine owns every field below except out/werr.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	out        chan []byte
	writerDone chan struct{}
	werr       error // writeLoop-owned; reader never touches it

	// One homogeneous pending batch at a time: mixing kinds would
	// reorder a connection's read-after-write to the same line, so a
	// kind switch flushes first. reads doubles as the BATCH_READ op
	// scratch (the pending batch is always flushed first), writes as
	// the BATCH_WRITE scratch; both are trimmed back to batchSize after
	// an oversized batch frame so one huge batch does not pin its
	// high-water memory for the connection's lifetime.
	reads    []pcache.ReadOp
	readIDs  []uint64
	readT0   []time.Time
	writes   []pcache.WriteOp
	writeIDs []uint64
	writeT0  []time.Time

	// retained holds request-frame payloads pinned by pending single
	// writes (each op's Data aliases its frame); they go back to the
	// pool once the write batch executes.
	retained [][]byte
	// arenas back read destinations: Dsts are carved from pooled
	// chunks, and the chunks are Put once the responses holding copies
	// of the data have been built.
	arenas [][]byte
}

// arenaChunk is the default read-destination arena size — large enough
// that a full default batch of line-sized reads carves from one chunk.
const arenaChunk = 64 * 1024

// carve returns an n-byte read destination from the connection's
// current arena, growing by pooled chunks as needed. Earlier carvings
// are never moved (a fresh chunk is opened instead), so Dst slices stay
// valid until releaseArenas.
func (c *conn) carve(n int) []byte {
	if len(c.arenas) == 0 || len(c.arenas[len(c.arenas)-1])+n > cap(c.arenas[len(c.arenas)-1]) {
		sz := arenaChunk
		if n > sz {
			sz = n
		}
		c.arenas = append(c.arenas, bufpool.Get(sz)[:0])
	}
	a := c.arenas[len(c.arenas)-1]
	off := len(a)
	a = a[:off+n]
	c.arenas[len(c.arenas)-1] = a
	return a[off:len(a):len(a)]
}

// releaseArenas returns every arena chunk to the pool. Callers must
// have copied all live Dst data out first.
func (c *conn) releaseArenas() {
	for i, a := range c.arenas {
		bufpool.Put(a)
		c.arenas[i] = nil
	}
	c.arenas = c.arenas[:0]
}

// releaseRetained returns the request frames pinned by pending single
// writes. Call only after the batch holding their aliases executed.
func (c *conn) releaseRetained() {
	for i, b := range c.retained {
		bufpool.Put(b)
		c.retained[i] = nil
	}
	c.retained = c.retained[:0]
}

// trimOps resets s for reuse, clearing stale elements (so dropped
// buffers are not pinned through the backing array) and giving back the
// capacity an oversized batch grew: past max, the scratch shrinks to
// max instead of pinning its high-water mark forever.
func trimOps[T any](s []T, max int) []T {
	if cap(s) > max {
		return make([]T, 0, max)
	}
	clear(s[:cap(s)])
	return s[:0]
}

// serve is the connection's reader loop.
func (c *conn) serve() {
	defer func() {
		close(c.out)
		<-c.writerDone
		c.nc.Close()
		c.srv.removeConn(c)
	}()
	go c.writeLoop()
	for {
		// The pipe is idle (no buffered frames): flush what has
		// accumulated before blocking on the next frame, so a paused
		// pipeline never strands its tail.
		if (len(c.reads) > 0 || len(c.writes) > 0) && c.br.Buffered() == 0 {
			c.flushBatches()
		}
		f, err := readFramePooled(c.br)
		if err != nil {
			// Drain kick (read deadline) or a dead peer: either way the
			// already-received ops still execute and respond.
			c.flushBatches()
			return
		}
		c.srv.requests.Inc()
		c.srv.bytesIn.Add(uint64(frameHeader + frameFixed + len(f.payload)))
		if !c.handle(f) {
			// The handler is done with the frame; a pending single
			// write instead retains it (Data aliases the payload) and
			// flushBatches returns it after the batch executes.
			bufpool.Put(f.payload)
		}
		if len(c.reads) >= c.srv.batchSize || len(c.writes) >= c.srv.batchSize {
			c.flushBatches()
		}
	}
}

// writeLoop drains the response queue into the socket, flushing when
// the queue empties. After a write error it keeps draining (discarding)
// so the reader can never deadlock on a full queue, and closes the
// socket so the reader unblocks.
func (c *conn) writeLoop() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.nc, readBufSize)
	for b := range c.out {
		if c.werr != nil {
			bufpool.Put(b)
			continue
		}
		_, err := bw.Write(b)
		bufpool.Put(b)
		if err != nil {
			c.werr = err
			c.nc.Close()
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				c.werr = err
				c.nc.Close()
			}
		}
	}
	if c.werr == nil {
		bw.Flush()
	}
}

// respond builds one response frame in a pooled buffer and enqueues it
// (blocking when the queue is full — the backpressure point). The
// payload is copied, so the caller keeps ownership of it; the frame
// buffer's ownership passes to writeLoop, which returns it to the pool
// after the socket write.
func (c *conn) respond(op uint8, id uint64, status uint8, payload []byte, t0 time.Time) {
	b := bufpool.Get(frameHeader + frameFixed + 1 + len(payload))
	bePut32(b, uint32(frameFixed+1+len(payload)))
	b[4] = op
	bePut64(b[5:], id)
	b[13] = status
	copy(b[14:], payload)
	if status == stDeadline || status == stRecoveryInProgress {
		c.srv.deadlineAborts.Inc()
	}
	c.enqueue(b, t0)
}

// enqueue hands one fully built pooled response frame to writeLoop and
// records the request's latency.
func (c *conn) enqueue(b []byte, t0 time.Time) {
	c.srv.bytesOut.Add(uint64(len(b)))
	c.out <- b
	c.srv.reqSeconds.Observe(time.Since(t0))
}

// respondErr sends a non-OK response whose payload is the error text.
func (c *conn) respondErr(op uint8, id uint64, err error, t0 time.Time) {
	c.respond(op, id, statusOf(err), []byte(err.Error()), t0)
}

// handle dispatches one request frame. Single READ/WRITE frames without
// a deadline accumulate into the pending batch; everything else flushes
// the pending batch first (to keep per-connection ordering) and
// executes in place. It reports whether the frame's payload is retained
// beyond this call (a pending single write aliases it); if not, the
// caller returns the payload to the pool.
func (c *conn) handle(f frame) (retained bool) {
	t0 := time.Now()
	p := f.payload
	switch f.op {
	case opRead:
		if len(p) != 8+8+4 {
			c.respond(f.op, f.id, stBadRequest, []byte("bad READ frame"), t0)
			return false
		}
		deadline := be64(p[0:])
		addr := be64(p[8:])
		n := int(be32(p[16:]))
		if n <= 0 || n > maxReadLen {
			c.respond(f.op, f.id, stBadRequest, []byte(fmt.Sprintf("read length %d", n)), t0)
			return false
		}
		if deadline == 0 {
			if len(c.writes) > 0 {
				c.flushBatches()
			}
			c.reads = append(c.reads, pcache.ReadOp{Addr: addr, Dst: c.carve(n)})
			c.readIDs = append(c.readIDs, f.id)
			c.readT0 = append(c.readT0, t0)
			return false
		}
		c.flushBatches()
		ctx, cancel := deadlineCtx(context.Background(), deadline)
		out, err := c.srv.st.ReadCtx(ctx, addr, n)
		cancel()
		if err != nil {
			c.respondErr(f.op, f.id, err, t0)
			return false
		}
		c.respond(f.op, f.id, stOK, out, t0)

	case opWrite:
		if len(p) < 8+8 {
			c.respond(f.op, f.id, stBadRequest, []byte("bad WRITE frame"), t0)
			return false
		}
		deadline := be64(p[0:])
		addr := be64(p[8:])
		data := p[16:]
		if deadline == 0 {
			if len(c.reads) > 0 {
				c.flushBatches()
			}
			// data aliases the frame's pooled payload buffer — retained
			// (and returned to the pool) by the batch flush.
			c.writes = append(c.writes, pcache.WriteOp{Addr: addr, Data: data})
			c.writeIDs = append(c.writeIDs, f.id)
			c.writeT0 = append(c.writeT0, t0)
			c.retained = append(c.retained, p)
			return true
		}
		c.flushBatches()
		ctx, cancel := deadlineCtx(context.Background(), deadline)
		err := c.srv.st.WriteCtx(ctx, addr, data)
		cancel()
		if err != nil {
			c.respondErr(f.op, f.id, err, t0)
			return false
		}
		c.respond(f.op, f.id, stOK, nil, t0)

	case opBatchRead:
		c.flushBatches()
		c.handleBatchRead(f, t0)

	case opBatchWrite:
		c.flushBatches()
		c.handleBatchWrite(f, t0)

	case opFlush:
		if len(p) != 8 {
			c.respond(f.op, f.id, stBadRequest, []byte("bad FLUSH frame"), t0)
			return false
		}
		c.flushBatches()
		ctx, cancel := deadlineCtx(context.Background(), be64(p))
		err := c.srv.st.FlushCtx(ctx)
		cancel()
		if err != nil {
			c.respondErr(f.op, f.id, err, t0)
			return false
		}
		c.respond(f.op, f.id, stOK, nil, t0)

	case opStats:
		// Flush first so a pipelined client's own preceding ops are in
		// the counters it reads back.
		c.flushBatches()
		c.respond(f.op, f.id, stOK, encodeStats(c.srv.st.Stats()), t0)

	case opEpoch:
		if len(p) != 8 {
			c.respond(f.op, f.id, stBadRequest, []byte("bad EPOCH frame"), t0)
			return false
		}
		if c.srv.epochOf == nil {
			c.respond(f.op, f.id, stUnsupported, []byte("no epoch oracle"), t0)
			return false
		}
		// Epoch ordering matters to the oracle: pending writes must
		// land before the epoch is sampled.
		c.flushBatches()
		var buf [8]byte
		bePut64(buf[:], c.srv.epochOf(be64(p)))
		c.respond(f.op, f.id, stOK, buf[:], t0)

	default:
		c.respond(f.op, f.id, stBadRequest, []byte(fmt.Sprintf("unknown opcode %d", f.op)), t0)
	}
	return false
}

// handleBatchRead serves one BATCH_READ frame through the store's batch
// path and answers per-op outcomes in a single response frame. A
// nonzero deadline field bounds the whole batch: it maps to a context
// on ReadBatchCtx, ops the deadline kills answer stDeadline (or
// stRecoveryInProgress) individually, and those aborts are counted in
// net_deadline_aborts_total.
func (c *conn) handleBatchRead(f frame, t0 time.Time) {
	p := f.payload
	if len(p) < 8+4 {
		c.respond(f.op, f.id, stBadRequest, []byte("bad BATCH_READ frame"), t0)
		return
	}
	deadline := be64(p[0:])
	count := int(be32(p[8:]))
	if count <= 0 || count > maxBatchOps || len(p) != 12+count*12 {
		c.respond(f.op, f.id, stBadRequest, []byte("bad BATCH_READ geometry"), t0)
		return
	}
	ops := c.reads[:0]
	total := 0
	for i := 0; i < count; i++ {
		addr := be64(p[12+i*12:])
		n := int(be32(p[12+i*12+8:]))
		if n <= 0 || n > maxReadLen || total+n > maxFrame/2 {
			c.reads = trimOps(ops, c.srv.batchSize)
			c.releaseArenas()
			c.respond(f.op, f.id, stBadRequest, []byte("bad BATCH_READ op size"), t0)
			return
		}
		total += n
		ops = append(ops, pcache.ReadOp{Addr: addr, Dst: c.carve(n)})
	}
	bt0 := time.Now()
	if deadline > 0 {
		ctx, cancel := deadlineCtx(context.Background(), deadline)
		c.srv.st.ReadBatchCtx(ctx, ops)
		cancel()
	} else {
		c.srv.st.ReadBatch(ops)
	}
	c.observeBatch(len(ops), bt0)
	okTotal := 0
	for i := range ops {
		if ops[i].Err == nil {
			okTotal += len(ops[i].Dst)
		}
	}
	b := bufpool.Get(frameHeader + frameFixed + 1 + 4 + count*5 + okTotal)[:frameHeader]
	b = append(b, f.op)
	b = be64Append(b, f.id)
	b = append(b, stOK)
	b = be32Append(b, uint32(count))
	aborts := uint64(0)
	for i := range ops {
		st := statusOf(ops[i].Err)
		if st == stDeadline || st == stRecoveryInProgress {
			aborts++
		}
		b = append(b, st)
		if st == stOK {
			b = be32Append(b, uint32(len(ops[i].Dst)))
			b = append(b, ops[i].Dst...)
		} else {
			b = be32Append(b, 0)
		}
	}
	bePut32(b, uint32(len(b)-frameHeader))
	if aborts > 0 {
		c.srv.deadlineAborts.Add(aborts)
	}
	c.reads = trimOps(ops, c.srv.batchSize)
	c.releaseArenas()
	c.enqueue(b, t0)
}

// handleBatchWrite serves one BATCH_WRITE frame through the store's
// batch path and answers per-op status codes. The deadline contract
// matches handleBatchRead.
func (c *conn) handleBatchWrite(f frame, t0 time.Time) {
	p := f.payload
	if len(p) < 8+4 {
		c.respond(f.op, f.id, stBadRequest, []byte("bad BATCH_WRITE frame"), t0)
		return
	}
	deadline := be64(p[0:])
	count := int(be32(p[8:]))
	if count <= 0 || count > maxBatchOps {
		c.respond(f.op, f.id, stBadRequest, []byte("bad BATCH_WRITE geometry"), t0)
		return
	}
	ops := c.writes[:0]
	off := 12
	bad := func(msg string) {
		c.writes = trimOps(ops, c.srv.batchSize)
		c.respond(f.op, f.id, stBadRequest, []byte(msg), t0)
	}
	for i := 0; i < count; i++ {
		if off+12 > len(p) {
			bad("truncated BATCH_WRITE")
			return
		}
		addr := be64(p[off:])
		n := int(be32(p[off+8:]))
		off += 12
		if n < 0 || off+n > len(p) {
			bad("truncated BATCH_WRITE op")
			return
		}
		ops = append(ops, pcache.WriteOp{Addr: addr, Data: p[off : off+n]})
		off += n
	}
	if off != len(p) {
		bad("trailing BATCH_WRITE bytes")
		return
	}
	bt0 := time.Now()
	if deadline > 0 {
		ctx, cancel := deadlineCtx(context.Background(), deadline)
		c.srv.st.WriteBatchCtx(ctx, ops)
		cancel()
	} else {
		c.srv.st.WriteBatch(ops)
	}
	c.observeBatch(len(ops), bt0)
	b := bufpool.Get(frameHeader + frameFixed + 1 + 4 + count)
	bePut32(b, uint32(frameFixed+1+4+count))
	b[4] = f.op
	bePut64(b[5:], f.id)
	b[13] = stOK
	bePut32(b[14:], uint32(count))
	aborts := uint64(0)
	for i := range ops {
		st := statusOf(ops[i].Err)
		if st == stDeadline || st == stRecoveryInProgress {
			aborts++
		}
		b[18+i] = st
	}
	if aborts > 0 {
		c.srv.deadlineAborts.Add(aborts)
	}
	c.writes = trimOps(ops, c.srv.batchSize)
	c.enqueue(b, t0)
}

// flushBatches executes whichever pending batch has accumulated and
// responds to every op in it. At most one kind is pending at a time.
// After the flush the pooled buffers backing the batch go home: read
// Dst arenas once the responses carry copies of the data, retained
// write frames once WriteBatch has consumed them; the op scratch slices
// trim back to batchSize so an oversized burst does not pin its
// high-water memory.
func (c *conn) flushBatches() {
	max := c.srv.batchSize
	if len(c.reads) > 0 {
		t0 := time.Now()
		c.srv.st.ReadBatch(c.reads)
		c.observeBatch(len(c.reads), t0)
		for i := range c.reads {
			op := &c.reads[i]
			if op.Err != nil {
				c.respondErr(opRead, c.readIDs[i], op.Err, c.readT0[i])
			} else {
				c.respond(opRead, c.readIDs[i], stOK, op.Dst, c.readT0[i])
			}
		}
		c.reads = trimOps(c.reads, max)
		c.readIDs = trimOps(c.readIDs, max)
		c.readT0 = trimOps(c.readT0, max)
		c.releaseArenas()
	}
	if len(c.writes) > 0 {
		t0 := time.Now()
		c.srv.st.WriteBatch(c.writes)
		c.observeBatch(len(c.writes), t0)
		for i := range c.writes {
			op := &c.writes[i]
			if op.Err != nil {
				c.respondErr(opWrite, c.writeIDs[i], op.Err, c.writeT0[i])
			} else {
				c.respond(opWrite, c.writeIDs[i], stOK, nil, c.writeT0[i])
			}
		}
		c.writes = trimOps(c.writes, max)
		c.writeIDs = trimOps(c.writeIDs, max)
		c.writeT0 = trimOps(c.writeT0, max)
		c.releaseRetained()
	}
}

func (c *conn) observeBatch(ops int, t0 time.Time) {
	c.srv.batches.Inc()
	c.srv.batchOps.Add(uint64(ops))
	c.srv.batchSeconds.Observe(time.Since(t0))
}
