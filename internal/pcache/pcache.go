// Package pcache assembles the 2D-coded arrays into a complete,
// functional, set-associative cache: real data bytes live in
// twod-protected data sub-arrays, and the tag/state store lives in
// twod-protected tag sub-arrays — "cache tag sub-arrays are handled
// identically" (§4). The cache serves loads and stores against a
// backing memory, write-back write-allocate, while arbitrary bit
// errors injected into any of its arrays are detected by the
// horizontal codes and repaired by 2D recovery, transparently to the
// caller.
//
// The cache is physically banked, as real SRAM macros are: the sets
// are partitioned across independently locked bank pairs (one data
// sub-array plus one tag sub-array each), so traffic to different
// banks never contends and clean reads within a bank proceed under a
// shared lock (twod.Array.TryRead). All of Read, Write, Flush, fault
// injection (WithBankLock), scrubbing (ScrubBank) and degradation
// (Decommission) are safe to call from many goroutines concurrently.
package pcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"twodcache/internal/ecc"
	"twodcache/internal/obs"
	"twodcache/internal/twod"
)

// Config sizes the protected cache.
type Config struct {
	// Sets and Ways define the organisation; LineBytes the block size
	// (must be a multiple of 8, power of two).
	Sets, Ways, LineBytes int
	// VerticalGroups is V for every sub-array (default 32).
	VerticalGroups int
	// SECDEDHorizontal selects in-line single-bit correction (yield
	// configuration) instead of EDC8 detection-only horizontal codes.
	SECDEDHorizontal bool
	// Banks is the number of independently locked bank pairs the sets
	// are partitioned into (a power of two ≤ Sets). Zero selects
	// min(8, Sets). Each bank is its own 2D protection domain, like the
	// physical sub-arrays of §4.
	Banks int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("pcache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("pcache: ways %d", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes%8 != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("pcache: line bytes %d must be a power-of-two multiple of 8", c.LineBytes)
	}
	if c.VerticalGroups < 0 {
		return fmt.Errorf("pcache: negative vertical groups")
	}
	if c.Banks != 0 {
		if c.Banks < 0 || c.Banks&(c.Banks-1) != 0 || c.Banks > c.Sets {
			return fmt.Errorf("pcache: banks %d must be a power of two ≤ sets %d", c.Banks, c.Sets)
		}
	}
	return nil
}

// effectiveBanks resolves the bank count default.
func (c Config) effectiveBanks() int {
	if c.Banks != 0 {
		return c.Banks
	}
	if c.Sets < 8 {
		return c.Sets
	}
	return 8
}

// Backing is the next level of the hierarchy: line-granular load/store.
// Implementations must be safe for concurrent use (MapBacking is).
type Backing interface {
	// ReadLine returns LineBytes bytes at the line-aligned address.
	ReadLine(addr uint64) []byte
	// WriteLine stores LineBytes bytes at the line-aligned address. The
	// slice is a cache-owned scratch buffer reused across calls:
	// implementations must copy it, never retain it.
	WriteLine(addr uint64, data []byte)
}

// MapBacking is a simple in-memory Backing, safe for concurrent use.
type MapBacking struct {
	lineBytes int
	mu        sync.RWMutex
	m         map[uint64][]byte
}

// NewMapBacking builds an empty backing store.
func NewMapBacking(lineBytes int) *MapBacking {
	return &MapBacking{lineBytes: lineBytes, m: map[uint64][]byte{}}
}

// ReadLine returns the stored line (zeroes if never written).
func (b *MapBacking) ReadLine(addr uint64) []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]byte, b.lineBytes)
	if d, ok := b.m[addr]; ok {
		copy(out, d)
	}
	return out
}

// WriteLine stores a line.
func (b *MapBacking) WriteLine(addr uint64, data []byte) {
	d := make([]byte, b.lineBytes)
	copy(d, data)
	b.mu.Lock()
	b.m[addr] = d
	b.mu.Unlock()
}

// ErrUncorrectable reports an error footprint beyond the 2D coverage —
// the software-visible machine-check. The affected line's contents are
// untrustworthy. It is always returned wrapped in an
// *UncorrectableError carrying the fault location; match with
// errors.Is(err, ErrUncorrectable) or errors.As.
var ErrUncorrectable = errors.New("pcache: uncorrectable error (exceeds 2D coverage)")

// Array names for UncorrectableError.Array.
const (
	ArrayData = "data"
	ArrayTags = "tags"
)

// UncorrectableError is the typed machine-check: it locates the
// detected-but-uncorrectable error so a recovery engine can escalate
// (retry, word-level repair, full 2D recovery, refetch+decommission)
// against exactly the affected resource. It wraps ErrUncorrectable, so
// errors.Is(err, ErrUncorrectable) holds.
type UncorrectableError struct {
	// Array is which protected store tripped: ArrayData or ArrayTags.
	Array string
	// Set and Way locate the cache line whose access failed (for tag
	// errors, Way is the tag word that failed to read).
	Set, Way int
}

// Error implements error.
func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("pcache: uncorrectable %s error at set %d way %d (exceeds 2D coverage)",
		e.Array, e.Set, e.Way)
}

// Unwrap makes errors.Is(err, ErrUncorrectable) work.
func (e *UncorrectableError) Unwrap() error { return ErrUncorrectable }

// Stats counts cache-level events. A Stats value returned by
// Cache.Stats is coherent: Hits ≤ Accesses and Hits+Misses ≤ Accesses
// hold even while traffic races the snapshot.
type Stats struct {
	// Accesses counts Read/Write operations issued.
	Accesses uint64
	// Hits and Misses count accesses by outcome.
	Hits, Misses uint64
	// Writebacks counts dirty lines written to the backing store.
	Writebacks uint64
	// ErrorsRecovered counts reads/writes that needed 2D recovery or
	// in-line correction anywhere in the arrays.
	ErrorsRecovered uint64
	// Uncorrectable counts machine-check events (ErrUncorrectable).
	Uncorrectable uint64
	// Bypassed counts accesses served directly from the backing store
	// because every way of the target set is decommissioned.
	Bypassed uint64
	// DirtyLinesLost counts decommissioned lines whose unflushed dirty
	// data was discarded (the detected-but-unrecoverable outcome).
	DirtyLinesLost uint64
}

// WayRef names one cache way globally.
type WayRef struct {
	Set, Way int
}

// bank is one independently locked pair of protected sub-arrays plus
// the per-set replacement and decommission state it owns.
type bank struct {
	index int
	mu    sync.RWMutex
	data  *twod.Array // rows = setsPerBank*Ways, wordsPerRow = lineBytes/8
	tags  *twod.Array // rows = setsPerBank, wordsPerRow = Ways

	// lru stamps and the global stamp counter are atomics so the
	// shared-lock read path can touch them.
	lru   []atomic.Uint64 // [localSet*Ways+way]
	stamp atomic.Uint64

	// Fast-path counters live per bank so parallel clean hits do not
	// serialise on one shared cache line; Stats()/Accesses() sum them.
	_        [48]byte // keep the hot counters off the lru/stamp line
	hits     atomic.Uint64
	accesses atomic.Uint64

	// disabled marks decommissioned ways; mutated only under mu held
	// exclusively, read under either lock mode.
	disabled []bool

	// lineBuf is the bank's line-sized staging buffer for the exclusive
	// slow path (read-modify-write, fills, writebacks, flushes); reusing
	// it keeps the hit path allocation-free. Only touched under mu held
	// exclusively.
	lineBuf []byte
}

// Cache is the protected cache: a banked array of 2D-coded data and
// tag sub-arrays, safe for concurrent use.
type Cache struct {
	cfg         Config
	backing     Backing
	banks       []*bank
	setsPerBank int

	lineShift uint
	setMask   uint64
	words     int // data words per line

	disabledWays atomic.Int64
	lossEpochs   []atomic.Uint64 // per set: bumped whenever the set's content may revert to backing

	misses, writebacks       atomic.Uint64
	recovered, uncorrectable atomic.Uint64
	bypassed, dirtyLost      atomic.Uint64

	// sink, when set, receives structured events from the slow paths
	// (uncorrectable detections). Stored behind an atomic pointer so
	// installation races no access and a nil sink costs one load.
	sink atomic.Pointer[obs.Sink]
}

// tag word layout (64 bits): [0] valid, [1] dirty, [2..63] tag bits.
const (
	tagValidBit = uint64(1) << 0
	tagDirtyBit = uint64(1) << 1
	tagShift    = 2
)

// New builds an empty protected cache over the backing store.
func New(cfg Config, backing Backing) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backing == nil {
		return nil, fmt.Errorf("pcache: nil backing store")
	}
	v := cfg.VerticalGroups
	if v == 0 {
		v = 32
	}
	mkArray := func(rows, wordsPerRow int) (*twod.Array, error) {
		var h ecc.HorizontalCode
		var err error
		if cfg.SECDEDHorizontal {
			h, err = ecc.NewSECDED(64)
		} else {
			h, err = ecc.NewEDC(64, 8)
		}
		if err != nil {
			return nil, err
		}
		groups := v
		if groups > rows {
			groups = rows
		}
		return twod.NewArray(twod.Config{
			Rows:           rows,
			WordsPerRow:    wordsPerRow,
			Horizontal:     h,
			VerticalGroups: groups,
		})
	}
	nBanks := cfg.effectiveBanks()
	spb := cfg.Sets / nBanks
	c := &Cache{
		cfg:         cfg,
		backing:     backing,
		banks:       make([]*bank, nBanks),
		setsPerBank: spb,
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:     uint64(cfg.Sets - 1),
		words:       cfg.LineBytes / 8,
		lossEpochs:  make([]atomic.Uint64, cfg.Sets),
	}
	for i := range c.banks {
		data, err := mkArray(spb*cfg.Ways, cfg.LineBytes/8)
		if err != nil {
			return nil, err
		}
		tags, err := mkArray(spb, cfg.Ways)
		if err != nil {
			return nil, err
		}
		c.banks[i] = &bank{
			index:    i,
			data:     data,
			tags:     tags,
			lru:      make([]atomic.Uint64, spb*cfg.Ways),
			disabled: make([]bool, spb*cfg.Ways),
			lineBuf:  make([]byte, cfg.LineBytes),
		}
	}
	return c, nil
}

// MustNew panics on error.
func MustNew(cfg Config, backing Backing) *Cache {
	c, err := New(cfg, backing)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a coherent snapshot of the counters. Outcome counters
// are loaded before the per-bank access counters: every hit/miss
// increment happens strictly after its access increment, so loading the
// dependents first guarantees Hits+Misses ≤ Accesses under concurrent
// traffic. The clamps below are backstops, not the mechanism.
func (c *Cache) Stats() Stats {
	var hits, accesses uint64
	for _, b := range c.banks {
		hits += b.hits.Load()
	}
	misses := c.misses.Load()
	st := Stats{
		Writebacks:      c.writebacks.Load(),
		ErrorsRecovered: c.recovered.Load(),
		Uncorrectable:   c.uncorrectable.Load(),
		Bypassed:        c.bypassed.Load(),
		DirtyLinesLost:  c.dirtyLost.Load(),
	}
	for _, b := range c.banks {
		accesses += b.accesses.Load()
	}
	if hits > accesses {
		hits = accesses
	}
	if hits+misses > accesses {
		misses = accesses - hits
	}
	st.Accesses, st.Hits, st.Misses = accesses, hits, misses
	return st
}

// SetEventSink installs (or, with nil, removes) the structured event
// sink. The cache emits UncorrectableDetected from its slow paths;
// clean hits never touch the sink. Safe to call concurrently with
// traffic.
func (c *Cache) SetEventSink(s obs.Sink) {
	if s == nil {
		c.sink.Store(nil)
		return
	}
	c.sink.Store(&s)
}

// Metric names registered by RegisterMetrics.
const (
	MetricHits         = "pcache_hits_total"
	MetricMisses       = "pcache_misses_total"
	MetricAccesses     = "pcache_accesses_total"
	MetricWritebacks   = "pcache_writebacks_total"
	MetricRecovered    = "pcache_errors_recovered_total"
	MetricUncorrect    = "pcache_uncorrectable_total"
	MetricBypassed     = "pcache_bypassed_total"
	MetricDirtyLost    = "pcache_dirty_lines_lost_total"
	MetricDisabledWays = "pcache_disabled_ways"
)

// RegisterMetrics wires the cache's counters into a registry. Dependent
// counters register — and are therefore snapshotted — before their
// upper bounds (hits before accesses, per bank and in aggregate), and
// ClampLE invariants back them up, so a registry snapshot can never
// show hits exceeding accesses. Aggregated sub-array activity (reads,
// recoveries, uncorrectable words across every bank's data and tag
// arrays) is exported under pcache_array_*.
func (c *Cache) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc(MetricHits, "accesses served by a resident line", func() uint64 {
		var n uint64
		for _, b := range c.banks {
			n += b.hits.Load()
		}
		return n
	})
	r.CounterFunc(MetricMisses, "accesses that required a line fill", c.misses.Load)
	r.CounterFunc(MetricAccesses, "Read/Write operations issued", c.Accesses)
	r.ClampLE(MetricHits, MetricAccesses)
	r.ClampLE(MetricMisses, MetricAccesses)
	r.CounterFunc(MetricWritebacks, "dirty lines written back to the backing store", c.writebacks.Load)
	r.CounterFunc(MetricRecovered, "accesses that needed 2D recovery or in-line correction", c.recovered.Load)
	r.CounterFunc(MetricUncorrect, "machine-check events (footprint beyond 2D coverage)", c.uncorrectable.Load)
	r.CounterFunc(MetricBypassed, "accesses served from backing because the set is decommissioned", c.bypassed.Load)
	r.CounterFunc(MetricDirtyLost, "decommissioned lines whose unflushed dirty data was discarded", c.dirtyLost.Load)
	r.GaugeFunc(MetricDisabledWays, "ways currently decommissioned", c.disabledWays.Load)
	for i, b := range c.banks {
		b := b
		hitsName := fmt.Sprintf("pcache_bank%d_hits_total", i)
		accName := fmt.Sprintf("pcache_bank%d_accesses_total", i)
		r.CounterFunc(hitsName, fmt.Sprintf("hits served by bank %d", i), b.hits.Load)
		r.CounterFunc(accName, fmt.Sprintf("accesses routed to bank %d", i), b.accesses.Load)
		r.ClampLE(hitsName, accName)
	}
	sumArrays := func(sel func(twod.Stats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, b := range c.banks {
				n += sel(b.data.Stats()) + sel(b.tags.Stats())
			}
			return n
		}
	}
	r.CounterFunc("pcache_array_reads_total", "word reads across every protected sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.Reads }))
	r.CounterFunc("pcache_array_writes_total", "word writes across every protected sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.Writes }))
	r.CounterFunc("pcache_array_inline_corrections_total", "SECDED in-line corrections across every sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.InlineCorrections }))
	r.CounterFunc("pcache_array_recoveries_total", "2D recovery invocations across every sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.Recoveries }))
	r.CounterFunc("pcache_array_recovered_words_total", "words repaired by 2D recovery across every sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.RecoveredWords }))
	r.CounterFunc("pcache_array_uncorrectable_total", "uncorrectable word reads across every sub-array",
		sumArrays(func(s twod.Stats) uint64 { return s.Uncorrectable }))
}

// Accesses returns the number of Read/Write operations issued so far —
// the traffic signal a traffic-aware scrubber keys off.
func (c *Cache) Accesses() uint64 {
	var n uint64
	for _, b := range c.banks {
		n += b.accesses.Load()
	}
	return n
}

// NumBanks returns the number of independently locked banks.
func (c *Cache) NumBanks() int { return len(c.banks) }

// SetsPerBank returns how many sets each bank holds.
func (c *Cache) SetsPerBank() int { return c.setsPerBank }

// BankOf returns the bank index serving the given global set — the
// granularity at which repairs serialise (one bank lock, one in-flight
// recovery) and at which the resilience layer keys its circuit
// breakers and single-flight coalescing.
func (c *Cache) BankOf(set int) int { return set / c.setsPerBank }

// BankArrays returns bank i's data and tag arrays without any locking,
// for single-threaded inspection and fault injection.
func (c *Cache) BankArrays(i int) (data, tags *twod.Array) {
	return c.banks[i].data, c.banks[i].tags
}

// WithBankLock runs fn with exclusive access to bank i's arrays, so
// fault injection and inspection can race safely against concurrent
// traffic — upsets strike mid-stream, but never mid-word.
func (c *Cache) WithBankLock(i int, fn func(data, tags *twod.Array)) {
	b := c.banks[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b.data, b.tags)
}

// LossEpoch returns the set's loss epoch: it advances every time the
// set's content may have reverted to the backing store (repair after a
// machine check, decommission). External correctness checkers compare
// epochs around an access to tell accounted data loss from silent
// corruption.
func (c *Cache) LossEpoch(set int) uint64 { return c.lossEpochs[set].Load() }

// DisabledWays returns how many ways are currently decommissioned.
func (c *Cache) DisabledWays() int { return int(c.disabledWays.Load()) }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }
func (c *Cache) setOf(line uint64) int       { return int(line & c.setMask) }
func (c *Cache) tagOf(line uint64) uint64    { return line >> bits.TrailingZeros64(c.setMask+1) }

// bankOf maps a global set to (bank, localSet).
func (c *Cache) bankOf(set int) (*bank, int) {
	return c.banks[set/c.setsPerBank], set % c.setsPerBank
}

func (b *bank) globalSet(spb, ls int) int { return b.index*spb + ls }

// noteSt records an access outcome, wrapping uncorrectable ones with
// their location.
func (c *Cache) noteSt(st twod.ReadStatus, array string, set, way int) error {
	if st == twod.ReadRecovered || st == twod.ReadCorrectedInline {
		c.recovered.Add(1)
	}
	if st == twod.ReadUncorrectable {
		c.uncorrectable.Add(1)
		if p := c.sink.Load(); p != nil {
			(*p).UncorrectableDetected(array, set, way)
		}
		return &UncorrectableError{Array: array, Set: set, Way: way}
	}
	return nil
}

// --- locked per-bank primitives (b.mu held exclusively) ----------------

func (c *Cache) readTagLocked(b *bank, ls, way int) (uint64, error) {
	v, st := b.tags.ReadUint64(ls, way)
	if err := c.noteSt(st, ArrayTags, b.globalSet(c.setsPerBank, ls), way); err != nil {
		return 0, err
	}
	return v, nil
}

func (c *Cache) writeTagLocked(b *bank, ls, way int, v uint64) error {
	st := b.tags.WriteUint64(ls, way, v)
	return c.noteSt(st, ArrayTags, b.globalSet(c.setsPerBank, ls), way)
}

// lookupLocked returns the hitting way, or -1.
func (c *Cache) lookupLocked(b *bank, ls int, tag uint64) (int, error) {
	for way := 0; way < c.cfg.Ways; way++ {
		if b.disabled[ls*c.cfg.Ways+way] {
			continue
		}
		t, err := c.readTagLocked(b, ls, way)
		if err != nil {
			return -1, err
		}
		if t&tagValidBit != 0 && t>>tagShift == tag {
			return way, nil
		}
	}
	return -1, nil
}

// victimLocked picks an invalid or LRU way among the enabled ways; ok
// is false when the whole set is decommissioned.
func (c *Cache) victimLocked(b *bank, ls int) (way int, ok bool, err error) {
	best, bestStamp, found := 0, ^uint64(0), false
	for w := 0; w < c.cfg.Ways; w++ {
		idx := ls*c.cfg.Ways + w
		if b.disabled[idx] {
			continue
		}
		t, err := c.readTagLocked(b, ls, w)
		if err != nil {
			return 0, true, err
		}
		if t&tagValidBit == 0 {
			return w, true, nil
		}
		if s := b.lru[idx].Load(); !found || s < bestStamp {
			best, bestStamp, found = w, s, true
		}
	}
	if !found {
		return 0, false, nil
	}
	return best, true, nil
}

// dataRow maps (localSet, way) to the bank's data array row.
func (c *Cache) dataRow(ls, way int) int { return ls*c.cfg.Ways + way }

// readLineLocked fetches a full line from the bank's data array into
// dst (length LineBytes; typically the bank's lineBuf scratch).
func (c *Cache) readLineLocked(b *bank, ls, way int, dst []byte) error {
	row := c.dataRow(ls, way)
	set := b.globalSet(c.setsPerBank, ls)
	for w := 0; w < c.words; w++ {
		v, st := b.data.ReadUint64(row, w)
		if err := c.noteSt(st, ArrayData, set, way); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(dst[w*8:], v)
	}
	return nil
}

// writeLineLocked stores a full line into the bank's data array.
func (c *Cache) writeLineLocked(b *bank, ls, way int, data []byte) error {
	row := c.dataRow(ls, way)
	set := b.globalSet(c.setsPerBank, ls)
	for w := 0; w < c.words; w++ {
		st := b.data.WriteUint64(row, w, binary.LittleEndian.Uint64(data[w*8:]))
		if err := c.noteSt(st, ArrayData, set, way); err != nil {
			return err
		}
	}
	return nil
}

// fillLocked brings the line into the set, evicting as needed; ok is
// false when every way is decommissioned (caller must bypass).
func (c *Cache) fillLocked(b *bank, ls int, line uint64) (way int, ok bool, err error) {
	way, ok, err = c.victimLocked(b, ls)
	if err != nil || !ok {
		return 0, ok, err
	}
	old, err := c.readTagLocked(b, ls, way)
	if err != nil {
		return 0, true, err
	}
	if old&tagValidBit != 0 && old&tagDirtyBit != 0 {
		set := b.globalSet(c.setsPerBank, ls)
		oldLine := old>>tagShift<<bits.TrailingZeros64(c.setMask+1) | uint64(set)
		if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
			return 0, true, err
		}
		c.backing.WriteLine(oldLine<<c.lineShift, b.lineBuf)
		c.writebacks.Add(1)
	}
	if old&tagValidBit != 0 {
		// Invalidate the victim's tag BEFORE overwriting its line.
		// writeLineLocked can abort part-way (overwriting a word with
		// unrepairable latent damage stores the new value but reports
		// uncorrectable), leaving a torn mix of old and new words that
		// each check clean. Behind the stale valid(+dirty) tag, a later
		// eviction would write that torn line back to the OLD address
		// with no loss-epoch bump — silent corruption of the backing
		// store. Invalidated first, an aborted fill leaves only an
		// empty way; the old line's next reader refetches from backing,
		// which the writeback above has made current. Even if this tag
		// write itself reports uncorrectable, the zero value has been
		// stored raw, so the way still reads as invalid.
		if err := c.writeTagLocked(b, ls, way, 0); err != nil {
			return 0, true, err
		}
	}
	if err := c.writeLineLocked(b, ls, way, c.backing.ReadLine(line<<c.lineShift)); err != nil {
		return 0, true, err
	}
	if err := c.writeTagLocked(b, ls, way, tagValidBit|c.tagOf(line)<<tagShift); err != nil {
		return 0, true, err
	}
	return way, true, nil
}

// touch updates the LRU stamp (atomic: callable under either lock mode).
func (b *bank) touch(ls, way, ways int) {
	b.lru[ls*ways+way].Store(b.stamp.Add(1))
}

// --- fast path ---------------------------------------------------------

// fastReadInto serves a clean hit under the bank's shared lock: every
// tag word scanned and every data word touched must check clean via
// TryReadUint64; anything else (miss, dirty word, disabled set) falls
// back to the exclusive slow path (returns false). Only the words
// overlapping the request are read — the sub-array read-out of a real
// bank — so a clean hit costs O(request), allocates nothing, and many
// readers proceed in parallel.
func (c *Cache) fastReadInto(b *bank, ls int, line, addr uint64, dst []byte) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	tag := c.tagOf(line)
	n := len(dst)
	for way := 0; way < c.cfg.Ways; way++ {
		if b.disabled[ls*c.cfg.Ways+way] {
			continue
		}
		t, ok := b.tags.TryReadUint64(ls, way)
		if !ok {
			return false // tag word needs repair: escalate
		}
		if t&tagValidBit == 0 || t>>tagShift != tag {
			continue
		}
		off := int(addr) & (c.cfg.LineBytes - 1)
		row := c.dataRow(ls, way)
		for w := off / 8; w <= (off+n-1)/8; w++ {
			v, ok := b.data.TryReadUint64(row, w)
			if !ok {
				return false // data word needs repair: escalate
			}
			for i := 0; i < 8; i++ {
				pos := w*8 + i
				if pos >= off && pos < off+n {
					dst[pos-off] = byte(v >> (8 * uint(i)))
				}
			}
		}
		b.hits.Add(1)
		b.touch(ls, way, c.cfg.Ways)
		return true
	}
	return false // miss: the fill needs the exclusive path
}

// --- public access API --------------------------------------------------

// Read returns n bytes at addr (must not cross a line boundary). An
// error satisfying errors.Is(err, ErrUncorrectable) means the 2D
// coverage was exceeded (machine check); errors.As to
// *UncorrectableError locates it. Safe for concurrent use.
func (c *Cache) Read(addr uint64, n int) ([]byte, error) {
	if err := c.checkSpan(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := c.ReadInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst with len(dst) bytes at addr (must not cross a line
// boundary) — the allocation-free variant of Read: a clean hit performs
// zero heap allocations. Safe for concurrent use.
func (c *Cache) ReadInto(addr uint64, dst []byte) error {
	n := len(dst)
	if err := c.checkSpan(addr, n); err != nil {
		return err
	}
	line := c.lineAddr(addr)
	set := c.setOf(line)
	b, ls := c.bankOf(set)
	b.accesses.Add(1)
	if c.fastReadInto(b, ls, line, addr, dst) {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	way, err := c.lookupLocked(b, ls, c.tagOf(line))
	if err != nil {
		return err
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	if way >= 0 {
		b.hits.Add(1)
	} else {
		c.misses.Add(1)
		var ok bool
		way, ok, err = c.fillLocked(b, ls, line)
		if err != nil {
			return err
		}
		if !ok {
			// Every way decommissioned: serve straight from backing —
			// the cache got smaller, not broken.
			c.bypassed.Add(1)
			buf := c.backing.ReadLine(line << c.lineShift)
			copy(dst, buf[off:off+n])
			return nil
		}
	}
	b.touch(ls, way, c.cfg.Ways)
	if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
		return err
	}
	copy(dst, b.lineBuf[off:off+n])
	return nil
}

// Write stores bytes at addr (must not cross a line boundary),
// write-back: the line is marked dirty in the protected tag store.
// Safe for concurrent use.
func (c *Cache) Write(addr uint64, data []byte) error {
	if err := c.checkSpan(addr, len(data)); err != nil {
		return err
	}
	line := c.lineAddr(addr)
	set := c.setOf(line)
	b, ls := c.bankOf(set)
	b.accesses.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	way, err := c.lookupLocked(b, ls, c.tagOf(line))
	if err != nil {
		return err
	}
	if way >= 0 {
		b.hits.Add(1)
	} else {
		c.misses.Add(1)
		var ok bool
		way, ok, err = c.fillLocked(b, ls, line)
		if err != nil {
			return err
		}
		if !ok {
			// Decommissioned set: write through to backing.
			c.bypassed.Add(1)
			buf := c.backing.ReadLine(line << c.lineShift)
			off := int(addr) & (c.cfg.LineBytes - 1)
			copy(buf[off:], data)
			c.backing.WriteLine(line<<c.lineShift, buf)
			return nil
		}
	}
	b.touch(ls, way, c.cfg.Ways)
	if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
		return err
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	copy(b.lineBuf[off:], data)
	if err := c.writeLineLocked(b, ls, way, b.lineBuf); err != nil {
		return err
	}
	return c.writeTagLocked(b, ls, way, tagValidBit|tagDirtyBit|c.tagOf(line)<<tagShift)
}

// Flush writes every dirty line back to the backing store. Safe for
// concurrent use (each bank is flushed under its exclusive lock).
func (c *Cache) Flush() error {
	for _, b := range c.banks {
		if err := c.flushBank(b); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cache) flushBank(b *bank) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ls := 0; ls < c.setsPerBank; ls++ {
		set := b.globalSet(c.setsPerBank, ls)
		for way := 0; way < c.cfg.Ways; way++ {
			if b.disabled[ls*c.cfg.Ways+way] {
				continue
			}
			t, err := c.readTagLocked(b, ls, way)
			if err != nil {
				return err
			}
			if t&tagValidBit != 0 && t&tagDirtyBit != 0 {
				line := t>>tagShift<<bits.TrailingZeros64(c.setMask+1) | uint64(set)
				if err := c.readLineLocked(b, ls, way, b.lineBuf); err != nil {
					return err
				}
				c.backing.WriteLine(line<<c.lineShift, b.lineBuf)
				if err := c.writeTagLocked(b, ls, way, t&^tagDirtyBit); err != nil {
					return err
				}
				c.writebacks.Add(1)
			}
		}
	}
	return nil
}

// --- repair, degradation, scrubbing -------------------------------------

// Repair recovers from an uncorrectable error the way an OS handles a
// cache machine check: every line in the address's set is invalidated
// and its storage force-cleared (unflushed dirty contents of that set
// are lost — the detected-but-uncorrectable outcome). The set's loss
// epoch advances.
func (c *Cache) Repair(addr uint64) {
	line := c.lineAddr(addr)
	set := c.setOf(line)
	b, ls := c.bankOf(set)
	b.mu.Lock()
	defer b.mu.Unlock()
	// Bump-before-expose: the epoch must advance before any cached
	// content is destroyed, so no observer can ever see reverted data
	// alongside a stale epoch.
	c.lossEpochs[set].Add(1)
	c.wipeSetLocked(b, ls)
}

// wipeSetLocked force-clears every way of the local set, then flushes
// any parity residues the raw-delta force-writes left behind in groups
// that now check clean (groups still holding detected damage keep
// their mismatch information — see twod.FlushResidualParity).
func (c *Cache) wipeSetLocked(b *bank, ls int) {
	for way := 0; way < c.cfg.Ways; way++ {
		row := c.dataRow(ls, way)
		for w := 0; w < c.words; w++ {
			b.data.ForceWriteUint64(row, w, 0)
		}
		b.tags.ForceWriteUint64(ls, way, 0)
	}
	b.data.FlushResidualParity()
	b.tags.FlushResidualParity()
}

// RepairAll is the whole-cache machine-check handler: every set is
// force-cleared (all unflushed dirty data is lost) and all arrays
// return to a consistent state. Used when a scrub pass itself reports
// uncorrectable damage.
func (c *Cache) RepairAll() {
	for set := 0; set < c.cfg.Sets; set++ {
		c.Repair(uint64(set) << c.lineShift)
	}
}

// Decommission retires one way: its line is discarded (refetched from
// backing on the next access to that address), its storage is
// force-cleared so the arrays stay consistent, and the way is removed
// from allocation — the line-delete map real processors keep. It
// reports whether unflushed dirty data was lost. The set's loss epoch
// advances.
func (c *Cache) Decommission(set, way int) (lostDirty bool) {
	b, ls := c.bankOf(set)
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := ls*c.cfg.Ways + way
	if t, ok := b.tags.TryReadUint64(ls, way); ok {
		lostDirty = t&tagValidBit != 0 && t&tagDirtyBit != 0
	} else {
		// Tag word unreadable: assume the worst.
		lostDirty = true
	}
	// Bump-before-expose: advance the epoch before the way's content is
	// destroyed (see Repair).
	c.lossEpochs[set].Add(1)
	row := c.dataRow(ls, way)
	for w := 0; w < c.words; w++ {
		b.data.ForceWriteUint64(row, w, 0)
	}
	b.tags.ForceWriteUint64(ls, way, 0)
	b.data.FlushResidualParity()
	b.tags.FlushResidualParity()
	if !b.disabled[idx] {
		b.disabled[idx] = true
		c.disabledWays.Add(1)
	}
	if lostDirty {
		c.dirtyLost.Add(1)
	}
	return lostDirty
}

// Reenable returns a decommissioned way to service (after its faulty
// row has been remapped to a spare). The way comes back empty.
func (c *Cache) Reenable(set, way int) {
	b, ls := c.bankOf(set)
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := ls*c.cfg.Ways + way
	if b.disabled[idx] {
		b.disabled[idx] = false
		c.disabledWays.Add(-1)
	}
}

// RecoverWord is the targeted middle rung of the escalation ladder: it
// attempts word-level horizontal correction of exactly the failed
// resource — the tag word, or every word of the failed line — without
// an array-wide recovery march. It reports whether everything it
// touched now checks clean.
func (c *Cache) RecoverWord(array string, set, way int) bool {
	b, ls := c.bankOf(set)
	b.mu.Lock()
	defer b.mu.Unlock()
	if array == ArrayTags {
		return b.tags.CorrectWord(ls, way)
	}
	row := c.dataRow(ls, way)
	ok := true
	for w := 0; w < c.words; w++ {
		if !b.data.CorrectWord(row, w) {
			ok = false
		}
	}
	return ok
}

// RecoverSetArrays runs the full 2D recovery process over both arrays
// of the set's bank, reporting whether the bank checks clean after.
func (c *Cache) RecoverSetArrays(set int) bool {
	b, _ := c.bankOf(set)
	b.mu.Lock()
	defer b.mu.Unlock()
	okData := b.data.Recover().Success
	okTags := b.tags.Recover().Success
	return okData && okTags
}

// ScrubBank runs 2D recovery over bank i's arrays. When recovery
// cannot restore consistency it returns ok=false plus the cache ways
// whose words still check dirty — the lines a resilience engine must
// decommission.
func (c *Cache) ScrubBank(i int) (ok bool, victims []WayRef) {
	b := c.banks[i]
	b.mu.Lock()
	defer b.mu.Unlock()
	okData := b.data.Recover().Success
	okTags := b.tags.Recover().Success
	if okData && okTags {
		return true, nil
	}
	seen := map[WayRef]bool{}
	add := func(ref WayRef) {
		if !seen[ref] {
			seen[ref] = true
			victims = append(victims, ref)
		}
	}
	if !okData {
		for _, rw := range b.data.FaultyWordList() {
			add(WayRef{Set: b.globalSet(c.setsPerBank, rw[0]/c.cfg.Ways), Way: rw[0] % c.cfg.Ways})
		}
	}
	if !okTags {
		for _, rw := range b.tags.FaultyWordList() {
			add(WayRef{Set: b.globalSet(c.setsPerBank, rw[0]), Way: rw[1]})
		}
	}
	return false, victims
}

// Scrub proactively runs 2D recovery over every bank (a full scrubbing
// pass), returning whether everything is consistent.
func (c *Cache) Scrub() bool {
	all := true
	for i := range c.banks {
		if ok, _ := c.ScrubBank(i); !ok {
			all = false
		}
	}
	return all
}

func (c *Cache) checkSpan(addr uint64, n int) error {
	if n <= 0 || n > c.cfg.LineBytes {
		return fmt.Errorf("pcache: access size %d out of (0,%d]", n, c.cfg.LineBytes)
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	if off+n > c.cfg.LineBytes {
		return fmt.Errorf("pcache: access at %#x size %d crosses a line boundary", addr, n)
	}
	return nil
}
