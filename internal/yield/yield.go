// Package yield implements the paper's manufacturability and field
// reliability models (§5.2, Fig. 8): a Stapper-style random-defect
// yield model for caches repaired by spare rows and/or in-line ECC, and
// a FIT-driven soft-error reliability model quantifying why ECC should
// not be spent on hard errors unless multi-bit (2D) protection backs it
// up.
package yield

import (
	"fmt"
	"math"
	"math/rand"

	"twodcache/internal/stats"
)

// Geometry describes the protected memory for yield purposes.
type Geometry struct {
	// Words is the number of ECC words in the array.
	Words int
	// WordBits is the codeword width in bits (data + check); defects
	// anywhere in the codeword count against the word.
	WordBits int
}

// Bits returns the total cell count.
func (g Geometry) Bits() int { return g.Words * g.WordBits }

// Geometry16MBL2 returns the paper's 16 MB L2 with (72,64) SECDED words.
func Geometry16MBL2() Geometry {
	return Geometry{Words: 16 << 20 * 8 / 64, WordBits: 72}
}

// Policy describes the repair resources available.
type Policy struct {
	// ECC enables in-line single-bit-per-word correction.
	ECC bool
	// SpareRows is the number of spare rows available for remapping
	// words the ECC cannot absorb.
	SpareRows int
}

// String names the policy in the paper's Fig. 8 style.
func (p Policy) String() string {
	switch {
	case p.ECC && p.SpareRows > 0:
		return fmt.Sprintf("ECC + Spare_%d", p.SpareRows)
	case p.ECC:
		return "ECC Only"
	default:
		return fmt.Sprintf("Spare_%d", p.SpareRows)
	}
}

// Yield returns the probability that a die with the given number of
// (uniformly distributed) failing cells is shippable under the policy:
//
//   - without ECC, every word containing >= 1 defect must be remapped;
//   - with ECC, only words containing >= 2 defects need a spare (the
//     ECC absorbs singles in-line);
//   - the die ships if the number of such words is <= SpareRows.
//
// This follows Stapper & Lee's synergistic fault-tolerance analysis
// (the paper's ref [46]) with per-word defect counts approximated as
// independent Poisson(faults/Words).
func Yield(g Geometry, faults int, pol Policy) float64 {
	if faults < 0 {
		return 1
	}
	lambda := float64(faults) / float64(g.Words)
	if pol.ECC {
		// Words with >= 2 defects are rare, nearly-independent events:
		// the Poisson/binomial approximation is accurate here.
		pNeedsSpare := 1 - math.Exp(-lambda)*(1+lambda)
		return stats.BinomialTailLE(g.Words, pNeedsSpare, pol.SpareRows)
	}
	// Without ECC every occupied word needs a spare. The number of
	// distinct occupied words follows the classical occupancy
	// distribution, which is far more concentrated than independent
	// per-word trials (at most `faults` words can be occupied); use its
	// exact mean and variance with a normal approximation.
	w := float64(g.Words)
	n := float64(faults)
	q1 := math.Exp(n * math.Log1p(-1/w))
	q2 := math.Exp(n * math.Log1p(-2/w))
	mean := w * (1 - q1)
	variance := w*q1 + w*(w-1)*q2 - w*w*q1*q1
	if variance < 1e-12 {
		if mean <= float64(pol.SpareRows) {
			return 1
		}
		return 0
	}
	z := (float64(pol.SpareRows) + 0.5 - mean) / math.Sqrt(variance)
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// YieldMonteCarlo estimates the same probability by direct simulation:
// faults cells are placed uniformly at random and the words needing
// spares are counted. It validates the analytic model.
func YieldMonteCarlo(rng *rand.Rand, g Geometry, faults int, pol Policy, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	ok := 0
	counts := make(map[int]int, faults)
	for tr := 0; tr < trials; tr++ {
		for k := range counts {
			delete(counts, k)
		}
		for i := 0; i < faults; i++ {
			w := rng.Intn(g.Words)
			counts[w]++
		}
		need := 0
		for _, c := range counts {
			if pol.ECC {
				if c >= 2 {
					need++
				}
			} else {
				need++
			}
		}
		if need <= pol.SpareRows {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// Curve evaluates Yield over a sweep of fault counts.
func Curve(g Geometry, faultCounts []int, pol Policy) []float64 {
	out := make([]float64, len(faultCounts))
	for i, n := range faultCounts {
		out[i] = Yield(g, n, pol)
	}
	return out
}
