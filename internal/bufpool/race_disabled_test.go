//go:build !race

package bufpool

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
