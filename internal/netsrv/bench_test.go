package netsrv

import (
	"context"
	"net"
	"testing"
	"time"

	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/store"
)

// benchClient stands a 1-shard store + server on loopback and returns a
// connected client. Benchmarks measure the whole in-process round trip,
// so -benchmem totals cover client AND server allocations per op.
func benchClient(b *testing.B) *Client {
	b.Helper()
	backing := pcache.NewMapBacking(lineBytes)
	st, err := store.New(store.Config{
		Shards:     1,
		Cache:      pcache.Config{Sets: 64, Ways: 2, LineBytes: lineBytes, Banks: 4},
		Resilience: resilience.Config{},
	}, backing)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		cancel()
		<-served
	})
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkNetSingleRead: one deadline-free READ frame per op (the
// server still re-groups the pipeline onto the batch path).
func BenchmarkNetSingleRead(b *testing.B) {
	c := benchClient(b)
	seed := make([]byte, lineBytes)
	for i := range seed {
		seed[i] = byte(i)
	}
	if err := c.Write(0, seed); err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, lineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReadInto(0, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetSingleWrite: one deadline-free WRITE frame per op.
func BenchmarkNetSingleWrite(b *testing.B) {
	c := benchClient(b)
	data := make([]byte, lineBytes)
	for i := range data {
		data[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(uint64(i%16)*lineBytes, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetBatchRead32: one BATCH_READ frame of 32 full-line ops per
// iteration; Dst buffers are caller-owned and reused, so every
// allocation reported is protocol overhead.
func BenchmarkNetBatchRead32(b *testing.B) {
	const batch = 32
	c := benchClient(b)
	data := make([]byte, lineBytes)
	ops := make([]pcache.ReadOp, batch)
	for i := range ops {
		addr := uint64(i) * lineBytes
		if err := c.Write(addr, data); err != nil {
			b.Fatal(err)
		}
		ops[i] = pcache.ReadOp{Addr: addr, Dst: make([]byte, lineBytes)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		failed, err := c.ReadBatch(ops)
		if err != nil || failed != 0 {
			b.Fatalf("failed=%d err=%v", failed, err)
		}
	}
}

// BenchmarkNetBatchWrite32: one BATCH_WRITE frame of 32 full-line ops
// per iteration with caller-owned Data buffers.
func BenchmarkNetBatchWrite32(b *testing.B) {
	const batch = 32
	c := benchClient(b)
	ops := make([]pcache.WriteOp, batch)
	for i := range ops {
		data := make([]byte, lineBytes)
		for j := range data {
			data[j] = byte(i + j)
		}
		ops[i] = pcache.WriteOp{Addr: uint64(i) * lineBytes, Data: data}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		failed, err := c.WriteBatch(ops)
		if err != nil || failed != 0 {
			b.Fatalf("failed=%d err=%v", failed, err)
		}
	}
}
