#!/bin/sh
# bench.sh — the data-path benchmark suite, benchstat-compatible.
#
#   ./scripts/bench.sh                  # headline data-path benches, 5 runs
#   ./scripts/bench.sh -kernels         # per-code kernel micro-benches only
#   ./scripts/bench.sh -obs             # observability overhead micro-benches
#   ./scripts/bench.sh -all             # every benchmark (incl. figure regen)
#   COUNT=10 ./scripts/bench.sh         # override run count
#
# Always passes -benchmem so allocation regressions show up next to the
# timing. Pipe two runs through benchstat to compare; the committed
# baselines live in results/BENCH_kernels.md and results/BENCH_obs.md.
set -eu
cd "$(dirname "$0")/.."

count=${COUNT:-5}
pattern='BenchmarkArrayWrite$|BenchmarkArrayReadClean$|BenchmarkEDC8Syndrome$|BenchmarkSECDEDDecode$|BenchmarkPCacheParallelRead$|BenchmarkPCacheParallelReadInto$|BenchmarkKernel|BenchmarkObs'
pkgs='. ./internal/obs/'
case "${1:-}" in
-kernels)
    pattern='BenchmarkKernel'
    pkgs='.'
    ;;
-obs)
    pattern='BenchmarkObs'
    pkgs='./internal/obs/'
    ;;
-all)
    pattern='.'
    pkgs='./...'
    ;;
esac

# shellcheck disable=SC2086 # pkgs is an intentional word list
exec go test -run '^$' -bench "$pattern" -benchmem -count "$count" $pkgs
