package netsrv

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/store"
)

// TestBatchDeadlineOverWire proves a batch frame's deadline field is
// honored end-to-end: with a wedged repair behind one op, the deadline
// kills exactly that op (stDeadline or stRecoveryInProgress inside an
// stOK batch response), its batchmates are still served, the abort is
// counted in net_deadline_aborts_total, and the decoded error carries
// the same errors.Is chain as the local bounded path.
func TestBatchDeadlineOverWire(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour)
	st, err := store.New(store.Config{
		Cache:      pcache.Config{Sets: 32, Ways: 2, LineBytes: lineBytes, Banks: 1},
		Resilience: resilience.Config{RecoveryStall: &stall},
	}, pcache.NewMapBacking(lineBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Persistent beyond-coverage DUE on line 0 (same plant as the
	// single-op deadline test): two dirty lines sharing a vertical group
	// and an EDC8 parity column.
	c := st.Shard(0).Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(16*lineBytes, []byte{0xA5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(lineBytes, bytes.Repeat([]byte{0x77}, lineBytes)); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))

	srv, addr := startServer(t, st, Config{})

	// Raw frame first: no client-side ctx racing the wire deadline, so
	// the response reflects the server's own batch-ctx abort.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	p := be64Append(nil, uint64(30*time.Millisecond))
	p = be32Append(p, 2)
	p = be64Append(p, 0) // the wedged DUE line
	p = be32Append(p, 1)
	p = be64Append(p, lineBytes) // a healthy batchmate
	p = be32Append(p, lineBytes)
	if _, err := nc.Write(appendFrame(nil, opBatchRead, 1, p)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if f.payload[0] != stOK {
		t.Fatalf("batch outer status = %d, want stOK", f.payload[0])
	}
	b := f.payload[1:]
	if int(be32(b)) != 2 {
		t.Fatalf("batch response count = %d, want 2", be32(b))
	}
	st0 := b[4]
	if st0 != stRecoveryInProgress && st0 != stDeadline {
		t.Fatalf("wedged op status = %d, want stRecoveryInProgress or stDeadline", st0)
	}
	werr := statusErr(st0, "")
	if !errors.Is(werr, resilience.ErrRecoveryInProgress) && !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("wire err = %v, want bounded-path sentinel in chain", werr)
	}
	off := 4 + 1 + 4 + int(be32(b[5:])) // skip op0 status, len, data
	if got := b[off]; got != stOK {
		t.Fatalf("healthy batchmate status = %d, want stOK", got)
	}
	n1 := int(be32(b[off+1:]))
	if n1 != lineBytes || !bytes.Equal(b[off+5:off+5+n1], bytes.Repeat([]byte{0x77}, lineBytes)) {
		t.Fatalf("healthy batchmate data wrong (%d bytes)", n1)
	}
	if snap := srv.Metrics().Snapshot(); snap.Counter(metricDeadlineAborts) == 0 {
		t.Fatal("batch deadline abort not counted in net_deadline_aborts_total")
	}

	// Through the Client: the ctx deadline travels in the batch frame.
	// The caller observes either the server's per-op abort or its own
	// expired ctx — a bounded failure either way, never a hang and never
	// silent success on the wedged op.
	cl := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ops := []pcache.ReadOp{
		{Addr: 0, Dst: make([]byte, 1)},
		{Addr: lineBytes, Dst: make([]byte, lineBytes)},
	}
	failed, berr := cl.ReadBatchCtx(ctx, ops)
	switch {
	case berr != nil:
		if !errors.Is(berr, context.DeadlineExceeded) {
			t.Fatalf("transport-level err = %v, want DeadlineExceeded", berr)
		}
	case failed == 0:
		t.Fatal("wedged op silently succeeded under an expiring batch deadline")
	default:
		if !errors.Is(ops[0].Err, resilience.ErrRecoveryInProgress) && !errors.Is(ops[0].Err, context.DeadlineExceeded) {
			t.Fatalf("op 0 err = %v, want bounded-path sentinel", ops[0].Err)
		}
	}

	stall.Disarm()
}

// TestOversizedBatchTrimsScratch pins the per-conn memory bound: a
// batch frame far larger than BatchSize must not leave the connection's
// op scratch pinned at its high-water capacity once served.
func TestOversizedBatchTrimsScratch(t *testing.T) {
	const batchSize = 32
	st, _ := newStore(t, 1, resilience.Config{})
	srv, addr := startServer(t, st, Config{BatchSize: batchSize})
	cl := dial(t, addr)

	// Capture the server-side conn while it is alive.
	var cc *conn
	deadline := time.Now().Add(5 * time.Second)
	for cc == nil {
		srv.mu.Lock()
		for c := range srv.conns {
			cc = c
		}
		srv.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatal("server never registered the connection")
		}
	}

	const huge = 512
	wops := make([]pcache.WriteOp, huge)
	for i := range wops {
		wops[i] = pcache.WriteOp{Addr: uint64(i) * lineBytes, Data: bytes.Repeat([]byte{byte(i)}, lineBytes)}
	}
	if failed, err := cl.WriteBatch(wops); failed != 0 || err != nil {
		t.Fatalf("huge batch write failed=%d err=%v", failed, err)
	}
	rops := make([]pcache.ReadOp, huge)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * lineBytes, Dst: make([]byte, lineBytes)}
	}
	if failed, err := cl.ReadBatch(rops); failed != 0 || err != nil {
		t.Fatalf("huge batch read failed=%d err=%v", failed, err)
	}

	// Close and wait for the server to retire the conn: removeConn's
	// mutex hand-off makes the reader goroutine's final state visible.
	cl.Close()
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never retired")
		}
		time.Sleep(time.Millisecond)
	}
	if got := cap(cc.reads); got > batchSize {
		t.Fatalf("read scratch pinned at cap %d after oversized batch, want <= %d", got, batchSize)
	}
	if got := cap(cc.writes); got > batchSize {
		t.Fatalf("write scratch pinned at cap %d after oversized batch, want <= %d", got, batchSize)
	}
	if len(cc.arenas) != 0 {
		t.Fatalf("%d arena chunks still held after flush", len(cc.arenas))
	}
	if len(cc.retained) != 0 {
		t.Fatalf("%d retained frames still held after flush", len(cc.retained))
	}
}
