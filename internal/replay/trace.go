// Package replay is the deterministic fault-trace record/replay
// harness for the protected cache. A trace is a totally-ordered,
// seedable sequence of events — client accesses, fault-injector bit
// flips, scrub sweeps, and (for harness self-validation) raw backing
// corruptions — over a fixed cache geometry. Replaying a trace
// re-executes it single-threaded against the real
// pcache/resilience/twod stack with byte-exact determinism: no wall
// clock (the engine runs on a counting fake clock), no shared rng
// (every random stream is derived with the splitmix64 discipline of
// internal/fault.DeriveSeed), and no goroutines. The same trace always
// yields the same final array contents, the same counter snapshot, and
// the same accounted/reported/silent mismatch taxonomy — which makes a
// failing storm run shrinkable (ddmin, see Shrink) down to a
// committable regression test.
//
// The hard-storm silent-corruption bug that motivated this package
// (ROADMAP, reproduced pre-fix by testdata/tornfill-shrunk.trace) was
// pinned with exactly this loop: generate seeded storm traces, replay
// until one goes silent, shrink, read the minimal event sequence.
package replay

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Op is the event discriminator (also the leading field of the text
// serialization).
type Op byte

const (
	// OpRead is a 1-byte client read at Addr.
	OpRead Op = 'r'
	// OpWrite is a 1-byte client write of Val at Addr.
	OpWrite Op = 'w'
	// OpFlip flips one physical bit of a protected sub-array. On
	// replay the flip is gated exactly like the live storm: it is
	// applied only if the covering word currently checks clean, so
	// every injected fault stays horizontally detectable and "zero
	// silent corruptions" remains a hard invariant, even after the
	// shrinker has removed surrounding events.
	OpFlip Op = 'f'
	// OpScrub runs one scrub sweep over one bank: full 2D recovery
	// plus graceful degradation of unrepairable ways (the scrubber's
	// SweepBank).
	OpScrub Op = 's'
	// OpPoke corrupts the backing store directly, behind the cache's
	// back. No real component does this; it exists so the harness can
	// validate its own taxonomy end to end (a poked byte MUST be
	// classified silent). Traces that use it declare ExpectSilent.
	OpPoke Op = 'x'
)

// Event is one trace step. Which fields are meaningful depends on Op:
// Read uses Client/Addr; Write and Poke add Val; Flip uses
// Bank/Tags/Row/Col; Scrub uses Bank.
type Event struct {
	Op     Op
	Client int
	Addr   uint64
	Val    byte
	Bank   int
	Tags   bool
	Row    int
	Col    int
}

// Config fixes the cache geometry and engine tuning a trace runs
// against. It is part of the trace file: a trace is meaningless
// against any other geometry.
type Config struct {
	Sets, Ways, LineBytes int
	Banks                 int
	VerticalGroups        int
	SECDED                bool
	SpareRows             int
	MaxRetries            int
}

// Trace is a replayable event sequence.
type Trace struct {
	Cfg Config
	// ExpectSilent marks harness-validation traces (OpPoke) whose
	// replay MUST report silent corruption; committed regression
	// traces leave it false and must replay clean.
	ExpectSilent bool
	Events       []Event
}

// Clone deep-copies the trace (the shrinker mutates event slices).
func (t Trace) Clone() Trace {
	out := t
	out.Events = append([]Event(nil), t.Events...)
	return out
}

// --- text serialization -------------------------------------------------
//
// Line-oriented, git-friendly:
//
//	twodtrace v1
//	config sets=64 ways=4 line=64 banks=1 vgroups=32 secded=0 spares=8 retries=1
//	expect silent            # only on harness-validation traces
//	w <client> <addr> <val>  # addr and val in hex
//	r <client> <addr>
//	f <bank> <d|t> <row> <col>
//	s <bank>
//	x <addr> <val>
//
// '#' starts a comment (whole line or trailing); blank lines ignored.

const traceMagic = "twodtrace v1"

// Encode serializes the trace.
func (t Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceMagic)
	c := t.Cfg
	fmt.Fprintf(bw, "config sets=%d ways=%d line=%d banks=%d vgroups=%d secded=%d spares=%d retries=%d\n",
		c.Sets, c.Ways, c.LineBytes, c.Banks, c.VerticalGroups, b2i(c.SECDED), c.SpareRows, c.MaxRetries)
	if t.ExpectSilent {
		fmt.Fprintln(bw, "expect silent")
	}
	for _, e := range t.Events {
		switch e.Op {
		case OpRead:
			fmt.Fprintf(bw, "r %d %x\n", e.Client, e.Addr)
		case OpWrite:
			fmt.Fprintf(bw, "w %d %x %x\n", e.Client, e.Addr, e.Val)
		case OpFlip:
			arr := "d"
			if e.Tags {
				arr = "t"
			}
			fmt.Fprintf(bw, "f %d %s %d %d\n", e.Bank, arr, e.Row, e.Col)
		case OpScrub:
			fmt.Fprintf(bw, "s %d\n", e.Bank)
		case OpPoke:
			fmt.Fprintf(bw, "x %x %x\n", e.Addr, e.Val)
		default:
			return fmt.Errorf("replay: unknown op %q", e.Op)
		}
	}
	return bw.Flush()
}

// SaveFile writes the trace to path.
func (t Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Parse reads a trace from r, validating the header and every event
// line. It is deliberately strict: a trace that parses is a trace that
// replays.
func Parse(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var t Trace
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line != "" {
				return line, true
			}
		}
		return "", false
	}
	line, ok := next()
	if !ok || line != traceMagic {
		return t, fmt.Errorf("replay: line %d: missing %q header", lineNo, traceMagic)
	}
	line, ok = next()
	if !ok || !strings.HasPrefix(line, "config ") {
		return t, fmt.Errorf("replay: line %d: missing config line", lineNo)
	}
	if err := parseConfig(line, &t.Cfg); err != nil {
		return t, fmt.Errorf("replay: line %d: %v", lineNo, err)
	}
	for {
		line, ok = next()
		if !ok {
			break
		}
		if line == "expect silent" {
			t.ExpectSilent = true
			continue
		}
		ev, err := parseEvent(line)
		if err != nil {
			return t, fmt.Errorf("replay: line %d: %v", lineNo, err)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return t, err
	}
	return t, nil
}

// ParseFile reads a trace file.
func ParseFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	return Parse(f)
}

func parseConfig(line string, c *Config) error {
	for _, kv := range strings.Fields(line)[1:] {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("bad config field %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad config value %q: %v", kv, err)
		}
		switch k {
		case "sets":
			c.Sets = n
		case "ways":
			c.Ways = n
		case "line":
			c.LineBytes = n
		case "banks":
			c.Banks = n
		case "vgroups":
			c.VerticalGroups = n
		case "secded":
			c.SECDED = n != 0
		case "spares":
			c.SpareRows = n
		case "retries":
			c.MaxRetries = n
		default:
			return fmt.Errorf("unknown config key %q", k)
		}
	}
	return nil
}

func parseEvent(line string) (Event, error) {
	f := strings.Fields(line)
	var e Event
	argc := map[Op]int{OpRead: 3, OpWrite: 4, OpFlip: 5, OpScrub: 2, OpPoke: 3}
	if len(f[0]) != 1 {
		return e, fmt.Errorf("unknown op %q", f[0])
	}
	e.Op = Op(f[0][0])
	want, ok := argc[e.Op]
	if !ok {
		return e, fmt.Errorf("unknown op %q", f[0])
	}
	if len(f) != want {
		return e, fmt.Errorf("op %q wants %d fields, got %d", f[0], want, len(f))
	}
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	hex64 := func(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
	var err error
	switch e.Op {
	case OpRead:
		if e.Client, err = atoi(f[1]); err == nil {
			e.Addr, err = hex64(f[2])
		}
	case OpWrite:
		if e.Client, err = atoi(f[1]); err == nil {
			if e.Addr, err = hex64(f[2]); err == nil {
				var v uint64
				v, err = strconv.ParseUint(f[3], 16, 8)
				e.Val = byte(v)
			}
		}
	case OpFlip:
		if e.Bank, err = atoi(f[1]); err == nil {
			switch f[2] {
			case "d":
			case "t":
				e.Tags = true
			default:
				return e, fmt.Errorf("flip array %q (want d or t)", f[2])
			}
			if e.Row, err = atoi(f[3]); err == nil {
				e.Col, err = atoi(f[4])
			}
		}
	case OpScrub:
		e.Bank, err = atoi(f[1])
	case OpPoke:
		if e.Addr, err = hex64(f[1]); err == nil {
			var v uint64
			v, err = strconv.ParseUint(f[2], 16, 8)
			e.Val = byte(v)
		}
	}
	if err != nil {
		return e, fmt.Errorf("bad event %q: %v", line, err)
	}
	if e.Client < 0 || e.Bank < 0 || e.Row < 0 || e.Col < 0 {
		return e, fmt.Errorf("negative field in %q", line)
	}
	return e, nil
}
