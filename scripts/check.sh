#!/bin/sh
# check.sh — the tier-1 verify loop, `make check`-equivalent.
#
#   ./scripts/check.sh          # vet + build + test + race on concurrency-hardened packages
#   ./scripts/check.sh -full    # additionally race-test every package
#
# The race pass covers the packages with concurrent hot paths (banked
# pcache locking, the resilience engine/scrubber, atomic twod stats);
# -full extends it to the whole module.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...
if [ "${1:-}" = "-full" ]; then
    echo "== go test -race ./... (full)"
    go test -race ./...
else
    echo "== go test -race (concurrency-hardened packages)"
    go test -race ./internal/twod/ ./internal/pcache/ ./internal/resilience/
fi
echo "check: OK"
