package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twodcache/internal/pcache"
	"twodcache/internal/twod"
)

const breakerTracePath = "testdata/breaker-trip.trace"

// breakerTripTrace builds the deterministic breaker-trip regression
// trace. Six rounds, one per set k = 0..5, each planting the canonical
// beyond-coverage ambiguous fault on a DIRTY pair of lines:
//
//   - two unflushed writes land in set k (data row 2k) and set k+16
//     (data row 2k+32) — with 64 rows and 32 vertical groups the two
//     rows are each other's sole vertical-group partner;
//   - one bit flip per row, at the physical columns of codeword bits 0
//     and 8 of word 0, which share an EDC8 parity column — so vertical
//     recovery cannot disambiguate the pair;
//   - a read of the first line then surfaces a persistent DUE that the
//     retry, word, and full-2D rungs all fail, charging one failure to
//     bank 0's circuit breaker before degradation absorbs the loss.
//
// Rounds 0..4 accumulate the default FailureThreshold of 5 consecutive
// rung failures and trip the breaker open; round 5's DUE must be SHED
// straight to degrade. The replay clock counts one microsecond per
// reading, so the 10ms OpenTimeout never elapses inside the trace and
// the trip is sticky — the shed is deterministic, not timing-lucky.
//
// Every mismatch is an accounted loss (degradation advances the loss
// epoch), so the trace replays with Silent == 0 and rides the standard
// TestCommittedTraces gate as well.
func breakerTripTrace(t *testing.T) Trace {
	t.Helper()
	cfg := Config{
		Sets: 32, Ways: 2, LineBytes: 64, Banks: 1,
		VerticalGroups: 32, MaxRetries: 1,
	}
	// The flip columns depend on the horizontal code's physical layout;
	// read them off a throwaway cache with the trace's exact geometry
	// rather than hard-coding magic numbers.
	pc, err := pcache.New(pcache.Config{
		Sets: cfg.Sets, Ways: cfg.Ways, LineBytes: cfg.LineBytes,
		Banks: cfg.Banks, VerticalGroups: cfg.VerticalGroups,
	}, pcache.NewMapBacking(cfg.LineBytes))
	if err != nil {
		t.Fatal(err)
	}
	var col0, col8 int
	pc.WithBankLock(0, func(data, _ *twod.Array) {
		lay := data.Layout()
		col0 = lay.PhysColumn(0, 0)
		col8 = lay.PhysColumn(0, 8)
	})

	tr := Trace{Cfg: cfg}
	for k := 0; k <= 5; k++ {
		tr.Events = append(tr.Events,
			Event{Op: OpWrite, Addr: uint64(k * 64), Val: 0x11},
			Event{Op: OpWrite, Addr: uint64((k + 16) * 64), Val: 0x22},
			Event{Op: OpFlip, Bank: 0, Row: 2 * k, Col: col0},
			Event{Op: OpFlip, Bank: 0, Row: 2*k + 32, Col: col8},
			Event{Op: OpRead, Addr: uint64(k * 64)},
		)
	}
	return tr
}

// TestBreakerTripTrace is the committed breaker-trip regression: the
// trace on disk must (a) be exactly what the generator produces — no
// silent drift between the committed bytes and the documented
// construction — and (b) replay with at least one breaker trip and at
// least one shed, zero silent corruptions, bit-for-bit deterministic.
//
// Regenerate after an intentional layout or format change with:
//
//	REGEN_TRACES=1 go test ./internal/replay -run TestBreakerTripTrace
func TestBreakerTripTrace(t *testing.T) {
	want := breakerTripTrace(t)
	if os.Getenv("REGEN_TRACES") != "" {
		if err := os.MkdirAll(filepath.Dir(breakerTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := want.SaveFile(breakerTracePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", breakerTracePath)
	}

	raw, err := os.ReadFile(breakerTracePath)
	if err != nil {
		t.Fatalf("%v (run with REGEN_TRACES=1 to generate)", err)
	}
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("%s does not match the generator; regenerate with REGEN_TRACES=1", breakerTracePath)
	}

	tr, err := ParseFile(breakerTracePath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent != 0 {
		t.Fatalf("silent corruption: %v", res.SilentDetails)
	}
	if res.Report.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", res.Report)
	}
	if res.Report.BreakerSheds == 0 {
		t.Fatalf("open breaker never shed a request: %+v", res.Report)
	}
	if res.Report.DUEs < 6 {
		t.Fatalf("DUEs = %d, want >= 6 (one per planted round)", res.Report.DUEs)
	}
	again, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if again.StateHash != res.StateHash {
		t.Fatalf("breaker-trip replay not deterministic: %#x vs %#x", res.StateHash, again.StateHash)
	}
}
