package fault

import (
	"math"
	"math/rand"
	"testing"
)

func TestPatternBounds(t *testing.T) {
	p := SolidCluster(10, 20, 4, 8)
	h, w := p.Bounds()
	if h != 4 || w != 8 {
		t.Fatalf("bounds = %dx%d", h, w)
	}
	if len(p.Flips) != 32 {
		t.Fatalf("flips = %d", len(p.Flips))
	}
	empty := Pattern{}
	if h, w := empty.Bounds(); h != 0 || w != 0 {
		t.Fatal("empty bounds nonzero")
	}
}

func TestSparseClusterSpansBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		hh, ww := 1+rng.Intn(16), 1+rng.Intn(16)
		p := SparseCluster(rng, 5, 7, hh, ww, 0.3)
		h, w := p.Bounds()
		if h != hh || w != ww {
			t.Fatalf("sparse bounds = %dx%d, want %dx%d", h, w, hh, ww)
		}
	}
}

func TestRowFailureAndSingleBit(t *testing.T) {
	p := RowFailure(3, 100)
	if len(p.Flips) != 100 {
		t.Fatalf("row failure flips = %d", len(p.Flips))
	}
	for _, f := range p.Flips {
		if f.Row != 3 {
			t.Fatal("row failure escaped its row")
		}
	}
	s := SingleBit(1, 2)
	if len(s.Flips) != 1 || s.Flips[0] != (Flip{1, 2}) {
		t.Fatalf("single bit = %+v", s)
	}
}

func TestColumnStuckAtStaysInColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := ColumnStuckAt(rng, 42, 256)
	if len(p.Flips) == 0 {
		t.Fatal("no flips")
	}
	// ~half the rows on average.
	if len(p.Flips) < 80 || len(p.Flips) > 176 {
		t.Fatalf("stuck column flipped %d of 256 cells", len(p.Flips))
	}
	for _, f := range p.Flips {
		if f.Col != 42 {
			t.Fatal("flip escaped the column")
		}
	}
}

func TestFITRate(t *testing.T) {
	// 1000 FIT/Mb on 1 Mb => 1000 failures per 1e9 hours = 1e-6/hour.
	got := FITRate(1000, 1<<20)
	want := 1000.0 * (float64(1<<20) / 1e6) / 1e9
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("FITRate = %v, want %v", got, want)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0.5, 5, 200} {
		n := 2000
		sum := 0
		for i := 0; i < n; i++ {
			sum += PoissonEvents(rng, mean, 1)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.15+0.1 {
			t.Fatalf("poisson mean %v: sampled %v", mean, got)
		}
	}
	if PoissonEvents(rng, 0, 100) != 0 {
		t.Fatal("zero rate must give zero events")
	}
}

func TestEventSizeDist(t *testing.T) {
	d := ModernDist()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := EventSizeDist{Sizes: []EventSize{{1, 1}}, Probs: []float64{0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-normalised distribution accepted")
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[EventSize]int{}
	for i := 0; i < 5000; i++ {
		counts[d.Sample(rng)]++
	}
	if c := counts[EventSize{1, 1}]; c < 2700 || c > 3300 {
		t.Fatalf("single-bit fraction = %d/5000, want ~3000", c)
	}
}

func TestSoftEventInsideArray(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := SoftEvent(rng, 64, 128, ModernDist())
		for _, f := range p.Flips {
			if f.Row < 0 || f.Row >= 64 || f.Col < 0 || f.Col >= 128 {
				t.Fatalf("flip out of bounds: %+v", f)
			}
		}
	}
}

func TestHardErrorsDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows, cols := 1024, 1024
	her := 0.001 // 0.1% of cells defective
	total := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		total += len(HardErrors(rng, rows, cols, her).Flips)
	}
	// Half of the defects are visible (stuck value != stored value).
	want := her * float64(rows*cols) / 2
	got := float64(total) / trials
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("hard error count = %v, want ~%v", got, want)
	}
}

func TestRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := RandomBits(rng, 10, 10, 25)
	if len(p.Flips) != 25 {
		t.Fatalf("flips = %d", len(p.Flips))
	}
}
