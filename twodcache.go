// Package twodcache is a library-grade reproduction of "Multi-bit Error
// Tolerant Caches Using Two-Dimensional Error Coding" (Kim,
// Hardavellas, Mai, Falsafi, Hoe — MICRO-40, 2007).
//
// The core idea: protect a memory array with a light-weight horizontal
// per-word code (interleaved parity EDCn, or Hsiao SECDED) that is
// checked on every read and used for *detection*, plus interleaved
// vertical parity rows maintained in the background (via a
// read-before-write delta on every store) that are consulted only by
// the rare recovery process for *correction*. The combination corrects
// clustered errors up to 32x32 bits — including row and column
// failures — at a fraction of the cost of conventional multi-bit ECC.
//
// This package is the public façade over the implementation packages:
//
//   - NewArray and ArrayConfig build 2D-protected arrays with explicit
//     storage, fault injection, and the Fig. 4(b) recovery algorithm;
//   - NewEDC, NewSECDED, NewDECTED, NewQECPED, NewOECNED construct the
//     per-word codes (the latter three are real shortened BCH codes);
//   - FatCMP, LeanCMP, RunCMP and MeasureIPCLoss drive the cycle-level
//     chip-multiprocessor simulator behind the paper's Fig. 5 and 6;
//   - CacheYield and FieldReliability expose the Fig. 8 models;
//   - Experiment runs any table/figure reproduction by identifier.
package twodcache

import (
	"fmt"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/experiments"
	"twodcache/internal/sim"
	"twodcache/internal/twod"
	"twodcache/internal/workload"
	"twodcache/internal/yield"
)

// --- bit vectors -------------------------------------------------------

// Word is a fixed-width bit vector, the unit of array reads and writes.
type Word = bitvec.Vector

// NewWord returns a zeroed Word of n bits.
func NewWord(n int) *Word { return bitvec.New(n) }

// WordFromUint64 packs the low n bits (n <= 64) of x into a Word.
func WordFromUint64(x uint64, n int) *Word { return bitvec.FromUint64(x, n) }

// WordFromBytes builds an n-bit Word from little-endian bytes.
func WordFromBytes(b []byte, n int) *Word { return bitvec.FromBytes(b, n) }

// --- per-word codes ----------------------------------------------------

// Code is a systematic per-word error code (encode, detect/correct).
type Code = ecc.Code

// HorizontalCode is the subset of codes usable as the horizontal
// dimension of a 2D-protected array (EDCn and SECDED).
type HorizontalCode = ecc.HorizontalCode

// Decode outcomes for all per-word codes.
const (
	Clean     = ecc.Clean
	Corrected = ecc.Corrected
	Detected  = ecc.Detected
)

// NewEDC returns the paper's interleaved-parity detection code EDCn
// over k data bits: n check bits detecting all contiguous <= n-bit
// errors.
func NewEDC(k, n int) (HorizontalCode, error) { return ecc.NewEDC(k, n) }

// NewSECDED returns a Hsiao single-error-correct double-error-detect
// code over k data bits ((72,64) for k=64, (266,256) for k=256).
func NewSECDED(k int) (HorizontalCode, error) { return ecc.NewSECDED(k) }

// NewSECDEDSbED returns a SECDED code extended with single-byte-error
// detection over b-bit bytes (b = 4 or 8) — the paper's low-overhead
// route to multi-bit detection with in-line correction (§3). The
// classic b=4 construction fits in plain SECDED's check-bit count.
func NewSECDEDSbED(k, b int) (HorizontalCode, error) { return ecc.NewSECDEDSbED(k, b) }

// NewDECTED returns a double-error-correct, triple-error-detect BCH
// code over k data bits.
func NewDECTED(k int) (Code, error) { return ecc.NewDECTED(k) }

// NewQECPED returns a quad-error-correct, penta-error-detect BCH code.
func NewQECPED(k int) (Code, error) { return ecc.NewQECPED(k) }

// NewOECNED returns an octal-error-correct, nona-error-detect BCH code.
func NewOECNED(k int) (Code, error) { return ecc.NewOECNED(k) }

// --- the 2D-protected array (the paper's contribution) ------------------

// ArrayConfig parameterises a 2D-protected array.
type ArrayConfig = twod.Config

// Array is a memory array protected by 2D error coding, with explicit
// check-bit and vertical-parity storage, raw fault injection
// (FlipBit/FlipParityBit) and the BIST-style recovery process.
type Array = twod.Array

// RecoveryReport summarises one recovery invocation.
type RecoveryReport = twod.RecoveryReport

// ReadStatus reports how a Read completed.
type ReadStatus = twod.ReadStatus

// Read outcomes.
const (
	ReadClean           = twod.ReadClean
	ReadCorrectedInline = twod.ReadCorrectedInline
	ReadRecovered       = twod.ReadRecovered
	ReadUncorrectable   = twod.ReadUncorrectable
)

// NewArray builds a zero-initialised 2D-protected array.
func NewArray(cfg ArrayConfig) (*Array, error) { return twod.NewArray(cfg) }

// NewPaperArray builds the paper's running example (Fig. 3(c)): an 8 kB
// array of 256 rows holding four 4-way-interleaved (72,64) EDC8
// codewords per row, with 32 vertical parity rows — correcting any
// clustered error up to 32x32 bits.
func NewPaperArray() *Array {
	h, err := ecc.NewEDC(64, 8)
	if err != nil {
		panic(err)
	}
	return twod.MustArray(twod.Config{
		Rows:           256,
		WordsPerRow:    4,
		Horizontal:     h,
		VerticalGroups: 32,
	})
}

// --- CMP simulation (Fig. 5 / Fig. 6) -----------------------------------

// SystemConfig describes a CMP baseline (Table 1).
type SystemConfig = sim.SystemConfig

// Protection selects which caches carry 2D coding.
type Protection = sim.Protection

// SimResult is one simulation run's outcome.
type SimResult = sim.Result

// SimAccessStats breaks a cache level's simulated traffic into the
// classes of Fig. 6.
type SimAccessStats = sim.AccessStats

// IPCLossReport is the matched-pair performance comparison of Fig. 5.
type IPCLossReport = sim.LossReport

// FatCMP returns the paper's fat baseline: four 4-wide OoO cores,
// dual-ported 64 kB L1 D-caches, a 16 MB shared L2.
func FatCMP() SystemConfig { return sim.FatConfig() }

// LeanCMP returns the paper's lean baseline: eight 2-wide in-order
// 4-thread cores, single-ported L1s, a 4 MB shared L2.
func LeanCMP() SystemConfig { return sim.LeanConfig() }

// Workload returns the named synthetic workload profile (OLTP, DSS,
// Web, Moldyn, Ocean, Sparse).
func Workload(name string) (workload.Profile, error) { return workload.ByName(name) }

// Workloads returns all six paper workloads.
func Workloads() []workload.Profile { return workload.Profiles() }

// RunCMP simulates the system under the protection configuration and
// workload for warmup+measure cycles, reporting IPC and the Fig. 6
// access breakdowns.
func RunCMP(cfg SystemConfig, prot Protection, wl workload.Profile, seed int64, warmup, measure uint64) (SimResult, error) {
	return sim.RunOne(cfg, prot, wl, seed, warmup, measure)
}

// MeasureIPCLoss runs the paper's matched-pair comparison of a
// protection configuration against the unprotected baseline.
func MeasureIPCLoss(cfg SystemConfig, prot Protection, wl workload.Profile, samples int, warmup, measure uint64) (IPCLossReport, error) {
	return sim.PerformanceLoss(cfg, prot, wl, samples, warmup, measure)
}

// --- yield and reliability (Fig. 8) --------------------------------------

// YieldPolicy describes repair resources (spares and/or in-line ECC).
type YieldPolicy = yield.Policy

// YieldGeometry describes the array under the yield model.
type YieldGeometry = yield.Geometry

// CacheYield returns the probability that a die with the given number
// of failing cells is shippable (Fig. 8(a)'s model).
func CacheYield(g YieldGeometry, failingCells int, pol YieldPolicy) float64 {
	return yield.Yield(g, failingCells, pol)
}

// FieldReliability parameterises the Fig. 8(b) experiment.
type FieldReliability = yield.ReliabilityConfig

// --- experiment drivers ---------------------------------------------------

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// ExperimentOptions sizes the simulation-backed experiments.
type ExperimentOptions = experiments.Options

// QuickOptions sizes experiments for smoke runs (seconds).
func QuickOptions() ExperimentOptions { return experiments.Quick() }

// FullOptions sizes experiments for the paper-style run (minutes).
func FullOptions() ExperimentOptions { return experiments.Full() }

// ExperimentIDs lists every reproducible artefact in paper order.
func ExperimentIDs() []string {
	return []string{
		"fig1b", "fig1c", "fig2", "fig3", "fig4", "tab1",
		"fig5a", "fig5b", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig8a", "fig8b",
		"abl-vint", "abl-hcode", "abl-ps", "abl-bch", "abl-wt", "abl-scrub", "abl-bisr", "abl-err", "abl-vcode", "abl-repl", "abl-hintv", "abl-miscorrect",
	}
}

// Experiment reproduces the identified table or figure, returning one
// or more tables.
func Experiment(id string, opt ExperimentOptions) ([]ExperimentTable, error) {
	one := func(t ExperimentTable) []ExperimentTable { return []ExperimentTable{t} }
	switch id {
	case "fig1b":
		return one(experiments.Fig1b()), nil
	case "fig1c":
		return one(experiments.Fig1c()), nil
	case "fig2":
		return experiments.Fig2(), nil
	case "fig3":
		return one(experiments.Fig3(opt)), nil
	case "fig4":
		return one(experiments.Fig4(opt)), nil
	case "tab1":
		return one(experiments.Table1()), nil
	case "fig5a":
		return one(experiments.Fig5(sim.FatConfig(), opt)), nil
	case "fig5b":
		return one(experiments.Fig5(sim.LeanConfig(), opt)), nil
	case "fig6a":
		return experiments.Fig6(sim.FatConfig(), opt), nil
	case "fig6b":
		return experiments.Fig6(sim.LeanConfig(), opt), nil
	case "fig7a":
		return one(experiments.Fig7(false, opt)), nil
	case "fig7b":
		return one(experiments.Fig7(true, opt)), nil
	case "fig8a":
		return one(experiments.Fig8a()), nil
	case "fig8b":
		return one(experiments.Fig8b()), nil
	case "abl-vint":
		return one(experiments.AblationVerticalInterleave(opt)), nil
	case "abl-hcode":
		return one(experiments.AblationHorizontalCode(opt)), nil
	case "abl-ps":
		return one(experiments.AblationPortStealing(opt)), nil
	case "abl-bch":
		return one(experiments.AblationBCHBits()), nil
	case "abl-wt":
		return one(experiments.AblationWriteThrough(opt)), nil
	case "abl-scrub":
		return one(experiments.AblationScrubInterval(opt)), nil
	case "abl-bisr":
		return one(experiments.AblationBISRYield(opt)), nil
	case "abl-err":
		return one(experiments.AblationRecoveryRate(opt)), nil
	case "abl-vcode":
		return one(experiments.AblationVerticalCode(opt)), nil
	case "abl-repl":
		return one(experiments.AblationReplicationCache(opt)), nil
	case "abl-hintv":
		return one(experiments.AblationHorizontalInterleave(opt)), nil
	case "abl-miscorrect":
		return one(experiments.AblationMiscorrection(opt)), nil
	default:
		return nil, fmt.Errorf("twodcache: unknown experiment %q (see ExperimentIDs)", id)
	}
}
