package ecc

import (
	"fmt"
	"math/bits"

	"twodcache/internal/bitvec"
)

// colKernel is the word-parallel H-matrix machinery shared by the
// Hsiao-style column codes (SECDED, SECDED-SbED). Instead of walking a
// codeword's set bits and XOR-ing per-bit columns, each of the r
// parity-check rows is materialised as bit masks over the codeword
// words: syndrome bit s is then the parity of (cw AND rowMask[s]),
// one OnesCount64 per word — allocation-free and independent of the
// codeword's weight.
type colKernel struct {
	k, r int
	// rowMasks[s*cwWords+wi] masks the bits of codeword word wi whose
	// parity-check column has bit s set.
	rowMasks []uint64
	cwWords  int
}

// makeColKernel builds the row masks from the per-bit columns.
func makeColKernel(k, r int, cols []uint16) colKernel {
	ck := colKernel{k: k, r: r, cwWords: bitvec.WordsFor(k + r)}
	ck.rowMasks = make([]uint64, r*ck.cwWords)
	for j, c := range cols {
		for s := 0; s < r; s++ {
			if c&(1<<uint(s)) != 0 {
				ck.rowMasks[s*ck.cwWords+j/64] |= 1 << uint(j%64)
			}
		}
	}
	return ck
}

// syndromeWords computes H*cw over the raw codeword words.
func (ck *colKernel) syndromeWords(w []uint64) uint16 {
	var syn uint16
	for s := 0; s < ck.r; s++ {
		var acc uint64
		row := ck.rowMasks[s*ck.cwWords : (s+1)*ck.cwWords]
		for wi, m := range row {
			acc ^= w[wi] & m
		}
		syn |= uint16(bits.OnesCount64(acc)&1) << uint(s)
	}
	return syn
}

// encodeInto writes data plus its check bits into cw. Because the
// check-bit columns are the identity, the syndrome of (data || 0) is
// exactly the check-bit value.
func (ck *colKernel) encodeInto(cw, data bitvec.Codeword, name string) {
	if data.Len() != ck.k || cw.Len() != ck.k+ck.r {
		panic(fmt.Sprintf("ecc: %s EncodeInto lengths cw=%d data=%d want %d/%d",
			name, cw.Len(), data.Len(), ck.k+ck.r, ck.k))
	}
	cw.Zero()
	copy(cw.Words(), data.Words())
	cw.StoreBits(ck.k, ck.r, uint64(ck.syndromeWords(cw.Words())))
}

// decodeInPlace runs the shared SEC-DED decision procedure: zero
// syndrome is clean, even-weight syndromes are detected-uncorrectable,
// and an odd-weight syndrome matching a column (via colIndex, mapping
// column pattern to bit position + 1) flips that bit.
func (ck *colKernel) decodeInPlace(cw bitvec.Codeword, colIndex map[uint16]int, name string) (Result, int) {
	if cw.Len() != ck.k+ck.r {
		panic(fmt.Sprintf("ecc: %s codeword length %d != %d", name, cw.Len(), ck.k+ck.r))
	}
	syn := ck.syndromeWords(cw.Words())
	if syn == 0 {
		return Clean, 0
	}
	if bits.OnesCount16(syn)%2 == 0 {
		// Even, nonzero: double-bit error.
		return Detected, 0
	}
	if j := colIndex[syn]; j != 0 {
		cw.Flip(j - 1)
		return Corrected, 1
	}
	// Odd-weight syndrome not matching any column: >= 3 errors.
	return Detected, 0
}
