package netsrv

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// blackHoleServer accepts connections and reads frames forever without
// ever responding — the deterministic way to park many pipelined calls
// in their response-wait select.
func blackHoleServer(t *testing.T) (net.Listener, *atomic.Uint64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var frames atomic.Uint64
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					if _, err := readFrame(c); err != nil {
						return
					}
					frames.Add(1)
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l, &frames
}

// TestClientCloseReleasesAllWaiters pins that Close fails every parked
// in-flight call with an error wrapping ErrClosed — no waiter hangs, no
// waiter sees a bare nil-and-garbage success.
func TestClientCloseReleasesAllWaiters(t *testing.T) {
	l, frames := blackHoleServer(t)
	c := dial(t, l.Addr().String())

	const waiters = 32
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			_, err := c.Read(uint64(i*64), 64)
			errs <- err
		}(i)
	}
	// Every request must be on the wire before Close, or the test would
	// pass trivially via the call-entry closed check.
	deadline := time.Now().Add(5 * time.Second)
	for frames.Load() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d frames reached the server", frames.Load(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("waiter error = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still parked after Close", i)
		}
	}
	// Post-close calls fail immediately with the same sentinel.
	if _, err := c.Read(0, 64); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Read error = %v, want ErrClosed", err)
	}
}

// TestClientCloseRace hammers a real server with pipelined traffic from
// many goroutines while Close races in from several more, under -race.
// Every outcome must be a clean success or an error wrapping ErrClosed
// (never a deadlock, never a mystery error), and the client's goroutines
// must all exit.
func TestClientCloseRace(t *testing.T) {
	st, _ := newStore(t, 2, resilience.Config{})
	_, addr := startServer(t, st, Config{})

	base := runtime.NumGoroutine()
	const rounds = 8
	for round := 0; round < rounds; round++ {
		c := dial(t, addr)
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, 64)
				for i := 0; ; i++ {
					a := uint64((w*97 + i) % 128 * 64)
					var err error
					if i%3 == 0 {
						err = c.Write(a, buf)
					} else if i%7 == 0 {
						ops := []pcache.ReadOp{{Addr: a, Dst: make([]byte, 64)}}
						_, err = c.ReadBatchCtx(context.Background(), ops)
					} else {
						_, err = c.Read(a, 64)
					}
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("worker %d: error = %v, want ErrClosed", w, err)
						}
						return
					}
				}
			}(w)
		}
		// Let traffic build, then slam Close from several goroutines at
		// once — Close must be idempotent and race-free.
		time.Sleep(5 * time.Millisecond)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); c.Close() }()
		}
		wg.Wait()
	}

	// The readLoop of every closed client must have exited: allow the
	// runtime a moment to reap, then compare against the baseline with
	// slack for the server's own transient accept goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
