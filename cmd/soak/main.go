// Soak runs the online resilience engine under fire: N client
// goroutines read and write through a ResilientCache while a
// continuous Poisson fault storm upsets the protected arrays and the
// traffic-aware background scrubber sweeps them, for a bounded
// duration. Every client checks its reads against a private shadow
// model using the loss-epoch protocol: a mismatch is legitimate only
// if the set's loss epoch advanced (a reported DUE led to a repair or
// decommission) since the value was written — otherwise it is SILENT
// corruption and the run fails. On success the health report is
// printed and the process exits 0.
//
// The storm flips at most one bit per currently-clean word per event —
// within the horizontal code's guaranteed detection — so every
// corruption is detectable; whether it is *correctable* is up to the
// 2D code, and the escalation ladder absorbs the remainder. This keeps
// "zero silent corruptions" a hard invariant rather than a statistical
// hope.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twodcache"
	"twodcache/internal/fault"
	"twodcache/internal/replay"
	"twodcache/internal/twod"
)

// replayMain deterministically re-executes a recorded (or shrunk)
// trace single-threaded and applies the soak's pass/fail rules to the
// replayed taxonomy. Traces declaring "expect silent" are harness
// self-validation traces and must go silent; every other trace must
// not.
func replayMain(path string) int {
	tr, err := replay.ParseFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}
	res, err := replay.Run(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak: replay:", err)
		return 2
	}
	for _, d := range res.SilentDetails {
		fmt.Fprintln(os.Stderr, "soak: "+d)
	}
	fmt.Printf("soak: replayed %d events (%d client ops, %d flips applied, %d gated)\n",
		len(tr.Events), res.Ops, res.FlipsApplied, res.FlipsSkipped)
	fmt.Print(res.Report.String())
	fmt.Printf("  accounting:  %d accounted losses, %d ladder-exhausted DUEs, %d SILENT corruptions\n",
		res.Accounted, res.Reported, res.Silent)
	fmt.Printf("  state hash:  %016x\n", res.StateHash)
	if tr.ExpectSilent {
		if res.Silent == 0 {
			fmt.Println("soak: FAIL — self-validation trace did not go silent")
			return 1
		}
		fmt.Println("soak: PASS — self-validation trace classified silent, as declared")
		return 0
	}
	if res.Silent > 0 {
		fmt.Println("soak: FAIL — silent corruption detected")
		return 1
	}
	fmt.Println("soak: PASS — every mismatch accounted for by a reported DUE/decommission")
	return 0
}

func main() {
	var (
		duration      = flag.Duration("duration", 2*time.Second, "soak duration")
		clients       = flag.Int("clients", 4, "concurrent reader/writer goroutines")
		sets          = flag.Int("sets", 64, "cache sets")
		ways          = flag.Int("ways", 4, "cache ways")
		banks         = flag.Int("banks", 8, "independently locked banks")
		shards        = flag.Int("shards", 1, "independent storage shards striping the line space (power of two; per-shard geometry is -sets/-ways/-banks)")
		lineBytes     = flag.Int("line", 64, "line size in bytes")
		secded        = flag.Bool("secded", false, "SECDED horizontal code instead of EDC8")
		spares        = flag.Int("spares", 8, "spare-row budget for remapping")
		faultInterval = flag.Duration("fault-interval", 500*time.Microsecond, "mean time between fault events")
		scrubInterval = flag.Duration("scrub-interval", 2*time.Millisecond, "pause between scrub sweeps")
		highRate      = flag.Float64("scrub-high-rate", 200_000, "accesses/sec above which the scrubber backs off")
		seed          = flag.Int64("seed", 1, "random seed")
		statsEvery    = flag.Duration("stats-interval", 500*time.Millisecond, "period of the live stats line (0 disables)")
		httpAddr      = flag.String("http", "", "serve expvar (/debug/vars) and Prometheus text (/metrics) on this address")
		recordPath    = flag.String("record", "", "record the run's event trace to this file (order is exact with -banks 1, best-effort otherwise)")
		replayPath    = flag.String("replay", "", "deterministically replay a recorded or shrunk trace instead of running live (load/fault flags are ignored)")
		selftestPoke  = flag.Bool("selftest-corrupt-backing", false, "harness self-validation: continuously corrupt the backing store behind the cache's back; the run MUST then FAIL with silent corruption (run with the storm slowed so no loss epoch moves)")
		p99Budget     = flag.Duration("p99-budget", 0, "SLO mode: every read carries this deadline, and the run FAILS (exit 3) unless 99% of reads complete within it")
		repairBudget  = flag.Duration("repair-budget", 50*time.Millisecond, "recovery watchdog force-escalates repairs older than this (watchdog runs in SLO/chaos modes)")
		chaosStall    = flag.Duration("chaos-stall-recovery", 0, "chaos: wedge every full-2D recovery rung for this long — the watchdog must force-escalate instead of hanging")
	)
	flag.Parse()
	if *replayPath != "" {
		os.Exit(replayMain(*replayPath))
	}
	if *clients < 1 {
		fmt.Fprintln(os.Stderr, "soak: need at least one client")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "soak: shards %d must be at least 1\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *recordPath != "" {
		// Trace recording leans on a single engine's bank-lock commit
		// order; N engines interleave independently, so a recorded
		// multi-shard run could not replay deterministically.
		fmt.Fprintln(os.Stderr, "soak: -record requires -shards 1")
		os.Exit(2)
	}

	// Chaos mode: arm a stall point inside the full-2D rung. Every
	// recovery that reaches it wedges for the armed duration, and only
	// the watchdog's force-escalation keeps the run from hanging.
	var stall *fault.Stall
	if *chaosStall > 0 {
		stall = new(fault.Stall)
		stall.Arm(*chaosStall)
	}

	backing := twodcache.NewMemoryBacking(*lineBytes)
	reg := twodcache.NewMetricsRegistry()
	ccfg := twodcache.ProtectedCacheConfig{
		Sets: *sets, Ways: *ways, LineBytes: *lineBytes,
		SECDEDHorizontal: *secded, Banks: *banks,
	}
	rcfg := twodcache.ResilienceConfig{
		SpareRows: *spares, Metrics: reg, RecoveryStall: stall,
	}
	needWatchdog := *p99Budget > 0 || *chaosStall > 0

	// The store under test: one engine, or N independent engines behind
	// the sharded router. The single-engine path is kept verbatim (its
	// scrub/record interplay below depends on it); the sharded path owns
	// its scrubbers and watchdogs via Start/Stop.
	var (
		st      twodcache.CacheStore
		sharded *twodcache.ShardedCache
		engines []*twodcache.ResilientCache
		scrub1  *twodcache.CacheScrubber
	)
	if *shards <= 1 {
		eng, err := twodcache.NewResilientCache(ccfg, backing, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(2)
		}
		st = eng
		engines = []*twodcache.ResilientCache{eng}
		scrub1 = eng.NewScrubber(twodcache.ScrubberConfig{
			Interval: *scrubInterval,
			HighRate: *highRate,
		})
		if needWatchdog {
			wd := eng.NewWatchdog(twodcache.RecoveryWatchdogConfig{Budget: *repairBudget})
			wd.Start()
			defer wd.Stop()
		}
	} else {
		scfg := twodcache.ShardedCacheConfig{
			Shards:     *shards,
			Cache:      ccfg,
			Resilience: rcfg,
			Scrubber: &twodcache.ScrubberConfig{
				Interval: *scrubInterval,
				HighRate: *highRate,
			},
		}
		if needWatchdog {
			scfg.Watchdog = &twodcache.RecoveryWatchdogConfig{Budget: *repairBudget}
		}
		var err error
		sharded, err = twodcache.NewShardedCache(scfg, backing)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(2)
		}
		st = sharded
		for i := 0; i < sharded.NumShards(); i++ {
			engines = append(engines, sharded.Shard(i))
		}
		sharded.Start()
		defer sharded.Stop()
	}
	// locate maps a global address to its owning engine and that
	// engine's local address — the repair/loss-epoch oracle must talk to
	// the shard that actually holds the line.
	locate := func(addr uint64) (*twodcache.ResilientCache, uint64) {
		if sharded == nil {
			return engines[0], addr
		}
		return sharded.Locate(addr)
	}
	repairAt := func(addr uint64) {
		e, la := locate(addr)
		e.Cache().Repair(la)
	}
	epochOf := func(addr uint64) uint64 {
		e, la := locate(addr)
		return e.Cache().LossEpoch(int((la / uint64(*lineBytes)) % uint64(*sets)))
	}

	// SLO mode records every read's end-to-end latency into a histogram
	// whose bucket bounds include the budget itself, so the pass/fail
	// count (CountLE) is EXACT — never interpolated.
	var readLat *twodcache.LatencyHistogram
	if *p99Budget > 0 {
		readLat = reg.Histogram("soak_read_seconds",
			"end-to-end client read latency (SLO mode)", sloBounds(*p99Budget)...)
	}

	// Optional trace recording for offline deterministic replay
	// (-replay) and shrinking (cmd/tracehunt). Events are appended in
	// completion order: with a single bank that matches the bank-lock
	// commit order, so the replayed run walks the same state sequence;
	// with several banks the recorded interleaving is best-effort.
	// Geometry defaults (VerticalGroups, MaxRetries) mirror the engine's.
	var rec *replay.Recorder
	if *recordPath != "" {
		rec = replay.NewRecorder(replay.Config{
			Sets: *sets, Ways: *ways, LineBytes: *lineBytes, Banks: *banks,
			VerticalGroups: 32, SECDED: *secded, SpareRows: *spares, MaxRetries: 1,
		})
	}

	// Serve the registry over expvar (/debug/vars) and Prometheus text
	// (/metrics) when asked. The registry snapshots on demand, so both
	// endpoints always return coherent, clamped values. The server is
	// owned — private mux, synchronous Listen so a bad address fails the
	// run at startup instead of silently soaking without metrics, and an
	// explicit Shutdown during the drain so no accept loop outlives the
	// report.
	var httpSrv *http.Server
	if *httpAddr != "" {
		reg.PublishExpvar("twodcache")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", http.DefaultServeMux)
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak: http:", err)
			os.Exit(2)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "soak: http:", err)
			}
		}()
		fmt.Printf("soak: serving /debug/vars and /metrics on %s\n", hl.Addr())
	}

	// The run ends at the deadline OR on SIGINT/SIGTERM: either way the
	// context is cancelled, the workers drain, and the final obs-backed
	// report below always prints.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var (
		silent     atomic.Uint64 // UNACCOUNTED mismatches: must stay zero
		accounted  atomic.Uint64 // mismatches explained by a loss-epoch advance
		reported   atomic.Uint64 // DUEs surfaced to clients even after the ladder
		sloAborts  atomic.Uint64 // reads abandoned at their deadline (SLO mode)
		clientOps  atomic.Uint64
		wg         sync.WaitGroup
		scrubDone  = make(chan struct{})
		stormDone  = make(chan struct{})
		stormCount atomic.Uint64
	)

	// Background scrubber. Sharded runs scrub per shard via Start above;
	// the single-engine path drives its scrubber here. When recording,
	// sweeps run bank by bank so each one lands in the trace
	// (traffic-aware backoff is skipped — a recorded run favours
	// reproducibility over load shaping).
	go func() {
		defer close(scrubDone)
		if scrub1 == nil {
			return
		}
		if rec == nil {
			_ = scrub1.Run(ctx)
			return
		}
		ticker := time.NewTicker(*scrubInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for i := 0; i < engines[0].Cache().NumBanks(); i++ {
				rec.Scrub(i)
				scrub1.SweepBank(i)
			}
		}
	}()

	// Continuous Poisson fault storm. Each event lands under the bank
	// lock so it races traffic at event granularity, never mid-word,
	// and only strikes currently-clean words (see package comment).
	go func() {
		defer close(stormDone)
		storm := fault.NewStorm(fault.StormConfig{Seed: *seed, MeanInterval: *faultInterval})
		rng := rand.New(rand.NewSource(*seed + 7))
		// Every shard is its own protection domain: aim each event at a
		// uniformly chosen (shard, bank) pair so storms cover all of them.
		banksPer := engines[0].Cache().NumBanks()
		oneEvent := func() {
			gi := rng.Intn(len(engines) * banksPer)
			c, bi := engines[gi/banksPer].Cache(), gi%banksPer
			hitTags := rng.Intn(4) == 0
			c.WithBankLock(bi, func(data, tags *twod.Array) {
				a := data
				if hitTags {
					a = tags
				}
				p := storm.NextEvent(a.Rows(), a.RowBits())
				for _, fl := range p.Flips {
					if rec != nil {
						// Record the attempt; replay re-applies the same
						// clean-word gate below, so gating stays sound
						// even after the shrinker removes other events.
						rec.Flip(bi, hitTags, fl.Row, fl.Col)
					}
					w, _ := a.Layout().Locate(fl.Col)
					if _, ok := a.TryRead(fl.Row, w); ok {
						a.FlipBit(fl.Row, fl.Col)
					}
				}
				stormCount.Add(1)
			})
		}
		// Sub-millisecond inter-arrival times are far below Go timer
		// granularity, so drive the Poisson process from a 1ms ticker
		// and drain every arrival that fell due within the tick.
		const tick = time.Millisecond
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		pending := storm.NextDelay()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for pending -= tick; pending <= 0; pending += storm.NextDelay() {
				oneEvent()
			}
		}
	}()

	// Live stats line, straight off coherent registry snapshots.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		if *statsEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		start := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			s := reg.Snapshot()
			if sharded == nil {
				lat := s.Histogram("resilience_ladder_seconds")
				fmt.Printf("soak: t=%5.1fs acc=%d hits=%d dues=%d mttr=%v scrubs=%d victims=%d disabled=%d faults=%d\n",
					time.Since(start).Seconds(),
					s.Counter("pcache_accesses_total"),
					s.Counter("pcache_hits_total"),
					s.Counter("resilience_dues_total"),
					lat.Mean().Round(time.Microsecond),
					s.Counter("scrub_passes_total"),
					s.Counter("scrub_victims_total"),
					s.Gauge("pcache_disabled_ways"),
					stormCount.Load())
				continue
			}
			// Sharded line: store_* aggregates plus per-shard sums
			// (every shard's metrics live under its prefix).
			var dues, scrubs, victims uint64
			var disabled int64
			for i := range engines {
				dues += s.Counter(fmt.Sprintf("shard%d_resilience_dues_total", i))
				scrubs += s.Counter(fmt.Sprintf("shard%d_scrub_passes_total", i))
				victims += s.Counter(fmt.Sprintf("shard%d_scrub_victims_total", i))
				disabled += s.Gauge(fmt.Sprintf("shard%d_pcache_disabled_ways", i))
			}
			fmt.Printf("soak: t=%5.1fs acc=%d hits=%d dues=%d scrubs=%d victims=%d disabled=%d faults=%d (%d shards)\n",
				time.Since(start).Seconds(),
				s.Counter("store_accesses_total"),
				s.Counter("store_hits_total"),
				dues, scrubs, victims, disabled,
				stormCount.Load(), len(engines))
		}
	}()

	// Clients: disjoint line ownership (line % clients == id), private
	// shadow model, loss-epoch accounting. 4x the total sets: plenty of
	// conflict misses.
	lines := uint64(4 * *sets * len(engines))

	// Self-validation of the oracle and the exit path: corrupt the
	// backing store behind the cache's back, which no reported DUE or
	// decommission can ever account for. Clean-evicted lines refill with
	// the corrupted bytes, so the run must detect SILENT corruption and
	// exit non-zero — if it does not, the oracle itself is broken.
	if *selftestPoke {
		go func() {
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				for l := uint64(0); l < lines; l++ {
					la := l * uint64(*lineBytes)
					b := backing.ReadLine(la)
					for i := range b {
						b[i] ^= 0xFF
					}
					backing.WriteLine(la, b)
				}
			}
		}()
	}
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(100+id)))
			shadow := map[uint64]byte{}
			wep := map[uint64]uint64{}
			var owned []uint64
			for l := uint64(id); l < lines; l += uint64(*clients) {
				owned = append(owned, l)
			}
			for ctx.Err() == nil {
				clientOps.Add(1)
				l := owned[rng.Intn(len(owned))]
				addr := l*uint64(*lineBytes) + uint64(rng.Intn(*lineBytes))
				if rng.Intn(5) < 2 { // 40% writes
					val := byte(rng.Intn(256))
					if rec != nil {
						rec.Write(id, addr, val)
					}
					// Capture the epoch BEFORE the write: a degrade racing
					// the write then shows an advance, never a stale record.
					e0 := epochOf(addr)
					if err := st.Write(addr, []byte{val}); err != nil {
						reported.Add(1)
						repairAt(addr)
						delete(shadow, addr)
						continue
					}
					shadow[addr] = val
					wep[addr] = e0
					continue
				}
				want, tracked := shadow[addr]
				if rec != nil {
					rec.Read(id, addr)
				}
				var got []byte
				var err error
				if *p99Budget > 0 {
					// SLO mode: the read carries its own deadline and gives
					// up on an in-flight repair rather than riding it past
					// budget. Deliberately parented on Background, not the
					// run context, so shutdown does not masquerade as abort.
					rctx, rcancel := context.WithTimeout(context.Background(), *p99Budget)
					t0 := time.Now()
					got, err = st.ReadCtx(rctx, addr, 1)
					readLat.Observe(time.Since(t0))
					rcancel()
					if errors.Is(err, twodcache.ErrRecoveryInProgress) {
						sloAborts.Add(1)
					}
				} else {
					got, err = st.Read(addr, 1)
				}
				if err != nil {
					// The ladder itself gave up (or the deadline abandoned
					// it) — still a *reported* event, never silent. Repair
					// and drop the stale expectation.
					reported.Add(1)
					repairAt(addr)
					delete(shadow, addr)
					continue
				}
				if tracked && got[0] != want {
					if epochOf(addr) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x: got %d want %d (loss epoch unmoved)\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
					// Either way the cache's view is now authoritative.
					e0 := epochOf(addr)
					shadow[addr] = got[0]
					wep[addr] = e0
				}
			}

			// Final sweep: after the storm stops, every tracked byte must
			// still be explained.
			<-stormDone
			for addr, want := range shadow {
				got, err := st.Read(addr, 1)
				if err != nil {
					reported.Add(1)
					repairAt(addr)
					continue
				}
				if got[0] != want {
					if epochOf(addr) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x on final sweep: got %d want %d\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
				}
			}
		}(id)
	}

	wg.Wait()
	interrupted := ctx.Err() != nil && context.Cause(ctx) != context.DeadlineExceeded
	cancel()
	<-scrubDone
	<-stormDone
	<-statsDone
	if httpSrv != nil {
		hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintln(os.Stderr, "soak: http shutdown:", err)
		}
		hcancel()
	}
	if err := st.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "soak: final flush:", err)
	}
	if rec != nil {
		// The replayer performs its own final shadow sweep, so the trace
		// ends with the last recorded event.
		if err := rec.SaveFile(*recordPath); err != nil {
			fmt.Fprintln(os.Stderr, "soak: record:", err)
		} else {
			fmt.Printf("soak: recorded %d events to %s\n", len(rec.Trace().Events), *recordPath)
		}
	}

	if interrupted {
		fmt.Println("soak: interrupted — drained workers, printing final report")
	}
	fmt.Printf("soak: %v, %d clients, %d client ops, %d fault events\n",
		*duration, *clients, clientOps.Load(), stormCount.Load())
	var watchdogFires uint64
	if sharded == nil {
		rep := engines[0].Report()
		watchdogFires = rep.WatchdogFires
		fmt.Print(rep.String())
	} else {
		ss := st.Stats()
		fmt.Printf("  store:       %d shards, %d accesses (%.1f%% hit rate), %d writebacks\n",
			len(engines), ss.Accesses,
			100*float64(ss.Hits)/float64(max(ss.Hits+ss.Misses, 1)), ss.Writebacks)
		for i, e := range engines {
			r := e.Report()
			watchdogFires += r.WatchdogFires
			fmt.Printf("  shard %d:     %d DUEs, %d recoveries, %d decommissions, %d remaps, %d scrub passes, %d watchdog fires\n",
				i, r.DUEs, r.RetrySuccesses+r.WordRecoveries+r.FullRecoveries, r.Decommissions, r.Remaps,
				r.ScrubPasses, r.WatchdogFires)
		}
	}
	fmt.Printf("  accounting:  %d accounted losses, %d ladder-exhausted DUEs, %d SILENT corruptions\n",
		accounted.Load(), reported.Load(), silent.Load())
	if stall != nil {
		fmt.Printf("  chaos:       full-2D stall armed at %v, engaged %d times, %d watchdog force-escalations\n",
			*chaosStall, stall.Fired(), watchdogFires)
	}

	// Corruption dominates every other verdict: a run that lies about
	// data MUST exit 1 even if it also blew its latency budget.
	if silent.Load() > 0 {
		fmt.Println("soak: FAIL — silent corruption detected")
		os.Exit(1)
	}
	if *p99Budget > 0 {
		h := reg.Snapshot().Histogram("soak_read_seconds")
		within, exact := h.CountLE(*p99Budget)
		mark := "="
		if !exact {
			mark = "<=" // cannot happen: the budget is a bucket bound
		}
		fmt.Printf("soak: slo: %d/%d reads (p99%s%v) within budget %v, %d deadline aborts\n",
			within, h.Count, mark, h.Quantile(0.99).Round(time.Microsecond), *p99Budget, sloAborts.Load())
		if h.Count > 0 && float64(within) < 0.99*float64(h.Count) {
			fmt.Println("soak: FAIL — p99 read latency over budget")
			os.Exit(3)
		}
	}
	fmt.Println("soak: PASS — every mismatch accounted for by a reported DUE/decommission")
}

// sloBounds builds latency histogram bounds bracketing the budget, with
// the budget itself as an exact bound so CountLE(budget) never has to
// interpolate across a bucket.
func sloBounds(budget time.Duration) []time.Duration {
	var bs []time.Duration
	add := func(d time.Duration) {
		if d <= 0 {
			return
		}
		for _, x := range bs {
			if x == d {
				return
			}
		}
		bs = append(bs, d)
	}
	for _, div := range []int64{16, 8, 4, 2} {
		add(budget / time.Duration(div))
	}
	add(budget)
	for _, mul := range []int64{2, 4, 8, 16, 64} {
		add(budget * time.Duration(mul))
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return bs
}
