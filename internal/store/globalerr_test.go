package store

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// startSink records RecoveryStart coordinates (already globalised by
// shardSink) so tests can cross-check them against returned errors.
type startSink struct {
	obs.NopSink
	arrays chan string
	sets   chan int
}

func (r *startSink) RecoveryStart(array string, set, way int) {
	select {
	case r.arrays <- array:
	default:
	}
	select {
	case r.sets <- set:
	default:
	}
}

// TestShardedGlobalisesErrorCoordinates pins the router-boundary error
// rewrite: a fault planted at a known GLOBAL set on shard 1 must
// surface that same global set (and the shard's bank offset and array
// label) in the returned typed error, agreeing with the event stream —
// not the shard-local coordinates the engine works in.
func TestShardedGlobalisesErrorCoordinates(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour) // wedge the full-2D rung so the deadline fires
	sink := &startSink{
		arrays: make(chan string, 8),
		sets:   make(chan int, 8),
	}
	backing := pcache.NewMapBacking(64)
	s, err := New(Config{
		Shards:     2,
		Cache:      pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 1},
		Resilience: resilience.Config{Sink: sink, RecoveryStall: &stall},
	}, backing)
	if err != nil {
		t.Fatal(err)
	}

	// Plant a persistent beyond-coverage DUE at shard 1's LOCAL set 0
	// (= global set 32): two dirty lines whose data rows share a
	// vertical group and an EDC8 parity column, so neither in-line
	// recovery nor a backing refetch can satisfy the read.
	c := s.Shard(1).Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(16*64, []byte{0xA5}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))

	// Global line 1 → shard 1, local line 0. The wedged repair plus a
	// short deadline force a *RecoveryInProgressError out of the router.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = s.ReadCtx(ctx, 1*64, 1)
	if !errors.Is(err, resilience.ErrRecoveryInProgress) {
		t.Fatalf("err = %v, want ErrRecoveryInProgress in chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded still in chain", err)
	}
	var rip *resilience.RecoveryInProgressError
	if !errors.As(err, &rip) {
		t.Fatalf("err = %T, want *RecoveryInProgressError", err)
	}
	if rip.Set != 32 { // local set 0 + 1×32
		t.Fatalf("error set = %d, want globalised 32", rip.Set)
	}
	if rip.Bank != 1 { // local bank 0 + 1×1
		t.Fatalf("error bank = %d, want globalised 1", rip.Bank)
	}
	if rip.Array != "shard1/data" {
		t.Fatalf("error array = %q, want shard1/data", rip.Array)
	}

	// The event stream must agree with the error on where the fault is.
	select {
	case set := <-sink.sets:
		if set != rip.Set {
			t.Fatalf("event set %d != error set %d", set, rip.Set)
		}
	default:
		t.Fatal("no RecoveryStart event reached the sink")
	}
	select {
	case a := <-sink.arrays:
		if a != rip.Array {
			t.Fatalf("event array %q != error array %q", a, rip.Array)
		}
	default:
		t.Fatal("no RecoveryStart array label reached the sink")
	}
}

// TestGlobalErrRewrite unit-tests the rewrite itself: both typed errors
// gain shard offsets, sentinel chains survive, unknown coordinates and
// untyped errors pass through.
func TestGlobalErrRewrite(t *testing.T) {
	s, _ := newSharded(t, 4) // testCfg: 16 sets, 4 banks per shard
	ue := fmt.Errorf("wrapped: %w", &pcache.UncorrectableError{Array: pcache.ArrayData, Set: 3, Way: 1})
	got := s.globalErr(2, ue)
	var gue *pcache.UncorrectableError
	if !errors.As(got, &gue) {
		t.Fatalf("rewrite lost the type: %T", got)
	}
	if gue.Array != "shard2/data" || gue.Set != 3+2*16 || gue.Way != 1 {
		t.Fatalf("rewrote to %+v", gue)
	}
	if !errors.Is(got, pcache.ErrUncorrectable) {
		t.Fatal("rewrite broke the ErrUncorrectable chain")
	}

	rip := &resilience.RecoveryInProgressError{
		Bank: 1, Array: pcache.ArrayTags, Set: 5, Way: 0,
		Rung: "full-2d", Elapsed: time.Second, Err: context.DeadlineExceeded,
	}
	got = s.globalErr(3, rip)
	var grip *resilience.RecoveryInProgressError
	if !errors.As(got, &grip) {
		t.Fatalf("rewrite lost the type: %T", got)
	}
	if grip.Bank != 1+3*4 || grip.Set != 5+3*16 || grip.Array != "shard3/tags" {
		t.Fatalf("rewrote to %+v", grip)
	}
	if grip.Rung != "full-2d" || grip.Elapsed != time.Second {
		t.Fatalf("rewrite dropped progress: %+v", grip)
	}
	if !errors.Is(got, resilience.ErrRecoveryInProgress) || !errors.Is(got, context.DeadlineExceeded) {
		t.Fatal("rewrite broke the sentinel/cause chain")
	}

	// Unknown coordinates (-1) and untyped errors pass through.
	got = s.globalErr(1, &pcache.UncorrectableError{Array: pcache.ArrayData, Set: -1, Way: -1})
	errors.As(got, &gue)
	if gue.Set != -1 || gue.Way != -1 {
		t.Fatalf("unknown coordinates rewritten: %+v", gue)
	}
	plain := errors.New("plain")
	if s.globalErr(1, plain) != plain {
		t.Fatal("untyped error not passed through")
	}
	if s.globalErr(1, nil) != nil {
		t.Fatal("nil not passed through")
	}
}
