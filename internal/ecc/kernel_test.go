package ecc

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
)

// randData builds a random k-bit data vector.
func randData(rng *rand.Rand, k int) *bitvec.Vector {
	v := bitvec.New(k)
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// TestKernelMatchesVectorPath cross-checks EncodeInto/DecodeInPlace
// against Encode/Decode for every registered code over random data and
// random error patterns of increasing weight.
func TestKernelMatchesVectorPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range Registry() {
		k, n := c.DataBits(), CodewordBits(c)
		cwBuf := make([]uint64, bitvec.WordsFor(n))
		for trial := 0; trial < 50; trial++ {
			data := randData(rng, k)
			want := c.Encode(data)
			kcw := bitvec.MakeCodeword(cwBuf, n)
			c.EncodeInto(kcw, data.AsCodeword())
			if !kcw.Equal(want.AsCodeword()) {
				t.Fatalf("%s: EncodeInto != Encode\n got %v\nwant %v", c.Name(), kcw.Words(), want.Words())
			}
			// Inject 0..DetectCapability+1 random flips into both copies.
			nerr := rng.Intn(c.DetectCapability() + 2)
			vcw := want.Clone()
			for _, p := range rng.Perm(n)[:nerr] {
				vcw.Flip(p)
				kcw.Flip(p)
			}
			vres, vn := c.Decode(vcw)
			kres, kn := c.DecodeInPlace(kcw)
			if vres != kres || vn != kn {
				t.Fatalf("%s: %d errors: DecodeInPlace (%v,%d) != Decode (%v,%d)",
					c.Name(), nerr, kres, kn, vres, vn)
			}
			if !kcw.Equal(vcw.AsCodeword()) {
				t.Fatalf("%s: %d errors: corrected codewords differ", c.Name(), nerr)
			}
		}
	}
}

// TestHorizontalSyndromeWordsMatch pins SyndromeWords to SyndromeBits
// for every horizontal code.
func TestHorizontalSyndromeWordsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, c := range Registry() {
		h, ok := c.(HorizontalCode)
		if !ok {
			continue
		}
		n := CodewordBits(h)
		for trial := 0; trial < 100; trial++ {
			cw := h.Encode(randData(rng, h.DataBits()))
			for i := rng.Intn(4); i > 0; i-- {
				cw.Flip(rng.Intn(n))
			}
			if got, want := h.SyndromeWords(cw.AsCodeword()), h.SyndromeBits(cw); got != want {
				t.Fatalf("%s: SyndromeWords %#x != SyndromeBits %#x", h.Name(), got, want)
			}
		}
	}
}

// TestKernelAllocFree verifies the parity/Hsiao kernels perform zero
// heap allocations per op — the contract the twod/pcache hot paths
// build on. (BCH kernels amortise via a pool and are exempt.)
func TestKernelAllocFree(t *testing.T) {
	for _, c := range []Code{MustEDC(64, 8), MustEDC(64, 16), MustSECDED(64), MustSECDEDSBD(64)} {
		n := CodewordBits(c)
		dataBuf := []uint64{0xDEADBEEFCAFEF00D}
		cwBuf := make([]uint64, bitvec.WordsFor(n))
		data := bitvec.MakeCodeword(dataBuf, 64)
		cw := bitvec.MakeCodeword(cwBuf, n)
		if a := testing.AllocsPerRun(200, func() { c.EncodeInto(cw, data) }); a != 0 {
			t.Errorf("%s: EncodeInto allocates %.1f/op", c.Name(), a)
		}
		c.EncodeInto(cw, data)
		if a := testing.AllocsPerRun(200, func() { c.DecodeInPlace(cw) }); a != 0 {
			t.Errorf("%s: DecodeInPlace (clean) allocates %.1f/op", c.Name(), a)
		}
		h := c.(HorizontalCode)
		if a := testing.AllocsPerRun(200, func() { h.SyndromeWords(cw) }); a != 0 {
			t.Errorf("%s: SyndromeWords allocates %.1f/op", c.Name(), a)
		}
	}
}

// FuzzKernelVsVector drives random data words plus injected error
// patterns through both the legacy Encode/Decode path and the new
// EncodeInto/DecodeInPlace kernels for every code in the registry;
// outcomes, corrected bit counts, and resulting codewords must match
// exactly.
func FuzzKernelVsVector(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0xDEADBEEF), uint64(1)<<63, uint64(3))
	f.Add(^uint64(0), uint64(0x8000000000000001), ^uint64(0))
	// Seeds aimed at non-power-of-two EDC widths: bursts that straddle a
	// group boundary only when n does not divide the word evenly.
	f.Add(uint64(0xA5A5_5A5A_0F0F_F0F0), uint64(0x7FF)<<9, uint64(0))
	f.Add(uint64(0x0123_4567_89AB_CDEF), uint64(0x1F)<<59, uint64(0x1F))
	// Beyond the curated 64-bit power-of-two registry: EDCn with n not a
	// power of two (group masks of uneven width) must agree too.
	codes := append(Registry(), MustEDC(64, 11), MustEDC(64, 24), MustEDC(48, 8))
	f.Fuzz(func(t *testing.T, dataBits, errLo, errHi uint64) {
		for _, c := range codes {
			k, n := c.DataBits(), CodewordBits(c)
			data := bitvec.New(k)
			for i := 0; i < k && i < 64; i++ {
				if dataBits&(1<<uint(i)) != 0 {
					data.Set(i, true)
				}
			}
			vcw := c.Encode(data)
			kcw := bitvec.MakeCodeword(make([]uint64, bitvec.WordsFor(n)), n)
			c.EncodeInto(kcw, data.AsCodeword())
			if !kcw.Equal(vcw.AsCodeword()) {
				t.Fatalf("%s: EncodeInto != Encode", c.Name())
			}
			// Error pattern from the fuzzed 128-bit mask, wrapped over
			// the codeword length.
			for i := 0; i < n; i++ {
				var hit bool
				if i < 64 {
					hit = errLo&(1<<uint(i)) != 0
				} else if i < 128 {
					hit = errHi&(1<<uint(i-64)) != 0
				}
				if hit {
					vcw.Flip(i)
					kcw.Flip(i)
				}
			}
			vres, vn := c.Decode(vcw)
			kres, kn := c.DecodeInPlace(kcw)
			if vres != kres || vn != kn {
				t.Fatalf("%s: DecodeInPlace (%v,%d) != Decode (%v,%d)", c.Name(), kres, kn, vres, vn)
			}
			if !kcw.Equal(vcw.AsCodeword()) {
				t.Fatalf("%s: corrected codewords diverge", c.Name())
			}
		}
	})
}
