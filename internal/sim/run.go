package sim

import (
	"twodcache/internal/stats"
	"twodcache/internal/workload"
)

// RunOne builds a simulator and executes one warmup+measure run.
func RunOne(cfg SystemConfig, prot Protection, prof workload.Profile, seed int64, warmup, measure uint64) (Result, error) {
	s, err := New(cfg, prot, prof, seed)
	if err != nil {
		return Result{}, err
	}
	return s.Run(warmup, measure), nil
}

// LossReport is the matched-pair performance comparison behind Fig. 5.
type LossReport struct {
	// System, Workload and Protection identify the comparison.
	System, Workload, Protection string
	// MeanLossPct is the mean IPC loss relative to the unprotected
	// baseline, in percent (positive = slower).
	MeanLossPct float64
	// CI95Pct is the 95% confidence half-width in percentage points.
	CI95Pct float64
	// Samples is the number of matched pairs.
	Samples int
	// BaselineIPC is the mean baseline IPC across samples.
	BaselineIPC float64
}

// PerformanceLoss measures the IPC loss of a protection configuration
// against the unprotected baseline using the paper's matched-pair
// methodology: each sample runs both configurations on an identical
// trace (same seed) and the relative deltas are averaged.
func PerformanceLoss(cfg SystemConfig, prot Protection, prof workload.Profile, samples int, warmup, measure uint64) (LossReport, error) {
	var mp stats.MatchedPair
	var baseIPC stats.Sample
	for i := 0; i < samples; i++ {
		seed := int64(1000 + i*7919)
		base, err := RunOne(cfg, Baseline(), prof, seed, warmup, measure)
		if err != nil {
			return LossReport{}, err
		}
		treat, err := RunOne(cfg, prot, prof, seed, warmup, measure)
		if err != nil {
			return LossReport{}, err
		}
		baseIPC.Add(base.IPC())
		if err := mp.Add(base.IPC(), treat.IPC()); err != nil {
			return LossReport{}, err
		}
	}
	return LossReport{
		System:      cfg.Name,
		Workload:    prof.Name,
		Protection:  prot.String(),
		MeanLossPct: -mp.MeanDelta() * 100,
		CI95Pct:     mp.CI95() * 100,
		Samples:     mp.N(),
		BaselineIPC: baseIPC.Mean(),
	}, nil
}

// AccessBreakdown runs the fully-protected configuration and reports
// cache accesses per 100 cycles per the Fig. 6 classes, for both cache
// levels.
func AccessBreakdown(cfg SystemConfig, prot Protection, prof workload.Profile, seed int64, warmup, measure uint64) (l1, l2 [5]float64, err error) {
	r, err := RunOne(cfg, prot, prof, seed, warmup, measure)
	if err != nil {
		return l1, l2, err
	}
	per100 := func(x uint64) float64 { return float64(x) * 100 / float64(r.Cycles) }
	l1 = [5]float64{per100(r.L1.ReadInst), per100(r.L1.ReadData), per100(r.L1.Write), per100(r.L1.FillEvict), per100(r.L1.ExtraRead)}
	l2 = [5]float64{per100(r.L2.ReadInst), per100(r.L2.ReadData), per100(r.L2.Write), per100(r.L2.FillEvict), per100(r.L2.ExtraRead)}
	return l1, l2, nil
}
