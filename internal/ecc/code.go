// Package ecc provides the per-word error codes used by the 2D scheme
// and its conventional baselines: interleaved-parity detection codes
// (EDCn), Hsiao SECDED, and wrappers around the BCH multi-bit codes.
// It also provides the check-bit and coding-latency cost models the
// paper uses to size codes (Fig. 1 and Fig. 7).
package ecc

import (
	"fmt"
	"sync"

	"twodcache/internal/bch"
	"twodcache/internal/bitvec"
)

// Result mirrors bch.Result for all per-word codes.
type Result = bch.Result

// Re-exported decode outcomes.
const (
	Clean     = bch.Clean
	Corrected = bch.Corrected
	Detected  = bch.Detected
)

// Code is a systematic per-word error code. Encode appends check bits to
// the data word; Decode checks (and for correcting codes, repairs) a
// codeword in place.
//
// Every code exposes two equivalent data paths. The legacy Vector path
// (Encode/Decode/Data) allocates its results and is the convenient API
// for experiments and tools. The word-kernel path
// (EncodeInto/DecodeInPlace) operates on bitvec.Codeword views over
// caller-owned []uint64 scratch and performs no heap allocation for the
// parity/Hsiao codes (the BCH codes amortise through an internal
// scratch pool) — it is the API the per-access hot paths in twod and
// pcache use. FuzzKernelVsVector pins the two paths to identical
// outcomes.
type Code interface {
	// Name identifies the code, e.g. "EDC8", "SECDED", "OECNED".
	Name() string
	// DataBits is the number of data bits per codeword.
	DataBits() int
	// CheckBits is the number of check bits per codeword.
	CheckBits() int
	// CorrectCapability is the maximum number of bit errors the code is
	// guaranteed to correct (0 for detection-only codes).
	CorrectCapability() int
	// DetectCapability is the maximum number of bit errors the code is
	// guaranteed to detect. For EDCn this applies to contiguous bursts.
	DetectCapability() int
	// Encode returns the codeword (data followed by check bits).
	Encode(data *bitvec.Vector) *bitvec.Vector
	// Decode verifies cw, correcting in place when possible. It returns
	// the outcome and the number of bits corrected.
	Decode(cw *bitvec.Vector) (Result, int)
	// Data extracts the data bits from a codeword.
	Data(cw *bitvec.Vector) *bitvec.Vector
	// EncodeInto writes the codeword for data (a DataBits-bit view)
	// into cw (a CodewordBits-bit view). The views must not overlap.
	EncodeInto(cw, data bitvec.Codeword)
	// DecodeInPlace is Decode over a word view: it verifies cw,
	// correcting in place when possible, without allocating.
	DecodeInPlace(cw bitvec.Codeword) (Result, int)
}

// CodewordBits returns the total codeword size of c.
func CodewordBits(c Code) int { return c.DataBits() + c.CheckBits() }

// StorageOverhead returns check bits as a fraction of data bits.
func StorageOverhead(c Code) float64 {
	return float64(c.CheckBits()) / float64(c.DataBits())
}

// --- BCH-backed correcting codes -------------------------------------

// bchCode adapts bch.Code to the Code interface.
type bchCode struct {
	name string
	c    *bch.Code
	// scratch pools the Vector conversion buffers for the kernel
	// methods: the algebraic decoder works on Vectors internally, so
	// the word-kernel path adapts through pooled scratch instead of
	// allocating fresh vectors per call.
	scratch sync.Pool
}

// bchVecs is one pooled set of conversion buffers.
type bchVecs struct {
	data *bitvec.Vector // k bits
	cw   *bitvec.Vector // k + r bits
}

// NewBCHCode wraps a t-error-correcting, (t+1)-detecting BCH code for k
// data bits under the conventional name (DECTED, QECPED, OECNED, ...).
func NewBCHCode(name string, k, t int) (Code, error) {
	c, err := bch.New(k, t)
	if err != nil {
		return nil, fmt.Errorf("ecc: %s: %w", name, err)
	}
	b := &bchCode{name: name, c: c}
	b.scratch.New = func() any {
		return &bchVecs{
			data: bitvec.New(c.K()),
			cw:   bitvec.New(c.K() + c.ParityBits()),
		}
	}
	return b, nil
}

// NewDECTED returns a double-error-correct triple-error-detect code.
func NewDECTED(k int) (Code, error) { return NewBCHCode("DECTED", k, 2) }

// NewQECPED returns a quad-error-correct penta-error-detect code.
func NewQECPED(k int) (Code, error) { return NewBCHCode("QECPED", k, 4) }

// NewOECNED returns an octal-error-correct nona-error-detect code.
func NewOECNED(k int) (Code, error) { return NewBCHCode("OECNED", k, 8) }

func (b *bchCode) Name() string           { return b.name }
func (b *bchCode) DataBits() int          { return b.c.K() }
func (b *bchCode) CheckBits() int         { return b.c.ParityBits() }
func (b *bchCode) CorrectCapability() int { return b.c.T() }
func (b *bchCode) DetectCapability() int  { return b.c.T() + 1 }

func (b *bchCode) Encode(data *bitvec.Vector) *bitvec.Vector {
	// bch stores parity first; re-order to data-then-check for a uniform
	// external layout.
	cw := b.c.Encode(data)
	r := b.c.ParityBits()
	out := bitvec.New(cw.Len())
	out.SetSlice(0, b.c.Data(cw))
	out.SetSlice(data.Len(), cw.Slice(0, r-boolToInt(b.extended())))
	if b.extended() {
		out.Set(cw.Len()-1, cw.Bit(cw.Len()-1))
	}
	return out
}

func (b *bchCode) extended() bool {
	// bch.New always builds extended codes in this package.
	return true
}

func (b *bchCode) toInternal(cw *bitvec.Vector) *bitvec.Vector {
	k := b.c.K()
	r := b.c.ParityBits()
	in := bitvec.New(cw.Len())
	in.SetSlice(r-1, cw.Slice(0, k))       // data after BCH parity
	in.SetSlice(0, cw.Slice(k, k+r-1))     // BCH parity first
	in.Set(cw.Len()-1, cw.Bit(cw.Len()-1)) // extended parity last
	return in
}

func (b *bchCode) fromInternal(in *bitvec.Vector) *bitvec.Vector {
	k := b.c.K()
	r := b.c.ParityBits()
	out := bitvec.New(in.Len())
	out.SetSlice(0, in.Slice(r-1, r-1+k))
	out.SetSlice(k, in.Slice(0, r-1))
	out.Set(in.Len()-1, in.Bit(in.Len()-1))
	return out
}

func (b *bchCode) Decode(cw *bitvec.Vector) (Result, int) {
	in := b.toInternal(cw)
	res, n := b.c.Decode(in)
	if res == Corrected {
		cw.CopyFrom(b.fromInternal(in))
	}
	return res, n
}

func (b *bchCode) Data(cw *bitvec.Vector) *bitvec.Vector {
	return cw.Slice(0, b.c.K())
}

// EncodeInto implements the word-kernel path by adapting through the
// pooled Vector scratch: the BCH encoder itself stays algebraic.
func (b *bchCode) EncodeInto(cw, data bitvec.Codeword) {
	s := b.scratch.Get().(*bchVecs)
	s.data.AsCodeword().CopyFrom(data)
	out := b.Encode(s.data)
	cw.CopyFrom(out.AsCodeword())
	b.scratch.Put(s)
}

// DecodeInPlace implements the word-kernel path through the scratch
// pool; corrections are copied back into the caller's view.
func (b *bchCode) DecodeInPlace(cw bitvec.Codeword) (Result, int) {
	s := b.scratch.Get().(*bchVecs)
	s.cw.AsCodeword().CopyFrom(cw)
	res, n := b.Decode(s.cw)
	if res == Corrected {
		cw.CopyFrom(s.cw.AsCodeword())
	}
	b.scratch.Put(s)
	return res, n
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
