package resilience

// Batched accesses through the escalation ladder: the cache's
// bank-grouped batch path serves the common (fault-free) case with
// amortised locking and line movement; any op that surfaces a
// detected-uncorrectable error is then re-driven individually through
// the ladder, exactly as a single access would be — each failed op
// gets its own RecoveryStart/End bracket, DUE accounting, and ladder
// latency observation.
//
// The Ctx variants bound only the expensive half of that split: the
// amortised cache pass always runs to completion (it never blocks on
// repair machinery), while each per-op ladder re-drive is bounded by
// ctx exactly like a single ReadCtx. A batch that arrives with its
// context already expired is not served at all — every op is stamped
// with the context's error, so an expired deadline yields per-op
// deadline outcomes, never silent success.

import (
	"context"

	"twodcache/internal/pcache"
)

// ReadBatch serves every op through the cache's batched path, then
// runs the escalation ladder on each op that tripped a machine check.
// Per-op outcomes land in each op's Err field; the return value counts
// ops that still failed after recovery. Safe for concurrent use.
func (e *Engine) ReadBatch(ops []pcache.ReadOp) (failed int) {
	return e.ReadBatchCtx(context.Background(), ops)
}

// ReadBatchCtx is ReadBatch with the ladder re-drives bounded by ctx:
// the amortised cache pass runs unbounded (it does not wait on
// repairs), and each failed op's recovery is then limited the way a
// single ReadCtx would be. An already-expired ctx stamps every op with
// the context error and serves nothing.
func (e *Engine) ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		for i := range ops {
			ops[i].Err = err
		}
		return len(ops)
	}
	if e.cache.ReadBatch(ops) == 0 {
		return 0
	}
	for i := range ops {
		op := &ops[i]
		if op.Err == nil {
			continue
		}
		op.Err = e.ladderCtx(ctx, op.Err,
			func() error { return e.cache.ReadInto(op.Addr, op.Dst) })
		if op.Err != nil {
			failed++
		}
	}
	return failed
}

// WriteBatch stores every op through the cache's batched path, then
// runs the escalation ladder on each op that tripped a machine check.
// Per-op outcomes land in each op's Err field; the return value counts
// ops that still failed after recovery. Safe for concurrent use.
func (e *Engine) WriteBatch(ops []pcache.WriteOp) (failed int) {
	return e.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch with the ladder re-drives bounded by
// ctx; see ReadBatchCtx for the exact split.
func (e *Engine) WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		for i := range ops {
			ops[i].Err = err
		}
		return len(ops)
	}
	if e.cache.WriteBatch(ops) == 0 {
		return 0
	}
	for i := range ops {
		op := &ops[i]
		if op.Err == nil {
			continue
		}
		op.Err = e.ladderCtx(ctx, op.Err,
			func() error { return e.cache.Write(op.Addr, op.Data) })
		if op.Err != nil {
			failed++
		}
	}
	return failed
}
