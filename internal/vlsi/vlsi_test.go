package vlsi

import (
	"testing"

	"twodcache/internal/ecc"
)

func TestParamsValidation(t *testing.T) {
	bad := []ArrayParams{
		{Bits: 0, AccessBits: 64, Interleave: 1, Ports: 1},
		{Bits: 1024, AccessBits: 0, Interleave: 1, Ports: 1},
		{Bits: 1024, AccessBits: 64, Interleave: 0, Ports: 1},
		{Bits: 1024, AccessBits: 64, Interleave: 1, Ports: 0},
		{Bits: 64, AccessBits: 64, Interleave: 4, Ports: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestCostSanity(t *testing.T) {
	tech := Default70nm()
	p := ArrayParams{Bits: 64 << 13, AccessBits: 72, Interleave: 2, Ports: 1}
	m, err := Cost(tech, p, Organization{Ndbl: 4, Ndwl: 1, ColMult: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.DelayNS <= 0 || m.EnergyPJ <= 0 || m.AreaMM2 <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
}

func TestExploreBeatsArbitraryPoint(t *testing.T) {
	tech := Default70nm()
	p := ArrayParams{Bits: 64 << 13, AccessBits: 72, Interleave: 4, Ports: 2}
	for _, obj := range []Objective{DelayOpt, PowerOpt, DelayAreaOpt, BalancedOpt} {
		best, err := Explore(tech, p, obj)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		ref, err := Cost(tech, p, Organization{Ndbl: 2, Ndwl: 1, ColMult: 1})
		if err != nil {
			t.Fatal(err)
		}
		if score(best, obj) > score(ref, obj)+1e-12 {
			t.Fatalf("%v: explorer worse than arbitrary point", obj)
		}
	}
}

func TestEnergyGrowsWithInterleave(t *testing.T) {
	// Fig. 2 shape: under every objective, read energy is monotonically
	// non-decreasing in the interleave degree.
	tech := Default70nm()
	for _, spec := range []CacheSpec{L1Spec64KB(), L2Spec4MB()} {
		code := ecc.SpecCorrecting("SECDED", spec.DataWordBits, 1)
		for _, obj := range []Objective{DelayOpt, PowerOpt, BalancedOpt} {
			sweep, err := InterleaveSweep(tech, spec, code, 16, obj)
			if err != nil {
				t.Fatalf("%s/%v: %v", spec.Name, obj, err)
			}
			if len(sweep) != 5 {
				t.Fatalf("sweep length %d", len(sweep))
			}
			if sweep[0] != 1.0 {
				t.Fatalf("not normalised: %v", sweep[0])
			}
			for i := 1; i < len(sweep); i++ {
				if sweep[i] < sweep[i-1]*0.98 {
					t.Fatalf("%s/%v: energy decreased with interleave: %v", spec.Name, obj, sweep)
				}
			}
		}
	}
}

func TestPowerOptNoWorseThanDelayOpt(t *testing.T) {
	// The power-optimised curve can never grow faster than the
	// delay-optimised one at the same degree (it has strictly more
	// freedom to trade delay for energy).
	tech := Default70nm()
	spec := L1Spec64KB()
	code := ecc.SpecCorrecting("SECDED", 64, 1)
	for d := 1; d <= 16; d *= 2 {
		pd, err := CodedCache(tech, spec, code, d, 0, DelayOpt)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := CodedCache(tech, spec, code, d, 0, PowerOpt)
		if err != nil {
			t.Fatal(err)
		}
		if pp.Array.EnergyPJ > pd.Array.EnergyPJ*1.0001 {
			t.Fatalf("d=%d: power-opt energy %v above delay-opt %v", d, pp.Array.EnergyPJ, pd.Array.EnergyPJ)
		}
	}
}

func TestFig2Asymmetry(t *testing.T) {
	// The paper's central Fig. 2 contrast: for the 64 kB L1 the
	// power-optimised design absorbs interleaving cheaply (small
	// degrees nearly free), while the 4 MB L2's wide 266-bit codewords
	// make even the power-optimised design pay steeply by 16:1.
	tech := Default70nm()
	l1, err := InterleaveSweep(tech, L1Spec64KB(), ecc.SpecCorrecting("SECDED", 64, 1), 16, PowerOpt)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := InterleaveSweep(tech, L2Spec4MB(), ecc.SpecCorrecting("SECDED", 256, 1), 16, PowerOpt)
	if err != nil {
		t.Fatal(err)
	}
	if l1[2] > 1.6 { // 4:1 on L1 should still be cheap
		t.Fatalf("64kB power-opt at 4:1 = %.2f, want <= 1.6", l1[2])
	}
	if l2[4] < 2.5 {
		t.Fatalf("4MB power-opt at 16:1 = %.2f, want >= 2.5", l2[4])
	}
	if l2[4] <= l1[4] {
		t.Fatalf("4MB growth (%.2f) must exceed 64kB growth (%.2f)", l2[4], l1[4])
	}
}

func TestL2InterleaveMoreExpensiveThanL1(t *testing.T) {
	// Fig. 2(c) vs (b): the 4 MB cache's wide words make interleaving
	// relatively costlier under power optimisation than the 64 kB one.
	tech := Default70nm()
	l1, err := InterleaveSweep(tech, L1Spec64KB(), ecc.SpecCorrecting("SECDED", 64, 1), 16, PowerOpt)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := InterleaveSweep(tech, L2Spec4MB(), ecc.SpecCorrecting("SECDED", 256, 1), 16, PowerOpt)
	if err != nil {
		t.Fatal(err)
	}
	if l2[4] <= l1[4] {
		t.Fatalf("4MB power-opt at 16:1 (%.2f) should exceed 64kB (%.2f)", l2[4], l1[4])
	}
}

func TestCodedCacheStorage(t *testing.T) {
	tech := Default70nm()
	spec := L1Spec64KB()
	sec := ecc.SpecCorrecting("SECDED", 64, 1)
	c, err := CodedCache(tech, spec, sec, 2, 0, BalancedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeStorageFrac != 0.125 {
		t.Fatalf("SECDED storage = %v", c.CodeStorageFrac)
	}
	// 2D: EDC8 horizontal + 32 vertical rows adds a few percent extra.
	edc := ecc.SpecEDC(64, 8)
	c2, err := CodedCache(tech, spec, edc, 4, 32, BalancedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c2.CodeStorageFrac <= 0.125 || c2.CodeStorageFrac > 0.30 {
		t.Fatalf("2D storage = %v", c2.CodeStorageFrac)
	}
	// Word-size mismatch must error.
	if _, err := CodedCache(tech, spec, ecc.SpecEDC(256, 16), 2, 0, BalancedOpt); err == nil {
		t.Fatal("word mismatch accepted")
	}
}

func TestStrongCodesCostMore(t *testing.T) {
	// Fig. 1(c)/Fig. 7 shape: at equal interleave, stronger codes cost
	// more energy and latency.
	tech := Default70nm()
	spec := L1Spec64KB()
	var prevE, prevD float64
	for _, name := range []string{"SECDED", "DECTED", "QECPED", "OECNED"} {
		code, err := ecc.SpecByName(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CodedCache(tech, spec, code, 4, 0, BalancedOpt)
		if err != nil {
			t.Fatal(err)
		}
		if c.AccessEnergyPJ <= prevE {
			t.Fatalf("%s energy %v not above previous %v", name, c.AccessEnergyPJ, prevE)
		}
		if c.TotalDelayNS < prevD {
			t.Fatalf("%s delay %v below previous %v", name, c.TotalDelayNS, prevD)
		}
		prevE, prevD = c.AccessEnergyPJ, c.TotalDelayNS
	}
}

func TestObjectiveStrings(t *testing.T) {
	names := map[Objective]string{
		DelayOpt: "delay-opt", PowerOpt: "power-opt",
		DelayAreaOpt: "delay+area-opt", BalancedOpt: "balanced-opt",
	}
	for o, want := range names {
		if o.String() != want {
			t.Fatalf("%v", o)
		}
	}
}

func TestCostErrorPaths(t *testing.T) {
	tech := Default70nm()
	p := ArrayParams{Bits: 64 << 13, AccessBits: 72, Interleave: 2, Ports: 1}
	cases := []Organization{
		{Ndbl: 0, Ndwl: 1, ColMult: 1},   // invalid division
		{Ndbl: 512, Ndwl: 1, ColMult: 4}, // sub-array too short
		{Ndbl: 1, Ndwl: 64, ColMult: 1},  // sub-array too narrow
	}
	for i, org := range cases {
		if _, err := Cost(tech, p, org); err == nil {
			t.Errorf("case %d accepted: %+v", i, org)
		}
	}
	// Bad params propagate through Explore.
	if _, err := Explore(tech, ArrayParams{}, PowerOpt); err == nil {
		t.Error("empty params accepted")
	}
}

func TestSpecHelpers(t *testing.T) {
	if s := L2Spec16MB(); s.CapacityBytes != 16<<20 || s.DataWordBits != 256 {
		t.Fatalf("16MB spec: %+v", s)
	}
	if Objective(99).String() != "unknown" {
		t.Fatal("unknown objective name")
	}
}

func TestInterleaveSweepPropagatesErrors(t *testing.T) {
	tech := Default70nm()
	// A bank smaller than one interleaved row fails validation inside
	// the sweep at high degrees.
	tiny := CacheSpec{Name: "tiny", CapacityBytes: 512, Banks: 1, Ports: 1, DataWordBits: 256}
	code := ecc.SpecCorrecting("SECDED", 256, 1)
	if _, err := InterleaveSweep(tech, tiny, code, 16, PowerOpt); err == nil {
		t.Fatal("tiny cache sweep succeeded")
	}
}
