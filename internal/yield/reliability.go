package yield

import (
	"math"
)

// ReliabilityConfig parameterises the Fig. 8(b) experiment: a system of
// caches whose SECDED has been spent correcting manufacture-time hard
// errors, exposed to a soft-error flux. A soft error striking a word
// that already holds a hard fault produces a double error SECDED cannot
// correct; the system survives a period only if every soft error lands
// in a fault-free word. 2D coding corrects those doubles, keeping the
// success probability at 1.
type ReliabilityConfig struct {
	// Caches is the number of cache instances (the paper uses 10).
	Caches int
	// Geometry describes each cache.
	Geometry Geometry
	// FITPerMb is the soft-error rate (the paper uses 1000 FIT/Mb).
	FITPerMb float64
	// HardErrorRate is the per-cell probability of a manufacture-time
	// hard fault (the paper sweeps 0.0005%..0.005%).
	HardErrorRate float64
	// TwoD enables 2D multi-bit correction on top of SECDED.
	TwoD bool
}

// HoursPerYear follows the 8766-hour convention (365.25 days).
const HoursPerYear = 8766.0

// SuccessProbability returns the probability that, over the given
// number of years, every soft error is correctable: with 2D coding this
// is 1; without it, each soft error must avoid the words already
// holding a hard fault.
func (c ReliabilityConfig) SuccessProbability(years float64) float64 {
	if years <= 0 {
		return 1
	}
	if c.TwoD {
		return 1
	}
	totalBits := float64(c.Caches) * float64(c.Geometry.Bits())
	// Soft-error arrival rate for the whole system, events per hour.
	lambda := c.FITPerMb * (totalBits / 1e6) / 1e9
	// Fraction of bits residing in words that contain >= 1 hard fault.
	pWordFaulty := 1 - math.Pow(1-c.HardErrorRate, float64(c.Geometry.WordBits))
	// A soft error in a faulty word is fatal; arrivals thin to a
	// Poisson process of fatal events.
	fatalRate := lambda * pWordFaulty
	return math.Exp(-fatalRate * years * HoursPerYear)
}

// ReliabilityCurve evaluates SuccessProbability at integer years
// 0..maxYears inclusive.
func (c ReliabilityConfig) ReliabilityCurve(maxYears int) []float64 {
	out := make([]float64, maxYears+1)
	for y := 0; y <= maxYears; y++ {
		out[y] = c.SuccessProbability(float64(y))
	}
	return out
}
