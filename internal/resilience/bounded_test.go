package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/obs"
)

// plantPersistentDUE dirties two lines and plants the beyond-coverage
// double fault across their data rows (rows 0 and 32 share a vertical
// group, codeword bits 0 and 8 share an EDC8 parity column — see
// plantBeyondCoverage). Both properties matter for driving the REAL
// read path: the lines being dirty stops the cache from satisfying the
// DUE with an in-line backing refetch, and the fault being ambiguous
// stops the array's in-line vertical recovery, so every read of addr 0
// surfaces a persistent DUE that only degradation resolves.
func plantPersistentDUE(t *testing.T, e *Engine) {
	t.Helper()
	c := e.Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(16*64, []byte{0xA5}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))
}

func TestReadCtxDeadlineAbortDuringStall(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour) // wedge the full-2D rung
	e, _ := newEngine(t, bigCfg, Config{RecoveryStall: &stall})
	plantPersistentDUE(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ReadCtx(ctx, 0, 1)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline not honoured: read took %v", elapsed)
	}
	if !errors.Is(err, ErrRecoveryInProgress) {
		t.Fatalf("err = %v, want ErrRecoveryInProgress in chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	var rip *RecoveryInProgressError
	if !errors.As(err, &rip) {
		t.Fatalf("err = %T, want *RecoveryInProgressError", err)
	}
	if rip.Rung != "full-2d" || rip.Bank != 0 {
		t.Fatalf("progress = %+v, want bank 0 wedged at full-2d", rip)
	}
	r := e.Report()
	if r.DeadlineAborts != 1 {
		t.Fatalf("deadline aborts = %d, want 1", r.DeadlineAborts)
	}
	// The abandoned flight must have been resolved, not leaked.
	e.flightMu.Lock()
	inFlight := len(e.flights)
	e.flightMu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d flights leaked after abort", inFlight)
	}

	// With the stall disarmed, the same engine resolves the fault on the
	// next unbounded access (beyond-coverage damage: via degradation).
	stall.Disarm()
	if _, err := e.Read(0, 1); err != nil {
		t.Fatalf("post-abort read: %v", err)
	}
}

// TestSingleFlightRungAccounting is the concurrent rung-accounting
// regression (run under -race by tier-1): N goroutines hit the same
// persistent uncorrectable; exactly one logical recovery must run, so
// the rung counters read as ONE escalation plus N-1 coalesced waits —
// not N interleaved escalations double-counting every rung.
func TestSingleFlightRungAccounting(t *testing.T) {
	const clients = 8
	e, _ := newEngine(t, bigCfg, Config{})
	plantPersistentDUE(t, e)

	// Hold the repair leader at the rungs' entry until every other
	// client has coalesced behind it, so the schedule is deterministic.
	var once sync.Once
	e.testHookLeadStart = func(*flight) {
		once.Do(func() {
			deadline := time.Now().Add(10 * time.Second)
			for e.coalesced.Load() < clients-1 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		})
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Read(0, 1)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
	}

	r := e.Report()
	if r.DUEs != clients {
		t.Fatalf("DUEs = %d, want %d (every client tripped one)", r.DUEs, clients)
	}
	if r.CoalescedWaits != clients-1 {
		t.Fatalf("coalesced = %d, want %d", r.CoalescedWaits, clients-1)
	}
	// ONE logical recovery: one retry, one word attempt, one full-2D
	// attempt (the ambiguous fault defeats all three), one decommission
	// — not eight interleaved escalations.
	if r.Retries != 1 || r.WordAttempts != 1 || r.FullAttempts != 1 {
		t.Fatalf("rung counters double-counted: %+v", r)
	}
	if r.Decommissions != 1 || r.Exhausted != 0 {
		t.Fatalf("degrade accounting wrong: %+v", r)
	}
}

func TestCoalescedWaiterDeadline(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour)
	e, _ := newEngine(t, bigCfg, Config{RecoveryStall: &stall})
	plantPersistentDUE(t, e)

	leaderIn := make(chan struct{})
	var once sync.Once
	e.testHookLeadStart = func(*flight) { once.Do(func() { close(leaderIn) }) }

	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Read(0, 1) // unbounded: rides the repair to the end
		leaderErr <- err
	}()
	<-leaderIn

	// A bounded waiter coalesces behind the wedged repair and must give
	// up at its own deadline with the repair's progress attached.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.ReadCtx(ctx, 0, 1)
	if !errors.Is(err, ErrRecoveryInProgress) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want recovery-in-progress + deadline", err)
	}
	if got := e.coalesced.Load(); got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}

	// Release the repair: the unbounded leader completes normally.
	stall.Disarm()
	// The leader is wedged in the stall's timer, not the hook; cancel
	// its stall by forcing a watchdog-style release is not needed —
	// disarm only affects future hits, so unstick it via the watchdog.
	w := e.NewWatchdog(WatchdogConfig{Budget: time.Nanosecond, Poll: time.Millisecond})
	w.ScanOnce()
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

// recordingSink captures breaker transitions for assertion.
type recordingSink struct {
	obs.NopSink
	mu          sync.Mutex
	transitions []string
}

func (s *recordingSink) BreakerTransition(bank int, from, to, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transitions = append(s.transitions, from+">"+to+":"+reason)
}

func (s *recordingSink) log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.transitions...)
}

// TestBreakerTransitionTable drives the per-bank breaker state machine
// through every edge: closed×{success, failure-below-threshold,
// threshold}, open×{admit-before-timeout, admit-after-timeout},
// half-open×{second-probe-shed, probe-failure, probe-successes,
// probe-release}.
func TestBreakerTransitionTable(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	sink := &recordingSink{}
	e, _ := newEngine(t, bigCfg, Config{
		Clock: clock,
		Sink:  sink,
		Breaker: BreakerConfig{
			FailureThreshold: 3,
			OpenTimeout:      10 * time.Millisecond,
			ProbeSuccesses:   2,
		},
	})
	const bank = 0
	expectState := func(want string) {
		t.Helper()
		if got := e.BreakerState(bank); got != want {
			t.Fatalf("breaker state = %s, want %s (transitions %v)", got, want, sink.log())
		}
	}

	// closed + success stays closed and resets the failure streak.
	if v := e.admit(bank); v != admitRun {
		t.Fatalf("closed admit = %v, want run", v)
	}
	e.recordBreaker(bank, false, false)
	e.recordBreaker(bank, false, false)
	e.recordBreaker(bank, false, true) // streak broken
	expectState("closed")

	// threshold consecutive failures trip it open.
	e.recordBreaker(bank, false, false)
	e.recordBreaker(bank, false, false)
	expectState("closed")
	e.recordBreaker(bank, false, false)
	expectState("open")
	if g := e.breakersOpen.Load(); g != 1 {
		t.Fatalf("open gauge = %d, want 1", g)
	}

	// open sheds until OpenTimeout elapses...
	now = now.Add(5 * time.Millisecond)
	if v := e.admit(bank); v != admitShed {
		t.Fatalf("open admit before timeout = %v, want shed", v)
	}
	// ...then admits exactly one half-open probe; a second concurrent
	// admit sheds while the probe is out.
	now = now.Add(5 * time.Millisecond)
	if v := e.admit(bank); v != admitProbe {
		t.Fatalf("open admit after timeout = %v, want probe", v)
	}
	expectState("half-open")
	if v := e.admit(bank); v != admitShed {
		t.Fatalf("second probe admitted, want shed")
	}

	// probe failure reopens.
	e.recordBreaker(bank, true, false)
	expectState("open")

	// probe abort (caller deadline) returns the slot without an outcome.
	now = now.Add(10 * time.Millisecond)
	if v := e.admit(bank); v != admitProbe {
		t.Fatal("no probe after second open timeout")
	}
	e.releaseBreaker(bank, true)
	if v := e.admit(bank); v != admitProbe {
		t.Fatal("released probe slot not reusable")
	}
	expectState("half-open")

	// ProbeSuccesses consecutive good probes close the breaker.
	e.recordBreaker(bank, true, true)
	expectState("half-open")
	if v := e.admit(bank); v != admitProbe {
		t.Fatal("no second probe admitted")
	}
	e.recordBreaker(bank, true, true)
	expectState("closed")
	if g := e.breakersOpen.Load(); g != 0 {
		t.Fatalf("open gauge = %d, want 0 after close", g)
	}

	want := []string{
		"closed>open:failure threshold",
		"open>half-open:open timeout elapsed",
		"half-open>open:probe failed",
		"open>half-open:open timeout elapsed",
		"half-open>closed:probe successes",
	}
	got := sink.log()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, got[i], want[i])
		}
	}
	if tr := e.Report(); tr.BreakerTrips != 2 {
		t.Fatalf("trips = %d, want 2", tr.BreakerTrips)
	}
}

func TestBreakerDisabled(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{Breaker: BreakerConfig{Disabled: true}})
	for i := 0; i < 20; i++ {
		if v := e.admit(0); v != admitRun {
			t.Fatalf("disabled breaker verdict = %v, want run", v)
		}
		e.recordBreaker(0, false, false)
	}
	if e.BreakerState(0) != "closed" || e.breakerTrips.Load() != 0 {
		t.Fatal("disabled breaker kept state")
	}
}

// TestBreakerShedsToDegrade drives a real bank to an open breaker: a
// persistent beyond-coverage fault fails the rungs repeatedly, trips
// the breaker, and the next uncorrectable is shed straight to degrade
// without touching the recovery rungs.
func TestBreakerShedsToDegrade(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	e, _ := newEngine(t, bigCfg, Config{
		Clock:   clock,
		Breaker: BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour, ProbeSuccesses: 1},
	})
	// A fault source the rungs can never satisfy.
	broken := func() error { return due(0, 0) }
	for i := 0; i < 2; i++ {
		if err := e.ladder(due(0, 0), broken); err == nil {
			t.Fatal("unsatisfiable ladder returned nil")
		}
	}
	if e.BreakerState(0) != "open" {
		t.Fatalf("breaker = %s after %d failed repairs", e.BreakerState(0), 2)
	}
	r := e.Report()
	fullBefore, shedsBefore := r.FullAttempts, r.BreakerSheds

	if err := e.ladder(due(0, 1), broken); err == nil {
		t.Fatal("unsatisfiable ladder returned nil")
	}
	r = e.Report()
	if r.BreakerSheds != shedsBefore+1 {
		t.Fatalf("sheds = %d, want %d", r.BreakerSheds, shedsBefore+1)
	}
	if r.FullAttempts != fullBefore {
		t.Fatalf("shed request still ran full-2D: %d -> %d", fullBefore, r.FullAttempts)
	}
	if r.Decommissions == 0 {
		t.Fatal("shed request did not reach the degrade path")
	}
}

func TestWatchdogForcesStalledRepair(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour)
	e, _ := newEngine(t, bigCfg, Config{RecoveryStall: &stall})
	plantPersistentDUE(t, e)

	w := e.NewWatchdog(WatchdogConfig{Budget: 20 * time.Millisecond, Poll: 5 * time.Millisecond})
	w.Start()
	defer w.Stop()

	// Unbounded read against a wedged full-2D rung: without the
	// watchdog this hangs for the armed hour; with it, the repair is
	// force-escalated to decommission and the read completes from
	// backing (the dirty line is lost — as accounted data loss, not a
	// hang).
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = e.Read(0, 1)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog did not unstick the stalled repair")
	}
	if err != nil {
		t.Fatalf("read after force-escalation: %v", err)
	}
	if stall.Fired() == 0 {
		t.Fatal("stall never engaged: test proved nothing")
	}
	r := e.Report()
	if r.WatchdogFires == 0 {
		t.Fatalf("watchdog fires = 0: %+v", r)
	}
	if r.Decommissions == 0 {
		t.Fatal("force-escalation did not decommission the way")
	}
	e.flightMu.Lock()
	inFlight := len(e.flights)
	e.flightMu.Unlock()
	if inFlight != 0 {
		t.Fatalf("%d flights leaked after watchdog fire", inFlight)
	}
}

func TestWatchdogStartStopIdempotent(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	w := e.NewWatchdog(WatchdogConfig{Budget: time.Millisecond, Poll: time.Millisecond})
	w.Start()
	w.Start() // no second goroutine
	w.Stop()
	w.Stop() // no panic
	if n := w.ScanOnce(); n != 0 {
		t.Fatalf("idle scan forced %d flights", n)
	}
}
