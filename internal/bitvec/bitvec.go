// Package bitvec provides dense bit vectors and two-dimensional bit
// matrices used throughout the 2D error-coding library.
//
// A Vector is a fixed-width sequence of bits packed into 64-bit words.
// A Matrix is a rectangular grid of bits with efficient row-wise XOR,
// the fundamental operation of interleaved-parity codes and of the 2D
// recovery process.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector;
// use New to create one with a given width.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed Vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBytes returns a Vector of n bits initialised from b in little-endian
// bit order (bit i of the vector is bit i%8 of b[i/8]). Bytes beyond n bits
// are ignored; missing bytes are treated as zero.
func FromBytes(b []byte, n int) *Vector {
	v := New(n)
	nb := (n + 7) / 8
	if nb > len(b) {
		nb = len(b)
	}
	for i := 0; i < nb; i++ {
		v.words[i/8] |= uint64(b[i]) << (8 * uint(i%8))
	}
	// Bits beyond n in the straddling byte must not leak into the vector.
	if rem := n % wordBits; rem != 0 && nb*8 > n {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
	return v
}

// FromUint64 returns a Vector of n bits (n ≤ 64) holding the low n bits of x.
func FromUint64(x uint64, n int) *Vector {
	if n > 64 {
		panic("bitvec: FromUint64 width exceeds 64")
	}
	v := New(n)
	if n == 0 {
		return v
	}
	mask := ^uint64(0)
	if n < 64 {
		mask = (1 << uint(n)) - 1
	}
	v.words[0] = x & mask
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Bit reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to val. It panics if i is out of range.
func (v *Vector) Set(i int, val bool) {
	v.check(i)
	if val {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with the contents of src. Both must have equal length.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d != %d", v.n, src.n))
	}
	copy(v.words, src.words)
}

// Xor sets v to v XOR other. Both must have equal length.
func (v *Vector) Xor(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: Xor length mismatch %d != %d", v.n, other.n))
	}
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// And sets v to v AND other. Both must have equal length.
func (v *Vector) And(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: And length mismatch %d != %d", v.n, other.n))
	}
	for i := range v.words {
		v.words[i] &= other.words[i]
	}
}

// Or sets v to v OR other. Both must have equal length.
func (v *Vector) Or(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: Or length mismatch %d != %d", v.n, other.n))
	}
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// Zero clears every bit.
func (v *Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// IsZero reports whether no bit is set.
func (v *Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether v and other hold identical bits (and equal lengths).
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits, in ascending order.
func (v *Vector) Ones() []int {
	var idx []int
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx = append(idx, wi*wordBits+b)
			w &= w - 1
		}
	}
	return idx
}

// AppendUint64 grows the vector by nb bits (nb <= 64) holding the low
// nb bits of x, returning v for chaining.
func (v *Vector) AppendUint64(x uint64, nb int) *Vector {
	if nb < 0 || nb > wordBits {
		panic(fmt.Sprintf("bitvec: AppendUint64 width %d out of [0,64]", nb))
	}
	off := v.n
	v.n += nb
	for len(v.words) < WordsFor(v.n) {
		v.words = append(v.words, 0)
	}
	MakeCodeword(v.words, v.n).StoreBits(off, nb, x)
	return v
}

// Uint64At returns up to 64 bits starting at bit offset off, shifted
// down to bit 0 and zero-padded past the end of the vector.
func (v *Vector) Uint64At(off int) uint64 {
	return v.AsCodeword().Uint64At(off)
}

// Uint64 returns the low 64 bits of the vector as a uint64.
func (v *Vector) Uint64() uint64 {
	if len(v.words) == 0 {
		return 0
	}
	x := v.words[0]
	if v.n < 64 {
		x &= (1 << uint(v.n)) - 1
	}
	return x
}

// Slice returns a new Vector holding bits [lo, hi) of v.
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: Slice [%d,%d) out of range [0,%d)", lo, hi, v.n))
	}
	out := New(hi - lo)
	for i := lo; i < hi; i++ {
		if v.Bit(i) {
			out.Set(i-lo, true)
		}
	}
	return out
}

// SetSlice writes src into v starting at bit offset off.
func (v *Vector) SetSlice(off int, src *Vector) {
	if off < 0 || off+src.n > v.n {
		panic(fmt.Sprintf("bitvec: SetSlice [%d,%d) out of range [0,%d)", off, off+src.n, v.n))
	}
	for i := 0; i < src.n; i++ {
		v.Set(off+i, src.Bit(i))
	}
}

// Parity returns the XOR of all bits (1 if odd number of set bits).
func (v *Vector) Parity() int {
	var acc uint64
	for _, w := range v.words {
		acc ^= w
	}
	return bits.OnesCount64(acc) & 1
}

// String renders the vector as a bit string, bit 0 first.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a Vector from a bit string of '0'/'1' runes (bit 0 first).
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", r, i)
		}
	}
	return v, nil
}
