package ecc

import "twodcache/internal/bitvec"

// HorizontalCode is the subset of codes usable as the horizontal
// dimension of 2D coding. Beyond plain encode/decode it exposes its
// parity-check matrix column-wise, which the 2D column-failure recovery
// uses to localise erroneous bits: given a set of suspect columns (from
// the vertical code) and a word's syndrome, recovery solves for the
// unique flip set over GF(2).
type HorizontalCode interface {
	Code
	// SyndromeBits returns the syndrome of cw packed into a uint64
	// (bit i = syndrome bit i). Zero means the word checks clean.
	SyndromeBits(cw *bitvec.Vector) uint64
	// SyndromeWords is SyndromeBits over a word-kernel view: the
	// allocation-free per-access check the twod/pcache hot paths run.
	SyndromeWords(cw bitvec.Codeword) uint64
	// ParityColumn returns the parity-check column of codeword bit j,
	// packed the same way: flipping bit j XORs this mask into the
	// syndrome.
	ParityColumn(j int) uint64
}

// SyndromeBits implements HorizontalCode for EDC: bit g of the result is
// parity group g's mismatch.
func (e *EDC) SyndromeBits(cw *bitvec.Vector) uint64 {
	return e.SyndromeWords(cw.AsCodeword())
}

// ParityColumn implements HorizontalCode for EDC: data bit b belongs to
// group b mod n; stored check bit i belongs to group i.
func (e *EDC) ParityColumn(j int) uint64 {
	if j < e.k {
		return 1 << uint(j%e.n)
	}
	return 1 << uint(j-e.k)
}

// SyndromeBits implements HorizontalCode for SECDED.
func (s *SECDED) SyndromeBits(cw *bitvec.Vector) uint64 {
	return uint64(s.syndrome(cw))
}

// ParityColumn implements HorizontalCode for SECDED.
func (s *SECDED) ParityColumn(j int) uint64 { return uint64(s.cols[j]) }

var (
	_ HorizontalCode = (*EDC)(nil)
	_ HorizontalCode = (*SECDED)(nil)
)
