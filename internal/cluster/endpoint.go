package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"twodcache/internal/netsrv"
	"twodcache/internal/resilience"
)

// endpoint is one replica: its transport, its health breaker, and the
// set of addrs it is not trusted to serve (missed writes).
type endpoint struct {
	c    *Client
	idx  int
	addr string
	brk  *resilience.HealthBreaker

	mu        sync.Mutex
	conn      Conn           // nil while down
	missed    map[uint64]int // addr → length this replica may be stale for
	redialing bool
}

func newEndpoint(c *Client, idx int, addr string) *endpoint {
	ep := &endpoint{c: c, idx: idx, addr: addr, missed: map[uint64]int{}}
	ep.brk = resilience.NewHealthBreaker(c.cfg.Breaker, nil, func(from, to, reason string) {
		if to == "open" {
			c.breakerTrips.Inc()
		}
	})
	return ep
}

// liveConn returns the current transport or nil.
func (ep *endpoint) liveConn() Conn {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.conn
}

// freshFor reports whether ep may serve reads for addr: transport up
// and addr not in the missed set. The returned conn is the one the
// freshness judgement was made against.
func (ep *endpoint) freshFor(addr uint64) (Conn, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.conn == nil {
		return nil, false
	}
	if _, stale := ep.missed[addr]; stale {
		return nil, false
	}
	return ep.conn, true
}

// markMissed records that ep may lack the latest write to addr.
func (ep *endpoint) markMissed(addr uint64, n int) {
	ep.mu.Lock()
	ep.missed[addr] = n
	ep.mu.Unlock()
}

// clearMissed removes addr from the missed set if present — called
// after a successful write or repair of addr to this endpoint.
func (ep *endpoint) clearMissed(addr uint64) {
	ep.mu.Lock()
	delete(ep.missed, addr)
	ep.mu.Unlock()
}

// missedBatch copies up to limit missed addrs for a repair pass.
func (ep *endpoint) missedBatch(limit int) map[uint64]int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.missed) == 0 {
		return nil
	}
	out := make(map[uint64]int, limit)
	for a, n := range ep.missed {
		out[a] = n
		if len(out) >= limit {
			break
		}
	}
	return out
}

// markDown tears down failed if it is still the installed transport and
// starts the redial loop. Racing callers that observed the same dead
// conn converge on one teardown; a caller holding yesterday's conn
// cannot kill today's.
func (ep *endpoint) markDown(failed Conn) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.conn == nil || ep.conn != failed {
		return
	}
	ep.conn.Close()
	ep.conn = nil
	ep.startRedialLocked()
}

// startRedialLocked launches the background reconnect loop if one is
// not already running. Caller holds ep.mu.
func (ep *endpoint) startRedialLocked() {
	if ep.redialing || ep.c.closed.Load() {
		return
	}
	ep.redialing = true
	ep.c.wg.Add(1)
	go ep.redialLoop()
}

// redialLoop reconnects with doubling backoff. On success the endpoint
// resyncs conservatively: every addr the cluster ever wrote lands in
// the missed set, because the client cannot distinguish a network blip
// (replica still has everything) from a restart (replica has nothing).
// Read-repair then drains the set; reads stay correct either way.
func (ep *endpoint) redialLoop() {
	defer ep.c.wg.Done()
	backoff := ep.c.cfg.RedialBackoff
	for {
		select {
		case <-ep.c.done:
			ep.mu.Lock()
			ep.redialing = false
			ep.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		ep.c.redials.Inc()
		conn, err := ep.c.cfg.Dial(ep.addr)
		if err != nil {
			backoff *= 2
			if backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		resync := ep.c.writtenSnapshot()
		ep.mu.Lock()
		ep.conn = conn
		for a, n := range resync {
			ep.missed[a] = n
		}
		ep.redialing = false
		ep.mu.Unlock()
		return
	}
}

// admit consults the breaker; the bool reports probe duty.
func (ep *endpoint) admit() (ok, probe bool) {
	switch ep.brk.Admit() {
	case resilience.BreakerRun:
		return true, false
	case resilience.BreakerProbe:
		return true, true
	default:
		return false, false
	}
}

// isTransportDead classifies errors that mean the connection itself is
// gone (as opposed to the replica answering with a failure).
func isTransportDead(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, netsrv.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// isRetryable classifies read failures worth another cluster-level
// attempt after backoff: transient replica states and transport loss.
// Caller-context errors and data errors are final (uncorrectable data
// is handled by failover to another replica, not by waiting).
func isRetryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, resilience.ErrRecoveryInProgress),
		errors.Is(err, netsrv.ErrDraining),
		errors.Is(err, ErrNoReplicas),
		isTransportDead(err):
		return true
	}
	return false
}

// ctxError reports whether err is the caller's own context giving up —
// a failure that says nothing about replica health.
func ctxError(ctx context.Context, err error) bool {
	return ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}
