package twod

// Stale vertical parity is the one way the 2D scheme can be tricked
// into *manufacturing* corruption: row-mode recovery XORs the group's
// parity mismatch into a faulty row, so any residue in that mismatch
// that does not belong to the row gets written into it — and if the
// residue happens to be a valid codeword pattern, the forged word
// passes every later check. These tests pin the two defences:
//
//  1. Recover refuses a row-mode delta the horizontal code cannot
//     attribute to the row (rowDeltaPlausible);
//  2. Write never computes a parity delta against a corrupted old
//     word it failed to repair (it rebuilds parity instead).

import (
	"testing"

	"twodcache/internal/bitvec"
)

// TestRecoverRefusesStaleParityCrossWord: parity of group 0 takes a
// code-valid two-bit hit in word slot 1 (EDC8 bits 0 and 8 share a
// parity column) while row 0 has an ordinary recoverable single-bit
// error in word slot 0. A trusting row-mode repair would fix word 0
// and silently forge word 1 into a valid-but-wrong codeword; the
// plausibility guard must refuse instead.
func TestRecoverRefusesStaleParityCrossWord(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x4444)
	golden := a.SnapshotData()
	lay := a.Layout()

	a.FlipParityBit(0, lay.PhysColumn(1, 0))
	a.FlipParityBit(0, lay.PhysColumn(1, 8))
	a.FlipBit(0, lay.PhysColumn(0, 3))

	rep := a.Recover()
	if rep.Success {
		t.Fatalf("recovery claimed success over stale parity: %+v", rep)
	}
	// The untouched word must not have been forged: every bit of row 0
	// outside the injected flip must still match the golden snapshot.
	row, want := a.SnapshotData().Row(0), golden.Row(0)
	bad := lay.PhysColumn(0, 3)
	for c := 0; c < lay.RowBits(); c++ {
		if c == bad {
			continue
		}
		if row.Bit(c) != want.Bit(c) {
			t.Fatalf("recovery forged bit %d of row 0 from stale parity", c)
		}
	}
}

// TestWriteOverUncorrectableDoesNotPoisonParity: overwriting a word
// that holds unrepairable latent damage must not fold the old error
// pattern into the vertical parity. Afterwards the parity must be
// consistent with the array as stored, the new data must read back
// clean, and the damage that remains elsewhere must stay *detected* —
// never replayed into other rows by a later recovery.
func TestWriteOverUncorrectableDoesNotPoisonParity(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x5555)
	golden := a.SnapshotData()
	injectBeyondCoverage(a) // rows 0 and 4, word 0: ambiguous pair

	if st := a.Write(0, 0, bitvec.FromUint64(0xABCD, 64)); st != ReadUncorrectable {
		t.Fatalf("write over latent uncorrectable damage: status %v", st)
	}
	if got, ok := a.TryRead(0, 0); !ok || got.Uint64() != 0xABCD {
		t.Fatalf("overwritten word did not read back clean: ok=%v", ok)
	}
	rep := a.VerifyIntegrity()
	if rep.FaultyWords != 1 {
		t.Fatalf("want exactly row 4's word still faulty, got %d faulty words", rep.FaultyWords)
	}
	if rep.ParityMismatches != 0 {
		t.Fatalf("write poisoned the vertical parity: %d mismatched groups", rep.ParityMismatches)
	}

	// A later recovery cannot reconstruct row 4 (its error was absorbed
	// by the rebuild) — it must say so, not scribble on other rows.
	rec := a.Recover()
	if rec.Success {
		t.Fatalf("recovery claimed success with absorbed damage: %+v", rec)
	}
	snap := a.SnapshotData()
	for r := 0; r < a.Rows(); r++ {
		if r == 0 || r == 4 {
			continue
		}
		if !snap.Row(r).Equal(golden.Row(r)) {
			t.Fatalf("row %d changed by write/recover of other rows", r)
		}
	}

	// The machine-check reload of the damaged word restores a fully
	// clean, consistent array.
	a.ForceWrite(4, 0, bitvec.FromUint64(0, 64))
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("array not clean after reloading the damaged word: %+v", rep)
	}
}
