package replay

// Shrink minimizes a failing trace with delta debugging (ddmin): it
// repeatedly tries removing chunks of events — halves first, then
// finer granularity, finishing with a greedy single-event pass — and
// keeps any reduction for which fails() still holds. fails must be a
// pure predicate (replay is deterministic, so Run-based predicates
// are). The returned trace satisfies fails() and is 1-minimal with
// respect to single-event removal.
func Shrink(tr Trace, fails func(Trace) bool) Trace {
	cur := tr.Clone()
	if !fails(cur) {
		return cur // not failing: nothing to minimize
	}

	// ddmin over complements: split into n chunks, try dropping each.
	n := 2
	for len(cur.Events) >= 2 {
		reduced := false
		chunk := (len(cur.Events) + n - 1) / n
		for start := 0; start < len(cur.Events); start += chunk {
			end := start + chunk
			if end > len(cur.Events) {
				end = len(cur.Events)
			}
			cand := cur.Clone()
			cand.Events = append(cand.Events[:start:start], cur.Events[end:]...)
			if len(cand.Events) == 0 {
				continue
			}
			if fails(cand) {
				cur = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(cur.Events) {
			break
		}
		n = min(2*n, len(cur.Events))
	}

	// Greedy 1-minimal pass: drop single events until a fixpoint.
	for again := true; again; {
		again = false
		for i := 0; i < len(cur.Events); i++ {
			cand := cur.Clone()
			cand.Events = append(cand.Events[:i:i], cur.Events[i+1:]...)
			if len(cand.Events) > 0 && fails(cand) {
				cur = cand
				again = true
				i--
			}
		}
	}
	return cur
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
