package replay

import "sync"

// Recorder collects a totally-ordered event trace from a concurrent
// run: client goroutines, the fault storm, and the scrub loop all
// append through one mutex, so the recorded order is the order in
// which the events were committed. With a single bank (the hard-storm
// configuration) that order is the bank-lock acquisition order, and a
// single-threaded replay of the trace walks the same state sequence
// the live run did.
type Recorder struct {
	mu sync.Mutex
	tr Trace
}

// NewRecorder starts an empty trace over the given geometry.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{tr: Trace{Cfg: cfg}}
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	r.tr.Events = append(r.tr.Events, e)
	r.mu.Unlock()
}

// Read records a 1-byte client read.
func (r *Recorder) Read(client int, addr uint64) {
	r.append(Event{Op: OpRead, Client: client, Addr: addr})
}

// Write records a 1-byte client write.
func (r *Recorder) Write(client int, addr uint64, val byte) {
	r.append(Event{Op: OpWrite, Client: client, Addr: addr, Val: val})
}

// Flip records one injected bit flip.
func (r *Recorder) Flip(bank int, tags bool, row, col int) {
	r.append(Event{Op: OpFlip, Bank: bank, Tags: tags, Row: row, Col: col})
}

// Scrub records one single-bank scrub sweep.
func (r *Recorder) Scrub(bank int) {
	r.append(Event{Op: OpScrub, Bank: bank})
}

// Trace returns a snapshot copy of everything recorded so far.
func (r *Recorder) Trace() Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr.Clone()
}

// SaveFile writes the recorded trace to path.
func (r *Recorder) SaveFile(path string) error {
	return r.Trace().SaveFile(path)
}
