package experiments

import (
	"fmt"

	"twodcache/internal/yield"
)

// Fig8a reproduces Fig. 8(a): expected yield of a 16 MB L2 cache versus
// the number of failing cells, for spare-rows-only, ECC-only, and
// ECC-plus-spares repair policies.
func Fig8a() Table {
	g := yield.Geometry16MBL2()
	faults := []int{0, 400, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3600, 4000}
	policies := []yield.Policy{
		{SpareRows: 128},
		{ECC: true},
		{ECC: true, SpareRows: 16},
		{ECC: true, SpareRows: 32},
	}
	header := []string{"failing cells"}
	for _, p := range policies {
		header = append(header, p.String())
	}
	t := Table{
		ID:     "fig8a",
		Title:  "Fig. 8(a): 16MB L2 cache yield vs failing cells",
		Header: header,
		Notes: []string{
			"Stapper-style random-defect model over (72,64) SECDED words",
		},
	}
	for _, n := range faults {
		row := []string{itoa(n)}
		for _, p := range policies {
			row = append(row, pct(yield.Yield(g, n, p)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8b reproduces Fig. 8(b): probability that every soft error over
// 0..5 years is correctable, for a system of ten 16 MB caches at
// 1000 FIT/Mb, when SECDED has been spent on hard errors — with and
// without 2D coding.
func Fig8b() Table {
	t := Table{
		ID:     "fig8b",
		Title:  "Fig. 8(b): successful correction probability over 5 years (10 x 16MB, 1000 FIT/Mb)",
		Header: []string{"configuration", "0y", "1y", "2y", "3y", "4y", "5y"},
	}
	base := yield.ReliabilityConfig{
		Caches:   10,
		Geometry: yield.Geometry16MBL2(),
		FITPerMb: 1000,
	}
	configs := []struct {
		label string
		her   float64
		twoD  bool
	}{
		{"With 2D coding", 0.00005, true},
		{"Without 2D, HER=0.0005%", 0.000005, false},
		{"Without 2D, HER=0.001%", 0.00001, false},
		{"Without 2D, HER=0.005%", 0.00005, false},
	}
	for _, c := range configs {
		cfg := base
		cfg.HardErrorRate = c.her
		cfg.TwoD = c.twoD
		row := []string{c.label}
		for _, p := range cfg.ReliabilityCurve(5) {
			row = append(row, pct(p))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d SECDED words of %d bits per cache",
		base.Geometry.Words, base.Geometry.WordBits))
	return t
}
