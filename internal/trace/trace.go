// Package trace provides a compact binary format for recording and
// replaying per-thread instruction traces. Recorded traces make
// simulation experiments exactly repeatable across configurations and
// let users drive the CMP simulator with traffic captured elsewhere
// (e.g. converted from real pin/dynamorio traces) instead of the
// built-in synthetic generators.
//
// Format (little-endian):
//
//	magic   [4]byte "2DCT"
//	version uint16 (currently 1)
//	count   uint64 number of records
//	records: 1 control byte + optional address
//	  bit0: IsMem, bit1: IsWrite, bits2-3: address encoding
//	    0 = no address (non-mem)
//	    1 = uint64 absolute address
//	    2 = varint delta from previous address (signed, zig-zag)
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"twodcache/internal/workload"
)

var magic = [4]byte{'2', 'D', 'C', 'T'}

// Version is the current format version.
const Version = 1

const (
	flagMem   = 1 << 0
	flagWrite = 1 << 1
	encShift  = 2
	encNone   = 0
	encAbs    = 1
	encDelta  = 2
)

// Writer streams instruction records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	count    uint64
	lastAddr uint64
	// counting pass finished; header written up-front with a
	// placeholder requires seeking, so Writer defers the header until
	// Flush via an in-memory index... instead we write count at Close
	// only for io.WriteSeeker; for plain writers the count is stored as
	// ^0 (streaming) and readers consume until EOF.
	seeker io.WriteSeeker
}

// NewWriter starts a trace on w. If w is an io.WriteSeeker the record
// count is patched into the header on Close; otherwise the header
// records a streaming marker and readers read to EOF.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriter(w)}
	if s, ok := w.(io.WriteSeeker); ok {
		tw.seeker = s
	}
	if _, err := tw.w.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(tw.w, binary.LittleEndian, uint16(Version)); err != nil {
		return nil, err
	}
	if err := binary.Write(tw.w, binary.LittleEndian, ^uint64(0)); err != nil {
		return nil, err
	}
	return tw, nil
}

// Append records one instruction.
func (tw *Writer) Append(in workload.Instr) error {
	var ctrl byte
	if !in.IsMem {
		if err := tw.w.WriteByte(ctrl); err != nil {
			return err
		}
		tw.count++
		return nil
	}
	ctrl |= flagMem
	if in.IsWrite {
		ctrl |= flagWrite
	}
	delta := int64(in.Addr) - int64(tw.lastAddr)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], delta)
	if n < 8 {
		ctrl |= encDelta << encShift
		if err := tw.w.WriteByte(ctrl); err != nil {
			return err
		}
		if _, err := tw.w.Write(buf[:n]); err != nil {
			return err
		}
	} else {
		ctrl |= encAbs << encShift
		if err := tw.w.WriteByte(ctrl); err != nil {
			return err
		}
		if err := binary.Write(tw.w, binary.LittleEndian, in.Addr); err != nil {
			return err
		}
	}
	tw.lastAddr = in.Addr
	tw.count++
	return nil
}

// Count returns the number of records appended so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes and, when the underlying writer supports seeking,
// patches the record count into the header.
func (tw *Writer) Close() error {
	if err := tw.w.Flush(); err != nil {
		return err
	}
	if tw.seeker != nil {
		if _, err := tw.seeker.Seek(int64(len(magic)+2), io.SeekStart); err != nil {
			return err
		}
		if err := binary.Write(tw.seeker, binary.LittleEndian, tw.count); err != nil {
			return err
		}
		if _, err := tw.seeker.Seek(0, io.SeekEnd); err != nil {
			return err
		}
	}
	return nil
}

// Reader replays a recorded trace.
type Reader struct {
	r        *bufio.Reader
	remain   uint64
	stream   bool
	lastAddr uint64
}

// NewReader opens a trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	return &Reader{r: br, remain: count, stream: count == ^uint64(0)}, nil
}

// Next returns the next instruction, or io.EOF at the end.
func (tr *Reader) Next() (workload.Instr, error) {
	if !tr.stream && tr.remain == 0 {
		return workload.Instr{}, io.EOF
	}
	ctrl, err := tr.r.ReadByte()
	if err != nil {
		if err == io.EOF && tr.stream {
			return workload.Instr{}, io.EOF
		}
		return workload.Instr{}, err
	}
	if !tr.stream {
		tr.remain--
	}
	var in workload.Instr
	if ctrl&flagMem == 0 {
		return in, nil
	}
	in.IsMem = true
	in.IsWrite = ctrl&flagWrite != 0
	switch (ctrl >> encShift) & 3 {
	case encAbs:
		if err := binary.Read(tr.r, binary.LittleEndian, &in.Addr); err != nil {
			return in, fmt.Errorf("trace: truncated address: %w", err)
		}
	case encDelta:
		d, err := binary.ReadVarint(tr.r)
		if err != nil {
			return in, fmt.Errorf("trace: truncated delta: %w", err)
		}
		in.Addr = uint64(int64(tr.lastAddr) + d)
	default:
		return in, fmt.Errorf("trace: memory record without address encoding")
	}
	tr.lastAddr = in.Addr
	return in, nil
}

// ReadAll replays every record.
func (tr *Reader) ReadAll() ([]workload.Instr, error) {
	var out []workload.Instr
	for {
		in, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}

// Record captures n instructions from a workload stream into w.
func Record(w io.Writer, src *workload.Stream, n int) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if err := tw.Append(src.Next()); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Close()
}
