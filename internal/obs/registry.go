package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered entry: exactly one of the accessors is set.
type metric struct {
	kind    metricKind
	help    string
	counter func() uint64
	gauge   func() int64
	hist    *Histogram
}

// Registry holds named metrics and produces coherent snapshots. All
// methods are safe for concurrent use; registration is expected at
// setup time, Snapshot at any time.
//
// A Registry is a view over a shared core: WithPrefix derives a view
// that registers and reports under a name prefix, so N independent
// instances of one subsystem (the shards of a sharded store) can share
// a single exportable registry without colliding.
type Registry struct {
	prefix string
	core   *registryCore
}

// registryCore is the state shared by every prefixed view of one
// registry: names are stored fully qualified (prefix included).
type registryCore struct {
	mu      sync.Mutex
	names   []string // registration order
	metrics map[string]*metric
	clamps  [][2]string // {lower, upper}: snapshot enforces lower <= upper
	lastC   map[string]uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{
		metrics: map[string]*metric{},
		lastC:   map[string]uint64{},
	}}
}

// WithPrefix returns a view of the same registry that registers every
// metric as prefix+name. Snapshots taken through the view contain only
// the view's metrics, with the prefix stripped — a subsystem handed a
// prefixed view reads its own metrics back under the names it
// registered, oblivious to the sharing. Snapshots of the parent
// registry contain every view's metrics fully qualified. Prefixes
// nest: r.WithPrefix("a_").WithPrefix("b_") registers under "a_b_".
func (r *Registry) WithPrefix(prefix string) *Registry {
	return &Registry{prefix: r.prefix + prefix, core: r.core}
}

func (r *Registry) register(name string, m *metric) {
	if name == "" {
		panic("obs: empty metric name")
	}
	name = r.prefix + name
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	c.names = append(c.names, name)
	c.metrics[name] = m
}

// Counter registers and returns a new Counter under name. Panics on a
// duplicate name (metric names identify time series; silently merging
// two would corrupt both).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &metric{kind: kindCounter, help: help, counter: c.Load})
	return c
}

// CounterFunc registers an external monotonic counter read through fn —
// the bridge for subsystems that keep their own atomics (per-bank
// padded counters, array stats) but want to be served by the registry.
// fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &metric{kind: kindCounter, help: help, counter: fn})
}

// Gauge registers and returns a new Gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, &metric{kind: kindGauge, help: help, gauge: g.Load})
	return g
}

// GaugeFunc registers an external gauge read through fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, &metric{kind: kindGauge, help: help, gauge: fn})
}

// Histogram registers and returns a new latency histogram under name;
// empty bounds select DefaultLatencyBounds.
func (r *Registry) Histogram(name, help string, bounds ...time.Duration) *Histogram {
	h := MustHistogram(bounds...)
	r.register(name, &metric{kind: kindHistogram, help: help, hist: h})
	return h
}

// AttachHistogram registers an existing histogram under name — the
// bridge for subsystems that allocate their own histograms but want
// them served by a registry they did not create (mirroring one
// engine's instrumentation into a second registry).
func (r *Registry) AttachHistogram(name, help string, h *Histogram) {
	r.register(name, &metric{kind: kindHistogram, help: help, hist: h})
}

// ClampLE declares the invariant counter[lower] <= counter[upper]:
// every snapshot clamps the lower value so the pair never reads
// impossible (a success count exceeding its attempt count, hits
// exceeding accesses). Both names must already be registered counters
// (through this view — the pair is stored fully qualified).
func (r *Registry) ClampLE(lower, upper string) {
	lower, upper = r.prefix+lower, r.prefix+upper
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range [2]string{lower, upper} {
		m, ok := c.metrics[n]
		if !ok || m.kind != kindCounter {
			panic(fmt.Sprintf("obs: ClampLE(%q, %q): %q is not a registered counter", lower, upper, n))
		}
	}
	c.clamps = append(c.clamps, [2]string{lower, upper})
}

// HistogramSnapshot is one histogram's coherent state: Counts[i] is the
// number of observations in (Bounds[i-1], Bounds[i]], with the final
// bucket unbounded. Count always equals the sum of Counts.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []uint64
	Count  uint64
	Sum    time.Duration
}

// Mean returns the average observation (zero when empty).
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Snapshot reads the histogram's buckets into a coherent
// HistogramSnapshot. Count is derived from the loaded buckets, never
// from an independently-read total, so Σ Counts == Count by
// construction. Safe for concurrent use; Registry.Snapshot builds its
// histogram views through this same method, so a subsystem holding a
// bare *Histogram (the cluster hedger deriving its delay from a live
// latency quantile) sees exactly what the registry would export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		hs.Counts[i] = h.buckets[i].Load()
		hs.Count += hs.Counts[i]
	}
	hs.Sum = time.Duration(h.sum.Load())
	return hs
}

// CountLE returns how many observations are known to be <= bound.
// exact reports whether bound coincides with a bucket boundary; when it
// does not, the count is the conservative lower estimate from the last
// boundary at or below bound. SLO checks should therefore build their
// histogram with the budget as an explicit bound (see cmd/soak).
func (h HistogramSnapshot) CountLE(bound time.Duration) (n uint64, exact bool) {
	for i, b := range h.Bounds {
		if b > bound {
			return n, false
		}
		n += h.Counts[i]
		if b == bound {
			return n, true
		}
	}
	return n, false
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket — a display aid, not an
// SLO primitive (use CountLE against an exact bound for pass/fail
// decisions). Observations in the overflow bucket report the largest
// finite bound: the histogram cannot resolve beyond it. Zero when
// empty.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// Nearest-rank floor: a non-empty sample's quantile is at least its
	// smallest observation, so the rank is at least 1. Without the floor,
	// q=0 against an empty first bucket would answer Bounds[0] — a bucket
	// no observation ever landed in.
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, b := range h.Bounds {
		c := float64(h.Counts[i])
		if cum+c >= rank {
			// c > 0 here: the loop only reaches bucket i with cum < rank,
			// so an empty bucket can never satisfy cum+c >= rank.
			lo := time.Duration(0)
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := (rank - cum) / c
			return lo + time.Duration(frac*float64(b-lo))
		}
		cum += c
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a coherent point-in-time view of a registry: all declared
// cross-counter invariants hold and counters never regress between
// successive snapshots of the same registry.
type Snapshot struct {
	names      []string // registration order, for deterministic export
	help       map[string]string
	kinds      map[string]metricKind
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter value by name (zero if absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge value by name (zero if absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram snapshot by name (zero value if absent).
func (s *Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// Names returns the metric names in registration order.
func (s *Snapshot) Names() []string { return append([]string(nil), s.names...) }

// Snapshot reads every metric under the registry lock and applies the
// coherence rules (see the package comment): ClampLE invariants first,
// then monotonic clamping against the previous snapshot. Safe for
// concurrent use; snapshots serialise against each other but never
// block metric writers.
//
// On a WithPrefix view, only metrics registered through that view are
// read, and names appear with the prefix stripped; clamp invariants
// whose counters fall entirely within the view still apply, and
// monotonic state is shared with every other view of the registry.
func (r *Registry) Snapshot() *Snapshot {
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	p := r.prefix
	s := &Snapshot{
		help:       make(map[string]string, len(c.names)),
		kinds:      make(map[string]metricKind, len(c.names)),
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, full := range c.names {
		if !strings.HasPrefix(full, p) {
			continue
		}
		name := full[len(p):]
		s.names = append(s.names, name)
		m := c.metrics[full]
		s.help[name] = m.help
		s.kinds[name] = m.kind
		switch m.kind {
		case kindCounter:
			s.Counters[name] = m.counter()
		case kindGauge:
			s.Gauges[name] = m.gauge()
		case kindHistogram:
			s.Histograms[name] = m.hist.Snapshot()
		}
	}
	// Rule 2: declared cross-counter invariants.
	for _, cl := range c.clamps {
		if !strings.HasPrefix(cl[0], p) || !strings.HasPrefix(cl[1], p) {
			continue
		}
		lo, up := cl[0][len(p):], cl[1][len(p):]
		if s.Counters[lo] > s.Counters[up] {
			s.Counters[lo] = s.Counters[up]
		}
	}
	// Rule 3: monotonic against the previous snapshot, so rates derived
	// from successive snapshots never go negative. The floor is keyed by
	// fully-qualified name so prefixed and parent views agree.
	for name, v := range s.Counters {
		if prev := c.lastC[p+name]; v < prev {
			s.Counters[name] = prev
		} else {
			c.lastC[p+name] = v
		}
	}
	return s
}
