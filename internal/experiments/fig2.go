package experiments

import (
	"fmt"

	"twodcache/internal/ecc"
	"twodcache/internal/vlsi"
)

// Fig2 reproduces Fig. 2(b) and (c): normalised read energy versus the
// physical bit-interleaving degree (1:1 .. 16:1) for the 64 kB L1 with
// (72,64) SECDED words and the 4 MB L2 with (266,256) SECDED words,
// under each Cacti optimisation objective.
func Fig2() []Table {
	tech := vlsi.Default70nm()
	objs := []vlsi.Objective{vlsi.DelayOpt, vlsi.PowerOpt, vlsi.DelayAreaOpt, vlsi.BalancedOpt}
	specs := []struct {
		id    string
		title string
		spec  vlsi.CacheSpec
	}{
		{"fig2b", "Fig. 2(b): 64kB cache (2-way, 2 ports, 1 bank) read energy vs interleave", vlsi.L1Spec64KB()},
		{"fig2c", "Fig. 2(c): 4MB cache (16-way, 1 port, 8 banks) read energy vs interleave", vlsi.L2Spec4MB()},
	}
	var out []Table
	for _, sc := range specs {
		t := Table{
			ID:     sc.id,
			Title:  sc.title,
			Header: []string{"objective", "1:1", "2:1", "4:1", "8:1", "16:1"},
			Notes: []string{
				"normalised to the 1:1 design under the same objective",
			},
		}
		code := ecc.SpecCorrecting("SECDED", sc.spec.DataWordBits, 1)
		for _, obj := range objs {
			sweep, err := vlsi.InterleaveSweep(tech, sc.spec, code, 16, obj)
			if err != nil {
				panic(fmt.Sprintf("fig2 %s/%v: %v", sc.id, obj, err))
			}
			row := []string{obj.String()}
			for _, x := range sweep {
				row = append(row, f2(x))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}
