package twod

import (
	"sync/atomic"
	"time"

	"twodcache/internal/obs"
)

// arraySink pairs an installed event sink with the label the array
// reports itself as ("data", "tags", ...).
type arraySink struct {
	s     obs.Sink
	label string
}

// SetEventSink installs (or, with nil, removes) a structured event sink
// on the array. The array emits RecoveryStart/RecoveryEnd around each
// Recover invocation (with set and way -1: recovery is array-wide) and
// UncorrectableDetected with the (row, word) coordinates of a word read
// or write that exceeded the 2D coverage. label names the array in
// those events. Clean accesses never touch the sink, so the hot path
// stays allocation-free with any sink installed.
func (a *Array) SetEventSink(s obs.Sink, label string) {
	if s == nil {
		a.sink.Store(nil)
		return
	}
	a.sink.Store(&arraySink{s: s, label: label})
}

func (a *Array) emitUncorrectable(r, w int) {
	if h := a.sink.Load(); h != nil {
		h.s.UncorrectableDetected(h.label, r, w)
	}
}

// Recover runs the 2D recovery process over the whole array and repairs
// what the coverage allows (Fig. 4(b); see recoverImpl for the steps),
// emitting RecoveryStart/RecoveryEnd events when a sink is installed.
func (a *Array) Recover() RecoveryReport {
	h := a.sink.Load()
	if h == nil {
		return a.recoverImpl()
	}
	h.s.RecoveryStart(h.label, -1, -1)
	start := time.Now()
	rep := a.recoverImpl()
	h.s.RecoveryEnd(h.label, -1, -1, rep.Success, time.Since(start))
	return rep
}

// RegisterMetrics exports the array's activity counters through the
// registry under prefix_* names (prefix must be unique per registry,
// e.g. "twod_data"). The counters remain the array's own atomics; the
// registry reads them through CounterFuncs at snapshot time.
func (a *Array) RegisterMetrics(r *obs.Registry, prefix string) {
	load := func(p *uint64) func() uint64 {
		return func() uint64 { return atomic.LoadUint64(p) }
	}
	r.CounterFunc(prefix+"_reads_total", "word read operations", load(&a.stats.Reads))
	r.CounterFunc(prefix+"_writes_total", "word write operations", load(&a.stats.Writes))
	r.CounterFunc(prefix+"_extra_reads_total", "read-before-write operations for vertical parity", load(&a.stats.ExtraReads))
	r.CounterFunc(prefix+"_inline_corrections_total", "single-bit errors repaired in line by SECDED", load(&a.stats.InlineCorrections))
	r.CounterFunc(prefix+"_recoveries_total", "2D recovery invocations", load(&a.stats.Recoveries))
	r.CounterFunc(prefix+"_recovered_words_total", "words repaired by 2D recovery", load(&a.stats.RecoveredWords))
	r.CounterFunc(prefix+"_uncorrectable_total", "recovery attempts that exceeded the 2D coverage", load(&a.stats.Uncorrectable))
}
