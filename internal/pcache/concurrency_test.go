package pcache

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"twodcache/internal/obs"
	"twodcache/internal/twod"
)

// countingSink counts UncorrectableDetected events; everything else is
// the no-op sink.
type countingSink struct {
	obs.NopSink
	uncorrectable atomic.Uint64
}

func (s *countingSink) UncorrectableDetected(array string, set, way int) {
	s.uncorrectable.Add(1)
}

// TestConcurrentTrafficWithInjectionAndScrub hammers the cache from
// four worker goroutines while a fault injector flips bits under the
// bank locks, a scrubber runs full 2D recovery passes, and a flusher
// writes dirty lines back — the whole subsystem racing at once, meant
// to run under -race.
//
// Correctness protocol: workers own disjoint lines (line % workers),
// and with Sets a multiple of workers each set is owned by exactly one
// worker, so only the owner ever repairs a set. The injector flips at
// most one bit per currently-clean word, which the horizontal code is
// guaranteed to detect, so any divergence from the worker's model must
// be announced by a DUE/Repair that advances the set's loss epoch —
// an unannounced mismatch is silent corruption and fails the test.
func TestConcurrentTrafficWithInjectionAndScrub(t *testing.T) {
	const (
		workers = 4
		lines   = 256
		ops     = 1200
	)
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 64, Ways: 2, LineBytes: 64, Banks: 8}, back)
	sink := &countingSink{}
	c.SetEventSink(sink)

	var stop atomic.Bool
	var wg, aux sync.WaitGroup

	// Stats coherence regression: before Stats() ordered its loads and
	// clamped, a reader racing the fast-path hit counters could observe
	// Hits > Accesses. Hammer the snapshot while traffic runs.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			st := c.Stats()
			if st.Hits > st.Accesses {
				t.Errorf("incoherent stats: hits %d > accesses %d", st.Hits, st.Accesses)
				return
			}
			if st.Hits+st.Misses > st.Accesses {
				t.Errorf("incoherent stats: hits %d + misses %d > accesses %d",
					st.Hits, st.Misses, st.Accesses)
				return
			}
		}
	}()

	// Fault injector: single-bit flips into clean words only, under the
	// bank lock so upsets never race a word mid-update.
	aux.Add(1)
	go func() {
		defer aux.Done()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			bi := rng.Intn(c.NumBanks())
			c.WithBankLock(bi, func(data, tags *twod.Array) {
				a := data
				if rng.Intn(4) == 0 {
					a = tags
				}
				r := rng.Intn(a.Rows())
				wpr := a.Config().WordsPerRow
				w := rng.Intn(wpr)
				if _, ok := a.TryRead(r, w); ok {
					bit := rng.Intn(a.RowBits() / wpr)
					a.FlipBit(r, a.Layout().PhysColumn(w, bit))
				}
			})
		}
	}()

	// Background scrubber and flusher.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			c.Scrub()
		}
	}()
	aux.Add(1)
	go func() {
		defer aux.Done()
		for !stop.Load() {
			_ = c.Flush() // a DUE aborts the pass; workers will account for it
		}
	}()

	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + id)))
			expected := map[uint64]byte{}
			wep := map[uint64]uint64{}
			owned := make([]uint64, 0, lines/workers)
			for l := uint64(id); l < lines; l += workers {
				owned = append(owned, l)
			}
			for op := 0; op < ops; op++ {
				l := owned[rng.Intn(len(owned))]
				addr := l * 64
				set := int(l % 64)
				if rng.Intn(2) == 0 {
					val := byte(rng.Intn(256))
					var err error
					for attempt := 0; attempt < 6; attempt++ {
						if err = c.Write(addr, []byte{val}); err == nil {
							break
						}
						if !errors.Is(err, ErrUncorrectable) {
							t.Errorf("worker %d: write error %v", id, err)
							return
						}
						c.Repair(addr)
					}
					if err != nil {
						t.Errorf("worker %d: write never succeeded: %v", id, err)
						return
					}
					expected[l] = val
					wep[l] = c.LossEpoch(set)
					continue
				}
				got, err := c.Read(addr, 1)
				if err != nil {
					if !errors.Is(err, ErrUncorrectable) {
						t.Errorf("worker %d: read error %v", id, err)
						return
					}
					c.Repair(addr)
					got, err = c.Read(addr, 1)
					if err != nil {
						t.Errorf("worker %d: read after repair: %v", id, err)
						return
					}
					// Data may have reverted to backing; resync the model.
					expected[l] = got[0]
					wep[l] = c.LossEpoch(set)
					continue
				}
				if got[0] != expected[l] {
					if c.LossEpoch(set) == wep[l] {
						t.Errorf("worker %d: SILENT corruption line %d: got %d want %d",
							id, l, got[0], expected[l])
						return
					}
					// Accounted loss (repair reverted the set): resync.
					expected[l] = got[0]
					wep[l] = c.LossEpoch(set)
				}
			}
		}(id)
	}

	wg.Wait()
	stop.Store(true)
	aux.Wait()

	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("test exercised nothing: %+v", st)
	}
	if st.Hits+st.Misses > st.Accesses {
		t.Fatalf("final stats incoherent: %+v", st)
	}
	// Every counted uncorrectable emitted exactly one sink event.
	if got := sink.uncorrectable.Load(); got != st.Uncorrectable {
		t.Fatalf("sink saw %d uncorrectable events, counters say %d", got, st.Uncorrectable)
	}
}

// TestConcurrentDecommissionUnderTraffic races graceful degradation
// against live traffic: ways are decommissioned and re-enabled while
// readers pound the affected sets. Meant for -race; correctness of the
// served values is covered by the epoch protocol above.
func TestConcurrentDecommissionUnderTraffic(t *testing.T) {
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64, Banks: 4}, back)
	for l := uint64(0); l < 16; l++ {
		if err := c.Write(l*64, []byte{byte(l)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 2000; i++ {
				l := uint64(rng.Intn(16))
				got, err := c.Read(l*64, 1)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// All lines are clean (flushed, never rewritten), so even a
				// decommission mid-stream must serve the right value.
				if got[0] != byte(l) {
					t.Errorf("line %d read %d", l, got[0])
					return
				}
			}
		}(id)
	}
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		rng := rand.New(rand.NewSource(99))
		for !stop.Load() {
			set, way := rng.Intn(16), rng.Intn(2)
			c.Decommission(set, way)
			c.Reenable(set, way)
		}
	}()
	wg.Wait()
	stop.Store(true)
	dwg.Wait()
	// Leave the cache whole for the final sanity check.
	for set := 0; set < 16; set++ {
		for way := 0; way < 2; way++ {
			c.Reenable(set, way)
		}
	}
	for l := uint64(0); l < 16; l++ {
		got, err := c.Read(l*64, 1)
		if err != nil || got[0] != byte(l) {
			t.Fatalf("final line %d: %v %v", l, got, err)
		}
	}
}
