// Package fault provides fault models and injection campaigns for the
// protected arrays: clustered multi-bit upsets, row and column
// failures, FIT-driven soft-error processes, and HER-driven
// manufacture-time hard errors. Campaigns measure correction coverage —
// the quantity behind the paper's Fig. 3 comparison and the 32x32
// coverage claim.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Flip identifies one upset cell in physical array coordinates.
type Flip struct {
	Row, Col int
}

// Pattern is a set of cell upsets applied atomically (one error event).
type Pattern struct {
	// Kind describes the fault model that generated the pattern.
	Kind string
	// Flips lists the upset cells. Duplicates are allowed and cancel
	// (an even number of flips of the same cell restores it).
	Flips []Flip
}

// Bounds returns the bounding box (height, width) of the pattern, or
// zeros for an empty pattern.
func (p Pattern) Bounds() (h, w int) {
	if len(p.Flips) == 0 {
		return 0, 0
	}
	minR, maxR := p.Flips[0].Row, p.Flips[0].Row
	minC, maxC := p.Flips[0].Col, p.Flips[0].Col
	for _, f := range p.Flips[1:] {
		if f.Row < minR {
			minR = f.Row
		}
		if f.Row > maxR {
			maxR = f.Row
		}
		if f.Col < minC {
			minC = f.Col
		}
		if f.Col > maxC {
			maxC = f.Col
		}
	}
	return maxR - minR + 1, maxC - minC + 1
}

// Target is any array that exposes raw physical bit flips; both
// twod.Array and twod.ConventionalArray satisfy it.
type Target interface {
	FlipBit(row, col int)
	Rows() int
	RowBits() int
}

// Apply injects the pattern into the target.
func Apply(t Target, p Pattern) {
	for _, f := range p.Flips {
		t.FlipBit(f.Row, f.Col)
	}
}

// SolidCluster returns a fully-flipped h x w rectangle at (row, col).
func SolidCluster(row, col, h, w int) Pattern {
	p := Pattern{Kind: fmt.Sprintf("solid-%dx%d", h, w)}
	for r := row; r < row+h; r++ {
		for c := col; c < col+w; c++ {
			p.Flips = append(p.Flips, Flip{r, c})
		}
	}
	return p
}

// SparseCluster returns a random non-empty subset of an h x w rectangle
// with the given fill density in (0, 1]. The pattern is guaranteed to
// touch its extreme rows and columns so Bounds() == (h, w).
func SparseCluster(rng *rand.Rand, row, col, h, w int, density float64) Pattern {
	p := Pattern{Kind: fmt.Sprintf("sparse-%dx%d", h, w)}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if rng.Float64() < density {
				p.Flips = append(p.Flips, Flip{row + r, col + c})
			}
		}
	}
	// Pin the corners' rows/cols so the footprint really spans h x w.
	p.Flips = append(p.Flips,
		Flip{row, col},
		Flip{row + h - 1, col + w - 1},
	)
	return p
}

// RowFailure flips every cell of row r across width bits.
func RowFailure(r, width int) Pattern {
	p := Pattern{Kind: "row-failure"}
	for c := 0; c < width; c++ {
		p.Flips = append(p.Flips, Flip{r, c})
	}
	return p
}

// ColumnStuckAt models a stuck-at column: each of the rows cells flips
// independently with probability 1/2 (a stuck value disagrees with
// random stored data half the time).
func ColumnStuckAt(rng *rand.Rand, col, rows int) Pattern {
	p := Pattern{Kind: "column-stuck"}
	for r := 0; r < rows; r++ {
		if rng.Intn(2) == 1 {
			p.Flips = append(p.Flips, Flip{r, col})
		}
	}
	return p
}

// SingleBit returns a one-cell upset.
func SingleBit(row, col int) Pattern {
	return Pattern{Kind: "single-bit", Flips: []Flip{{row, col}}}
}

// RandomBits returns n independent uniformly random upsets.
func RandomBits(rng *rand.Rand, rows, cols, n int) Pattern {
	p := Pattern{Kind: fmt.Sprintf("random-%d", n)}
	for i := 0; i < n; i++ {
		p.Flips = append(p.Flips, Flip{rng.Intn(rows), rng.Intn(cols)})
	}
	return p
}

// --- soft-error process -----------------------------------------------

// FITRate converts a per-Mb FIT figure (failures per 10^9 device-hours
// per megabit) and a capacity in bits into expected upsets per hour.
func FITRate(fitPerMb float64, bits int) float64 {
	return fitPerMb * (float64(bits) / 1e6) / 1e9
}

// PoissonEvents samples the number of error events in the given number
// of hours under rate lambda events/hour (Knuth's method for small
// means, normal approximation for large).
func PoissonEvents(rng *rand.Rand, lambdaPerHour, hours float64) int {
	mean := lambdaPerHour * hours
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		// Normal approximation.
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// EventSize describes the footprint of a single upset event.
type EventSize struct {
	H, W int
}

// EventSizeDist is a discrete distribution over multi-bit upset
// footprints. As technology scales the paper cites single-event
// multi-bit upsets growing from rare to dominant (refs [29,34,41]).
type EventSizeDist struct {
	Sizes []EventSize
	Probs []float64 // must sum to ~1
}

// Validate checks the distribution.
func (d EventSizeDist) Validate() error {
	if len(d.Sizes) == 0 || len(d.Sizes) != len(d.Probs) {
		return fmt.Errorf("fault: malformed size distribution")
	}
	sum := 0.0
	for _, p := range d.Probs {
		if p < 0 {
			return fmt.Errorf("fault: negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("fault: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Sample draws a footprint.
func (d EventSizeDist) Sample(rng *rand.Rand) EventSize {
	x := rng.Float64()
	acc := 0.0
	for i, p := range d.Probs {
		acc += p
		if x < acc {
			return d.Sizes[i]
		}
	}
	return d.Sizes[len(d.Sizes)-1]
}

// ModernDist is a representative upset-footprint mix for a nanometre
// node: mostly single-bit with a tail of 2x1, 2x2, 4x4 and 8x8 events
// (shaped after the characterisation in the paper's refs [29,34]).
func ModernDist() EventSizeDist {
	return EventSizeDist{
		Sizes: []EventSize{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 4}, {8, 8}},
		Probs: []float64{0.60, 0.10, 0.10, 0.10, 0.07, 0.03},
	}
}

// SoftEvent generates one upset event with the drawn footprint at a
// uniformly random anchor inside the array.
func SoftEvent(rng *rand.Rand, rows, cols int, dist EventSizeDist) Pattern {
	sz := dist.Sample(rng)
	h, w := sz.H, sz.W
	if h > rows {
		h = rows
	}
	if w > cols {
		w = cols
	}
	r0 := rng.Intn(rows - h + 1)
	c0 := rng.Intn(cols - w + 1)
	return SparseCluster(rng, r0, c0, h, w, 0.8)
}

// HardErrors returns stuck cells from a faulty-bit hard error rate
// (probability each cell is defective), as the paper's yield studies
// use (HER 0.0005%-0.005%). The returned flips model cells whose stuck
// value disagrees with the intended contents (half of defects).
func HardErrors(rng *rand.Rand, rows, cols int, her float64) Pattern {
	p := Pattern{Kind: "hard-errors"}
	// Expected number of defects; sample per-cell only for small arrays.
	n := PoissonEvents(rng, her*float64(rows*cols), 1)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 { // stuck value happens to match: invisible
			continue
		}
		p.Flips = append(p.Flips, Flip{rng.Intn(rows), rng.Intn(cols)})
	}
	return p
}
