package cluster

import (
	"context"
	"errors"
	"time"

	"twodcache/internal/netsrv"
	"twodcache/internal/resilience"
)

// Write stores data at addr on the cluster.
func (c *Client) Write(addr uint64, data []byte) error {
	return c.WriteCtx(context.Background(), addr, data)
}

// wOutcome classifies one replica's write attempt.
type wOutcome int

const (
	wApplied wOutcome = iota
	// wNotApplied: the replica definitely did not apply the write (never
	// sent, or the server refused before applying).
	wNotApplied
	// wAmbiguous: the request may have been applied — the transport died
	// after send, or a deadline raced the apply.
	wAmbiguous
)

// WriteCtx fans the write out to every replica under addr's stripe
// lock (so concurrent writes to one addr land in the same order
// everywhere). The write succeeds if at least one replica applied it;
// every replica that did not gets addr in its missed set and is
// excluded from reads until read-repair copies the value across.
//
// If no replica applied it, the outcome depends on ambiguity: when
// every failure is a definite not-applied, the cluster retries with
// backoff; when any failure is ambiguous and writes are not declared
// idempotent, it returns ErrAmbiguousWrite immediately — a blind retry
// could apply the write twice.
func (c *Client) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.writes.Inc()
	st := c.stripe(addr)
	st.Lock()
	defer st.Unlock()
	c.noteWritten(addr, len(data))

	// The selftest skew hook: every Nth write silently skips one
	// replica, creating exactly the divergence the freshness machinery
	// exists to prevent. Shadow verification must catch it.
	skip := -1
	if c.cfg.SelftestSkewEvery > 0 {
		if seq := c.writeSeq.Add(1); seq%uint64(c.cfg.SelftestSkewEvery) == 0 {
			skip = int(seq/uint64(c.cfg.SelftestSkewEvery)) % len(c.eps)
			c.selftestSkipped.Inc()
		}
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		applied, ambiguous, err := c.writeRound(ctx, addr, data, skip)
		if applied > 0 {
			return nil
		}
		lastErr = err
		if lastErr == nil {
			// No replica was even usable this round — retryable: a
			// redial or breaker probe may restore one.
			c.noReplicaErrors.Inc()
			lastErr = ErrNoReplicas
		}
		if ambiguous && !c.cfg.IdempotentWrites {
			c.ambiguousWrites.Inc()
			return errors.Join(ErrAmbiguousWrite, lastErr)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !isRetryable(lastErr) || attempt >= c.cfg.MaxRetries {
			return lastErr
		}
		pause := c.jitteredBackoff(attempt)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < 2*pause {
			return lastErr
		}
		c.retries.Inc()
		select {
		case <-time.After(pause):
		case <-ctx.Done():
			return ctx.Err()
		case <-c.done:
			return ErrClosed
		}
	}
}

// writeRound fans one write attempt out to every replica concurrently
// and aggregates the outcomes. Replicas that did not definitely apply
// the write are marked missed.
func (c *Client) writeRound(ctx context.Context, addr uint64, data []byte, skip int) (applied int, anyAmbiguous bool, lastErr error) {
	type wres struct {
		ep      *endpoint
		outcome wOutcome
		err     error
	}
	results := make(chan wres, len(c.eps))
	launched := 0
	for i, ep := range c.eps {
		if i == skip {
			// Deliberately silent: no missed record, no metrics beyond
			// the skip counter — this is the injected bug.
			continue
		}
		conn, probe, usable := c.admitWrite(ep)
		if !usable {
			ep.markMissed(addr, len(data))
			continue
		}
		launched++
		go func(ep *endpoint, conn Conn, probe bool) {
			err := conn.WriteCtx(ctx, addr, data)
			out := classifyWrite(ctx, err)
			switch {
			case err == nil:
				ep.brk.Record(probe, true)
			case ctxError(ctx, err) && out == wAmbiguous:
				// The caller gave up; says nothing about the replica.
				ep.brk.Release(probe)
			default:
				ep.brk.Record(probe, false)
			}
			if isTransportDead(err) {
				ep.markDown(conn)
			}
			results <- wres{ep, out, err}
		}(ep, conn, probe)
	}
	for i := 0; i < launched; i++ {
		r := <-results
		switch r.outcome {
		case wApplied:
			applied++
			r.ep.clearMissed(addr)
		case wAmbiguous:
			anyAmbiguous = true
			r.ep.markMissed(addr, len(data))
			lastErr = r.err
		default:
			r.ep.markMissed(addr, len(data))
			lastErr = r.err
		}
	}
	return applied, anyAmbiguous, lastErr
}

// admitWrite gates one replica's participation in a write fan-out on
// transport liveness and its breaker.
func (c *Client) admitWrite(ep *endpoint) (conn Conn, probe, usable bool) {
	conn = ep.liveConn()
	if conn == nil {
		return nil, false, false
	}
	ok, probe := ep.admit()
	if !ok {
		return nil, false, false
	}
	return conn, probe, true
}

// classifyWrite sorts a per-replica write error into applied /
// not-applied / ambiguous.
//
// Definite not-applied: the server answered with a refusal it issues
// before touching the store (draining, bad request, recovery-abandoned)
// — an answered request is a request whose fate the server reported.
// Ambiguous: the transport died after the frame may have been sent, or
// a deadline fired server-side racing the apply, or our own context
// gave up while the request was in flight.
func classifyWrite(ctx context.Context, err error) wOutcome {
	switch {
	case err == nil:
		return wApplied
	case errors.Is(err, netsrv.ErrDraining),
		errors.Is(err, netsrv.ErrBadRequest),
		errors.Is(err, netsrv.ErrUnsupported),
		errors.Is(err, resilience.ErrRecoveryInProgress):
		return wNotApplied
	}
	return wAmbiguous
}
