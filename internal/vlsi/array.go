package vlsi

import (
	"fmt"
	"math"
)

// ArrayParams describes one SRAM bank to be organised and costed.
type ArrayParams struct {
	// Bits is the total storage of the bank, including check bits.
	Bits int
	// AccessBits is the number of bits delivered per access (one
	// codeword: data + check bits).
	AccessBits int
	// Interleave is the physical bit interleaving degree d: d codewords
	// share each physical row, so an access activates d*AccessBits
	// bitlines (the pseudo-read cost of §2.2).
	Interleave int
	// Ports is the number of read/write ports.
	Ports int
}

// Validate checks the parameters.
func (p ArrayParams) Validate() error {
	if p.Bits <= 0 || p.AccessBits <= 0 {
		return fmt.Errorf("vlsi: invalid array params %+v", p)
	}
	if p.Interleave <= 0 || p.Ports <= 0 {
		return fmt.Errorf("vlsi: interleave/ports must be positive: %+v", p)
	}
	if p.Bits < p.AccessBits*p.Interleave {
		return fmt.Errorf("vlsi: bank smaller than one physical row: %+v", p)
	}
	return nil
}

// Organization is one point in the design space.
type Organization struct {
	// Ndbl is the number of bitline divisions (sub-array stacking).
	Ndbl int
	// Ndwl is the number of wordline divisions.
	Ndwl int
	// ColMult widens the array: the physical row holds ColMult word
	// groups side by side (akin to Cacti's Nspd).
	ColMult int
}

// Metrics reports the modelled cost of an organisation.
type Metrics struct {
	// Org is the organisation that produced these numbers.
	Org Organization
	// DelayNS is the access time in nanoseconds.
	DelayNS float64
	// EnergyPJ is the dynamic read energy per access in picojoules.
	EnergyPJ float64
	// AreaMM2 is the bank area in square millimetres.
	AreaMM2 float64
}

// Objective selects what the explorer optimises, mirroring the paper's
// four Cacti objective functions (Fig. 2).
type Objective int

const (
	// DelayOpt minimises access time.
	DelayOpt Objective = iota
	// PowerOpt minimises read energy.
	PowerOpt
	// DelayAreaOpt minimises the delay-area product.
	DelayAreaOpt
	// BalancedOpt minimises the delay*energy*area product.
	BalancedOpt
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case DelayOpt:
		return "delay-opt"
	case PowerOpt:
		return "power-opt"
	case DelayAreaOpt:
		return "delay+area-opt"
	case BalancedOpt:
		return "balanced-opt"
	default:
		return "unknown"
	}
}

// minSubarrayCols is the minimum practical sub-array width in columns
// (sense-amp pitch and layout efficiency forbid very narrow stripes).
// All columns of the activated sub-array row swing on an access, so
// this width is also the energy floor an access pays regardless of how
// few bits it needs — the mechanism that makes small interleave degrees
// nearly free (Fig. 2(b)) while degrees whose d*codeword exceeds the
// floor pay linearly (Fig. 2(c)).
const minSubarrayCols = 512

// minSubarrayRows keeps bitline segments realistic.
const minSubarrayRows = 64

// Cost evaluates one organisation. Geometry:
//
//	totalCols  = Interleave * AccessBits * ColMult
//	totalRows  = Bits / totalCols
//	colsPerSub = totalCols / Ndwl     (>= minSubarrayCols where possible)
//	rowsPerSub = totalRows / Ndbl     (>= minSubarrayRows)
//	activated  = max(Interleave*AccessBits, colsPerSub)
//
// An access decodes, drives one wordline segment, discharges the
// activated bitlines over rowsPerSub of load, senses AccessBits outputs
// through the Interleave:1 column mux, and drives them across the bank.
func Cost(t Tech, p ArrayParams, org Organization) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	if org.Ndbl <= 0 || org.Ndwl <= 0 || org.ColMult <= 0 {
		return Metrics{}, fmt.Errorf("vlsi: invalid organisation %+v", org)
	}
	totalCols := p.Interleave * p.AccessBits * org.ColMult
	totalRows := p.Bits / totalCols
	if totalRows < org.Ndbl || totalRows == 0 {
		return Metrics{}, fmt.Errorf("vlsi: organisation %+v leaves no rows", org)
	}
	if totalRows > 8*totalCols {
		return Metrics{}, fmt.Errorf("vlsi: aspect ratio too tall (%dx%d)", totalRows, totalCols)
	}
	rowsPerSub := float64(totalRows) / float64(org.Ndbl)
	if rowsPerSub < minSubarrayRows {
		return Metrics{}, fmt.Errorf("vlsi: sub-array too short (%v rows)", rowsPerSub)
	}
	colsPerSub := float64(totalCols) / float64(org.Ndwl)
	minCols := float64(minSubarrayCols)
	if float64(totalCols) < minCols {
		minCols = float64(totalCols)
	}
	if colsPerSub < minCols || colsPerSub < float64(p.AccessBits) {
		return Metrics{}, fmt.Errorf("vlsi: sub-array too narrow (%v cols)", colsPerSub)
	}
	activatedCols := colsPerSub
	if minAct := float64(p.Interleave * p.AccessBits); activatedCols < minAct {
		activatedCols = minAct
	}

	portFactor := 1 + t.PortAreaFactor*float64(p.Ports-1)
	nSub := float64(org.Ndbl * org.Ndwl)

	// --- area ---
	cellArea := float64(p.Bits) * t.CellArea * portFactor // um^2
	saStrips := nSub * colsPerSub * t.CellW * (t.SubarrayOverheadH * t.CellH)
	decStrips := nSub * rowsPerSub * t.CellH * (t.SubarrayOverheadW * t.CellW)
	areaUM2 := cellArea + saStrips + decStrips
	areaMM2 := areaUM2 / 1e6
	edgeMM := math.Sqrt(areaMM2)

	// --- energy (fJ) ---
	addrBits := math.Log2(float64(totalRows))
	eDecode := t.EDecodePerBit*addrBits + 2.0*nSub // global + predecode fanout
	eWordline := activatedCols * t.CWordlinePerCell * portFactor * t.Vdd * t.Vdd
	eBitline := activatedCols * t.CBitlinePerCell * rowsPerSub * t.Vdd * t.VSwing * portFactor
	eSense := float64(p.AccessBits) * t.ESenseAmp
	eMux := float64(p.Interleave*p.AccessBits) * t.EMuxPerCol
	eOut := float64(p.AccessBits) * (edgeMM * 1000) * t.CWirePerUM * t.Vdd * t.Vdd * 0.1
	energyFJ := eDecode + eWordline + eBitline + eSense + eMux + eOut
	energyPJ := energyFJ / 1000

	// --- delay (ns) ---
	tDecode := t.TGate * (addrBits + 6)
	segLenMM := colsPerSub * t.CellW / 1000
	tWordline := t.TWordlinePerMM2 * segLenMM * segLenMM
	tBitline := t.TBitlinePerRow * rowsPerSub
	tTree := t.TGate * math.Sqrt(nSub) // H-tree hops to reach the sub-array
	tMux := t.TGate * (math.Log2(float64(p.Interleave)) + 1)
	tOut := 0.08 * edgeMM
	delayNS := tDecode + tWordline + tBitline + tTree + t.TSenseAmp + tMux + tOut

	return Metrics{Org: org, DelayNS: delayNS, EnergyPJ: energyPJ, AreaMM2: areaMM2}, nil
}

// Explore sweeps the organisation space and returns the best point
// under the given objective.
func Explore(t Tech, p ArrayParams, obj Objective) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	pow2 := []int{1, 2, 4, 8, 16, 32, 64}
	cms := []int{1, 2, 4, 8}
	best := Metrics{}
	found := false
	for _, ndbl := range pow2 {
		for _, ndwl := range pow2 {
			for _, cm := range cms {
				m, err := Cost(t, p, Organization{Ndbl: ndbl, Ndwl: ndwl, ColMult: cm})
				if err != nil {
					continue
				}
				if !found || score(m, obj) < score(best, obj) {
					best = m
					found = true
				}
			}
		}
	}
	if !found {
		return Metrics{}, fmt.Errorf("vlsi: no feasible organisation for %+v", p)
	}
	return best, nil
}

func score(m Metrics, obj Objective) float64 {
	switch obj {
	case DelayOpt:
		return m.DelayNS
	case PowerOpt:
		return m.EnergyPJ
	case DelayAreaOpt:
		return m.DelayNS * m.AreaMM2
	case BalancedOpt:
		return m.DelayNS * m.EnergyPJ * m.AreaMM2
	default:
		return m.DelayNS
	}
}
