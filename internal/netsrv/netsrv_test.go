package netsrv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/store"
)

const lineBytes = 64

var testCacheCfg = pcache.Config{Sets: 16, Ways: 2, LineBytes: lineBytes, Banks: 4}

// newStore builds an N-shard store over a fresh MapBacking. Scrubbers
// and watchdogs stay stopped: tests that need background goroutines
// start them explicitly.
func newStore(t *testing.T, shards int, rcfg resilience.Config) (*store.Sharded, *pcache.MapBacking) {
	t.Helper()
	backing := pcache.NewMapBacking(lineBytes)
	s, err := store.New(store.Config{
		Shards:     shards,
		Cache:      testCacheCfg,
		Resilience: rcfg,
	}, backing)
	if err != nil {
		t.Fatal(err)
	}
	return s, backing
}

// startServer serves st on a loopback listener and returns the dial
// address. Shutdown runs in t.Cleanup unless the test shut down first.
func startServer(t *testing.T, st store.Store, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Store = st
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("cleanup Shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("Serve returned %v after graceful shutdown, want nil", err)
		}
	})
	return srv, l.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFrameRoundTrip pins the codec: appendFrame and readFrame are
// inverses, and out-of-range lengths are rejected before allocation.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("twelve bytes")
	buf := appendFrame(nil, opWrite, 0xdeadbeef, payload[:6], payload[6:])
	f, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.op != opWrite || f.id != 0xdeadbeef || !bytes.Equal(f.payload, payload) {
		t.Fatalf("round trip gave op=%d id=%#x payload=%q", f.op, f.id, f.payload)
	}

	// Empty payload is legal (STATS request).
	f, err = readFrame(bytes.NewReader(appendFrame(nil, opStats, 7)))
	if err != nil || len(f.payload) != 0 {
		t.Fatalf("empty frame: %v, payload %d bytes", err, len(f.payload))
	}

	// A length below the fixed header or above maxFrame is a protocol
	// error, not an allocation.
	for _, length := range []uint32{0, frameFixed - 1, maxFrame + 1} {
		bad := be32Append(nil, length)
		bad = append(bad, make([]byte, 16)...)
		if _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("length %d accepted", length)
		}
	}
}

// TestStatsCodec pins the stats encoding against field reordering.
func TestStatsCodec(t *testing.T) {
	want := pcache.Stats{
		Accesses: 1, Hits: 2, Misses: 3, Writebacks: 4,
		ErrorsRecovered: 5, Uncorrectable: 6, Bypassed: 7, DirtyLinesLost: 8,
	}
	got, err := decodeStats(encodeStats(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decode(encode(%+v)) = %+v", want, got)
	}
	if _, err := decodeStats(make([]byte, statsLen-1)); err == nil {
		t.Fatal("short stats payload accepted")
	}
}

// TestStatusTaxonomy pins the error<->status mapping in both
// directions: statusOf classifies store errors, RemoteError unwraps
// back to the identical sentinel, so errors.Is behaves the same for a
// remote caller as for a local one.
func TestStatusTaxonomy(t *testing.T) {
	cases := []struct {
		err      error
		status   uint8
		sentinel error
	}{
		{nil, stOK, nil},
		{fmt.Errorf("x: %w", pcache.ErrUncorrectable), stUncorrectable, pcache.ErrUncorrectable},
		{&pcache.UncorrectableError{Array: "data", Set: 1}, stUncorrectable, pcache.ErrUncorrectable},
		{resilience.ErrRecoveryInProgress, stRecoveryInProgress, resilience.ErrRecoveryInProgress},
		// A RecoveryInProgressError carries the deadline cause in its
		// chain; the specific classification must win over stDeadline.
		{&resilience.RecoveryInProgressError{Err: context.DeadlineExceeded}, stRecoveryInProgress, resilience.ErrRecoveryInProgress},
		{context.DeadlineExceeded, stDeadline, context.DeadlineExceeded},
		{context.Canceled, stCanceled, context.Canceled},
		{errors.New("opaque"), stError, nil},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.status {
			t.Fatalf("statusOf(%v) = %d, want %d", tc.err, got, tc.status)
		}
		back := statusErr(tc.status, "msg")
		if tc.status == stOK {
			if back != nil {
				t.Fatal("statusErr(stOK) != nil")
			}
			continue
		}
		if tc.sentinel != nil && !errors.Is(back, tc.sentinel) {
			t.Fatalf("statusErr(%d) = %v, does not match %v", tc.status, back, tc.sentinel)
		}
	}
	// Protocol-level statuses round-trip to their own sentinels.
	for _, tc := range []struct {
		status   uint8
		sentinel error
	}{{stDraining, ErrDraining}, {stBadRequest, ErrBadRequest}, {stUnsupported, ErrUnsupported}} {
		if err := statusErr(tc.status, ""); !errors.Is(err, tc.sentinel) {
			t.Fatalf("status %d does not unwrap to %v", tc.status, tc.sentinel)
		}
	}
}

// TestDifferentialLoopback is the serving layer's oracle: the same op
// sequence applied through a TCP client and applied directly to an
// identically-configured local store must produce identical read
// results and identical backing contents. Any divergence is a wire
// layer bug — encoding, batching, ordering, or geometry.
func TestDifferentialLoopback(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			remote, remoteBack := newStore(t, shards, resilience.Config{})
			local, localBack := newStore(t, shards, resilience.Config{})
			_, addr := startServer(t, remote, Config{BatchSize: 8})
			cl := dial(t, addr)

			const lines = 96
			rng := rand.New(rand.NewSource(42))
			randLine := func(buf []byte) []byte {
				rng.Read(buf)
				return buf
			}
			for i := 0; i < 600; i++ {
				switch op := rng.Intn(10); {
				case op < 3: // single write, whole line
					a := uint64(rng.Intn(lines)) * lineBytes
					data := randLine(make([]byte, lineBytes))
					rerr := cl.Write(a, data)
					lerr := local.Write(a, data)
					if (rerr == nil) != (lerr == nil) {
						t.Fatalf("op %d: write err remote=%v local=%v", i, rerr, lerr)
					}
				case op < 6: // single read, random span within a line
					n := 1 + rng.Intn(lineBytes)
					a := uint64(rng.Intn(lines))*lineBytes + uint64(rng.Intn(lineBytes-n+1))
					rdata, rerr := cl.Read(a, n)
					ldata, lerr := local.Read(a, n)
					if (rerr == nil) != (lerr == nil) {
						t.Fatalf("op %d: read err remote=%v local=%v", i, rerr, lerr)
					}
					if !bytes.Equal(rdata, ldata) {
						t.Fatalf("op %d: read divergence at %#x: remote %x local %x", i, a, rdata, ldata)
					}
				case op < 8: // batch write
					k := 1 + rng.Intn(12)
					rops := make([]pcache.WriteOp, k)
					lops := make([]pcache.WriteOp, k)
					for j := 0; j < k; j++ {
						a := uint64(rng.Intn(lines)) * lineBytes
						data := randLine(make([]byte, lineBytes))
						rops[j] = pcache.WriteOp{Addr: a, Data: data}
						lops[j] = pcache.WriteOp{Addr: a, Data: data}
					}
					rfail, err := cl.WriteBatch(rops)
					if err != nil {
						t.Fatalf("op %d: WriteBatch transport: %v", i, err)
					}
					if lfail := local.WriteBatch(lops); rfail != lfail {
						t.Fatalf("op %d: batch write failed remote=%d local=%d", i, rfail, lfail)
					}
				case op < 9: // batch read
					k := 1 + rng.Intn(12)
					rops := make([]pcache.ReadOp, k)
					lops := make([]pcache.ReadOp, k)
					for j := 0; j < k; j++ {
						a := uint64(rng.Intn(lines)) * lineBytes
						rops[j] = pcache.ReadOp{Addr: a, Dst: make([]byte, lineBytes)}
						lops[j] = pcache.ReadOp{Addr: a, Dst: make([]byte, lineBytes)}
					}
					rfail, err := cl.ReadBatch(rops)
					if err != nil {
						t.Fatalf("op %d: ReadBatch transport: %v", i, err)
					}
					if lfail := local.ReadBatch(lops); rfail != lfail {
						t.Fatalf("op %d: batch read failed remote=%d local=%d", i, rfail, lfail)
					}
					for j := 0; j < k; j++ {
						if !bytes.Equal(rops[j].Dst, lops[j].Dst) {
							t.Fatalf("op %d[%d]: batch read divergence at %#x", i, j, rops[j].Addr)
						}
					}
				default: // flush
					if err := cl.Flush(); err != nil {
						t.Fatalf("op %d: remote flush: %v", i, err)
					}
					if err := local.Flush(); err != nil {
						t.Fatalf("op %d: local flush: %v", i, err)
					}
				}
			}

			// Remote stats must be live (exact values differ from the
			// local store: the wire layer re-groups singles into batches,
			// which is content-equivalent, not stats-equivalent).
			st, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Accesses == 0 {
				t.Fatal("remote Stats() shows zero accesses after 600 ops")
			}

			// Final flush, then the backings must agree line for line.
			if err := cl.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := local.Flush(); err != nil {
				t.Fatal(err)
			}
			for line := 0; line < lines; line++ {
				a := uint64(line) * lineBytes
				if r, l := remoteBack.ReadLine(a), localBack.ReadLine(a); !bytes.Equal(r, l) {
					t.Fatalf("backing divergence at line %d: remote %x local %x", line, r, l)
				}
			}
		})
	}
}

// TestPipelineBatching pins the wire layer's whole reason to exist:
// pipelined single ops are re-grouped into store batch calls. A raw
// connection fires 50 READ frames before draining any response; the
// server must answer all 50 correctly while issuing far fewer store
// batch calls than ops.
func TestPipelineBatching(t *testing.T) {
	st, _ := newStore(t, 1, resilience.Config{})
	want := bytes.Repeat([]byte{0xAB}, lineBytes)
	if err := st.Write(0, want); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, st, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 50
	var buf []byte
	for id := uint64(1); id <= n; id++ {
		p := be64Append(nil, 0) // no deadline: eligible for accumulation
		p = be64Append(p, 0)
		p = be32Append(p, lineBytes)
		buf = appendFrame(buf, opRead, id, p)
	}
	// One write syscall on loopback: the server's reader sees the whole
	// pipeline buffered and accumulates before flushing.
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		f, err := readFrame(nc)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if f.op != opRead || seen[f.id] || f.id < 1 || f.id > n {
			t.Fatalf("response %d: op=%d id=%d", i, f.op, f.id)
		}
		seen[f.id] = true
		if f.payload[0] != stOK || !bytes.Equal(f.payload[1:], want) {
			t.Fatalf("response id %d: status %d, %d bytes", f.id, f.payload[0], len(f.payload)-1)
		}
	}

	snap := srv.Metrics().Snapshot()
	if got := snap.Counter(metricBatchOps); got != n {
		t.Fatalf("net_batch_ops_total = %d, want %d", got, n)
	}
	if got := snap.Counter(metricBatches); got >= n {
		t.Fatalf("net_batches_total = %d: pipelined singles were not amortised", got)
	}

	// Malformed frame and unknown opcode answer stBadRequest without
	// killing the connection.
	if _, err := nc.Write(appendFrame(nil, opRead, 99, []byte{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(nc)
	if err != nil || f.id != 99 || f.payload[0] != stBadRequest {
		t.Fatalf("short READ: %v, frame %+v", err, f)
	}
	if _, err := nc.Write(appendFrame(nil, 200, 100, nil)); err != nil {
		t.Fatal(err)
	}
	f, err = readFrame(nc)
	if err != nil || f.id != 100 || f.payload[0] != stBadRequest {
		t.Fatalf("unknown opcode: %v, frame %+v", err, f)
	}
}

// TestDeadlineOverWire proves the per-request deadline maps onto the
// store's bounded path: a wedged repair plus a short client deadline
// must surface a RecoveryInProgress failure whose errors.Is chain is
// identical to the local one, and count as a deadline abort.
func TestDeadlineOverWire(t *testing.T) {
	var stall fault.Stall
	stall.Arm(time.Hour)
	// The persistent-DUE plant below needs rows 0 and 32 in one bank:
	// 32 sets × 2 ways over a single bank.
	st, err := store.New(store.Config{
		Cache:      pcache.Config{Sets: 32, Ways: 2, LineBytes: lineBytes, Banks: 1},
		Resilience: resilience.Config{RecoveryStall: &stall},
	}, pcache.NewMapBacking(lineBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Persistent beyond-coverage DUE: two dirty lines whose data rows
	// share a vertical group and an EDC8 parity column, so neither
	// in-line recovery nor a backing refetch can satisfy the read.
	c := st.Shard(0).Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(16*lineBytes, []byte{0xA5}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))

	srv, addr := startServer(t, st, Config{})

	// Raw connection first: the frame's deadline field alone (no
	// client-side ctx racing it) must come back as stRecoveryInProgress,
	// which statusErr maps onto the canonical sentinel.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	p := be64Append(nil, uint64(30*time.Millisecond))
	p = be64Append(p, 0)
	p = be32Append(p, 1)
	if _, err := nc.Write(appendFrame(nil, opRead, 1, p)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := readFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if f.payload[0] != stRecoveryInProgress {
		t.Fatalf("status = %d, want stRecoveryInProgress", f.payload[0])
	}
	werr := statusErr(f.payload[0], string(f.payload[1:]))
	if !errors.Is(werr, resilience.ErrRecoveryInProgress) {
		t.Fatalf("wire err = %v, want ErrRecoveryInProgress in chain", werr)
	}
	if snap := srv.Metrics().Snapshot(); snap.Counter(metricDeadlineAborts) == 0 {
		t.Fatal("deadline abort not counted")
	}

	// Through the Client the caller may observe either the server's
	// answer or its own expired ctx — both classify as a bounded-path
	// failure, never a hang.
	cl := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, rerr := cl.ReadCtx(ctx, 0, 1)
	if !errors.Is(rerr, context.DeadlineExceeded) && !errors.Is(rerr, resilience.ErrRecoveryInProgress) {
		t.Fatalf("client err = %v, want deadline or recovery-in-progress", rerr)
	}

	// The planted fault is still there; a deadline-free read rides the
	// unbounded path. Disarm the stall so cleanup's flush can finish.
	stall.Disarm()
}

// TestEpochOracle pins the EPOCH opcode: with a hook it answers the
// store's loss epoch, without one it answers ErrUnsupported.
func TestEpochOracle(t *testing.T) {
	st, _ := newStore(t, 2, resilience.Config{})
	epochOf := func(addr uint64) uint64 {
		e, local := st.Locate(addr)
		c := e.Cache()
		return c.LossEpoch(int(local/lineBytes) % testCacheCfg.Sets)
	}
	_, addr := startServer(t, st, Config{EpochOf: epochOf})
	cl := dial(t, addr)
	got, err := cl.Epoch(3 * lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	if want := epochOf(3 * lineBytes); got != want {
		t.Fatalf("Epoch = %d, want %d", got, want)
	}

	_, baddr := newStoreServer(t)
	bcl := dial(t, baddr)
	if _, err := bcl.Epoch(0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Epoch without oracle = %v, want ErrUnsupported", err)
	}
}

// newStoreServer is a tiny helper for tests needing a second, plain
// server (no hooks) in the same test body.
func newStoreServer(t *testing.T) (*Server, string) {
	st, _ := newStore(t, 1, resilience.Config{})
	return startServer(t, st, Config{})
}

// TestMaxConns pins the connection cap: the N+1th concurrent
// connection is closed immediately and counted as refused.
func TestMaxConns(t *testing.T) {
	st, _ := newStore(t, 1, resilience.Config{})
	srv, addr := startServer(t, st, Config{MaxConns: 2})
	c1, c2 := dial(t, addr), dial(t, addr)
	if _, err := c1.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Stats(); err != nil {
		t.Fatal(err)
	}
	c3, err := Dial(addr)
	if err != nil {
		// Dial itself may fail if the refusal races the connect — both
		// outcomes are a refused connection.
		return
	}
	defer c3.Close()
	if _, err := c3.Stats(); err == nil {
		t.Fatal("third connection served beyond MaxConns=2")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Snapshot().Counter(metricConnsRefused) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refused connection not counted")
		}
		runtime.Gosched()
	}
}
