// Quickstart: protect a memory array with 2D error coding, corrupt it
// with a large clustered error, and watch the recovery process restore
// every bit.
package main

import (
	"fmt"
	"log"

	"twodcache"
)

func main() {
	// The paper's running example: an 8 kB array of 4-way interleaved
	// (72,64) EDC8 codewords with 32 vertical parity rows (Fig. 3(c)).
	arr := twodcache.NewPaperArray()
	fmt.Printf("array: %d rows x %d bits, %d words of %d bits\n",
		arr.Rows(), arr.RowBits(), arr.Words(), arr.DataBits())

	// Fill it with recognisable data. Every write is a read-before-write
	// that keeps the vertical parity rows up to date in the background.
	for r := 0; r < arr.Rows(); r++ {
		for w := 0; w < 4; w++ {
			arr.Write(r, w, twodcache.WordFromUint64(uint64(r)<<32|uint64(w), 64))
		}
	}

	// A single-event upset flips a 32x32-bit cluster — far beyond what
	// SECDED or even an 8-bit-correcting BCH code could repair.
	fmt.Println("\ninjecting a 32x32 clustered error at (100, 120)...")
	for r := 100; r < 132; r++ {
		for c := 120; c < 152; c++ {
			arr.FlipBit(r, c)
		}
	}

	// The next read of an affected word detects the corruption via the
	// horizontal EDC8 code and triggers the 2D recovery process.
	data, status := arr.Read(105, 2)
	fmt.Printf("read row 105 word 2: status=%v value=%#x\n", status, data.Uint64())
	if status != twodcache.ReadRecovered {
		log.Fatalf("expected recovery, got %v", status)
	}

	// Everything is back: spot-check the whole cluster region.
	for r := 100; r < 132; r++ {
		for w := 0; w < 4; w++ {
			d, st := arr.Read(r, w)
			if st != twodcache.ReadClean || d.Uint64() != uint64(r)<<32|uint64(w) {
				log.Fatalf("row %d word %d corrupt after recovery", r, w)
			}
		}
	}
	fmt.Println("all 1024 words verified intact after recovery")

	st := arr.Stats()
	fmt.Printf("\nstats: reads=%d writes=%d extra-reads=%d recoveries=%d recovered-words=%d\n",
		st.Reads, st.Writes, st.ExtraReads, st.Recoveries, st.RecoveredWords)
}
