package replay

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
	"twodcache/internal/twod"
)

// Result is the outcome of one replay: the soak's mismatch taxonomy,
// the flip-gating tallies, and a digest of the final machine state for
// bit-determinism checks.
type Result struct {
	// Accounted counts read mismatches explained by a loss-epoch
	// advance (a reported repair/decommission moved the data).
	Accounted uint64
	// Reported counts DUEs surfaced to the client even after the
	// escalation ladder (plus failed final flushes).
	Reported uint64
	// Silent counts mismatches with the loss epoch unmoved — the
	// outcome the 2D scheme must never produce.
	Silent uint64
	// SilentDetails describes each silent mismatch (bounded).
	SilentDetails []string

	// FlipsApplied/FlipsSkipped count OpFlip events that were applied
	// vs gated off (covering word already dirty, or out of range).
	FlipsApplied, FlipsSkipped uint64
	// Ops counts client read/write events executed.
	Ops uint64

	// StateHash digests the final contents of every protected
	// sub-array (data, tags, and vertical parity planes) and the final
	// metrics snapshot. Two replays of one trace must agree exactly.
	StateHash uint64

	// Report is the engine's final health report.
	Report resilience.Report
}

const maxSilentDetails = 16

// Run replays the trace single-threaded against a freshly built
// protected cache + resilience engine and classifies every mismatch
// with the loss-epoch protocol (the soak's oracle). It is fully
// deterministic: same trace, same Result, bit for bit.
func Run(tr Trace) (Result, error) {
	var res Result
	cfg := pcache.Config{
		Sets: tr.Cfg.Sets, Ways: tr.Cfg.Ways, LineBytes: tr.Cfg.LineBytes,
		VerticalGroups: tr.Cfg.VerticalGroups, SECDEDHorizontal: tr.Cfg.SECDED,
		Banks: tr.Cfg.Banks,
	}
	backing := pcache.NewMapBacking(cfg.LineBytes)
	cache, err := pcache.New(cfg, backing)
	if err != nil {
		return res, err
	}
	// Deterministic clock: one tick per reading. Latency histograms and
	// MTTR then depend only on the event sequence, never on the host.
	var tick int64
	clock := func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Microsecond))
	}
	reg := obs.NewRegistry()
	eng := resilience.New(cache, resilience.Config{
		MaxRetries: tr.Cfg.MaxRetries,
		SpareRows:  tr.Cfg.SpareRows,
		Clock:      clock,
		Metrics:    reg,
	})
	scrubber := eng.NewScrubber(resilience.ScrubberConfig{})

	lineBytes := uint64(cfg.LineBytes)
	setOf := func(addr uint64) int {
		return int((addr / lineBytes) % uint64(cfg.Sets))
	}

	// The oracle: one global shadow of the last value written per
	// address. Sound because replay is totally ordered — a read must
	// return the last write unless the set's loss epoch advanced.
	shadow := map[uint64]byte{}
	wep := map[uint64]uint64{}

	onError := func(addr uint64) {
		res.Reported++
		cache.Repair(addr)
		delete(shadow, addr)
	}
	classify := func(addr uint64, got, want byte, when string) {
		if cache.LossEpoch(setOf(addr)) == wep[addr] {
			res.Silent++
			if len(res.SilentDetails) < maxSilentDetails {
				res.SilentDetails = append(res.SilentDetails,
					fmt.Sprintf("silent corruption at %#x%s: got %#x want %#x (loss epoch unmoved)", addr, when, got, want))
			}
		} else {
			res.Accounted++
		}
	}

	var buf [1]byte
	for _, e := range tr.Events {
		switch e.Op {
		case OpWrite:
			res.Ops++
			set := setOf(e.Addr)
			// Capture the epoch BEFORE the write, as the soak does: a
			// degrade racing the write then shows an advance, never a
			// stale record.
			e0 := cache.LossEpoch(set)
			buf[0] = e.Val
			if err := eng.Write(e.Addr, buf[:1]); err != nil {
				onError(e.Addr)
				continue
			}
			shadow[e.Addr] = e.Val
			wep[e.Addr] = e0

		case OpRead:
			res.Ops++
			want, tracked := shadow[e.Addr]
			got, err := eng.Read(e.Addr, 1)
			if err != nil {
				onError(e.Addr)
				continue
			}
			if tracked && got[0] != want {
				classify(e.Addr, got[0], want, "")
				// Either way the cache's view is now authoritative.
				shadow[e.Addr] = got[0]
				wep[e.Addr] = cache.LossEpoch(setOf(e.Addr))
			}

		case OpFlip:
			if e.Bank >= cache.NumBanks() {
				res.FlipsSkipped++
				continue
			}
			cache.WithBankLock(e.Bank, func(data, tags *twod.Array) {
				a := data
				if e.Tags {
					a = tags
				}
				if e.Row >= a.Rows() || e.Col >= a.RowBits() {
					res.FlipsSkipped++
					return
				}
				// Gate exactly like the live storm: strike only words
				// that currently check clean, so every fault stays
				// within the horizontal code's guaranteed detection.
				w, _ := a.Layout().Locate(e.Col)
				if _, ok := a.TryRead(e.Row, w); !ok {
					res.FlipsSkipped++
					return
				}
				a.FlipBit(e.Row, e.Col)
				res.FlipsApplied++
			})

		case OpScrub:
			if e.Bank >= cache.NumBanks() {
				continue
			}
			scrubber.SweepBank(e.Bank)

		case OpPoke:
			// Corrupt the backing store behind the cache's back —
			// harness self-validation only (see OpPoke docs).
			lineAddr := e.Addr &^ (lineBytes - 1)
			line := backing.ReadLine(lineAddr)
			line[e.Addr%lineBytes] = e.Val
			backing.WriteLine(lineAddr, line)

		default:
			return res, fmt.Errorf("replay: unknown op %q", e.Op)
		}
	}

	// Final sweep, like the soak's: every tracked byte must still be
	// explained. Sorted for determinism (map iteration is randomised).
	addrs := make([]uint64, 0, len(shadow))
	for a := range shadow {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		want := shadow[addr]
		got, err := eng.Read(addr, 1)
		if err != nil {
			res.Reported++
			cache.Repair(addr)
			continue
		}
		if got[0] != want {
			classify(addr, got[0], want, " on final sweep")
		}
	}
	if err := eng.Flush(); err != nil {
		res.Reported++
	}

	res.Report = eng.Report()
	res.StateHash = stateHash(cache, reg)
	return res, nil
}

// stateHash digests every bank's data, tag, and vertical-parity planes
// plus the final metrics snapshot. Bit-exact replay determinism is
// asserted against this value.
func stateHash(cache *pcache.Cache, reg *obs.Registry) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	hashArray := func(a *twod.Array) {
		m := a.SnapshotData()
		for r := 0; r < m.Rows(); r++ {
			for _, w := range m.RowWords(r) {
				word(w)
			}
		}
		for g := 0; g < a.VerticalGroups(); g++ {
			for _, w := range a.ParityRowWords(g) {
				word(w)
			}
		}
	}
	for i := 0; i < cache.NumBanks(); i++ {
		data, tags := cache.BankArrays(i)
		hashArray(data)
		hashArray(tags)
	}
	snap := reg.Snapshot()
	for _, name := range snap.Names() {
		h.Write([]byte(name))
		if c, ok := snap.Counters[name]; ok {
			word(c)
		}
		if g, ok := snap.Gauges[name]; ok {
			word(uint64(g))
		}
		if hs, ok := snap.Histograms[name]; ok {
			word(hs.Count)
			word(uint64(hs.Sum))
		}
	}
	return h.Sum64()
}
