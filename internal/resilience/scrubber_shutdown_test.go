package resilience

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"twodcache/internal/obs"
	"twodcache/internal/pcache"
)

// goroutineCount samples runtime.NumGoroutine after nudging the
// scheduler, so freshly-exited goroutines are actually gone.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// TestScrubberStartStopNoLeak is the shutdown-audit regression: every
// Start/Stop cycle must return the process to its baseline goroutine
// count — a leaked sweeper would accumulate one goroutine per cache
// lifecycle in a long-lived server.
func TestScrubberStartStopNoLeak(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	s := e.NewScrubber(ScrubberConfig{Interval: time.Millisecond})

	before := goroutineCount()
	for cycle := 0; cycle < 5; cycle++ {
		s.Start()
		s.Start() // idempotent: must not spawn a second sweeper
		time.Sleep(3 * time.Millisecond)
		s.Stop()
		s.Stop() // idempotent: must not panic or hang
	}
	deadline := time.Now().Add(5 * time.Second)
	for goroutineCount() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := goroutineCount(); after > before {
		t.Fatalf("goroutines: %d before, %d after 5 Start/Stop cycles", before, after)
	}
}

// scrubEventSink records ScrubPass emissions.
type scrubEventSink struct {
	obs.NopSink
	mu     sync.Mutex
	passes int
}

func (s *scrubEventSink) ScrubPass(int, bool, int, time.Duration) {
	s.mu.Lock()
	s.passes++
	s.mu.Unlock()
}

func (s *scrubEventSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.passes
}

// TestScrubberCancelMidPass cancels a sweep between banks: the
// interrupted pass must not count in Passes(), must not observe a
// latency, and must not emit a ScrubPass event — partial coverage is
// not coverage. Run under -race by tier-1.
func TestScrubberCancelMidPass(t *testing.T) {
	sink := &scrubEventSink{}
	cfg := pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 4}
	e, _ := newEngine(t, cfg, Config{Sink: sink})
	s := e.NewScrubber(ScrubberConfig{})

	ctx, cancel := context.WithCancel(context.Background())
	s.bankHook = func(bank int) {
		if bank == 1 {
			cancel() // mid-pass: banks 2 and 3 still unswept
		}
	}
	clean, completed := s.sweepCtx(ctx)
	if completed {
		t.Fatal("cancelled sweep reported completed")
	}
	_ = clean
	if got := s.Passes(); got != 0 {
		t.Fatalf("partial sweep counted as %d passes", got)
	}
	if sink.count() != 0 {
		t.Fatalf("partial sweep emitted %d ScrubPass events", sink.count())
	}
	if lat := e.metrics.Snapshot().Histogram(metricScrubSeconds); lat.Count != 0 {
		t.Fatalf("partial sweep observed %d latencies", lat.Count)
	}

	// An uncancelled sweep on the same scrubber counts exactly once.
	s.bankHook = nil
	if _, completed := s.sweepCtx(context.Background()); !completed {
		t.Fatal("clean-context sweep did not complete")
	}
	if s.Passes() != 1 || sink.count() != 1 {
		t.Fatalf("completed sweep accounting: passes=%d events=%d", s.Passes(), sink.count())
	}
}

// TestScrubberStopAbortsSweepPromptly wedges a sweep mid-pass and calls
// Stop from another goroutine: Stop must join without waiting for the
// remaining banks.
func TestScrubberStopAbortsSweepPromptly(t *testing.T) {
	cfg := pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 4}
	e, _ := newEngine(t, cfg, Config{})
	s := e.NewScrubber(ScrubberConfig{Interval: time.Millisecond})

	entered := make(chan struct{})
	var once sync.Once
	s.bankHook = func(bank int) {
		once.Do(func() { close(entered) })
		// Each bank boundary dawdles; a Stop mid-pass must not have to
		// sit through all of them.
		time.Sleep(2 * time.Millisecond)
	}
	s.Start()
	<-entered
	stopDone := make(chan struct{})
	go func() {
		s.Stop()
		close(stopDone)
	}()
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung on an in-progress sweep")
	}
}
