package twod

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"twodcache/internal/ecc"
	"twodcache/internal/obs"
)

// soupSink records recovery events so the soup tests can check that
// event emission stays paired and truthful while recovery is hammered
// with arbitrary error mixtures.
type soupSink struct {
	obs.NopSink
	starts    atomic.Uint64
	ends      atomic.Uint64
	successes atomic.Uint64
}

func (s *soupSink) RecoveryStart(array string, set, way int) { s.starts.Add(1) }
func (s *soupSink) RecoveryEnd(array string, set, way int, success bool, d time.Duration) {
	s.ends.Add(1)
	if success {
		s.successes.Add(1)
	}
}

// TestRecoverNeverPanicsOnRandomSoup throws arbitrary mixtures of data
// and parity-row flips at the array: recovery may legitimately fail
// (the soup usually exceeds coverage), but it must never panic, and
// when the soup happens to stay inside one coverage box a success must
// restore the golden image. Every trial runs with observability hooks
// installed — a registry over the array's counters and an event sink —
// so recovery under soup also exercises the instrumented path, and the
// sink's view must agree with the returned reports.
func TestRecoverNeverPanicsOnRandomSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	sink := &soupSink{}
	var wantSuccesses uint64
	for trial := 0; trial < 60; trial++ {
		a := MustArray(Config{
			Rows: 64, WordsPerRow: 2,
			Horizontal:     ecc.MustEDC(64, 8),
			VerticalGroups: 16,
		})
		reg := obs.NewRegistry()
		a.RegisterMetrics(reg, "twod_soup")
		a.SetEventSink(sink, "soup")
		fillRandom(a, rng)
		nData := rng.Intn(40)
		for i := 0; i < nData; i++ {
			a.FlipBit(rng.Intn(a.Rows()), rng.Intn(a.RowBits()))
		}
		nPar := rng.Intn(5)
		for i := 0; i < nPar; i++ {
			a.FlipParityBit(rng.Intn(a.VerticalGroups()), rng.Intn(a.RowBits()))
		}
		rep := a.Recover() // must not panic
		if s := reg.Snapshot(); s.Counter("twod_soup_recoveries_total") != 1 {
			t.Fatalf("trial %d: registry saw %d recoveries, want 1",
				trial, s.Counter("twod_soup_recoveries_total"))
		}
		if rep.Success {
			wantSuccesses++
			// A successful recovery leaves every word checking clean and
			// the parity invariant intact.
			for r := 0; r < a.Rows(); r++ {
				for w := 0; w < 2; w++ {
					if a.checkWord(r, w) != 0 {
						t.Fatalf("trial %d: success with dirty word (%d,%d)", trial, r, w)
					}
				}
			}
			if !parityConsistent(a) {
				t.Fatalf("trial %d: success with inconsistent parity", trial)
			}
		}
	}
	if got := sink.starts.Load(); got != 60 {
		t.Fatalf("sink saw %d RecoveryStart events, want 60", got)
	}
	if sink.starts.Load() != sink.ends.Load() {
		t.Fatalf("unpaired recovery events: %d starts, %d ends",
			sink.starts.Load(), sink.ends.Load())
	}
	if got := sink.successes.Load(); got != wantSuccesses {
		t.Fatalf("sink saw %d successful recoveries, reports said %d", got, wantSuccesses)
	}
}

// TestReadsNeverPanicUnderErrors hammers Read/Write on a continuously
// corrupted array; statuses must be sane and storage must stay usable.
func TestReadsNeverPanicUnderErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := MustArray(Config{
		Rows: 32, WordsPerRow: 2,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 8,
	})
	fillRandom(a, rng)
	for i := 0; i < 3000; i++ {
		switch rng.Intn(4) {
		case 0:
			a.FlipBit(rng.Intn(32), rng.Intn(a.RowBits()))
		case 1:
			a.Write(rng.Intn(32), rng.Intn(2), randVec(rng, 64))
		default:
			_, st := a.Read(rng.Intn(32), rng.Intn(2))
			if st < ReadClean || st > ReadUncorrectable {
				t.Fatalf("bogus status %v", st)
			}
		}
	}
}

// TestVSECDEDNeverPanicsOnRandomSoup mirrors the soup test for the
// vertical-SECDED variant.
func TestVSECDEDNeverPanicsOnRandomSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 40; trial++ {
		a := MustVSECDEDArray(64, 2, ecc.MustEDC(64, 8))
		for r := 0; r < 64; r++ {
			for w := 0; w < 2; w++ {
				a.Write(r, w, randVec(rng, 64))
			}
		}
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			a.FlipBit(rng.Intn(64), rng.Intn(a.RowBits()))
		}
		a.Recover() // must not panic
	}
}
